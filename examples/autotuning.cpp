// Autotuning with a CPR surrogate (the "optimal tuning parameter selection"
// task of Section 1).
//
// Scenario: choose the fastest ExaFMM configuration (ppl, tl, tpp, ppn) for
// a given input (n particles, expansion order) without running every
// candidate. We train a CPR model on randomly sampled executions, rank all
// feasible configurations by *predicted* time, and compare the predicted-
// best configuration's true runtime against the true optimum found by
// exhaustive search.
//
// Run:  ./autotuning [--train=8192] [--n=32768] [--ord=8]

#include <algorithm>
#include <iostream>
#include <vector>

#include "apps/benchmark_app.hpp"
#include "core/cpr_model.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace cpr;
  CliArgs args(argc, argv);
  const auto train_size = static_cast<std::size_t>(args.get_int("train", 8192));
  const double n_particles = args.get_double("n", 32768.0);
  const double order = args.get_double("ord", 8.0);

  const auto fmm = apps::make_exafmm();
  std::cout << "training CPR surrogate on " << train_size
            << " random FMM executions...\n";
  const common::Dataset train = fmm->generate_dataset(train_size, /*seed=*/3);
  core::CprOptions options;
  options.rank = 8;
  core::CprModel surrogate(grid::Discretization(fmm->parameters(), 8), options);
  surrogate.fit(train);

  // Candidate space: every feasible (tpp, ppn, ppl, tl) for this input.
  struct Candidate {
    grid::Config config;
    double predicted;
    double actual;
  };
  std::vector<Candidate> candidates;
  for (double tpp : {1.0, 2.0, 4.0, 8.0, 16.0, 32.0, 64.0}) {
    for (double ppn : {1.0, 2.0, 4.0, 8.0, 16.0, 32.0, 64.0}) {
      for (double ppl : {32.0, 64.0, 96.0, 128.0, 192.0, 256.0}) {
        for (double tl : {0.0, 1.0, 2.0, 3.0, 4.0}) {
          const grid::Config x{n_particles, order, tpp, ppn, ppl, tl};
          if (!fmm->satisfies_constraints(x)) continue;
          candidates.push_back({x, surrogate.predict(x), fmm->base_time(x)});
        }
      }
    }
  }
  std::cout << candidates.size() << " feasible configurations for n=" << n_particles
            << ", ord=" << order << "\n\n";

  // Rank by prediction; compare against the exhaustive-search optimum.
  std::sort(candidates.begin(), candidates.end(),
            [](const Candidate& a, const Candidate& b) { return a.predicted < b.predicted; });
  const double true_best =
      std::min_element(candidates.begin(), candidates.end(),
                       [](const Candidate& a, const Candidate& b) {
                         return a.actual < b.actual;
                       })->actual;

  Table table({"rank", "tpp", "ppn", "ppl", "tl", "predicted s", "actual s",
               "vs true optimum"});
  for (std::size_t k = 0; k < std::min<std::size_t>(5, candidates.size()); ++k) {
    const auto& c = candidates[k];
    table.add_row({Table::fmt(k + 1), Table::fmt(c.config[2], 0), Table::fmt(c.config[3], 0),
                   Table::fmt(c.config[4], 0), Table::fmt(c.config[5], 0),
                   Table::fmt(c.predicted, 4), Table::fmt(c.actual, 4),
                   Table::fmt(c.actual / true_best, 3) + "x"});
  }
  table.print(std::cout);

  std::cout << "\ntrue optimum: " << true_best << " s; surrogate's top pick runs at "
            << candidates.front().actual << " s ("
            << candidates.front().actual / true_best << "x of optimal)\n";
  std::cout << "exhaustive search would execute " << candidates.size()
            << " configurations; the surrogate executed 0 of them.\n";
  return 0;
}
