// Quickstart: the end-to-end CPR workflow of Figure 2.
//
//  1. collect (configuration, execution time) observations of a benchmark
//     (here: the matrix-multiplication simulator),
//  2. discretize the parameter space on a regular grid (Section 5.1),
//  3. fit a low-rank CP decomposition of the partially-observed tensor of
//     cell-mean log execution times (Section 5.2),
//  4. predict unseen configurations via Eq.-5 interpolation,
//  5. persist the model and reload it for deployment.
//
// Run:  ./quickstart [--train=4096] [--rank=8] [--cells=16]

#include <cmath>
#include <iostream>

#include "apps/benchmark_app.hpp"
#include "common/evaluation.hpp"
#include "core/cpr_model.hpp"
#include "util/cli.hpp"

int main(int argc, char** argv) {
  using namespace cpr;
  CliArgs args(argc, argv);
  const auto train_size = static_cast<std::size_t>(args.get_int("train", 4096));
  const auto rank = static_cast<std::size_t>(args.get_int("rank", 8));
  const auto cells = static_cast<std::size_t>(args.get_int("cells", 16));

  // 1. Observations. In a real deployment these come from running your
  // application; here a simulator stands in for the machine.
  const auto mm = apps::make_matmul();
  const common::Dataset train = mm->generate_dataset(train_size, /*seed=*/1);
  const common::Dataset test = mm->generate_dataset(512, /*seed=*/2);
  std::cout << "collected " << train.size() << " training observations of "
            << mm->name() << " (" << mm->dimensions() << " parameters)\n";

  // 2. Discretization: the input parameters m, n, k are log-sampled, so the
  // grid uses logarithmic spacing (ParameterSpec carries that choice).
  grid::Discretization disc(mm->parameters(), cells);
  std::cout << "grid: " << cells << " cells/dim, " << disc.cell_count()
            << " tensor elements\n";

  // 3. Fit.
  core::CprOptions options;
  options.rank = rank;
  core::CprModel model(disc, options);
  model.fit(train);
  std::cout << "fit: observed density " << model.observed_density() << ", "
            << model.report().sweeps << " ALS sweeps, final objective "
            << model.report().final_objective() << "\n";

  // 4. Predict.
  const double error = common::evaluate_mlogq(model, test);
  std::cout << "test MLogQ = " << error << "  (geometric accuracy factor e^"
            << error << " = " << std::exp(error) << "x)\n";

  const grid::Config example{1000.0, 2000.0, 500.0};
  std::cout << "predicted time for m=1000 n=2000 k=500: " << model.predict(example)
            << " s (simulator says " << mm->base_time(example) << " s)\n";

  // 5. Persist + reload.
  BufferSink sink;
  model.serialize(sink);
  std::cout << "serialized model: " << sink.buffer().size() << " bytes\n";
  BufferSource source(sink.buffer());
  const core::CprModel deployed = core::CprModel::deserialize(source);
  std::cout << "reloaded model predicts " << deployed.predict(example) << " s\n";
  return 0;
}
