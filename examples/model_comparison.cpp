// Model-family comparison on one application (a miniature of Figures 6/7).
//
// Fits CPR and each alternative family (Section 6.0.4) on the same AMG
// training set and reports test MLogQ, fitted-model size, and fit time —
// the three axes of the paper's evaluation. AMG is the 8-parameter app
// whose categorical-heavy space shows the starkest contrasts.
//
// Every model is constructed through the ModelRegistry, the same pluggable
// layer the cpr_train/cpr_predict tools use: one ModelSpec (parameter space
// + hyper-parameters) per row, no concrete model types in sight.
//
// With --tuned, the fixed hyper-parameter rows are replaced by each
// family's universal-tuner winner (successive halving over the registered
// search space, cross-validated on the training set) — the honest version
// of the comparison. --threads parallelizes candidate evaluation.
//
// Run:  ./model_comparison [--app=AMG] [--train=4096] [--tuned] [--threads=N]

#include <iostream>

#include "apps/benchmark_app.hpp"
#include "common/evaluation.hpp"
#include "common/model_registry.hpp"
#include "tune/tuner.hpp"
#include "util/cli.hpp"
#include "util/stopwatch.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace cpr;
  CliArgs args(argc, argv);
  const std::string app_name = args.get_string("app", "AMG");
  const auto train_size = static_cast<std::size_t>(args.get_int("train", 4096));

  std::unique_ptr<apps::BenchmarkApp> app;
  for (auto& candidate : apps::make_all_apps()) {
    if (candidate->name() == app_name) app = std::move(candidate);
  }
  if (!app) {
    std::cerr << "unknown app '" << app_name << "' (use MM/QR/BC/FMM/AMG/KRIPKE)\n";
    return 1;
  }

  const common::Dataset train = app->generate_dataset(train_size, 7);
  const common::Dataset test = app->generate_dataset(512, 8);
  std::cout << "== " << app->name() << ": " << train.size() << " training / "
            << test.size() << " test samples, " << app->dimensions()
            << " parameters ==\n";

  // One row per (family, fixed hyper-parameter choice). The registry derives
  // the Section-6.0.4 feature transform for the baselines and the grid
  // discretization for the tensor families from spec.params.
  struct Row {
    std::string label;
    std::string family;
    std::size_t cells;
    std::map<std::string, std::string> hyper;
  };
  const std::size_t sgr_level = app->dimensions() >= 6 ? 3 : 4;
  const std::vector<Row> rows = {
      {"CPR (ours)", "cpr", 8, {{"rank", "8"}}},
      {"SGR", "sgr", 16, {{"level", std::to_string(sgr_level)}}},
      {"MARS", "mars", 16, {{"degree", "2"}}},
      {"KNN", "knn", 16, {{"k", "3"}}},
      {"ET", "et", 16, {{"trees", "32"}, {"depth", "12"}}},
      {"RF", "rf", 16, {{"trees", "32"}, {"depth", "12"}}},
      {"GB", "gb", 16, {{"trees", "64"}}},
      {"GP", "gp", 16, {{"kernel", "rbf"}}},
      {"NN", "nn", 16, {{"layers", "64x64"}, {"epochs", "120"}}},
  };

  if (args.has("tuned")) {
    tune::TunerOptions options;
    options.max_trials = 8;
    options.rungs = 2;
    options.folds = 2;
    options.threads = static_cast<std::size_t>(args.get_int("threads", 1));
    options.seed = 7;
    const tune::Tuner tuner(options);

    Table table({"model", "winning config", "MLogQ", "model bytes", "tune s"});
    for (const Row& row : rows) {
      common::ModelSpec base;
      base.params = app->parameters();
      Stopwatch watch;
      const auto outcome = tuner.run(row.family, base, train);
      const double seconds = watch.seconds();
      table.add_row({row.label, outcome.ranked.front().config,
                     Table::fmt(common::evaluate_mlogq(*outcome.model, test), 4),
                     Table::fmt(outcome.model->model_size_bytes()),
                     Table::fmt(seconds, 2)});
    }
    table.print(std::cout);
    std::cout << "\n(each row = the family's universal-tuner winner, cross-validated "
                 "on the training set only)\n";
    return 0;
  }

  Table table({"model", "MLogQ", "model bytes", "fit s"});
  for (const Row& row : rows) {
    common::ModelSpec spec;
    spec.params = app->parameters();
    spec.cells = row.cells;
    spec.hyper = row.hyper;
    auto model = common::ModelRegistry::instance().create(row.family, spec);
    Stopwatch watch;
    model->fit(train);
    const double seconds = watch.seconds();
    table.add_row({row.label, Table::fmt(common::evaluate_mlogq(*model, test), 4),
                   Table::fmt(model->model_size_bytes()), Table::fmt(seconds, 2)});
  }

  table.print(std::cout);
  std::cout << "\n(each row = one fixed hyper-parameter choice; the fig6/fig7 benches "
               "sweep each family's full grid; --tuned runs the universal tuner "
               "per family instead)\n";
  return 0;
}
