// Model-family comparison on one application (a miniature of Figures 6/7).
//
// Fits CPR and each alternative family (Section 6.0.4) on the same AMG
// training set and reports test MLogQ, fitted-model size, and fit time —
// the three axes of the paper's evaluation. AMG is the 8-parameter app
// whose categorical-heavy space shows the starkest contrasts.
//
// Run:  ./model_comparison [--app=AMG] [--train=4096]

#include <iostream>

#include "baselines/forest.hpp"
#include "baselines/gaussian_process.hpp"
#include "baselines/knn.hpp"
#include "baselines/mars.hpp"
#include "baselines/mlp.hpp"
#include "baselines/sparse_grid.hpp"
#include "common/evaluation.hpp"
#include "common/transform.hpp"
#include "core/cpr_model.hpp"
#include "apps/benchmark_app.hpp"
#include "util/cli.hpp"
#include "util/stopwatch.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace cpr;
  CliArgs args(argc, argv);
  const std::string app_name = args.get_string("app", "AMG");
  const auto train_size = static_cast<std::size_t>(args.get_int("train", 4096));

  std::unique_ptr<apps::BenchmarkApp> app;
  for (auto& candidate : apps::make_all_apps()) {
    if (candidate->name() == app_name) app = std::move(candidate);
  }
  if (!app) {
    std::cerr << "unknown app '" << app_name << "' (use MM/QR/BC/FMM/AMG/KRIPKE)\n";
    return 1;
  }

  const common::Dataset train = app->generate_dataset(train_size, 7);
  const common::Dataset test = app->generate_dataset(512, 8);
  std::cout << "== " << app->name() << ": " << train.size() << " training / "
            << test.size() << " test samples, " << app->dimensions()
            << " parameters ==\n";

  // Section-6.0.4 transform for the baselines.
  common::FeatureTransform transform;
  transform.log_target = true;
  transform.log_feature.resize(app->dimensions());
  for (std::size_t j = 0; j < app->dimensions(); ++j) {
    transform.log_feature[j] =
        app->parameters()[j].kind == grid::ParameterKind::NumericalLog;
  }

  Table table({"model", "MLogQ", "model bytes", "fit s"});
  const auto evaluate = [&](const std::string& name, common::RegressorPtr model) {
    Stopwatch watch;
    model->fit(train);
    const double seconds = watch.seconds();
    table.add_row({name, Table::fmt(common::evaluate_mlogq(*model, test), 4),
                   Table::fmt(model->model_size_bytes()), Table::fmt(seconds, 2)});
  };
  const auto wrapped = [&](common::RegressorPtr inner) {
    return std::make_unique<common::LogSpaceRegressor>(std::move(inner), transform);
  };

  {
    core::CprOptions options;
    options.rank = 8;
    evaluate("CPR (ours)", std::make_unique<core::CprModel>(
                               grid::Discretization(app->parameters(), 8), options));
  }
  {
    baselines::SgrOptions options;
    options.level = app->dimensions() >= 6 ? 3 : 4;
    evaluate("SGR", wrapped(std::make_unique<baselines::SparseGridRegressor>(options)));
  }
  {
    baselines::MarsOptions options;
    options.max_degree = 2;
    evaluate("MARS", wrapped(std::make_unique<baselines::Mars>(options)));
  }
  evaluate("KNN", wrapped(std::make_unique<baselines::KnnRegressor>(
                      baselines::KnnOptions{3, true})));
  {
    baselines::ForestOptions options;
    options.n_trees = 32;
    options.max_depth = 12;
    evaluate("ET", wrapped(std::make_unique<baselines::ExtraTreesRegressor>(options)));
    evaluate("RF", wrapped(std::make_unique<baselines::RandomForestRegressor>(options)));
  }
  {
    baselines::BoostingOptions options;
    options.n_trees = 64;
    evaluate("GB", wrapped(std::make_unique<baselines::GradientBoostingRegressor>(options)));
  }
  {
    baselines::GpOptions options;
    options.kernel = baselines::GpKernel::Rbf;
    evaluate("GP", wrapped(std::make_unique<baselines::GaussianProcess>(options)));
  }
  {
    baselines::MlpOptions options;
    options.hidden_layers = {64, 64};
    options.epochs = 120;
    evaluate("NN", wrapped(std::make_unique<baselines::Mlp>(options)));
  }

  table.print(std::cout);
  std::cout << "\n(each row = one fixed hyper-parameter choice; the fig6/fig7 benches "
               "sweep each family's full grid)\n";
  return 0;
}
