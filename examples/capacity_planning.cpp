// Capacity planning by extrapolation (the "machine allocation estimation"
// task of Section 1, exercised like the Figure-8 BC experiment).
//
// Scenario: you have measured MPI broadcast times on up to 32 nodes and must
// budget communication time for a 128-node run. The CPR extrapolation model
// (Section 5.3) fits a strictly positive CP decomposition with the
// interior-point AMN optimizer, then extrapolates the node-count factor via
// a rank-1 SVD + spline fit of its leading singular vector.
//
// Run:  ./capacity_planning [--train=4096] [--max-nodes=32]

#include <cmath>
#include <iostream>
#include <optional>

#include "apps/benchmark_app.hpp"
#include "core/cpr_extrapolation.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace cpr;
  CliArgs args(argc, argv);
  const auto train_size = static_cast<std::size_t>(args.get_int("train", 4096));
  const double max_nodes = args.get_double("max-nodes", 32.0);

  const auto bc = apps::make_broadcast();

  // Training data is confined to small node counts.
  std::vector<std::optional<std::pair<double, double>>> bounds(bc->dimensions());
  bounds[0] = {1.0, max_nodes};
  const common::Dataset train = bc->generate_dataset(train_size, /*seed=*/5, &bounds);
  std::cout << "trained on " << train.size() << " broadcasts executed on 1.."
            << max_nodes << " nodes\n";

  // Discretize the *observed* domain; node count gets a finer grid since it
  // is the extrapolated dimension (Section 7.2 notes this helps).
  std::vector<grid::ParameterSpec> specs = bc->parameters();
  specs[0].hi = max_nodes;
  std::vector<std::size_t> cells{static_cast<std::size_t>(std::log2(max_nodes)) + 2, 8, 10};
  core::CprExtrapolationOptions options;
  // Rank 1 is the safe choice when the extrapolated mode dominates: the
  // Section-5.3 substitution replaces the extrapolated factor row with its
  // rank-1 surrogate, which is only faithful if that factor is close to
  // rank-1 (higher ranks help interpolation but can misweight the
  // extrapolated component; see Section 7.2's discussion of the BC case).
  options.rank = 1;
  core::CprExtrapolationModel model(grid::Discretization(specs, cells), options);
  model.fit(train);

  std::cout << "\nforecast for 128 nodes (4x beyond the observed range), 16 ppn:\n";
  Table table({"message size", "predicted s", "actual s", "log-Q error"});
  for (double log2_bytes = 16; log2_bytes <= 26; log2_bytes += 2) {
    const double bytes = std::pow(2.0, log2_bytes);
    const grid::Config x{128.0, 16.0, bytes};
    const double predicted = model.predict(x);
    const double actual = bc->base_time(x);
    table.add_row({"2^" + Table::fmt(log2_bytes, 0) + " B", Table::fmt(predicted, 4),
                   Table::fmt(actual, 4),
                   Table::fmt(std::log(predicted / actual), 3)});
  }
  table.print(std::cout);

  std::cout << "\n(an interpolating model clamped at " << max_nodes
            << " nodes would simply repeat the " << max_nodes
            << "-node time — try the fig8_extrapolation bench for the full "
               "comparison)\n";
  return 0;
}
