#!/usr/bin/env bash
# One-command tier-1 gate: configure + build + ctest, exactly as CI and the
# ROADMAP "Tier-1 verify" line run it. Exits nonzero on the first failure.
#
# Usage: tools/verify.sh [--fast] [--sanitize] [--tsan] [build-dir]   (default: build)
#
# --fast runs only the ctest suites labeled `quick` (everything except the
# long tuner/serving suites tune_test + serve_test) — the inner-loop gate
# while iterating; run the full script before a PR.
#
# --sanitize additionally configures a second build directory
# (<build-dir>-asan) with AddressSanitizer + UBSan (CPR_SANITIZE=ON) and runs
# the test suite there too, so the (de)serialization and completion hot paths
# are exercised under the sanitizers in the same gate.
#
# --tsan additionally configures a ThreadSanitizer build (<build-dir>-tsan,
# CPR_TSAN=ON) and runs the concurrency-heavy suites (serve_test +
# completion_test) there. OpenMP is disabled in that build: libgomp is not
# TSan-instrumented and reports false positives on its own synchronization;
# the std::thread concurrency of the serving layer is the verification
# target.
set -euo pipefail

repo_root="$(cd "$(dirname "${BASH_SOURCE[0]}")/.." && pwd)"
fast=0
sanitize=0
tsan=0
build_dir=build
for arg in "$@"; do
  case "$arg" in
    --fast) fast=1 ;;
    --sanitize) sanitize=1 ;;
    --tsan) tsan=1 ;;
    *) build_dir="$arg" ;;
  esac
done

cmake -B "$build_dir" -S "$repo_root"
cmake --build "$build_dir" -j
if [[ "$fast" -eq 1 ]]; then
  ctest --test-dir "$build_dir" --output-on-failure -j -L quick
else
  ctest --test-dir "$build_dir" --output-on-failure -j
fi

if [[ "$sanitize" -eq 1 ]]; then
  asan_dir="${build_dir}-asan"
  # Benches/examples are not ctest targets; skip them to keep the
  # sanitizer pass focused on the test suite.
  cmake -B "$asan_dir" -S "$repo_root" -DCPR_SANITIZE=ON \
    -DCPR_BUILD_BENCH=OFF -DCPR_BUILD_EXAMPLES=OFF
  cmake --build "$asan_dir" -j
  ctest --test-dir "$asan_dir" --output-on-failure -j
  echo "verify.sh: ASan+UBSan configure + build + ctest all green"
fi

if [[ "$tsan" -eq 1 ]]; then
  tsan_dir="${build_dir}-tsan"
  cmake -B "$tsan_dir" -S "$repo_root" -DCPR_TSAN=ON -DCPR_ENABLE_OPENMP=OFF \
    -DCPR_BUILD_BENCH=OFF -DCPR_BUILD_EXAMPLES=OFF
  cmake --build "$tsan_dir" -j --target serve_test completion_test
  ctest --test-dir "$tsan_dir" --output-on-failure -R '^(serve_test|completion_test)$'
  echo "verify.sh: TSan configure + build + ctest (serve_test, completion_test) green"
fi

echo "verify.sh: configure + build + ctest all green"
