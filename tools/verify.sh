#!/usr/bin/env bash
# One-command tier-1 gate: configure + build + ctest, exactly as CI and the
# ROADMAP "Tier-1 verify" line run it. Exits nonzero on the first failure.
#
# Usage: tools/verify.sh [build-dir]   (default: build)
set -euo pipefail

repo_root="$(cd "$(dirname "${BASH_SOURCE[0]}")/.." && pwd)"
build_dir="${1:-build}"

cmake -B "$build_dir" -S "$repo_root"
cmake --build "$build_dir" -j
ctest --test-dir "$build_dir" --output-on-failure -j

echo "verify.sh: configure + build + ctest all green"
