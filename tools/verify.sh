#!/usr/bin/env bash
# One-command tier-1 gate: configure + build + ctest, exactly as CI and the
# ROADMAP "Tier-1 verify" line run it. Exits nonzero on the first failure.
#
# Usage: tools/verify.sh [--fast] [--sanitize] [--tsan] [--bench] [--obs]
#                        [--docs] [build-dir]   (default: build)
#
# --fast runs only the ctest suites labeled `quick` (everything except the
# long tuner/serving suites tune_test + serve_test) — the inner-loop gate
# while iterating; run the full script before a PR. The quantized-archive
# conformance suite (quant_test: every registry family under every
# --quantize mode, plus the golden payload-byte pins) carries the `quick`
# label, so --fast covers it.
#
# --sanitize additionally configures a second build directory
# (<build-dir>-asan) with AddressSanitizer + UBSan (CPR_SANITIZE=ON) and runs
# the test suite there too, so the (de)serialization and completion hot paths
# are exercised under the sanitizers in the same gate.
#
# --tsan additionally configures a ThreadSanitizer build (<build-dir>-tsan,
# CPR_TSAN=ON) and runs the concurrency-heavy suites (serve_test +
# completion_test + linalg_test) there. serve_test includes the TCP
# event-loop front end (epoll loops, dispatch pool, ordered reply tickets,
# drain shutdown), so the whole cross-thread handoff surface of the serving
# layer runs under TSan. OpenMP is disabled in that build: libgomp is not
# TSan-instrumented and reports false positives on its own synchronization;
# the std::thread concurrency of the serving layer is the verification
# target (the task-graph tiled factorizations compile to their sequential
# fallbacks there, still exercising the tile kernels).
#
# --bench additionally runs the cpr_bench performance-regression gate over
# the stable kernel_suite cases (including the per-quant-mode
# predict_batch_{fp64,fp32,fp16,int8}/1024 cases, so a regression in the
# dequantize-free fp32 path or the on-load dequantize paths trips the gate),
# the serve_latency open-loop tail-latency
# cases (fixed offered-QPS points, p50/p99/p99.9), and the serve_drift
# online-learning cases (deterministic drift-recovery errors plus refit wall
# time and PREDICT p99 under concurrent refits): the merged
# BENCH_<date>.json is written to the repo root and compared against the
# committed bench/baseline.json. The gate threshold here is 35% (not
# cpr_bench's 15% default) to absorb shared-runner timing noise — the
# regressions it hunts are kernel-level (2x+), not scheduler jitter. Run it
# on an otherwise-idle machine: timings taken while another build or test
# run shares the CPU are meaningless and will trip the gate spuriously.
#
# --obs additionally smoke-tests the observability surface end to end:
# train a tiny model with --profile/--trace-out, run a scripted cpr_serve
# session with tracing on and --metrics-out/--trace-out — including an
# OBSERVE → REFIT → PREDICT round trip against a cpr-online archive — then
# validate every artifact with cpr_obscheck (structural Prometheus-exposition
# and Chrome-trace checks) and require the refit/drift metrics to appear in
# the exposition. Fails if any artifact is missing or malformed.
#
# --docs additionally runs a doxygen lint over src/ in warnings-as-errors
# mode (malformed \param names, broken doc references). Skipped with a
# notice when doxygen is not installed.
set -euo pipefail

repo_root="$(cd "$(dirname "${BASH_SOURCE[0]}")/.." && pwd)"
fast=0
sanitize=0
tsan=0
bench=0
obs=0
docs=0
build_dir=build
for arg in "$@"; do
  case "$arg" in
    --fast) fast=1 ;;
    --sanitize) sanitize=1 ;;
    --tsan) tsan=1 ;;
    --bench) bench=1 ;;
    --obs) obs=1 ;;
    --docs) docs=1 ;;
    *) build_dir="$arg" ;;
  esac
done

cmake -B "$build_dir" -S "$repo_root"
cmake --build "$build_dir" -j
if [[ "$fast" -eq 1 ]]; then
  ctest --test-dir "$build_dir" --output-on-failure -j -L quick
else
  ctest --test-dir "$build_dir" --output-on-failure -j
fi

if [[ "$sanitize" -eq 1 ]]; then
  asan_dir="${build_dir}-asan"
  # Benches/examples are not ctest targets; skip them to keep the
  # sanitizer pass focused on the test suite.
  cmake -B "$asan_dir" -S "$repo_root" -DCPR_SANITIZE=ON \
    -DCPR_BUILD_BENCH=OFF -DCPR_BUILD_EXAMPLES=OFF
  cmake --build "$asan_dir" -j
  ctest --test-dir "$asan_dir" --output-on-failure -j
  echo "verify.sh: ASan+UBSan configure + build + ctest all green"
fi

if [[ "$tsan" -eq 1 ]]; then
  tsan_dir="${build_dir}-tsan"
  cmake -B "$tsan_dir" -S "$repo_root" -DCPR_TSAN=ON -DCPR_ENABLE_OPENMP=OFF \
    -DCPR_BUILD_BENCH=OFF -DCPR_BUILD_EXAMPLES=OFF
  cmake --build "$tsan_dir" -j --target serve_test completion_test linalg_test
  ctest --test-dir "$tsan_dir" --output-on-failure -R '^(serve_test|completion_test|linalg_test)$'
  echo "verify.sh: TSan configure + build + ctest (serve_test, completion_test, linalg_test) green"
fi

if [[ "$bench" -eq 1 ]]; then
  "$build_dir/tools/cpr_bench" --suites=kernel_suite,serve_latency,serve_drift \
    --bench-dir="$build_dir/bench" \
    --baseline="$repo_root/bench/baseline.json" \
    --out="$repo_root/BENCH_$(date +%F).json" \
    --threshold=0.35
  echo "verify.sh: cpr_bench regression gate green"
fi

if [[ "$obs" -eq 1 ]]; then
  obs_dir="$(mktemp -d)"
  trap 'rm -rf "$obs_dir"' EXIT
  mkdir -p "$obs_dir/models"
  # Tiny matrix-multiply-shaped sweep: 48 rows over a 4x4x3 grid.
  {
    echo "m,n,k,seconds"
    for m in 64 128 256 512; do
      for n in 64 128 256 512; do
        for k in 8 16 32; do
          awk -v m="$m" -v n="$n" -v k="$k" \
            'BEGIN { printf "%d,%d,%d,%.9f\n", m, n, k, 2.0e-10 * m * n * k }'
        done
      done
    done
  } > "$obs_dir/data.csv"
  "$build_dir/tools/cpr_train" --data="$obs_dir/data.csv" \
    --out="$obs_dir/models/mm.cprm" --cells=2 --rank=2 --log-dims=0,1,2 \
    --profile --trace-out="$obs_dir/train_trace.json" > /dev/null
  # A second, online-capable archive for the OBSERVE/REFIT round trip.
  "$build_dir/tools/cpr_train" --data="$obs_dir/data.csv" \
    --out="$obs_dir/models/mm-online.cprm" --model=cpr-online \
    --cells=2 --rank=2 --log-dims=0,1,2 > /dev/null
  printf '%s\n' \
    'PREDICT mm 128,128,16' \
    'PREDICT mm 128,128,16' \
    'OBSERVE mm-online 128,128,16 0.0008' \
    'OBSERVE mm-online 256,256,32 0.006' \
    'REFIT mm-online' \
    'PREDICT mm-online 128,128,16' \
    'METRICS' \
    'QUIT' | \
    "$build_dir/tools/cpr_serve" --models="$obs_dir/models" --trace-sample=1 \
      --metrics-out="$obs_dir/metrics.prom" \
      --trace-out="$obs_dir/serve_trace.json" > "$obs_dir/session.out"
  if grep -q '^ERR' "$obs_dir/session.out"; then
    echo "verify.sh: observe/refit session got an ERR reply:" >&2
    grep '^ERR' "$obs_dir/session.out" >&2
    exit 1
  fi
  grep -q '^OK refit mm-online generation=' "$obs_dir/session.out"
  "$build_dir/tools/cpr_obscheck" --metrics="$obs_dir/metrics.prom" \
    --trace="$obs_dir/serve_trace.json"
  "$build_dir/tools/cpr_obscheck" --trace="$obs_dir/train_trace.json"
  # The online-learning telemetry must be present in the final exposition.
  grep -q '^cpr_refits_total 1$' "$obs_dir/metrics.prom"
  grep -q '^cpr_observes_total 2$' "$obs_dir/metrics.prom"
  grep -q '^cpr_drift_abs_log_error ' "$obs_dir/metrics.prom"
  grep -q '^cpr_refit_seconds_count 1$' "$obs_dir/metrics.prom"
  echo "verify.sh: observability smoke (train profile, observe/refit round trip, serve metrics + traces, cpr_obscheck) green"
fi

if [[ "$docs" -eq 1 ]]; then
  if ! command -v doxygen > /dev/null 2>&1; then
    echo "verify.sh: doxygen not installed — --docs step skipped"
  else
    docs_dir="$build_dir/docs-lint"
    mkdir -p "$docs_dir"
    doxygen -g "$docs_dir/Doxyfile" > /dev/null
    cat >> "$docs_dir/Doxyfile" <<EOF
PROJECT_NAME           = cpr
INPUT                  = $repo_root/src
RECURSIVE              = YES
EXTRACT_ALL            = YES
GENERATE_HTML          = NO
GENERATE_LATEX         = NO
QUIET                  = YES
WARNINGS               = YES
WARN_IF_UNDOCUMENTED   = NO
WARN_IF_DOC_ERROR      = YES
WARN_AS_ERROR          = YES
OUTPUT_DIRECTORY       = $docs_dir
EOF
    doxygen "$docs_dir/Doxyfile"
    echo "verify.sh: doxygen docs lint green"
  fi
fi

echo "verify.sh: configure + build + ctest all green"
