// cpr_predict — evaluate a trained model archive on configurations from a
// CSV. Any registered family works: the archive's type tag dispatches the
// load and inference runs through the polymorphic batched entry point.
//
// Usage:
//   cpr_predict --model=model.cprm --configs=queries.csv [--out=pred.csv]
//       [--threads=<n>]
//
// `queries.csv` uses the training layout minus the "seconds" column (if a
// seconds column is present it is treated as ground truth and the MLogQ of
// the predictions is reported). Parsing shares common/dataset_io with
// cpr_train: ragged rows, empty fields, and non-finite values fail loudly.
// --threads caps the OpenMP team used by predict_batch (default: the
// OMP_NUM_THREADS environment). Predictions are printed with full
// round-trip precision, so they compare bitwise against a cpr_serve
// session over the same archive.

#include <fstream>
#include <iostream>

#include "common/dataset_io.hpp"
#include "core/model_file.hpp"
#include "metrics/metrics.hpp"
#include "util/cli.hpp"

using namespace cpr;

int main(int argc, char** argv) {
  CliArgs args(argc, argv);
  const std::string model_path = args.get_string("model", "");
  const std::string configs_path = args.get_string("configs", "");
  if (args.has("help") || model_path.empty() || configs_path.empty()) {
    (args.has("help") ? std::cout : std::cerr)
        << "usage: cpr_predict --model=model.cprm --configs=queries.csv [flags]\n\n"
           "Evaluates a trained archive of any registered family on the\n"
           "configurations of a CSV (training layout minus 'seconds').\n\n"
           "  --model=<path>    trained model archive (required)\n"
           "  --configs=<path>  query CSV (required)\n"
           "  --out=<path>      also write predictions as CSV\n"
           "                    (default: print to stdout only)\n"
           "  --threads=<n>     cap the OpenMP team used by predict_batch\n"
           "                    (default: the OMP_NUM_THREADS environment)\n";
    return args.has("help") ? 0 : 1;
  }

  try {
    apply_thread_cap(args.get_int("threads", 0));

    const common::RegressorPtr model = core::load_model_file(model_path);
    const std::size_t dims = model->input_dims();
    CPR_CHECK_MSG(dims > 0, model_path << ": archive holds an unfitted model");
    std::cerr << "loaded " << model->name() << " model (type '" << model->type_tag()
              << "', " << dims << " parameters)\n";

    const common::LoadedQueries queries = common::load_query_csv(configs_path);
    CPR_CHECK_MSG(queries.parameter_names.size() == dims,
                  configs_path << " has " << queries.parameter_names.size()
                               << " parameter columns; the model expects " << dims);

    std::ofstream out;
    const std::string out_path = args.get_string("out", "");
    if (!out_path.empty()) {
      out.open(out_path);
      CPR_CHECK_MSG(out.good(), "cannot open " << out_path);
      out.precision(17);
      for (const auto& name : queries.parameter_names) out << name << ',';
      out << "predicted_seconds\n";
    }

    // Virtual dispatch: CPR variants use their allocation-free batched
    // override, every other family the parallel per-row default.
    const std::vector<double> predictions = model->predict_batch(queries.x);

    std::cout.precision(17);
    for (std::size_t i = 0; i < predictions.size(); ++i) {
      if (out.is_open()) {
        for (std::size_t j = 0; j < dims; ++j) out << queries.x(i, j) << ',';
        out << predictions[i] << '\n';
      } else {
        std::cout << predictions[i] << "\n";
      }
    }

    if (queries.has_truth()) {
      std::cerr << "MLogQ vs ground truth: "
                << metrics::mlogq(predictions, queries.truths) << " over "
                << predictions.size() << " queries\n";
    }
    if (out.is_open()) {
      std::cerr << "wrote " << predictions.size() << " predictions to " << out_path << "\n";
    }
    return 0;
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 1;
  }
}
