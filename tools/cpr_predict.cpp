// cpr_predict — evaluate a trained model archive on configurations from a
// CSV. Any registered family works: the archive's type tag dispatches the
// load and inference runs through the polymorphic batched entry point.
//
// Usage:
//   cpr_predict --model=model.cprm --configs=queries.csv [--out=pred.csv]
//
// `queries.csv` uses the training layout minus the "seconds" column (if a
// seconds column is present it is treated as ground truth and the MLogQ of
// the predictions is reported).

#include <algorithm>
#include <cmath>
#include <fstream>
#include <iostream>
#include <sstream>

#include "core/model_file.hpp"
#include "metrics/metrics.hpp"
#include "util/cli.hpp"

using namespace cpr;

int main(int argc, char** argv) {
  CliArgs args(argc, argv);
  const std::string model_path = args.get_string("model", "");
  const std::string configs_path = args.get_string("configs", "");
  if (model_path.empty() || configs_path.empty()) {
    std::cerr << "usage: cpr_predict --model=model.cprm --configs=queries.csv "
                 "[--out=predictions.csv]\n";
    return 1;
  }

  try {
    const common::RegressorPtr model = core::load_model_file(model_path);
    const std::size_t dims = model->input_dims();
    CPR_CHECK_MSG(dims > 0, model_path << ": archive holds an unfitted model");
    std::cerr << "loaded " << model->name() << " model (type '" << model->type_tag()
              << "', " << dims << " parameters)\n";

    std::ifstream in(configs_path);
    CPR_CHECK_MSG(in.good(), "cannot open " << configs_path);
    std::string line;
    CPR_CHECK_MSG(static_cast<bool>(std::getline(in, line)), "empty configs file");
    std::vector<std::string> header;
    {
      std::stringstream stream(line);
      std::string field;
      while (std::getline(stream, field, ',')) header.push_back(field);
    }
    const bool has_truth = !header.empty() && header.back() == "seconds";
    const std::size_t expected = dims + (has_truth ? 1 : 0);
    CPR_CHECK_MSG(header.size() == expected,
                  "configs file has " << header.size() << " columns; the model expects "
                                      << dims << (has_truth ? " + seconds" : ""));

    std::ofstream out;
    const std::string out_path = args.get_string("out", "");
    if (!out_path.empty()) {
      out.open(out_path);
      CPR_CHECK_MSG(out.good(), "cannot open " << out_path);
      for (std::size_t j = 0; j < dims; ++j) out << header[j] << ',';
      out << "predicted_seconds\n";
    }

    // Parse every query row first so inference runs through the parallel
    // batched entry point.
    std::vector<double> flat, truths;
    std::size_t line_number = 1;
    while (std::getline(in, line)) {
      ++line_number;
      if (line.empty()) continue;
      std::stringstream row(line);
      std::string field;
      std::vector<double> fields;
      while (std::getline(row, field, ',')) fields.push_back(std::stod(field));
      CPR_CHECK_MSG(fields.size() == expected,
                    configs_path << ":" << line_number << ": bad field count");
      flat.insert(flat.end(), fields.begin(),
                  fields.begin() + static_cast<std::ptrdiff_t>(dims));
      if (has_truth) truths.push_back(fields.back());
    }
    const std::size_t n_queries = flat.size() / std::max<std::size_t>(dims, 1);
    CPR_CHECK_MSG(n_queries > 0, "no query rows in " << configs_path);

    linalg::Matrix queries(n_queries, dims);
    std::copy(flat.begin(), flat.end(), queries.data());  // flat is row-major
    std::vector<double>().swap(flat);  // release before predicting: one copy in memory
    // Virtual dispatch: CPR variants use their allocation-free batched
    // override, every other family the parallel per-row default.
    const std::vector<double> predictions = model->predict_batch(queries);

    for (std::size_t i = 0; i < n_queries; ++i) {
      if (out.is_open()) {
        for (std::size_t j = 0; j < dims; ++j) out << queries(i, j) << ',';
        out << predictions[i] << '\n';
      } else {
        std::cout << predictions[i] << "\n";
      }
    }

    if (has_truth) {
      std::cerr << "MLogQ vs ground truth: " << metrics::mlogq(predictions, truths)
                << " over " << predictions.size() << " queries\n";
    }
    if (out.is_open()) {
      std::cerr << "wrote " << predictions.size() << " predictions to " << out_path << "\n";
    }
    return 0;
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 1;
  }
}
