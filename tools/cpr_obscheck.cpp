// cpr_obscheck — validate observability artifacts produced by the serving
// and training tools: Prometheus text expositions (cpr_serve --metrics-out
// or the METRICS verb) and Chrome trace-event JSON (cpr_serve --trace-out,
// cpr_train/cpr_tune --trace-out). Used by `tools/verify.sh --obs` to gate
// the exporters end to end; exits 0 only when every given artifact is
// well-formed.
//
// Usage:
//   cpr_obscheck [--metrics=<path>] [--trace=<path>]

#include <fstream>
#include <iostream>
#include <sstream>
#include <string>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "util/cli.hpp"

using namespace cpr;

namespace {

void usage(std::ostream& out) {
  out << "usage: cpr_obscheck [--metrics=<path>] [--trace=<path>]\n\n"
         "Validates observability artifacts; at least one flag is required\n"
         "(default: none — giving no artifact is a usage error).\n\n"
         "  --metrics=<path>  Prometheus text exposition to check: TYPE\n"
         "                    comments precede samples, histogram buckets\n"
         "                    are cumulative and end in le=\"+Inf\", _sum\n"
         "                    and _count are present and consistent\n"
         "  --trace=<path>    Chrome trace-event JSON to check: parsable,\n"
         "                    every span closed (non-negative dur), and\n"
         "                    timestamps monotone per thread lane\n";
}

bool read_file(const std::string& path, std::string& text) {
  std::ifstream in(path, std::ios::binary);
  if (!in.good()) {
    std::cerr << "error: cannot read " << path << "\n";
    return false;
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();
  text = buffer.str();
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  CliArgs args(argc, argv);
  if (args.has("help")) {
    usage(std::cout);
    return 0;
  }
  const std::string metrics_path = args.get_string("metrics", "");
  const std::string trace_path = args.get_string("trace", "");
  if (metrics_path.empty() && trace_path.empty()) {
    usage(std::cerr);
    return 1;
  }

  int rc = 0;
  if (!metrics_path.empty()) {
    std::string text, error;
    if (!read_file(metrics_path, text)) {
      rc = 1;
    } else if (obs::validate_prometheus_text(text, &error)) {
      std::cout << metrics_path << ": valid Prometheus exposition\n";
    } else {
      std::cerr << metrics_path << ": INVALID: " << error << "\n";
      rc = 1;
    }
  }
  if (!trace_path.empty()) {
    std::string text, error;
    if (!read_file(trace_path, text)) {
      rc = 1;
    } else if (obs::validate_chrome_trace(text, &error)) {
      std::cout << trace_path << ": valid Chrome trace\n";
    } else {
      std::cerr << trace_path << ": INVALID: " << error << "\n";
      rc = 1;
    }
  }
  return rc;
}
