// cpr_tune — autotune any registered model family on a CSV of measurements
// and save the cross-validated winner as a servable model archive.
//
// Usage:
//   cpr_tune --data=measurements.csv --model=<family> [--out=tuned.cprm]
//       [--trials=24] [--folds=3] [--rungs=3] [--eta=3] [--threads=1]
//       [--seed=42] [--cells=16] [--log-dims=a,b] [--categorical=name:k,...]
//       [--hyper=key:value,...] [--space=axis,...] [--json=trials.json]
//       [--csv=trials.csv] [--quantize=fp64] [--profile]
//       [--trace-out=trace.json]
//
// The search space comes from the family's registry declaration; --hyper
// pins keys (they are removed from the space and fixed at the given value),
// and --space overrides or adds axes with the grammar
//   name=v1|v2|...  |  name=lo..hi[:log|:int|:logint]
// Candidates are evaluated by k-fold cross-validated MLogQ under successive
// halving (rung sample budgets grow by eta until the final rung sees every
// row); evaluation parallelizes over --threads worker threads with
// bitwise-identical output for a fixed --seed regardless of the thread
// count. The winner is refit on the full data and written through the
// versioned archive, so cpr_predict / cpr_serve host it directly.

#include <cmath>
#include <fstream>
#include <iostream>
#include <sstream>

#include "common/dataset_io.hpp"
#include "common/evaluation.hpp"
#include "core/model_file.hpp"
#include "obs/profile.hpp"
#include "tune/tuner.hpp"
#include "util/cli.hpp"
#include "util/quantize.hpp"
#include "util/table.hpp"

using namespace cpr;

namespace {

void usage(std::ostream& out) {
  out << "usage: cpr_tune --data=measurements.csv --model=<family> [flags]\n\n"
         "Autotunes any registered family by k-fold cross-validated MLogQ\n"
         "under successive halving, refits the winner on the full data, and\n"
         "saves it as a servable archive.\n\n"
         "  --data=<path>          training CSV (required)\n"
         "  --model=<family>       model family to tune (required; list below)\n"
         "  --out=<path>           winner archive (default: tuned.cprm)\n"
         "  --trials=<n>           rung-0 candidate count (default: 24)\n"
         "  --folds=<n>            cross-validation folds per rung (default: 3)\n"
         "  --rungs=<n>            successive-halving rounds (default: 3)\n"
         "  --eta=<f>              survivor fraction / budget growth (default: 3)\n"
         "  --threads=<n>          evaluation worker threads (default: 1;\n"
         "                         results are bitwise-independent of this)\n"
         "  --seed=<n>             sampling/fold seed (default: 42)\n"
         "  --cells=<n>            pin the grid-cell axis (default: 16, tunable)\n"
         "  --log-dims=a,b,...     dimensions with logarithmic grid spacing\n"
         "                         (default: none)\n"
         "  --categorical=n:k,...  k-way categorical columns (default: none)\n"
         "  --hyper=key:value,...  pin hyper-parameter axes (default: none)\n"
         "  --space=axis,...       override/add axes with the grammar\n"
         "                         name=v1|v2|...  or  name=lo..hi[:log|:int|:logint]\n"
         "                         (default: the family's registered space)\n"
         "  --json=<path>          write the ranked trials as JSON (default: off)\n"
         "  --csv=<path>           write the ranked trials as CSV (default: off)\n"
         "  --quantize=<mode>      matrix payload encoding of the winner archive:\n"
         "                         fp64 (default, lossless), fp32, fp16, or int8\n"
         "                         (per-column scale/offset); lossy modes shrink\n"
         "                         the archive, keep serving unchanged, but cannot\n"
         "                         be refit through OBSERVE/REFIT\n"
         "  --profile              print a per-phase time table (tune_rung,\n"
         "                         tune_refit, and the kernels underneath)\n"
         "                         after the tune (default: off)\n"
         "  --trace-out=<path>     also capture per-scope events and write\n"
         "                         them as Chrome trace-event JSON, viewable\n"
         "                         in Perfetto (default: off)\n\n"
         "registered model families:\n";
  const auto& registry = common::ModelRegistry::instance();
  for (const auto& name : registry.family_names()) {
    out << "  " << name << " — " << registry.description(name) << "\n";
  }
}

std::string fmt_error(double v) { return std::isfinite(v) ? Table::fmt(v, 4) : "-"; }

/// JSON string escaping: config/error text carries user --space input.
std::string json_escaped(const std::string& text) {
  std::string out;
  out.reserve(text.size());
  for (const char c : text) {
    if (c == '"' || c == '\\') out.push_back('\\');
    if (static_cast<unsigned char>(c) < 0x20) {
      out.push_back(' ');  // control chars (incl. newlines): flatten
      continue;
    }
    out.push_back(c);
  }
  return out;
}

/// Numbers must stay parsable: non-finite scores become null.
std::string json_number(double v) {
  if (!std::isfinite(v)) return "null";
  std::ostringstream stream;
  stream.precision(17);
  stream << v;
  return stream.str();
}

void write_trials_json(const std::string& path, const tune::TuningOutcome& outcome,
                       std::uint64_t seed) {
  std::ofstream out(path);
  CPR_CHECK_MSG(out.good(), "cannot open " << path << " for writing");
  out << "{\"family\": \"" << json_escaped(outcome.family) << "\", \"seed\": " << seed
      << ", \"trials\": [\n";
  for (std::size_t i = 0; i < outcome.ranked.size(); ++i) {
    const auto& trial = outcome.ranked[i];
    out << "  {\"rank\": " << i + 1 << ", \"index\": " << trial.index
        << ", \"config\": \"" << json_escaped(trial.config)
        << "\", \"rung\": " << trial.rung << ", \"samples\": " << trial.samples
        << ", ";
    if (trial.failed()) {
      out << "\"error\": \"" << json_escaped(trial.error) << "\"}";
    } else {
      out << "\"mlogq\": " << json_number(trial.mlogq)
          << ", \"rmse_log\": " << json_number(trial.rmse_log) << "}";
    }
    out << (i + 1 < outcome.ranked.size() ? "," : "") << "\n";
  }
  out << "]}\n";
  CPR_CHECK_MSG(out.good(), "write to " << path << " failed");
}

}  // namespace

int main(int argc, char** argv) {
  CliArgs args(argc, argv);
  if (args.has("help")) {
    usage(std::cout);
    return 0;
  }
  const std::string data_path = args.get_string("data", "");
  const std::string model_name = args.get_string("model", "");
  if (data_path.empty() || model_name.empty()) {
    usage(std::cerr);
    return 1;
  }

  try {
    const auto& registry = common::ModelRegistry::instance();
    CPR_CHECK_MSG(registry.has_family(model_name),
                  "unknown model family '" << model_name
                                           << "' (run with --help for the list)");

    const bool profile = args.has("profile");
    const std::string trace_path = args.get_string("trace-out", "");
    if (profile || !trace_path.empty()) {
      obs::Profiler::instance().set_enabled(true, /*capture=*/!trace_path.empty());
    }

    const auto loaded = common::load_dataset_csv(data_path);
    std::cout << "loaded " << loaded.data.size() << " measurements of "
              << loaded.parameter_names.size() << " parameters from " << data_path
              << "\n";

    const auto log_dims =
        common::split_fields(args.get_string("log-dims", ""), ',', "--log-dims");
    const auto categoricals =
        common::parse_categorical_entries(args.get_string("categorical", ""));

    common::ModelSpec base;
    base.params = common::infer_parameter_specs(loaded, log_dims, categoricals);
    base.cells = static_cast<std::size_t>(args.get_int("cells", 16));
    base.hyper = common::parse_hyper_entries(args.get_string("hyper", ""));

    // The family's declared axes, minus anything the user pinned, plus
    // --space overrides.
    std::vector<common::HyperAxis> axes =
        registry.has_search_space(model_name) ? registry.search_space(model_name, base)
                                              : std::vector<common::HyperAxis>{};
    std::erase_if(axes, [&](const common::HyperAxis& axis) {
      return base.hyper.count(axis.name) > 0 ||
             (axis.name == "cells" && args.has("cells"));
    });
    axes = tune::merge_axes(std::move(axes),
                            tune::parse_search_space(args.get_string("space", "")));

    tune::TunerOptions options;
    options.max_trials = static_cast<std::size_t>(args.get_int("trials", 24));
    options.folds = static_cast<std::size_t>(args.get_int("folds", 3));
    options.rungs = static_cast<std::size_t>(args.get_int("rungs", 3));
    options.eta = args.get_double("eta", 3.0);
    options.threads = static_cast<std::size_t>(args.get_int("threads", 1));
    options.seed = static_cast<std::uint64_t>(args.get_int("seed", 42));
    options.progress = tune::stream_progress(std::cout);

    const tune::Tuner tuner(options);
    const auto outcome =
        tuner.run(model_name, base, loaded.data, tune::SearchSpace(axes));

    Table table({"rank", "config", "rung", "samples", "CV MLogQ", "CV RMSElog", "note"});
    for (std::size_t i = 0; i < outcome.ranked.size(); ++i) {
      const auto& trial = outcome.ranked[i];
      table.add_row({Table::fmt(i + 1), trial.config, Table::fmt(trial.rung),
                     Table::fmt(trial.samples), fmt_error(trial.mlogq),
                     fmt_error(trial.rmse_log),
                     trial.failed() ? trial.error : (i == 0 ? "winner" : "")});
    }
    table.print(std::cout);
    if (args.has("csv")) {
      const std::string csv_path = args.get_string("csv", "trials.csv");
      table.write_csv(csv_path);
      std::cout << "trials csv written to " << csv_path << "\n";
    }
    if (args.has("json")) {
      const std::string json_path = args.get_string("json", "");
      CPR_CHECK_MSG(!json_path.empty(), "--json needs a target path");
      write_trials_json(json_path, outcome, options.seed);
      std::cout << "trials json written to " << json_path << "\n";
    }

    std::cout << "selected " << outcome.ranked.front().config << " (CV MLogQ "
              << Table::fmt(outcome.best_mlogq, 4) << ")\n";
    std::cout << "training MLogQ (resubstitution): "
              << common::evaluate_mlogq(*outcome.model, loaded.data) << "\n";
    if (profile || !trace_path.empty()) {
      std::cout << "profile (per-phase wall time):\n";
      obs::Profiler::instance().render_table().print(std::cout);
    }
    if (!trace_path.empty()) {
      std::ofstream trace_out(trace_path);
      trace_out << obs::Profiler::instance().render_chrome_json();
      CPR_CHECK_MSG(trace_out.good(), "cannot write trace to " << trace_path);
      std::cout << "profile trace written to " << trace_path << "\n";
    }
    const std::string out_path = args.get_string("out", "tuned.cprm");
    const QuantMode quantize =
        util::parse_quant_mode(args.get_string("quantize", "fp64"));
    core::save_model_file(*outcome.model, out_path, quantize);
    std::cout << "wrote " << core::model_archive_bytes(*outcome.model, quantize)
              << "-byte " << util::quant_mode_name(quantize) << " "
              << outcome.model->name() << " model to " << out_path << "\n";
    return 0;
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 1;
  }
}
