// cpr_train — fit a CPR performance model from a CSV of measurements.
//
// Usage:
//   cpr_train --data=measurements.csv --out=model.cprm [--cells=16] [--rank=8]
//       [--lambda=1e-4] [--log-dims=m,n,k] [--categorical=solver:4] [--tune]
//
// The CSV layout is one header row naming the parameters plus a final
// "seconds" column (see common/dataset_io.hpp). Parameter ranges are taken
// from the data; dimensions listed in --log-dims get logarithmic grid
// spacing (inputs/architecture), the rest uniform (configuration), and
// --categorical=name:k marks k-way categorical columns. With --tune, a
// validation-split hyper-parameter search replaces the fixed cells/rank.

#include <cmath>
#include <iostream>
#include <sstream>

#include "common/dataset_io.hpp"
#include "common/evaluation.hpp"
#include "core/model_file.hpp"
#include "core/tuning.hpp"
#include "util/cli.hpp"

using namespace cpr;

namespace {

std::vector<std::string> split(const std::string& text, char delimiter) {
  std::vector<std::string> parts;
  std::stringstream stream(text);
  std::string part;
  while (std::getline(stream, part, delimiter)) {
    if (!part.empty()) parts.push_back(part);
  }
  return parts;
}

}  // namespace

int main(int argc, char** argv) {
  CliArgs args(argc, argv);
  const std::string data_path = args.get_string("data", "");
  const std::string out_path = args.get_string("out", "model.cprm");
  if (data_path.empty()) {
    std::cerr << "usage: cpr_train --data=measurements.csv --out=model.cprm "
                 "[--cells=16] [--rank=8] [--lambda=1e-4] [--log-dims=a,b] "
                 "[--categorical=name:k,...] [--tune]\n";
    return 1;
  }

  try {
    const auto loaded = common::load_dataset_csv(data_path);
    const auto& names = loaded.parameter_names;
    std::cout << "loaded " << loaded.data.size() << " measurements of "
              << names.size() << " parameters from " << data_path << "\n";

    // Build parameter specs from the data ranges and the flags.
    const auto log_dims = split(args.get_string("log-dims", ""), ',');
    std::vector<std::pair<std::string, std::size_t>> categoricals;
    for (const auto& spec : split(args.get_string("categorical", ""), ',')) {
      const auto colon = spec.find(':');
      CPR_CHECK_MSG(colon != std::string::npos, "--categorical needs name:count");
      categoricals.emplace_back(spec.substr(0, colon),
                                std::stoul(spec.substr(colon + 1)));
    }

    std::vector<grid::ParameterSpec> specs;
    for (std::size_t j = 0; j < names.size(); ++j) {
      double lo = loaded.data.x(0, j), hi = lo;
      bool integral = true;
      for (std::size_t i = 0; i < loaded.data.size(); ++i) {
        const double v = loaded.data.x(i, j);
        lo = std::min(lo, v);
        hi = std::max(hi, v);
        integral = integral && v == std::round(v);
      }
      bool handled = false;
      for (const auto& [cat_name, categories] : categoricals) {
        if (cat_name == names[j]) {
          specs.push_back(grid::ParameterSpec::categorical(names[j], categories));
          handled = true;
        }
      }
      if (handled) continue;
      const bool is_log =
          std::find(log_dims.begin(), log_dims.end(), names[j]) != log_dims.end();
      CPR_CHECK_MSG(hi > lo, "parameter '" << names[j] << "' is constant in the data");
      if (is_log) {
        CPR_CHECK_MSG(lo > 0.0, "log spacing needs positive '" << names[j] << "'");
        specs.push_back(grid::ParameterSpec::numerical_log(names[j], lo, hi, integral));
      } else {
        specs.push_back(grid::ParameterSpec::numerical_uniform(names[j], lo, hi, integral));
      }
    }

    core::CprModel model = [&] {
      if (args.has("tune")) {
        core::CprTuner tuner;
        tuner.specs = specs;
        tuner.progress = [](const core::CprTuningResult::Candidate& candidate) {
          std::cout << "  cells=" << candidate.cells << " rank=" << candidate.rank
                    << " lambda=" << candidate.regularization
                    << " -> validation MLogQ " << candidate.error << "\n";
        };
        auto [winner, result] =
            tuner.tune(loaded.data, nullptr, core::CprTuningGrid::for_dimensions(specs.size()));
        std::cout << "selected cells=" << result.best_cells
                  << " rank=" << result.best_options.rank
                  << " (validation MLogQ " << result.best_error << ")\n";
        return std::move(winner);
      }
      core::CprOptions options;
      options.rank = static_cast<std::size_t>(args.get_int("rank", 8));
      options.regularization = args.get_double("lambda", 1e-4);
      core::CprModel fixed(
          grid::Discretization(specs, static_cast<std::size_t>(args.get_int("cells", 16))),
          options);
      fixed.fit(loaded.data);
      return fixed;
    }();

    std::cout << "training MLogQ (resubstitution): "
              << common::evaluate_mlogq(model, loaded.data) << "\n";
    core::save_model_file(model, out_path);
    std::cout << "wrote " << model.model_size_bytes() << "-byte model to " << out_path
              << "\n";
    return 0;
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 1;
  }
}
