// cpr_train — fit a performance model of any registered family from a CSV
// of measurements.
//
// Usage:
//   cpr_train --data=measurements.csv --out=model.cprm [--model=cpr]
//       [--cells=16] [--rank=8] [--lambda=1e-4] [--log-dims=m,n,k]
//       [--categorical=solver:4] [--hyper=key:value,...] [--tune]
//
// The CSV layout is one header row naming the parameters plus a final
// "seconds" column (see common/dataset_io.hpp). Parameter ranges are taken
// from the data; dimensions listed in --log-dims get logarithmic grid
// spacing (inputs/architecture), the rest uniform (configuration), and
// --categorical=name:k marks k-way categorical columns. --model selects the
// family (cpr_train --help lists them); --hyper passes family-specific
// hyper-parameters (e.g. --model=rf --hyper=trees:64,depth:12). With --tune
// (CPR only), a validation-split hyper-parameter search replaces the fixed
// cells/rank. The written archive is polymorphic: cpr_predict serves any
// family through the same file format.

#include <cmath>
#include <iostream>
#include <sstream>

#include "common/dataset_io.hpp"
#include "common/evaluation.hpp"
#include "common/model_registry.hpp"
#include "core/model_file.hpp"
#include "core/tuning.hpp"
#include "util/cli.hpp"

using namespace cpr;

namespace {

/// Splits a --flag CSV list through the shared strict splitter: empty
/// entries (as in --log-dims=a,,b) are rejected with a usage error instead
/// of being dropped silently.
std::vector<std::string> split_csv_flag(const std::string& text, char delimiter,
                                        const std::string& flag) {
  return common::split_fields(text, delimiter, "--" + flag);
}

void usage(std::ostream& out) {
  out << "usage: cpr_train --data=measurements.csv --out=model.cprm "
               "[--model=<family>] [--cells=16] [--rank=8] [--lambda=1e-4] "
               "[--log-dims=a,b] [--categorical=name:k,...] "
               "[--hyper=key:value,...] [--tune]\n\nregistered model families:\n";
  const auto& registry = common::ModelRegistry::instance();
  for (const auto& name : registry.family_names()) {
    out << "  " << name << " — " << registry.description(name) << "\n";
  }
}

}  // namespace

int main(int argc, char** argv) {
  CliArgs args(argc, argv);
  if (args.has("help")) {
    usage(std::cout);
    return 0;
  }
  const std::string data_path = args.get_string("data", "");
  const std::string out_path = args.get_string("out", "model.cprm");
  if (data_path.empty()) {
    usage(std::cerr);
    return 1;
  }

  try {
    const std::string model_name = args.get_string("model", "cpr");
    CPR_CHECK_MSG(common::ModelRegistry::instance().has_family(model_name),
                  "unknown model family '" << model_name
                                           << "' (run with --help for the list)");

    const auto loaded = common::load_dataset_csv(data_path);
    const auto& names = loaded.parameter_names;
    std::cout << "loaded " << loaded.data.size() << " measurements of "
              << names.size() << " parameters from " << data_path << "\n";

    // Build parameter specs from the data ranges and the flags.
    const auto log_dims = split_csv_flag(args.get_string("log-dims", ""), ',', "log-dims");
    std::vector<std::pair<std::string, std::size_t>> categoricals;
    for (const auto& spec :
         split_csv_flag(args.get_string("categorical", ""), ',', "categorical")) {
      const auto colon = spec.find(':');
      CPR_CHECK_MSG(colon != std::string::npos, "--categorical needs name:count");
      categoricals.emplace_back(spec.substr(0, colon),
                                std::stoul(spec.substr(colon + 1)));
    }

    std::vector<grid::ParameterSpec> specs;
    for (std::size_t j = 0; j < names.size(); ++j) {
      double lo = loaded.data.x(0, j), hi = lo;
      bool integral = true;
      for (std::size_t i = 0; i < loaded.data.size(); ++i) {
        const double v = loaded.data.x(i, j);
        lo = std::min(lo, v);
        hi = std::max(hi, v);
        integral = integral && v == std::round(v);
      }
      bool handled = false;
      for (const auto& [cat_name, categories] : categoricals) {
        if (cat_name == names[j]) {
          specs.push_back(grid::ParameterSpec::categorical(names[j], categories));
          handled = true;
        }
      }
      if (handled) continue;
      const bool is_log =
          std::find(log_dims.begin(), log_dims.end(), names[j]) != log_dims.end();
      CPR_CHECK_MSG(hi > lo, "parameter '" << names[j] << "' is constant in the data");
      if (is_log) {
        CPR_CHECK_MSG(lo > 0.0, "log spacing needs positive '" << names[j] << "'");
        specs.push_back(grid::ParameterSpec::numerical_log(names[j], lo, hi, integral));
      } else {
        specs.push_back(grid::ParameterSpec::numerical_uniform(names[j], lo, hi, integral));
      }
    }

    common::RegressorPtr model;
    if (args.has("tune")) {
      CPR_CHECK_MSG(model_name == "cpr",
                    "--tune currently supports --model=cpr only (got '" << model_name
                                                                        << "')");
      core::CprTuner tuner;
      tuner.specs = specs;
      tuner.progress = [](const core::CprTuningResult::Candidate& candidate) {
        std::cout << "  cells=" << candidate.cells << " rank=" << candidate.rank
                  << " lambda=" << candidate.regularization
                  << " -> validation MLogQ " << candidate.error << "\n";
      };
      auto [winner, result] =
          tuner.tune(loaded.data, nullptr, core::CprTuningGrid::for_dimensions(specs.size()));
      std::cout << "selected cells=" << result.best_cells
                << " rank=" << result.best_options.rank
                << " (validation MLogQ " << result.best_error << ")\n";
      model = std::make_unique<core::CprModel>(std::move(winner));
    } else {
      // Assemble the ModelSpec: the parameter space plus hyper-parameters.
      // --rank/--lambda are conveniences for the tensor families; --hyper
      // passes anything (unknown keys are rejected by the registry).
      common::ModelSpec spec;
      spec.params = specs;
      spec.cells = static_cast<std::size_t>(args.get_int("cells", 16));
      if (args.has("rank")) spec.hyper["rank"] = args.get_string("rank", "8");
      if (args.has("lambda")) spec.hyper["lambda"] = args.get_string("lambda", "1e-4");
      for (const auto& entry :
           split_csv_flag(args.get_string("hyper", ""), ',', "hyper")) {
        const auto colon = entry.find(':');
        CPR_CHECK_MSG(colon != std::string::npos && colon > 0,
                      "--hyper needs key:value entries (got '" << entry << "')");
        spec.hyper[entry.substr(0, colon)] = entry.substr(colon + 1);
      }
      model = common::ModelRegistry::instance().create(model_name, spec);
      model->fit(loaded.data);
    }

    std::cout << "fitted " << model->name() << " (family '" << model_name << "')\n";
    std::cout << "training MLogQ (resubstitution): "
              << common::evaluate_mlogq(*model, loaded.data) << "\n";
    core::save_model_file(*model, out_path);
    std::cout << "wrote " << model->model_size_bytes() << "-byte model to " << out_path
              << "\n";
    return 0;
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 1;
  }
}
