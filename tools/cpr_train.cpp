// cpr_train — fit a performance model of any registered family from a CSV
// of measurements.
//
// Usage:
//   cpr_train --data=measurements.csv --out=model.cprm [--model=cpr]
//       [--cells=16] [--rank=8] [--lambda=1e-4] [--log-dims=m,n,k]
//       [--categorical=solver:4] [--hyper=key:value,...] [--tune]
//       [--quantize=fp64] [--profile] [--trace-out=trace.json]
//
// The CSV layout is one header row naming the parameters plus a final
// "seconds" column (see common/dataset_io.hpp). Parameter ranges are taken
// from the data; dimensions listed in --log-dims get logarithmic grid
// spacing (inputs/architecture), the rest uniform (configuration), and
// --categorical=name:k marks k-way categorical columns. --model selects the
// family (cpr_train --help lists them); --hyper passes family-specific
// hyper-parameters (e.g. --model=rf --hyper=trees:64,depth:12). With
// --tune, the universal cross-validating tuner (src/tune) searches the
// family's registered hyper-parameter space instead of fitting one fixed
// configuration — any family works, --hyper/--cells pin axes, and
// --tune-threads parallelizes candidate evaluation (cpr_tune exposes the
// full tuning surface: --space overrides, rung control, trial export). The
// written archive is polymorphic: cpr_predict serves any family through
// the same file format.

#include <cmath>
#include <fstream>
#include <iostream>
#include <sstream>

#include "common/dataset_io.hpp"
#include "common/evaluation.hpp"
#include "common/model_registry.hpp"
#include "core/model_file.hpp"
#include "obs/profile.hpp"
#include "tune/tuner.hpp"
#include "util/cli.hpp"
#include "util/quantize.hpp"
#include "util/table.hpp"

using namespace cpr;

namespace {

/// Splits a --flag CSV list through the shared strict splitter: empty
/// entries (as in --log-dims=a,,b) are rejected with a usage error instead
/// of being dropped silently.
std::vector<std::string> split_csv_flag(const std::string& text, char delimiter,
                                        const std::string& flag) {
  return common::split_fields(text, delimiter, "--" + flag);
}

void usage(std::ostream& out) {
  out << "usage: cpr_train --data=measurements.csv [--out=model.cprm] "
         "[--model=<family>] [flags]\n\n"
         "Fits a model of any registered family from a CSV of measurements\n"
         "(parameter columns + a final 'seconds' column) and saves it as a\n"
         "servable archive.\n\n"
         "  --data=<path>          training CSV (required)\n"
         "  --out=<path>           output archive (default: model.cprm)\n"
         "  --model=<family>       model family (default: cpr; list below)\n"
         "  --cells=<n>            grid cells per numerical dimension (default: 16)\n"
         "  --rank=<n>             CP rank convenience for tensor families (default: 8)\n"
         "  --lambda=<f>           regularization convenience (default: 1e-4)\n"
         "  --log-dims=a,b,...     dimensions with logarithmic grid spacing\n"
         "                         (default: none)\n"
         "  --categorical=n:k,...  k-way categorical columns (default: none)\n"
         "  --hyper=key:value,...  family-specific hyper-parameters (default: none)\n"
         "  --tune                 search the family's registered hyper-parameter\n"
         "                         space with the cross-validating tuner instead of\n"
         "                         fitting one fixed configuration\n"
         "  --tune-threads=<n>     tuner worker threads (default: 1)\n"
         "  --seed=<n>             training/tuning seed (default: 42)\n"
         "  --quantize=<mode>      matrix payload encoding of the written archive:\n"
         "                         fp64 (default, lossless), fp32, fp16, or int8\n"
         "                         (per-column scale/offset); lossy modes shrink\n"
         "                         the archive, keep serving unchanged, but cannot\n"
         "                         be refit through OBSERVE/REFIT\n"
         "  --profile              print a per-phase kernel time table\n"
         "                         (MTTKRP, fused Gram+RHS, potrf, QR, ...)\n"
         "                         after the fit (default: off)\n"
         "  --trace-out=<path>     also capture per-scope events and write\n"
         "                         them as Chrome trace-event JSON, viewable\n"
         "                         in Perfetto (default: off)\n\n"
         "registered model families:\n";
  const auto& registry = common::ModelRegistry::instance();
  for (const auto& name : registry.family_names()) {
    out << "  " << name << " — " << registry.description(name) << "\n";
  }
}

}  // namespace

int main(int argc, char** argv) {
  CliArgs args(argc, argv);
  if (args.has("help")) {
    usage(std::cout);
    return 0;
  }
  const std::string data_path = args.get_string("data", "");
  const std::string out_path = args.get_string("out", "model.cprm");
  if (data_path.empty()) {
    usage(std::cerr);
    return 1;
  }

  try {
    const std::string model_name = args.get_string("model", "cpr");
    CPR_CHECK_MSG(common::ModelRegistry::instance().has_family(model_name),
                  "unknown model family '" << model_name
                                           << "' (run with --help for the list)");

    const bool profile = args.has("profile");
    const std::string trace_path = args.get_string("trace-out", "");
    if (profile || !trace_path.empty()) {
      obs::Profiler::instance().set_enabled(true, /*capture=*/!trace_path.empty());
    }

    const auto loaded = common::load_dataset_csv(data_path);
    const auto& names = loaded.parameter_names;
    std::cout << "loaded " << loaded.data.size() << " measurements of "
              << names.size() << " parameters from " << data_path << "\n";

    // Build parameter specs from the data ranges and the flags.
    const auto log_dims = split_csv_flag(args.get_string("log-dims", ""), ',', "log-dims");
    const auto categoricals =
        common::parse_categorical_entries(args.get_string("categorical", ""));
    const auto specs = common::infer_parameter_specs(loaded, log_dims, categoricals);

    // Assemble the ModelSpec: the parameter space plus hyper-parameters.
    // --rank/--lambda are conveniences for the tensor families; --hyper
    // passes anything (unknown keys are rejected by the registry).
    common::ModelSpec spec;
    spec.params = specs;
    spec.cells = static_cast<std::size_t>(args.get_int("cells", 16));
    if (args.has("rank")) spec.hyper["rank"] = args.get_string("rank", "8");
    if (args.has("lambda")) spec.hyper["lambda"] = args.get_string("lambda", "1e-4");
    // --hyper entries take precedence over the --rank/--lambda conveniences.
    for (auto& [key, value] : common::parse_hyper_entries(args.get_string("hyper", ""))) {
      spec.hyper[key] = value;
    }

    common::RegressorPtr model;
    if (args.has("tune")) {
      // Search the family's registered space; axes the flags pinned
      // (--hyper keys, --rank/--lambda, explicit --cells) stay fixed.
      auto axes = common::ModelRegistry::instance().search_space(model_name, spec);
      std::erase_if(axes, [&](const common::HyperAxis& axis) {
        return spec.hyper.count(axis.name) > 0 ||
               (axis.name == "cells" && args.has("cells"));
      });

      tune::TunerOptions options;
      options.threads = static_cast<std::size_t>(args.get_int("tune-threads", 1));
      options.seed = static_cast<std::uint64_t>(args.get_int("seed", 42));
      options.progress = tune::stream_progress(std::cout);
      const tune::Tuner tuner(options);
      auto outcome = tuner.run(model_name, spec, loaded.data, tune::SearchSpace(axes));
      std::cout << "selected " << outcome.ranked.front().config << " (CV MLogQ "
                << Table::fmt(outcome.best_mlogq, 4) << ")\n";
      model = std::move(outcome.model);
    } else {
      model = common::ModelRegistry::instance().create(model_name, spec);
      model->fit(loaded.data);
    }

    std::cout << "fitted " << model->name() << " (family '" << model_name << "')\n";
    std::cout << "training MLogQ (resubstitution): "
              << common::evaluate_mlogq(*model, loaded.data) << "\n";
    if (profile || !trace_path.empty()) {
      std::cout << "profile (per-phase wall time):\n";
      obs::Profiler::instance().render_table().print(std::cout);
    }
    if (!trace_path.empty()) {
      std::ofstream trace_out(trace_path);
      trace_out << obs::Profiler::instance().render_chrome_json();
      CPR_CHECK_MSG(trace_out.good(), "cannot write trace to " << trace_path);
      std::cout << "profile trace written to " << trace_path << "\n";
    }
    const QuantMode quantize =
        util::parse_quant_mode(args.get_string("quantize", "fp64"));
    core::save_model_file(*model, out_path, quantize);
    std::cout << "wrote " << core::model_archive_bytes(*model, quantize)
              << "-byte " << util::quant_mode_name(quantize) << " model to "
              << out_path << "\n";
    return 0;
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 1;
  }
}
