// cpr_serve — long-lived multi-model inference server over a directory of
// registry archives (src/serve). Speaks the newline-delimited protocol
// (serve/protocol.hpp) on stdin/stdout, on a Unix stream socket with
// --socket=<path> (one thread per connection; QUIT from any connection
// shuts the server down), or on a TCP port with --tcp=<port> (epoll event
// loop, tens of thousands of connections, optional binary framing via
// FRAME BINARY, bounded admission shedding with BUSY; QUIT closes only its
// own connection). SIGINT/SIGTERM drain gracefully on every transport:
// stop accepting, finish and flush in-flight requests, exit 0.
//
// Usage:
//   cpr_serve --models=<dir> [--socket=/tmp/cpr.sock | --tcp=<port>]
//       [--threads=<n>] [--workers=2] [--max-batch=64] [--max-wait-us=200]
//       [--cache=4096] [--cache-shards=8] [--io-threads=2]
//       [--max-inflight=1024] [--max-backlog=1048576]
//       [--trace-sample=<n>] [--trace-out=trace.json]
//       [--metrics-out=metrics.prom]
//
// Example session (stdio):
//   LOAD mm-cpr
//   PREDICT mm-cpr 1024,512,8
//   STATS
//   QUIT

#include <atomic>
#include <csignal>
#include <cstring>
#include <fstream>
#include <iostream>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include "common/model_registry.hpp"
#include "core/model_file.hpp"
#include "serve/server.hpp"
#include "serve/tcp_server.hpp"
#include "util/cli.hpp"
#include "util/log.hpp"

using namespace cpr;

namespace {

void usage(std::ostream& out) {
  out << "usage: cpr_serve --models=<dir> [flags]\n\n"
         "Serves every <name>.cprm archive in --models over the line protocol\n"
         "  PREDICT <model> <v1,v2,...> -> OK <seconds>\n"
         "  OBSERVE <model> <v1,v2,...> <seconds> | REFIT <model>\n"
         "  LOAD <model> | UNLOAD <model> | STATS | METRICS | QUIT\n"
         "on stdin/stdout, a Unix stream socket (--socket), or a TCP port\n"
         "(--tcp; epoll event loop, supports FRAME BINARY length-prefixed\n"
         "framing and sheds with BUSY under overload — see\n"
         "docs/SERVE_PROTOCOL.md for the normative spec). SIGINT/SIGTERM\n"
         "drain gracefully: stop accepting, flush in-flight work, exit 0.\n\n"
         "  --models=<dir>      directory of model archives (required)\n"
         "  --socket=<path>     listen on a Unix stream socket instead of stdio\n"
         "                      (default: stdio)\n"
         "  --tcp=<port>        listen on a TCP port (0 picks an ephemeral\n"
         "                      port, printed on stderr); excludes --socket\n"
         "  --io-threads=<n>    TCP event-loop threads (default: 2)\n"
         "  --max-inflight=<n>  TCP admission cap: requests dispatched but\n"
         "                      unanswered before new ones get BUSY\n"
         "                      (default: 1024)\n"
         "  --max-backlog=<n>   TCP per-connection write-backlog bytes before\n"
         "                      requests get BUSY (default: 1048576)\n"
         "  --threads=<n>       cap the OpenMP team used by predict_batch\n"
         "                      (default: the OMP_NUM_THREADS environment)\n"
         "  --workers=<n>       micro-batcher inference threads (default: 2)\n"
         "  --max-batch=<n>     flush a batch at this many queued requests\n"
         "                      (default: 64)\n"
         "  --max-wait-us=<n>   flush an under-full batch after this wait\n"
         "                      (default: 200)\n"
         "  --cache=<n>         prediction-cache entries, 0 disables\n"
         "                      (default: 4096)\n"
         "  --cache-shards=<n>  cache lock shards (default: 8)\n"
         "  --refit-after=<n>   auto-refit a model once it has this many\n"
         "                      buffered observations; REFIT always works\n"
         "                      (default: 0 = explicit REFIT only)\n"
         "  --observe-buffer=<n> per-model observation-buffer bound; once\n"
         "                      full the oldest observation is dropped\n"
         "                      (default: 4096)\n"
         "  --trace-sample=<n>  trace every n-th request end to end\n"
         "                      (default: 0 = tracing off)\n"
         "  --trace-out=<path>  write sampled traces as Chrome trace-event\n"
         "                      JSON on exit, viewable in Perfetto\n"
         "                      (default: off)\n"
         "  --metrics-out=<path> write the Prometheus exposition (same text\n"
         "                      the METRICS verb returns) on exit\n"
         "                      (default: off)\n\n"
         "Operational messages go to stderr via the structured logger\n"
         "(CPR_LOG_LEVEL=debug|info|warn|error|off, CPR_LOG=json).\n";
}

/// Inventory pass: tell the operator what the directory offers and flag
/// archives this build cannot load before any client connects.
void report_inventory(const std::string& dir) {
  const auto names = core::list_model_archives(dir);
  log_line(LogLevel::Info, "model inventory",
           {{"dir", dir}, {"archives", std::to_string(names.size())}});
  for (const auto& name : names) {
    try {
      const std::string tag = core::peek_model_type(core::model_file_path(dir, name));
      if (common::ModelRegistry::instance().has_loader(tag)) {
        log_line(LogLevel::Info, "model archive", {{"model", name}, {"type", tag}});
      } else {
        log_line(LogLevel::Warn, "unloadable model archive: unknown type tag",
                 {{"model", name}, {"type", tag}});
      }
    } catch (const std::exception& e) {
      log_line(LogLevel::Warn, "unreadable model archive",
               {{"model", name}, {"error", e.what()}});
    }
  }
}

// ------------------------------------------------------------------ signals
// SIGINT/SIGTERM write one byte to a self-pipe (the only async-signal-safe
// channel); transports watch the read end and drain gracefully.

int g_signal_pipe[2] = {-1, -1};

extern "C" void on_shutdown_signal(int) {
  const char byte = 1;
  [[maybe_unused]] const ssize_t n = ::write(g_signal_pipe[1], &byte, 1);
}

void install_signal_handlers() {
  if (::pipe(g_signal_pipe) != 0) {
    CPR_LOG_WARN("pipe() failed, signals will not drain gracefully");
    return;
  }
  struct sigaction action{};
  action.sa_handler = on_shutdown_signal;
  sigemptyset(&action.sa_mask);
  action.sa_flags = 0;  // no SA_RESTART: blocking accept/poll must wake
  ::sigaction(SIGINT, &action, nullptr);
  ::sigaction(SIGTERM, &action, nullptr);
  ::signal(SIGPIPE, SIG_IGN);  // a vanished client must not kill the server
}

bool shutdown_signalled() {
  if (g_signal_pipe[0] < 0) return false;
  pollfd probe{g_signal_pipe[0], POLLIN, 0};
  return ::poll(&probe, 1, 0) > 0;
}

/// Writes the whole buffer, resuming across short writes and EINTR.
bool write_all(int fd, const std::string& text) {
  std::size_t sent = 0;
  while (sent < text.size()) {
    const ssize_t n = ::write(fd, text.data() + sent, text.size() - sent);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    sent += static_cast<std::size_t>(n);
  }
  return true;
}

/// Serves one established connection until QUIT/EOF. Returns true when the
/// client asked the whole server to quit. Handling is synchronous per line,
/// so when a drain closes the read side every accepted request has already
/// been answered and flushed.
bool serve_stream(serve::Server& server, int fd) {
  server.stats().record_connection_open();
  std::string pending;
  char buffer[4096];
  bool quit = false;
  for (;;) {
    const ssize_t got = ::read(fd, buffer, sizeof(buffer));
    if (got <= 0) break;  // EOF, drain shutdown, or error: drop the connection
    pending.append(buffer, static_cast<std::size_t>(got));
    std::size_t newline;
    while ((newline = pending.find('\n')) != std::string::npos) {
      std::string line = pending.substr(0, newline);
      pending.erase(0, newline + 1);
      if (!line.empty() && line.back() == '\r') line.pop_back();
      if (line.empty()) continue;
      const auto reply = server.handle_line(line);
      if (!write_all(fd, reply.text + "\n")) {
        server.stats().record_connection_close();
        return false;
      }
      if (reply.quit) {
        quit = true;
        break;
      }
    }
    if (quit) break;
  }
  server.stats().record_connection_close();
  return quit;
}

int run_socket_server(serve::Server& server, const std::string& path) {
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  if (path.size() >= sizeof(addr.sun_path)) {
    log_line(LogLevel::Error, "socket path too long", {{"path", path}});
    return 1;
  }
  std::strncpy(addr.sun_path, path.c_str(), sizeof(addr.sun_path) - 1);

  const int listen_fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (listen_fd < 0) {
    log_line(LogLevel::Error, "socket() failed", {{"error", std::strerror(errno)}});
    return 1;
  }
  ::unlink(path.c_str());  // stale socket from a previous run
  if (::bind(listen_fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) < 0 ||
      ::listen(listen_fd, 64) < 0) {
    log_line(LogLevel::Error, "cannot listen on socket",
             {{"path", path}, {"error", std::strerror(errno)}});
    ::close(listen_fd);
    return 1;
  }
  log_line(LogLevel::Info, "listening on unix socket (QUIT shuts down)",
           {{"path", path}});

  // Per-connection bookkeeping. fds are closed only after the owning thread
  // is joined, so a QUIT-triggered shutdown() can never hit a recycled fd.
  struct Connection {
    int fd;
    std::atomic<bool> done{false};
    std::thread thread;
  };
  std::mutex connections_mu;
  std::vector<std::unique_ptr<Connection>> connections;
  std::atomic<bool> quit{false};
  std::atomic<bool> draining{false};

  // Joins and closes every finished connection (all of them when `all`).
  const auto reap = [&](bool all) {
    std::vector<std::unique_ptr<Connection>> finished;
    {
      std::lock_guard<std::mutex> lock(connections_mu);
      for (auto it = connections.begin(); it != connections.end();) {
        if (all || (*it)->done.load()) {
          finished.push_back(std::move(*it));
          it = connections.erase(it);
        } else {
          ++it;
        }
      }
    }
    for (auto& connection : finished) {
      connection->thread.join();
      ::close(connection->fd);
    }
  };

  for (;;) {
    const int fd = ::accept(listen_fd, nullptr, nullptr);
    if (fd < 0) {
      if (quit.load() || draining.load()) break;
      if (errno == EINTR) {
        if (!shutdown_signalled()) continue;
        // Graceful drain: stop accepting; close only the READ side of every
        // live connection so its in-flight reply still flushes, then fall
        // through to the reap below.
        draining.store(true);
        std::lock_guard<std::mutex> lock(connections_mu);
        for (const auto& other : connections) ::shutdown(other->fd, SHUT_RD);
        break;
      }
      log_line(LogLevel::Error, "accept() failed", {{"error", std::strerror(errno)}});
      break;
    }
    reap(/*all=*/false);  // bound resources on long-lived servers
    auto connection = std::make_unique<Connection>();
    Connection* raw = connection.get();
    raw->fd = fd;
    raw->thread = std::thread([&, raw] {
      if (serve_stream(server, raw->fd)) {
        quit.store(true);
        // Unblock every live connection read and the accept loop so the
        // whole process can exit; fds stay open until their join.
        std::lock_guard<std::mutex> lock(connections_mu);
        for (const auto& other : connections) ::shutdown(other->fd, SHUT_RDWR);
        ::shutdown(listen_fd, SHUT_RDWR);
      }
      raw->done.store(true);
    });
    std::lock_guard<std::mutex> lock(connections_mu);
    connections.push_back(std::move(connection));
    // A connection can race the QUIT sweep in either order: the sweep runs
    // after quit is set, so whichever of (push, sweep) came second closes it.
    if (quit.load()) ::shutdown(raw->fd, SHUT_RDWR);
    if (draining.load()) ::shutdown(raw->fd, SHUT_RD);
  }
  if (!draining.load()) {
    // The loop can also end on an accept() error (e.g. EMFILE); unblock
    // every live connection read so the final reap's joins cannot hang.
    std::lock_guard<std::mutex> lock(connections_mu);
    for (const auto& connection : connections) ::shutdown(connection->fd, SHUT_RDWR);
  }
  reap(/*all=*/true);
  ::close(listen_fd);
  ::unlink(path.c_str());
  if (draining.load()) CPR_LOG_INFO("drained, exiting");
  return 0;
}

/// stdio transport with the same graceful-drain contract: poll stdin and
/// the signal pipe together, so SIGINT/SIGTERM stops reading after the
/// current request's reply has flushed instead of dying mid-write.
int run_stdio_server(serve::Server& server) {
  std::string pending;
  char buffer[4096];
  for (;;) {
    pollfd fds[2] = {{STDIN_FILENO, POLLIN, 0}, {g_signal_pipe[0], POLLIN, 0}};
    const nfds_t nfds = g_signal_pipe[0] >= 0 ? 2 : 1;
    const int ready = ::poll(fds, nfds, -1);
    if (ready < 0) {
      if (errno == EINTR && !shutdown_signalled()) continue;
      break;  // signal: drain (no request is in flight between lines)
    }
    if (nfds == 2 && (fds[1].revents & POLLIN)) break;
    if (!(fds[0].revents & (POLLIN | POLLHUP))) continue;
    const ssize_t got = ::read(STDIN_FILENO, buffer, sizeof(buffer));
    if (got <= 0) break;  // EOF
    pending.append(buffer, static_cast<std::size_t>(got));
    std::size_t newline;
    while ((newline = pending.find('\n')) != std::string::npos) {
      std::string line = pending.substr(0, newline);
      pending.erase(0, newline + 1);
      if (!line.empty() && line.back() == '\r') line.pop_back();
      if (line.empty()) continue;
      const auto reply = server.handle_line(line);
      std::cout << reply.text << "\n" << std::flush;
      if (reply.quit) return 0;
    }
  }
  return 0;
}

int run_tcp_server(serve::Server& server, const CliArgs& args) {
  serve::TcpServerOptions options;
  options.port = static_cast<std::uint16_t>(args.get_int("tcp", 0));
  options.io_threads = static_cast<std::size_t>(args.get_int("io-threads", 2));
  options.max_inflight = static_cast<std::size_t>(args.get_int("max-inflight", 1024));
  options.max_write_backlog =
      static_cast<std::size_t>(args.get_int("max-backlog", 1 << 20));
  serve::TcpServer tcp(server, options);
  log_line(LogLevel::Info, "listening on TCP (SIGINT/SIGTERM drains)",
           {{"port", std::to_string(tcp.port())}});

  // Drain on SIGINT/SIGTERM: the watcher blocks on the signal pipe, so the
  // main thread can simply wait for the front end to finish.
  std::thread signal_watcher([&tcp] {
    char byte;
    if (g_signal_pipe[0] >= 0) {
      while (::read(g_signal_pipe[0], &byte, 1) < 0 && errno == EINTR) {
      }
    }
    CPR_LOG_INFO("draining...");
    tcp.shutdown(/*drain=*/true);
  });
  tcp.wait();
  // Unblock the watcher if shutdown came from elsewhere (e.g. a fatal error).
  on_shutdown_signal(0);
  signal_watcher.join();
  CPR_LOG_INFO("drained, exiting");
  return 0;
}

/// Writes the given text to a file, logging the outcome; used for the
/// --metrics-out / --trace-out artifact dumps on drain.
void dump_artifact(const std::string& path, const std::string& text,
                   const char* what) {
  std::ofstream out(path);
  out << text;
  out.flush();
  if (out.good()) {
    log_line(LogLevel::Info, std::string(what) + " written", {{"path", path}});
  } else {
    log_line(LogLevel::Error, std::string("cannot write ") + what, {{"path", path}});
  }
}

}  // namespace

int main(int argc, char** argv) {
  CliArgs args(argc, argv);
  if (args.has("help")) {
    usage(std::cout);
    return 0;
  }
  // A server's operational messages (inventory, listen address, drain) are
  // worth seeing by default; an explicit CPR_LOG_LEVEL still wins.
  if (!log_level_from_env()) set_log_level(LogLevel::Info);
  const std::string model_dir = args.get_string("models", "");
  if (model_dir.empty()) {
    usage(std::cerr);
    return 1;
  }

  try {
    apply_thread_cap(args.get_int("threads", 0));

    serve::ServerOptions options;
    options.model_dir = model_dir;
    options.batcher.workers = static_cast<std::size_t>(args.get_int("workers", 2));
    options.batcher.max_batch = static_cast<std::size_t>(args.get_int("max-batch", 64));
    options.batcher.max_wait_us =
        static_cast<std::uint64_t>(args.get_int("max-wait-us", 200));
    options.cache_capacity = static_cast<std::size_t>(args.get_int("cache", 4096));
    options.cache_shards = static_cast<std::size_t>(args.get_int("cache-shards", 8));
    options.trace_sample =
        static_cast<std::uint64_t>(args.get_int("trace-sample", 0));
    options.refit_after = static_cast<std::size_t>(args.get_int("refit-after", 0));
    options.observe_buffer =
        static_cast<std::size_t>(args.get_int("observe-buffer", 4096));

    serve::Server server(options);
    report_inventory(model_dir);
    install_signal_handlers();

    const std::string socket_path = args.get_string("socket", "");
    if (args.has("tcp") && !socket_path.empty()) {
      CPR_LOG_ERROR("--tcp and --socket are mutually exclusive");
      return 1;
    }
    int rc;
    if (args.has("tcp")) {
      rc = run_tcp_server(server, args);
    } else if (!socket_path.empty()) {
      rc = run_socket_server(server, socket_path);
    } else {
      rc = run_stdio_server(server);
    }

    // Every transport returns with the server drained but still alive, so
    // the final exposition/trace snapshots see all completed requests.
    const std::string metrics_path = args.get_string("metrics-out", "");
    if (!metrics_path.empty()) {
      dump_artifact(metrics_path, server.metrics_text(), "metrics");
    }
    const std::string trace_path = args.get_string("trace-out", "");
    if (!trace_path.empty()) {
      dump_artifact(trace_path, server.traces().render_chrome_json(), "trace");
    }
    return rc;
  } catch (const std::exception& e) {
    CPR_LOG_ERROR(e.what());
    return 1;
  }
}
