// cpr_bench — benchmark orchestrator and performance-regression gate.
//
// Runs the bench/ suites with --json, merges their perf records into one
// BENCH_<date>.json trajectory file, and diffs the merged run against the
// committed bench/baseline.json: any case slower than its baseline by more
// than --threshold fails the gate (nonzero exit). Speed is a tested
// property, not a hope — `tools/verify.sh --bench` wires this gate into the
// one-command verify sequence.
//
// Usage:
//   cpr_bench [--bench-dir=<dir>] [--suites=a,b,...] [--quick] [--list]
//       [--out=BENCH_<date>.json] [--baseline=bench/baseline.json]
//       [--threshold=0.15] [--no-gate] [--update-baseline]
//
// The default suite set is every bench binary present in --bench-dir;
// --quick restricts it to kernel_suite, the stable low-noise kernel set the
// committed baseline covers. Baseline cases that did not run are reported,
// and cases without a baseline never gate (they show as "new").

#include <cstdio>
#include <cstdlib>
#include <ctime>
#include <iostream>
#include <sstream>
#include <string>
#include <sys/stat.h>
#include <vector>

#include "util/check.hpp"
#include "util/cli.hpp"
#include "util/perf_json.hpp"
#include "util/table.hpp"

using namespace cpr;

namespace {

/// Every bench binary cpr_bench knows how to drive, in run order. The
/// google-benchmark pair may be absent (optional dependency); fig/table
/// suites are the paper-reproduction set.
const std::vector<std::string> kKnownSuites = {
    "kernel_suite",    "micro_kernels",
    "serve_throughput", "serve_latency",
    "serve_drift",
    "ablation_cpr",    "ext_online_updates",
    "ext_sampling_strategies", "ext_tucker_vs_cp",
    "fig1_svd_logtransform",   "fig3_discretization",
    "fig4_refinement",         "fig5_training_density",
    "fig6_error_vs_samples",   "fig7_error_vs_modelsize",
    "fig8_extrapolation",      "optimizer_comparison",
    "table1_metrics",          "table2_parameter_spaces",
};

void usage(std::ostream& out) {
  out << "usage: cpr_bench [--bench-dir=<dir>] [--suites=a,b,...] [--quick] "
         "[--list] [--out=<path>] [--baseline=<path>] [--threshold=0.15] "
         "[--no-gate] [--update-baseline]\n\n"
         "Runs bench suites with --json, merges the records into one\n"
         "BENCH_<date>.json, and fails on >threshold regressions vs the\n"
         "committed baseline.\n\n"
         "  --bench-dir=<dir>   directory holding the bench binaries\n"
         "                      (default: <cpr_bench dir>/../bench)\n"
         "  --suites=a,b,...    run only these suites (default: all present)\n"
         "  --quick             shorthand for --suites=kernel_suite\n"
         "  --list              print the suites present in --bench-dir and exit\n"
         "  --out=<path>        merged trajectory file (default: BENCH_<date>.json)\n"
         "  --baseline=<path>   committed reference records (default:\n"
         "                      bench/baseline.json under the CWD, else under\n"
         "                      the source tree above the binary; missing\n"
         "                      baseline fails the run unless --no-gate)\n"
         "  --threshold=<f>     allowed slowdown fraction (default: 0.15)\n"
         "  --no-gate           report the diff but always exit 0\n"
         "  --update-baseline   merge this run's records into --baseline and\n"
         "                      exit (cases from suites not run are kept)\n";
}

bool is_executable(const std::string& path) {
  struct stat st {};
  return ::stat(path.c_str(), &st) == 0 && (st.st_mode & S_IXUSR) != 0 &&
         S_ISREG(st.st_mode);
}

bool file_exists(const std::string& path) {
  struct stat st {};
  return ::stat(path.c_str(), &st) == 0 && S_ISREG(st.st_mode);
}

/// Directory of this binary's path (argv[0]); the bench tree is its sibling
/// in both the build tree (build/tools, build/bench) and an install tree.
std::string default_bench_dir(const std::string& program) {
  const auto slash = program.find_last_of('/');
  const std::string dir = slash == std::string::npos ? "." : program.substr(0, slash);
  return dir + "/../bench";
}

/// Default baseline: bench/baseline.json under the CWD (the repo root in
/// the verify.sh flow), falling back to the source-tree location two levels
/// above the binary (<repo>/build/tools → <repo>/bench) so the gate still
/// resolves when invoked from inside the build tree. An explicit --baseline
/// always wins; a missing baseline fails loudly later instead of silently
/// skipping the gate.
std::string resolve_baseline(const CliArgs& args) {
  if (args.has("baseline")) return args.get_string("baseline", "");
  const std::string cwd_default = "bench/baseline.json";
  if (file_exists(cwd_default)) return cwd_default;
  const auto slash = args.program().find_last_of('/');
  if (slash != std::string::npos) {
    const std::string fallback =
        args.program().substr(0, slash) + "/../../bench/baseline.json";
    if (file_exists(fallback)) return fallback;
  }
  return cwd_default;
}

std::string today() {
  const std::time_t now = std::time(nullptr);
  std::tm tm_buf{};
  localtime_r(&now, &tm_buf);
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%04d-%02d-%02d", tm_buf.tm_year + 1900,
                tm_buf.tm_mon + 1, tm_buf.tm_mday);
  return buf;
}

std::string shell_quoted(const std::string& text) {
  std::string out = "'";
  for (const char c : text) {
    if (c == '\'') {
      out += "'\\''";
    } else {
      out.push_back(c);
    }
  }
  out += "'";
  return out;
}

std::string ratio_text(const util::PerfDelta& delta) {
  if (!delta.in_baseline) return "new";
  std::ostringstream os;
  os.precision(3);
  os << std::fixed << delta.ratio << "x";
  return os.str();
}

}  // namespace

int main(int argc, char** argv) {
  const CliArgs args(argc, argv);
  if (args.has("help")) {
    usage(std::cout);
    return 0;
  }

  try {
    const std::string bench_dir =
        args.get_string("bench-dir", default_bench_dir(args.program()));
    const std::string baseline_path = resolve_baseline(args);
    const double threshold = args.get_double("threshold", 0.15);
    CPR_CHECK_MSG(threshold >= 0.0, "--threshold must be non-negative");

    // Resolve the suite set: every known binary present, or the --suites /
    // --quick selection (selections must exist — a typo should not silently
    // shrink the gate).
    std::vector<std::string> suites;
    if (args.has("suites")) {
      std::stringstream list(args.get_string("suites", ""));
      std::string name;
      while (std::getline(list, name, ',')) {
        CPR_CHECK_MSG(!name.empty(), "--suites has an empty entry");
        CPR_CHECK_MSG(is_executable(bench_dir + "/" + name),
                      "suite '" << name << "' not found in " << bench_dir);
        suites.push_back(name);
      }
      CPR_CHECK_MSG(!suites.empty(), "--suites selected nothing");
    } else if (args.has("quick")) {
      CPR_CHECK_MSG(is_executable(bench_dir + "/kernel_suite"),
                    "kernel_suite not found in " << bench_dir);
      suites.push_back("kernel_suite");
    } else {
      for (const auto& name : kKnownSuites) {
        if (is_executable(bench_dir + "/" + name)) suites.push_back(name);
      }
      CPR_CHECK_MSG(!suites.empty(), "no bench binaries found in " << bench_dir
                                                                   << " — build them first");
    }

    if (args.has("list")) {
      for (const auto& name : suites) std::cout << name << "\n";
      return 0;
    }

    const std::string out_path =
        args.get_string("out", "BENCH_" + today() + ".json");

    // Run every suite with --json into a part file, then merge.
    std::vector<util::PerfRecord> merged;
    for (const auto& name : suites) {
      const std::string part = out_path + "." + name + ".part";
      const std::string command = shell_quoted(bench_dir + "/" + name) +
                                  " --json=" + shell_quoted(part);
      std::cout << "=== cpr_bench: running " << name << " ===\n" << std::flush;
      const int status = std::system(command.c_str());
      CPR_CHECK_MSG(status == 0, "suite '" << name << "' exited with status " << status);
      auto records = util::parse_perf_json_file(part);
      CPR_CHECK_MSG(!records.empty(), "suite '" << name << "' produced no perf records");
      merged.insert(merged.end(), records.begin(), records.end());
      std::remove(part.c_str());
    }

    util::write_perf_json(out_path, merged);
    std::cout << merged.size() << " perf records from " << suites.size()
              << " suite(s) merged into " << out_path << "\n";

    if (args.has("update-baseline")) {
      // Merge, don't overwrite: cases from suites this run did not cover
      // keep their committed baselines — a --quick refresh must never
      // silently drop (and thereby un-gate) the other suites' cases.
      std::vector<util::PerfRecord> updated;
      if (file_exists(baseline_path)) {
        updated = util::parse_perf_json_file(baseline_path);
      }
      for (const auto& record : merged) {
        bool replaced = false;
        for (auto& existing : updated) {
          if (existing.suite == record.suite && existing.name == record.name) {
            existing = record;
            replaced = true;
            break;
          }
        }
        if (!replaced) updated.push_back(record);
      }
      util::write_perf_json(baseline_path, updated);
      std::cout << "baseline updated: " << baseline_path << " (" << merged.size()
                << " case(s) refreshed, " << updated.size() - merged.size()
                << " kept)\n";
      return 0;
    }

    if (!file_exists(baseline_path)) {
      // A gate that silently skips is worse than no gate: fail unless the
      // caller explicitly opted out.
      std::cerr << "error: no baseline at " << baseline_path
                << " (create one with --update-baseline, or pass --no-gate)\n";
      return args.has("no-gate") ? 0 : 1;
    }

    const auto baseline = util::parse_perf_json_file(baseline_path);
    const auto diff = util::diff_perf(merged, baseline, threshold);

    Table table({"suite", "case", "seconds", "baseline", "ratio", "status"});
    for (const auto& delta : diff.deltas) {
      table.add_row({delta.suite, delta.name, Table::fmt(delta.seconds, 6),
                     delta.in_baseline ? Table::fmt(delta.baseline_seconds, 6) : "-",
                     ratio_text(delta),
                     delta.regression ? "REGRESSION"
                                      : (delta.in_baseline ? "ok" : "new")});
    }
    table.print(std::cout);
    for (const auto& record : diff.missing) {
      std::cout << "note: baseline case " << record.suite << "/" << record.name
                << " did not run\n";
    }

    if (diff.regressions > 0) {
      std::cout << "cpr_bench: " << diff.regressions << " case(s) regressed by more than "
                << threshold * 100.0 << "% vs " << baseline_path << "\n";
      if (!args.has("no-gate")) return 1;
      std::cout << "(--no-gate: exiting 0 anyway)\n";
    } else {
      std::cout << "cpr_bench: no regressions vs " << baseline_path << " (threshold "
                << threshold * 100.0 << "%)\n";
    }
    return 0;
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 1;
  }
}
