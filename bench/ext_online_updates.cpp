// Extension bench: online CPR updates vs full refits — the paper's closing
// future-work item on streaming settings.
//
// A stream of observations arrives in batches; after each batch we compare
//   full refit      cold ALS from scratch on all data so far
//   warm refresh    OnlineCprModel: incremental cell statistics + a few
//                   warm-started ALS sweeps
// on test error and cumulative fit time. Expected shape: warm refreshes
// track the full-refit accuracy at a fraction of the cost.

#include <iostream>

#include "bench_common.hpp"
#include "core/cpr_model.hpp"
#include "core/online_cpr.hpp"

using namespace cpr;

int main(int argc, char** argv) {
  CliArgs args(argc, argv);
  const bool full = args.has("full");
  const auto seed = static_cast<std::uint64_t>(args.get_int("seed", 1));

  std::cout << "== Extension: warm online refreshes vs full refits ==\n";

  Table table({"app", "observations", "model", "MLogQ", "cumulative fit s"});
  for (const std::string& app_name : full ? std::vector<std::string>{"MM", "BC", "AMG"}
                                         : std::vector<std::string>{"MM", "BC"}) {
    const auto app = bench::app_by_name(app_name);
    const bool high_dim = app->dimensions() >= 6;
    const std::size_t cells = high_dim ? 8 : 12;
    const std::size_t rank = high_dim ? 8 : 6;
    const grid::Discretization disc(app->parameters(), cells);
    const auto test = app->generate_dataset(full ? 1024 : 384, seed + 1);
    const std::size_t total = full ? 32768 : 8192;
    const auto stream = app->generate_dataset(total, seed);

    core::OnlineCprOptions online_options;
    online_options.rank = rank;
    online_options.refresh_interval = 1u << 30;  // manual refreshes below
    core::OnlineCprModel online(disc, online_options);
    double online_seconds = 0.0, refit_seconds = 0.0;

    std::size_t cursor = 0;
    for (std::size_t checkpoint = total / 8; checkpoint <= total; checkpoint *= 2) {
      for (; cursor < checkpoint; ++cursor) {
        online.observe(stream.config(cursor), stream.y[cursor]);
      }
      {
        Stopwatch watch;
        online.refresh();
        online_seconds += watch.seconds();
        table.add_row({app_name, Table::fmt(checkpoint), "warm refresh",
                       Table::fmt(common::evaluate_mlogq(online, test), 4),
                       Table::fmt(online_seconds, 2)});
      }
      {
        core::CprOptions options;
        options.rank = rank;
        core::CprModel refit(disc, options);
        common::Dataset so_far;
        so_far.x = linalg::Matrix(checkpoint, app->dimensions());
        so_far.y.assign(stream.y.begin(),
                        stream.y.begin() + static_cast<std::ptrdiff_t>(checkpoint));
        for (std::size_t i = 0; i < checkpoint; ++i) {
          for (std::size_t j = 0; j < app->dimensions(); ++j) {
            so_far.x(i, j) = stream.x(i, j);
          }
        }
        Stopwatch watch;
        refit.fit(so_far);
        refit_seconds += watch.seconds();
        table.add_row({app_name, Table::fmt(checkpoint), "full refit",
                       Table::fmt(common::evaluate_mlogq(refit, test), 4),
                       Table::fmt(refit_seconds, 2)});
      }
    }
  }

  bench::emit(table, args, "ext_online_updates.csv");
  return 0;
}
