// google-benchmark microbenchmarks for the library's hot kernels: sparse
// MTTKRP, one ALS sweep, AMN row solves, Eq.-5 interpolation, CP element
// reconstruction, and dense linear-algebra primitives.
//
// Besides the --benchmark_* flags, accepts --json=<path>: per-benchmark wall
// seconds are additionally written through the shared bench JSON emitter so
// kernel timings land in the same BENCH_*.json trajectory format as the
// model-level suites.

#include <benchmark/benchmark.h>

#include <cmath>
#include <iostream>
#include <string_view>

#include "bench_common.hpp"
#include "completion/als.hpp"
#include "completion/amn.hpp"
#include "core/cpr_model.hpp"
#include "grid/discretization.hpp"
#include "linalg/blas.hpp"
#include "linalg/cholesky.hpp"
#include "linalg/svd.hpp"
#include "tensor/mttkrp.hpp"
#include "tensor/mttkrp_blocked.hpp"
#include "util/rng.hpp"

namespace {

using namespace cpr;

tensor::SparseTensor random_sparse(const tensor::Dims& dims, std::size_t nnz,
                                   std::uint64_t seed) {
  Rng rng(seed);
  tensor::SparseTensor::Accumulator acc(dims);
  for (std::size_t e = 0; e < nnz; ++e) {
    tensor::Index idx(dims.size());
    for (std::size_t j = 0; j < dims.size(); ++j) {
      idx[j] = static_cast<std::size_t>(
          rng.uniform_int(0, static_cast<std::int64_t>(dims[j]) - 1));
    }
    acc.add(idx, std::exp(rng.normal(0.0, 1.0)));
  }
  return acc.build();
}

void BM_SparseMttkrp(benchmark::State& state) {
  const auto rank = static_cast<std::size_t>(state.range(0));
  const tensor::Dims dims{64, 64, 64};
  const auto t = random_sparse(dims, 1u << 14, 1);
  tensor::CpModel model(dims, rank);
  Rng rng(2);
  model.init_random(rng);
  linalg::Matrix out(dims[0], rank);
  // Cross-check the threaded kernel against the serial reference before
  // timing it: a benchmark of a wrong answer is worthless.
  {
    linalg::Matrix reference(dims[0], rank);
    tensor::sparse_mttkrp_serial(t, model, 0, reference);
    tensor::sparse_mttkrp(t, model, 0, out);
    if (linalg::max_abs_diff(out, reference) > 1e-12) {
      state.SkipWithError("threaded MTTKRP diverged from the serial reference");
      return;
    }
  }
  for (auto _ : state) {
    tensor::sparse_mttkrp(t, model, 0, out);
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(t.nnz()));
}
BENCHMARK(BM_SparseMttkrp)->Arg(4)->Arg(16)->Arg(64);

// The blocked SIMD kernel, pinned regardless of CPR_KERNEL; the
// BM_SparseMttkrpBlocked/BM_SparseMttkrpSerial ratio is the kernel-layer
// speedup (bench/kernel_suite tracks the same pair for the cpr_bench gate).
void BM_SparseMttkrpBlocked(benchmark::State& state) {
  const auto rank = static_cast<std::size_t>(state.range(0));
  const tensor::Dims dims{64, 64, 64};
  const auto t = random_sparse(dims, 1u << 14, 1);
  tensor::CpModel model(dims, rank);
  Rng rng(2);
  model.init_random(rng);
  linalg::Matrix out(dims[0], rank);
  {
    linalg::Matrix reference(dims[0], rank);
    tensor::sparse_mttkrp_serial(t, model, 0, reference);
    tensor::sparse_mttkrp_blocked(t, model, 0, out);
    if (linalg::max_abs_diff(out, reference) > 1e-12) {
      state.SkipWithError("blocked MTTKRP diverged from the serial reference");
      return;
    }
  }
  for (auto _ : state) {
    tensor::sparse_mttkrp_blocked(t, model, 0, out);
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(t.nnz()));
}
BENCHMARK(BM_SparseMttkrpBlocked)->Arg(4)->Arg(16)->Arg(64);

// The single-threaded reference; the BM_SparseMttkrp/BM_SparseMttkrpSerial
// ratio is the OMP_NUM_THREADS speedup.
void BM_SparseMttkrpSerial(benchmark::State& state) {
  const auto rank = static_cast<std::size_t>(state.range(0));
  const tensor::Dims dims{64, 64, 64};
  const auto t = random_sparse(dims, 1u << 14, 1);
  tensor::CpModel model(dims, rank);
  Rng rng(2);
  model.init_random(rng);
  linalg::Matrix out(dims[0], rank);
  for (auto _ : state) {
    tensor::sparse_mttkrp_serial(t, model, 0, out);
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(t.nnz()));
}
BENCHMARK(BM_SparseMttkrpSerial)->Arg(4)->Arg(16)->Arg(64);

void BM_AlsSweep(benchmark::State& state) {
  const auto rank = static_cast<std::size_t>(state.range(0));
  const tensor::Dims dims{32, 32, 32};
  const auto t = random_sparse(dims, 1u << 13, 3);
  for (auto _ : state) {
    state.PauseTiming();
    tensor::CpModel model(dims, rank);
    Rng rng(4);
    model.init_ones(rng, 0.3);
    completion::CompletionOptions options;
    options.max_sweeps = 1;
    options.tol = 0.0;
    state.ResumeTiming();
    completion::als_complete(t, model, options);
    benchmark::DoNotOptimize(model.factor(0).data());
  }
}
BENCHMARK(BM_AlsSweep)->Arg(4)->Arg(16);

void BM_AmnSweep(benchmark::State& state) {
  const tensor::Dims dims{16, 16, 16};
  auto t = random_sparse(dims, 1u << 11, 5);
  for (auto _ : state) {
    state.PauseTiming();
    tensor::CpModel model(dims, 4);
    Rng rng(6);
    model.init_positive(rng, 1.0);
    completion::AmnOptions options;
    options.max_sweeps = 1;
    options.sweeps_per_eta = 1;
    state.ResumeTiming();
    completion::amn_complete(t, model, options);
    benchmark::DoNotOptimize(model.factor(0).data());
  }
}
BENCHMARK(BM_AmnSweep);

void BM_CpEval(benchmark::State& state) {
  const auto order = static_cast<std::size_t>(state.range(0));
  const tensor::Dims dims(order, 16);
  tensor::CpModel model(dims, 8);
  Rng rng(7);
  model.init_random(rng);
  tensor::Index idx(order, 5);
  for (auto _ : state) {
    benchmark::DoNotOptimize(model.eval(idx));
  }
}
BENCHMARK(BM_CpEval)->Arg(3)->Arg(6)->Arg(12);

void BM_Interpolate(benchmark::State& state) {
  const auto order = static_cast<std::size_t>(state.range(0));
  std::vector<grid::ParameterSpec> specs;
  for (std::size_t j = 0; j < order; ++j) {
    specs.push_back(grid::ParameterSpec::numerical_log("p" + std::to_string(j), 1.0, 1024.0));
  }
  grid::Discretization disc(specs, 16);
  grid::Config x(order, 37.5);
  const auto eval = [](const tensor::Index&) { return 1.0; };
  for (auto _ : state) {
    benchmark::DoNotOptimize(disc.interpolate(x, eval));
  }
}
BENCHMARK(BM_Interpolate)->Arg(3)->Arg(6)->Arg(12);

void BM_Gemm(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  Rng rng(8);
  linalg::Matrix a(n, n), b(n, n), c(n, n);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      a(i, j) = rng.normal();
      b(i, j) = rng.normal();
    }
  }
  for (auto _ : state) {
    linalg::gemm(a, b, c);
    benchmark::DoNotOptimize(c.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) * 2 *
                          static_cast<std::int64_t>(n * n * n));
}
BENCHMARK(BM_Gemm)->Arg(64)->Arg(256);

void BM_CholeskySolve(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  Rng rng(9);
  linalg::Matrix a(n, n);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) a(i, j) = rng.normal();
  }
  linalg::Matrix spd(n, n);
  linalg::syrk_tn(a, spd);
  for (std::size_t i = 0; i < n; ++i) spd(i, i) += 1.0;
  linalg::Vector b(n, 1.0);
  for (auto _ : state) {
    auto x = linalg::solve_spd(spd, b);
    benchmark::DoNotOptimize(x);
  }
}
BENCHMARK(BM_CholeskySolve)->Arg(8)->Arg(32)->Arg(64);

void BM_Rank1Svd(benchmark::State& state) {
  Rng rng(10);
  linalg::Matrix a(64, 16);
  for (std::size_t i = 0; i < 64; ++i) {
    for (std::size_t j = 0; j < 16; ++j) a(i, j) = 0.1 + rng.uniform();
  }
  for (auto _ : state) {
    auto r = linalg::rank1_svd(a);
    benchmark::DoNotOptimize(r.sigma);
  }
}
BENCHMARK(BM_Rank1Svd);

void BM_CprPredict(benchmark::State& state) {
  // End-to-end inference latency of a fitted CPR model (order 3, 16 cells).
  std::vector<grid::ParameterSpec> specs{
      grid::ParameterSpec::numerical_log("m", 32, 4096, true),
      grid::ParameterSpec::numerical_log("n", 32, 4096, true),
      grid::ParameterSpec::numerical_log("k", 32, 4096, true)};
  core::CprOptions options;
  options.rank = 8;
  core::CprModel model(grid::Discretization(specs, 16), options);
  Rng rng(11);
  common::Dataset train;
  train.x = linalg::Matrix(2048, 3);
  train.y.resize(2048);
  for (std::size_t i = 0; i < 2048; ++i) {
    for (std::size_t j = 0; j < 3; ++j) train.x(i, j) = rng.log_uniform(32, 4096);
    train.y[i] = 1e-9 * train.x(i, 0) * train.x(i, 1) * train.x(i, 2);
  }
  model.fit(train);
  grid::Config x{100.0, 700.0, 1500.0};
  for (auto _ : state) {
    benchmark::DoNotOptimize(model.predict(x));
  }
}
BENCHMARK(BM_CprPredict);

void BM_CprPredictBatch(benchmark::State& state) {
  // Throughput of the parallel multi-config entry point on the same model.
  const auto batch = static_cast<std::size_t>(state.range(0));
  std::vector<grid::ParameterSpec> specs{
      grid::ParameterSpec::numerical_log("m", 32, 4096, true),
      grid::ParameterSpec::numerical_log("n", 32, 4096, true),
      grid::ParameterSpec::numerical_log("k", 32, 4096, true)};
  core::CprOptions options;
  options.rank = 8;
  core::CprModel model(grid::Discretization(specs, 16), options);
  Rng rng(12);
  common::Dataset train;
  train.x = linalg::Matrix(2048, 3);
  train.y.resize(2048);
  for (std::size_t i = 0; i < 2048; ++i) {
    for (std::size_t j = 0; j < 3; ++j) train.x(i, j) = rng.log_uniform(32, 4096);
    train.y[i] = 1e-9 * train.x(i, 0) * train.x(i, 1) * train.x(i, 2);
  }
  model.fit(train);
  linalg::Matrix queries(batch, 3);
  for (std::size_t i = 0; i < batch; ++i) {
    for (std::size_t j = 0; j < 3; ++j) queries(i, j) = rng.log_uniform(32, 4096);
  }
  for (auto _ : state) {
    const auto predictions = model.predict_batch(queries);
    benchmark::DoNotOptimize(predictions.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(batch));
}
BENCHMARK(BM_CprPredictBatch)->Arg(64)->Arg(1024);

/// Console output as usual, plus one JsonRecord per (non-aggregate) run:
/// the per-iteration wall seconds under the benchmark's full name.
class JsonCollectingReporter final : public benchmark::ConsoleReporter {
 public:
  void ReportRuns(const std::vector<Run>& reports) override {
    for (const Run& run : reports) {
      if (run.error_occurred || !run.aggregate_name.empty() || run.iterations == 0) {
        continue;
      }
      records.push_back({"micro_kernels", run.benchmark_name(),
                         run.real_accumulated_time / static_cast<double>(run.iterations),
                         0});
    }
    ConsoleReporter::ReportRuns(reports);
  }

  std::vector<bench::JsonRecord> records;
};

}  // namespace

int main(int argc, char** argv) {
  // CliArgs ignores --benchmark_* flags; benchmark::Initialize ignores ours.
  const CliArgs args(argc, argv);
  benchmark::Initialize(&argc, argv);
  // Initialize() consumed every flag it recognized; a leftover --benchmark*
  // argument is a typo (ReportUnrecognizedArguments would also flag our own
  // flags, so the check is scoped to the benchmark namespace).
  for (int i = 1; i < argc; ++i) {
    if (std::string_view(argv[i]).rfind("--benchmark", 0) == 0) {
      std::cerr << "error: unrecognized benchmark flag '" << argv[i] << "'\n";
      return 1;
    }
  }
  JsonCollectingReporter reporter;
  benchmark::RunSpecifiedBenchmarks(&reporter);
  benchmark::Shutdown();
  bench::emit_json(args, reporter.records);
  return 0;
}
