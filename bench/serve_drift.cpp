// serve_drift — online learning under drift in the serving path.
//
// The scenario the OBSERVE/REFIT verbs exist for: a model is fitted on one
// cost function, deployed, and then the true costs shift (new hardware, a
// library upgrade, a different input distribution). Clients keep reporting
// observed runtimes through OBSERVE; the server refits in the background
// and atomically publishes the new generation. This bench drives that whole
// loop in-process and gates on the two promises that make it useful:
//
//   1. RECOVERY — after REFIT, both the rolling drift telemetry and a fixed
//      probe set's prediction error drop below half their drifted values.
//   2. ISOLATION — concurrent PREDICT traffic rides the old generation
//      while the refit runs: its p99 during the refit phase stays under a
//      fixed bound (refits happen on the trainer thread, never the request
//      path), and not a single request sees an ERR.
//
// Phases: baseline PREDICT traffic → drifted OBSERVE stream (truth shifts
// to 8x the fitted law, ln 8 ≈ 2.08 in log space) → refit cycles with the
// clients still hammering → post-refit OBSERVE stream to re-score drift.
// The OBSERVE/REFIT sequence is deterministic for a fixed seed, so the
// drift/probe error records are stable baseline material; the latency
// records carry the usual machine noise.
//
// Emits perf records (suite "serve_drift", cases like "drift/logerr_after"
// and "predict/p99_during_refit") via --json for the cpr_bench gate.
//
// Flags: --clients=<n> --window=<n> --refit-cycles=<n> --p99-bound-us=<n>
//        --seed=<n> --json=<path> --csv=<path>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <filesystem>
#include <iostream>
#include <string>
#include <thread>
#include <vector>

#include "bench_common.hpp"
#include "common/model_registry.hpp"
#include "core/model_file.hpp"
#include "serve/server.hpp"
#include "util/rng.hpp"

namespace cpr {
namespace {

using Clock = std::chrono::steady_clock;

[[noreturn]] void die(const std::string& message) {
  std::cerr << "serve_drift: " << message << "\n";
  std::abort();
}

/// The law the archive is fitted on (the paper's separable power law).
double fitted_law(double x, double y) {
  return 1e-6 * std::pow(x, 1.5) * std::pow(y, 0.8);
}

/// The drifted truth OBSERVEs report after the shift: a constant factor,
/// so the expected drift error is exactly ln 8 ≈ 2.08 in log space.
double drifted_law(double x, double y) { return 8.0 * fitted_law(x, y); }

grid::Config random_config(Rng& rng) {
  return {rng.log_uniform(32.0, 4096.0), rng.log_uniform(32.0, 4096.0)};
}

std::string predict_line(const grid::Config& config) {
  char buffer[96];
  std::snprintf(buffer, sizeof(buffer), "PREDICT pl %.17g,%.17g", config[0],
                config[1]);
  return buffer;
}

std::string observe_line(const grid::Config& config, double seconds) {
  char buffer[128];
  std::snprintf(buffer, sizeof(buffer), "OBSERVE pl %.17g,%.17g %.17g",
                config[0], config[1], seconds);
  return buffer;
}

/// Builds the model directory: a cpr-online archive fitted on a SMALL
/// sample of the pre-drift law, so the streamed observations dominate the
/// per-cell statistics once the refit blends them in.
void build_fixture_dir(const std::string& dir, std::uint64_t seed) {
  std::filesystem::create_directories(dir);
  Rng rng(seed);
  common::Dataset data;
  const std::size_t n = 128;
  data.x = linalg::Matrix(n, 2);
  data.y.resize(n);
  for (std::size_t i = 0; i < n; ++i) {
    data.x(i, 0) = rng.log_uniform(32.0, 4096.0);
    data.x(i, 1) = rng.log_uniform(32.0, 4096.0);
    data.y[i] = fitted_law(data.x(i, 0), data.x(i, 1)) *
                std::exp(rng.normal(0.0, 0.05));
  }
  common::ModelSpec spec;
  spec.params = {grid::ParameterSpec::numerical_log("x", 32.0, 4096.0),
                 grid::ParameterSpec::numerical_log("y", 32.0, 4096.0)};
  spec.cells = 6;
  auto model = common::ModelRegistry::instance().create("cpr-online", spec);
  model->fit(data);
  core::save_model_file(*model, core::model_file_path(dir, "pl"));
}

// ---------------------------------------------------------- client traffic

enum Phase : int { kBaseline = 0, kDriftStream, kRefit, kPost, kPhases };

/// One closed-loop in-process client: hammers PREDICT and records each
/// call's latency under the phase the run was in when the call STARTED.
struct ClientResult {
  std::vector<double> latencies[kPhases];
  std::uint64_t errors = 0;
};

void run_client(serve::Server& server, const std::atomic<int>& phase,
                const std::atomic<bool>& stop, std::uint64_t seed,
                ClientResult& result) {
  Rng rng(seed);
  // A modest config pool: repeats hit the cache, fresh ones miss — both
  // sides of the PREDICT path stay under load while generations swap.
  std::vector<std::string> lines;
  for (int i = 0; i < 256; ++i) lines.push_back(predict_line(random_config(rng)));
  while (!stop.load(std::memory_order_relaxed)) {
    const auto p = phase.load(std::memory_order_relaxed);
    const auto& line = lines[static_cast<std::size_t>(rng.uniform_int(0, 255))];
    const auto start = Clock::now();
    const auto reply = server.handle_line(line);
    const double seconds =
        std::chrono::duration<double>(Clock::now() - start).count();
    if (reply.text.rfind("OK ", 0) != 0) ++result.errors;
    result.latencies[p].push_back(seconds);
  }
}

double percentile(std::vector<double>& sorted_in_place, double q) {
  if (sorted_in_place.empty()) return 0.0;
  std::sort(sorted_in_place.begin(), sorted_in_place.end());
  const auto rank = static_cast<std::size_t>(
      q * static_cast<double>(sorted_in_place.size() - 1) + 0.5);
  return sorted_in_place[std::min(rank, sorted_in_place.size() - 1)];
}

// ----------------------------------------------------------------- driver

/// Streams `count` drifted observations through OBSERVE; dies on any ERR.
void stream_observations(serve::Server& server, Rng& rng, std::size_t count) {
  for (std::size_t i = 0; i < count; ++i) {
    const grid::Config config = random_config(rng);
    const auto reply = server.handle_line(
        observe_line(config, drifted_law(config[0], config[1])));
    if (reply.text.rfind("OK observed", 0) != 0) {
      die("OBSERVE failed: " + reply.text);
    }
  }
}

/// Mean |log(predicted/drifted truth)| over a fixed probe set, evaluated
/// through the full PREDICT path (cache included: a stale generation's
/// entries surviving the refit would show up right here).
double probe_log_error(serve::Server& server, const std::vector<grid::Config>& probes) {
  double total = 0.0;
  for (const grid::Config& config : probes) {
    const auto reply = server.handle_line(predict_line(config));
    if (reply.text.rfind("OK ", 0) != 0) die("probe PREDICT failed: " + reply.text);
    const double predicted = std::stod(reply.text.substr(3));
    total += std::abs(std::log(predicted / drifted_law(config[0], config[1])));
  }
  return total / static_cast<double>(probes.size());
}

}  // namespace
}  // namespace cpr

int main(int argc, char** argv) {
  using namespace cpr;
  const CliArgs args(argc, argv);

  const std::size_t clients = static_cast<std::size_t>(args.get_int("clients", 4));
  const std::size_t window = static_cast<std::size_t>(args.get_int("window", 128));
  const std::size_t refit_cycles =
      static_cast<std::size_t>(args.get_int("refit-cycles", 3));
  const double p99_bound =
      static_cast<double>(args.get_int("p99-bound-us", 10000)) / 1e6;
  const std::uint64_t seed = static_cast<std::uint64_t>(args.get_int("seed", 1));

  const std::string dir = (std::filesystem::temp_directory_path() /
                           ("cpr_serve_drift_" + std::to_string(::getpid())))
                              .string();
  build_fixture_dir(dir, seed);

  serve::ServerOptions options;
  options.model_dir = dir;
  options.batcher.workers = 2;
  options.batcher.max_wait_us = 50;
  options.drift_window = window;
  serve::Server server(options);

  std::atomic<int> phase{kBaseline};
  std::atomic<bool> stop{false};
  std::vector<ClientResult> results(clients);
  std::vector<std::thread> threads;
  for (std::size_t c = 0; c < clients; ++c) {
    threads.emplace_back([&, c] {
      run_client(server, phase, stop, 1000 + seed + c, results[c]);
    });
  }

  // Phase 0 — baseline: the fitted law still holds, clients hammer PREDICT.
  std::this_thread::sleep_for(std::chrono::milliseconds(250));

  // Phase 1 — the truth shifts: stream drifted OBSERVEs until the rolling
  // window is saturated with post-shift scores.
  phase.store(kDriftStream);
  Rng observe_rng(seed + 7);
  stream_observations(server, observe_rng, 2 * window);
  const double drift_before = server.drift().abs_log_error;

  Rng probe_rng(seed + 11);
  std::vector<grid::Config> probes;
  for (int i = 0; i < 64; ++i) probes.push_back(random_config(probe_rng));
  const double probe_before = probe_log_error(server, probes);

  // Phase 2 — refit cycles under full PREDICT load: each streams another
  // batch of drifted observations and publishes a new generation.
  phase.store(kRefit);
  double refit_seconds = 0.0;
  for (std::size_t cycle = 0; cycle < refit_cycles; ++cycle) {
    stream_observations(server, observe_rng, window / 2);
    const auto start = Clock::now();
    const auto reply = server.handle_line("REFIT pl");
    refit_seconds += std::chrono::duration<double>(Clock::now() - start).count();
    if (reply.text.rfind("OK refit pl ", 0) != 0) die("REFIT failed: " + reply.text);
  }
  refit_seconds /= static_cast<double>(refit_cycles);

  // Phase 3 — post-refit: the same drifted truth scored against the new
  // generations must show the drift telemetry recovering.
  phase.store(kPost);
  stream_observations(server, observe_rng, window);
  const double drift_after = server.drift().abs_log_error;
  const double probe_after = probe_log_error(server, probes);

  stop.store(true);
  for (auto& thread : threads) thread.join();

  std::vector<double> latencies[kPhases];
  std::uint64_t errors = 0;
  for (const auto& result : results) {
    errors += result.errors;
    for (int p = 0; p < kPhases; ++p) {
      latencies[p].insert(latencies[p].end(), result.latencies[p].begin(),
                          result.latencies[p].end());
    }
  }
  const double p99_baseline = percentile(latencies[kBaseline], 0.99);
  const double p99_refit = percentile(latencies[kRefit], 0.99);

  // ------------------------------------------------------------- the gate
  if (errors != 0) die(std::to_string(errors) + " PREDICT calls got ERR replies");
  if (latencies[kRefit].empty()) die("no PREDICT traffic during the refit phase");
  if (!(drift_after < 0.5 * drift_before)) {
    die("drift telemetry did not recover: before=" + std::to_string(drift_before) +
        " after=" + std::to_string(drift_after));
  }
  if (!(probe_after < 0.5 * probe_before)) {
    die("probe error did not recover: before=" + std::to_string(probe_before) +
        " after=" + std::to_string(probe_after));
  }
  if (p99_refit > p99_bound) {
    die("PREDICT p99 during refit exceeded the bound: " +
        std::to_string(p99_refit * 1e6) + "us > " +
        std::to_string(p99_bound * 1e6) + "us");
  }
  const auto snapshot = server.request_stats().snapshot();
  if (snapshot.refits != refit_cycles) die("refit count diverged from the driver");

  Table table({"metric", "value"});
  table.add_row({"drift_logerr_before", Table::fmt(drift_before, 4)});
  table.add_row({"drift_logerr_after", Table::fmt(drift_after, 4)});
  table.add_row({"probe_logerr_before", Table::fmt(probe_before, 4)});
  table.add_row({"probe_logerr_after", Table::fmt(probe_after, 4)});
  table.add_row({"refit_wall_ms", Table::fmt(refit_seconds * 1e3, 2)});
  table.add_row({"p99_baseline_us", Table::fmt(p99_baseline * 1e6, 1)});
  table.add_row({"p99_during_refit_us", Table::fmt(p99_refit * 1e6, 1)});
  table.add_row({"predicts", std::to_string(snapshot.predicts)});
  table.add_row({"observes", std::to_string(snapshot.observes)});

  std::vector<bench::JsonRecord> records;
  records.push_back({"serve_drift", "drift/logerr_before", drift_before, 0});
  records.push_back({"serve_drift", "drift/logerr_after", drift_after, 0});
  records.push_back({"serve_drift", "probe/logerr_after", probe_after, 0});
  records.push_back({"serve_drift", "refit/wall", refit_seconds, 0});
  records.push_back({"serve_drift", "predict/p99_baseline", p99_baseline, 0});
  records.push_back({"serve_drift", "predict/p99_during_refit", p99_refit, 0});

  bench::emit(table, args, "serve_drift.csv");
  bench::emit_json(args, records);
  std::filesystem::remove_all(dir);
  return 0;
}
