// serve_latency — open-loop tail latency of the TCP serving front end.
//
// serve_throughput measures closed-loop throughput (each client waits for
// its reply before sending again), which hides queueing delay: a saturated
// server slows the clients down instead of growing a queue. This bench is
// the complement: a Poisson arrival process offers load at a FIXED rate
// regardless of how the server is doing, so tail latency reflects what a
// real open-world client population would see.
//
// Topology: the bench forks a server child (its own fd table — together the
// two processes hold ~2x10k sockets under a 20k RLIMIT_NOFILE) running
// serve::TcpServer over a synthetic model directory, then drives it from an
// epoll client in the parent: `--connections` TCP connections (default
// 10000, all negotiated to FRAME BINARY framing), round-robin request
// placement, exponential inter-arrival times at each offered-QPS point, and
// client-observed latency stamped at the scheduled arrival (so client-side
// send queueing counts, as open-loop methodology requires). Teardown sends
// the child SIGTERM and requires exit 0 — every run also exercises the
// graceful-drain path.
//
// A final overload point reruns against a server with a tiny admission cap
// (`max_inflight=8`) and offers far more than it can take: the server must
// shed with BUSY (the bench aborts if it never does) while the p99.9 of the
// ADMITTED requests stays bounded — the pitch of bounded admission.
//
// Emits perf records (suite "serve_latency", cases like
// "open_loop/qps2000/p99") via --json for the cpr_bench baseline gate.
//
// Flags: --connections=<n> --qps=<r1,r2,...> --duration-ms=<n>
//        --warmup-ms=<n> --seed=<n> --json=<path> --csv=<path>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cmath>
#include <csignal>
#include <cstdio>
#include <cstring>
#include <deque>
#include <filesystem>
#include <iostream>
#include <string>
#include <vector>

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/epoll.h>
#include <sys/resource.h>
#include <sys/socket.h>
#include <sys/wait.h>
#include <unistd.h>

#include "bench_common.hpp"
#include "common/model_registry.hpp"
#include "core/model_file.hpp"
#include "serve/protocol.hpp"
#include "serve/server.hpp"
#include "serve/tcp_server.hpp"
#include "util/rng.hpp"

namespace cpr {
namespace {

using Clock = std::chrono::steady_clock;

[[noreturn]] void die(const std::string& message) {
  std::cerr << "serve_latency: " << message << "\n";
  std::abort();
}

// ----------------------------------------------------------------- fixture
// The model archives are fitted in a forked child so the parent process —
// which later forks the server — never runs an OpenMP parallel region
// itself (forking after one leaves the runtime in an undefined state).

common::Dataset sample_power_law(std::size_t n, std::uint64_t seed) {
  Rng rng(seed);
  common::Dataset data;
  data.x = linalg::Matrix(n, 2);
  data.y.resize(n);
  for (std::size_t i = 0; i < n; ++i) {
    data.x(i, 0) = rng.log_uniform(32.0, 4096.0);
    data.x(i, 1) = rng.log_uniform(32.0, 4096.0);
    data.y[i] = 1e-6 * std::pow(data.x(i, 0), 1.5) * std::pow(data.x(i, 1), 0.8) *
                std::exp(rng.normal(0.0, 0.05));
  }
  return data;
}

void build_fixture_dir(const std::string& dir) {
  const pid_t pid = ::fork();
  if (pid < 0) die("fork() failed building the model fixture");
  if (pid == 0) {
    try {
      std::filesystem::create_directories(dir);
      common::ModelSpec spec;
      spec.params = {grid::ParameterSpec::numerical_log("x", 32.0, 4096.0),
                     grid::ParameterSpec::numerical_log("y", 32.0, 4096.0)};
      spec.cells = 8;
      auto model = common::ModelRegistry::instance().create("cpr", spec);
      model->fit(sample_power_law(512, 7));
      core::save_model_file(*model, core::model_file_path(dir, "pl-cpr"));
    } catch (const std::exception& e) {
      std::cerr << "serve_latency: fixture build failed: " << e.what() << "\n";
      ::_exit(1);
    }
    ::_exit(0);
  }
  int status = 0;
  ::waitpid(pid, &status, 0);
  if (!WIFEXITED(status) || WEXITSTATUS(status) != 0) die("fixture child failed");
}

// ------------------------------------------------------------ server child

struct ServerChild {
  pid_t pid = -1;
  std::uint16_t port = 0;
};

/// Forks a serve::TcpServer over `dir`. The child blocks SIGTERM/SIGINT
/// before spawning any server thread, waits for one in sigwait, drains
/// gracefully, and exits 0 — exactly the cpr_serve signal contract.
ServerChild spawn_server(const std::string& dir, std::size_t max_inflight,
                         std::uint64_t max_wait_us, std::size_t cache_capacity) {
  int port_pipe[2];
  if (::pipe(port_pipe) != 0) die("pipe() failed");
  const pid_t pid = ::fork();
  if (pid < 0) die("fork() failed spawning the server");
  if (pid == 0) {
    ::close(port_pipe[0]);
    sigset_t signals;
    sigemptyset(&signals);
    sigaddset(&signals, SIGTERM);
    sigaddset(&signals, SIGINT);
    ::pthread_sigmask(SIG_BLOCK, &signals, nullptr);
    try {
      serve::ServerOptions options;
      options.model_dir = dir;
      options.batcher.workers = 2;
      options.batcher.max_batch = 64;
      options.batcher.max_wait_us = max_wait_us;
      options.cache_capacity = cache_capacity;
      serve::Server server(options);
      serve::TcpServerOptions tcp_options;
      tcp_options.port = 0;
      tcp_options.io_threads = 2;
      tcp_options.dispatch_threads = 2;
      tcp_options.max_inflight = max_inflight;
      serve::TcpServer tcp(server, tcp_options);
      const std::uint16_t port = tcp.port();
      if (::write(port_pipe[1], &port, sizeof(port)) != sizeof(port)) ::_exit(1);
      ::close(port_pipe[1]);
      int signal_number = 0;
      ::sigwait(&signals, &signal_number);
      tcp.shutdown(/*drain=*/true);
    } catch (const std::exception& e) {
      std::cerr << "serve_latency: server child failed: " << e.what() << "\n";
      ::_exit(1);
    }
    ::_exit(0);
  }
  ::close(port_pipe[1]);
  ServerChild child;
  child.pid = pid;
  if (::read(port_pipe[0], &child.port, sizeof(child.port)) != sizeof(child.port)) {
    die("server child died before publishing its port");
  }
  ::close(port_pipe[0]);
  return child;
}

/// SIGTERM + reap; the run is invalid unless the drain exited cleanly.
void stop_server(const ServerChild& child) {
  ::kill(child.pid, SIGTERM);
  int status = 0;
  ::waitpid(child.pid, &status, 0);
  if (!WIFEXITED(status) || WEXITSTATUS(status) != 0) {
    die("server child did not drain to exit 0 on SIGTERM");
  }
}

// ------------------------------------------------------- stage attribution
// Between phases the bench asks the server child for its METRICS exposition
// over a one-shot newline-framed connection and diffs the per-stage
// histogram `_sum`/`_count` pairs: the extra table columns attribute the
// client-observed latency to admission wait, batch wait, predict, and flush
// as the SERVER saw them — the same mergeable histograms the METRICS verb
// and `--metrics-out` expose.

struct StageStat {
  double sum_seconds = 0.0;
  std::uint64_t count = 0;
};

struct StageSnapshot {
  StageStat admit, batch, predict, flush;
};

/// Extracts `<metric>_sum` / `<metric>_count` from a text exposition.
StageStat parse_stage(const std::string& text, const std::string& metric) {
  StageStat stat;
  const auto value_of = [&](const std::string& suffix, double* out) {
    const std::string key = metric + suffix + " ";
    std::size_t pos = text.rfind(key, 0) == 0 ? 0 : text.find("\n" + key);
    if (pos == std::string::npos) return;
    if (pos != 0) ++pos;  // skip the leading newline
    *out = std::stod(text.substr(pos + key.size()));
  };
  double sum = 0.0;
  double count = 0.0;
  value_of("_sum", &sum);
  value_of("_count", &count);
  stat.sum_seconds = sum;
  stat.count = static_cast<std::uint64_t>(count);
  return stat;
}

/// One-shot blocking METRICS query; the reply is the exposition text with a
/// trailing "OK" line in newline framing.
StageSnapshot fetch_stage_snapshot(std::uint16_t port) {
  const int fd = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (fd < 0) die("socket() failed for the METRICS probe");
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    die("connect() failed for the METRICS probe");
  }
  const std::string request = "METRICS\n";
  if (::send(fd, request.data(), request.size(), MSG_NOSIGNAL) !=
      static_cast<ssize_t>(request.size())) {
    die("METRICS probe send failed");
  }
  std::string text;
  char buffer[16384];
  while (text.size() < 4 || text.compare(text.size() - 4, 4, "\nOK\n") != 0) {
    const ssize_t n = ::read(fd, buffer, sizeof(buffer));
    if (n < 0) {
      if (errno == EINTR) continue;
      die("METRICS probe read failed");
    }
    if (n == 0) die("server closed the METRICS probe connection");
    text.append(buffer, static_cast<std::size_t>(n));
  }
  ::close(fd);
  StageSnapshot snapshot;
  snapshot.admit = parse_stage(text, "cpr_admission_wait_seconds");
  snapshot.batch = parse_stage(text, "cpr_batch_wait_seconds");
  snapshot.predict = parse_stage(text, "cpr_predict_seconds");
  snapshot.flush = parse_stage(text, "cpr_flush_seconds");
  return snapshot;
}

/// Mean microseconds spent in one stage over the window between snapshots.
std::string stage_mean_us(const StageStat& before, const StageStat& after) {
  if (after.count <= before.count) return "-";
  const double mean = (after.sum_seconds - before.sum_seconds) /
                      static_cast<double>(after.count - before.count);
  return Table::fmt(mean * 1e6, 1);
}

// ------------------------------------------------------------ epoll client

struct ClientConn {
  int fd = -1;
  std::string wbuf;          ///< unsent framed requests
  std::size_t wbuf_offset = 0;
  bool want_write = false;   ///< EPOLLOUT currently registered
  serve::FrameDecoder decoder;
  std::deque<Clock::time_point> outstanding;  ///< arrival stamp per request
};

struct PhaseResult {
  std::vector<double> latencies;  ///< seconds, admitted replies only
  std::uint64_t sent = 0;
  std::uint64_t busy = 0;
};

class OpenLoopClient {
 public:
  OpenLoopClient(std::uint16_t port, std::size_t connections, std::uint64_t seed)
      : rng_(seed) {
    epoll_fd_ = ::epoll_create1(EPOLL_CLOEXEC);
    if (epoll_fd_ < 0) die("epoll_create1() failed");
    conns_.resize(connections);
    for (std::size_t i = 0; i < connections; ++i) connect_one(i, port);
  }

  ~OpenLoopClient() {
    for (auto& conn : conns_) {
      if (conn.fd >= 0) ::close(conn.fd);
    }
    ::close(epoll_fd_);
  }

  std::size_t connections() const { return conns_.size(); }

  /// One offered-load point: Poisson arrivals at `qps` for warmup+duration,
  /// then a grace wait for stragglers. Latencies are recorded only for
  /// requests that arrived after the warmup boundary.
  PhaseResult run_phase(const std::vector<std::string>& lines, double qps,
                        double warmup_seconds, double duration_seconds) {
    PhaseResult result;
    const auto start = Clock::now();
    const auto measure_start = start + to_duration(warmup_seconds);
    const auto deadline = start + to_duration(warmup_seconds + duration_seconds);
    measure_start_ = measure_start;
    result_ = &result;

    auto next_arrival = start;
    std::size_t next_line = 0;
    const auto grace_deadline = deadline + std::chrono::seconds(5);
    for (;;) {
      const auto now = Clock::now();
      if (now >= deadline) {
        if (outstanding_ == 0 || now >= grace_deadline) break;
      } else {
        while (next_arrival <= Clock::now()) {
          issue(lines[next_line++ % lines.size()], next_arrival);
          ++result.sent;
          next_arrival += to_duration(-std::log1p(-rng_.uniform()) / qps);
        }
      }
      const auto wake = now >= deadline ? grace_deadline
                                        : std::min(next_arrival, deadline);
      poll_once(wake);
    }
    if (outstanding_ != 0) die("server never answered some admitted requests");
    result_ = nullptr;
    return result;
  }

 private:
  static Clock::duration to_duration(double seconds) {
    return std::chrono::duration_cast<Clock::duration>(
        std::chrono::duration<double>(seconds));
  }

  void connect_one(std::size_t index, std::uint16_t port) {
    ClientConn& conn = conns_[index];
    conn.fd = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
    if (conn.fd < 0) die("socket() failed at connection " + std::to_string(index));
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(port);
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    if (::connect(conn.fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
      die("connect() failed at connection " + std::to_string(index) + ": " +
          std::strerror(errno));
    }
    int nodelay = 1;
    ::setsockopt(conn.fd, IPPROTO_TCP, TCP_NODELAY, &nodelay, sizeof(nodelay));

    // Negotiate binary framing while the socket is still blocking: the ack
    // comes back in newline framing, everything after it is frames.
    const std::string negotiation = "FRAME BINARY\n";
    if (::send(conn.fd, negotiation.data(), negotiation.size(), MSG_NOSIGNAL) !=
        static_cast<ssize_t>(negotiation.size())) {
      die("FRAME BINARY send failed");
    }
    std::string ack;
    char byte;
    while (ack.find('\n') == std::string::npos) {
      if (::read(conn.fd, &byte, 1) != 1) die("FRAME BINARY ack read failed");
      ack.push_back(byte);
    }
    if (ack != "OK frame=binary\n") die("unexpected FRAME BINARY ack: " + ack);

    const int flags = ::fcntl(conn.fd, F_GETFL, 0);
    ::fcntl(conn.fd, F_SETFL, flags | O_NONBLOCK);
    epoll_event event{};
    event.events = EPOLLIN;
    event.data.u64 = index;
    if (::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, conn.fd, &event) != 0) {
      die("epoll_ctl(ADD) failed");
    }
  }

  void update_interest(std::size_t index) {
    ClientConn& conn = conns_[index];
    const bool pending = conn.wbuf_offset < conn.wbuf.size();
    if (pending == conn.want_write) return;
    conn.want_write = pending;
    epoll_event event{};
    event.events = EPOLLIN | (pending ? EPOLLOUT : 0u);
    event.data.u64 = index;
    if (::epoll_ctl(epoll_fd_, EPOLL_CTL_MOD, conn.fd, &event) != 0) {
      die("epoll_ctl(MOD) failed");
    }
  }

  void flush(std::size_t index) {
    ClientConn& conn = conns_[index];
    while (conn.wbuf_offset < conn.wbuf.size()) {
      const ssize_t n = ::send(conn.fd, conn.wbuf.data() + conn.wbuf_offset,
                               conn.wbuf.size() - conn.wbuf_offset, MSG_NOSIGNAL);
      if (n < 0) {
        if (errno == EINTR) continue;
        if (errno == EAGAIN || errno == EWOULDBLOCK) break;
        die(std::string("send() failed: ") + std::strerror(errno));
      }
      conn.wbuf_offset += static_cast<std::size_t>(n);
    }
    if (conn.wbuf_offset == conn.wbuf.size()) {
      conn.wbuf.clear();
      conn.wbuf_offset = 0;
    }
    update_interest(index);
  }

  /// Queues one framed request on the round-robin-next connection, stamped
  /// with its SCHEDULED arrival time (open-loop: client-side queueing is
  /// part of the latency).
  void issue(const std::string& line, Clock::time_point arrival) {
    const std::size_t index = round_robin_++ % conns_.size();
    ClientConn& conn = conns_[index];
    conn.wbuf += serve::encode_frame(line);
    conn.outstanding.push_back(arrival);
    ++outstanding_;
    flush(index);
  }

  void on_readable(std::size_t index) {
    ClientConn& conn = conns_[index];
    char buffer[16384];
    for (;;) {
      const ssize_t n = ::recv(conn.fd, buffer, sizeof(buffer), 0);
      if (n < 0) {
        if (errno == EINTR) continue;
        if (errno == EAGAIN || errno == EWOULDBLOCK) break;
        die(std::string("recv() failed: ") + std::strerror(errno));
      }
      if (n == 0) die("server closed a connection mid-run");
      conn.decoder.feed(std::string_view(buffer, static_cast<std::size_t>(n)));
      std::string payload;
      while (conn.decoder.next(payload)) handle_reply(conn, payload);
    }
  }

  void handle_reply(ClientConn& conn, const std::string& payload) {
    if (conn.outstanding.empty()) die("reply without an outstanding request");
    const auto arrival = conn.outstanding.front();
    conn.outstanding.pop_front();
    --outstanding_;
    const auto now = Clock::now();
    if (payload == serve::kBusyReply) {
      ++result_->busy;
      return;
    }
    if (payload.rfind("OK ", 0) != 0) die("request failed: " + payload);
    if (arrival >= measure_start_) {
      result_->latencies.push_back(
          std::chrono::duration<double>(now - arrival).count());
    }
  }

  void poll_once(Clock::time_point wake) {
    const auto now = Clock::now();
    int timeout_ms = 0;
    if (wake > now) {
      timeout_ms = static_cast<int>(
          std::chrono::duration_cast<std::chrono::milliseconds>(wake - now).count());
    }
    epoll_event events[256];
    const int n = ::epoll_wait(epoll_fd_, events, 256, timeout_ms);
    if (n < 0) {
      if (errno == EINTR) return;
      die("epoll_wait() failed");
    }
    for (int i = 0; i < n; ++i) {
      const auto index = static_cast<std::size_t>(events[i].data.u64);
      if (events[i].events & (EPOLLHUP | EPOLLERR)) die("connection error mid-run");
      if (events[i].events & EPOLLOUT) flush(index);
      if (events[i].events & EPOLLIN) on_readable(index);
    }
  }

  Rng rng_;
  int epoll_fd_ = -1;
  std::vector<ClientConn> conns_;
  std::size_t round_robin_ = 0;
  std::size_t outstanding_ = 0;
  Clock::time_point measure_start_;
  PhaseResult* result_ = nullptr;
};

// ------------------------------------------------------------------ driver

std::vector<std::string> render_lines(std::size_t count, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<std::string> lines;
  lines.reserve(count);
  char buffer[96];
  for (std::size_t i = 0; i < count; ++i) {
    std::snprintf(buffer, sizeof(buffer), "PREDICT pl-cpr %.17g,%.17g",
                  rng.log_uniform(32.0, 4096.0), rng.log_uniform(32.0, 4096.0));
    lines.emplace_back(buffer);
  }
  return lines;
}

double percentile(std::vector<double>& sorted_in_place, double q) {
  if (sorted_in_place.empty()) return 0.0;
  std::sort(sorted_in_place.begin(), sorted_in_place.end());
  const auto rank = static_cast<std::size_t>(
      q * static_cast<double>(sorted_in_place.size() - 1) + 0.5);
  return sorted_in_place[std::min(rank, sorted_in_place.size() - 1)];
}

std::vector<double> parse_qps_list(const std::string& text) {
  std::vector<double> points;
  std::size_t begin = 0;
  while (begin <= text.size()) {
    std::size_t end = text.find(',', begin);
    if (end == std::string::npos) end = text.size();
    const std::string token = text.substr(begin, end - begin);
    if (!token.empty()) points.push_back(std::stod(token));
    begin = end + 1;
  }
  if (points.empty()) die("--qps needs at least one rate");
  return points;
}

}  // namespace
}  // namespace cpr

int main(int argc, char** argv) {
  using namespace cpr;
  const CliArgs args(argc, argv);
  ::signal(SIGPIPE, SIG_IGN);

  std::size_t connections = static_cast<std::size_t>(args.get_int("connections", 10000));
  const auto qps_points = parse_qps_list(args.get_string("qps", "500,2000,8000"));
  const double warmup_seconds = static_cast<double>(args.get_int("warmup-ms", 250)) / 1e3;
  const double duration_seconds =
      static_cast<double>(args.get_int("duration-ms", 1250)) / 1e3;
  const std::uint64_t seed = static_cast<std::uint64_t>(args.get_int("seed", 1));

  // The harness needs one fd per connection plus a handful for bookkeeping;
  // clamp loudly rather than dying on EMFILE halfway through the connects.
  rlimit nofile{};
  if (::getrlimit(RLIMIT_NOFILE, &nofile) == 0) {
    if (nofile.rlim_cur < nofile.rlim_max) {
      nofile.rlim_cur = nofile.rlim_max;
      ::setrlimit(RLIMIT_NOFILE, &nofile);
      ::getrlimit(RLIMIT_NOFILE, &nofile);
    }
    const auto budget = static_cast<std::size_t>(nofile.rlim_cur);
    if (budget < connections + 64) {
      connections = budget - 64;
      std::cerr << "serve_latency: RLIMIT_NOFILE " << budget << " caps the run at "
                << connections << " connections\n";
    }
  }

  const std::string dir = (std::filesystem::temp_directory_path() /
                           ("cpr_serve_latency_" + std::to_string(::getpid())))
                              .string();
  build_fixture_dir(dir);
  const auto lines = render_lines(1024, seed);
  std::vector<bench::JsonRecord> records;
  Table table({"phase", "offered_qps", "sent", "busy", "p50_us", "p99_us", "p999_us",
               "admit_us", "batch_us", "predict_us", "flush_us"});

  {
    // Open-loop points: a well-provisioned server (default admission caps,
    // warm prediction cache) under fixed offered load.
    const ServerChild server = spawn_server(dir, /*max_inflight=*/1024,
                                            /*max_wait_us=*/200,
                                            /*cache_capacity=*/4096);
    OpenLoopClient client(server.port, connections, seed);
    std::cerr << "serve_latency: " << client.connections()
              << " connections to 127.0.0.1:" << server.port << "\n";
    StageSnapshot before = fetch_stage_snapshot(server.port);
    for (const double qps : qps_points) {
      PhaseResult result =
          client.run_phase(lines, qps, warmup_seconds, duration_seconds);
      const StageSnapshot after = fetch_stage_snapshot(server.port);
      const double p50 = percentile(result.latencies, 0.50);
      const double p99 = percentile(result.latencies, 0.99);
      const double p999 = percentile(result.latencies, 0.999);
      const std::string name = "open_loop/qps" + std::to_string(static_cast<int>(qps));
      records.push_back({"serve_latency", name + "/p50", p50, 0});
      records.push_back({"serve_latency", name + "/p99", p99, 0});
      records.push_back({"serve_latency", name + "/p999", p999, 0});
      table.add_row({"open_loop", Table::fmt(qps, 0), std::to_string(result.sent),
                     std::to_string(result.busy), Table::fmt(p50 * 1e6, 1),
                     Table::fmt(p99 * 1e6, 1), Table::fmt(p999 * 1e6, 1),
                     stage_mean_us(before.admit, after.admit),
                     stage_mean_us(before.batch, after.batch),
                     stage_mean_us(before.predict, after.predict),
                     stage_mean_us(before.flush, after.flush)});
      before = after;
    }
    stop_server(server);
  }

  {
    // Overload point: admission capped at 8 in-flight requests, no cache,
    // a slow batcher, and far more offered load than the server can take.
    // Bounded admission means BUSY replies (the bench FAILS if none are
    // shed) while the admitted requests keep a bounded p99.9.
    const ServerChild server = spawn_server(dir, /*max_inflight=*/8,
                                            /*max_wait_us=*/2000,
                                            /*cache_capacity=*/0);
    OpenLoopClient client(server.port, std::min<std::size_t>(connections, 64), seed);
    const double overload_qps = 20000.0;
    const StageSnapshot before = fetch_stage_snapshot(server.port);
    PhaseResult result =
        client.run_phase(lines, overload_qps, warmup_seconds, duration_seconds);
    const StageSnapshot after = fetch_stage_snapshot(server.port);
    if (result.busy == 0) die("overload run shed no BUSY replies");
    if (result.latencies.empty()) die("overload run admitted no requests");
    const double p999 = percentile(result.latencies, 0.999);
    records.push_back({"serve_latency", "overload/p999", p999, 0});
    table.add_row({"overload", Table::fmt(overload_qps, 0), std::to_string(result.sent),
                   std::to_string(result.busy), Table::fmt(percentile(result.latencies, 0.5) * 1e6, 1),
                   Table::fmt(percentile(result.latencies, 0.99) * 1e6, 1),
                   Table::fmt(p999 * 1e6, 1),
                   stage_mean_us(before.admit, after.admit),
                   stage_mean_us(before.batch, after.batch),
                   stage_mean_us(before.predict, after.predict),
                   stage_mean_us(before.flush, after.flush)});
    stop_server(server);
  }

  bench::emit(table, args, "serve_latency.csv");
  bench::emit_json(args, records);
  std::filesystem::remove_all(dir);
  return 0;
}
