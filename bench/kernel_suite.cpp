// kernel_suite — self-contained timing harness for the completion hot-path
// kernels (sparse MTTKRP, the fused ALS sweep, batched CPR inference). It is
// the perf-tracked core of the cpr_bench regression gate: unlike
// micro_kernels it needs no google-benchmark, so it is always built and its
// case set is stable across machines.
//
// Each case is auto-calibrated to a minimum wall time and reports the
// minimum per-iteration seconds over --repeats runs (the low-noise
// statistic for a regression gate). Cases come in pairs: the dispatching
// entry point under the ambient CPR_KERNEL mode (the gated case), plus
// `*_serial` / `*_blocked` pinned variants so one JSON shows the kernel
// speedup directly. Before any timing, the blocked kernels are cross-checked
// against the serial references (<= 1e-12); a divergence aborts the run.
//
// Flags:
//   --json=<path>      write perf records through the shared emitter
//   --repeats=<n>      timing repetitions per case (default 5)
//   --min-time-ms=<n>  minimum timed wall interval per repetition (default 50)
//   --filter=<substr>  run only cases whose name contains <substr>
//   --seed=<n>         dataset seed (default 1)

#include <cmath>
#include <filesystem>
#include <functional>
#include <iostream>
#include <limits>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "completion/als.hpp"
#include "core/cpr_model.hpp"
#include "core/model_file.hpp"
#include "grid/discretization.hpp"
#include "linalg/blas.hpp"
#include "linalg/cholesky.hpp"
#include "linalg/matrix.hpp"
#include "linalg/qr.hpp"
#include "linalg/qr_tiled.hpp"
#include "obs/metrics.hpp"
#include "obs/profile.hpp"
#include "tensor/mttkrp.hpp"
#include "tensor/mttkrp_blocked.hpp"
#include "util/kernel_mode.hpp"
#include "util/quantize.hpp"
#include "util/rng.hpp"
#include "util/stopwatch.hpp"

namespace {

using namespace cpr;

tensor::SparseTensor random_sparse(const tensor::Dims& dims, std::size_t nnz,
                                   std::uint64_t seed) {
  Rng rng(seed);
  tensor::SparseTensor::Accumulator acc(dims);
  for (std::size_t e = 0; e < nnz; ++e) {
    tensor::Index idx(dims.size());
    for (std::size_t j = 0; j < dims.size(); ++j) {
      idx[j] = static_cast<std::size_t>(
          rng.uniform_int(0, static_cast<std::int64_t>(dims[j]) - 1));
    }
    acc.add(idx, std::exp(rng.normal(0.0, 1.0)));
  }
  return acc.build();
}

/// Auto-calibrated min-of-repeats wall timing of `body`.
double time_case(const std::function<void()>& body, int repeats, double min_time_ms) {
  // Calibration: grow the iteration count until one repetition spans the
  // minimum interval, starting from a single warm-up run.
  Stopwatch calibrate;
  body();
  double single = calibrate.seconds();
  std::size_t iterations = 1;
  while (single * static_cast<double>(iterations) < min_time_ms * 1e-3 &&
         iterations < (1u << 24)) {
    iterations *= 2;
  }
  double best = std::numeric_limits<double>::infinity();
  for (int rep = 0; rep < repeats; ++rep) {
    Stopwatch watch;
    for (std::size_t i = 0; i < iterations; ++i) body();
    best = std::min(best, watch.seconds() / static_cast<double>(iterations));
  }
  return best;
}

struct Harness {
  explicit Harness(const CliArgs& args)
      : repeats(static_cast<int>(args.get_int("repeats", 5))),
        min_time_ms(args.get_double("min-time-ms", 50.0)),
        filter(args.get_string("filter", "")) {}

  void run(const std::string& name, const std::function<void()>& body,
           std::size_t model_bytes = 0, const std::string& quant_mode = "fp64") {
    if (!filter.empty() && name.find(filter) == std::string::npos) return;
    const double seconds = time_case(body, repeats, min_time_ms);
    std::cout << "kernel_suite/" << name << ": " << seconds * 1e6 << " us\n";
    records.push_back({"kernel_suite", name, seconds, model_bytes, quant_mode});
  }

  int repeats;
  double min_time_ms;
  std::string filter;
  std::vector<bench::JsonRecord> records;
};

core::CprModel fitted_cpr(std::uint64_t seed, std::size_t rank = 8) {
  std::vector<grid::ParameterSpec> specs{
      grid::ParameterSpec::numerical_log("m", 32, 4096, true),
      grid::ParameterSpec::numerical_log("n", 32, 4096, true),
      grid::ParameterSpec::numerical_log("k", 32, 4096, true)};
  core::CprOptions options;
  options.rank = rank;
  core::CprModel model(grid::Discretization(specs, 16), options);
  Rng rng(seed);
  common::Dataset train;
  train.x = linalg::Matrix(2048, 3);
  train.y.resize(2048);
  for (std::size_t i = 0; i < 2048; ++i) {
    for (std::size_t j = 0; j < 3; ++j) train.x(i, j) = rng.log_uniform(32, 4096);
    train.y[i] = 1e-9 * train.x(i, 0) * train.x(i, 1) * train.x(i, 2);
  }
  model.fit(train);
  return model;
}

}  // namespace

int main(int argc, char** argv) {
  const CliArgs args(argc, argv);
  if (args.has("help")) {
    std::cout
        << "usage: kernel_suite [--json=<path>] [--repeats=5] [--min-time-ms=50]\n"
           "                    [--filter=<substr>] [--seed=1]\n\n"
           "Times the completion hot-path kernels (MTTKRP, ALS sweep,\n"
           "predict_batch) under the ambient CPR_KERNEL mode plus pinned\n"
           "serial/blocked variants, and writes perf records for the\n"
           "cpr_bench regression gate.\n\n"
           "  --json=<path>      write perf records (suite/case/seconds/model_bytes)\n"
           "  --repeats=<n>      timing repetitions per case (default: 5)\n"
           "  --min-time-ms=<n>  minimum timed interval per repetition (default: 50)\n"
           "  --filter=<substr>  run only cases containing <substr> (default: all)\n"
           "  --seed=<n>         dataset seed (default: 1)\n";
    return 0;
  }

  try {
    const auto seed = static_cast<std::uint64_t>(args.get_int("seed", 1));
    Harness harness(args);
    std::cout << "kernel mode: " << kernel_mode_name(kernel_mode()) << "\n";

    // --- sparse MTTKRP --------------------------------------------------
    const tensor::Dims dims{64, 64, 64};
    const auto t = random_sparse(dims, 1u << 14, seed);
    for (const std::size_t rank : {std::size_t{4}, std::size_t{16}, std::size_t{64}}) {
      tensor::CpModel model(dims, rank);
      Rng rng(seed + 1);
      model.init_random(rng);
      linalg::Matrix out(dims[0], rank);
      linalg::Matrix reference(dims[0], rank);
      // A benchmark of a wrong answer is worthless: cross-check first.
      tensor::sparse_mttkrp_serial(t, model, 0, reference);
      tensor::sparse_mttkrp_blocked(t, model, 0, out);
      if (linalg::max_abs_diff(out, reference) > 1e-12) {
        std::cerr << "error: blocked MTTKRP diverged from the serial reference\n";
        return 1;
      }
      const std::string suffix = "/rank" + std::to_string(rank);
      harness.run("mttkrp" + suffix,
                  [&] { tensor::sparse_mttkrp(t, model, 0, out); });
      {
        KernelModeGuard guard;
        set_kernel_mode(KernelMode::Serial);
        harness.run("mttkrp_serial" + suffix,
                    [&] { tensor::sparse_mttkrp(t, model, 0, out); });
        set_kernel_mode(KernelMode::Blocked);
        harness.run("mttkrp_blocked" + suffix,
                    [&] { tensor::sparse_mttkrp(t, model, 0, out); });
      }
    }

    // --- one ALS sweep (fused normal-equation assembly) -----------------
    {
      const tensor::Dims als_dims{32, 32, 32};
      const auto als_t = random_sparse(als_dims, 1u << 13, seed + 2);
      tensor::CpModel init(als_dims, 8);
      Rng rng(seed + 3);
      init.init_ones(rng, 0.3);
      completion::CompletionOptions options;
      options.max_sweeps = 1;
      options.tol = 0.0;
      const auto sweep = [&] {
        tensor::CpModel work = init;
        completion::als_complete(als_t, work, options);
      };
      {
        // Cross-check the fused blocked assembly against the scalar path
        // before timing either.
        const auto sweep_under = [&](KernelMode mode) {
          KernelModeGuard guard;
          set_kernel_mode(mode);
          tensor::CpModel work = init;
          completion::als_complete(als_t, work, options);
          return work;
        };
        const auto serial = sweep_under(KernelMode::Serial);
        const auto blocked = sweep_under(KernelMode::Blocked);
        for (std::size_t j = 0; j < serial.order(); ++j) {
          if (linalg::max_abs_diff(blocked.factor(j), serial.factor(j)) > 1e-12) {
            std::cerr << "error: blocked ALS sweep diverged from the serial path\n";
            return 1;
          }
        }
      }
      harness.run("als_sweep/rank8", sweep);
      KernelModeGuard guard;
      set_kernel_mode(KernelMode::Serial);
      harness.run("als_sweep_serial/rank8", sweep);
    }

    // --- batched CPR inference ------------------------------------------
    {
      const auto model = fitted_cpr(seed + 4);
      Rng rng(seed + 5);
      linalg::Matrix queries(1024, 3);
      for (std::size_t i = 0; i < queries.rows(); ++i) {
        for (std::size_t j = 0; j < 3; ++j) queries(i, j) = rng.log_uniform(32, 4096);
      }
      {
        // Cross-check the blocked batch against scalar predict bitwise.
        KernelModeGuard guard;
        set_kernel_mode(KernelMode::Blocked);
        const auto blocked = model.predict_batch(queries);
        for (std::size_t i = 0; i < queries.rows(); ++i) {
          grid::Config x(queries.row_ptr(i), queries.row_ptr(i) + queries.cols());
          if (blocked[i] != model.predict(x)) {
            std::cerr << "error: blocked predict_batch diverged from predict()\n";
            return 1;
          }
        }
      }
      harness.run("predict_batch/1024",
                  [&] { (void)model.predict_batch(queries); });
      KernelModeGuard guard;
      set_kernel_mode(KernelMode::Serial);
      harness.run("predict_batch_serial/1024",
                  [&] { (void)model.predict_batch(queries); });
    }

    // --- quantized-archive CPR inference --------------------------------
    // One case per payload encoding: save a rank-32 CPR model through the
    // versioned archive, reload it, and time the blocked batch predict the
    // serving path runs. The fp32 case exercises the dequantize-free float
    // tile loop; fp16/int8 dequantize on load, so their steady-state cost
    // should match fp64. model_bytes carries the archive size so the JSON
    // doubles as the size-vs-mode record.
    {
      const auto model = fitted_cpr(seed + 4, /*rank=*/32);
      Rng rng(seed + 7);
      linalg::Matrix queries(1024, 3);
      for (std::size_t i = 0; i < queries.rows(); ++i) {
        for (std::size_t j = 0; j < 3; ++j) queries(i, j) = rng.log_uniform(32, 4096);
      }
      const auto temp_dir = std::filesystem::temp_directory_path();
      for (const QuantMode mode :
           {QuantMode::F64, QuantMode::F32, QuantMode::F16, QuantMode::I8}) {
        const std::string mode_name = util::quant_mode_name(mode);
        const auto path =
            (temp_dir / ("kernel_suite_quant_" + mode_name + ".cprm")).string();
        core::save_model_file(model, path, mode);
        const auto loaded = core::load_model_file(path);
        std::filesystem::remove(path);
        const std::size_t bytes = core::model_archive_bytes(model, mode);
        // The serial/blocked bitwise invariant must hold for every loaded
        // encoding (including the fp32-storage predict path).
        KernelModeGuard guard;
        set_kernel_mode(KernelMode::Blocked);
        const auto blocked = loaded->predict_batch(queries);
        set_kernel_mode(KernelMode::Serial);
        const auto serial = loaded->predict_batch(queries);
        for (std::size_t i = 0; i < queries.rows(); ++i) {
          if (blocked[i] != serial[i]) {
            std::cerr << "error: blocked " << mode_name
                      << " predict_batch diverged from the serial path\n";
            return 1;
          }
        }
        set_kernel_mode(KernelMode::Blocked);
        harness.run("predict_batch_" + mode_name + "/1024",
                    [&] { (void)loaded->predict_batch(queries); }, bytes, mode_name);
      }
    }

    // --- dense linalg: tiled Cholesky / solve_spd / blocked QR ----------
    {
      Rng rng(seed + 6);
      const std::size_t n = 512;
      linalg::Matrix spd(n, n);
      {
        linalg::Matrix g(n, n);
        for (std::size_t i = 0; i < n; ++i) {
          for (std::size_t j = 0; j < n; ++j) g(i, j) = rng.normal();
        }
        linalg::syrk_tn(g, spd);
        for (std::size_t i = 0; i < n; ++i) spd(i, i) += 1.0;
      }
      linalg::Vector b(n);
      for (auto& v : b) v = rng.normal();

      // Cross-check the tiled factorization and solves bitwise first.
      const auto factor_under = [&](KernelMode mode) {
        KernelModeGuard guard;
        set_kernel_mode(mode);
        return linalg::CholeskyFactorization::compute(spd);
      };
      const auto serial_fact = factor_under(KernelMode::Serial);
      const auto blocked_fact = factor_under(KernelMode::Blocked);
      if (!serial_fact || !blocked_fact ||
          linalg::max_abs_diff(blocked_fact->factor(), serial_fact->factor()) != 0.0) {
        std::cerr << "error: tiled Cholesky diverged from the serial reference\n";
        return 1;
      }
      const linalg::Vector x_serial = serial_fact->solve(b);
      const linalg::Vector x_blocked = blocked_fact->solve(b);
      for (std::size_t i = 0; i < n; ++i) {
        if (x_serial[i] != x_blocked[i]) {
          std::cerr << "error: tiled SPD solve diverged from the serial reference\n";
          return 1;
        }
      }

      const std::string size_suffix = "/n" + std::to_string(n);
      const auto potrf = [&] {
        (void)linalg::CholeskyFactorization::compute(spd);
      };
      const auto solve = [&] { (void)linalg::solve_spd(spd, b); };
      harness.run("potrf" + size_suffix, potrf);
      harness.run("solve_spd" + size_suffix, solve);
      {
        KernelModeGuard guard;
        set_kernel_mode(KernelMode::Serial);
        harness.run("potrf_serial" + size_suffix, potrf);
        harness.run("solve_spd_serial" + size_suffix, solve);
        set_kernel_mode(KernelMode::Blocked);
        harness.run("potrf_blocked" + size_suffix, potrf);
        harness.run("solve_spd_blocked" + size_suffix, solve);
      }

      const std::size_t qm = 384, qn = 256;
      linalg::Matrix tall(qm, qn);
      for (std::size_t i = 0; i < qm; ++i) {
        for (std::size_t j = 0; j < qn; ++j) tall(i, j) = rng.normal();
      }
      const auto qr_serial = linalg::qr_factor_serial(tall);
      const auto qr_blocked = linalg::qr_factor_blocked(tall);
      if (linalg::max_abs_diff(qr_blocked.qr, qr_serial.qr) != 0.0) {
        std::cerr << "error: blocked QR diverged from the serial reference\n";
        return 1;
      }
      const std::string qr_suffix = "/" + std::to_string(qm) + "x" + std::to_string(qn);
      const auto qr = [&] { (void)linalg::qr_factor(tall); };
      harness.run("qr" + qr_suffix, qr);
      {
        KernelModeGuard guard;
        set_kernel_mode(KernelMode::Serial);
        harness.run("qr_serial" + qr_suffix, qr);
        set_kernel_mode(KernelMode::Blocked);
        harness.run("qr_blocked" + qr_suffix, qr);
      }
    }

    // --- observability primitives ---------------------------------------
    // The kernel cases above double as the compiled-in-but-unsampled
    // overhead assertion: MTTKRP, the fused assembly, potrf, QR and
    // predict_batch all carry CPR_PROFILE_SCOPE markers now, so a
    // regression in the disabled path trips their gated cases. The two
    // cases here track the primitive costs directly.
    {
      obs::Histogram histogram;
      double v = 1e-4;
      harness.run("obs/histogram_record", [&] {
        histogram.record(v);
        v = v < 1.0 ? v * 1.0001 : 1e-4;  // sweep the bucket range
      });
      harness.run("obs/profile_scope_disabled", [&] {
        CPR_PROFILE_SCOPE("bench_disabled_scope");
      });
    }

    bench::emit_json(args, harness.records);
    return 0;
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 1;
  }
}
