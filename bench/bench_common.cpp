#include "bench_common.hpp"

#include <fstream>
#include <iostream>
#include <sstream>

#include "common/model_registry.hpp"
#include "tune/tuner.hpp"

namespace cpr::bench {

namespace {

/// Shortest round-trip-exact decimal form of a double (hyper values must
/// parse back to the identical bits).
std::string fmt_exact(double v) {
  std::ostringstream stream;
  stream.precision(17);
  stream << v;
  return stream.str();
}

/// Registry-backed candidate: the spec captures the app's parameter space,
/// so grid families get their discretization and feature-space families get
/// the Section-6.0.4 log transform — identical to what the tools construct.
ModelCandidate registry_candidate(const std::string& family, const std::string& tag,
                                  const std::string& config, common::ModelSpec spec) {
  ModelCandidate candidate;
  candidate.family = family;
  candidate.config = config;
  candidate.make = [tag, spec = std::move(spec)] {
    return common::ModelRegistry::instance().create(tag, spec);
  };
  return candidate;
}

}  // namespace

common::FeatureTransform transform_for(const apps::BenchmarkApp& app) {
  const auto& params = app.parameters();
  common::FeatureTransform transform;
  transform.log_target = true;
  transform.log_feature.resize(params.size());
  for (std::size_t j = 0; j < params.size(); ++j) {
    transform.log_feature[j] = params[j].kind == grid::ParameterKind::NumericalLog;
  }
  return transform;
}

common::RegressorPtr wrapped(const apps::BenchmarkApp& app, common::RegressorPtr inner) {
  return std::make_unique<common::LogSpaceRegressor>(std::move(inner), transform_for(app));
}

std::vector<ModelCandidate> cpr_candidates(const apps::BenchmarkApp& app, SweepScale scale) {
  // Paper: grid-cell counts 4 -> 256 per dimension, CP ranks 1 -> 64,
  // lambda 1e-6 -> 1e-3. High-order apps cap cells to keep the
  // cell-count product sane (the paper likewise uses smaller per-dim
  // granularity for the 6-12 parameter apps).
  std::vector<std::size_t> cells =
      scale == SweepScale::Full ? std::vector<std::size_t>{4, 8, 16, 32, 64}
                                : std::vector<std::size_t>{4, 8, 16};
  if (app.dimensions() >= 6) {
    cells = scale == SweepScale::Full ? std::vector<std::size_t>{3, 5, 8}
                                      : std::vector<std::size_t>{5, 8};
  }
  const std::vector<std::size_t> ranks = scale == SweepScale::Full
                                             ? std::vector<std::size_t>{1, 2, 4, 8, 16, 32}
                                             : std::vector<std::size_t>{2, 4, 8};
  const std::vector<double> lambdas = scale == SweepScale::Full
                                          ? std::vector<double>{1e-6, 1e-5, 1e-4, 1e-3}
                                          : std::vector<double>{1e-5, 1e-4};

  std::vector<ModelCandidate> out;
  const auto specs = app.parameters();
  for (const auto cell_count : cells) {
    for (const auto rank : ranks) {
      for (const double lambda : lambdas) {
        common::ModelSpec spec;
        spec.params = specs;
        spec.cells = cell_count;
        spec.hyper = {{"rank", std::to_string(rank)}, {"lambda", fmt_exact(lambda)}};
        out.push_back(registry_candidate(
            "CPR", "cpr",
            "cells=" + std::to_string(cell_count) + ",rank=" + std::to_string(rank) +
                ",lam=" + Table::fmt(lambda, 0),
            std::move(spec)));
      }
    }
  }
  return out;
}

std::vector<ModelCandidate> baseline_candidates(const apps::BenchmarkApp& app,
                                                SweepScale scale) {
  std::vector<ModelCandidate> out;
  const bool full = scale == SweepScale::Full;

  const auto add = [&](const std::string& family, const std::string& tag,
                       const std::string& config,
                       std::map<std::string, std::string> hyper) {
    common::ModelSpec spec;
    spec.params = app.parameters();
    spec.hyper = std::move(hyper);
    out.push_back(registry_candidate(family, tag, config, std::move(spec)));
  };

  // SGR: discretization levels 2 -> 8, refinements, lambdas (Section 6.0.4).
  // Levels above 5 explode combinatorially for d >= 6; cap like SG++ would.
  const std::size_t max_level = app.dimensions() >= 6 ? (full ? 4u : 3u) : (full ? 6u : 4u);
  for (std::size_t level = 2; level <= max_level; ++level) {
    for (const int refinements : full ? std::vector<int>{0, 4, 8} : std::vector<int>{0, 4}) {
      for (const double lambda : full ? std::vector<double>{1e-6, 1e-4}
                                      : std::vector<double>{1e-5}) {
        add("SGR", "sgr",
            "level=" + std::to_string(level) + ",ref=" + std::to_string(refinements),
            {{"level", std::to_string(level)},
             {"refinements", std::to_string(refinements)},
             {"refine-points", "8"},
             {"lambda", fmt_exact(lambda)}});
      }
    }
  }

  // MARS: max spline degrees 1 -> 6 (interaction order).
  for (const int degree : full ? std::vector<int>{1, 2, 3, 4} : std::vector<int>{1, 2}) {
    add("MARS", "mars", "degree=" + std::to_string(degree),
        {{"degree", std::to_string(degree)}, {"max-terms", "21"}});
  }

  // KNN: 1 -> 6 neighbors.
  for (const std::size_t k : full ? std::vector<std::size_t>{1, 2, 3, 4, 5, 6}
                                  : std::vector<std::size_t>{1, 3, 6}) {
    add("KNN", "knn", "k=" + std::to_string(k), {{"k", std::to_string(k)}});
  }

  // Recursive partitioning: tree counts 1 -> 64, depths 2 -> 16.
  const auto tree_counts = full ? std::vector<std::size_t>{8, 16, 64}
                                : std::vector<std::size_t>{16};
  const auto depths = full ? std::vector<int>{4, 8, 16} : std::vector<int>{8, 16};
  for (const auto trees : tree_counts) {
    for (const int depth : depths) {
      const std::string config =
          "trees=" + std::to_string(trees) + ",depth=" + std::to_string(depth);
      const std::map<std::string, std::string> hyper = {
          {"trees", std::to_string(trees)}, {"depth", std::to_string(depth)}};
      add("RF", "rf", config, hyper);
      add("ET", "et", config, hyper);
      add("GB", "gb", config,
          {{"trees", std::to_string(trees)},
           {"depth", std::to_string(std::min(depth, 6))}});
    }
  }

  // GP: the paper's five covariance kernels.
  const std::vector<std::pair<std::string, std::string>> kernels = {
      {"rq", "RationalQuadratic"},
      {"rbf", "RBF"},
      {"dot", "DotProduct+White"},
      {"matern", "Matern"},
      {"const", "Constant"},
  };
  const std::string gp_samples = full ? "2048" : "1024";
  for (const auto& [kernel, kernel_name] : kernels) {
    add("GP", "gp", "kernel=" + kernel_name,
        {{"kernel", kernel}, {"max-samples", gp_samples}});
  }

  // SVM: {poly, rbf} kernels, polynomial degrees 1 -> 3.
  add("SVM", "svm", "kernel=rbf", {{"kernel", "rbf"}, {"max-samples", gp_samples}});
  for (const int degree : full ? std::vector<int>{1, 2, 3} : std::vector<int>{2}) {
    add("SVM", "svm", "kernel=poly,degree=" + std::to_string(degree),
        {{"kernel", "poly"},
         {"degree", std::to_string(degree)},
         {"max-samples", gp_samples}});
  }

  // NN: 1 -> 8 hidden layers of 2 -> 2048 units, {relu, tanh}.
  struct MlpArch {
    std::string layers;  ///< registry "layers" spec: widths joined by 'x'
    std::string name;
  };
  const std::vector<MlpArch> archs =
      full ? std::vector<MlpArch>{{"64", "64"},
                                  {"256", "256"},
                                  {"64x64", "64x2"},
                                  {"256x256", "256x2"},
                                  {"128x128x128", "128x3"}}
           : std::vector<MlpArch>{{"32", "32"}, {"64x64", "64x2"}};
  const std::string epochs = full ? "200" : "80";
  for (const auto& arch : archs) {
    for (const std::string act : {"relu", "tanh"}) {
      add("NN", "nn", "arch=" + arch.name + ",act=" + act,
          {{"layers", arch.layers}, {"act", act}, {"epochs", epochs}});
    }
  }

  return out;
}

FitScore fit_and_score(const ModelCandidate& candidate, const common::Dataset& train,
                       const common::Dataset& test) {
  auto model = candidate.make();
  Stopwatch watch;
  model->fit(train);
  FitScore score;
  score.seconds = watch.seconds();
  score.mlogq = common::evaluate_mlogq(*model, test);
  score.bytes = model->model_size_bytes();
  return score;
}

BestScore best_over(const std::vector<ModelCandidate>& candidates,
                    const common::Dataset& train, const common::Dataset& test,
                    double time_budget_seconds) {
  BestScore best;
  best.score.mlogq = std::numeric_limits<double>::infinity();
  Stopwatch budget;
  for (const auto& candidate : candidates) {
    if (budget.seconds() > time_budget_seconds) break;
    const FitScore score = fit_and_score(candidate, train, test);
    if (score.mlogq < best.score.mlogq) {
      best.score = score;
      best.config = candidate.config;
    }
  }
  return best;
}

BestScore tune_and_score(const std::string& family_tag, const apps::BenchmarkApp& app,
                         const common::Dataset& train, const common::Dataset& test,
                         SweepScale scale, std::size_t threads, std::uint64_t seed) {
  common::ModelSpec base;
  base.params = app.parameters();

  tune::TunerOptions options;
  const bool full = scale == SweepScale::Full;
  options.max_trials = full ? 16 : 8;
  options.rungs = full ? 3 : 2;
  options.folds = full ? 3 : 2;
  options.threads = threads;
  options.seed = seed;

  Stopwatch watch;
  auto outcome = tune::Tuner(options).run(family_tag, base, train);
  BestScore best;
  best.config = "tuned: " + outcome.ranked.front().config;
  best.score.seconds = watch.seconds();
  best.score.mlogq = common::evaluate_mlogq(*outcome.model, test);
  best.score.bytes = outcome.model->model_size_bytes();
  best.model = std::move(outcome.model);
  return best;
}

void emit(const Table& table, const CliArgs& args, const std::string& default_csv_name) {
  table.print(std::cout);
  if (args.has("csv")) {
    const std::string path = args.get_string("csv", default_csv_name);
    table.write_csv(path.empty() ? default_csv_name : path);
    std::cout << "csv written to " << (path.empty() ? default_csv_name : path) << "\n";
  }
}

void write_json(const std::string& path, const std::vector<JsonRecord>& records) {
  util::write_perf_json(path, records);
}

void emit_json(const CliArgs& args, const std::vector<JsonRecord>& records) {
  if (!args.has("json")) return;
  const std::string path = args.get_string("json", "");
  CPR_CHECK_MSG(!path.empty(), "--json needs a target path (--json=bench.json)");
  write_json(path, records);
  std::cout << records.size() << " perf records written to " << path << "\n";
}

std::unique_ptr<apps::BenchmarkApp> app_by_name(const std::string& name) {
  for (auto& app : apps::make_all_apps()) {
    if (app->name() == name) return std::move(app);
  }
  CPR_CHECK_MSG(false, "unknown app '" << name << "'");
  return nullptr;
}

}  // namespace cpr::bench
