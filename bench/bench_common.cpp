#include "bench_common.hpp"

#include <iostream>

#include "baselines/forest.hpp"
#include "baselines/gaussian_process.hpp"
#include "baselines/global_models.hpp"
#include "baselines/knn.hpp"
#include "baselines/mars.hpp"
#include "baselines/mlp.hpp"
#include "baselines/sparse_grid.hpp"
#include "baselines/svr.hpp"
#include "core/cpr_model.hpp"

namespace cpr::bench {

common::FeatureTransform transform_for(const apps::BenchmarkApp& app) {
  const auto& params = app.parameters();
  common::FeatureTransform transform;
  transform.log_target = true;
  transform.log_feature.resize(params.size());
  for (std::size_t j = 0; j < params.size(); ++j) {
    transform.log_feature[j] = params[j].kind == grid::ParameterKind::NumericalLog;
  }
  return transform;
}

common::RegressorPtr wrapped(const apps::BenchmarkApp& app, common::RegressorPtr inner) {
  return std::make_unique<common::LogSpaceRegressor>(std::move(inner), transform_for(app));
}

std::vector<ModelCandidate> cpr_candidates(const apps::BenchmarkApp& app, SweepScale scale) {
  // Paper: grid-cell counts 4 -> 256 per dimension, CP ranks 1 -> 64,
  // lambda 1e-6 -> 1e-3. High-order apps cap cells to keep the
  // cell-count product sane (the paper likewise uses smaller per-dim
  // granularity for the 6-12 parameter apps).
  std::vector<std::size_t> cells =
      scale == SweepScale::Full ? std::vector<std::size_t>{4, 8, 16, 32, 64}
                                : std::vector<std::size_t>{4, 8, 16};
  if (app.dimensions() >= 6) {
    cells = scale == SweepScale::Full ? std::vector<std::size_t>{3, 5, 8}
                                      : std::vector<std::size_t>{5, 8};
  }
  const std::vector<std::size_t> ranks = scale == SweepScale::Full
                                             ? std::vector<std::size_t>{1, 2, 4, 8, 16, 32}
                                             : std::vector<std::size_t>{2, 4, 8};
  const std::vector<double> lambdas = scale == SweepScale::Full
                                          ? std::vector<double>{1e-6, 1e-5, 1e-4, 1e-3}
                                          : std::vector<double>{1e-5, 1e-4};

  std::vector<ModelCandidate> out;
  const auto specs = app.parameters();
  for (const auto cell_count : cells) {
    for (const auto rank : ranks) {
      for (const double lambda : lambdas) {
        ModelCandidate candidate;
        candidate.family = "CPR";
        candidate.config = "cells=" + std::to_string(cell_count) +
                           ",rank=" + std::to_string(rank) +
                           ",lam=" + Table::fmt(lambda, 0);
        candidate.make = [specs, cell_count, rank, lambda] {
          core::CprOptions options;
          options.rank = rank;
          options.regularization = lambda;
          return std::make_unique<core::CprModel>(
              grid::Discretization(specs, cell_count), options);
        };
        out.push_back(std::move(candidate));
      }
    }
  }
  return out;
}

std::vector<ModelCandidate> baseline_candidates(const apps::BenchmarkApp& app,
                                                SweepScale scale) {
  std::vector<ModelCandidate> out;
  const bool full = scale == SweepScale::Full;
  const apps::BenchmarkApp* app_ptr = &app;

  const auto add = [&](const std::string& family, const std::string& config,
                       std::function<common::RegressorPtr()> make_inner) {
    out.push_back(ModelCandidate{
        family, config, [app_ptr, make_inner = std::move(make_inner)] {
          return wrapped(*app_ptr, make_inner());
        }});
  };

  // SGR: discretization levels 2 -> 8, refinements, lambdas (Section 6.0.4).
  // Levels above 5 explode combinatorially for d >= 6; cap like SG++ would.
  const std::size_t max_level = app.dimensions() >= 6 ? (full ? 4u : 3u) : (full ? 6u : 4u);
  for (std::size_t level = 2; level <= max_level; ++level) {
    for (const int refinements : full ? std::vector<int>{0, 4, 8} : std::vector<int>{0, 4}) {
      for (const double lambda : full ? std::vector<double>{1e-6, 1e-4}
                                      : std::vector<double>{1e-5}) {
        add("SGR",
            "level=" + std::to_string(level) + ",ref=" + std::to_string(refinements),
            [level, refinements, lambda] {
              baselines::SgrOptions options;
              options.level = level;
              options.refinements = refinements;
              options.refine_points = 8;
              options.regularization = lambda;
              return std::make_unique<baselines::SparseGridRegressor>(options);
            });
      }
    }
  }

  // MARS: max spline degrees 1 -> 6 (interaction order).
  for (const int degree : full ? std::vector<int>{1, 2, 3, 4} : std::vector<int>{1, 2}) {
    add("MARS", "degree=" + std::to_string(degree), [degree] {
      baselines::MarsOptions options;
      options.max_degree = degree;
      options.max_terms = 21;
      return std::make_unique<baselines::Mars>(options);
    });
  }

  // KNN: 1 -> 6 neighbors.
  for (const std::size_t k : full ? std::vector<std::size_t>{1, 2, 3, 4, 5, 6}
                                  : std::vector<std::size_t>{1, 3, 6}) {
    add("KNN", "k=" + std::to_string(k), [k] {
      return std::make_unique<baselines::KnnRegressor>(baselines::KnnOptions{k, true});
    });
  }

  // Recursive partitioning: tree counts 1 -> 64, depths 2 -> 16.
  const auto tree_counts = full ? std::vector<std::size_t>{8, 16, 64}
                                : std::vector<std::size_t>{16};
  const auto depths = full ? std::vector<int>{4, 8, 16} : std::vector<int>{8, 16};
  for (const auto trees : tree_counts) {
    for (const int depth : depths) {
      const std::string config =
          "trees=" + std::to_string(trees) + ",depth=" + std::to_string(depth);
      add("RF", config, [trees, depth] {
        baselines::ForestOptions options;
        options.n_trees = trees;
        options.max_depth = depth;
        return std::make_unique<baselines::RandomForestRegressor>(options);
      });
      add("ET", config, [trees, depth] {
        baselines::ForestOptions options;
        options.n_trees = trees;
        options.max_depth = depth;
        return std::make_unique<baselines::ExtraTreesRegressor>(options);
      });
      add("GB", config, [trees, depth] {
        baselines::BoostingOptions options;
        options.n_trees = trees;
        options.max_depth = std::min(depth, 6);
        return std::make_unique<baselines::GradientBoostingRegressor>(options);
      });
    }
  }

  // GP: the paper's five covariance kernels.
  const std::vector<std::pair<baselines::GpKernel, std::string>> kernels = {
      {baselines::GpKernel::RationalQuadratic, "RationalQuadratic"},
      {baselines::GpKernel::Rbf, "RBF"},
      {baselines::GpKernel::DotProductWhite, "DotProduct+White"},
      {baselines::GpKernel::Matern, "Matern"},
      {baselines::GpKernel::Constant, "Constant"},
  };
  for (const auto& [kernel, kernel_name] : kernels) {
    add("GP", "kernel=" + kernel_name, [kernel, full] {
      baselines::GpOptions options;
      options.kernel = kernel;
      options.max_samples = full ? 2048 : 1024;
      return std::make_unique<baselines::GaussianProcess>(options);
    });
  }

  // SVM: {poly, rbf} kernels, polynomial degrees 1 -> 3.
  add("SVM", "kernel=rbf", [full] {
    baselines::SvrOptions options;
    options.kernel = baselines::SvrKernel::Rbf;
    options.max_samples = full ? 2048 : 1024;
    return std::make_unique<baselines::Svr>(options);
  });
  for (const int degree : full ? std::vector<int>{1, 2, 3} : std::vector<int>{2}) {
    add("SVM", "kernel=poly,degree=" + std::to_string(degree), [degree, full] {
      baselines::SvrOptions options;
      options.kernel = baselines::SvrKernel::Poly;
      options.poly_degree = degree;
      options.max_samples = full ? 2048 : 1024;
      return std::make_unique<baselines::Svr>(options);
    });
  }

  // NN: 1 -> 8 hidden layers of 2 -> 2048 units, {relu, tanh}.
  struct MlpArch {
    std::vector<std::size_t> layers;
    std::string name;
  };
  const std::vector<MlpArch> archs =
      full ? std::vector<MlpArch>{{{64}, "64"},
                                  {{256}, "256"},
                                  {{64, 64}, "64x2"},
                                  {{256, 256}, "256x2"},
                                  {{128, 128, 128}, "128x3"}}
           : std::vector<MlpArch>{{{32}, "32"}, {{64, 64}, "64x2"}};
  for (const auto& arch : archs) {
    for (const auto activation : {baselines::Activation::Relu, baselines::Activation::Tanh}) {
      const std::string act_name =
          activation == baselines::Activation::Relu ? "relu" : "tanh";
      add("NN", "arch=" + arch.name + ",act=" + act_name, [arch, activation, full] {
        baselines::MlpOptions options;
        options.hidden_layers = arch.layers;
        options.activation = activation;
        options.epochs = full ? 200 : 80;
        return std::make_unique<baselines::Mlp>(options);
      });
    }
  }

  return out;
}

FitScore fit_and_score(const ModelCandidate& candidate, const common::Dataset& train,
                       const common::Dataset& test) {
  auto model = candidate.make();
  Stopwatch watch;
  model->fit(train);
  FitScore score;
  score.seconds = watch.seconds();
  score.mlogq = common::evaluate_mlogq(*model, test);
  score.bytes = model->model_size_bytes();
  return score;
}

BestScore best_over(const std::vector<ModelCandidate>& candidates,
                    const common::Dataset& train, const common::Dataset& test,
                    double time_budget_seconds) {
  BestScore best;
  best.score.mlogq = std::numeric_limits<double>::infinity();
  Stopwatch budget;
  for (const auto& candidate : candidates) {
    if (budget.seconds() > time_budget_seconds) break;
    const FitScore score = fit_and_score(candidate, train, test);
    if (score.mlogq < best.score.mlogq) {
      best.score = score;
      best.config = candidate.config;
    }
  }
  return best;
}

void emit(const Table& table, const CliArgs& args, const std::string& default_csv_name) {
  table.print(std::cout);
  if (args.has("csv")) {
    const std::string path = args.get_string("csv", default_csv_name);
    table.write_csv(path.empty() ? default_csv_name : path);
    std::cout << "csv written to " << (path.empty() ? default_csv_name : path) << "\n";
  }
}

std::unique_ptr<apps::BenchmarkApp> app_by_name(const std::string& name) {
  for (auto& app : apps::make_all_apps()) {
    if (app->name() == name) return std::move(app);
  }
  CPR_CHECK_MSG(false, "unknown app '" << name << "'");
  return nullptr;
}

}  // namespace cpr::bench
