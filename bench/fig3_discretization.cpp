// Figure 3 reproduction: prediction accuracy of the piecewise/grid-based
// models (CPR, SGR, MARS) as a function of discretization granularity.
//
// Granularity means grid cells per numerical dimension for CPR and the
// discretization level (2^level) for SGR; MARS selects its own knots, so it
// appears as a granularity-independent reference line. The paper's panels
// use MM, QR, FMM, AMG, KRIPKE with training sizes 2^16, 2^16, 2^15, 2^15,
// 2^14; default runs scale those down (--full restores them).

#include <iostream>

#include "bench_common.hpp"
#include "common/model_registry.hpp"

using namespace cpr;

int main(int argc, char** argv) {
  CliArgs args(argc, argv);
  const bool full = args.has("full");
  const auto seed = static_cast<std::uint64_t>(args.get_int("seed", 1));

  struct Panel {
    std::string app;
    std::size_t train_size;
  };
  const std::vector<Panel> panels = full
      ? std::vector<Panel>{{"MM", 65536}, {"QR", 65536}, {"FMM", 32768},
                           {"AMG", 32768}, {"KRIPKE", 16384}}
      : std::vector<Panel>{{"MM", 8192}, {"QR", 8192}, {"FMM", 4096},
                           {"AMG", 4096}, {"KRIPKE", 4096}};
  const std::size_t test_size = full ? 2048 : 512;

  std::cout << "== Figure 3: accuracy vs discretization granularity ==\n"
            << "(MLogQ; CPR granularity = cells/dim, SGR granularity = 2^level)\n";

  Table table({"app", "train", "model", "granularity", "MLogQ", "fit s"});
  for (const auto& panel : panels) {
    const auto app = bench::app_by_name(panel.app);
    const auto train = app->generate_dataset(panel.train_size, seed);
    const auto test = app->generate_dataset(test_size, seed + 1);
    const bool high_dim = app->dimensions() >= 6;

    // CPR: sweep cells/dim at a fixed moderate rank (the paper reports the
    // best rank per granularity; we sweep a small rank set per cell count).
    const auto cell_counts = high_dim
        ? (full ? std::vector<std::size_t>{2, 3, 4, 6, 8, 10, 12}
                : std::vector<std::size_t>{4, 6, 8, 10, 12})
        : (full ? std::vector<std::size_t>{4, 8, 16, 32, 64, 128, 256}
                : std::vector<std::size_t>{4, 8, 16, 32, 64});
    // All models are constructed by name through the registry; the spec's
    // parameter space supplies the CPR discretization and the baselines'
    // feature transform.
    const auto make = [&](const std::string& family, std::size_t cells,
                          std::map<std::string, std::string> hyper) {
      common::ModelSpec spec;
      spec.params = app->parameters();
      spec.cells = cells;
      spec.hyper = std::move(hyper);
      return common::ModelRegistry::instance().create(family, spec);
    };

    for (const auto cells : cell_counts) {
      double best = 1e300, best_seconds = 0.0;
      for (const std::size_t rank : full ? std::vector<std::size_t>{2, 4, 8, 16}
                                         : std::vector<std::size_t>{4, 8}) {
        auto model = make("cpr", cells, {{"rank", std::to_string(rank)}});
        Stopwatch watch;
        model->fit(train);
        const double seconds = watch.seconds();
        const double error = common::evaluate_mlogq(*model, test);
        if (error < best) {
          best = error;
          best_seconds = seconds;
        }
      }
      table.add_row({panel.app, Table::fmt(panel.train_size), "CPR", Table::fmt(cells),
                     Table::fmt(best, 4), Table::fmt(best_seconds, 2)});
    }

    // SGR: sweep the discretization level.
    const std::size_t max_level = high_dim ? (full ? 4u : 3u) : (full ? 7u : 5u);
    for (std::size_t level = 2; level <= max_level; ++level) {
      auto model = make("sgr", 16, {{"level", std::to_string(level)}});
      Stopwatch watch;
      model->fit(train);
      table.add_row({panel.app, Table::fmt(panel.train_size), "SGR",
                     Table::fmt(std::size_t{1} << level),
                     Table::fmt(common::evaluate_mlogq(*model, test), 4),
                     Table::fmt(watch.seconds(), 2)});
    }

    // MARS: granularity chosen internally (reference line).
    {
      auto model = make("mars", 16, {{"degree", "2"}});
      Stopwatch watch;
      model->fit(train);
      table.add_row({panel.app, Table::fmt(panel.train_size), "MARS", "auto",
                     Table::fmt(common::evaluate_mlogq(*model, test), 4),
                     Table::fmt(watch.seconds(), 2)});
    }
  }

  bench::emit(table, args, "fig3_discretization.csv");
  return 0;
}
