#pragma once
// Shared infrastructure for the figure/table reproduction benches:
// the model zoo (every family of Section 6.0.4 with its hyper-parameter
// sweep), the Section-6.0.4 feature transform, and fit/score helpers.
//
// Every bench accepts:
//   --full        paper-scale sweeps (default runs are scaled down so the
//                 whole bench suite finishes in minutes)
//   --csv=<path>  additionally write the printed table as CSV
//   --json=<path> write perf records (suite/case/seconds/model_bytes) as
//                 JSON, for BENCH_*.json performance trajectories
//   --seed=<n>    dataset seed (default 1)

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "apps/benchmark_app.hpp"
#include "common/evaluation.hpp"
#include "common/regressor.hpp"
#include "common/transform.hpp"
#include "util/cli.hpp"
#include "util/perf_json.hpp"
#include "util/stopwatch.hpp"
#include "util/table.hpp"

namespace cpr::bench {

/// One configured model in a hyper-parameter sweep. Candidates are
/// constructed through the ModelRegistry, so the benches exercise exactly
/// the models the tools train and serve.
struct ModelCandidate {
  std::string family;   ///< "CPR", "SGR", "NN", ...
  std::string config;   ///< human-readable hyper-parameter string
  std::function<common::RegressorPtr()> make;
};

/// Sweep sizes: Small keeps the default bench suite fast; Full approximates
/// the paper's exhaustive grids (Section 6.0.4).
enum class SweepScale { Small, Full };

/// The Section-6.0.4 transform: log-transform execution times and the
/// log-sampled (input/architectural) parameters; leave uniform-sampled
/// configuration parameters and categorical indices linear.
common::FeatureTransform transform_for(const apps::BenchmarkApp& app);

/// Wraps a baseline in the Section-6.0.4 transform.
common::RegressorPtr wrapped(const apps::BenchmarkApp& app, common::RegressorPtr inner);

/// CPR (our method) candidates: cells x rank x lambda.
std::vector<ModelCandidate> cpr_candidates(const apps::BenchmarkApp& app, SweepScale scale);

/// All alternative-model candidates (SGR, MARS, KNN, RF, GB, ET, GP, SVM, NN).
std::vector<ModelCandidate> baseline_candidates(const apps::BenchmarkApp& app,
                                                SweepScale scale);

/// Fit + MLogQ on the test set; returns (error, fit_seconds, model_bytes).
struct FitScore {
  double mlogq = 0.0;
  double seconds = 0.0;
  std::size_t bytes = 0;
};
FitScore fit_and_score(const ModelCandidate& candidate, const common::Dataset& train,
                       const common::Dataset& test);

/// Best (minimum-error) score across a candidate list — the paper's
/// "minimum error achieved by exhaustively exploring hyper-parameters".
/// `model` carries the scored instance when the producer has one
/// (tune_and_score's refit winner; best_over leaves it null) so callers can
/// re-encode it, e.g. fig7's quantized error-vs-size points.
struct BestScore {
  FitScore score;
  std::string config;
  common::RegressorPtr model;
};
BestScore best_over(const std::vector<ModelCandidate>& candidates,
                    const common::Dataset& train, const common::Dataset& test,
                    double time_budget_seconds = 1e9);

/// Honestly-tuned candidate for one registry family: runs the universal
/// successive-halving tuner (src/tune) over the family's registered search
/// space on `train` — never peeking at `test` — then scores the refit
/// winner. `score.seconds` is the full tune + refit wall time; `config` the
/// winning assignment.
BestScore tune_and_score(const std::string& family_tag, const apps::BenchmarkApp& app,
                         const common::Dataset& train, const common::Dataset& test,
                         SweepScale scale, std::size_t threads = 1,
                         std::uint64_t seed = 42);

/// Prints the table and optionally writes CSV per --csv.
void emit(const Table& table, const CliArgs& args, const std::string& default_csv_name);

/// One record of the --json perf emitter. The format (emitter, parser, and
/// the cpr_bench baseline diff) lives in util/perf_json.hpp so the tools and
/// tests share it.
using JsonRecord = util::PerfRecord;

/// Writes records as a JSON array of {"suite", "case", "seconds",
/// "model_bytes"} objects (delegates to util::write_perf_json).
void write_json(const std::string& path, const std::vector<JsonRecord>& records);

/// Writes the records to the --json=<path> target if given (no-op otherwise).
void emit_json(const CliArgs& args, const std::vector<JsonRecord>& records);

/// Returns the app with the given short name ("MM", "QR", ...).
std::unique_ptr<apps::BenchmarkApp> app_by_name(const std::string& name);

}  // namespace cpr::bench
