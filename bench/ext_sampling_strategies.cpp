// Extension bench: effect of the sampling strategy on CPR accuracy — the
// paper's future-work question about "datasets with different (non-random)
// structure that reflects exploration and exploitation sampling methods".
//
// Same sample budget, four ways of spending it:
//   iid      the paper's log-uniform/uniform random protocol
//   lhs      Latin-hypercube stratification (better marginal coverage)
//   grid     designed experiment at grid mid-points (zero within-cell
//            dispersion, but covers fewer distinct cells per budget)
//   exploit  autotuner-style trace biased toward fast configurations
//
// Expected shape: lhs ~ iid (CPR only needs per-cell coverage); grid helps
// at small budgets on coarse grids (each sample pins one anchor exactly);
// exploit hurts uniformly-evaluated test error because most of the domain
// is never observed.

#include <iostream>

#include "apps/sampling.hpp"
#include "bench_common.hpp"
#include "core/cpr_model.hpp"

using namespace cpr;

int main(int argc, char** argv) {
  CliArgs args(argc, argv);
  const bool full = args.has("full");
  const auto seed = static_cast<std::uint64_t>(args.get_int("seed", 1));
  const std::size_t test_size = full ? 1024 : 512;

  std::cout << "== Extension: sampling strategy vs CPR accuracy ==\n";

  Table table({"app", "train", "strategy", "MLogQ", "observed density"});
  for (const std::string& app_name : full ? std::vector<std::string>{"MM", "BC", "FMM"}
                                         : std::vector<std::string>{"MM", "FMM"}) {
    const auto app = bench::app_by_name(app_name);
    const bool high_dim = app->dimensions() >= 6;
    const std::size_t cells = high_dim ? 8 : 12;
    const grid::Discretization disc(app->parameters(), cells);
    const auto test = app->generate_dataset(test_size, seed + 1);

    for (const std::size_t train_size : full
             ? std::vector<std::size_t>{512, 2048, 8192, 32768}
             : std::vector<std::size_t>{512, 2048, 8192}) {
      for (const auto strategy :
           {apps::SamplingStrategy::IidRandom, apps::SamplingStrategy::LatinHypercube,
            apps::SamplingStrategy::GridAligned, apps::SamplingStrategy::Exploitative}) {
        const auto train =
            apps::generate_with_strategy(*app, train_size, seed, strategy, &disc);
        core::CprOptions options;
        options.rank = high_dim ? 8 : 6;
        core::CprModel model(disc, options);
        model.fit(train);
        table.add_row({app_name, Table::fmt(train_size),
                       apps::sampling_strategy_name(strategy),
                       Table::fmt(common::evaluate_mlogq(model, test), 4),
                       Table::fmt(model.observed_density(), 4)});
      }
    }
  }

  bench::emit(table, args, "ext_sampling_strategies.csv");
  return 0;
}
