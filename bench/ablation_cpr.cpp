// Ablation study of the CPR implementation's design choices (beyond the
// paper's figures; DESIGN.md documents each choice):
//
//   init          ones-based vs zero-mean Gaussian factor initialization
//   centering     subtracting the mean log execution time before completion
//   rebalance     per-sweep per-component column-norm rebalancing
//   interpolation log-space Eq.-5 vs the literal exp-space formula
//   restarts      best-of-2 restarts vs a single optimizer run
//
// Each row flips exactly one switch from the shipped configuration and
// reports test MLogQ on a low-order kernel (MM) and a high-order app (AMG),
// where the differences are starkest.

#include <iostream>

#include "bench_common.hpp"
#include "core/cpr_model.hpp"

using namespace cpr;

namespace {

core::CprOptions shipped(std::size_t rank) {
  core::CprOptions options;
  options.rank = rank;
  return options;
}

}  // namespace

int main(int argc, char** argv) {
  CliArgs args(argc, argv);
  const bool full = args.has("full");
  const auto seed = static_cast<std::uint64_t>(args.get_int("seed", 1));
  const std::size_t train_size = full ? 16384 : 4096;
  const std::size_t test_size = full ? 1024 : 512;

  std::cout << "== CPR design-choice ablations (one switch flipped per row) ==\n";

  struct Variant {
    std::string name;
    std::function<void(core::CprOptions&)> mutate;
  };
  const std::vector<Variant> variants = {
      {"shipped", [](core::CprOptions&) {}},
      {"init=gaussian", [](core::CprOptions& o) { o.init = core::CprInit::Gaussian; }},
      {"no centering", [](core::CprOptions& o) { o.center_log_values = false; }},
      {"no rebalance", [](core::CprOptions& o) { o.rebalance = false; }},
      {"interp=exp-space",
       [](core::CprOptions& o) { o.interpolation = core::CprInterpolation::ExpSpace; }},
      {"restarts=1", [](core::CprOptions& o) { o.restarts = 1; }},
      {"quad=geomean",
       [](core::CprOptions& o) { o.quadrature = core::CellQuadrature::GeomMean; }},
      {"quad=median",
       [](core::CprOptions& o) { o.quadrature = core::CellQuadrature::Median; }},
  };

  Table table({"app", "variant", "MLogQ", "train objective", "fit s"});
  const std::vector<std::pair<std::string, std::size_t>> panels = {{"MM", 16}, {"BC", 8},
                                                                   {"AMG", 8}};
  for (const auto& [app_name, cells] : panels) {
    const auto app = bench::app_by_name(app_name);
    const auto train = app->generate_dataset(train_size, seed);
    const auto test = app->generate_dataset(test_size, seed + 1);
    const std::size_t rank = app->dimensions() >= 6 ? 8 : 8;
    for (const auto& variant : variants) {
      core::CprOptions options = shipped(rank);
      variant.mutate(options);
      core::CprModel model(grid::Discretization(app->parameters(), cells), options);
      Stopwatch watch;
      model.fit(train);
      table.add_row({app_name, variant.name,
                     Table::fmt(common::evaluate_mlogq(model, test), 4),
                     Table::fmt(model.report().final_objective(), 4),
                     Table::fmt(watch.seconds(), 2)});
    }
  }

  bench::emit(table, args, "ablation_cpr.csv");
  return 0;
}
