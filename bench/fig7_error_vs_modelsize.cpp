// Figure 7 reproduction: prediction error vs model size (bytes of persisted
// fitted parameters). All families are trained on the same sample count
// (paper: 8192) and every hyper-parameter configuration contributes one
// (size, error) point; the paper drops models above 10 MB. CPR's claim:
// highest accuracy relative to model size, increasingly so in higher
// dimensions (KNN/GP must store the training set; NN needs ~50x more bytes
// at comparable accuracy).
//
// --tuned additionally scores one honestly-tuned point per family (the
// universal successive-halving tuner over the family's registered search
// space, cross-validated on the training set only) — the paper's
// "after each family is tuned" comparison without test-set peeking.
// --threads parallelizes the tuner's candidate evaluation.

#include <iostream>
#include <map>

#include "bench_common.hpp"
#include "common/model_registry.hpp"
#include "core/model_file.hpp"
#include "util/quantize.hpp"
#include "util/serialize.hpp"

using namespace cpr;

namespace {

/// Round-trips a fitted model through a quantized in-memory archive body —
/// the same encoding save_model_file writes — and returns the reloaded
/// instance, i.e. exactly what serving would predict with after
/// `--quantize=<mode>`.
common::RegressorPtr quantized_round_trip(const common::Regressor& model,
                                          QuantMode mode) {
  BufferSink sink;
  sink.set_quant_mode(mode);
  model.save(sink);
  BufferSource source(sink.buffer());
  source.set_quant_mode(mode, /*quantized_framing=*/true);
  auto reloaded = common::ModelRegistry::instance().load(model.type_tag(), source);
  reloaded->set_archive_quant_mode(mode);
  return reloaded;
}

}  // namespace

int main(int argc, char** argv) {
  CliArgs args(argc, argv);
  const bool full = args.has("full");
  const auto seed = static_cast<std::uint64_t>(args.get_int("seed", 1));
  const auto scale = full ? bench::SweepScale::Full : bench::SweepScale::Small;
  const auto tune_threads = static_cast<std::size_t>(args.get_int("threads", 1));

  const std::vector<std::string> panel_apps =
      full ? std::vector<std::string>{"MM", "QR", "BC", "FMM", "AMG", "KRIPKE"}
           : std::vector<std::string>{"MM", "FMM", "AMG"};
  const std::size_t train_size = full ? 8192 : 4096;
  const std::size_t test_size = full ? 2048 : 512;
  constexpr std::size_t kMaxBytes = 10u << 20;  // paper's 10 MB cutoff

  std::cout << "== Figure 7: error vs model size (train = " << train_size << ") ==\n";

  Table table({"app", "family", "config", "bytes", "MLogQ"});
  Table frontier({"app", "family", "best MLogQ", "bytes at best", "min bytes within 2x"});
  std::vector<bench::JsonRecord> perf_records;
  for (const auto& app_name : panel_apps) {
    const auto app = bench::app_by_name(app_name);
    const auto train = app->generate_dataset(train_size, seed);
    const auto test = app->generate_dataset(test_size, seed + 1);

    std::vector<bench::ModelCandidate> candidates = bench::cpr_candidates(*app, scale);
    for (auto& candidate : bench::baseline_candidates(*app, scale)) {
      candidates.push_back(std::move(candidate));
    }

    std::map<std::string, std::vector<std::pair<std::size_t, double>>> family_points;
    for (const auto& candidate : candidates) {
      const auto score = bench::fit_and_score(candidate, train, test);
      perf_records.push_back({"fig7_error_vs_modelsize",
                              app_name + "/" + candidate.family + "/" + candidate.config,
                              score.seconds, score.bytes});
      if (score.bytes >= kMaxBytes) continue;
      if (score.seconds >= (full ? 1000.0 : 120.0)) continue;
      family_points[candidate.family].emplace_back(score.bytes, score.mlogq);
      table.add_row({app_name, candidate.family, candidate.config,
                     Table::fmt(score.bytes), Table::fmt(score.mlogq, 4)});
    }

    if (args.has("tuned")) {
      const std::vector<std::pair<std::string, std::string>> tuned_families = {
          {"cpr", "CPR"}, {"sgr", "SGR"}, {"mars", "MARS"}, {"knn", "KNN"},
          {"rf", "RF"},   {"et", "ET"},   {"gb", "GB"},     {"gp", "GP"},
          {"svm", "SVM"}, {"nn", "NN"},
      };
      for (const auto& [tag, family] : tuned_families) {
        const auto tuned =
            bench::tune_and_score(tag, *app, train, test, scale, tune_threads, seed);
        perf_records.push_back({"fig7_error_vs_modelsize",
                                app_name + "/" + family + "/tuned",
                                tuned.score.seconds, tuned.score.bytes});
        // The error-vs-size trade of lossy archives, per family: score the
        // tuned winner reloaded from each quantized encoding against the
        // same test set. The fp64 row is the tuned point itself; lossy rows
        // show how much accuracy each factor-of-N size cut costs.
        for (const QuantMode mode :
             {QuantMode::F32, QuantMode::F16, QuantMode::I8}) {
          const std::string mode_name = util::quant_mode_name(mode);
          const auto reloaded = quantized_round_trip(*tuned.model, mode);
          const double mlogq = common::evaluate_mlogq(*reloaded, test);
          const std::size_t bytes = core::model_archive_bytes(*tuned.model, mode);
          // seconds stays 0 (no fit happened); the record carries the
          // per-mode archive size, the table/CSV the error.
          perf_records.push_back({"fig7_error_vs_modelsize",
                                  app_name + "/" + family + "/tuned-" + mode_name,
                                  0.0, bytes, mode_name});
          table.add_row({app_name, family, tuned.config + " [" + mode_name + "]",
                         Table::fmt(bytes), Table::fmt(mlogq, 4)});
        }
        if (tuned.score.bytes >= kMaxBytes) continue;
        family_points[family].emplace_back(tuned.score.bytes, tuned.score.mlogq);
        table.add_row({app_name, family, tuned.config, Table::fmt(tuned.score.bytes),
                       Table::fmt(tuned.score.mlogq, 4)});
      }
    }

    for (const auto& [family, points] : family_points) {
      double best_error = 1e300;
      std::size_t bytes_at_best = 0;
      for (const auto& [bytes, error] : points) {
        if (error < best_error) {
          best_error = error;
          bytes_at_best = bytes;
        }
      }
      std::size_t min_bytes_2x = bytes_at_best;
      for (const auto& [bytes, error] : points) {
        if (error <= 2.0 * best_error) min_bytes_2x = std::min(min_bytes_2x, bytes);
      }
      frontier.add_row({app_name, family, Table::fmt(best_error, 4),
                        Table::fmt(bytes_at_best), Table::fmt(min_bytes_2x)});
    }
  }

  bench::emit(table, args, "fig7_error_vs_modelsize.csv");
  std::cout << "\nPer-family accuracy/size frontier summary:\n";
  bench::emit(frontier, args, "fig7_frontier.csv");
  bench::emit_json(args, perf_records);
  return 0;
}
