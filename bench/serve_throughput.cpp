// serve_throughput — end-to-end serving throughput of the src/serve stack.
//
// Closed-loop load test: google-benchmark's --benchmark_* threading runs T
// client threads, each synchronously issuing PREDICT protocol lines against
// one in-process serve::Server (the same handle_line() surface cpr_serve's
// stdio/socket frontends drive). Cases cover the cache-miss path (unique
// query streams), the cache-hit path (revisited configurations, the
// autotuner pattern), the uncached baseline, and a two-model interleave
// that forces the micro-batcher to group per model.
//
// Besides the --benchmark_* flags, accepts --json=<path>: per-benchmark
// wall seconds per request in the same BENCH_*.json trajectory format as
// fig7/micro_kernels, plus the client-observed per-request latency
// distribution (cases ".../client_p50|p99|p999") — the same percentile
// schema bench/serve_latency emits for its open-loop TCP runs, so closed-
// and open-loop latency land in one comparable trajectory.
// Items-per-second in the console output is the serving QPS.

#include <benchmark/benchmark.h>

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <filesystem>
#include <iostream>
#include <map>
#include <mutex>
#include <string_view>
#include <unistd.h>

#include "bench_common.hpp"
#include "common/model_registry.hpp"
#include "core/model_file.hpp"
#include "obs/metrics.hpp"
#include "serve/server.hpp"
#include "util/rng.hpp"

namespace cpr {
namespace {

/// Separable power-law runtime, the repo's standard synthetic workload.
common::Dataset sample_power_law(std::size_t n, std::uint64_t seed) {
  Rng rng(seed);
  common::Dataset data;
  data.x = linalg::Matrix(n, 2);
  data.y.resize(n);
  for (std::size_t i = 0; i < n; ++i) {
    data.x(i, 0) = rng.log_uniform(32.0, 4096.0);
    data.x(i, 1) = rng.log_uniform(32.0, 4096.0);
    data.y[i] = 1e-6 * std::pow(data.x(i, 0), 1.5) * std::pow(data.x(i, 1), 0.8) *
                std::exp(rng.normal(0.0, 0.05));
  }
  return data;
}

/// Model directory + archives shared by every benchmark, built once.
class ServeFixtureState {
 public:
  static ServeFixtureState& instance() {
    static ServeFixtureState state;
    return state;
  }

  const std::string& dir() const { return dir_; }
  /// Pre-rendered "PREDICT <model> v1,v2" lines, one disjoint slice per
  /// client thread (up to 64 threads x 512 lines each).
  const std::vector<std::string>& lines(const std::string& model) const {
    if (model == "pl-knn") return knn_lines_;
    if (model == "pl-cpr-int8") return int8_lines_;
    return cpr_lines_;
  }

  static constexpr std::size_t kPerThread = 512;
  static constexpr std::size_t kMaxThreads = 64;

 private:
  ServeFixtureState() {
    dir_ = (std::filesystem::temp_directory_path() /
            ("cpr_serve_bench_" + std::to_string(::getpid())))
               .string();
    std::filesystem::create_directories(dir_);
    save_model("pl-cpr", "cpr");
    save_model("pl-knn", "knn");
    // Same family and data as pl-cpr but through the int8-quantized archive:
    // the serving path is identical after load, so any throughput delta
    // against BM_ServePredict is pure encoding cost.
    save_model("pl-cpr-int8", "cpr", QuantMode::I8);
    cpr_lines_ = render_lines("pl-cpr", 1);
    knn_lines_ = render_lines("pl-knn", 2);
    int8_lines_ = render_lines("pl-cpr-int8", 1);
  }

  void save_model(const std::string& name, const std::string& family,
                  QuantMode quant_mode = QuantMode::F64) {
    common::ModelSpec spec;
    spec.params = {grid::ParameterSpec::numerical_log("x", 32.0, 4096.0),
                   grid::ParameterSpec::numerical_log("y", 32.0, 4096.0)};
    spec.cells = 8;
    auto model = common::ModelRegistry::instance().create(family, spec);
    model->fit(sample_power_law(512, 7));
    core::save_model_file(*model, core::model_file_path(dir_, name), quant_mode);
  }

  std::vector<std::string> render_lines(const std::string& model, std::uint64_t seed) {
    Rng rng(seed);
    std::vector<std::string> lines;
    lines.reserve(kMaxThreads * kPerThread);
    char buffer[96];
    for (std::size_t i = 0; i < kMaxThreads * kPerThread; ++i) {
      std::snprintf(buffer, sizeof(buffer), "PREDICT %s %.17g,%.17g", model.c_str(),
                    rng.log_uniform(32.0, 4096.0), rng.log_uniform(32.0, 4096.0));
      lines.emplace_back(buffer);
    }
    return lines;
  }

  std::string dir_;
  std::vector<std::string> cpr_lines_;
  std::vector<std::string> knn_lines_;
  std::vector<std::string> int8_lines_;
};

serve::ServerOptions server_options(std::size_t cache_capacity) {
  serve::ServerOptions options;
  options.model_dir = ServeFixtureState::instance().dir();
  options.batcher.workers = 2;
  options.batcher.max_batch = 64;
  options.batcher.max_wait_us = 100;
  options.cache_capacity = cache_capacity;
  return options;
}

/// Lazily-constructed servers keyed by benchmark case, shared across thread
/// counts and repetitions. The servers are deliberately leaked (joining the
/// batcher workers during static destruction would race google-benchmark's
/// own teardown); main() walks the registry after the run to print per-stage
/// attribution out of each server's mergeable latency histograms — the same
/// data the METRICS verb exposes.
class ServerRegistry {
 public:
  static ServerRegistry& instance() {
    static ServerRegistry registry;
    return registry;
  }

  serve::Server& get(const std::string& name, std::size_t cache_capacity) {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = servers_.find(name);
    if (it == servers_.end()) {
      it = servers_.emplace(name, new serve::Server(server_options(cache_capacity)))
               .first;
    }
    return *it->second;
  }

  /// One row per server: requests handled plus the mean server-side time in
  /// each stage, attributing the client-observed latencies above to batch
  /// wait vs inference.
  void print_stage_attribution(std::ostream& os) {
    std::lock_guard<std::mutex> lock(mu_);
    if (servers_.empty()) return;
    Table table({"server", "requests", "batch_wait_us", "predict_us"});
    for (auto& [name, server] : servers_) {
      const auto latency = server->stats().request_latency().snapshot();
      table.add_row({name, Table::fmt(latency.count()),
                     mean_us(server->stats().batch_wait().snapshot()),
                     mean_us(server->stats().predict_time().snapshot())});
    }
    os << "\nstage attribution (server-side histograms, mean per request):\n";
    table.print(os);
  }

 private:
  static std::string mean_us(const obs::HistogramSnapshot& snap) {
    if (snap.count() == 0) return "-";
    return Table::fmt(snap.sum_seconds() / static_cast<double>(snap.count()) * 1e6, 1);
  }

  std::mutex mu_;
  std::map<std::string, serve::Server*> servers_;
};

/// Client-observed latency samples, merged across threads and trials per
/// benchmark case; drained into perf records at exit.
class LatencyCollector {
 public:
  static LatencyCollector& instance() {
    static LatencyCollector collector;
    return collector;
  }

  void add(const std::string& case_name, std::vector<double>& samples) {
    std::lock_guard<std::mutex> lock(mu_);
    auto& all = by_case_[case_name];
    all.insert(all.end(), samples.begin(), samples.end());
  }

  /// p50/p99/p99.9 of every case, in the serve_latency percentile schema.
  std::vector<bench::JsonRecord> records() {
    std::lock_guard<std::mutex> lock(mu_);
    std::vector<bench::JsonRecord> records;
    for (auto& [case_name, samples] : by_case_) {
      if (samples.empty()) continue;
      std::sort(samples.begin(), samples.end());
      for (const auto& [tag, q] :
           {std::pair<const char*, double>{"client_p50", 0.50},
            {"client_p99", 0.99},
            {"client_p999", 0.999}}) {
        const auto rank = static_cast<std::size_t>(
            q * static_cast<double>(samples.size() - 1) + 0.5);
        records.push_back({"serve_throughput", case_name + "/" + tag,
                           samples[std::min(rank, samples.size() - 1)], 0,
                           case_name.rfind("BM_ServePredictQuantized", 0) == 0
                               ? "int8"
                               : "fp64"});
      }
    }
    return records;
  }

 private:
  std::mutex mu_;
  std::map<std::string, std::vector<double>> by_case_;
};

void issue(serve::Server& server, const std::string& line,
           std::vector<double>& latencies) {
  const auto start = std::chrono::steady_clock::now();
  const auto reply = server.handle_line(line);
  latencies.push_back(
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count());
  if (reply.text.rfind("OK ", 0) != 0) {
    // A failing request invalidates the whole measurement — abort loudly.
    std::cerr << "serve_throughput: request failed: " << line << " -> " << reply.text
              << "\n";
    std::abort();
  }
  benchmark::DoNotOptimize(reply.text.data());
}

/// The per-thread latency buffer: filled inside the timing loop, merged
/// into the collector (under "<case>/threads:<n>") once the loop ends.
class ThreadLatencies {
 public:
  ThreadLatencies(const char* case_name, const benchmark::State& state)
      : key_(std::string(case_name) + "/threads:" + std::to_string(state.threads())) {
    samples_.reserve(1 << 14);
  }
  ~ThreadLatencies() { LatencyCollector::instance().add(key_, samples_); }
  std::vector<double>& samples() { return samples_; }

 private:
  std::string key_;
  std::vector<double> samples_;
};

/// Closed-loop clients over disjoint query slices: every request is a cache
/// miss (or a first-touch fill), measuring store + batcher + inference.
void BM_ServePredict(benchmark::State& state) {
  serve::Server& server = ServerRegistry::instance().get("BM_ServePredict", 4096);
  const auto& lines = ServeFixtureState::instance().lines("pl-cpr");
  const std::size_t thread = static_cast<std::size_t>(state.thread_index());
  const std::size_t base = (thread % ServeFixtureState::kMaxThreads) *
                           ServeFixtureState::kPerThread;
  ThreadLatencies latencies("BM_ServePredict", state);
  std::size_t i = 0;
  for (auto _ : state) {
    issue(server, lines[base + (i++ % ServeFixtureState::kPerThread)], latencies.samples());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_ServePredict)->Threads(1)->Threads(4)->Threads(16)->UseRealTime();

/// Same load with the cache disabled: isolates what the LRU buys once a
/// query stream starts repeating (every loop after the first is all-hit
/// in BM_ServePredict, all-miss here).
void BM_ServePredictNoCache(benchmark::State& state) {
  serve::Server& server = ServerRegistry::instance().get("BM_ServePredictNoCache", 0);
  const auto& lines = ServeFixtureState::instance().lines("pl-cpr");
  const std::size_t thread = static_cast<std::size_t>(state.thread_index());
  const std::size_t base = (thread % ServeFixtureState::kMaxThreads) *
                           ServeFixtureState::kPerThread;
  ThreadLatencies latencies("BM_ServePredictNoCache", state);
  std::size_t i = 0;
  for (auto _ : state) {
    issue(server, lines[base + (i++ % ServeFixtureState::kPerThread)], latencies.samples());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_ServePredictNoCache)->Threads(1)->Threads(4)->Threads(16)->UseRealTime();

/// The autotuner pattern: all clients hammer one small neighborhood, so
/// nearly every request is answered from the sharded LRU.
void BM_ServePredictCacheHit(benchmark::State& state) {
  serve::Server& server = ServerRegistry::instance().get("BM_ServePredictCacheHit", 4096);
  const auto& lines = ServeFixtureState::instance().lines("pl-cpr");
  ThreadLatencies latencies("BM_ServePredictCacheHit", state);
  std::size_t i = 0;
  for (auto _ : state) {
    issue(server, lines[i++ % 16], latencies.samples());  // 16 hot configurations, shared by all
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_ServePredictCacheHit)->Threads(1)->Threads(4)->Threads(16)->UseRealTime();

/// The pl-cpr workload served from an int8-quantized archive: the factors
/// were dequantized to fp64 at load, so this should track BM_ServePredict
/// within noise — a gap means the quantized load path leaked into serving.
void BM_ServePredictQuantized(benchmark::State& state) {
  serve::Server& server =
      ServerRegistry::instance().get("BM_ServePredictQuantized", 4096);
  const auto& lines = ServeFixtureState::instance().lines("pl-cpr-int8");
  const std::size_t thread = static_cast<std::size_t>(state.thread_index());
  const std::size_t base = (thread % ServeFixtureState::kMaxThreads) *
                           ServeFixtureState::kPerThread;
  ThreadLatencies latencies("BM_ServePredictQuantized", state);
  std::size_t i = 0;
  for (auto _ : state) {
    issue(server, lines[base + (i++ % ServeFixtureState::kPerThread)], latencies.samples());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_ServePredictQuantized)->Threads(1)->Threads(4)->UseRealTime();

/// Two model families interleaved per client: the batcher must split
/// batches per model while both stay resident in the store.
void BM_ServePredictTwoModels(benchmark::State& state) {
  serve::Server& server = ServerRegistry::instance().get("BM_ServePredictTwoModels", 4096);
  const auto& cpr_lines = ServeFixtureState::instance().lines("pl-cpr");
  const auto& knn_lines = ServeFixtureState::instance().lines("pl-knn");
  const std::size_t thread = static_cast<std::size_t>(state.thread_index());
  const std::size_t base = (thread % ServeFixtureState::kMaxThreads) *
                           ServeFixtureState::kPerThread;
  ThreadLatencies latencies("BM_ServePredictTwoModels", state);
  std::size_t i = 0;
  for (auto _ : state) {
    const auto& lines = (i % 2 == 0) ? cpr_lines : knn_lines;
    issue(server, lines[base + (i++ / 2) % ServeFixtureState::kPerThread], latencies.samples());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_ServePredictTwoModels)->Threads(4)->Threads(16)->UseRealTime();

/// Console output as usual, plus one JsonRecord per (non-aggregate) run:
/// the per-request wall seconds under the benchmark's full name.
class JsonCollectingReporter final : public benchmark::ConsoleReporter {
 public:
  void ReportRuns(const std::vector<Run>& reports) override {
    for (const Run& run : reports) {
      if (run.error_occurred || !run.aggregate_name.empty() || run.iterations == 0) {
        continue;
      }
      const std::string name = run.benchmark_name();
      const bool quantized = name.rfind("BM_ServePredictQuantized", 0) == 0;
      records.push_back({"serve_throughput", name,
                         run.real_accumulated_time / static_cast<double>(run.iterations),
                         0, quantized ? "int8" : "fp64"});
    }
    ConsoleReporter::ReportRuns(reports);
  }

  std::vector<bench::JsonRecord> records;
};

}  // namespace
}  // namespace cpr

int main(int argc, char** argv) {
  // CliArgs ignores --benchmark_* flags; benchmark::Initialize ignores ours.
  const cpr::CliArgs args(argc, argv);
  benchmark::Initialize(&argc, argv);
  for (int i = 1; i < argc; ++i) {
    if (std::string_view(argv[i]).rfind("--benchmark", 0) == 0) {
      std::cerr << "error: unrecognized benchmark flag '" << argv[i] << "'\n";
      return 1;
    }
  }
  cpr::JsonCollectingReporter reporter;
  benchmark::RunSpecifiedBenchmarks(&reporter);
  benchmark::Shutdown();
  cpr::ServerRegistry::instance().print_stage_attribution(std::cout);
  const auto latency_records = cpr::LatencyCollector::instance().records();
  reporter.records.insert(reporter.records.end(), latency_records.begin(),
                          latency_records.end());
  cpr::bench::emit_json(args, reporter.records);
  std::filesystem::remove_all(cpr::ServeFixtureState::instance().dir());
  return 0;
}
