// Extension bench: CP vs Tucker vs the uncompressed regular grid.
//
// The paper leaves alternative tensor factorizations to future work
// (Section 4.1); this bench quantifies the trade-off on our benchmarks.
// Tucker's core couples the modes (capturing cross-mode interactions CP
// needs extra rank for) at the cost of a prod_j R_j core — which explodes
// with order, so CP's accuracy-per-byte advantage grows with the number of
// parameters. The dense GridInterpolator anchors the uncompressed extreme.

#include <cmath>
#include <iostream>

#include "baselines/grid_interpolator.hpp"
#include "bench_common.hpp"
#include "core/cpr_model.hpp"
#include "core/tucker_perf_model.hpp"

using namespace cpr;

int main(int argc, char** argv) {
  CliArgs args(argc, argv);
  const bool full = args.has("full");
  const auto seed = static_cast<std::uint64_t>(args.get_int("seed", 1));
  const std::size_t train_size = full ? 16384 : 4096;
  const std::size_t test_size = full ? 1024 : 512;

  std::cout << "== Extension: CP vs Tucker vs uncompressed grid ==\n";

  Table table({"app", "model", "config", "MLogQ", "model bytes", "fit s"});
  for (const std::string& app_name :
       full ? std::vector<std::string>{"MM", "QR", "BC", "FMM", "AMG", "KRIPKE"}
            : std::vector<std::string>{"MM", "BC", "FMM", "AMG"}) {
    const auto app = bench::app_by_name(app_name);
    const auto train = app->generate_dataset(train_size, seed);
    const auto test = app->generate_dataset(test_size, seed + 1);
    const bool high_dim = app->dimensions() >= 6;
    const std::size_t cells = high_dim ? 6 : 12;
    const grid::Discretization disc(app->parameters(), cells);

    const auto record = [&](const std::string& model_name, const std::string& config,
                            common::Regressor& model) {
      Stopwatch watch;
      model.fit(train);
      table.add_row({app_name, model_name, config,
                     Table::fmt(common::evaluate_mlogq(model, test), 4),
                     Table::fmt(model.model_size_bytes()),
                     Table::fmt(watch.seconds(), 2)});
    };

    for (const std::size_t rank : {4u, 8u}) {
      core::CprOptions options;
      options.rank = rank;
      core::CprModel model(disc, options);
      record("CP", "rank=" + std::to_string(rank), model);
    }
    for (const std::size_t mode_rank : {2u, 3u}) {
      // Tucker core grows as mode_rank^order: keep within the solver cap.
      if (std::pow(static_cast<double>(mode_rank),
                   static_cast<double>(app->dimensions())) > 4096.0) {
        continue;
      }
      core::TuckerPerfOptions options;
      options.mode_rank = mode_rank;
      core::TuckerPerfModel model(disc, options);
      record("Tucker", "R_j=" + std::to_string(mode_rank), model);
    }
    {
      baselines::GridInterpolator model(disc);
      record("GRID", "cells=" + std::to_string(cells), model);
    }
  }

  bench::emit(table, args, "ext_tucker_vs_cp.csv");
  return 0;
}
