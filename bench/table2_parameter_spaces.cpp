// Table 2 reproduction: the parameter-space description of all six
// benchmarks (ranges, kinds, sampling rules, constraints), plus a sampled
// sanity summary showing the runtime spread each simulator produces.

#include <cmath>
#include <iostream>

#include "bench_common.hpp"

using namespace cpr;

int main(int argc, char** argv) {
  CliArgs args(argc, argv);
  const auto seed = static_cast<std::uint64_t>(args.get_int("seed", 1));

  std::cout << "== Table 2: benchmark parameter spaces ==\n";
  Table table({"app", "parameter", "kind", "range/choices", "sampling"});
  for (const auto& app : apps::make_all_apps()) {
    const auto& params = app->parameters();
    const auto& rules = app->sample_rules();
    for (std::size_t j = 0; j < params.size(); ++j) {
      const auto& p = params[j];
      std::string kind, range;
      switch (p.kind) {
        case grid::ParameterKind::NumericalLog:
          kind = "numerical(log)";
          range = Table::fmt(p.lo, 0) + " .. " + Table::fmt(p.hi, 0);
          break;
        case grid::ParameterKind::NumericalUniform:
          kind = "numerical(uniform)";
          range = Table::fmt(p.lo, 0) + " .. " + Table::fmt(p.hi, 0);
          break;
        case grid::ParameterKind::Categorical:
          kind = "categorical";
          range = std::to_string(p.categories) + " choices";
          break;
      }
      std::string sampling;
      switch (rules[j]) {
        case apps::SampleRule::LogUniform: sampling = "log-uniform"; break;
        case apps::SampleRule::Uniform: sampling = "uniform"; break;
        case apps::SampleRule::UniformChoice: sampling = "uniform choice"; break;
      }
      table.add_row({app->name(), p.name, kind, range, sampling});
    }
  }
  bench::emit(table, args, "table2_parameter_spaces.csv");

  std::cout << "\nSampled runtime summary (" << (args.has("full") ? 4096 : 512)
            << " configurations per app):\n";
  Table summary({"app", "dims", "runs/config", "min time (s)", "geo-mean (s)",
                 "max time (s)"});
  const std::size_t n = args.has("full") ? 4096 : 512;
  for (const auto& app : apps::make_all_apps()) {
    const auto data = app->generate_dataset(n, seed);
    double lo = 1e300, hi = 0.0, log_sum = 0.0;
    for (const double y : data.y) {
      lo = std::min(lo, y);
      hi = std::max(hi, y);
      log_sum += std::log(y);
    }
    summary.add_row({app->name(), Table::fmt(app->dimensions()),
                     Table::fmt(static_cast<std::int64_t>(app->runs_per_configuration())),
                     Table::fmt(lo, 3), Table::fmt(std::exp(log_sum / n), 3),
                     Table::fmt(hi, 3)});
  }
  bench::emit(summary, args, "table2_runtime_summary.csv");
  return 0;
}
