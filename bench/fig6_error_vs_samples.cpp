// Figure 6 reproduction: prediction error (MLogQ) vs training-set size for
// the grid-based models and the alternative supervised-learning families.
// Each data point is the minimum error over that family's hyper-parameter
// sweep (Section 6.0.4); models taking >= 1000 s to optimize are dropped,
// as in the paper. SVM, RF, GB are evaluated but reported separately by the
// paper because GP/ET dominate them; we print them all.

#include <iostream>
#include <map>

#include "bench_common.hpp"

using namespace cpr;

int main(int argc, char** argv) {
  CliArgs args(argc, argv);
  const bool full = args.has("full");
  const auto seed = static_cast<std::uint64_t>(args.get_int("seed", 1));
  const auto scale = full ? bench::SweepScale::Full : bench::SweepScale::Small;

  const std::vector<std::string> panel_apps =
      full ? std::vector<std::string>{"MM", "QR", "BC", "FMM", "AMG", "KRIPKE"}
           : std::vector<std::string>{"MM", "BC", "AMG"};
  const std::vector<std::size_t> train_sizes =
      full ? std::vector<std::size_t>{512, 2048, 8192, 32768}
           : std::vector<std::size_t>{256, 1024, 4096};
  const std::size_t test_size = full ? 2048 : 512;
  const double per_family_budget = full ? 1000.0 : 60.0;

  std::cout << "== Figure 6: error vs training-set size (all model families) ==\n"
            << "(minimum MLogQ over each family's hyper-parameter sweep)\n";

  Table table({"app", "train", "family", "best config", "MLogQ", "fit s"});
  for (const auto& app_name : panel_apps) {
    const auto app = bench::app_by_name(app_name);
    const auto test = app->generate_dataset(test_size, seed + 1);

    // Group candidates by family once.
    std::map<std::string, std::vector<bench::ModelCandidate>> families;
    for (auto& candidate : bench::cpr_candidates(*app, scale)) {
      families[candidate.family].push_back(std::move(candidate));
    }
    for (auto& candidate : bench::baseline_candidates(*app, scale)) {
      families[candidate.family].push_back(std::move(candidate));
    }

    for (const auto train_size : train_sizes) {
      const auto train = app->generate_dataset(train_size, seed);
      for (const auto& [family, candidates] : families) {
        const auto best = bench::best_over(candidates, train, test, per_family_budget);
        table.add_row({app_name, Table::fmt(train_size), family, best.config,
                       Table::fmt(best.score.mlogq, 4),
                       Table::fmt(best.score.seconds, 2)});
      }
    }
  }

  bench::emit(table, args, "fig6_error_vs_samples.csv");
  return 0;
}
