// Table 1 reproduction: error metrics and their equivalent error expressions
// in eps = m/y - 1, verified numerically. Rows 1-5 are exact identities;
// rows 6-7 (MLogQ, MLogQ2) match their Taylor expansions to the stated
// order, which we demonstrate by shrinking eps and reporting the
// convergence order of the identity residual.

#include <cmath>
#include <iostream>
#include <vector>

#include "bench_common.hpp"
#include "metrics/metrics.hpp"
#include "util/rng.hpp"

using namespace cpr;

namespace {

struct MetricRow {
  std::string name;
  double (*metric)(const std::vector<double>&, const std::vector<double>&);
  double (*expression)(const std::vector<double>&);  ///< in eps
  bool exact;
};

double mape_expr(const std::vector<double>& eps) {
  double total = 0.0;
  for (const double e : eps) total += std::abs(e);
  return total / eps.size();
}
double smape_expr(const std::vector<double>& eps) {
  double total = 0.0;
  for (const double e : eps) total += 2.0 * std::abs(e / (2.0 + e));
  return total / eps.size();
}
double mlogq_expr(const std::vector<double>& eps) {
  double total = 0.0;
  for (const double e : eps) total += std::abs(e / (1.0 + e));
  return total / eps.size();
}
double mlogq2_expr(const std::vector<double>& eps) {
  double total = 0.0;
  for (const double e : eps) {
    const double term = e / (1.0 + e);
    total += term * term;
  }
  return total / eps.size();
}

}  // namespace

int main(int argc, char** argv) {
  CliArgs args(argc, argv);
  const auto seed = static_cast<std::uint64_t>(args.get_int("seed", 1));
  Rng rng(seed);

  std::cout << "== Table 1: error metrics and eps-expressions "
               "(eps = m/y - 1) ==\n";

  // Exact-identity rows evaluated at moderate eps.
  const std::size_t n = 256;
  std::vector<double> truths(n), eps(n), predictions(n);
  for (std::size_t k = 0; k < n; ++k) {
    truths[k] = rng.log_uniform(1e-4, 1e2);
    eps[k] = rng.uniform(-0.5, 1.0);
    predictions[k] = truths[k] * (1.0 + eps[k]);
  }

  Table table({"metric", "value", "eps-expression", "abs diff", "identity"});
  const auto add_exact = [&](const std::string& name, double metric_value,
                             double expression_value) {
    table.add_row({name, Table::fmt(metric_value, 6), Table::fmt(expression_value, 6),
                   Table::fmt(std::abs(metric_value - expression_value), 3), "exact"});
  };
  add_exact("MAPE", metrics::mape(predictions, truths), mape_expr(eps));
  {
    double mae_expr = 0.0, mse_expr = 0.0;
    for (std::size_t k = 0; k < n; ++k) {
      mae_expr += std::abs(truths[k] * eps[k]);
      mse_expr += truths[k] * eps[k] * truths[k] * eps[k];
    }
    add_exact("MAE", metrics::mae(predictions, truths), mae_expr / n);
    add_exact("MSE", metrics::mse(predictions, truths), mse_expr / n);
  }
  add_exact("SMAPE", metrics::smape(predictions, truths), smape_expr(eps));
  {
    double lg_expr = 0.0;
    for (const double e : eps) lg_expr += std::log(std::abs(e));
    add_exact("LGMAPE", metrics::lgmape(predictions, truths), lg_expr / n);
  }

  // Taylor rows: residual should shrink like O(eps^2) / O(eps^4).
  for (const double scale : {1.0, 0.1, 0.01}) {
    std::vector<double> scaled_predictions(n);
    std::vector<double> scaled_eps(n);
    for (std::size_t k = 0; k < n; ++k) {
      scaled_eps[k] = scale * eps[k];
      scaled_predictions[k] = truths[k] * (1.0 + scaled_eps[k]);
    }
    const double q = metrics::mlogq(scaled_predictions, truths);
    const double q_expr = mlogq_expr(scaled_eps);
    table.add_row({"MLogQ(eps*" + Table::fmt(scale, 2) + ")", Table::fmt(q, 6),
                   Table::fmt(q_expr, 6), Table::fmt(std::abs(q - q_expr), 3),
                   "Taylor O(eps^2)"});
    const double q2 = metrics::mlogq2(scaled_predictions, truths);
    const double q2_expr = mlogq2_expr(scaled_eps);
    table.add_row({"MLogQ2(eps*" + Table::fmt(scale, 2) + ")", Table::fmt(q2, 6),
                   Table::fmt(q2_expr, 6), Table::fmt(std::abs(q2 - q2_expr), 3),
                   "Taylor O(eps^4)"});
  }

  // Scale-independence demonstration (the property that picks MLogQ).
  std::cout << "\nScale independence (y=1, factor a: over- vs under-prediction):\n";
  Table scale_table({"metric", "m = a*y (a=4)", "m = y/a (a=4)", "scale-independent"});
  const std::vector<double> y{1.0};
  const auto row = [&](const std::string& name,
                       double (*metric)(const std::vector<double>&,
                                        const std::vector<double>&)) {
    const double over = metric({4.0}, y);
    const double under = metric({0.25}, y);
    scale_table.add_row({name, Table::fmt(over, 5), Table::fmt(under, 5),
                         std::abs(over - under) < 1e-12 ? "yes" : "no"});
  };
  row("MAPE", metrics::mape);
  row("SMAPE", metrics::smape);
  row("MLogQ", metrics::mlogq);
  row("MLogQ2", metrics::mlogq2);

  bench::emit(table, args, "table1_metrics.csv");
  bench::emit(scale_table, args, "table1_scale_independence.csv");
  return 0;
}
