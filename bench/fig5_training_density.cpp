// Figure 5 reproduction: CPR prediction accuracy vs training-set size for
// several tensor sizes. The underlying tensors become increasingly dense as
// the training set grows; the paper's observation is that (a) finer grids
// win once the tensor is sufficiently observed, and (b) the density needed
// for an accurate model *decreases* with tensor order (AMG's order-8 tensor
// is most accurate at 0.07% density while MM's order-3 wants ~50%).
// The minimum error across CP ranks is reported per point, as in the paper.

#include <iostream>

#include "bench_common.hpp"
#include "core/cpr_model.hpp"

using namespace cpr;

int main(int argc, char** argv) {
  CliArgs args(argc, argv);
  const bool full = args.has("full");
  const auto seed = static_cast<std::uint64_t>(args.get_int("seed", 1));

  struct Panel {
    std::string app;
    std::vector<std::size_t> cells;  ///< tensor sizes to compare
  };
  const std::vector<Panel> panels = full
      ? std::vector<Panel>{{"MM", {8, 16, 32, 64}},
                           {"BC", {8, 16, 32}},
                           {"FMM", {3, 5, 8}},
                           {"AMG", {3, 5, 8}},
                           {"KRIPKE", {3, 5, 8}}}
      : std::vector<Panel>{{"MM", {8, 16, 32}}, {"AMG", {3, 5, 8}}};
  const std::vector<std::size_t> train_sizes =
      full ? std::vector<std::size_t>{1024, 4096, 16384, 65536}
           : std::vector<std::size_t>{512, 2048, 8192};
  const std::vector<std::size_t> ranks =
      full ? std::vector<std::size_t>{1, 2, 4, 8, 16} : std::vector<std::size_t>{2, 4, 8};
  const std::size_t test_size = full ? 2048 : 512;

  std::cout << "== Figure 5: CPR accuracy vs training size and tensor density ==\n"
            << "(minimum MLogQ over CP ranks per point)\n";

  Table table({"app", "cells/dim", "tensor cells", "train", "density", "best rank",
               "MLogQ"});
  for (const auto& panel : panels) {
    const auto app = bench::app_by_name(panel.app);
    const auto test = app->generate_dataset(test_size, seed + 1);
    for (const auto cells : panel.cells) {
      const grid::Discretization disc(app->parameters(), cells);
      for (const auto train_size : train_sizes) {
        const auto train = app->generate_dataset(train_size, seed);
        double best_error = 1e300, density = 0.0;
        std::size_t best_rank = 0;
        for (const auto rank : ranks) {
          core::CprOptions options;
          options.rank = rank;
          core::CprModel model(disc, options);
          model.fit(train);
          density = model.observed_density();
          const double error = common::evaluate_mlogq(model, test);
          if (error < best_error) {
            best_error = error;
            best_rank = rank;
          }
        }
        table.add_row({panel.app, Table::fmt(cells), Table::fmt(disc.cell_count()),
                       Table::fmt(train_size), Table::fmt(density, 4),
                       Table::fmt(best_rank), Table::fmt(best_error, 4)});
      }
    }
  }

  bench::emit(table, args, "fig5_training_density.csv");
  return 0;
}
