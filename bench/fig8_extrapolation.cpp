// Figure 8 reproduction: extrapolation error beyond the training range for
// the MM and BC kernels.
//
// Four experiments, as in the paper (4096 training samples each):
//   MM/m      train m in [32, N),   N in {256..2048}; test m in [2048, 4096]
//   MM/mnk    train m,n,k in [32,N); test m,n,k in [2048, 4096]
//   BC/nodes  train nodes in [1, N], N in {8..64};    test nodes = 128
//   BC/msg    train msg in [2^16, N), N in {2^19..2^25}; test msg in [2^25, 2^26]
//
// CPR-E (Section 5.3: AMN positive completion + rank-1 SVD + MARS spline)
// against the alternative families, each tuned lightly and log-transformed
// per Section 6.0.4. Expected shape: CPR-E clearly ahead on the numerical-
// parameter extrapolations, closer to KNN on the integer node count.

#include <cmath>
#include <limits>
#include <iostream>

#include "baselines/forest.hpp"
#include "baselines/gaussian_process.hpp"
#include "baselines/knn.hpp"
#include "baselines/mars.hpp"
#include "baselines/mlp.hpp"
#include "bench_common.hpp"
#include "core/cpr_extrapolation.hpp"

using namespace cpr;

namespace {

using Bounds = std::vector<std::optional<std::pair<double, double>>>;

struct Experiment {
  std::string name;
  std::string app;
  std::vector<double> cutoffs;                 ///< the N axis
  std::function<Bounds(const apps::BenchmarkApp&, double)> train_bounds;
  std::function<Bounds(const apps::BenchmarkApp&)> test_bounds;
  std::function<std::vector<std::size_t>(std::size_t)> extrap_dims;  ///< dims cut at N
};

Bounds full_bounds(const apps::BenchmarkApp& app) {
  return Bounds(app.dimensions());
}

}  // namespace

int main(int argc, char** argv) {
  CliArgs args(argc, argv);
  const bool full = args.has("full");
  const auto seed = static_cast<std::uint64_t>(args.get_int("seed", 1));
  const std::size_t train_size = full ? 4096 : 2048;
  const std::size_t test_size = full ? 1024 : 384;

  std::vector<Experiment> experiments;
  experiments.push_back(
      {"MM extrapolate m", "MM",
       full ? std::vector<double>{256, 512, 1024, 2048} : std::vector<double>{512, 2048},
       [](const apps::BenchmarkApp& app, double n) {
         Bounds b = full_bounds(app);
         b[0] = {32.0, n - 1};
         return b;
       },
       [](const apps::BenchmarkApp& app) {
         Bounds b = full_bounds(app);
         b[0] = {2048.0, 4096.0};
         return b;
       },
       [](std::size_t) { return std::vector<std::size_t>{0}; }});
  experiments.push_back(
      {"MM extrapolate m,n,k", "MM",
       full ? std::vector<double>{256, 512, 1024, 2048} : std::vector<double>{512, 2048},
       [](const apps::BenchmarkApp& app, double n) {
         Bounds b = full_bounds(app);
         for (std::size_t j = 0; j < 3; ++j) b[j] = {32.0, n - 1};
         return b;
       },
       [](const apps::BenchmarkApp& app) {
         Bounds b = full_bounds(app);
         for (std::size_t j = 0; j < 3; ++j) b[j] = {2048.0, 4096.0};
         return b;
       },
       [](std::size_t) { return std::vector<std::size_t>{0, 1, 2}; }});
  experiments.push_back(
      {"BC extrapolate nodes", "BC",
       full ? std::vector<double>{8, 16, 32, 64} : std::vector<double>{16, 64},
       [](const apps::BenchmarkApp& app, double n) {
         Bounds b = full_bounds(app);
         b[0] = {1.0, n};
         return b;
       },
       [](const apps::BenchmarkApp& app) {
         Bounds b = full_bounds(app);
         b[0] = {128.0, 128.0};
         return b;
       },
       [](std::size_t) { return std::vector<std::size_t>{0}; }});
  experiments.push_back(
      {"BC extrapolate msg", "BC",
       full ? std::vector<double>{1 << 19, 1 << 21, 1 << 23, 1 << 25}
            : std::vector<double>{1 << 21, 1 << 25},
       [](const apps::BenchmarkApp& app, double n) {
         Bounds b = full_bounds(app);
         b[2] = {65536.0, n - 1};
         return b;
       },
       [](const apps::BenchmarkApp& app) {
         Bounds b = full_bounds(app);
         b[2] = {static_cast<double>(1 << 25), static_cast<double>(1 << 26)};
         return b;
       },
       [](std::size_t) { return std::vector<std::size_t>{2}; }});

  std::cout << "== Figure 8: extrapolation error beyond the training range ==\n";

  Table table({"experiment", "train cutoff N", "model", "MLogQ"});
  for (const auto& experiment : experiments) {
    const auto app = bench::app_by_name(experiment.app);
    const Bounds test_bounds = experiment.test_bounds(*app);
    const auto test = app->generate_dataset(test_size, seed + 1, &test_bounds);

    for (const double cutoff : experiment.cutoffs) {
      const Bounds train_bounds = experiment.train_bounds(*app, cutoff);
      const auto train = app->generate_dataset(train_size, seed, &train_bounds);

      // CPR-E: discretize the *training* ranges (finer along the
      // extrapolated dimension, per the paper's user-directed granularity).
      {
        std::vector<grid::ParameterSpec> specs = app->parameters();
        for (std::size_t j = 0; j < specs.size(); ++j) {
          if (train_bounds[j].has_value()) {
            specs[j].lo = train_bounds[j]->first;
            specs[j].hi = train_bounds[j]->second;
          }
        }
        std::vector<std::size_t> cells(specs.size(), 8);
        for (const auto j : experiment.extrap_dims(0)) cells[j] = 12;
        // Narrow integer ranges cannot support many cells.
        for (std::size_t j = 0; j < specs.size(); ++j) {
          if (specs[j].is_numerical()) {
            const double span = specs[j].hi / std::max(specs[j].lo, 1.0);
            if (span < 16.0) cells[j] = std::min<std::size_t>(cells[j], 4);
          }
        }
        // The paper reports the most accurate model configuration; sweep
        // the CP rank (rank 1 keeps the rank-1 extrapolation substitution
        // exact; higher ranks help when non-extrapolated modes are rugged).
        double best_error = std::numeric_limits<double>::infinity();
        for (const std::size_t rank : {1u, 2u, 4u}) {
          core::CprExtrapolationOptions options;
          options.rank = rank;
          core::CprExtrapolationModel model(grid::Discretization(specs, cells), options);
          model.fit(train);
          best_error = std::min(best_error, common::evaluate_mlogq(model, test));
        }
        table.add_row({experiment.name, Table::fmt(cutoff, 0), "CPR-E",
                       Table::fmt(best_error, 4)});
      }

      // Alternatives (log-transformed; hyper-parameters fixed to strong
      // defaults — the paper reports each family's best model).
      const auto evaluate_baseline = [&](const std::string& name,
                                         common::RegressorPtr inner) {
        auto model = bench::wrapped(*app, std::move(inner));
        model->fit(train);
        table.add_row({experiment.name, Table::fmt(cutoff, 0), name,
                       Table::fmt(common::evaluate_mlogq(*model, test), 4)});
      };
      evaluate_baseline("KNN", std::make_unique<baselines::KnnRegressor>(
                                   baselines::KnnOptions{3, true}));
      {
        baselines::ForestOptions forest_options;
        forest_options.n_trees = 32;
        forest_options.max_depth = 12;
        evaluate_baseline("ET",
                          std::make_unique<baselines::ExtraTreesRegressor>(forest_options));
      }
      {
        baselines::MarsOptions mars_options;
        mars_options.max_degree = 2;
        evaluate_baseline("MARS", std::make_unique<baselines::Mars>(mars_options));
      }
      {
        baselines::GpOptions gp_options;
        gp_options.kernel = baselines::GpKernel::Rbf;
        gp_options.max_samples = 1024;
        evaluate_baseline("GP", std::make_unique<baselines::GaussianProcess>(gp_options));
      }
      {
        baselines::MlpOptions mlp_options;
        mlp_options.hidden_layers = {64, 64};
        mlp_options.epochs = full ? 200 : 80;
        evaluate_baseline("NN", std::make_unique<baselines::Mlp>(mlp_options));
      }
    }
  }

  bench::emit(table, args, "fig8_extrapolation.csv");
  return 0;
}
