// Tensor-completion optimizer comparison (Section 4.2): ALS vs CCD vs SGD
// on the same partially-observed tensors.
//
// Reports objective trajectories (first sweeps) and the final test error
// when each optimizer backs the CPR model. Expected shape, per the paper's
// discussion: ALS and CCD decrease monotonically with ALS converging faster
// per sweep (CCD saves a factor R of arithmetic per sweep but decouples the
// row updates); SGD needs more epochs and careful step sizes.

#include <cmath>
#include <iostream>

#include "bench_common.hpp"
#include "completion/als.hpp"
#include "completion/ccd.hpp"
#include "completion/sgd.hpp"
#include "core/cpr_model.hpp"
#include "tensor/mttkrp.hpp"

using namespace cpr;

int main(int argc, char** argv) {
  CliArgs args(argc, argv);
  const bool full = args.has("full");
  const auto seed = static_cast<std::uint64_t>(args.get_int("seed", 1));

  // Part 1: objective trajectories on one completion problem.
  std::cout << "== Optimizer comparison: objective per sweep (MM tensor, rank 8) ==\n";
  {
    const auto mm = bench::app_by_name("MM");
    const auto data = mm->generate_dataset(full ? 16384 : 4096, seed);
    grid::Discretization disc(mm->parameters(), 16);
    tensor::SparseTensor::Accumulator acc(disc.dims());
    for (std::size_t i = 0; i < data.size(); ++i) {
      acc.add(disc.cell_of(data.config(i)), std::log(data.y[i]));
    }
    tensor::SparseTensor observed = acc.build();
    // Center (as CprModel does).
    double mean = 0.0;
    for (std::size_t e = 0; e < observed.nnz(); ++e) mean += observed.value(e);
    mean /= static_cast<double>(observed.nnz());
    observed.transform_values([mean](double v) { return v - mean; });

    const int sweeps = full ? 20 : 10;
    completion::CompletionOptions options;
    options.max_sweeps = sweeps;
    options.tol = 0.0;
    options.regularization = 1e-5;

    tensor::CpModel init(observed.dims(), 8);
    Rng rng(seed);
    init.init_ones(rng, 0.3);

    tensor::CpModel m_als = init, m_ccd = init, m_sgd = init;
    const auto r_als = completion::als_complete(observed, m_als, options);
    const auto r_ccd = completion::ccd_complete(observed, m_ccd, options);
    completion::SgdOptions sgd_options;
    static_cast<completion::CompletionOptions&>(sgd_options) = options;
    const auto r_sgd = completion::sgd_complete(observed, m_sgd, sgd_options);

    Table table({"sweep", "ALS objective", "CCD objective", "SGD objective"});
    for (int s = 0; s < sweeps; ++s) {
      const auto value = [&](const completion::CompletionReport& r) {
        return s < static_cast<int>(r.objective_history.size())
                   ? Table::fmt(r.objective_history[static_cast<std::size_t>(s)], 5)
                   : std::string("-");
      };
      table.add_row({Table::fmt(static_cast<std::int64_t>(s + 1)), value(r_als),
                     value(r_ccd), value(r_sgd)});
    }
    bench::emit(table, args, "optimizer_trajectories.csv");
  }

  // Part 2: end-to-end CPR accuracy per optimizer.
  std::cout << "\n== End-to-end CPR test error per optimizer ==\n";
  Table table({"app", "optimizer", "MLogQ", "fit s"});
  for (const std::string& app_name :
       full ? std::vector<std::string>{"MM", "BC", "FMM", "AMG"}
            : std::vector<std::string>{"MM", "AMG"}) {
    const auto app = bench::app_by_name(app_name);
    const auto train = app->generate_dataset(full ? 16384 : 4096, seed);
    const auto test = app->generate_dataset(512, seed + 1);
    const std::size_t cells = app->dimensions() >= 6 ? 8 : 16;
    for (const auto& [optimizer, name] :
         {std::pair{core::CprOptimizer::Als, "ALS"},
          std::pair{core::CprOptimizer::Ccd, "CCD"},
          std::pair{core::CprOptimizer::Sgd, "SGD"}}) {
      core::CprOptions options;
      options.rank = 8;
      options.optimizer = optimizer;
      core::CprModel model(grid::Discretization(app->parameters(), cells), options);
      Stopwatch watch;
      model.fit(train);
      table.add_row({app_name, name, Table::fmt(common::evaluate_mlogq(model, test), 4),
                     Table::fmt(watch.seconds(), 2)});
    }
  }
  bench::emit(table, args, "optimizer_endtoend.csv");
  return 0;
}
