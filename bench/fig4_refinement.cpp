// Figure 4 reproduction: accuracy under model refinement — CP rank for CPR
// (at fixed cell counts C_k) vs sparse-grid refinement rounds for SGR (at
// fixed levels L_k). The paper's takeaway: raising CP rank is the most
// effective refinement mechanism among piecewise/grid-based models; SGR's
// surplus-based grid refinement cannot catch up even after many rounds.

#include <iostream>

#include "baselines/sparse_grid.hpp"
#include "bench_common.hpp"
#include "core/cpr_model.hpp"

using namespace cpr;

int main(int argc, char** argv) {
  CliArgs args(argc, argv);
  const bool full = args.has("full");
  const auto seed = static_cast<std::uint64_t>(args.get_int("seed", 1));

  struct Panel {
    std::string app;
    std::size_t train_size;
    std::vector<std::size_t> cpr_cells;  ///< the C_k lines
    std::vector<std::size_t> sgr_levels; ///< the L_k lines
  };
  const std::vector<Panel> panels = full
      ? std::vector<Panel>{{"MM", 65536, {16, 64}, {3, 5}},
                           {"QR", 32768, {16, 64}, {3, 5}},
                           {"FMM", 32768, {4, 8}, {2, 3}},
                           {"AMG", 16384, {4, 6}, {2, 3}},
                           {"KRIPKE", 16384, {4, 6}, {2, 3}}}
      : std::vector<Panel>{{"MM", 8192, {8, 32}, {3, 4}},
                           {"BC", 8192, {8, 16}, {3, 4}},
                           {"FMM", 4096, {4, 8}, {2, 3}}};
  const std::size_t test_size = full ? 2048 : 512;

  std::cout << "== Figure 4: refinement — CP rank (CPR) vs grid refinement (SGR) ==\n";

  Table table({"app", "model", "line", "refinement", "MLogQ", "model bytes", "fit s"});
  for (const auto& panel : panels) {
    const auto app = bench::app_by_name(panel.app);
    const auto train = app->generate_dataset(panel.train_size, seed);
    const auto test = app->generate_dataset(test_size, seed + 1);

    for (const auto cells : panel.cpr_cells) {
      for (const std::size_t rank : full ? std::vector<std::size_t>{1, 2, 4, 8, 16, 32, 64}
                                         : std::vector<std::size_t>{1, 2, 4, 8, 16}) {
        core::CprOptions options;
        options.rank = rank;
        core::CprModel model(grid::Discretization(app->parameters(), cells), options);
        Stopwatch watch;
        model.fit(train);
        table.add_row({panel.app, "CPR", "C" + std::to_string(cells),
                       "rank=" + std::to_string(rank),
                       Table::fmt(common::evaluate_mlogq(model, test), 4),
                       Table::fmt(model.model_size_bytes()),
                       Table::fmt(watch.seconds(), 2)});
      }
    }

    for (const auto level : panel.sgr_levels) {
      for (const int refinements : full ? std::vector<int>{0, 1, 2, 4, 8, 16}
                                        : std::vector<int>{0, 2, 4, 8}) {
        baselines::SgrOptions options;
        options.level = level;
        options.refinements = refinements;
        options.refine_points = full ? 16 : 8;
        auto inner = std::make_unique<baselines::SparseGridRegressor>(options);
        auto* sgr = inner.get();
        auto model = bench::wrapped(*app, std::move(inner));
        Stopwatch watch;
        model->fit(train);
        table.add_row({panel.app, "SGR", "L" + std::to_string(level),
                       "refs=" + std::to_string(refinements) +
                           " (pts=" + std::to_string(sgr->grid_point_count()) + ")",
                       Table::fmt(common::evaluate_mlogq(*model, test), 4),
                       Table::fmt(model->model_size_bytes()),
                       Table::fmt(watch.seconds(), 2)});
      }
    }
  }

  bench::emit(table, args, "fig4_refinement.csv");
  return 0;
}
