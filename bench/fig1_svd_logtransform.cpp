// Figure 1 reproduction: SVDs of three discretized 2-D functions evaluated
// for 1 <= x, y <= 100, with each element of f1 and f2 multiplied by
// (1 + N(0, 0.01)). The paper's observation: on the log-transformed
// matrices, MLogQ prediction error decreases monotonically with SVD
// truncation rank, whereas on the raw matrices it can increase. Non-positive
// reconstructed entries are floored at 1e-16 before MLogQ, exactly as the
// paper does.
//
//   f1(x, y) = x / y                       (smooth, rank-1 in log space)
//   f2(x, y) = split along x + y <= 100:   x*y on one side, 10*x/y + y on the
//                                           other (two regimes)
//   f3(x, y) = 1 + |sin(x/5)| + y/50       (oscillatory, no noise)

#include <cmath>
#include <iostream>

#include "bench_common.hpp"
#include "linalg/svd.hpp"
#include "metrics/metrics.hpp"
#include "util/rng.hpp"

using namespace cpr;

namespace {

linalg::Matrix build_function(int which, Rng& rng) {
  const std::size_t n = 100;
  linalg::Matrix m(n, n);
  for (std::size_t i = 0; i < n; ++i) {
    const double x = static_cast<double>(i + 1);
    for (std::size_t j = 0; j < n; ++j) {
      const double y = static_cast<double>(j + 1);
      double value = 0.0;
      switch (which) {
        case 1: value = x / y; break;
        case 2:
          value = (x + y <= 100.0) ? x * y : 10.0 * x / y + y;
          break;
        case 3: value = 1.0 + std::abs(std::sin(x / 5.0)) + y / 50.0; break;
      }
      if (which != 3) value *= 1.0 + rng.normal(0.0, 0.01);
      m(i, j) = value;
    }
  }
  return m;
}

/// MLogQ of the rank-r truncation against the (positive) original, with the
/// paper's 1e-16 floor on non-positive reconstructed entries.
double truncation_mlogq(const linalg::Matrix& original, const linalg::SvdResult& svd,
                        std::size_t rank, bool exp_transform) {
  const linalg::Matrix approx = linalg::svd_truncate(svd, rank);
  std::vector<double> predictions, truths;
  predictions.reserve(original.size());
  truths.reserve(original.size());
  for (std::size_t i = 0; i < original.rows(); ++i) {
    for (std::size_t j = 0; j < original.cols(); ++j) {
      const double raw = exp_transform ? std::exp(approx(i, j)) : approx(i, j);
      predictions.push_back(raw);
      truths.push_back(original(i, j));
    }
  }
  return metrics::mlogq(predictions, truths);
}

}  // namespace

int main(int argc, char** argv) {
  CliArgs args(argc, argv);
  Rng rng(static_cast<std::uint64_t>(args.get_int("seed", 1)));

  std::cout << "== Figure 1: SVD truncation error, raw vs log-transformed ==\n"
            << "(MLogQ of rank-r reconstruction; log-transformed should decrease "
               "monotonically)\n";

  Table table({"function", "rank", "MLogQ raw", "MLogQ log-transformed"});
  const std::vector<std::size_t> ranks = {1, 2, 3, 4, 6, 8, 12, 16, 24, 32};
  for (int which = 1; which <= 3; ++which) {
    const linalg::Matrix original = build_function(which, rng);
    linalg::Matrix logged = original;
    for (std::size_t i = 0; i < logged.rows(); ++i) {
      for (std::size_t j = 0; j < logged.cols(); ++j) logged(i, j) = std::log(logged(i, j));
    }
    const auto svd_raw = linalg::svd(original);
    const auto svd_log = linalg::svd(logged);
    for (const auto rank : ranks) {
      table.add_row({"f" + std::to_string(which), Table::fmt(rank),
                     Table::fmt(truncation_mlogq(original, svd_raw, rank, false), 5),
                     Table::fmt(truncation_mlogq(original, svd_log, rank, true), 5)});
    }
  }
  bench::emit(table, args, "fig1_svd_logtransform.csv");

  // Monotonicity check summarized (the figure's takeaway).
  std::cout << "\nMonotone-decrease violations across the rank sweep:\n";
  Table summary({"function", "raw violations", "log violations"});
  for (int which = 1; which <= 3; ++which) {
    Rng rng2(static_cast<std::uint64_t>(args.get_int("seed", 1)));
    // Rebuild with same seed sequence per function (functions consume rng
    // in order; regenerate cleanly).
    (void)rng2;
    int raw_violations = 0, log_violations = 0;
    Rng fresh(42 + which);
    const linalg::Matrix original = build_function(which, fresh);
    linalg::Matrix logged = original;
    for (std::size_t i = 0; i < logged.rows(); ++i) {
      for (std::size_t j = 0; j < logged.cols(); ++j) logged(i, j) = std::log(logged(i, j));
    }
    const auto svd_raw = linalg::svd(original);
    const auto svd_log = linalg::svd(logged);
    double prev_raw = 1e300, prev_log = 1e300;
    for (const auto rank : ranks) {
      const double raw = truncation_mlogq(original, svd_raw, rank, false);
      const double log_value = truncation_mlogq(original, svd_log, rank, true);
      // Count only violations above floating-point noise.
      raw_violations += raw > prev_raw * (1.0 + 1e-9) && raw - prev_raw > 1e-9;
      log_violations += log_value > prev_log * (1.0 + 1e-9) && log_value - prev_log > 1e-9;
      prev_raw = raw;
      prev_log = log_value;
    }
    summary.add_row({"f" + std::to_string(which), Table::fmt(static_cast<std::int64_t>(raw_violations)),
                     Table::fmt(static_cast<std::int64_t>(log_violations))});
  }
  bench::emit(summary, args, "fig1_monotonicity.csv");
  return 0;
}
