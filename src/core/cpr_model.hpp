#pragma once
// CPR — the paper's performance model for interpolation (Section 5.2).
//
// Training: observations are binned into the grid cells of a Discretization;
// each observed cell's mean execution time is log-transformed and the
// resulting partially-observed tensor is completed with a rank-R CP
// decomposition via ALS (least-squares loss on log values, i.e.
// phi(t, t̂) = (log t - t̂)^2 in Eq. 3).
//
// Inference: Eq. 5 multilinear interpolation of exp(t̂_i) over the 2^d
// neighboring grid mid-points in h-space (h = log for log-spaced modes),
// with linear extrapolation inside the half-cell domain margins. The
// exp(.) makes predictions positive without explicit constraints.

#include "common/regressor.hpp"
#include "completion/als.hpp"
#include "grid/discretization.hpp"
#include "tensor/cp_model.hpp"

namespace cpr::core {

/// Factor-matrix initialization scheme (ablation: ones-based init is what
/// makes high-order log-value completion converge; see DESIGN.md).
enum class CprInit { Ones, Gaussian };

/// Inference-time combination of cell estimates (ablation): LogSpace
/// interpolates t̂ and exponentiates once (positivity-safe); ExpSpace is the
/// literal Section-5.2 formula sum_a exp(t̂_{i+a}) w_a, whose signed margin
/// weights can produce non-positive outputs (floored at 1e-16, as the paper
/// floors them).
enum class CprInterpolation { LogSpace, ExpSpace };

/// Completion optimizer used to fit the CP factors (Section 4.2.1).
enum class CprOptimizer { Als, Ccd, Sgd };

/// How intra-cell observations aggregate into the cell's tensor entry.
/// The paper uses the arithmetic mean and "leaves evaluation of alternative
/// quadrature schemes to future work" (Section 5.1):
///   Mean       arithmetic mean of the times (paper's choice) — carries a
///              Jensen bias once log-transformed;
///   GeomMean   geometric mean — the MLogQ-optimal centroid of the cell;
///   Median     robust to heavy-tailed stragglers.
enum class CellQuadrature { Mean, GeomMean, Median };

struct CprOptions {
  std::size_t rank = 8;          ///< CP rank R (paper sweeps 1..64)
  double regularization = 1e-4;  ///< lambda (paper sweeps 1e-6..1e-3)
  int max_sweeps = 100;          ///< ALS sweeps (paper: 100)
  double tol = 1e-6;
  int restarts = 2;              ///< optimizer runs from distinct inits; best kept
  std::uint64_t seed = 42;

  // Ablation switches (defaults are the shipped configuration).
  CprInit init = CprInit::Ones;
  CprInterpolation interpolation = CprInterpolation::LogSpace;
  CprOptimizer optimizer = CprOptimizer::Als;
  CellQuadrature quadrature = CellQuadrature::Mean;
  bool center_log_values = true;  ///< subtract the mean log before completion
  bool rebalance = true;          ///< per-sweep column-norm rebalancing
};

class CprModel final : public common::Regressor {
 public:
  CprModel(grid::Discretization discretization, CprOptions options = {});

  std::string name() const override { return "CPR"; }
  std::string type_tag() const override { return "cpr"; }
  std::size_t input_dims() const override { return discretization_.order(); }
  void fit(const common::Dataset& train) override;
  double predict(const grid::Config& x) const override;
  std::size_t model_size_bytes() const override;

  /// Batched Eq.-5 inference over every row of `configs` (n x order).
  /// Parallelized over configurations with per-thread scratch (allocation-
  /// free after the first query); row i equals predict(row i) bitwise,
  /// independent of the thread count. A virtual override so polymorphic
  /// callers (tools, evaluation) reach the batched path through Regressor*.
  std::vector<double> predict_batch(const linalg::Matrix& configs) const override;

  /// exp(t̂_i): the modeled (positive) execution time of one grid cell.
  double eval_cell(const tensor::Index& idx) const;

  const grid::Discretization& discretization() const { return discretization_; }
  const tensor::CpModel& cp() const { return cp_; }
  const completion::CompletionReport& report() const { return report_; }

  /// Fraction of grid cells observed by the last fit().
  double observed_density() const { return density_; }

  /// Legacy payload (fitted state + rank/lambda) — also the byte count
  /// reported as model_size_bytes() and the format of pre-registry files.
  void serialize(SerialSink& sink) const;
  static CprModel deserialize(BufferSource& source);

  /// Polymorphic archive payload: serialize() plus the remaining options,
  /// so a reloaded model refits exactly as the trainer configured it.
  void save(SerialSink& sink) const override;
  static CprModel load_archive(BufferSource& source);

 private:
  /// Eq.-5 inference with domain clamping done in place on `x` (which serves
  /// as scratch); shared by predict() and the batched loop so the batch path
  /// can reuse a per-thread buffer instead of allocating per query.
  double predict_in_place(grid::Config& x) const;

  /// The CPR_KERNEL=blocked arm of predict_batch: configurations are walked
  /// in static tiles with per-thread interpolation scratch, and cell lookups
  /// run through a vectorized CP evaluation that preserves the scalar
  /// multiply/add order — every output is bitwise equal to predict().
  std::vector<double> predict_batch_blocked(const linalg::Matrix& configs) const;

  /// predict_in_place with caller-owned scratch (`interp` for Eq. 5, `z` /
  /// `zf` of size rank for the fp64 / fp32 CP evaluation); semantics mirror
  /// predict_in_place exactly.
  double predict_in_place_blocked(grid::Config& x, grid::InterpolationScratch& interp,
                                  std::vector<double>& z, std::vector<float>& zf) const;

  grid::Discretization discretization_;
  CprOptions options_;
  tensor::CpModel cp_;
  completion::CompletionReport report_;
  double log_offset_ = 0.0;  ///< mean of observed log cell means
  double log_min_ = 0.0;     ///< observed log range (prediction safety clamp)
  double log_max_ = 0.0;
  double density_ = 0.0;
  bool fitted_ = false;
};

}  // namespace cpr::core
