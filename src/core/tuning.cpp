#include "core/tuning.hpp"

#include <limits>

#include "common/evaluation.hpp"
#include "util/rng.hpp"

namespace cpr::core {

CprTuningGrid CprTuningGrid::for_dimensions(std::size_t d) {
  CprTuningGrid tuning_grid;
  if (d >= 6) {
    tuning_grid.cells = {4, 6, 8, 10};
    tuning_grid.ranks = {4, 8, 16};
  } else if (d >= 4) {
    tuning_grid.cells = {4, 8, 12};
    tuning_grid.ranks = {2, 4, 8, 16};
  }
  return tuning_grid;
}

std::pair<CprModel, CprTuningResult> CprTuner::tune(const common::Dataset& train,
                                                    const common::Dataset* test,
                                                    const CprTuningGrid& tuning_grid) const {
  CPR_CHECK_MSG(train.size() >= 8, "too few samples to tune");
  CPR_CHECK_MSG(mode != TuneMode::TestSetMinimum || test != nullptr,
                "TestSetMinimum mode requires a test set");

  // Build the selection split.
  common::Dataset fit_set = train;
  common::Dataset selection_set;
  if (mode == TuneMode::ValidationSplit) {
    CPR_CHECK_MSG(validation_fraction > 0.0 && validation_fraction < 1.0,
                  "validation fraction must be in (0, 1)");
    Rng rng(seed);
    const auto n_validation = std::max<std::size_t>(
        1, static_cast<std::size_t>(validation_fraction * static_cast<double>(train.size())));
    auto permutation = rng.sample_without_replacement(train.size(), train.size());
    std::vector<std::size_t> validation_rows(permutation.begin(),
                                             permutation.begin() + static_cast<std::ptrdiff_t>(n_validation));
    std::vector<std::size_t> fit_rows(permutation.begin() + static_cast<std::ptrdiff_t>(n_validation),
                                      permutation.end());
    selection_set = train.subset(validation_rows);
    fit_set = train.subset(fit_rows);
  } else {
    selection_set = *test;
  }

  CprTuningResult result;
  result.best_error = std::numeric_limits<double>::infinity();

  for (const auto cells : tuning_grid.cells) {
    for (const auto rank : tuning_grid.ranks) {
      for (const double regularization : tuning_grid.regularizations) {
        CprOptions options;
        options.rank = rank;
        options.regularization = regularization;
        options.seed = seed;
        CprModel candidate(grid::Discretization(specs, cells), options);
        candidate.fit(fit_set);
        const double error = common::evaluate_mlogq(candidate, selection_set);
        const CprTuningResult::Candidate record{cells, rank, regularization, error,
                                                candidate.model_size_bytes()};
        result.sweep.push_back(record);
        if (progress) progress(record);
        if (error < result.best_error) {
          result.best_error = error;
          result.best_options = options;
          result.best_cells = cells;
        }
      }
    }
  }

  // Refit the winner on the full training data.
  CprModel winner(grid::Discretization(specs, result.best_cells), result.best_options);
  winner.fit(train);
  return {std::move(winner), std::move(result)};
}

}  // namespace cpr::core
