#include "core/online_cpr.hpp"

#include <algorithm>
#include <cmath>
#include <exception>
#include <limits>

#include "tensor/multi_index.hpp"
#include "util/rng.hpp"

namespace cpr::core {

OnlineCprModel::OnlineCprModel(grid::Discretization discretization,
                               OnlineCprOptions options)
    : discretization_(std::move(discretization)), options_(options) {
  CPR_CHECK_MSG(options_.rank > 0, "CP rank must be positive");
  log_min_ = std::numeric_limits<double>::infinity();
  log_max_ = -log_min_;
}

void OnlineCprModel::fit(const common::Dataset& train) {
  cells_.clear();
  observation_count_ = 0;
  observations_since_refresh_ = 0;
  refresh_count_ = 0;
  log_sum_ = 0.0;
  log_min_ = std::numeric_limits<double>::infinity();
  log_max_ = -log_min_;
  fitted_ = false;
  for (std::size_t i = 0; i < train.size(); ++i) {
    // Accumulate without triggering intermediate refreshes.
    CPR_CHECK_MSG(train.y[i] > 0.0, "execution times must be positive");
    const double log_value = std::log(train.y[i]);
    auto& slot = cells_[tensor::linearize(discretization_.cell_of(train.config(i)),
                                          discretization_.dims())];
    slot.first += log_value;
    slot.second += 1;
    ++observation_count_;
    log_sum_ += log_value;
    log_min_ = std::min(log_min_, log_value);
    log_max_ = std::max(log_max_, log_value);
  }
  refresh();
}

void OnlineCprModel::observe(const grid::Config& x, double seconds) {
  CPR_CHECK_MSG(seconds > 0.0, "execution times must be positive");
  const double log_value = std::log(seconds);
  auto& slot =
      cells_[tensor::linearize(discretization_.cell_of(x), discretization_.dims())];
  slot.first += log_value;
  slot.second += 1;
  ++observation_count_;
  ++observations_since_refresh_;
  log_sum_ += log_value;
  log_min_ = std::min(log_min_, log_value);
  log_max_ = std::max(log_max_, log_value);
  if (fitted_ && observations_since_refresh_ >= options_.refresh_interval) {
    refresh();
  }
}

tensor::SparseTensor OnlineCprModel::build_observed_tensor() const {
  tensor::SparseTensor t(discretization_.dims());
  // Deterministic order: sort flat ids.
  std::vector<std::size_t> flats;
  flats.reserve(cells_.size());
  for (const auto& [flat, unused] : cells_) flats.push_back(flat);
  std::sort(flats.begin(), flats.end());
  for (const std::size_t flat : flats) {
    const auto& [sum, count] = cells_.at(flat);
    t.push_back(tensor::delinearize(flat, discretization_.dims()),
                sum / static_cast<double>(count) - log_offset_);
  }
  return t;
}

void OnlineCprModel::refresh() {
  if (cells_.empty()) return;
  // Keep the offset stable across warm refreshes (the factors embed it); it
  // is (re)computed only on the cold fit.
  if (!fitted_) {
    log_offset_ = log_sum_ / static_cast<double>(observation_count_);
  }
  const tensor::SparseTensor observed = build_observed_tensor();

  completion::CompletionOptions completion_options;
  completion_options.regularization = options_.regularization;
  completion_options.tol = options_.tol;
  completion_options.seed = options_.seed;

  if (!fitted_) {
    cp_ = tensor::CpModel(discretization_.dims(), options_.rank);
    Rng rng(options_.seed);
    cp_.init_ones(rng, 0.3);
    completion_options.max_sweeps = options_.initial_sweeps;
  } else {
    completion_options.max_sweeps = options_.refresh_sweeps;  // warm start
  }
  completion::als_complete(observed, cp_, completion_options);
  fitted_ = true;
  ++refresh_count_;
  observations_since_refresh_ = 0;
}

double OnlineCprModel::predict(const grid::Config& x) const {
  CPR_CHECK_MSG(fitted_, "OnlineCprModel::predict before any refresh");
  grid::Config clamped = x;
  return predict_in_place(clamped);
}

double OnlineCprModel::predict_in_place(grid::Config& clamped) const {
  for (std::size_t j = 0; j < clamped.size(); ++j) {
    const auto& p = discretization_.params()[j];
    if (p.is_numerical()) clamped[j] = std::clamp(clamped[j], p.lo, p.hi);
  }
  double log_prediction =
      discretization_.interpolate(
          clamped, [this](const tensor::Index& idx) { return cp_.eval(idx); }) +
      log_offset_;
  constexpr double kLogMargin = 5.0;
  log_prediction = std::clamp(log_prediction, log_min_ - kLogMargin, log_max_ + kLogMargin);
  return std::exp(log_prediction);
}

std::vector<double> OnlineCprModel::predict_batch(const linalg::Matrix& configs) const {
  CPR_CHECK_MSG(fitted_, "OnlineCprModel::predict_batch before any refresh");
  CPR_CHECK_MSG(configs.cols() == discretization_.order(),
                "config batch dimensionality does not match the discretization");
  std::vector<double> out(configs.rows());
  std::exception_ptr error;
#ifdef CPR_HAVE_OPENMP
#pragma omp parallel
#endif
  {
    grid::Config scratch;
#ifdef CPR_HAVE_OPENMP
#pragma omp for schedule(dynamic, 16)
#endif
    for (std::size_t i = 0; i < configs.rows(); ++i) {
      try {
        scratch.assign(configs.row_ptr(i), configs.row_ptr(i) + configs.cols());
        out[i] = predict_in_place(scratch);
      } catch (...) {
#ifdef CPR_HAVE_OPENMP
#pragma omp critical(online_cpr_predict_batch_error)
#endif
        if (!error) error = std::current_exception();
      }
    }
  }
  if (error) std::rethrow_exception(error);
  return out;
}

std::size_t OnlineCprModel::model_size_bytes() const {
  ByteCountSink sink;
  discretization_.serialize(sink);
  cp_.serialize(sink);
  return sink.count() + 3 * sizeof(double);
}

void OnlineCprModel::save(SerialSink& sink) const {
  discretization_.serialize(sink);
  sink.write_u64(options_.rank);
  sink.write_f64(options_.regularization);
  sink.write_pod(static_cast<std::int64_t>(options_.refresh_sweeps));
  sink.write_pod(static_cast<std::int64_t>(options_.initial_sweeps));
  sink.write_u64(options_.refresh_interval);
  sink.write_f64(options_.tol);
  sink.write_u64(options_.seed);
  cp_.serialize(sink);
  sink.write_u64(cells_.size());
  // Deterministic cell order so identical states produce identical bytes.
  std::vector<std::size_t> flats;
  flats.reserve(cells_.size());
  for (const auto& [flat, unused] : cells_) flats.push_back(flat);
  std::sort(flats.begin(), flats.end());
  for (const std::size_t flat : flats) {
    const auto& [sum, count] = cells_.at(flat);
    sink.write_u64(flat);
    sink.write_f64(sum);
    sink.write_u64(count);
  }
  sink.write_u64(observation_count_);
  sink.write_u64(observations_since_refresh_);
  sink.write_u64(refresh_count_);
  sink.write_f64(log_offset_);
  sink.write_f64(log_sum_);
  sink.write_f64(log_min_);
  sink.write_f64(log_max_);
  sink.write_pod(static_cast<std::uint8_t>(fitted_ ? 1 : 0));
}

OnlineCprModel OnlineCprModel::deserialize(BufferSource& source) {
  grid::Discretization discretization = grid::Discretization::deserialize(source);
  OnlineCprOptions options;
  options.rank = source.read_u64();
  options.regularization = source.read_f64();
  options.refresh_sweeps = static_cast<int>(source.read_pod<std::int64_t>());
  options.initial_sweeps = static_cast<int>(source.read_pod<std::int64_t>());
  options.refresh_interval = source.read_u64();
  options.tol = source.read_f64();
  options.seed = source.read_u64();
  OnlineCprModel model(std::move(discretization), options);
  model.cp_ = tensor::CpModel::deserialize(source);
  const auto cell_count = source.read_u64();
  for (std::uint64_t c = 0; c < cell_count; ++c) {
    const auto flat = source.read_u64();
    const double sum = source.read_f64();
    const auto count = source.read_u64();
    model.cells_[flat] = {sum, static_cast<std::size_t>(count)};
  }
  model.observation_count_ = source.read_u64();
  model.observations_since_refresh_ = source.read_u64();
  model.refresh_count_ = source.read_u64();
  model.log_offset_ = source.read_f64();
  model.log_sum_ = source.read_f64();
  model.log_min_ = source.read_f64();
  model.log_max_ = source.read_f64();
  model.fitted_ = source.read_pod<std::uint8_t>() != 0;
  if (model.fitted_) {
    CPR_CHECK(model.cp_.dims() == model.discretization_.dims());
  }
  return model;
}

}  // namespace cpr::core
