#include "core/cpr_model.hpp"

#include <algorithm>
#include <cmath>
#include <exception>
#include <limits>
#include <unordered_map>

#include "completion/ccd.hpp"
#include "completion/sgd.hpp"
#include "obs/profile.hpp"
#include "util/kernel_mode.hpp"
#include "util/simd.hpp"
#include "util/log.hpp"
#include "util/rng.hpp"

namespace cpr::core {

namespace {

/// Vectorized CP element evaluation with caller scratch (`z` for fp64
/// storage, `zf` for fp32 storage; both sized rank): elementwise products of
/// the factor rows, then an in-order scalar sum. The multiply sequence per
/// component and the summation order are exactly those of CpModel::eval in
/// the matching storage mode, so the result is bitwise equal to it. The
/// fp32 arm runs SIMD over the float tiles directly — no widening copy.
double eval_cp_vectorized(const tensor::CpModel& cp, const tensor::Index& idx,
                          std::vector<double>& z, std::vector<float>& zf) {
  const std::size_t rank = cp.rank();
  const std::size_t order = cp.order();
  if (cp.f32_storage()) {
    float* __restrict__ zp = zf.data();
    const float* __restrict__ f0 = cp.f32_row_ptr(0, idx[0]);
    if (order == 1) {
      double total = 0.0;
      for (std::size_t r = 0; r < rank; ++r) total += static_cast<double>(f0[r]);
      return total;
    }
    const float* __restrict__ f1 = cp.f32_row_ptr(1, idx[1]);
    CPR_SIMD
    for (std::size_t r = 0; r < rank; ++r) zp[r] = f0[r] * f1[r];
    for (std::size_t j = 2; j < order; ++j) {
      const float* __restrict__ fj = cp.f32_row_ptr(j, idx[j]);
      CPR_SIMD
      for (std::size_t r = 0; r < rank; ++r) zp[r] *= fj[r];
    }
    double total = 0.0;
    for (std::size_t r = 0; r < rank; ++r) total += static_cast<double>(zp[r]);
    return total;
  }
  double* __restrict__ zp = z.data();
  const double* __restrict__ f0 = cp.factor(0).row_ptr(idx[0]);
  if (order == 1) {
    double total = 0.0;
    for (std::size_t r = 0; r < rank; ++r) total += f0[r];
    return total;
  }
  const double* __restrict__ f1 = cp.factor(1).row_ptr(idx[1]);
  CPR_SIMD
  for (std::size_t r = 0; r < rank; ++r) zp[r] = f0[r] * f1[r];
  for (std::size_t j = 2; j < order; ++j) {
    const double* __restrict__ fj = cp.factor(j).row_ptr(idx[j]);
    CPR_SIMD
    for (std::size_t r = 0; r < rank; ++r) zp[r] *= fj[r];
  }
  double total = 0.0;
  for (std::size_t r = 0; r < rank; ++r) total += zp[r];
  return total;
}

}  // namespace

CprModel::CprModel(grid::Discretization discretization, CprOptions options)
    : discretization_(std::move(discretization)), options_(options) {
  CPR_CHECK_MSG(options_.rank > 0, "CP rank must be positive");
}

void CprModel::fit(const common::Dataset& train) {
  CPR_CHECK_MSG(train.size() > 0, "empty training set");
  CPR_CHECK_MSG(train.dimensions() == discretization_.order(),
                "dataset dimensionality does not match the discretization");

  // Bin observations into grid cells and aggregate (Section 5.1; the
  // quadrature option selects the intra-cell statistic).
  tensor::SparseTensor observed = [&] {
    if (options_.quadrature == CellQuadrature::Median) {
      std::unordered_map<std::size_t, std::vector<double>> per_cell;
      for (std::size_t i = 0; i < train.size(); ++i) {
        CPR_CHECK_MSG(train.y[i] > 0.0, "execution times must be positive");
        per_cell[tensor::linearize(discretization_.cell_of(train.config(i)),
                                   discretization_.dims())]
            .push_back(train.y[i]);
      }
      std::vector<std::size_t> flats;
      flats.reserve(per_cell.size());
      for (const auto& [flat, unused] : per_cell) flats.push_back(flat);
      std::sort(flats.begin(), flats.end());
      tensor::SparseTensor t(discretization_.dims());
      for (const std::size_t flat : flats) {
        auto& values = per_cell.at(flat);
        const auto mid = values.begin() + static_cast<std::ptrdiff_t>(values.size() / 2);
        std::nth_element(values.begin(), mid, values.end());
        t.push_back(tensor::delinearize(flat, discretization_.dims()), *mid);
      }
      return t;
    }
    const bool geometric = options_.quadrature == CellQuadrature::GeomMean;
    tensor::SparseTensor::Accumulator accumulator(discretization_.dims());
    for (std::size_t i = 0; i < train.size(); ++i) {
      CPR_CHECK_MSG(train.y[i] > 0.0, "execution times must be positive");
      accumulator.add(discretization_.cell_of(train.config(i)),
                      geometric ? std::log(train.y[i]) : train.y[i]);
    }
    tensor::SparseTensor t = accumulator.build();
    if (geometric) t.transform_values([](double v) { return std::exp(v); });
    return t;
  }();
  density_ = observed.density();

  // Log-transform cell means so least-squares ALS targets the MLogQ-aligned
  // loss of Section 5.2. Centering the log values (the mean is restored at
  // inference) removes the large constant component a product-form model is
  // slow to learn from a random init — without it ALS crawls through a swamp
  // on data whose log-mean is far from zero.
  observed.transform_values([](double v) { return std::log(v); });
  double log_sum = 0.0;
  log_min_ = std::numeric_limits<double>::infinity();
  log_max_ = -log_min_;
  for (std::size_t e = 0; e < observed.nnz(); ++e) {
    log_sum += observed.value(e);
    log_min_ = std::min(log_min_, observed.value(e));
    log_max_ = std::max(log_max_, observed.value(e));
  }
  log_offset_ =
      options_.center_log_values ? log_sum / static_cast<double>(observed.nnz()) : 0.0;
  if (options_.center_log_values) {
    observed.transform_values([this](double v) { return v - log_offset_; });
  }

  completion::CompletionOptions completion_options;
  completion_options.regularization = options_.regularization;
  completion_options.max_sweeps = options_.max_sweeps;
  completion_options.tol = options_.tol;
  completion_options.seed = options_.seed;
  completion_options.rebalance = options_.rebalance;

  // The optimizers are sensitive to their random init on rugged data; keep
  // the restart with the best training objective.
  double best_objective = std::numeric_limits<double>::infinity();
  for (int restart = 0; restart < std::max(1, options_.restarts); ++restart) {
    tensor::CpModel candidate(discretization_.dims(), options_.rank);
    Rng rng(options_.seed + static_cast<std::uint64_t>(restart) * 0x9e3779b9ull);
    if (options_.init == CprInit::Ones) {
      candidate.init_ones(rng, 0.3);
    } else {
      candidate.init_random(rng, 1.0 / std::sqrt(static_cast<double>(options_.rank)));
    }
    completion::CompletionReport report;
    switch (options_.optimizer) {
      case CprOptimizer::Als:
        report = completion::als_complete(observed, candidate, completion_options);
        break;
      case CprOptimizer::Ccd:
        report = completion::ccd_complete(observed, candidate, completion_options);
        break;
      case CprOptimizer::Sgd: {
        completion::SgdOptions sgd_options;
        static_cast<completion::CompletionOptions&>(sgd_options) = completion_options;
        report = completion::sgd_complete(observed, candidate, sgd_options);
        break;
      }
    }
    if (report.final_objective() < best_objective) {
      best_objective = report.final_objective();
      cp_ = std::move(candidate);
      report_ = report;
    }
  }
  fitted_ = true;
  CPR_LOG_DEBUG("CPR fit: density " << density_ << ", sweeps " << report_.sweeps
                                    << ", objective " << report_.final_objective());
}

double CprModel::eval_cell(const tensor::Index& idx) const {
  return std::exp(cp_.eval(idx) + log_offset_);
}

double CprModel::predict(const grid::Config& x) const {
  CPR_CHECK_MSG(fitted_, "CprModel::predict before fit");
  grid::Config clamped = x;
  return predict_in_place(clamped);
}

double CprModel::predict_in_place(grid::Config& clamped) const {
  // The interpolation model clamps coordinates into the modeling domain;
  // configurations genuinely outside it belong to CprExtrapolationModel.
  for (std::size_t j = 0; j < clamped.size(); ++j) {
    const auto& p = discretization_.params()[j];
    if (p.is_numerical()) clamped[j] = std::clamp(clamped[j], p.lo, p.hi);
  }
  if (options_.interpolation == CprInterpolation::ExpSpace) {
    // Literal Section-5.2 formula: m(x) = sum_a exp(t̂_{i+a}) w_a(x).
    // Signed margin weights can push this non-positive; floor at 1e-16
    // exactly as the paper does before computing MLogQ.
    const double prediction = discretization_.interpolate(
        clamped, [this](const tensor::Index& idx) { return eval_cell(idx); });
    return std::max(prediction, 1e-16);
  }
  // Eq. 5 applied to the log-scale elements t̂ with a single exponentiation
  // at the end. Interpolating t̂ (rather than exp(t̂)) is exact for the same
  // class of log-multilinear functions, and keeps the half-cell-margin
  // linear extrapolation (whose weights can be signed) inside the positive
  // orthant — the arithmetic form can produce negative predictions there,
  // which the paper floors at 1e-16.
  double log_prediction =
      discretization_.interpolate(
          clamped, [this](const tensor::Index& idx) { return cp_.eval(idx); }) +
      log_offset_;
  // Safety clamp: grid cells whose factor rows were barely observed can
  // reconstruct to wild exponents; no in-domain prediction should stray far
  // beyond the observed range of log execution times.
  constexpr double kLogMargin = 5.0;
  log_prediction = std::clamp(log_prediction, log_min_ - kLogMargin, log_max_ + kLogMargin);
  return std::exp(log_prediction);
}

std::vector<double> CprModel::predict_batch(const linalg::Matrix& configs) const {
  CPR_CHECK_MSG(fitted_, "CprModel::predict_batch before fit");
  CPR_CHECK_MSG(configs.cols() == discretization_.order(),
                "config batch dimensionality does not match the discretization");
  // Declared before the dispatch so the scope covers both kernel paths.
  CPR_PROFILE_SCOPE("predict_batch");
  if (kernel_mode() == KernelMode::Blocked) return predict_batch_blocked(configs);
  std::vector<double> out(configs.rows());
  // Exceptions must not unwind out of an OpenMP region (that terminates the
  // process); capture the first one and rethrow it on the calling thread.
  std::exception_ptr error;
#ifdef CPR_HAVE_OPENMP
#pragma omp parallel
#endif
  {
    // Per-thread query scratch: assign() reuses its capacity, so the hot
    // loop is allocation-free after the first query.
    grid::Config scratch;
#ifdef CPR_HAVE_OPENMP
#pragma omp for schedule(dynamic, 16)
#endif
    for (std::size_t i = 0; i < configs.rows(); ++i) {
      try {
        scratch.assign(configs.row_ptr(i), configs.row_ptr(i) + configs.cols());
        out[i] = predict_in_place(scratch);
      } catch (...) {
#ifdef CPR_HAVE_OPENMP
#pragma omp critical(cpr_predict_batch_error)
#endif
        if (!error) error = std::current_exception();
      }
    }
  }
  if (error) std::rethrow_exception(error);
  return out;
}

std::vector<double> CprModel::predict_batch_blocked(const linalg::Matrix& configs) const {
  std::vector<double> out(configs.rows());
  const std::size_t n = configs.rows();
  constexpr std::size_t kTile = 64;
  const std::size_t n_tiles = (n + kTile - 1) / kTile;
  // Exceptions must not unwind out of an OpenMP region (that terminates the
  // process); capture the first one and rethrow it on the calling thread.
  std::exception_ptr error;
#ifdef CPR_HAVE_OPENMP
#pragma omp parallel
#endif
  {
    // Per-thread scratch, reused across every query of every tile the
    // thread owns: the config buffer, the Eq.-5 corner/weight buffers, and
    // the CP product row. The hot loop is allocation-free after the first
    // query.
    grid::Config scratch;
    grid::InterpolationScratch interp;
    std::vector<double> z(cp_.rank());
    std::vector<float> zf(cp_.rank());
#ifdef CPR_HAVE_OPENMP
#pragma omp for schedule(dynamic)
#endif
    for (std::size_t tile = 0; tile < n_tiles; ++tile) {
      const std::size_t begin = tile * kTile;
      const std::size_t end = std::min(n, begin + kTile);
      try {
        for (std::size_t i = begin; i < end; ++i) {
          scratch.assign(configs.row_ptr(i), configs.row_ptr(i) + configs.cols());
          out[i] = predict_in_place_blocked(scratch, interp, z, zf);
        }
      } catch (...) {
#ifdef CPR_HAVE_OPENMP
#pragma omp critical(cpr_predict_batch_error)
#endif
        if (!error) error = std::current_exception();
      }
    }
  }
  if (error) std::rethrow_exception(error);
  return out;
}

double CprModel::predict_in_place_blocked(grid::Config& clamped,
                                          grid::InterpolationScratch& interp,
                                          std::vector<double>& z,
                                          std::vector<float>& zf) const {
  // Mirrors predict_in_place statement for statement; the only differences
  // are the statically-dispatched interpolate_t and the vectorized (but
  // bitwise-identical) CP evaluation.
  for (std::size_t j = 0; j < clamped.size(); ++j) {
    const auto& p = discretization_.params()[j];
    if (p.is_numerical()) clamped[j] = std::clamp(clamped[j], p.lo, p.hi);
  }
  if (options_.interpolation == CprInterpolation::ExpSpace) {
    const double prediction = discretization_.interpolate_t(
        clamped,
        [this, &z, &zf](const tensor::Index& idx) {
          return std::exp(eval_cp_vectorized(cp_, idx, z, zf) + log_offset_);
        },
        nullptr, interp);
    return std::max(prediction, 1e-16);
  }
  double log_prediction =
      discretization_.interpolate_t(
          clamped,
          [this, &z, &zf](const tensor::Index& idx) {
            return eval_cp_vectorized(cp_, idx, z, zf);
          },
          nullptr, interp) +
      log_offset_;
  constexpr double kLogMargin = 5.0;
  log_prediction = std::clamp(log_prediction, log_min_ - kLogMargin, log_max_ + kLogMargin);
  return std::exp(log_prediction);
}

std::size_t CprModel::model_size_bytes() const {
  ByteCountSink sink;
  serialize(sink);
  return sink.count();
}

void CprModel::serialize(SerialSink& sink) const {
  discretization_.serialize(sink);
  sink.write_u64(options_.rank);
  sink.write_f64(options_.regularization);
  sink.write_f64(log_offset_);
  sink.write_f64(log_min_);
  sink.write_f64(log_max_);
  cp_.serialize(sink);
}

CprModel CprModel::deserialize(BufferSource& source) {
  grid::Discretization discretization = grid::Discretization::deserialize(source);
  CprOptions options;
  options.rank = source.read_u64();
  options.regularization = source.read_f64();
  CprModel model(std::move(discretization), options);
  model.log_offset_ = source.read_f64();
  model.log_min_ = source.read_f64();
  model.log_max_ = source.read_f64();
  model.cp_ = tensor::CpModel::deserialize(source);
  CPR_CHECK(model.cp_.dims() == model.discretization_.dims());
  model.fitted_ = true;
  return model;
}

void CprModel::save(SerialSink& sink) const {
  serialize(sink);
  sink.write_pod(static_cast<std::int64_t>(options_.max_sweeps));
  sink.write_f64(options_.tol);
  sink.write_pod(static_cast<std::int64_t>(options_.restarts));
  sink.write_u64(options_.seed);
  sink.write_pod(static_cast<std::uint8_t>(options_.init));
  sink.write_pod(static_cast<std::uint8_t>(options_.interpolation));
  sink.write_pod(static_cast<std::uint8_t>(options_.optimizer));
  sink.write_pod(static_cast<std::uint8_t>(options_.quadrature));
  sink.write_pod(static_cast<std::uint8_t>(options_.center_log_values ? 1 : 0));
  sink.write_pod(static_cast<std::uint8_t>(options_.rebalance ? 1 : 0));
}

CprModel CprModel::load_archive(BufferSource& source) {
  CprModel model = deserialize(source);
  model.options_.max_sweeps = static_cast<int>(source.read_pod<std::int64_t>());
  model.options_.tol = source.read_f64();
  model.options_.restarts = static_cast<int>(source.read_pod<std::int64_t>());
  model.options_.seed = source.read_u64();
  const auto read_enum = [&source](std::uint8_t max_value) {
    const auto value = source.read_pod<std::uint8_t>();
    CPR_CHECK_MSG(value <= max_value, "CPR archive has an out-of-range option enum");
    return value;
  };
  model.options_.init = static_cast<CprInit>(read_enum(1));
  model.options_.interpolation = static_cast<CprInterpolation>(read_enum(1));
  model.options_.optimizer = static_cast<CprOptimizer>(read_enum(2));
  model.options_.quadrature = static_cast<CellQuadrature>(read_enum(2));
  model.options_.center_log_values = source.read_pod<std::uint8_t>() != 0;
  model.options_.rebalance = source.read_pod<std::uint8_t>() != 0;
  return model;
}

}  // namespace cpr::core
