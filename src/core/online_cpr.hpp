#pragma once
// Online / streaming CPR — the paper's closing future-work item
// ("incorporating methods for efficiently updating CP decompositions to
// effectively model streaming data in online settings").
//
// OnlineCprModel ingests observations incrementally. Cell statistics
// (running sums/counts, so cell means stay exact) are updated per
// observation; the CP factors are refreshed by warm-started ALS sweeps —
// a handful of sweeps from the previous factors instead of a full refit —
// either on demand or automatically every `refresh_interval` observations.

#include "common/regressor.hpp"
#include "completion/als.hpp"
#include "grid/discretization.hpp"
#include "tensor/cp_model.hpp"

#include <unordered_map>

namespace cpr::core {

struct OnlineCprOptions {
  std::size_t rank = 8;
  double regularization = 1e-4;
  int refresh_sweeps = 5;            ///< warm-started ALS sweeps per refresh
  int initial_sweeps = 100;          ///< sweeps for the first (cold) fit
  std::size_t refresh_interval = 256; ///< observations between automatic refreshes
  double tol = 1e-6;
  std::uint64_t seed = 42;
};

class OnlineCprModel final : public common::Regressor {
 public:
  OnlineCprModel(grid::Discretization discretization, OnlineCprOptions options = {});

  std::string name() const override { return "CPR-online"; }
  std::string type_tag() const override { return "cpr-online"; }
  std::size_t input_dims() const override { return discretization_.order(); }

  /// Batch interface: resets state and ingests the whole dataset.
  void fit(const common::Dataset& train) override;

  /// The serving path may OBSERVE/REFIT this family (warm restarts).
  bool supports_observe() const override { return true; }

  /// Streams one observation; triggers an automatic refresh every
  /// `refresh_interval` observations once a model exists.
  void observe(const grid::Config& x, double seconds) override;

  /// Recomputes the factors now: cold ALS on the first call, warm-started
  /// `refresh_sweeps` afterwards. No-op without observations.
  void refresh() override;

  double predict(const grid::Config& x) const override;

  /// Batched inference, parallelized over configurations with per-thread
  /// scratch; row i equals predict(row i) bitwise.
  std::vector<double> predict_batch(const linalg::Matrix& configs) const override;

  std::size_t model_size_bytes() const override;

  /// Persists the full streaming state (cell statistics included), so a
  /// reloaded model can keep ingesting observations where it left off.
  void save(SerialSink& sink) const override;
  static OnlineCprModel deserialize(BufferSource& source);

  std::size_t observation_count() const { return observation_count_; }
  std::size_t refresh_count() const { return refresh_count_; }
  bool ready() const { return fitted_; }
  const grid::Discretization& discretization() const { return discretization_; }

 private:
  tensor::SparseTensor build_observed_tensor() const;
  double predict_in_place(grid::Config& x) const;

  grid::Discretization discretization_;
  OnlineCprOptions options_;
  tensor::CpModel cp_;
  /// flat cell id -> (sum of log values, count): exact running cell means.
  std::unordered_map<std::size_t, std::pair<double, std::size_t>> cells_;
  std::size_t observation_count_ = 0;
  std::size_t observations_since_refresh_ = 0;
  std::size_t refresh_count_ = 0;
  double log_offset_ = 0.0;
  double log_sum_ = 0.0;
  double log_min_ = 0.0, log_max_ = 0.0;
  bool fitted_ = false;
};

}  // namespace cpr::core
