#include "core/tucker_perf_model.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "util/rng.hpp"

namespace cpr::core {

TuckerPerfModel::TuckerPerfModel(grid::Discretization discretization,
                                 TuckerPerfOptions options)
    : discretization_(std::move(discretization)), options_(options) {
  CPR_CHECK_MSG(options_.mode_rank > 0, "mode rank must be positive");
}

void TuckerPerfModel::fit(const common::Dataset& train) {
  CPR_CHECK_MSG(train.size() > 0, "empty training set");
  CPR_CHECK_MSG(train.dimensions() == discretization_.order(),
                "dataset dimensionality does not match the discretization");

  tensor::SparseTensor::Accumulator accumulator(discretization_.dims());
  for (std::size_t i = 0; i < train.size(); ++i) {
    CPR_CHECK_MSG(train.y[i] > 0.0, "execution times must be positive");
    accumulator.add(discretization_.cell_of(train.config(i)), train.y[i]);
  }
  tensor::SparseTensor observed = accumulator.build();
  density_ = observed.density();

  observed.transform_values([](double v) { return std::log(v); });
  double log_sum = 0.0;
  log_min_ = std::numeric_limits<double>::infinity();
  log_max_ = -log_min_;
  for (std::size_t e = 0; e < observed.nnz(); ++e) {
    log_sum += observed.value(e);
    log_min_ = std::min(log_min_, observed.value(e));
    log_max_ = std::max(log_max_, observed.value(e));
  }
  log_offset_ = log_sum / static_cast<double>(observed.nnz());
  observed.transform_values([this](double v) { return v - log_offset_; });

  // Per-mode ranks capped by the mode dimension.
  tensor::Dims core_dims(discretization_.order());
  for (std::size_t j = 0; j < core_dims.size(); ++j) {
    core_dims[j] = std::min<std::size_t>(options_.mode_rank, discretization_.dims()[j]);
  }
  tucker_ = tensor::TuckerModel(discretization_.dims(), core_dims);
  Rng rng(options_.seed);
  tucker_.init_ones(rng, 0.3);

  completion::CompletionOptions completion_options;
  completion_options.regularization = options_.regularization;
  completion_options.max_sweeps = options_.max_sweeps;
  completion_options.tol = options_.tol;
  completion_options.seed = options_.seed;
  report_ = completion::tucker_complete(observed, tucker_, completion_options);
  fitted_ = true;
}

double TuckerPerfModel::predict(const grid::Config& x) const {
  CPR_CHECK_MSG(fitted_, "TuckerPerfModel::predict before fit");
  grid::Config clamped = x;
  for (std::size_t j = 0; j < clamped.size(); ++j) {
    const auto& p = discretization_.params()[j];
    if (p.is_numerical()) clamped[j] = std::clamp(clamped[j], p.lo, p.hi);
  }
  double log_prediction =
      discretization_.interpolate(
          clamped, [this](const tensor::Index& idx) { return tucker_.eval(idx); }) +
      log_offset_;
  constexpr double kLogMargin = 5.0;
  log_prediction = std::clamp(log_prediction, log_min_ - kLogMargin, log_max_ + kLogMargin);
  return std::exp(log_prediction);
}

std::size_t TuckerPerfModel::model_size_bytes() const {
  ByteCountSink sink;
  discretization_.serialize(sink);
  tucker_.serialize(sink);
  return sink.count() + 3 * sizeof(double);
}

void TuckerPerfModel::save(SerialSink& sink) const {
  CPR_CHECK_MSG(fitted_, "TuckerPerfModel::save before fit");
  discretization_.serialize(sink);
  sink.write_u64(options_.mode_rank);
  sink.write_f64(options_.regularization);
  sink.write_pod(static_cast<std::int64_t>(options_.max_sweeps));
  sink.write_f64(options_.tol);
  sink.write_u64(options_.seed);
  tucker_.serialize(sink);
  sink.write_f64(log_offset_);
  sink.write_f64(log_min_);
  sink.write_f64(log_max_);
  sink.write_f64(density_);
}

TuckerPerfModel TuckerPerfModel::deserialize(BufferSource& source) {
  grid::Discretization discretization = grid::Discretization::deserialize(source);
  TuckerPerfOptions options;
  options.mode_rank = source.read_u64();
  options.regularization = source.read_f64();
  options.max_sweeps = static_cast<int>(source.read_pod<std::int64_t>());
  options.tol = source.read_f64();
  options.seed = source.read_u64();
  TuckerPerfModel model(std::move(discretization), options);
  model.tucker_ = tensor::TuckerModel::deserialize(source);
  CPR_CHECK(model.tucker_.dims() == model.discretization_.dims());
  model.log_offset_ = source.read_f64();
  model.log_min_ = source.read_f64();
  model.log_max_ = source.read_f64();
  model.density_ = source.read_f64();
  model.fitted_ = true;
  return model;
}

}  // namespace cpr::core
