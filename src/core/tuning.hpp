#pragma once
// Hyper-parameter selection for CPR models.
//
// The paper evaluates every hyper-parameter configuration against the test
// set and reports the minimum (Section 6.0.4, "forgo training via
// cross-validation"). Production use cannot peek at the test set, so this
// utility supports both modes:
//   * TuneMode::TestSetMinimum — the paper's protocol (benchmark harnesses);
//   * TuneMode::ValidationSplit — hold out a fraction of the training set,
//     select on it, then refit the winner on the full data (deployments).
//
// The tools now tune every family through the universal k-fold tuner in
// src/tune (whose `cpr` search space is exactly CprTuningGrid, so the swept
// grid is unchanged); this CPR-specific sweep remains for the paper-protocol
// benches and as the grid's single source of truth.

#include <functional>

#include "common/dataset.hpp"
#include "core/cpr_model.hpp"

namespace cpr::core {

enum class TuneMode { TestSetMinimum, ValidationSplit };

struct CprTuningGrid {
  std::vector<std::size_t> cells = {4, 8, 16};
  std::vector<std::size_t> ranks = {2, 4, 8, 16};
  std::vector<double> regularizations = {1e-5, 1e-4};

  std::size_t configurations() const {
    return cells.size() * ranks.size() * regularizations.size();
  }

  /// A grid scaled sensibly for the dimensionality: high-order spaces cap
  /// the per-dimension cell count (the cell-count product explodes).
  static CprTuningGrid for_dimensions(std::size_t d);
};

struct CprTuningResult {
  CprOptions best_options;
  std::size_t best_cells = 0;
  double best_error = 0.0;  ///< MLogQ on the selection set
  /// One record per evaluated configuration, in sweep order.
  struct Candidate {
    std::size_t cells;
    std::size_t rank;
    double regularization;
    double error;
    std::size_t bytes;
  };
  std::vector<Candidate> sweep;
};

/// Sweeps the grid and returns the fitted winner plus the full record.
/// `specs` describes the parameter space; `mode` chooses the selection
/// protocol (ValidationSplit holds out `validation_fraction` of `train`).
/// `progress` (optional) is invoked after each candidate.
struct CprTuner {
  std::vector<grid::ParameterSpec> specs;
  TuneMode mode = TuneMode::ValidationSplit;
  double validation_fraction = 0.2;
  std::uint64_t seed = 42;
  std::function<void(const CprTuningResult::Candidate&)> progress;

  /// `test` is only consulted when mode == TestSetMinimum.
  std::pair<CprModel, CprTuningResult> tune(const common::Dataset& train,
                                            const common::Dataset* test,
                                            const CprTuningGrid& tuning_grid) const;
};

}  // namespace cpr::core
