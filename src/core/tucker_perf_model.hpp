#pragma once
// Performance model backed by a Tucker decomposition — the alternative
// factorization the paper leaves to future work. Shares CPR's pipeline
// (cell-mean binning, log transform + centering, Eq.-5 log-space
// inference); only the compressed representation differs.

#include "common/regressor.hpp"
#include "completion/tucker_als.hpp"
#include "grid/discretization.hpp"

namespace cpr::core {

struct TuckerPerfOptions {
  std::size_t mode_rank = 3;     ///< R_j per numerical mode (capped at I_j)
  double regularization = 1e-4;
  int max_sweeps = 60;
  double tol = 1e-6;
  std::uint64_t seed = 42;
};

class TuckerPerfModel final : public common::Regressor {
 public:
  TuckerPerfModel(grid::Discretization discretization, TuckerPerfOptions options = {});

  std::string name() const override { return "TUCKER"; }
  std::string type_tag() const override { return "tucker"; }
  std::size_t input_dims() const override { return discretization_.order(); }
  void fit(const common::Dataset& train) override;
  double predict(const grid::Config& x) const override;
  std::size_t model_size_bytes() const override;

  void save(SerialSink& sink) const override;
  static TuckerPerfModel deserialize(BufferSource& source);

  const tensor::TuckerModel& tucker() const { return tucker_; }
  const completion::CompletionReport& report() const { return report_; }
  double observed_density() const { return density_; }

 private:
  grid::Discretization discretization_;
  TuckerPerfOptions options_;
  tensor::TuckerModel tucker_;
  completion::CompletionReport report_;
  double log_offset_ = 0.0;
  double log_min_ = 0.0, log_max_ = 0.0;
  double density_ = 0.0;
  bool fitted_ = false;
};

}  // namespace cpr::core
