#pragma once
// CPR-E — the paper's extrapolation model (Section 5.3).
//
// Training:
//  1. Bin observations into grid cells (Section 5.1) — cell means stay in
//     the original (positive) scale.
//  2. Complete a strictly positive CP model under the MLogQ2 loss using the
//     interior-point AMN optimizer (Section 4.2.2).
//  3. For each numerical mode, compute the rank-1 SVD U_j ≈ û σ̂ v̂^T of its
//     (positive) factor matrix — positive by Perron–Frobenius — and fit a
//     1-D MARS spline m̂_j to {(h_j(midpoint_i), log û_i)}.
//
// Inference for x with extrapolated coordinates (x_j outside [X_0, X_I]):
// the factor row of each extrapolated mode is replaced by its rank-1
// surrogate evaluated through the spline,
//     u_{i_j, r}  →  exp(m̂_j(h_j(x_j))) · σ̂_j · v̂_{j,r},
// while in-domain modes keep their factor rows; Eq. 5 interpolation is then
// applied over the in-domain numerical modes only (extrapolated modes are
// treated like categoricals — no interpolation along them).

#include "baselines/mars.hpp"
#include "common/regressor.hpp"
#include "completion/amn.hpp"
#include "grid/discretization.hpp"
#include "tensor/cp_model.hpp"

namespace cpr::core {

struct CprExtrapolationOptions {
  std::size_t rank = 4;
  double regularization = 1e-5;
  int max_sweeps = 100;
  double tol = 1e-6;
  std::uint64_t seed = 42;
  completion::AmnOptions amn;        ///< barrier schedule (paper defaults)
  baselines::MarsOptions spline;     ///< per-mode 1-D spline fit options

  CprExtrapolationOptions() {
    spline.max_degree = 1;       // univariate spline
    spline.max_terms = 11;
    spline.knots_per_dim = 32;
    // The spline's training set is one point per grid cell along the mode
    // (often < 16 points). Friedman's default GCV penalty over-prunes such
    // tiny sets to a near-constant model, which destroys the extrapolation
    // trend — plain RSS-based pruning keeps the trend.
    spline.gcv_penalty = 0.0;
  }
};

class CprExtrapolationModel final : public common::Regressor {
 public:
  CprExtrapolationModel(grid::Discretization discretization,
                        CprExtrapolationOptions options = {});

  std::string name() const override { return "CPR-E"; }
  std::string type_tag() const override { return "cpr-extrap"; }
  std::size_t input_dims() const override { return discretization_.order(); }
  void fit(const common::Dataset& train) override;

  /// Predicts execution time for any configuration — inside the modeling
  /// domain (pure Eq.-5 interpolation of the positive model) or outside it
  /// (rank-1 + spline extrapolation along the out-of-domain modes).
  double predict(const grid::Config& x) const override;

  std::size_t model_size_bytes() const override;

  const tensor::CpModel& cp() const { return cp_; }
  const grid::Discretization& discretization() const { return discretization_; }
  const completion::CompletionReport& report() const { return report_; }

  /// Leading singular value of mode j's factor (numerical modes only).
  double sigma(std::size_t j) const { return sigmas_.at(j); }
  /// Leading right singular vector of mode j's factor.
  const linalg::Vector& v_hat(std::size_t j) const { return v_hats_.at(j); }

 private:
  double eval_cell_mixed(const tensor::Index& idx,
                         const std::vector<double>& extrapolated_scale,
                         const std::vector<bool>& extrapolated) const;

  grid::Discretization discretization_;
  CprExtrapolationOptions options_;
  tensor::CpModel cp_;
  completion::CompletionReport report_;
  std::vector<double> sigmas_;                  ///< per mode (0 for categorical)
  std::vector<linalg::Vector> v_hats_;          ///< per mode, length R
  std::vector<std::unique_ptr<baselines::Mars>> splines_;  ///< per mode (numerical)
  bool fitted_ = false;
};

}  // namespace cpr::core
