#include "core/cpr_extrapolation.hpp"

#include <algorithm>
#include <cmath>

#include "linalg/svd.hpp"
#include "util/log.hpp"
#include "util/rng.hpp"

namespace cpr::core {

CprExtrapolationModel::CprExtrapolationModel(grid::Discretization discretization,
                                             CprExtrapolationOptions options)
    : discretization_(std::move(discretization)), options_(std::move(options)) {
  CPR_CHECK_MSG(options_.rank > 0, "CP rank must be positive");
}

void CprExtrapolationModel::fit(const common::Dataset& train) {
  CPR_CHECK_MSG(train.size() > 0, "empty training set");
  CPR_CHECK_MSG(train.dimensions() == discretization_.order(),
                "dataset dimensionality does not match the discretization");

  tensor::SparseTensor::Accumulator accumulator(discretization_.dims());
  double log_sum = 0.0;
  for (std::size_t i = 0; i < train.size(); ++i) {
    CPR_CHECK_MSG(train.y[i] > 0.0, "execution times must be positive");
    accumulator.add(discretization_.cell_of(train.config(i)), train.y[i]);
    log_sum += std::log(train.y[i]);
  }
  const tensor::SparseTensor observed = accumulator.build();
  const double geometric_mean = std::exp(log_sum / static_cast<double>(train.size()));

  cp_ = tensor::CpModel(discretization_.dims(), options_.rank);
  Rng rng(options_.seed);
  const double magnitude =
      std::pow(geometric_mean, 1.0 / static_cast<double>(discretization_.order()));
  cp_.init_positive(rng, magnitude);

  completion::AmnOptions amn_options = options_.amn;
  amn_options.regularization = options_.regularization;
  amn_options.max_sweeps = options_.max_sweeps;
  amn_options.tol = options_.tol;
  amn_options.seed = options_.seed;
  report_ = completion::amn_complete(observed, cp_, amn_options);
  CPR_LOG_DEBUG("CPR-E fit: sweeps " << report_.sweeps << ", objective "
                                     << report_.final_objective());

  // Rank-1 factorization + spline per numerical mode (Section 5.3).
  const std::size_t order = discretization_.order();
  sigmas_.assign(order, 0.0);
  v_hats_.assign(order, {});
  splines_.clear();
  splines_.resize(order);
  for (std::size_t j = 0; j < order; ++j) {
    const auto& p = discretization_.params()[j];
    if (!p.is_numerical()) continue;
    const auto rank1 = linalg::rank1_svd(cp_.factor(j));
    sigmas_[j] = rank1.sigma;
    v_hats_[j] = rank1.v;

    // Spline training set: h_j(midpoint_i) -> log(û_i). Requires û > 0,
    // which Perron–Frobenius guarantees for the strictly positive factor.
    const std::size_t cells = discretization_.dims()[j];
    common::Dataset spline_data;
    spline_data.x = linalg::Matrix(cells, 1);
    spline_data.y.resize(cells);
    for (std::size_t i = 0; i < cells; ++i) {
      CPR_CHECK_MSG(rank1.u[i] > 0.0,
                    "rank-1 left singular vector not positive — AMN factor escaped "
                    "the positive orthant");
      spline_data.x(i, 0) = discretization_.h(j, discretization_.midpoint(j, i));
      spline_data.y[i] = std::log(rank1.u[i]);
    }
    auto spline = std::make_unique<baselines::Mars>(options_.spline);
    if (cells >= 2) {
      spline->fit(spline_data);
    } else {
      // Degenerate single-cell mode: constant spline.
      common::Dataset doubled = spline_data;
      doubled.x = linalg::Matrix(2, 1);
      doubled.x(0, 0) = spline_data.x(0, 0);
      doubled.x(1, 0) = spline_data.x(0, 0) + 1.0;
      doubled.y = {spline_data.y[0], spline_data.y[0]};
      spline->fit(doubled);
    }
    splines_[j] = std::move(spline);
  }
  fitted_ = true;
}

double CprExtrapolationModel::eval_cell_mixed(
    const tensor::Index& idx, const std::vector<double>& extrapolated_scale,
    const std::vector<bool>& extrapolated) const {
  const std::size_t rank = cp_.rank();
  double total = 0.0;
  for (std::size_t r = 0; r < rank; ++r) {
    double product = 1.0;
    for (std::size_t j = 0; j < cp_.order(); ++j) {
      if (extrapolated[j]) {
        // Rank-1 surrogate row: exp(m̂_j(h(x_j))) σ̂_j v̂_{j,r}.
        product *= extrapolated_scale[j] * v_hats_[j][r];
      } else {
        product *= cp_.factor(j)(idx[j], r);
      }
    }
    total += product;
  }
  return total;
}

double CprExtrapolationModel::predict(const grid::Config& x) const {
  CPR_CHECK_MSG(fitted_, "CprExtrapolationModel::predict before fit");
  CPR_CHECK(x.size() == discretization_.order());
  const std::size_t order = discretization_.order();

  std::vector<bool> extrapolated(order, false);
  std::vector<double> scale(order, 1.0);
  bool any_extrapolated = false;
  for (std::size_t j = 0; j < order; ++j) {
    if (discretization_.in_domain(j, x[j])) continue;
    const auto& p = discretization_.params()[j];
    CPR_CHECK_MSG(p.is_numerical(),
                  "categorical coordinate " << j << " outside its category set");
    extrapolated[j] = true;
    any_extrapolated = true;
    scale[j] = std::exp(splines_[j]->predict({discretization_.h(j, x[j])})) * sigmas_[j];
  }

  // Interpolation runs on log(t̂_i): the model's cell estimates are strictly
  // positive, and combining their logs keeps the signed half-cell-margin
  // extrapolation weights from producing negative predictions.
  if (!any_extrapolated) {
    return std::exp(discretization_.interpolate(
        x, [this](const tensor::Index& idx) { return std::log(cp_.eval(idx)); }));
  }
  // Freeze extrapolated modes (no interpolation along them) and evaluate the
  // modified CP reconstruction everywhere else.
  return std::exp(discretization_.interpolate(
      x,
      [&](const tensor::Index& idx) {
        return std::log(eval_cell_mixed(idx, scale, extrapolated));
      },
      &extrapolated));
}

std::size_t CprExtrapolationModel::model_size_bytes() const {
  ByteCountSink sink;
  discretization_.serialize(sink);
  cp_.serialize(sink);
  std::size_t bytes = sink.count();
  for (std::size_t j = 0; j < splines_.size(); ++j) {
    bytes += sizeof(double);  // sigma
    bytes += v_hats_[j].size() * sizeof(double);
    if (splines_[j]) bytes += splines_[j]->model_size_bytes();
  }
  return bytes;
}

}  // namespace cpr::core
