#include "core/model_file.hpp"

#include <fstream>

namespace cpr::core {

namespace {
constexpr char kMagic[8] = {'C', 'P', 'R', 'M', 'O', 'D', 'L', '1'};
}

void save_model_file(const CprModel& model, const std::string& path) {
  BufferSink sink;
  model.serialize(sink);
  std::ofstream out(path, std::ios::binary);
  CPR_CHECK_MSG(out.good(), "cannot open " << path << " for writing");
  out.write(kMagic, sizeof(kMagic));
  const std::uint64_t size = sink.buffer().size();
  out.write(reinterpret_cast<const char*>(&size), sizeof(size));
  out.write(reinterpret_cast<const char*>(sink.buffer().data()),
            static_cast<std::streamsize>(size));
  CPR_CHECK_MSG(out.good(), "write to " << path << " failed");
}

CprModel load_model_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  CPR_CHECK_MSG(in.good(), "cannot open " << path);
  char magic[sizeof(kMagic)];
  in.read(magic, sizeof(magic));
  CPR_CHECK_MSG(in.good() && std::equal(magic, magic + sizeof(kMagic), kMagic),
                path << " is not a CPR model file");
  std::uint64_t size = 0;
  in.read(reinterpret_cast<char*>(&size), sizeof(size));
  CPR_CHECK_MSG(in.good(), path << ": truncated header");
  std::vector<std::uint8_t> buffer(size);
  in.read(reinterpret_cast<char*>(buffer.data()), static_cast<std::streamsize>(size));
  CPR_CHECK_MSG(in.good() && static_cast<std::uint64_t>(in.gcount()) == size,
                path << ": truncated payload");
  BufferSource source(buffer);
  return CprModel::deserialize(source);
}

}  // namespace cpr::core
