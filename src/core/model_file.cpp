#include "core/model_file.hpp"

#include <algorithm>
#include <filesystem>
#include <fstream>

#include "common/model_registry.hpp"
#include "core/cpr_model.hpp"

namespace cpr::core {

namespace {
constexpr char kMagic[8] = {'C', 'P', 'R', 'A', 'R', 'C', 'H', '1'};
constexpr char kLegacyMagic[8] = {'C', 'P', 'R', 'M', 'O', 'D', 'L', '1'};
constexpr std::uint64_t kFp64Version = 1;       // fp64 matrix payloads
constexpr std::uint64_t kQuantizedVersion = 2;  // tagged quantized blocks
constexpr std::uint64_t kMaxVersion = kQuantizedVersion;

/// Renders the archive body (tag, version, mode byte for v2, payload) into
/// `sink`, which carries the quantization request into Matrix::serialize.
void render_body(SerialSink& sink, const common::Regressor& model,
                 QuantMode quant_mode) {
  sink.set_quant_mode(quant_mode);
  sink.write_string(model.type_tag());
  if (quant_mode == QuantMode::F64) {
    sink.write_u64(kFp64Version);
  } else {
    sink.write_u64(kQuantizedVersion);
    sink.write_pod(static_cast<std::uint8_t>(quant_mode));
  }
  model.save(sink);
}
}  // namespace

void save_model_file(const common::Regressor& model, const std::string& path,
                     QuantMode quant_mode) {
  BufferSink sink;
  render_body(sink, model, quant_mode);
  std::ofstream out(path, std::ios::binary);
  CPR_CHECK_MSG(out.good(), "cannot open " << path << " for writing");
  out.write(kMagic, sizeof(kMagic));
  const std::uint64_t size = sink.buffer().size();
  out.write(reinterpret_cast<const char*>(&size), sizeof(size));
  out.write(reinterpret_cast<const char*>(sink.buffer().data()),
            static_cast<std::streamsize>(size));
  CPR_CHECK_MSG(out.good(), "write to " << path << " failed");
}

std::size_t model_archive_bytes(const common::Regressor& model, QuantMode quant_mode) {
  ByteCountSink sink;
  render_body(sink, model, quant_mode);
  return sizeof(kMagic) + sizeof(std::uint64_t) + sink.count();
}

common::RegressorPtr load_model_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  CPR_CHECK_MSG(in.good(), "cannot open " << path);
  char magic[sizeof(kMagic)];
  in.read(magic, sizeof(magic));
  CPR_CHECK_MSG(in.good(), path << " is not a CPR model archive");
  const bool current = std::equal(magic, magic + sizeof(kMagic), kMagic);
  const bool legacy = std::equal(magic, magic + sizeof(kLegacyMagic), kLegacyMagic);
  CPR_CHECK_MSG(current || legacy, path << " is not a CPR model archive");
  std::uint64_t size = 0;
  in.read(reinterpret_cast<char*>(&size), sizeof(size));
  CPR_CHECK_MSG(in.good(), path << ": truncated header");
  // Validate the declared body size against the actual file length BEFORE
  // allocating: a corrupt size field must fail loudly, not drive a huge
  // allocation.
  const auto body_start = in.tellg();
  in.seekg(0, std::ios::end);
  const auto file_end = in.tellg();
  in.seekg(body_start);
  CPR_CHECK_MSG(file_end >= body_start &&
                    size <= static_cast<std::uint64_t>(file_end - body_start),
                path << ": truncated payload");
  std::vector<std::uint8_t> buffer(size);
  in.read(reinterpret_cast<char*>(buffer.data()), static_cast<std::streamsize>(size));
  CPR_CHECK_MSG(in.good() && static_cast<std::uint64_t>(in.gcount()) == size,
                path << ": truncated payload");
  BufferSource source(buffer);
  common::RegressorPtr model;
  if (legacy) {
    // Pre-registry files hold a bare CprModel payload with no tag/version.
    model = std::make_unique<CprModel>(CprModel::deserialize(source));
  } else {
    const std::string type_tag = source.read_string();
    const std::uint64_t version = source.read_u64();
    // Name the found version and the supported range: "archive version 3
    // (this build reads versions 1..2)" tells an operator to upgrade the
    // binary, where a generic "corrupt archive" would send them chasing
    // disk corruption.
    CPR_CHECK_MSG(version >= kFp64Version && version <= kMaxVersion,
                  path << ": unsupported archive version " << version
                       << " (this build reads versions " << kFp64Version << ".."
                       << kMaxVersion << ")");
    QuantMode quant_mode = QuantMode::F64;
    if (version == kQuantizedVersion) {
      const auto mode = source.read_pod<std::uint8_t>();
      CPR_CHECK_MSG(mode <= static_cast<std::uint8_t>(QuantMode::I8),
                    path << ": unknown quantization mode " << static_cast<unsigned>(mode));
      quant_mode = static_cast<QuantMode>(mode);
      source.set_quant_mode(quant_mode, /*quantized_framing=*/true);
    }
    model = common::ModelRegistry::instance().load(type_tag, source);
    model->set_archive_quant_mode(quant_mode);
  }
  // Trailing bytes mean a corrupt body (e.g. a mangled inner length prefix
  // that made the loader stop short) — reject rather than serve it.
  CPR_CHECK_MSG(source.exhausted(), path << ": archive has trailing garbage");
  return model;
}

std::string model_file_path(const std::string& directory, const std::string& name) {
  CPR_CHECK_MSG(!name.empty(), "empty model name");
  CPR_CHECK_MSG(name.find('/') == std::string::npos &&
                    name.find('\\') == std::string::npos &&
                    name.find("..") == std::string::npos,
                "model name '" << name << "' must not contain path components");
  return (std::filesystem::path(directory) / (name + kModelFileExtension)).string();
}

std::vector<std::string> list_model_archives(const std::string& directory) {
  std::error_code ec;
  std::filesystem::directory_iterator entries(directory, ec);
  CPR_CHECK_MSG(!ec, "cannot read model directory " << directory << ": "
                                                    << ec.message());
  std::vector<std::string> names;
  for (const auto& entry : entries) {
    if (entry.is_regular_file() && entry.path().extension() == kModelFileExtension) {
      names.push_back(entry.path().stem().string());
    }
  }
  std::sort(names.begin(), names.end());
  return names;
}

std::string peek_model_type(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  CPR_CHECK_MSG(in.good(), "cannot open " << path);
  char magic[sizeof(kMagic)];
  in.read(magic, sizeof(magic));
  CPR_CHECK_MSG(in.good(), path << " is not a CPR model archive");
  if (std::equal(magic, magic + sizeof(kLegacyMagic), kLegacyMagic)) return "cpr";
  CPR_CHECK_MSG(std::equal(magic, magic + sizeof(kMagic), kMagic),
                path << " is not a CPR model archive");
  std::uint64_t size = 0;
  in.read(reinterpret_cast<char*>(&size), sizeof(size));
  CPR_CHECK_MSG(in.good(), path << ": truncated header");
  // Only the length-prefixed tag is needed; read it directly off the stream.
  std::uint64_t tag_size = 0;
  in.read(reinterpret_cast<char*>(&tag_size), sizeof(tag_size));
  CPR_CHECK_MSG(in.good() && size >= sizeof(tag_size) &&
                    tag_size <= size - sizeof(tag_size),
                path << ": truncated archive body");
  // Bound by the real file length too (the declared size is untrusted).
  const auto tag_start = in.tellg();
  in.seekg(0, std::ios::end);
  const auto file_end = in.tellg();
  in.seekg(tag_start);
  CPR_CHECK_MSG(file_end >= tag_start &&
                    tag_size <= static_cast<std::uint64_t>(file_end - tag_start),
                path << ": truncated type tag");
  std::string tag(tag_size, '\0');
  in.read(tag.data(), static_cast<std::streamsize>(tag_size));
  CPR_CHECK_MSG(in.good(), path << ": truncated type tag");
  return tag;
}

}  // namespace cpr::core
