#pragma once
// File persistence for fitted models of any registered family.
//
// Archive layout:
//   magic   "CPRARCH1"                   (8 bytes)
//   size    u64                          (byte count of the archive body)
//   body    type tag (length-prefixed string)
//           format version (u64: 1 = fp64, 2 = quantized)
//           [version 2 only] requested quantization mode (u8, QuantMode)
//           family payload (Regressor::save)
//
// Version-1 bodies are byte-identical to pre-quantization archives: every
// matrix is framed as rows/cols plus a length-prefixed fp64 vector.
// Version-2 bodies store matrices as tagged quantized blocks
// (util/quantize.hpp) — fp32, fp16, or per-column-affine int8, with
// per-block fallback to wider encodings when values would not survive.
//
// load_model_file dispatches on the persisted type tag through the
// ModelRegistry, so trained models of every family — CPR, CPR-online, the
// Tucker model, and the whole baseline zoo (wrapped in their feature
// transform) — can be shipped to schedulers/autotuners and reloaded without
// the training data. Files written by the pre-registry CPR-only format
// (magic "CPRMODL1") are still readable.

#include <string>
#include <vector>

#include "common/regressor.hpp"

namespace cpr::core {

/// Extension every on-disk archive uses; `<name>.cprm` under a model
/// directory is servable as model `<name>` (serve/model_store).
inline constexpr const char* kModelFileExtension = ".cprm";

/// Writes a fitted model to `path` (overwrites). `quant_mode` selects the
/// matrix payload encoding: F64 writes a version-1 archive byte-identical
/// to the pre-quantization format; any other mode writes a version-2
/// archive with tagged quantized blocks. Throws CheckError on I/O failure,
/// an unfitted model, or a family without serialization support.
void save_model_file(const common::Regressor& model, const std::string& path,
                     QuantMode quant_mode = QuantMode::F64);

/// Full on-disk archive size (header + body) `model` would occupy at
/// `quant_mode`, computed without writing a file — the Fig 7 model_bytes
/// axis for quantized encodings.
std::size_t model_archive_bytes(const common::Regressor& model, QuantMode quant_mode);

/// Loads a model written by save_model_file (either archive generation).
/// Throws CheckError on missing file, bad magic, unknown type tag,
/// unsupported version, or a truncated/corrupt payload.
common::RegressorPtr load_model_file(const std::string& path);

/// Archive path for model `name` under `directory` (no existence check).
/// `name` must be a bare model name — path separators and ".." are rejected
/// so serving frontends cannot be walked out of their model directory.
std::string model_file_path(const std::string& directory, const std::string& name);

/// Model names (stem of every `*.cprm` entry) in `directory`, sorted.
/// Throws CheckError when the directory cannot be read.
std::vector<std::string> list_model_archives(const std::string& directory);

/// Reads only the archive header of `path` and returns the persisted type
/// tag ("cpr", "rf", "logspace", ...) without constructing the model —
/// cheap inventory checks for serving frontends. Legacy CPRMODL1 files
/// report "cpr". Throws CheckError on a missing/foreign file.
std::string peek_model_type(const std::string& path);

}  // namespace cpr::core
