#pragma once
// File persistence for fitted CPR models: a small magic/version header
// followed by the model's binary archive, so trained models can be shipped
// to schedulers/autotuners and reloaded without the training data.

#include <string>

#include "core/cpr_model.hpp"

namespace cpr::core {

/// Writes a fitted model to `path` (overwrites). Throws CheckError on I/O
/// failure or unfitted model.
void save_model_file(const CprModel& model, const std::string& path);

/// Loads a model written by save_model_file. Throws CheckError on missing
/// file, bad magic, or unsupported version.
CprModel load_model_file(const std::string& path);

}  // namespace cpr::core
