#include "baselines/mars.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "linalg/blas.hpp"
#include "linalg/cholesky.hpp"
#include "linalg/qr.hpp"
#include "util/log.hpp"
#include "util/rng.hpp"

namespace cpr::baselines {

double Mars::BasisFunction::evaluate(const grid::Config& x) const {
  double product = 1.0;
  for (const auto& h : hinges) {
    const double v = static_cast<double>(h.sign) * (x[h.dim] - h.knot);
    if (v <= 0.0) return 0.0;
    product *= v;
  }
  return product;
}

bool Mars::BasisFunction::uses_dim(std::size_t dim) const {
  for (const auto& h : hinges) {
    if (h.dim == dim) return true;
  }
  return false;
}

namespace {

using linalg::Matrix;
using linalg::Vector;

/// Column of basis-function values over a set of rows.
Vector basis_column(const Mars::BasisFunction& basis, const common::Dataset& data,
                    const std::vector<std::size_t>& rows) {
  Vector column(rows.size());
  for (std::size_t k = 0; k < rows.size(); ++k) {
    column[k] = basis.evaluate(data.config(rows[k]));
  }
  return column;
}

/// Least-squares fit of `columns` (as a design matrix) to y over `rows`;
/// returns (coefficients, rss). Ridge-stabilized normal equations.
std::pair<Vector, double> fit_columns(const std::vector<Vector>& columns,
                                      const common::Dataset& data,
                                      const std::vector<std::size_t>& rows) {
  const std::size_t p = columns.size(), n = rows.size();
  Matrix gram(p, p, 0.0);
  Vector rhs(p, 0.0);
  for (std::size_t a = 0; a < p; ++a) {
    for (std::size_t b = a; b < p; ++b) {
      gram(a, b) = linalg::dot(columns[a], columns[b]);
      gram(b, a) = gram(a, b);
    }
    double dot_y = 0.0;
    for (std::size_t k = 0; k < n; ++k) dot_y += columns[a][k] * data.y[rows[k]];
    rhs[a] = dot_y;
  }
  for (std::size_t a = 0; a < p; ++a) gram(a, a) += 1e-10 * (gram(a, a) + 1.0);
  auto solution = linalg::solve_spd(gram, rhs);
  if (!solution.has_value()) {
    return {Vector(p, 0.0), std::numeric_limits<double>::infinity()};
  }
  double rss = 0.0;
  for (std::size_t k = 0; k < n; ++k) {
    double prediction = 0.0;
    for (std::size_t a = 0; a < p; ++a) prediction += (*solution)[a] * columns[a][k];
    const double residual = data.y[rows[k]] - prediction;
    rss += residual * residual;
  }
  return {std::move(*solution), rss};
}

/// Friedman's generalized cross-validation score.
double gcv(double rss, std::size_t n, std::size_t terms, double penalty) {
  const double c = static_cast<double>(terms) +
                   penalty * 0.5 * static_cast<double>(terms > 0 ? terms - 1 : 0);
  const double denom = 1.0 - c / static_cast<double>(n);
  if (denom <= 0.0) return std::numeric_limits<double>::infinity();
  return (rss / static_cast<double>(n)) / (denom * denom);
}

}  // namespace

void Mars::fit(const common::Dataset& train) {
  CPR_CHECK_MSG(train.size() >= 2, "MARS needs at least two observations");
  const std::size_t n = train.size();
  const std::size_t d = train.dimensions();
  dims_ = d;
  Rng rng(options_.seed);

  // Knot candidates: quantiles of the observed values per dimension.
  std::vector<std::vector<double>> knots(d);
  for (std::size_t j = 0; j < d; ++j) {
    std::vector<double> values(n);
    for (std::size_t i = 0; i < n; ++i) values[i] = train.x(i, j);
    std::sort(values.begin(), values.end());
    values.erase(std::unique(values.begin(), values.end()), values.end());
    if (values.size() <= 1) continue;  // constant feature: no knots
    const std::size_t count = std::min(options_.knots_per_dim, values.size() - 1);
    for (std::size_t q = 0; q < count; ++q) {
      // Interior quantiles (skip the extremes so hinges split the data).
      const double frac = static_cast<double>(q + 1) / static_cast<double>(count + 1);
      knots[j].push_back(values[static_cast<std::size_t>(frac * (values.size() - 1))]);
    }
    std::sort(knots[j].begin(), knots[j].end());
    knots[j].erase(std::unique(knots[j].begin(), knots[j].end()), knots[j].end());
  }

  // Scoring subsample (forward-pass candidate search only).
  std::vector<std::size_t> all_rows(n);
  for (std::size_t i = 0; i < n; ++i) all_rows[i] = i;
  std::vector<std::size_t> score_rows = all_rows;
  if (n > options_.score_subsample) {
    score_rows = rng.sample_without_replacement(n, options_.score_subsample);
    std::sort(score_rows.begin(), score_rows.end());
  }

  // Forward pass.
  basis_.clear();
  basis_.push_back(BasisFunction{});  // intercept
  std::vector<Vector> score_columns{basis_column(basis_[0], train, score_rows)};
  double current_rss = fit_columns(score_columns, train, score_rows).second;

  while (basis_.size() + 2 <= options_.max_terms) {
    double best_rss = current_rss;
    std::size_t best_parent = 0, best_dim = 0;
    double best_knot = 0.0;
    bool found = false;

    for (std::size_t parent = 0; parent < basis_.size(); ++parent) {
      if (basis_[parent].degree() >= static_cast<std::size_t>(options_.max_degree)) continue;
      for (std::size_t j = 0; j < d; ++j) {
        if (basis_[parent].uses_dim(j)) continue;
        for (const double c : knots[j]) {
          auto candidate = score_columns;
          BasisFunction plus = basis_[parent], minus = basis_[parent];
          plus.hinges.push_back(Hinge{j, c, +1});
          minus.hinges.push_back(Hinge{j, c, -1});
          candidate.push_back(basis_column(plus, train, score_rows));
          candidate.push_back(basis_column(minus, train, score_rows));
          const double rss = fit_columns(candidate, train, score_rows).second;
          if (rss < best_rss - options_.min_rss_decrease) {
            best_rss = rss;
            best_parent = parent;
            best_dim = j;
            best_knot = c;
            found = true;
          }
        }
      }
    }
    if (!found) break;

    BasisFunction plus = basis_[best_parent], minus = basis_[best_parent];
    plus.hinges.push_back(Hinge{best_dim, best_knot, +1});
    minus.hinges.push_back(Hinge{best_dim, best_knot, -1});
    basis_.push_back(plus);
    basis_.push_back(minus);
    score_columns.push_back(basis_column(plus, train, score_rows));
    score_columns.push_back(basis_column(minus, train, score_rows));
    current_rss = best_rss;
    CPR_LOG_DEBUG("MARS forward: " << basis_.size() << " terms, subsample RSS "
                                   << current_rss);
  }

  // Backward pruning by GCV on the full data.
  std::vector<Vector> full_columns;
  full_columns.reserve(basis_.size());
  for (const auto& b : basis_) full_columns.push_back(basis_column(b, train, all_rows));

  auto [coefficients, rss] = fit_columns(full_columns, train, all_rows);
  std::vector<BasisFunction> best_basis = basis_;
  Vector best_coefficients = coefficients;
  double best_gcv = gcv(rss, n, basis_.size(), options_.gcv_penalty);

  std::vector<BasisFunction> working_basis = basis_;
  std::vector<Vector> working_columns = full_columns;
  while (working_basis.size() > 1) {
    // Remove the term (never the intercept) whose removal gives lowest GCV.
    double round_best_gcv = std::numeric_limits<double>::infinity();
    std::size_t drop = 0;
    Vector round_best_coefficients;
    for (std::size_t t = 1; t < working_basis.size(); ++t) {
      std::vector<Vector> reduced;
      reduced.reserve(working_columns.size() - 1);
      for (std::size_t s = 0; s < working_columns.size(); ++s) {
        if (s != t) reduced.push_back(working_columns[s]);
      }
      auto [cand_coeffs, cand_rss] = fit_columns(reduced, train, all_rows);
      const double cand_gcv = gcv(cand_rss, n, reduced.size(), options_.gcv_penalty);
      if (cand_gcv < round_best_gcv) {
        round_best_gcv = cand_gcv;
        drop = t;
        round_best_coefficients = std::move(cand_coeffs);
      }
    }
    working_basis.erase(working_basis.begin() + static_cast<std::ptrdiff_t>(drop));
    working_columns.erase(working_columns.begin() + static_cast<std::ptrdiff_t>(drop));
    if (round_best_gcv <= best_gcv) {
      best_gcv = round_best_gcv;
      best_basis = working_basis;
      best_coefficients = std::move(round_best_coefficients);
    }
  }

  basis_ = std::move(best_basis);
  coefficients_.assign(best_coefficients.begin(), best_coefficients.end());
}

double Mars::predict(const grid::Config& x) const {
  CPR_CHECK_MSG(!basis_.empty(), "MARS model not fitted");
  double prediction = 0.0;
  for (std::size_t t = 0; t < basis_.size(); ++t) {
    prediction += coefficients_[t] * basis_[t].evaluate(x);
  }
  return prediction;
}

std::size_t Mars::model_size_bytes() const {
  // Per basis function: hinge list (dim, knot, sign) + coefficient.
  std::size_t bytes = sizeof(std::uint64_t);  // term count
  for (const auto& b : basis_) {
    bytes += sizeof(std::uint64_t);  // hinge count
    bytes += b.hinges.size() * (sizeof(std::uint64_t) + sizeof(double) + sizeof(std::int8_t));
    bytes += sizeof(double);  // coefficient
  }
  return bytes;
}

void Mars::save(SerialSink& sink) const {
  CPR_CHECK_MSG(!basis_.empty(), "Mars::save before fit");
  sink.write_pod(static_cast<std::int64_t>(options_.max_degree));
  sink.write_u64(options_.max_terms);
  sink.write_u64(options_.knots_per_dim);
  sink.write_u64(options_.score_subsample);
  sink.write_f64(options_.gcv_penalty);
  sink.write_f64(options_.min_rss_decrease);
  sink.write_u64(options_.seed);
  sink.write_u64(dims_);
  sink.write_u64(basis_.size());
  for (const BasisFunction& b : basis_) {
    sink.write_u64(b.hinges.size());
    for (const Hinge& hinge : b.hinges) {
      sink.write_u64(hinge.dim);
      sink.write_f64(hinge.knot);
      sink.write_pod(static_cast<std::int8_t>(hinge.sign));
    }
  }
  sink.write_doubles(coefficients_);
}

Mars Mars::deserialize(BufferSource& source) {
  MarsOptions options;
  options.max_degree = static_cast<int>(source.read_pod<std::int64_t>());
  options.max_terms = source.read_u64();
  options.knots_per_dim = source.read_u64();
  options.score_subsample = source.read_u64();
  options.gcv_penalty = source.read_f64();
  options.min_rss_decrease = source.read_f64();
  options.seed = source.read_u64();
  Mars model(options);
  model.dims_ = source.read_u64();
  model.basis_.resize(source.read_count());
  for (BasisFunction& b : model.basis_) {
    b.hinges.resize(source.read_count());
    for (Hinge& hinge : b.hinges) {
      hinge.dim = source.read_u64();
      hinge.knot = source.read_f64();
      hinge.sign = source.read_pod<std::int8_t>();
      CPR_CHECK_MSG(hinge.dim < model.dims_ && (hinge.sign == 1 || hinge.sign == -1),
                    "MARS archive has a malformed hinge");
    }
  }
  model.coefficients_ = source.read_doubles();
  CPR_CHECK(model.coefficients_.size() == model.basis_.size());
  return model;
}

}  // namespace cpr::baselines
