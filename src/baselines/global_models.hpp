#pragma once
// Global (non-piecewise) models — Section 3.1.
//
// OlsRegressor: ordinary/ridge least squares on a polynomial expansion of
// the (already log-transformed, per the harness) features — the classic
// first-generation empirical model.
//
// PmnfRegressor: performance-model-normal-form search (Calotoiu et al.,
// Eq. 1): m(x) = sum_r alpha_r * prod_j x_j^{v_{r,j}} log^{w_{r,j}}(x_j).
// Candidate single-parameter terms over user exponent sets are grown
// greedily (with optional pairwise products) by OLS refits.

#include "common/regressor.hpp"
#include "linalg/matrix.hpp"

namespace cpr::baselines {

struct OlsOptions {
  int degree = 2;             ///< polynomial degree of the expansion
  bool interactions = true;   ///< include pairwise product terms
  double ridge = 1e-8;
};

class OlsRegressor final : public common::Regressor {
 public:
  explicit OlsRegressor(OlsOptions options = {}) : options_(options) {}

  std::string name() const override { return "OLS"; }
  std::string type_tag() const override { return "ols"; }
  std::size_t input_dims() const override { return dims_; }
  void fit(const common::Dataset& train) override;
  double predict(const grid::Config& x) const override;
  std::size_t model_size_bytes() const override;
  void save(SerialSink& sink) const override;
  static OlsRegressor deserialize(BufferSource& source);

 private:
  std::vector<double> expand(const grid::Config& x) const;

  OlsOptions options_;
  std::size_t dims_ = 0;
  std::vector<double> coefficients_;
};

struct PmnfOptions {
  std::vector<double> exponents = {0.0, 0.5, 1.0, 1.5, 2.0, 3.0};  ///< v set
  std::vector<int> log_exponents = {0, 1, 2};                      ///< w set
  std::size_t max_terms = 5;   ///< R of Eq. 1 (greedy growth)
  double ridge = 1e-8;
};

class PmnfRegressor final : public common::Regressor {
 public:
  explicit PmnfRegressor(PmnfOptions options = {}) : options_(std::move(options)) {}

  std::string name() const override { return "PMNF"; }
  std::string type_tag() const override { return "pmnf"; }
  std::size_t input_dims() const override { return dims_; }
  void fit(const common::Dataset& train) override;
  double predict(const grid::Config& x) const override;
  std::size_t model_size_bytes() const override;
  void save(SerialSink& sink) const override;
  static PmnfRegressor deserialize(BufferSource& source);

  /// One term: prod over involved parameters of x^v log^w(x).
  struct Term {
    struct Factor {
      std::size_t dim;
      double exponent;
      int log_exponent;
    };
    std::vector<Factor> factors;  ///< empty = constant term
    double evaluate(const grid::Config& x) const;
  };

  const std::vector<Term>& terms() const { return terms_; }

 private:
  PmnfOptions options_;
  std::size_t dims_ = 0;
  std::vector<Term> terms_;
  std::vector<double> coefficients_;
};

}  // namespace cpr::baselines
