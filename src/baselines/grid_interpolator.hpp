#pragma once
// Uncompressed regular-grid multilinear interpolation (Section 3.2).
//
// The straw-man CPR compresses: every grid cell stores its observed mean
// log execution time explicitly, unobserved cells fall back to the nearest
// observed ancestor mean (global mean at worst), and inference uses the
// same Eq.-5 interpolation as CPR. Its accuracy matches CPR when the grid
// is densely observed — but the model size is the *full* cell count
// (O(2^{nd}) in the paper's notation), which is exactly the scaling CPR's
// rank-R factorization avoids (O(2^n d R)). Included so Figure-7-style
// comparisons can show the compression trade-off directly.

#include <unordered_map>

#include "common/regressor.hpp"
#include "grid/discretization.hpp"

namespace cpr::baselines {

class GridInterpolator final : public common::Regressor {
 public:
  explicit GridInterpolator(grid::Discretization discretization)
      : discretization_(std::move(discretization)) {}

  std::string name() const override { return "GRID"; }
  std::string type_tag() const override { return "grid"; }
  std::size_t input_dims() const override { return discretization_.order(); }
  void fit(const common::Dataset& train) override;
  double predict(const grid::Config& x) const override;

  /// Full dense grid of doubles — the uncompressed footprint.
  std::size_t model_size_bytes() const override;

  void save(SerialSink& sink) const override;
  static GridInterpolator deserialize(BufferSource& source);

  double observed_density() const { return density_; }
  const grid::Discretization& discretization() const { return discretization_; }

 private:
  grid::Discretization discretization_;
  std::vector<double> cell_log_means_;  ///< dense, one per grid cell
  double global_log_mean_ = 0.0;
  double density_ = 0.0;
  bool fitted_ = false;
};

}  // namespace cpr::baselines
