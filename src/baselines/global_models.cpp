#include "baselines/global_models.hpp"

#include <cmath>
#include <limits>

#include "linalg/qr.hpp"

namespace cpr::baselines {

std::vector<double> OlsRegressor::expand(const grid::Config& x) const {
  std::vector<double> features{1.0};
  for (std::size_t j = 0; j < x.size(); ++j) {
    double power = 1.0;
    for (int p = 1; p <= options_.degree; ++p) {
      power *= x[j];
      features.push_back(power);
    }
  }
  if (options_.interactions) {
    for (std::size_t j = 0; j < x.size(); ++j) {
      for (std::size_t k = j + 1; k < x.size(); ++k) {
        features.push_back(x[j] * x[k]);
      }
    }
  }
  return features;
}

void OlsRegressor::fit(const common::Dataset& train) {
  CPR_CHECK_MSG(train.size() > 0, "empty training set");
  dims_ = train.dimensions();
  const auto probe = expand(train.config(0));
  const std::size_t p = probe.size();
  CPR_CHECK_MSG(train.size() >= p,
                "OLS needs at least as many samples (" << train.size()
                                                       << ") as predictors (" << p << ")");
  linalg::Matrix design(train.size(), p);
  for (std::size_t i = 0; i < train.size(); ++i) {
    const auto row = expand(train.config(i));
    for (std::size_t c = 0; c < p; ++c) design(i, c) = row[c];
  }
  coefficients_ = linalg::solve_ridge(design, train.y, options_.ridge);
}

double OlsRegressor::predict(const grid::Config& x) const {
  CPR_CHECK_MSG(!coefficients_.empty(), "OLS model not fitted");
  const auto features = expand(x);
  double prediction = 0.0;
  for (std::size_t c = 0; c < features.size(); ++c) {
    prediction += coefficients_[c] * features[c];
  }
  return prediction;
}

std::size_t OlsRegressor::model_size_bytes() const {
  return coefficients_.size() * sizeof(double) + sizeof(std::uint64_t);
}

void OlsRegressor::save(SerialSink& sink) const {
  CPR_CHECK_MSG(!coefficients_.empty(), "OlsRegressor::save before fit");
  // degree/interactions shape the expand() basis at inference time.
  sink.write_pod(static_cast<std::int64_t>(options_.degree));
  sink.write_pod(static_cast<std::uint8_t>(options_.interactions ? 1 : 0));
  sink.write_f64(options_.ridge);
  sink.write_u64(dims_);
  sink.write_doubles(coefficients_);
}

OlsRegressor OlsRegressor::deserialize(BufferSource& source) {
  OlsOptions options;
  options.degree = static_cast<int>(source.read_pod<std::int64_t>());
  options.interactions = source.read_pod<std::uint8_t>() != 0;
  options.ridge = source.read_f64();
  OlsRegressor model(options);
  model.dims_ = source.read_u64();
  model.coefficients_ = source.read_doubles();
  return model;
}

double PmnfRegressor::Term::evaluate(const grid::Config& x) const {
  double product = 1.0;
  for (const auto& f : factors) {
    const double v = std::max(x[f.dim], 1e-12);  // PMNF terms need positive inputs
    if (f.exponent != 0.0) product *= std::pow(v, f.exponent);
    if (f.log_exponent != 0) product *= std::pow(std::log(v), f.log_exponent);
  }
  return product;
}

void PmnfRegressor::fit(const common::Dataset& train) {
  CPR_CHECK_MSG(train.size() > 1, "PMNF needs at least two samples");
  const std::size_t d = train.dimensions();
  dims_ = d;

  // Candidate single-parameter terms over the exponent sets.
  std::vector<Term> candidates;
  for (std::size_t j = 0; j < d; ++j) {
    for (const double v : options_.exponents) {
      for (const int w : options_.log_exponents) {
        if (v == 0.0 && w == 0) continue;  // that's the constant term
        candidates.push_back(Term{{Term::Factor{j, v, w}}});
      }
    }
  }

  terms_.clear();
  terms_.push_back(Term{});  // constant
  std::vector<std::vector<double>> columns{std::vector<double>(train.size(), 1.0)};

  const auto refit_rss = [&](const std::vector<std::vector<double>>& cols,
                             std::vector<double>* coefficients) {
    linalg::Matrix design(train.size(), cols.size());
    for (std::size_t i = 0; i < train.size(); ++i) {
      for (std::size_t c = 0; c < cols.size(); ++c) design(i, c) = cols[c][i];
    }
    const auto beta = linalg::solve_ridge(design, train.y, options_.ridge);
    double rss = 0.0;
    for (std::size_t i = 0; i < train.size(); ++i) {
      double prediction = 0.0;
      for (std::size_t c = 0; c < cols.size(); ++c) prediction += beta[c] * cols[c][i];
      const double r = train.y[i] - prediction;
      rss += r * r;
    }
    if (coefficients != nullptr) *coefficients = beta;
    return rss;
  };

  double current_rss = refit_rss(columns, &coefficients_);
  while (terms_.size() < options_.max_terms + 1) {  // +1 for the constant
    double best_rss = current_rss;
    std::size_t best_candidate = candidates.size();
    for (std::size_t c = 0; c < candidates.size(); ++c) {
      std::vector<double> column(train.size());
      for (std::size_t i = 0; i < train.size(); ++i) {
        column[i] = candidates[c].evaluate(train.config(i));
      }
      columns.push_back(std::move(column));
      const double rss = refit_rss(columns, nullptr);
      columns.pop_back();
      if (rss < best_rss * (1.0 - 1e-6)) {
        best_rss = rss;
        best_candidate = c;
      }
    }
    if (best_candidate == candidates.size()) break;
    terms_.push_back(candidates[best_candidate]);
    std::vector<double> column(train.size());
    for (std::size_t i = 0; i < train.size(); ++i) {
      column[i] = candidates[best_candidate].evaluate(train.config(i));
    }
    columns.push_back(std::move(column));
    current_rss = refit_rss(columns, &coefficients_);
  }
}

double PmnfRegressor::predict(const grid::Config& x) const {
  CPR_CHECK_MSG(!terms_.empty(), "PMNF model not fitted");
  double prediction = 0.0;
  for (std::size_t t = 0; t < terms_.size(); ++t) {
    prediction += coefficients_[t] * terms_[t].evaluate(x);
  }
  return prediction;
}

std::size_t PmnfRegressor::model_size_bytes() const {
  std::size_t bytes = sizeof(std::uint64_t);
  for (const auto& term : terms_) {
    bytes += sizeof(std::uint64_t) +
             term.factors.size() * (sizeof(std::uint64_t) + sizeof(double) + sizeof(int)) +
             sizeof(double);
  }
  return bytes;
}

void PmnfRegressor::save(SerialSink& sink) const {
  CPR_CHECK_MSG(!terms_.empty(), "PmnfRegressor::save before fit");
  sink.write_doubles(options_.exponents);
  sink.write_u64(options_.log_exponents.size());
  for (const int w : options_.log_exponents) {
    sink.write_pod(static_cast<std::int64_t>(w));
  }
  sink.write_u64(options_.max_terms);
  sink.write_f64(options_.ridge);
  sink.write_u64(dims_);
  sink.write_u64(terms_.size());
  for (const Term& term : terms_) {
    sink.write_u64(term.factors.size());
    for (const Term::Factor& factor : term.factors) {
      sink.write_u64(factor.dim);
      sink.write_f64(factor.exponent);
      sink.write_pod(static_cast<std::int64_t>(factor.log_exponent));
    }
  }
  sink.write_doubles(coefficients_);
}

PmnfRegressor PmnfRegressor::deserialize(BufferSource& source) {
  PmnfOptions options;
  options.exponents = source.read_doubles();
  options.log_exponents.resize(source.read_count());
  for (int& w : options.log_exponents) {
    w = static_cast<int>(source.read_pod<std::int64_t>());
  }
  options.max_terms = source.read_u64();
  options.ridge = source.read_f64();
  PmnfRegressor model(std::move(options));
  model.dims_ = source.read_u64();
  model.terms_.resize(source.read_count());
  for (Term& term : model.terms_) {
    term.factors.resize(source.read_count());
    for (Term::Factor& factor : term.factors) {
      factor.dim = source.read_u64();
      factor.exponent = source.read_f64();
      factor.log_exponent = static_cast<int>(source.read_pod<std::int64_t>());
      CPR_CHECK_MSG(factor.dim < model.dims_, "PMNF archive has out-of-range dims");
    }
  }
  model.coefficients_ = source.read_doubles();
  CPR_CHECK(model.coefficients_.size() == model.terms_.size());
  return model;
}

}  // namespace cpr::baselines
