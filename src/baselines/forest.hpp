#pragma once
// Ensemble tree regressors (Section 3.5): random forests (bootstrap + best
// splits on feature subsets), extremely-randomized trees (full sample +
// random thresholds), and least-squares gradient boosting (sequential trees
// on residuals).

#include "baselines/decision_tree.hpp"

namespace cpr::baselines {

struct ForestOptions {
  std::size_t n_trees = 16;   ///< paper sweeps 1..64
  int max_depth = 8;          ///< paper sweeps 2..16
  std::size_t min_samples_leaf = 1;
  std::uint64_t seed = 42;
};

/// Random forest: bootstrap aggregation of best-split trees, each split
/// considering a random sqrt(d)-sized feature subset.
class RandomForestRegressor final : public common::Regressor {
 public:
  explicit RandomForestRegressor(ForestOptions options = {}) : options_(options) {}

  std::string name() const override { return "RF"; }
  void fit(const common::Dataset& train) override;
  double predict(const grid::Config& x) const override;
  std::size_t model_size_bytes() const override;

 private:
  ForestOptions options_;
  std::vector<DecisionTree> trees_;
};

/// Extremely-randomized trees: full training sample, random split
/// thresholds — "among the most accurate methods for performance modeling"
/// per the paper's survey.
class ExtraTreesRegressor final : public common::Regressor {
 public:
  explicit ExtraTreesRegressor(ForestOptions options = {}) : options_(options) {}

  std::string name() const override { return "ET"; }
  void fit(const common::Dataset& train) override;
  double predict(const grid::Config& x) const override;
  std::size_t model_size_bytes() const override;

 private:
  ForestOptions options_;
  std::vector<DecisionTree> trees_;
};

struct BoostingOptions : ForestOptions {
  double learning_rate = 0.1;
  BoostingOptions() { max_depth = 4; }
};

/// Gradient boosting with least-squares loss: each tree fits the current
/// residuals (= negative gradient of squared error).
class GradientBoostingRegressor final : public common::Regressor {
 public:
  explicit GradientBoostingRegressor(BoostingOptions options = {}) : options_(options) {}

  std::string name() const override { return "GB"; }
  void fit(const common::Dataset& train) override;
  double predict(const grid::Config& x) const override;
  std::size_t model_size_bytes() const override;

 private:
  BoostingOptions options_;
  double base_prediction_ = 0.0;
  std::vector<DecisionTree> trees_;
};

}  // namespace cpr::baselines
