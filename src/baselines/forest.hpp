#pragma once
// Ensemble tree regressors (Section 3.5): random forests (bootstrap + best
// splits on feature subsets), extremely-randomized trees (full sample +
// random thresholds), and least-squares gradient boosting (sequential trees
// on residuals).

#include "baselines/decision_tree.hpp"

namespace cpr::baselines {

struct ForestOptions {
  std::size_t n_trees = 16;   ///< paper sweeps 1..64
  int max_depth = 8;          ///< paper sweeps 2..16
  std::size_t min_samples_leaf = 1;
  std::uint64_t seed = 42;
};

/// Random forest: bootstrap aggregation of best-split trees, each split
/// considering a random sqrt(d)-sized feature subset.
class RandomForestRegressor final : public common::Regressor {
 public:
  explicit RandomForestRegressor(ForestOptions options = {}) : options_(options) {}

  std::string name() const override { return "RF"; }
  std::string type_tag() const override { return "rf"; }
  std::size_t input_dims() const override { return dims_; }
  void fit(const common::Dataset& train) override;
  double predict(const grid::Config& x) const override;
  std::size_t model_size_bytes() const override;
  void save(SerialSink& sink) const override;
  static RandomForestRegressor deserialize(BufferSource& source);

 private:
  ForestOptions options_;
  std::size_t dims_ = 0;
  std::vector<DecisionTree> trees_;
};

/// Extremely-randomized trees: full training sample, random split
/// thresholds — "among the most accurate methods for performance modeling"
/// per the paper's survey.
class ExtraTreesRegressor final : public common::Regressor {
 public:
  explicit ExtraTreesRegressor(ForestOptions options = {}) : options_(options) {}

  std::string name() const override { return "ET"; }
  std::string type_tag() const override { return "et"; }
  std::size_t input_dims() const override { return dims_; }
  void fit(const common::Dataset& train) override;
  double predict(const grid::Config& x) const override;
  std::size_t model_size_bytes() const override;
  void save(SerialSink& sink) const override;
  static ExtraTreesRegressor deserialize(BufferSource& source);

 private:
  ForestOptions options_;
  std::size_t dims_ = 0;
  std::vector<DecisionTree> trees_;
};

struct BoostingOptions : ForestOptions {
  double learning_rate = 0.1;
  BoostingOptions() { max_depth = 4; }
};

/// Gradient boosting with least-squares loss: each tree fits the current
/// residuals (= negative gradient of squared error).
class GradientBoostingRegressor final : public common::Regressor {
 public:
  explicit GradientBoostingRegressor(BoostingOptions options = {}) : options_(options) {}

  std::string name() const override { return "GB"; }
  std::string type_tag() const override { return "gb"; }
  std::size_t input_dims() const override { return dims_; }
  void fit(const common::Dataset& train) override;
  double predict(const grid::Config& x) const override;
  std::size_t model_size_bytes() const override;
  void save(SerialSink& sink) const override;
  static GradientBoostingRegressor deserialize(BufferSource& source);

 private:
  BoostingOptions options_;
  std::size_t dims_ = 0;
  double base_prediction_ = 0.0;
  std::vector<DecisionTree> trees_;
};

}  // namespace cpr::baselines
