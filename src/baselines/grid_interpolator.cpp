#include "baselines/grid_interpolator.hpp"

#include <algorithm>
#include <cmath>

#include "tensor/multi_index.hpp"

namespace cpr::baselines {

void GridInterpolator::fit(const common::Dataset& train) {
  CPR_CHECK_MSG(train.size() > 0, "empty training set");
  CPR_CHECK_MSG(train.dimensions() == discretization_.order(),
                "dataset dimensionality does not match the discretization");

  const auto total_cells = discretization_.cell_count();
  std::vector<double> sums(total_cells, 0.0);
  std::vector<std::size_t> counts(total_cells, 0);
  double global_sum = 0.0;
  for (std::size_t i = 0; i < train.size(); ++i) {
    CPR_CHECK_MSG(train.y[i] > 0.0, "execution times must be positive");
    const auto flat =
        tensor::linearize(discretization_.cell_of(train.config(i)), discretization_.dims());
    const double log_value = std::log(train.y[i]);
    sums[flat] += log_value;
    counts[flat] += 1;
    global_sum += log_value;
  }
  global_log_mean_ = global_sum / static_cast<double>(train.size());

  cell_log_means_.assign(total_cells, global_log_mean_);
  std::size_t observed = 0;
  for (std::size_t c = 0; c < total_cells; ++c) {
    if (counts[c] > 0) {
      cell_log_means_[c] = sums[c] / static_cast<double>(counts[c]);
      ++observed;
    }
  }
  density_ = static_cast<double>(observed) / static_cast<double>(total_cells);
  fitted_ = true;
}

double GridInterpolator::predict(const grid::Config& x) const {
  CPR_CHECK_MSG(fitted_, "GridInterpolator::predict before fit");
  grid::Config clamped = x;
  for (std::size_t j = 0; j < clamped.size(); ++j) {
    const auto& p = discretization_.params()[j];
    if (p.is_numerical()) clamped[j] = std::clamp(clamped[j], p.lo, p.hi);
  }
  const double log_prediction = discretization_.interpolate(
      clamped, [this](const tensor::Index& idx) {
        return cell_log_means_[tensor::linearize(idx, discretization_.dims())];
      });
  return std::exp(log_prediction);
}

std::size_t GridInterpolator::model_size_bytes() const {
  // The whole grid must be persisted — the footprint CPR compresses away.
  return cell_log_means_.size() * sizeof(double) + sizeof(double) +
         discretization_.order() * 2 * sizeof(double);
}

void GridInterpolator::save(SerialSink& sink) const {
  CPR_CHECK_MSG(fitted_, "GridInterpolator::save before fit");
  discretization_.serialize(sink);
  sink.write_doubles(cell_log_means_);
  sink.write_f64(global_log_mean_);
  sink.write_f64(density_);
}

GridInterpolator GridInterpolator::deserialize(BufferSource& source) {
  GridInterpolator model(grid::Discretization::deserialize(source));
  model.cell_log_means_ = source.read_doubles();
  CPR_CHECK(model.cell_log_means_.size() == model.discretization_.cell_count());
  model.global_log_mean_ = source.read_f64();
  model.density_ = source.read_f64();
  model.fitted_ = true;
  return model;
}

}  // namespace cpr::baselines
