#include "baselines/svr.hpp"

#include <algorithm>
#include <cmath>

#include "util/rng.hpp"

namespace cpr::baselines {

namespace {
double sq_dist(const double* a, const double* b, std::size_t d) {
  double sum = 0.0;
  for (std::size_t j = 0; j < d; ++j) {
    const double diff = a[j] - b[j];
    sum += diff * diff;
  }
  return sum;
}
}  // namespace

double Svr::kernel(const double* a, const double* b, std::size_t d) const {
  if (options_.kernel == SvrKernel::Rbf) {
    return std::exp(-0.5 * sq_dist(a, b, d) / (length_scale_ * length_scale_));
  }
  double dot = 1.0;
  for (std::size_t j = 0; j < d; ++j) dot += a[j] * b[j];
  return std::pow(dot, options_.poly_degree);
}

void Svr::fit(const common::Dataset& train) {
  CPR_CHECK_MSG(train.size() > 0, "empty training set");
  const std::size_t d = train.dimensions();

  common::Dataset data = train;
  if (train.size() > options_.max_samples) {
    Rng rng(options_.seed);
    auto rows = rng.sample_without_replacement(train.size(), options_.max_samples);
    std::sort(rows.begin(), rows.end());
    data = train.subset(rows);
  }
  const std::size_t n = data.size();

  mean_.assign(d, 0.0);
  inv_std_.assign(d, 1.0);
  for (std::size_t j = 0; j < d; ++j) {
    double sum = 0.0, sum_sq = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
      sum += data.x(i, j);
      sum_sq += data.x(i, j) * data.x(i, j);
    }
    mean_[j] = sum / static_cast<double>(n);
    const double var =
        std::max(1e-12, sum_sq / static_cast<double>(n) - mean_[j] * mean_[j]);
    inv_std_[j] = 1.0 / std::sqrt(var);
  }
  support_ = linalg::Matrix(n, d);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < d; ++j) {
      support_(i, j) = (data.x(i, j) - mean_[j]) * inv_std_[j];
    }
  }

  // Median heuristic for the RBF scale.
  if (options_.kernel == SvrKernel::Rbf) {
    Rng rng(options_.seed + 1);
    std::vector<double> pair_distances;
    for (std::size_t p = 0; p < std::min<std::size_t>(2048, n * n); ++p) {
      const auto i = static_cast<std::size_t>(rng.uniform_int(0, static_cast<std::int64_t>(n) - 1));
      const auto k = static_cast<std::size_t>(rng.uniform_int(0, static_cast<std::int64_t>(n) - 1));
      if (i == k) continue;
      pair_distances.push_back(
          std::sqrt(sq_dist(support_.row_ptr(i), support_.row_ptr(k), d)));
    }
    if (!pair_distances.empty()) {
      std::nth_element(pair_distances.begin(),
                       pair_distances.begin() +
                           static_cast<std::ptrdiff_t>(pair_distances.size() / 2),
                       pair_distances.end());
      length_scale_ = std::max(1e-6, pair_distances[pair_distances.size() / 2]);
    }
  }

  // Precompute the augmented kernel K' = K + 1 (the constant absorbs the
  // bias term, removing the sum(beta) = 0 equality constraint).
  linalg::Matrix gram(n, n);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t k = i; k < n; ++k) {
      const double value = kernel(support_.row_ptr(i), support_.row_ptr(k), d) + 1.0;
      gram(i, k) = value;
      gram(k, i) = value;
    }
  }

  // Dual coordinate descent in beta = alpha - alpha*:
  //   maximize  -1/2 beta^T K' beta + y^T beta - epsilon ||beta||_1,
  //   s.t. |beta_i| <= C.
  // Each coordinate has the closed-form soft-threshold solution; f = K'beta
  // is maintained incrementally so one epoch costs O(n * #changed).
  beta_.assign(n, 0.0);
  std::vector<double> f(n, 0.0);
  for (int epoch = 0; epoch < options_.max_iters; ++epoch) {
    double max_change = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
      const double kii = gram(i, i);
      if (kii <= 0.0) continue;
      // Residual with coordinate i removed from the model.
      const double target = data.y[i] - (f[i] - kii * beta_[i]);
      double updated;
      if (target > options_.epsilon) {
        updated = (target - options_.epsilon) / kii;
      } else if (target < -options_.epsilon) {
        updated = (target + options_.epsilon) / kii;
      } else {
        updated = 0.0;
      }
      updated = std::clamp(updated, -options_.c, options_.c);
      const double delta = updated - beta_[i];
      if (delta == 0.0) continue;
      beta_[i] = updated;
      const double* gi = gram.row_ptr(i);
      for (std::size_t k = 0; k < n; ++k) f[k] += delta * gi[k];
      max_change = std::max(max_change, std::abs(delta));
    }
    if (max_change < 1e-8) break;
  }

  // The +1 kernel augmentation makes the bias sum(beta_i).
  bias_ = 0.0;
  for (const double b : beta_) bias_ += b;
}

double Svr::predict(const grid::Config& x) const {
  CPR_CHECK_MSG(!beta_.empty(), "SVR not fitted");
  const std::size_t d = support_.cols();
  std::vector<double> z(d);
  for (std::size_t j = 0; j < d; ++j) z[j] = (x[j] - mean_[j]) * inv_std_[j];
  double prediction = bias_;
  for (std::size_t i = 0; i < beta_.size(); ++i) {
    if (beta_[i] == 0.0) continue;
    prediction += beta_[i] * kernel(support_.row_ptr(i), z.data(), d);
  }
  return prediction;
}

std::size_t Svr::support_vector_count() const {
  std::size_t count = 0;
  for (const double b : beta_) count += b != 0.0;
  return count;
}

std::size_t Svr::model_size_bytes() const {
  // Support vectors with nonzero beta plus their coefficients and scalers.
  const std::size_t sv = support_vector_count();
  return sv * (support_.cols() + 1) * sizeof(double) +
         (mean_.size() * 2 + 2) * sizeof(double);
}

void Svr::save(SerialSink& sink) const {
  CPR_CHECK_MSG(!beta_.empty(), "Svr::save before fit");
  sink.write_pod(static_cast<std::uint8_t>(options_.kernel));
  sink.write_pod(static_cast<std::int64_t>(options_.poly_degree));
  sink.write_f64(options_.c);
  sink.write_f64(options_.epsilon);
  sink.write_pod(static_cast<std::int64_t>(options_.max_iters));
  sink.write_f64(options_.learning_rate);
  sink.write_u64(options_.max_samples);
  sink.write_u64(options_.seed);
  support_.serialize(sink);
  sink.write_doubles(beta_);
  sink.write_f64(bias_);
  sink.write_doubles(mean_);
  sink.write_doubles(inv_std_);
  sink.write_f64(length_scale_);
}

Svr Svr::deserialize(BufferSource& source) {
  SvrOptions options;
  const auto kernel_id = source.read_pod<std::uint8_t>();
  CPR_CHECK_MSG(kernel_id <= static_cast<std::uint8_t>(SvrKernel::Poly),
                "SVR archive has unknown kernel id");
  options.kernel = static_cast<SvrKernel>(kernel_id);
  options.poly_degree = static_cast<int>(source.read_pod<std::int64_t>());
  options.c = source.read_f64();
  options.epsilon = source.read_f64();
  options.max_iters = static_cast<int>(source.read_pod<std::int64_t>());
  options.learning_rate = source.read_f64();
  options.max_samples = source.read_u64();
  options.seed = source.read_u64();
  Svr model(options);
  model.support_ = linalg::Matrix::deserialize(source);
  model.beta_ = source.read_doubles();
  model.bias_ = source.read_f64();
  model.mean_ = source.read_doubles();
  model.inv_std_ = source.read_doubles();
  model.length_scale_ = source.read_f64();
  CPR_CHECK(model.beta_.size() == model.support_.rows() &&
            model.mean_.size() == model.support_.cols() &&
            model.inv_std_.size() == model.support_.cols());
  return model;
}

}  // namespace cpr::baselines
