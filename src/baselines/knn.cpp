#include "baselines/knn.hpp"

#include <algorithm>
#include <cmath>

namespace cpr::baselines {

void KnnRegressor::fit(const common::Dataset& train) {
  CPR_CHECK_MSG(train.size() > 0, "empty training set");
  train_ = train;
  const std::size_t d = train.dimensions();
  mean_.assign(d, 0.0);
  inv_std_.assign(d, 1.0);
  for (std::size_t j = 0; j < d; ++j) {
    double sum = 0.0, sum_sq = 0.0;
    for (std::size_t i = 0; i < train.size(); ++i) {
      sum += train.x(i, j);
      sum_sq += train.x(i, j) * train.x(i, j);
    }
    const double n = static_cast<double>(train.size());
    mean_[j] = sum / n;
    const double variance = std::max(0.0, sum_sq / n - mean_[j] * mean_[j]);
    inv_std_[j] = variance > 0.0 ? 1.0 / std::sqrt(variance) : 0.0;
  }
}

double KnnRegressor::predict(const grid::Config& x) const {
  CPR_CHECK_MSG(train_.size() > 0, "KNN model not fitted");
  const std::size_t k = std::min(options_.k, train_.size());
  // Partial selection of the k smallest squared distances.
  std::vector<std::pair<double, std::size_t>> distances(train_.size());
  for (std::size_t i = 0; i < train_.size(); ++i) {
    double dist_sq = 0.0;
    for (std::size_t j = 0; j < train_.dimensions(); ++j) {
      const double diff = (x[j] - train_.x(i, j)) * inv_std_[j];
      dist_sq += diff * diff;
    }
    distances[i] = {dist_sq, i};
  }
  std::nth_element(distances.begin(), distances.begin() + static_cast<std::ptrdiff_t>(k - 1),
                   distances.end());
  double weight_sum = 0.0, weighted_value = 0.0;
  for (std::size_t t = 0; t < k; ++t) {
    const auto [dist_sq, i] = distances[t];
    if (options_.distance_weighted) {
      if (dist_sq == 0.0) return train_.y[i];  // exact hit
      const double w = 1.0 / std::sqrt(dist_sq);
      weight_sum += w;
      weighted_value += w * train_.y[i];
    } else {
      weight_sum += 1.0;
      weighted_value += train_.y[i];
    }
  }
  return weighted_value / weight_sum;
}

std::size_t KnnRegressor::model_size_bytes() const {
  // The fitted model must persist the full training set plus scalers.
  return train_.size() * (train_.dimensions() + 1) * sizeof(double) +
         2 * mean_.size() * sizeof(double);
}

void KnnRegressor::save(SerialSink& sink) const {
  CPR_CHECK_MSG(train_.size() > 0, "KnnRegressor::save before fit");
  sink.write_u64(options_.k);
  sink.write_pod(static_cast<std::uint8_t>(options_.distance_weighted ? 1 : 0));
  train_.x.serialize(sink);
  sink.write_doubles(train_.y);
  sink.write_doubles(mean_);
  sink.write_doubles(inv_std_);
}

KnnRegressor KnnRegressor::deserialize(BufferSource& source) {
  KnnOptions options;
  options.k = source.read_u64();
  options.distance_weighted = source.read_pod<std::uint8_t>() != 0;
  KnnRegressor model(options);
  model.train_.x = linalg::Matrix::deserialize(source);
  model.train_.y = source.read_doubles();
  model.mean_ = source.read_doubles();
  model.inv_std_ = source.read_doubles();
  CPR_CHECK(model.train_.x.rows() == model.train_.y.size() &&
            model.mean_.size() == model.train_.x.cols() &&
            model.inv_std_.size() == model.train_.x.cols());
  return model;
}

}  // namespace cpr::baselines
