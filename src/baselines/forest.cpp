#include "baselines/forest.hpp"

#include <cmath>

namespace cpr::baselines {

namespace {
std::vector<std::size_t> identity_rows(std::size_t n) {
  std::vector<std::size_t> rows(n);
  for (std::size_t i = 0; i < n; ++i) rows[i] = i;
  return rows;
}
}  // namespace

void RandomForestRegressor::fit(const common::Dataset& train) {
  CPR_CHECK_MSG(train.size() > 0, "empty training set");
  Rng rng(options_.seed);
  TreeOptions tree_options;
  tree_options.max_depth = options_.max_depth;
  tree_options.min_samples_leaf = options_.min_samples_leaf;
  tree_options.max_features = std::max<std::size_t>(
      1, static_cast<std::size_t>(std::sqrt(static_cast<double>(train.dimensions()))));
  tree_options.random_thresholds = false;

  trees_.assign(options_.n_trees, {});
  for (auto& tree : trees_) {
    // Bootstrap sample (with replacement).
    std::vector<std::size_t> rows(train.size());
    for (auto& row : rows) {
      row = static_cast<std::size_t>(
          rng.uniform_int(0, static_cast<std::int64_t>(train.size()) - 1));
    }
    tree.fit(train, rows, tree_options, rng);
  }
}

double RandomForestRegressor::predict(const grid::Config& x) const {
  CPR_CHECK_MSG(!trees_.empty(), "random forest not fitted");
  double sum = 0.0;
  for (const auto& tree : trees_) sum += tree.predict(x);
  return sum / static_cast<double>(trees_.size());
}

std::size_t RandomForestRegressor::model_size_bytes() const {
  std::size_t bytes = sizeof(std::uint64_t);
  for (const auto& tree : trees_) bytes += tree.size_bytes();
  return bytes;
}

void ExtraTreesRegressor::fit(const common::Dataset& train) {
  CPR_CHECK_MSG(train.size() > 0, "empty training set");
  Rng rng(options_.seed);
  TreeOptions tree_options;
  tree_options.max_depth = options_.max_depth;
  tree_options.min_samples_leaf = options_.min_samples_leaf;
  tree_options.max_features = 0;  // all features, random thresholds
  tree_options.random_thresholds = true;

  const auto rows = identity_rows(train.size());
  trees_.assign(options_.n_trees, {});
  for (auto& tree : trees_) tree.fit(train, rows, tree_options, rng);
}

double ExtraTreesRegressor::predict(const grid::Config& x) const {
  CPR_CHECK_MSG(!trees_.empty(), "extra-trees model not fitted");
  double sum = 0.0;
  for (const auto& tree : trees_) sum += tree.predict(x);
  return sum / static_cast<double>(trees_.size());
}

std::size_t ExtraTreesRegressor::model_size_bytes() const {
  std::size_t bytes = sizeof(std::uint64_t);
  for (const auto& tree : trees_) bytes += tree.size_bytes();
  return bytes;
}

void GradientBoostingRegressor::fit(const common::Dataset& train) {
  CPR_CHECK_MSG(train.size() > 0, "empty training set");
  Rng rng(options_.seed);
  TreeOptions tree_options;
  tree_options.max_depth = options_.max_depth;
  tree_options.min_samples_leaf = options_.min_samples_leaf;
  tree_options.max_features = 0;
  tree_options.random_thresholds = false;

  double sum = 0.0;
  for (const double y : train.y) sum += y;
  base_prediction_ = sum / static_cast<double>(train.size());

  common::Dataset residuals = train;
  for (std::size_t i = 0; i < train.size(); ++i) residuals.y[i] -= base_prediction_;

  const auto rows = identity_rows(train.size());
  trees_.assign(options_.n_trees, {});
  for (auto& tree : trees_) {
    tree.fit(residuals, rows, tree_options, rng);
    // Shrink the new tree's contribution and update residuals.
    for (std::size_t i = 0; i < train.size(); ++i) {
      residuals.y[i] -= options_.learning_rate * tree.predict(residuals.config(i));
    }
  }
}

double GradientBoostingRegressor::predict(const grid::Config& x) const {
  CPR_CHECK_MSG(!trees_.empty(), "gradient boosting model not fitted");
  double prediction = base_prediction_;
  for (const auto& tree : trees_) {
    prediction += options_.learning_rate * tree.predict(x);
  }
  return prediction;
}

std::size_t GradientBoostingRegressor::model_size_bytes() const {
  std::size_t bytes = sizeof(std::uint64_t) + sizeof(double) * 2;
  for (const auto& tree : trees_) bytes += tree.size_bytes();
  return bytes;
}

}  // namespace cpr::baselines
