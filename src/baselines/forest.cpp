#include "baselines/forest.hpp"

#include <cmath>

namespace cpr::baselines {

namespace {
std::vector<std::size_t> identity_rows(std::size_t n) {
  std::vector<std::size_t> rows(n);
  for (std::size_t i = 0; i < n; ++i) rows[i] = i;
  return rows;
}

void save_trees(SerialSink& sink, const std::vector<DecisionTree>& trees) {
  sink.write_u64(trees.size());
  for (const auto& tree : trees) tree.serialize(sink);
}

std::vector<DecisionTree> load_trees(BufferSource& source, std::size_t dims) {
  std::vector<DecisionTree> trees(source.read_count());
  for (auto& tree : trees) tree = DecisionTree::deserialize(source, dims);
  return trees;
}

/// Options participate in the archive so a reloaded model refits the same
/// way the original trainer configured it (fit() allows refitting).
void save_forest_options(SerialSink& sink, const ForestOptions& options) {
  sink.write_u64(options.n_trees);
  sink.write_pod(static_cast<std::int64_t>(options.max_depth));
  sink.write_u64(options.min_samples_leaf);
  sink.write_u64(options.seed);
}

ForestOptions load_forest_options(BufferSource& source) {
  ForestOptions options;
  options.n_trees = source.read_u64();
  options.max_depth = static_cast<int>(source.read_pod<std::int64_t>());
  options.min_samples_leaf = source.read_u64();
  options.seed = source.read_u64();
  return options;
}
}  // namespace

void RandomForestRegressor::fit(const common::Dataset& train) {
  CPR_CHECK_MSG(train.size() > 0, "empty training set");
  dims_ = train.dimensions();
  Rng rng(options_.seed);
  TreeOptions tree_options;
  tree_options.max_depth = options_.max_depth;
  tree_options.min_samples_leaf = options_.min_samples_leaf;
  tree_options.max_features = std::max<std::size_t>(
      1, static_cast<std::size_t>(std::sqrt(static_cast<double>(train.dimensions()))));
  tree_options.random_thresholds = false;

  trees_.assign(options_.n_trees, {});
  for (auto& tree : trees_) {
    // Bootstrap sample (with replacement).
    std::vector<std::size_t> rows(train.size());
    for (auto& row : rows) {
      row = static_cast<std::size_t>(
          rng.uniform_int(0, static_cast<std::int64_t>(train.size()) - 1));
    }
    tree.fit(train, rows, tree_options, rng);
  }
}

double RandomForestRegressor::predict(const grid::Config& x) const {
  CPR_CHECK_MSG(!trees_.empty(), "random forest not fitted");
  double sum = 0.0;
  for (const auto& tree : trees_) sum += tree.predict(x);
  return sum / static_cast<double>(trees_.size());
}

std::size_t RandomForestRegressor::model_size_bytes() const {
  std::size_t bytes = sizeof(std::uint64_t);
  for (const auto& tree : trees_) bytes += tree.size_bytes();
  return bytes;
}

void RandomForestRegressor::save(SerialSink& sink) const {
  CPR_CHECK_MSG(!trees_.empty(), "RandomForestRegressor::save before fit");
  save_forest_options(sink, options_);
  sink.write_u64(dims_);
  save_trees(sink, trees_);
}

RandomForestRegressor RandomForestRegressor::deserialize(BufferSource& source) {
  RandomForestRegressor model(load_forest_options(source));
  model.dims_ = source.read_u64();
  model.trees_ = load_trees(source, model.dims_);
  return model;
}

void ExtraTreesRegressor::fit(const common::Dataset& train) {
  CPR_CHECK_MSG(train.size() > 0, "empty training set");
  dims_ = train.dimensions();
  Rng rng(options_.seed);
  TreeOptions tree_options;
  tree_options.max_depth = options_.max_depth;
  tree_options.min_samples_leaf = options_.min_samples_leaf;
  tree_options.max_features = 0;  // all features, random thresholds
  tree_options.random_thresholds = true;

  const auto rows = identity_rows(train.size());
  trees_.assign(options_.n_trees, {});
  for (auto& tree : trees_) tree.fit(train, rows, tree_options, rng);
}

double ExtraTreesRegressor::predict(const grid::Config& x) const {
  CPR_CHECK_MSG(!trees_.empty(), "extra-trees model not fitted");
  double sum = 0.0;
  for (const auto& tree : trees_) sum += tree.predict(x);
  return sum / static_cast<double>(trees_.size());
}

std::size_t ExtraTreesRegressor::model_size_bytes() const {
  std::size_t bytes = sizeof(std::uint64_t);
  for (const auto& tree : trees_) bytes += tree.size_bytes();
  return bytes;
}

void ExtraTreesRegressor::save(SerialSink& sink) const {
  CPR_CHECK_MSG(!trees_.empty(), "ExtraTreesRegressor::save before fit");
  save_forest_options(sink, options_);
  sink.write_u64(dims_);
  save_trees(sink, trees_);
}

ExtraTreesRegressor ExtraTreesRegressor::deserialize(BufferSource& source) {
  ExtraTreesRegressor model(load_forest_options(source));
  model.dims_ = source.read_u64();
  model.trees_ = load_trees(source, model.dims_);
  return model;
}

void GradientBoostingRegressor::fit(const common::Dataset& train) {
  CPR_CHECK_MSG(train.size() > 0, "empty training set");
  dims_ = train.dimensions();
  Rng rng(options_.seed);
  TreeOptions tree_options;
  tree_options.max_depth = options_.max_depth;
  tree_options.min_samples_leaf = options_.min_samples_leaf;
  tree_options.max_features = 0;
  tree_options.random_thresholds = false;

  double sum = 0.0;
  for (const double y : train.y) sum += y;
  base_prediction_ = sum / static_cast<double>(train.size());

  common::Dataset residuals = train;
  for (std::size_t i = 0; i < train.size(); ++i) residuals.y[i] -= base_prediction_;

  const auto rows = identity_rows(train.size());
  trees_.assign(options_.n_trees, {});
  for (auto& tree : trees_) {
    tree.fit(residuals, rows, tree_options, rng);
    // Shrink the new tree's contribution and update residuals.
    for (std::size_t i = 0; i < train.size(); ++i) {
      residuals.y[i] -= options_.learning_rate * tree.predict(residuals.config(i));
    }
  }
}

double GradientBoostingRegressor::predict(const grid::Config& x) const {
  CPR_CHECK_MSG(!trees_.empty(), "gradient boosting model not fitted");
  double prediction = base_prediction_;
  for (const auto& tree : trees_) {
    prediction += options_.learning_rate * tree.predict(x);
  }
  return prediction;
}

std::size_t GradientBoostingRegressor::model_size_bytes() const {
  std::size_t bytes = sizeof(std::uint64_t) + sizeof(double) * 2;
  for (const auto& tree : trees_) bytes += tree.size_bytes();
  return bytes;
}

void GradientBoostingRegressor::save(SerialSink& sink) const {
  CPR_CHECK_MSG(!trees_.empty(), "GradientBoostingRegressor::save before fit");
  save_forest_options(sink, options_);
  sink.write_f64(options_.learning_rate);  // also scales every tree at inference
  sink.write_u64(dims_);
  sink.write_f64(base_prediction_);
  save_trees(sink, trees_);
}

GradientBoostingRegressor GradientBoostingRegressor::deserialize(BufferSource& source) {
  BoostingOptions options;
  static_cast<ForestOptions&>(options) = load_forest_options(source);
  options.learning_rate = source.read_f64();
  GradientBoostingRegressor model(options);
  model.dims_ = source.read_u64();
  model.base_prediction_ = source.read_f64();
  model.trees_ = load_trees(source, model.dims_);
  return model;
}

}  // namespace cpr::baselines
