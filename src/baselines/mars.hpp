#pragma once
// Multivariate adaptive regression splines (Friedman, 1991) — Section 3.2.
//
// MARS builds a linear model over products of univariate hinge functions
// max(0, ±(x_j - c)). The forward pass greedily adds mirrored hinge pairs
// (scored by squared error on a row subsample for speed, then refit on the
// full data); the backward pass prunes terms by generalized cross-validation.
//
// Used (a) as the adaptive-spline baseline of the evaluation and (b) inside
// the CPR extrapolation model, which fits a 1-D MARS spline to the log of
// each factor matrix's leading singular vector (Section 5.3).

#include "common/regressor.hpp"

namespace cpr::baselines {

struct MarsOptions {
  int max_degree = 1;          ///< max interaction order (paper sweeps 1..6)
  std::size_t max_terms = 21;  ///< basis-function budget incl. intercept
  std::size_t knots_per_dim = 16;   ///< candidate knots (quantiles of observed values)
  std::size_t score_subsample = 2048;  ///< rows used to score candidates
  double gcv_penalty = 3.0;    ///< Friedman's d penalty per knot
  double min_rss_decrease = 1e-12;  ///< forward-pass stopping threshold
  std::uint64_t seed = 42;
};

class Mars final : public common::Regressor {
 public:
  explicit Mars(MarsOptions options = {}) : options_(options) {}

  std::string name() const override { return "MARS"; }
  std::string type_tag() const override { return "mars"; }
  std::size_t input_dims() const override { return dims_; }
  void fit(const common::Dataset& train) override;
  double predict(const grid::Config& x) const override;
  std::size_t model_size_bytes() const override;
  void save(SerialSink& sink) const override;
  static Mars deserialize(BufferSource& source);

  /// One hinge factor: sign * (x[dim] - knot), clipped at zero.
  struct Hinge {
    std::size_t dim = 0;
    double knot = 0.0;
    int sign = +1;  ///< +1: max(0, x - c); -1: max(0, c - x)
  };

  /// A basis function is a product of hinges (empty = intercept).
  struct BasisFunction {
    std::vector<Hinge> hinges;
    double evaluate(const grid::Config& x) const;
    bool uses_dim(std::size_t dim) const;
    std::size_t degree() const { return hinges.size(); }
  };

  const std::vector<BasisFunction>& basis() const { return basis_; }
  const std::vector<double>& coefficients() const { return coefficients_; }

 private:
  MarsOptions options_;
  std::size_t dims_ = 0;
  std::vector<BasisFunction> basis_;
  std::vector<double> coefficients_;
};

}  // namespace cpr::baselines
