#pragma once
// CART-style regression tree — the building block of the recursive
// partitioning baselines (Section 3.5): random forests, extremely-randomized
// trees, and gradient boosting.

#include <cstdint>

#include "common/regressor.hpp"
#include "util/rng.hpp"

namespace cpr::baselines {

struct TreeOptions {
  int max_depth = 8;                 ///< paper sweeps 2..16
  std::size_t min_samples_leaf = 1;
  std::size_t max_features = 0;      ///< features tried per split; 0 = all
  bool random_thresholds = false;    ///< extra-trees: one uniform threshold per feature
};

/// A single fitted regression tree (flat node array).
class DecisionTree {
 public:
  /// Fits to the rows of `data` listed in `rows` (duplicates allowed —
  /// bootstrap sampling passes repeated indices).
  void fit(const common::Dataset& data, const std::vector<std::size_t>& rows,
           const TreeOptions& options, Rng& rng);

  double predict(const grid::Config& x) const;

  std::size_t node_count() const { return nodes_.size(); }
  std::size_t size_bytes() const;

  void serialize(SerialSink& sink) const;
  /// `dims` bounds the stored feature indices (archive validation).
  static DecisionTree deserialize(BufferSource& source, std::size_t dims);

 private:
  struct Node {
    std::size_t feature = 0;
    double threshold = 0.0;
    std::int32_t left = -1;   ///< child node ids; -1 marks a leaf
    std::int32_t right = -1;
    double value = 0.0;       ///< leaf prediction (mean of samples)
  };

  std::int32_t build(const common::Dataset& data, std::vector<std::size_t>& rows,
                     std::size_t begin, std::size_t end, int depth,
                     const TreeOptions& options, Rng& rng);

  std::vector<Node> nodes_;
};

}  // namespace cpr::baselines
