#include "baselines/gaussian_process.hpp"

#include <algorithm>
#include <cmath>

#include "linalg/cholesky.hpp"
#include "util/rng.hpp"

namespace cpr::baselines {

namespace {
double sq_dist(const double* a, const double* b, std::size_t d) {
  double sum = 0.0;
  for (std::size_t j = 0; j < d; ++j) {
    const double diff = a[j] - b[j];
    sum += diff * diff;
  }
  return sum;
}
}  // namespace

double GaussianProcess::kernel(const double* a, const double* b, std::size_t d) const {
  const double ls_sq = length_scale_ * length_scale_;
  switch (options_.kernel) {
    case GpKernel::Rbf:
      return std::exp(-0.5 * sq_dist(a, b, d) / ls_sq);
    case GpKernel::RationalQuadratic: {
      const double term = sq_dist(a, b, d) / (2.0 * options_.alpha * ls_sq);
      return std::pow(1.0 + term, -options_.alpha);
    }
    case GpKernel::DotProductWhite: {
      double dot = 1.0;  // sigma_0^2 = 1
      for (std::size_t j = 0; j < d; ++j) dot += a[j] * b[j];
      return dot;  // white-noise part lives on the diagonal via options_.noise
    }
    case GpKernel::Matern: {
      // nu = 2.5: (1 + sqrt(5) r / l + 5 r^2 / (3 l^2)) exp(-sqrt(5) r / l)
      const double r = std::sqrt(sq_dist(a, b, d));
      const double s = std::sqrt(5.0) * r / length_scale_;
      return (1.0 + s + s * s / 3.0) * std::exp(-s);
    }
    case GpKernel::Constant:
      return 1.0;
  }
  return 0.0;
}

void GaussianProcess::fit(const common::Dataset& train) {
  CPR_CHECK_MSG(train.size() > 0, "empty training set");
  const std::size_t d = train.dimensions();

  // Optional subsampling to bound the cubic solve.
  common::Dataset data = train;
  if (train.size() > options_.max_samples) {
    Rng rng(options_.seed);
    auto rows = rng.sample_without_replacement(train.size(), options_.max_samples);
    std::sort(rows.begin(), rows.end());
    data = train.subset(rows);
  }
  const std::size_t n = data.size();

  mean_.assign(d, 0.0);
  inv_std_.assign(d, 1.0);
  for (std::size_t j = 0; j < d; ++j) {
    double sum = 0.0, sum_sq = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
      sum += data.x(i, j);
      sum_sq += data.x(i, j) * data.x(i, j);
    }
    mean_[j] = sum / static_cast<double>(n);
    const double var =
        std::max(1e-12, sum_sq / static_cast<double>(n) - mean_[j] * mean_[j]);
    inv_std_[j] = 1.0 / std::sqrt(var);
  }
  support_ = linalg::Matrix(n, d);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < d; ++j) {
      support_(i, j) = (data.x(i, j) - mean_[j]) * inv_std_[j];
    }
  }

  // Median-distance heuristic on a bounded pair sample.
  {
    Rng rng(options_.seed + 1);
    std::vector<double> pair_distances;
    const std::size_t pairs = std::min<std::size_t>(2048, n * (n - 1) / 2 + 1);
    for (std::size_t p = 0; p < pairs; ++p) {
      const auto i = static_cast<std::size_t>(rng.uniform_int(0, static_cast<std::int64_t>(n) - 1));
      const auto k = static_cast<std::size_t>(rng.uniform_int(0, static_cast<std::int64_t>(n) - 1));
      if (i == k) continue;
      pair_distances.push_back(
          std::sqrt(sq_dist(support_.row_ptr(i), support_.row_ptr(k), d)));
    }
    if (!pair_distances.empty()) {
      std::nth_element(pair_distances.begin(),
                       pair_distances.begin() +
                           static_cast<std::ptrdiff_t>(pair_distances.size() / 2),
                       pair_distances.end());
      length_scale_ = std::max(1e-6, pair_distances[pair_distances.size() / 2]);
    }
  }

  double target_sum = 0.0;
  for (const double y : data.y) target_sum += y;
  target_mean_ = target_sum / static_cast<double>(n);

  linalg::Matrix gram(n, n);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t k = i; k < n; ++k) {
      const double value = kernel(support_.row_ptr(i), support_.row_ptr(k), d);
      gram(i, k) = value;
      gram(k, i) = value;
    }
    gram(i, i) += options_.noise;
  }
  linalg::Vector centered(n);
  for (std::size_t i = 0; i < n; ++i) centered[i] = data.y[i] - target_mean_;
  // One factorization serves both the alpha solve and the log-determinant of
  // the marginal likelihood (previously two O(n^3) factorizations).
  const auto fact = linalg::CholeskyFactorization::compute(std::move(gram));
  CPR_CHECK_MSG(fact.has_value(), "GP kernel matrix not positive definite");
  const linalg::Vector solution = fact->solve(centered);
  alpha_.assign(solution.begin(), solution.end());

  double data_fit = 0.0;
  for (std::size_t i = 0; i < n; ++i) data_fit += centered[i] * alpha_[i];
  constexpr double kLog2Pi = 1.8378770664093454836;
  log_marginal_ = -0.5 * data_fit - 0.5 * fact->logdet() -
                  0.5 * static_cast<double>(n) * kLog2Pi;
}

double GaussianProcess::log_marginal_likelihood() const {
  CPR_CHECK_MSG(!alpha_.empty(), "GP not fitted");
  return log_marginal_;
}

double GaussianProcess::predict(const grid::Config& x) const {
  CPR_CHECK_MSG(!alpha_.empty(), "GP not fitted");
  const std::size_t d = support_.cols();
  std::vector<double> z(d);
  for (std::size_t j = 0; j < d; ++j) z[j] = (x[j] - mean_[j]) * inv_std_[j];
  double prediction = target_mean_;
  for (std::size_t i = 0; i < alpha_.size(); ++i) {
    prediction += alpha_[i] * kernel(support_.row_ptr(i), z.data(), d);
  }
  return prediction;
}

std::size_t GaussianProcess::model_size_bytes() const {
  // Persisting a GP requires the support set plus the alpha vector.
  return support_.size() * sizeof(double) + alpha_.size() * sizeof(double) +
         (mean_.size() * 2 + 2) * sizeof(double);
}

void GaussianProcess::save(SerialSink& sink) const {
  CPR_CHECK_MSG(!alpha_.empty(), "GaussianProcess::save before fit");
  sink.write_pod(static_cast<std::uint8_t>(options_.kernel));
  sink.write_f64(options_.noise);
  sink.write_f64(options_.alpha);
  sink.write_u64(options_.max_samples);
  sink.write_u64(options_.seed);
  support_.serialize(sink);
  sink.write_doubles(alpha_);
  sink.write_doubles(mean_);
  sink.write_doubles(inv_std_);
  sink.write_f64(target_mean_);
  sink.write_f64(length_scale_);
}

GaussianProcess GaussianProcess::deserialize(BufferSource& source) {
  GpOptions options;
  const auto kernel_id = source.read_pod<std::uint8_t>();
  CPR_CHECK_MSG(kernel_id <= static_cast<std::uint8_t>(GpKernel::Constant),
                "GP archive has unknown kernel id");
  options.kernel = static_cast<GpKernel>(kernel_id);
  options.noise = source.read_f64();
  options.alpha = source.read_f64();
  options.max_samples = source.read_u64();
  options.seed = source.read_u64();
  GaussianProcess model(options);
  model.support_ = linalg::Matrix::deserialize(source);
  model.alpha_ = source.read_doubles();
  model.mean_ = source.read_doubles();
  model.inv_std_ = source.read_doubles();
  model.target_mean_ = source.read_f64();
  model.length_scale_ = source.read_f64();
  CPR_CHECK(model.alpha_.size() == model.support_.rows() &&
            model.mean_.size() == model.support_.cols() &&
            model.inv_std_.size() == model.support_.cols());
  return model;
}

}  // namespace cpr::baselines
