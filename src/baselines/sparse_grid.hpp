#pragma once
// Sparse grid regression (SGR) — the piecewise/grid baseline of Sections 3.2
// and 7 (SG++ in the paper).
//
// The model is a linear combination of hierarchical "modified linear"
// (boundary-extrapolating) hat basis functions on an anisotropic sparse
// grid: level vectors l >= 1 with |l|_1 <= level + d - 1, one basis per odd
// index per level. Features are min/max-normalized to [0,1]^d from the
// training data. Weights minimize the ridge-regularized squared error via
// conjugate gradient on the normal equations (matrix-free over a
// precomputed sparse design). Spatially-adaptive refinement repeatedly adds
// the hierarchical children of the `refine_points` grid points with largest
// absolute surplus, then refits — mirroring SG++'s surplus refinement that
// the paper sweeps (1..16 refinements, 4..32 points).

#include <cstdint>
#include <map>

#include "common/regressor.hpp"

namespace cpr::baselines {

struct SgrOptions {
  std::size_t level = 4;          ///< initial regular-grid level (paper: 2..8)
  double regularization = 1e-5;   ///< lambda (paper: 1e-6..1e-3)
  int refinements = 0;            ///< adaptive refinement rounds (paper: 1..16)
  std::size_t refine_points = 8;  ///< points refined per round (paper: 4..32)
  int cg_max_iters = 1000;        ///< paper: 1000 CG iterations
  double cg_tol = 1e-4;           ///< paper: 1e-4 tolerance
};

class SparseGridRegressor final : public common::Regressor {
 public:
  explicit SparseGridRegressor(SgrOptions options = {}) : options_(options) {}

  std::string name() const override { return "SGR"; }
  std::string type_tag() const override { return "sgr"; }
  std::size_t input_dims() const override { return lo_.size(); }
  void fit(const common::Dataset& train) override;
  double predict(const grid::Config& x) const override;
  std::size_t model_size_bytes() const override;
  void save(SerialSink& sink) const override;
  static SparseGridRegressor deserialize(BufferSource& source);

  std::size_t grid_point_count() const { return weights_.size(); }

 private:
  using LevelVec = std::vector<std::uint8_t>;
  using IndexVec = std::vector<std::uint32_t>;

  /// 1-D modified-linear basis value at normalized coordinate x in [0,1].
  static double basis_1d(std::uint8_t level, std::uint32_t index, double x);

  /// The only candidate (odd) index with support containing x at `level`.
  static std::uint32_t candidate_index(std::uint8_t level, double x);

  double normalized(std::size_t j, double x) const;

  /// Multi-d basis value of grid point (levels, indices) at normalized z.
  static double basis_nd(const LevelVec& levels, const IndexVec& indices,
                         const std::vector<double>& z);

  void build_regular_grid(std::size_t dims);
  void add_point(const LevelVec& levels, const IndexVec& indices);
  void refit(const common::Dataset& train);
  void refine_once();

  SgrOptions options_;
  std::vector<double> lo_, hi_;  ///< per-dimension normalization bounds

  // Grid storage grouped by level vector for O(#levels) evaluation.
  std::map<LevelVec, std::map<IndexVec, std::size_t>> level_groups_;
  std::vector<LevelVec> point_levels_;
  std::vector<IndexVec> point_indices_;
  std::vector<double> weights_;  ///< hierarchical surpluses
};

}  // namespace cpr::baselines
