#pragma once
// k-nearest-neighbors regression (Section 3.6).
//
// Predicts by inverse-distance-weighted averaging of the k nearest training
// configurations under the Euclidean metric on standardized features.
// Instance-based: the "model" is the training set itself, which is why its
// size scales poorly in Figure 7.

#include "common/regressor.hpp"

namespace cpr::baselines {

struct KnnOptions {
  std::size_t k = 3;  ///< paper sweeps 1..6
  bool distance_weighted = true;
};

class KnnRegressor final : public common::Regressor {
 public:
  explicit KnnRegressor(KnnOptions options = {}) : options_(options) {}

  std::string name() const override { return "KNN"; }
  std::string type_tag() const override { return "knn"; }
  std::size_t input_dims() const override { return mean_.size(); }
  void fit(const common::Dataset& train) override;
  double predict(const grid::Config& x) const override;
  std::size_t model_size_bytes() const override;
  void save(SerialSink& sink) const override;
  static KnnRegressor deserialize(BufferSource& source);

 private:
  KnnOptions options_;
  common::Dataset train_;
  std::vector<double> mean_, inv_std_;  ///< per-feature standardization
};

}  // namespace cpr::baselines
