#pragma once
// Feed-forward multi-layer perceptron (Section 3.3).
//
// Fully-connected layers with ReLU or tanh activations, trained with Adam on
// mini-batch MSE over standardized features and targets. The paper sweeps
// 1..8 hidden layers of width 2..2048 with {relu, tanh}; bench harnesses
// sweep a scaled-down version of that grid.

#include <cstdint>

#include "common/regressor.hpp"
#include "linalg/matrix.hpp"

namespace cpr::baselines {

enum class Activation { Relu, Tanh };

struct MlpOptions {
  std::vector<std::size_t> hidden_layers = {64, 64};
  Activation activation = Activation::Relu;
  int epochs = 200;
  std::size_t batch_size = 64;
  double learning_rate = 1e-3;
  double weight_decay = 1e-6;
  std::uint64_t seed = 42;
};

class Mlp final : public common::Regressor {
 public:
  explicit Mlp(MlpOptions options = {}) : options_(std::move(options)) {}

  std::string name() const override { return "NN"; }
  std::string type_tag() const override { return "nn"; }
  std::size_t input_dims() const override { return feature_mean_.size(); }
  void fit(const common::Dataset& train) override;
  double predict(const grid::Config& x) const override;
  std::size_t model_size_bytes() const override;
  void save(SerialSink& sink) const override;
  static Mlp deserialize(BufferSource& source);

 private:
  struct Layer {
    linalg::Matrix weight;  ///< out x in
    linalg::Vector bias;    ///< out
  };

  /// Forward pass on standardized input; returns standardized output.
  double forward(const std::vector<double>& input) const;

  MlpOptions options_;
  std::vector<Layer> layers_;
  std::vector<double> feature_mean_, feature_inv_std_;
  double target_mean_ = 0.0, target_std_ = 1.0;
};

}  // namespace cpr::baselines
