#include "baselines/decision_tree.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

namespace cpr::baselines {

namespace {

struct SplitChoice {
  std::size_t feature = 0;
  double threshold = 0.0;
  double score = std::numeric_limits<double>::infinity();  ///< summed child SSE
  bool valid = false;
};

/// Best exact split of rows[begin, end) on one feature by SSE reduction,
/// via a single sorted sweep with running sums.
SplitChoice best_split_exact(const common::Dataset& data, std::vector<std::size_t>& rows,
                             std::size_t begin, std::size_t end, std::size_t feature,
                             std::size_t min_leaf) {
  std::sort(rows.begin() + static_cast<std::ptrdiff_t>(begin),
            rows.begin() + static_cast<std::ptrdiff_t>(end),
            [&](std::size_t a, std::size_t b) {
              return data.x(a, feature) < data.x(b, feature);
            });
  const std::size_t n = end - begin;
  double total_sum = 0.0, total_sq = 0.0;
  for (std::size_t k = begin; k < end; ++k) {
    total_sum += data.y[rows[k]];
    total_sq += data.y[rows[k]] * data.y[rows[k]];
  }
  SplitChoice best;
  best.feature = feature;
  double left_sum = 0.0, left_sq = 0.0;
  for (std::size_t k = 0; k + 1 < n; ++k) {
    const double y = data.y[rows[begin + k]];
    left_sum += y;
    left_sq += y * y;
    const double x_here = data.x(rows[begin + k], feature);
    const double x_next = data.x(rows[begin + k + 1], feature);
    if (x_here == x_next) continue;  // can't split between equal values
    const std::size_t left_n = k + 1, right_n = n - left_n;
    if (left_n < min_leaf || right_n < min_leaf) continue;
    const double right_sum = total_sum - left_sum;
    const double right_sq = total_sq - left_sq;
    const double sse = (left_sq - left_sum * left_sum / static_cast<double>(left_n)) +
                       (right_sq - right_sum * right_sum / static_cast<double>(right_n));
    if (sse < best.score) {
      best.score = sse;
      best.threshold = 0.5 * (x_here + x_next);
      best.valid = true;
    }
  }
  return best;
}

/// Extra-trees split: a single uniform-random threshold per feature.
SplitChoice best_split_random(const common::Dataset& data,
                              const std::vector<std::size_t>& rows, std::size_t begin,
                              std::size_t end, std::size_t feature, std::size_t min_leaf,
                              Rng& rng) {
  double lo = std::numeric_limits<double>::infinity(), hi = -lo;
  for (std::size_t k = begin; k < end; ++k) {
    lo = std::min(lo, data.x(rows[k], feature));
    hi = std::max(hi, data.x(rows[k], feature));
  }
  SplitChoice best;
  best.feature = feature;
  if (!(hi > lo)) return best;
  best.threshold = rng.uniform(lo, hi);
  double left_sum = 0.0, left_sq = 0.0, right_sum = 0.0, right_sq = 0.0;
  std::size_t left_n = 0, right_n = 0;
  for (std::size_t k = begin; k < end; ++k) {
    const double y = data.y[rows[k]];
    if (data.x(rows[k], feature) <= best.threshold) {
      left_sum += y;
      left_sq += y * y;
      ++left_n;
    } else {
      right_sum += y;
      right_sq += y * y;
      ++right_n;
    }
  }
  if (left_n < min_leaf || right_n < min_leaf) return best;
  best.score = (left_sq - left_sum * left_sum / static_cast<double>(left_n)) +
               (right_sq - right_sum * right_sum / static_cast<double>(right_n));
  best.valid = true;
  return best;
}

}  // namespace

std::int32_t DecisionTree::build(const common::Dataset& data,
                                 std::vector<std::size_t>& rows, std::size_t begin,
                                 std::size_t end, int depth, const TreeOptions& options,
                                 Rng& rng) {
  const std::size_t n = end - begin;
  double sum = 0.0;
  for (std::size_t k = begin; k < end; ++k) sum += data.y[rows[k]];
  const double mean = sum / static_cast<double>(n);

  Node node;
  node.value = mean;
  const auto node_id = static_cast<std::int32_t>(nodes_.size());
  nodes_.push_back(node);

  if (depth >= options.max_depth || n < 2 * options.min_samples_leaf || n < 2) {
    return node_id;
  }

  // Feature subset (random forest style) or all features.
  const std::size_t d = data.dimensions();
  std::vector<std::size_t> features(d);
  for (std::size_t j = 0; j < d; ++j) features[j] = j;
  std::size_t feature_count = d;
  if (options.max_features > 0 && options.max_features < d) {
    rng.shuffle(features);
    feature_count = options.max_features;
  }

  SplitChoice best;
  for (std::size_t f = 0; f < feature_count; ++f) {
    const SplitChoice choice =
        options.random_thresholds
            ? best_split_random(data, rows, begin, end, features[f],
                                options.min_samples_leaf, rng)
            : best_split_exact(data, rows, begin, end, features[f],
                               options.min_samples_leaf);
    if (choice.valid && choice.score < best.score) best = choice;
  }
  if (!best.valid) return node_id;

  // Partition rows in place around the chosen threshold.
  const auto middle = std::partition(
      rows.begin() + static_cast<std::ptrdiff_t>(begin),
      rows.begin() + static_cast<std::ptrdiff_t>(end), [&](std::size_t row) {
        return data.x(row, best.feature) <= best.threshold;
      });
  const auto split = static_cast<std::size_t>(middle - rows.begin());
  if (split == begin || split == end) return node_id;  // degenerate partition

  nodes_[static_cast<std::size_t>(node_id)].feature = best.feature;
  nodes_[static_cast<std::size_t>(node_id)].threshold = best.threshold;
  const std::int32_t left = build(data, rows, begin, split, depth + 1, options, rng);
  const std::int32_t right = build(data, rows, split, end, depth + 1, options, rng);
  nodes_[static_cast<std::size_t>(node_id)].left = left;
  nodes_[static_cast<std::size_t>(node_id)].right = right;
  return node_id;
}

void DecisionTree::fit(const common::Dataset& data, const std::vector<std::size_t>& rows,
                       const TreeOptions& options, Rng& rng) {
  CPR_CHECK_MSG(!rows.empty(), "decision tree needs at least one sample");
  nodes_.clear();
  std::vector<std::size_t> working = rows;
  build(data, working, 0, working.size(), 0, options, rng);
}

double DecisionTree::predict(const grid::Config& x) const {
  CPR_CHECK_MSG(!nodes_.empty(), "decision tree not fitted");
  std::size_t node = 0;
  while (nodes_[node].left >= 0) {
    node = x[nodes_[node].feature] <= nodes_[node].threshold
               ? static_cast<std::size_t>(nodes_[node].left)
               : static_cast<std::size_t>(nodes_[node].right);
  }
  return nodes_[node].value;
}

std::size_t DecisionTree::size_bytes() const {
  // feature id (4) + threshold (8) + children (8) + value (8) per node.
  return nodes_.size() * 28 + sizeof(std::uint64_t);
}

void DecisionTree::serialize(SerialSink& sink) const {
  sink.write_u64(nodes_.size());
  for (const Node& node : nodes_) {
    sink.write_u64(node.feature);
    sink.write_f64(node.threshold);
    sink.write_pod(node.left);
    sink.write_pod(node.right);
    sink.write_f64(node.value);
  }
}

DecisionTree DecisionTree::deserialize(BufferSource& source, std::size_t dims) {
  DecisionTree tree;
  const auto count = source.read_count();
  tree.nodes_.resize(count);
  for (std::size_t i = 0; i < count; ++i) {
    Node& node = tree.nodes_[i];
    node.feature = source.read_u64();
    node.threshold = source.read_f64();
    node.left = source.read_pod<std::int32_t>();
    node.right = source.read_pod<std::int32_t>();
    node.value = source.read_f64();
    // Leaves have both children unset; internal nodes reference two nodes
    // built after themselves (build() appends parents before children), so
    // forward-only links also rule out cycles. Features must be in range.
    const auto node_count = static_cast<std::int64_t>(count);
    const auto id = static_cast<std::int64_t>(i);
    const bool leaf = node.left < 0 && node.right < 0;
    const bool internal = node.left > id && node.right > id &&
                          node.left < node_count && node.right < node_count;
    CPR_CHECK_MSG(leaf || internal, "decision tree archive has malformed child ids");
    CPR_CHECK_MSG(node.feature < dims,
                  "decision tree archive has an out-of-range feature index");
  }
  return tree;
}

}  // namespace cpr::baselines
