#pragma once
// Gaussian-process regression (Section 3.4).
//
// Exact GP regression with the five covariance kernels the paper sweeps:
// RationalQuadratic, RBF, DotProduct+WhiteKernel, Matern(nu=2.5) and
// ConstantKernel. Length scales use the median-distance heuristic on
// standardized features; the posterior mean is k_*^T (K + sigma_n^2 I)^{-1} y
// via Cholesky. Training cost is O(n^3), so harnesses cap the sample count
// (the paper likewise drops models that take >= 1000 s to optimize).

#include <limits>

#include "common/regressor.hpp"
#include "linalg/matrix.hpp"

namespace cpr::baselines {

enum class GpKernel {
  RationalQuadratic,
  Rbf,
  DotProductWhite,
  Matern,   ///< nu = 2.5
  Constant,
};

struct GpOptions {
  GpKernel kernel = GpKernel::Rbf;
  double noise = 1e-4;         ///< sigma_n^2 added to the diagonal
  double alpha = 1.0;          ///< RationalQuadratic shape parameter
  std::size_t max_samples = 2048;  ///< subsample cap to bound the O(n^3) solve
  std::uint64_t seed = 42;
};

class GaussianProcess final : public common::Regressor {
 public:
  explicit GaussianProcess(GpOptions options = {}) : options_(options) {}

  std::string name() const override { return "GP"; }
  std::string type_tag() const override { return "gp"; }
  std::size_t input_dims() const override { return mean_.size(); }
  void fit(const common::Dataset& train) override;
  double predict(const grid::Config& x) const override;
  std::size_t model_size_bytes() const override;
  void save(SerialSink& sink) const override;
  static GaussianProcess deserialize(BufferSource& source);

  /// \brief log p(y | X) of the retained training set under the fitted
  ///        kernel: -0.5 y^T alpha - 0.5 log|K + sigma_n^2 I| - n/2 log(2 pi),
  ///        with y target-centered.
  ///
  /// Computed during fit() from the same Cholesky factorization that solves
  /// for alpha (one factor, both uses — see linalg::CholeskyFactorization).
  /// Not serialized: NaN on a deserialized model until fit() is called.
  double log_marginal_likelihood() const;

 private:
  double kernel(const double* a, const double* b, std::size_t d) const;

  GpOptions options_;
  linalg::Matrix support_;        ///< standardized retained training inputs
  std::vector<double> alpha_;     ///< (K + noise I)^{-1} (y - mean)
  std::vector<double> mean_, inv_std_;
  double target_mean_ = 0.0;
  double length_scale_ = 1.0;
  double log_marginal_ = std::numeric_limits<double>::quiet_NaN();
};

}  // namespace cpr::baselines
