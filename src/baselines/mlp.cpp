#include "baselines/mlp.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "util/rng.hpp"

namespace cpr::baselines {

namespace {

double activate(double v, Activation activation) {
  return activation == Activation::Relu ? std::max(0.0, v) : std::tanh(v);
}

double activate_grad(double pre, Activation activation) {
  if (activation == Activation::Relu) return pre > 0.0 ? 1.0 : 0.0;
  const double t = std::tanh(pre);
  return 1.0 - t * t;
}

}  // namespace

void Mlp::fit(const common::Dataset& train) {
  CPR_CHECK_MSG(train.size() > 0, "empty training set");
  const std::size_t n = train.size();
  const std::size_t d = train.dimensions();
  Rng rng(options_.seed);

  // Standardize features and target.
  feature_mean_.assign(d, 0.0);
  feature_inv_std_.assign(d, 1.0);
  for (std::size_t j = 0; j < d; ++j) {
    double sum = 0.0, sum_sq = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
      sum += train.x(i, j);
      sum_sq += train.x(i, j) * train.x(i, j);
    }
    feature_mean_[j] = sum / static_cast<double>(n);
    const double var =
        std::max(1e-12, sum_sq / static_cast<double>(n) - feature_mean_[j] * feature_mean_[j]);
    feature_inv_std_[j] = 1.0 / std::sqrt(var);
  }
  {
    double sum = 0.0, sum_sq = 0.0;
    for (const double y : train.y) {
      sum += y;
      sum_sq += y * y;
    }
    target_mean_ = sum / static_cast<double>(n);
    target_std_ = std::sqrt(
        std::max(1e-12, sum_sq / static_cast<double>(n) - target_mean_ * target_mean_));
  }

  // He/Xavier-style initialization.
  std::vector<std::size_t> widths;
  widths.push_back(d);
  for (const std::size_t w : options_.hidden_layers) widths.push_back(w);
  widths.push_back(1);
  layers_.clear();
  for (std::size_t l = 0; l + 1 < widths.size(); ++l) {
    Layer layer;
    layer.weight = linalg::Matrix(widths[l + 1], widths[l]);
    layer.bias.assign(widths[l + 1], 0.0);
    const double scale = std::sqrt(2.0 / static_cast<double>(widths[l]));
    for (std::size_t i = 0; i < layer.weight.rows(); ++i) {
      for (std::size_t j = 0; j < layer.weight.cols(); ++j) {
        layer.weight(i, j) = rng.normal(0.0, scale);
      }
    }
    layers_.push_back(std::move(layer));
  }

  // Adam state.
  struct AdamState {
    linalg::Matrix mw, vw;
    linalg::Vector mb, vb;
  };
  std::vector<AdamState> adam(layers_.size());
  for (std::size_t l = 0; l < layers_.size(); ++l) {
    adam[l].mw = linalg::Matrix(layers_[l].weight.rows(), layers_[l].weight.cols());
    adam[l].vw = linalg::Matrix(layers_[l].weight.rows(), layers_[l].weight.cols());
    adam[l].mb.assign(layers_[l].bias.size(), 0.0);
    adam[l].vb.assign(layers_[l].bias.size(), 0.0);
  }
  const double beta1 = 0.9, beta2 = 0.999, eps = 1e-8;
  std::size_t step = 0;

  std::vector<std::size_t> schedule(n);
  std::iota(schedule.begin(), schedule.end(), 0);

  // Per-sample activations: pre[l] (pre-activation), act[l] (post).
  const std::size_t depth = layers_.size();
  std::vector<std::vector<double>> act(depth + 1), pre(depth);
  std::vector<std::vector<double>> delta(depth);

  for (int epoch = 0; epoch < options_.epochs; ++epoch) {
    rng.shuffle(schedule);
    for (std::size_t start = 0; start < n; start += options_.batch_size) {
      const std::size_t stop = std::min(n, start + options_.batch_size);
      // Accumulate gradients over the batch.
      std::vector<linalg::Matrix> grad_w(depth);
      std::vector<linalg::Vector> grad_b(depth);
      for (std::size_t l = 0; l < depth; ++l) {
        grad_w[l] = linalg::Matrix(layers_[l].weight.rows(), layers_[l].weight.cols());
        grad_b[l].assign(layers_[l].bias.size(), 0.0);
      }
      for (std::size_t s = start; s < stop; ++s) {
        const std::size_t row = schedule[s];
        act[0].assign(d, 0.0);
        for (std::size_t j = 0; j < d; ++j) {
          act[0][j] = (train.x(row, j) - feature_mean_[j]) * feature_inv_std_[j];
        }
        for (std::size_t l = 0; l < depth; ++l) {
          const auto& layer = layers_[l];
          pre[l].assign(layer.bias.size(), 0.0);
          for (std::size_t i = 0; i < layer.weight.rows(); ++i) {
            double z = layer.bias[i];
            const double* wi = layer.weight.row_ptr(i);
            for (std::size_t j = 0; j < layer.weight.cols(); ++j) z += wi[j] * act[l][j];
            pre[l][i] = z;
          }
          act[l + 1].assign(pre[l].size(), 0.0);
          const bool output_layer = (l + 1 == depth);
          for (std::size_t i = 0; i < pre[l].size(); ++i) {
            act[l + 1][i] =
                output_layer ? pre[l][i] : activate(pre[l][i], options_.activation);
          }
        }
        const double target = (train.y[row] - target_mean_) / target_std_;
        const double error = act[depth][0] - target;
        // Backward pass.
        delta[depth - 1].assign(1, 2.0 * error);
        for (std::size_t l = depth; l-- > 0;) {
          if (l + 1 < depth) {
            delta[l].assign(pre[l].size(), 0.0);
            const auto& next = layers_[l + 1];
            for (std::size_t j = 0; j < pre[l].size(); ++j) {
              double back = 0.0;
              for (std::size_t i = 0; i < next.weight.rows(); ++i) {
                back += next.weight(i, j) * delta[l + 1][i];
              }
              delta[l][j] = back * activate_grad(pre[l][j], options_.activation);
            }
          }
          for (std::size_t i = 0; i < layers_[l].weight.rows(); ++i) {
            const double di = delta[l][i];
            double* gw = grad_w[l].row_ptr(i);
            for (std::size_t j = 0; j < layers_[l].weight.cols(); ++j) {
              gw[j] += di * act[l][j];
            }
            grad_b[l][i] += di;
          }
        }
      }
      // Adam update with the batch-mean gradient.
      ++step;
      const double batch_inv = 1.0 / static_cast<double>(stop - start);
      const double bc1 = 1.0 - std::pow(beta1, static_cast<double>(step));
      const double bc2 = 1.0 - std::pow(beta2, static_cast<double>(step));
      for (std::size_t l = 0; l < depth; ++l) {
        auto& layer = layers_[l];
        for (std::size_t i = 0; i < layer.weight.rows(); ++i) {
          for (std::size_t j = 0; j < layer.weight.cols(); ++j) {
            const double g = grad_w[l](i, j) * batch_inv +
                             options_.weight_decay * layer.weight(i, j);
            auto& m = adam[l].mw(i, j);
            auto& v = adam[l].vw(i, j);
            m = beta1 * m + (1.0 - beta1) * g;
            v = beta2 * v + (1.0 - beta2) * g * g;
            layer.weight(i, j) -=
                options_.learning_rate * (m / bc1) / (std::sqrt(v / bc2) + eps);
          }
          const double g = grad_b[l][i] * batch_inv;
          auto& m = adam[l].mb[i];
          auto& v = adam[l].vb[i];
          m = beta1 * m + (1.0 - beta1) * g;
          v = beta2 * v + (1.0 - beta2) * g * g;
          layer.bias[i] -= options_.learning_rate * (m / bc1) / (std::sqrt(v / bc2) + eps);
        }
      }
    }
  }
}

double Mlp::forward(const std::vector<double>& input) const {
  std::vector<double> current = input, next;
  for (std::size_t l = 0; l < layers_.size(); ++l) {
    const auto& layer = layers_[l];
    next.assign(layer.bias.size(), 0.0);
    const bool output_layer = (l + 1 == layers_.size());
    for (std::size_t i = 0; i < layer.weight.rows(); ++i) {
      double z = layer.bias[i];
      const double* wi = layer.weight.row_ptr(i);
      for (std::size_t j = 0; j < layer.weight.cols(); ++j) z += wi[j] * current[j];
      next[i] = output_layer ? z : activate(z, options_.activation);
    }
    current.swap(next);
  }
  return current[0];
}

double Mlp::predict(const grid::Config& x) const {
  CPR_CHECK_MSG(!layers_.empty(), "MLP not fitted");
  std::vector<double> input(x.size());
  for (std::size_t j = 0; j < x.size(); ++j) {
    input[j] = (x[j] - feature_mean_[j]) * feature_inv_std_[j];
  }
  return forward(input) * target_std_ + target_mean_;
}

std::size_t Mlp::model_size_bytes() const {
  std::size_t parameters = 0;
  for (const auto& layer : layers_) {
    parameters += layer.weight.size() + layer.bias.size();
  }
  parameters += feature_mean_.size() * 2 + 2;
  return parameters * sizeof(double) + sizeof(std::uint64_t) * (layers_.size() + 1);
}

void Mlp::save(SerialSink& sink) const {
  CPR_CHECK_MSG(!layers_.empty(), "Mlp::save before fit");
  sink.write_pod(static_cast<std::uint8_t>(options_.activation));
  sink.write_u64(options_.hidden_layers.size());
  for (const std::size_t width : options_.hidden_layers) sink.write_u64(width);
  sink.write_pod(static_cast<std::int64_t>(options_.epochs));
  sink.write_u64(options_.batch_size);
  sink.write_f64(options_.learning_rate);
  sink.write_f64(options_.weight_decay);
  sink.write_u64(options_.seed);
  sink.write_u64(layers_.size());
  for (const Layer& layer : layers_) {
    layer.weight.serialize(sink);
    sink.write_doubles(layer.bias);
  }
  sink.write_doubles(feature_mean_);
  sink.write_doubles(feature_inv_std_);
  sink.write_f64(target_mean_);
  sink.write_f64(target_std_);
}

Mlp Mlp::deserialize(BufferSource& source) {
  MlpOptions options;
  const auto activation_id = source.read_pod<std::uint8_t>();
  CPR_CHECK_MSG(activation_id <= static_cast<std::uint8_t>(Activation::Tanh),
                "MLP archive has unknown activation id");
  options.activation = static_cast<Activation>(activation_id);
  options.hidden_layers.resize(source.read_count());
  for (std::size_t& width : options.hidden_layers) width = source.read_u64();
  options.epochs = static_cast<int>(source.read_pod<std::int64_t>());
  options.batch_size = source.read_u64();
  options.learning_rate = source.read_f64();
  options.weight_decay = source.read_f64();
  options.seed = source.read_u64();
  Mlp model(options);
  const auto layer_count = source.read_count();
  model.layers_.resize(layer_count);
  for (Layer& layer : model.layers_) {
    layer.weight = linalg::Matrix::deserialize(source);
    layer.bias = source.read_doubles();
    CPR_CHECK(layer.bias.size() == layer.weight.rows());
  }
  model.feature_mean_ = source.read_doubles();
  model.feature_inv_std_ = source.read_doubles();
  model.target_mean_ = source.read_f64();
  model.target_std_ = source.read_f64();
  CPR_CHECK(!model.layers_.empty() &&
            model.feature_mean_.size() == model.layers_.front().weight.cols() &&
            model.feature_inv_std_.size() == model.feature_mean_.size());
  return model;
}

}  // namespace cpr::baselines
