#include "baselines/sparse_grid.hpp"

#include <algorithm>
#include <cmath>
#include <functional>
#include <limits>
#include <numeric>

#include "linalg/cg.hpp"
#include "util/log.hpp"

namespace cpr::baselines {

double SparseGridRegressor::basis_1d(std::uint8_t level, std::uint32_t index, double x) {
  if (level == 1) return 1.0;  // single constant basis at level 1
  const double scale = static_cast<double>(1u << level);  // 2^l
  const double position = x * scale;                      // x in units of h = 2^-l
  const std::uint32_t last = (1u << level) - 1;
  if (index == 1) {
    // Left-boundary modified basis: 2 - x/h on [0, 2h).
    return position < 2.0 ? 2.0 - position : 0.0;
  }
  if (index == last) {
    // Right-boundary modified basis: mirrored.
    const double from_right = scale - position;
    return from_right < 2.0 ? 2.0 - from_right : 0.0;
  }
  return std::max(0.0, 1.0 - std::abs(position - static_cast<double>(index)));
}

std::uint32_t SparseGridRegressor::candidate_index(std::uint8_t level, double x) {
  if (level == 1) return 1;
  const double half_scale = static_cast<double>(1u << (level - 1));
  auto i = static_cast<std::uint32_t>(2.0 * std::floor(x * half_scale) + 1.0);
  const std::uint32_t last = (1u << level) - 1;
  if (i < 1) i = 1;
  if (i > last) i = last;
  return i;
}

double SparseGridRegressor::normalized(std::size_t j, double x) const {
  const double span = hi_[j] - lo_[j];
  if (span <= 0.0) return 0.5;  // constant feature
  return std::clamp((x - lo_[j]) / span, 0.0, 1.0);
}

double SparseGridRegressor::basis_nd(const LevelVec& levels, const IndexVec& indices,
                                     const std::vector<double>& z) {
  double product = 1.0;
  for (std::size_t j = 0; j < levels.size(); ++j) {
    product *= basis_1d(levels[j], indices[j], z[j]);
    if (product == 0.0) return 0.0;
  }
  return product;
}

void SparseGridRegressor::add_point(const LevelVec& levels, const IndexVec& indices) {
  auto& group = level_groups_[levels];
  if (group.count(indices)) return;
  group[indices] = point_levels_.size();
  point_levels_.push_back(levels);
  point_indices_.push_back(indices);
  weights_.push_back(0.0);
}

void SparseGridRegressor::build_regular_grid(std::size_t dims) {
  level_groups_.clear();
  point_levels_.clear();
  point_indices_.clear();
  weights_.clear();

  // Enumerate level vectors l >= 1 with |l|_1 <= level + d - 1.
  const std::size_t budget = options_.level + dims - 1;
  LevelVec levels(dims, 1);
  const std::function<void(std::size_t, std::size_t)> recurse =
      [&](std::size_t dim, std::size_t used) {
        if (dim == dims) {
          // All odd indices per level.
          IndexVec indices(dims, 1);
          const std::function<void(std::size_t)> emit = [&](std::size_t d2) {
            if (d2 == dims) {
              add_point(levels, indices);
              return;
            }
            const std::uint32_t last = (1u << levels[d2]) - 1;
            for (std::uint32_t i = 1; i <= last; i += 2) {
              indices[d2] = i;
              emit(d2 + 1);
            }
          };
          emit(0);
          return;
        }
        for (std::size_t l = 1; used + l + (dims - dim - 1) <= budget; ++l) {
          levels[dim] = static_cast<std::uint8_t>(l);
          recurse(dim + 1, used + l);
        }
      };
  recurse(0, 0);
}

void SparseGridRegressor::refit(const common::Dataset& train) {
  const std::size_t n = train.size();
  const std::size_t m = weights_.size();
  CPR_CHECK(m > 0);

  // Sparse design in CSR: each sample touches at most one basis per level
  // vector (the candidate index).
  std::vector<std::size_t> row_start(n + 1, 0);
  std::vector<std::pair<std::size_t, double>> entries;
  entries.reserve(n * level_groups_.size());
  std::vector<double> z(train.dimensions());
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < z.size(); ++j) z[j] = normalized(j, train.x(i, j));
    for (const auto& [levels, group] : level_groups_) {
      IndexVec candidate(levels.size());
      for (std::size_t j = 0; j < levels.size(); ++j) {
        candidate[j] = candidate_index(levels[j], z[j]);
      }
      const auto it = group.find(candidate);
      if (it == group.end()) continue;
      const double value = basis_nd(levels, candidate, z);
      if (value != 0.0) entries.emplace_back(it->second, value);
    }
    row_start[i + 1] = entries.size();
  }

  // Normal equations (A^T A + lambda n I) w = A^T y, matrix-free.
  const double ridge = options_.regularization * static_cast<double>(n);
  const auto apply_normal = [&](const linalg::Vector& w, linalg::Vector& out) {
    out.assign(m, 0.0);
    for (std::size_t i = 0; i < n; ++i) {
      double aw = 0.0;
      for (std::size_t e = row_start[i]; e < row_start[i + 1]; ++e) {
        aw += entries[e].second * w[entries[e].first];
      }
      for (std::size_t e = row_start[i]; e < row_start[i + 1]; ++e) {
        out[entries[e].first] += entries[e].second * aw;
      }
    }
    for (std::size_t c = 0; c < m; ++c) out[c] += ridge * w[c];
  };
  linalg::Vector rhs(m, 0.0);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t e = row_start[i]; e < row_start[i + 1]; ++e) {
      rhs[entries[e].first] += entries[e].second * train.y[i];
    }
  }

  linalg::Vector warm_start(weights_.begin(), weights_.end());
  const auto result = linalg::conjugate_gradient(apply_normal, rhs, options_.cg_max_iters,
                                                 options_.cg_tol, &warm_start);
  weights_.assign(result.x.begin(), result.x.end());
  CPR_LOG_DEBUG("SGR refit: " << m << " points, CG " << result.iterations
                              << " iters, residual " << result.residual_norm);
}

void SparseGridRegressor::refine_once() {
  // Rank grid points by |surplus| and add the hierarchical children of the
  // top refine_points along every dimension.
  std::vector<std::size_t> order(weights_.size());
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    return std::abs(weights_[a]) > std::abs(weights_[b]);
  });
  const std::size_t count = std::min(options_.refine_points, order.size());
  for (std::size_t k = 0; k < count; ++k) {
    const std::size_t p = order[k];
    const LevelVec levels = point_levels_[p];
    const IndexVec indices = point_indices_[p];
    for (std::size_t j = 0; j < levels.size(); ++j) {
      if (levels[j] >= 20) continue;  // guard against degenerate deep refinement
      LevelVec child_levels = levels;
      child_levels[j] = static_cast<std::uint8_t>(levels[j] + 1);
      IndexVec left = indices, right = indices;
      left[j] = 2 * indices[j] - 1;
      right[j] = 2 * indices[j] + 1;
      add_point(child_levels, left);
      add_point(child_levels, right);
    }
  }
}

void SparseGridRegressor::fit(const common::Dataset& train) {
  CPR_CHECK_MSG(train.size() > 0, "empty training set");
  const std::size_t d = train.dimensions();
  lo_.assign(d, std::numeric_limits<double>::infinity());
  hi_.assign(d, -std::numeric_limits<double>::infinity());
  for (std::size_t i = 0; i < train.size(); ++i) {
    for (std::size_t j = 0; j < d; ++j) {
      lo_[j] = std::min(lo_[j], train.x(i, j));
      hi_[j] = std::max(hi_[j], train.x(i, j));
    }
  }

  build_regular_grid(d);
  refit(train);
  for (int round = 0; round < options_.refinements; ++round) {
    const std::size_t before = weights_.size();
    refine_once();
    if (weights_.size() == before) break;  // nothing new to add
    refit(train);
  }
}

double SparseGridRegressor::predict(const grid::Config& x) const {
  CPR_CHECK_MSG(!weights_.empty(), "SGR model not fitted");
  std::vector<double> z(x.size());
  for (std::size_t j = 0; j < x.size(); ++j) z[j] = normalized(j, x[j]);
  double prediction = 0.0;
  for (const auto& [levels, group] : level_groups_) {
    IndexVec candidate(levels.size());
    for (std::size_t j = 0; j < levels.size(); ++j) {
      candidate[j] = candidate_index(levels[j], z[j]);
    }
    const auto it = group.find(candidate);
    if (it == group.end()) continue;
    prediction += weights_[it->second] * basis_nd(levels, candidate, z);
  }
  return prediction;
}

std::size_t SparseGridRegressor::model_size_bytes() const {
  // Per grid point: level byte + index (4 bytes) per dim, plus the surplus.
  std::size_t bytes = sizeof(std::uint64_t);
  for (std::size_t p = 0; p < weights_.size(); ++p) {
    bytes += point_levels_[p].size() * (sizeof(std::uint8_t) + sizeof(std::uint32_t));
    bytes += sizeof(double);
  }
  bytes += lo_.size() * 2 * sizeof(double);
  return bytes;
}

void SparseGridRegressor::save(SerialSink& sink) const {
  CPR_CHECK_MSG(!weights_.empty(), "SparseGridRegressor::save before fit");
  sink.write_u64(options_.level);
  sink.write_f64(options_.regularization);
  sink.write_pod(static_cast<std::int64_t>(options_.refinements));
  sink.write_u64(options_.refine_points);
  sink.write_pod(static_cast<std::int64_t>(options_.cg_max_iters));
  sink.write_f64(options_.cg_tol);
  sink.write_doubles(lo_);
  sink.write_doubles(hi_);
  sink.write_u64(weights_.size());
  for (std::size_t p = 0; p < weights_.size(); ++p) {
    // point_levels_[p].size() == lo_.size(): no per-point length needed.
    sink.write_bytes(point_levels_[p].data(), point_levels_[p].size());
    for (const std::uint32_t index : point_indices_[p]) sink.write_pod(index);
    sink.write_f64(weights_[p]);
  }
}

SparseGridRegressor SparseGridRegressor::deserialize(BufferSource& source) {
  SgrOptions options;
  options.level = source.read_u64();
  options.regularization = source.read_f64();
  options.refinements = static_cast<int>(source.read_pod<std::int64_t>());
  options.refine_points = source.read_u64();
  options.cg_max_iters = static_cast<int>(source.read_pod<std::int64_t>());
  options.cg_tol = source.read_f64();
  SparseGridRegressor model(options);
  model.lo_ = source.read_doubles();
  model.hi_ = source.read_doubles();
  CPR_CHECK(model.lo_.size() == model.hi_.size());
  const std::size_t dims = model.lo_.size();
  const auto point_count = source.read_count();
  model.point_levels_.reserve(point_count);
  model.point_indices_.reserve(point_count);
  model.weights_.reserve(point_count);
  for (std::uint64_t p = 0; p < point_count; ++p) {
    LevelVec levels(dims);
    source.read_bytes(levels.data(), dims);
    IndexVec indices(dims);
    for (std::uint32_t& index : indices) index = source.read_pod<std::uint32_t>();
    const double weight = source.read_f64();
    // Rebuild the level-grouped lookup the evaluator walks.
    auto& group = model.level_groups_[levels];
    CPR_CHECK_MSG(!group.count(indices), "SGR archive has a duplicate grid point");
    group[indices] = model.point_levels_.size();
    model.point_levels_.push_back(std::move(levels));
    model.point_indices_.push_back(std::move(indices));
    model.weights_.push_back(weight);
  }
  return model;
}

}  // namespace cpr::baselines
