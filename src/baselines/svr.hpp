#pragma once
// Epsilon-insensitive support vector regression (Section 3.4).
//
// Dual problem solved by projected gradient ascent with the equality
// constraint sum(alpha - alpha*) = 0 maintained by gradient centering.
// Kernels: RBF and polynomial of degree 1..3 (the paper's SVM sweep).
// Training is O(iters * n^2) on the kernel matrix, so the sample count is
// capped like the GP baseline.

#include "common/regressor.hpp"
#include "linalg/matrix.hpp"

namespace cpr::baselines {

enum class SvrKernel { Rbf, Poly };

struct SvrOptions {
  SvrKernel kernel = SvrKernel::Rbf;
  int poly_degree = 2;        ///< paper sweeps 1..3
  double c = 10.0;            ///< box constraint
  double epsilon = 0.05;      ///< insensitive-tube half-width
  int max_iters = 500;
  double learning_rate = 0.1;
  std::size_t max_samples = 2048;
  std::uint64_t seed = 42;
};

class Svr final : public common::Regressor {
 public:
  explicit Svr(SvrOptions options = {}) : options_(options) {}

  std::string name() const override { return "SVM"; }
  std::string type_tag() const override { return "svm"; }
  std::size_t input_dims() const override { return mean_.size(); }
  void fit(const common::Dataset& train) override;
  double predict(const grid::Config& x) const override;
  std::size_t model_size_bytes() const override;
  void save(SerialSink& sink) const override;
  static Svr deserialize(BufferSource& source);

  std::size_t support_vector_count() const;

 private:
  double kernel(const double* a, const double* b, std::size_t d) const;

  SvrOptions options_;
  linalg::Matrix support_;
  std::vector<double> beta_;  ///< alpha - alpha* per retained sample
  double bias_ = 0.0;
  std::vector<double> mean_, inv_std_;
  double length_scale_ = 1.0;
};

}  // namespace cpr::baselines
