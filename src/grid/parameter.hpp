#pragma once
// Benchmark-parameter descriptions (Section 2.1 / Table 2).
//
// A configuration x = (x_1, ..., x_d) mixes numerical parameters (real or
// integer, discretized uniformly or logarithmically per Section 5.1) and
// categorical parameters (indexed directly along their tensor mode).

#include <cstdint>
#include <string>
#include <vector>

#include "util/check.hpp"

namespace cpr::grid {

/// How a parameter's range is discretized / interpolated.
enum class ParameterKind {
  NumericalUniform,  ///< uniform spacing; h(x) = x       (configuration params)
  NumericalLog,      ///< logarithmic spacing; h(x) = log x (input/arch params)
  Categorical,       ///< one tensor slot per choice; no interpolation
};

struct ParameterSpec {
  std::string name;
  ParameterKind kind = ParameterKind::NumericalUniform;
  double lo = 0.0;   ///< numerical range lower bound (inclusive); > 0 for log
  double hi = 1.0;   ///< numerical range upper bound (inclusive)
  bool integral = false;       ///< integer-valued numerical parameter
  std::size_t categories = 0;  ///< number of choices (categorical only)

  bool is_numerical() const { return kind != ParameterKind::Categorical; }

  static ParameterSpec numerical_uniform(std::string name, double lo, double hi,
                                         bool integral = false) {
    CPR_CHECK_MSG(lo < hi, "parameter '" << name << "': need lo < hi");
    return ParameterSpec{std::move(name), ParameterKind::NumericalUniform, lo, hi,
                         integral, 0};
  }

  static ParameterSpec numerical_log(std::string name, double lo, double hi,
                                     bool integral = false) {
    CPR_CHECK_MSG(lo > 0.0 && lo < hi,
                  "parameter '" << name << "': need 0 < lo < hi for log spacing");
    return ParameterSpec{std::move(name), ParameterKind::NumericalLog, lo, hi, integral,
                         0};
  }

  static ParameterSpec categorical(std::string name, std::size_t categories) {
    CPR_CHECK_MSG(categories > 0, "parameter '" << name << "': needs >= 1 category");
    return ParameterSpec{std::move(name), ParameterKind::Categorical, 0.0,
                         static_cast<double>(categories - 1), true, categories};
  }
};

/// A concrete configuration: one double per parameter (categoricals hold the
/// category index as a double).
using Config = std::vector<double>;

}  // namespace cpr::grid
