#pragma once
// Regular-grid discretization of the modeling domain (Section 5.1) and the
// multilinear interpolation of Equation 5.
//
// Per numerical parameter j, the range [lo, hi] is split into I_j
// sub-intervals with uniform or logarithmic spacing; each tensor slot along
// mode j is anchored at the sub-interval mid-point M^(j)_i (geometric
// mid-point, ceil-rounded for integral log-spaced parameters, matching the
// paper). Categorical parameters get one slot per choice.
//
// `interpolation_terms` produces the 2^k corner (index, weight) pairs of
// Eq. 5, where k counts the numerical modes with two usable neighbors.
// Configurations in the half-cell margins [X_0, M_0) or [M_{I-1}, X_I] use
// the same signed weights, which linearly extrapolate (one weight exceeds 1,
// the other is negative) exactly as Section 5.1 prescribes.

#include <algorithm>
#include <functional>

#include "grid/parameter.hpp"
#include "tensor/multi_index.hpp"
#include "util/serialize.hpp"

namespace cpr::grid {

/// Per-mode neighbor/weight data for one coordinate of a configuration.
struct ModeWeights {
  std::size_t base = 0;       ///< lower neighbor slot index
  double weight_lo = 1.0;     ///< weight on `base`
  double weight_hi = 0.0;     ///< weight on `base + 1` (0 if no second neighbor)
  bool has_upper = false;     ///< true if base+1 participates
  bool out_of_domain = false; ///< x_j outside [X_0, X_I]: interpolation invalid
};

/// Reusable buffers for `Discretization::interpolate_t`: batched callers
/// (the blocked predict_batch tiles) keep one per thread so Eq.-5 evaluation
/// is allocation-free after the first query.
struct InterpolationScratch {
  std::vector<ModeWeights> weights;
  std::vector<std::size_t> active;
  tensor::Index idx;
};

class Discretization {
 public:
  /// `cells_per_dim[j]` is I_j for numerical parameters; ignored (forced to
  /// `categories`) for categorical parameters.
  Discretization(std::vector<ParameterSpec> params, std::vector<std::size_t> cells_per_dim);

  /// Convenience: the same cell count along every numerical mode.
  Discretization(std::vector<ParameterSpec> params, std::size_t cells_all_dims);

  std::size_t order() const { return params_.size(); }
  const std::vector<ParameterSpec>& params() const { return params_; }
  const tensor::Dims& dims() const { return dims_; }

  /// Total number of grid cells (tensor elements).
  std::size_t cell_count() const { return tensor::element_count(dims_); }

  /// h_j: identity for uniform, log for log-spaced numerical parameters,
  /// identity for categorical (unused there).
  double h(std::size_t j, double x) const;

  /// Sub-interval boundary X^(j)_k, k in [0, I_j].
  double boundary(std::size_t j, std::size_t k) const;

  /// Cell mid-point M^(j)_i, i in [0, I_j).
  double midpoint(std::size_t j, std::size_t i) const;

  /// Maps a configuration to its containing cell (coordinates clamped into
  /// the domain first). Categorical coordinates are used directly.
  tensor::Index cell_of(const Config& x) const;

  /// True if x_j lies inside [X^(j)_0, X^(j)_{I_j}] (always true for
  /// categorical coordinates in range).
  bool in_domain(std::size_t j, double x) const;
  bool in_domain(const Config& x) const;

  /// Neighbor slots and Eq.-5 weights along mode j at coordinate x_j.
  ModeWeights mode_weights(std::size_t j, double x) const;

  /// Evaluates Eq. 5: sum over neighbor corners of weight * eval(index).
  /// `eval` maps a tensor multi-index to the (already back-transformed)
  /// element estimate. Modes listed in `freeze` (optional) contribute no
  /// interpolation — their slot is fixed to the containing cell, which is
  /// how Section 5.3 treats extrapolated numerical parameters.
  double interpolate(const Config& x,
                     const std::function<double(const tensor::Index&)>& eval,
                     const std::vector<bool>* freeze = nullptr) const;

  /// Statically-dispatched Eq. 5 with caller-owned scratch: the exact
  /// algorithm of interpolate() (which delegates here) minus the
  /// std::function indirection and per-call allocations. The corner
  /// enumeration and weight-product order are identical, so both overloads
  /// agree bitwise for the same `eval`.
  template <typename Eval>
  double interpolate_t(const Config& x, Eval&& eval, const std::vector<bool>* freeze,
                       InterpolationScratch& scratch) const {
    CPR_CHECK(x.size() == params_.size());
    scratch.weights.assign(params_.size(), ModeWeights{});
    for (std::size_t j = 0; j < params_.size(); ++j) {
      if (freeze != nullptr && (*freeze)[j]) {
        // Frozen mode: no interpolation; pin to the containing cell (treated
        // like a categorical coordinate).
        ModeWeights w;
        Config probe = x;
        probe[j] = std::clamp(x[j], params_[j].lo, params_[j].hi);
        w.base = cell_of(probe)[j];
        scratch.weights[j] = w;
      } else {
        scratch.weights[j] = mode_weights(j, x[j]);
        CPR_CHECK_MSG(!scratch.weights[j].out_of_domain,
                      "coordinate " << j << " outside the modeling domain — use the "
                                    << "extrapolation model (Section 5.3)");
      }
    }

    // Enumerate the corners a in {0,1}^d (Eq. 5); modes without an upper
    // neighbor contribute only a=0.
    double total = 0.0;
    scratch.idx.assign(params_.size(), 0);
    scratch.active.clear();  // modes with two neighbors
    for (std::size_t j = 0; j < params_.size(); ++j) {
      scratch.idx[j] = scratch.weights[j].base;
      if (scratch.weights[j].has_upper) scratch.active.push_back(j);
    }
    const std::size_t corners = std::size_t{1} << scratch.active.size();
    for (std::size_t mask = 0; mask < corners; ++mask) {
      double weight = 1.0;
      for (std::size_t b = 0; b < scratch.active.size(); ++b) {
        const std::size_t j = scratch.active[b];
        const bool upper = (mask >> b) & 1u;
        scratch.idx[j] = scratch.weights[j].base + (upper ? 1 : 0);
        weight *= upper ? scratch.weights[j].weight_hi : scratch.weights[j].weight_lo;
      }
      if (weight != 0.0) total += weight * eval(scratch.idx);
    }
    return total;
  }

  void serialize(SerialSink& sink) const;
  static Discretization deserialize(BufferSource& source);

 private:
  void build();

  std::vector<ParameterSpec> params_;
  tensor::Dims dims_;
  std::vector<std::vector<double>> boundaries_;  ///< per mode, I_j + 1 values
  std::vector<std::vector<double>> midpoints_;   ///< per mode, I_j values
};

}  // namespace cpr::grid
