#include "grid/discretization.hpp"

#include <algorithm>
#include <cmath>

namespace cpr::grid {

namespace {
/// Effective cell count for one parameter: categoricals get one slot per
/// choice, and integral numerical parameters never get more cells than they
/// have distinct integer values — extra cells would be permanently
/// unobservable and their never-trained anchors would poison interpolation.
std::size_t effective_cells(const ParameterSpec& p, std::size_t requested) {
  if (p.kind == ParameterKind::Categorical) return p.categories;
  CPR_CHECK_MSG(requested >= 1, "need at least one cell per mode");
  if (p.integral) {
    const auto distinct = static_cast<std::size_t>(
        std::floor(p.hi + 1e-9) - std::ceil(p.lo - 1e-9)) + 1;
    return std::min(requested, distinct);
  }
  return requested;
}
}  // namespace

Discretization::Discretization(std::vector<ParameterSpec> params,
                               std::vector<std::size_t> cells_per_dim)
    : params_(std::move(params)) {
  CPR_CHECK_MSG(!params_.empty(), "discretization needs at least one parameter");
  CPR_CHECK_MSG(cells_per_dim.size() == params_.size(),
                "cells_per_dim arity must match parameter count");
  dims_.resize(params_.size());
  for (std::size_t j = 0; j < params_.size(); ++j) {
    dims_[j] = effective_cells(params_[j], cells_per_dim[j]);
  }
  build();
}

Discretization::Discretization(std::vector<ParameterSpec> params, std::size_t cells_all_dims)
    : params_(std::move(params)) {
  CPR_CHECK_MSG(!params_.empty(), "discretization needs at least one parameter");
  dims_.resize(params_.size());
  for (std::size_t j = 0; j < params_.size(); ++j) {
    dims_[j] = effective_cells(params_[j], cells_all_dims);
  }
  build();
}

void Discretization::build() {
  boundaries_.assign(params_.size(), {});
  midpoints_.assign(params_.size(), {});
  for (std::size_t j = 0; j < params_.size(); ++j) {
    const auto& p = params_[j];
    const std::size_t cells = dims_[j];
    auto& bounds = boundaries_[j];
    auto& mids = midpoints_[j];
    bounds.resize(cells + 1);
    mids.resize(cells);
    switch (p.kind) {
      case ParameterKind::Categorical:
        for (std::size_t k = 0; k <= cells; ++k) bounds[k] = static_cast<double>(k) - 0.5;
        for (std::size_t i = 0; i < cells; ++i) mids[i] = static_cast<double>(i);
        break;
      case ParameterKind::NumericalUniform: {
        const double step = (p.hi - p.lo) / static_cast<double>(cells);
        for (std::size_t k = 0; k <= cells; ++k) {
          bounds[k] = p.lo + step * static_cast<double>(k);
        }
        for (std::size_t i = 0; i < cells; ++i) {
          mids[i] = 0.5 * (bounds[i] + bounds[i + 1]);
        }
        break;
      }
      case ParameterKind::NumericalLog: {
        const double log_lo = std::log(p.lo), log_hi = std::log(p.hi);
        const double step = (log_hi - log_lo) / static_cast<double>(cells);
        for (std::size_t k = 0; k <= cells; ++k) {
          bounds[k] = std::exp(log_lo + step * static_cast<double>(k));
        }
        for (std::size_t i = 0; i < cells; ++i) {
          // Geometric mid-point of the sub-interval.
          mids[i] = std::exp(0.5 * (std::log(bounds[i]) + std::log(bounds[i + 1])));
        }
        break;
      }
    }
    // Integral parameters anchor cells at integer mid-points (the paper
    // ceil-rounds log-spaced mid-points) — but only when rounding keeps the
    // mid-points strictly increasing; fine discretizations of narrow integer
    // ranges would otherwise collapse neighboring anchors.
    if (p.integral && p.kind != ParameterKind::Categorical) {
      std::vector<double> rounded(cells);
      for (std::size_t i = 0; i < cells; ++i) {
        rounded[i] = p.kind == ParameterKind::NumericalLog ? std::ceil(mids[i])
                                                           : std::round(mids[i]);
        // Keep the integer anchor inside its own sub-interval; ceil can
        // otherwise push it past the cell's upper boundary (e.g. cell
        // [1, 1.84] would be anchored at 2), which mis-orders anchors
        // relative to cell contents and corrupts edge interpolation.
        const double lo_int = std::ceil(bounds[i] - 1e-9);
        const double hi_int = std::floor(bounds[i + 1] + 1e-9);
        if (lo_int <= hi_int) {
          rounded[i] = std::clamp(rounded[i], lo_int, hi_int);
        }
      }
      bool strictly_increasing = true;
      for (std::size_t i = 1; i < cells; ++i) {
        if (!(rounded[i] > rounded[i - 1])) {
          strictly_increasing = false;
          break;
        }
      }
      if (strictly_increasing) mids = std::move(rounded);
    }
    // Midpoints must strictly increase for Eq.-5 denominators to be nonzero.
    for (std::size_t i = 1; i < cells; ++i) {
      CPR_CHECK_MSG(mids[i] > mids[i - 1],
                    "parameter '" << p.name << "': too many cells (" << cells
                                  << ") for its range — duplicate grid mid-points");
    }
  }
}

double Discretization::h(std::size_t j, double x) const {
  CPR_DCHECK(j < params_.size());
  return params_[j].kind == ParameterKind::NumericalLog ? std::log(x) : x;
}

double Discretization::boundary(std::size_t j, std::size_t k) const {
  CPR_CHECK(j < params_.size() && k < boundaries_[j].size());
  return boundaries_[j][k];
}

double Discretization::midpoint(std::size_t j, std::size_t i) const {
  CPR_CHECK(j < params_.size() && i < midpoints_[j].size());
  return midpoints_[j][i];
}

tensor::Index Discretization::cell_of(const Config& x) const {
  CPR_CHECK_MSG(x.size() == params_.size(), "configuration arity mismatch");
  tensor::Index idx(params_.size(), 0);
  for (std::size_t j = 0; j < params_.size(); ++j) {
    const auto& p = params_[j];
    const auto& bounds = boundaries_[j];
    const std::size_t cells = dims_[j];
    if (p.kind == ParameterKind::Categorical) {
      const auto c = static_cast<std::size_t>(std::llround(x[j]));
      CPR_CHECK_MSG(c < p.categories,
                    "categorical value " << x[j] << " out of range for '" << p.name << "'");
      idx[j] = c;
      continue;
    }
    const double clamped = std::clamp(x[j], p.lo, p.hi);
    // upper_bound on the boundary array gives the first boundary > x.
    const auto it = std::upper_bound(bounds.begin(), bounds.end(), clamped);
    std::size_t cell = it == bounds.begin()
                           ? 0
                           : static_cast<std::size_t>(std::distance(bounds.begin(), it)) - 1;
    if (cell >= cells) cell = cells - 1;  // x == hi lands in the last cell
    idx[j] = cell;
  }
  return idx;
}

bool Discretization::in_domain(std::size_t j, double x) const {
  CPR_CHECK(j < params_.size());
  const auto& p = params_[j];
  if (p.kind == ParameterKind::Categorical) {
    const auto c = std::llround(x);
    return c >= 0 && static_cast<std::size_t>(c) < p.categories;
  }
  return x >= p.lo && x <= p.hi;
}

bool Discretization::in_domain(const Config& x) const {
  CPR_CHECK(x.size() == params_.size());
  for (std::size_t j = 0; j < params_.size(); ++j) {
    if (!in_domain(j, x[j])) return false;
  }
  return true;
}

ModeWeights Discretization::mode_weights(std::size_t j, double x) const {
  CPR_CHECK(j < params_.size());
  const auto& p = params_[j];
  ModeWeights w;
  w.out_of_domain = !in_domain(j, x);
  if (p.kind == ParameterKind::Categorical) {
    const auto c = std::llround(x);
    w.base = w.out_of_domain ? 0 : static_cast<std::size_t>(c);
    return w;
  }
  const auto& mids = midpoints_[j];
  const std::size_t cells = mids.size();
  if (cells == 1) {
    w.base = 0;
    return w;
  }
  // Find the bracketing mid-point pair in h-space; coordinates in the
  // half-cell margins reuse the first/last pair (signed weights then
  // perform the linear extrapolation of Section 5.1).
  const double clamped = std::clamp(x, p.lo, p.hi);
  std::size_t i = 0;
  while (i + 2 < cells && clamped >= mids[i + 1]) ++i;
  const double h_x = h(j, clamped);
  const double h_lo = h(j, mids[i]);
  const double h_hi = h(j, mids[i + 1]);
  const double tt = (h_x - h_lo) / (h_hi - h_lo);
  w.base = i;
  w.weight_lo = 1.0 - tt;
  w.weight_hi = tt;
  w.has_upper = true;
  return w;
}

double Discretization::interpolate(
    const Config& x, const std::function<double(const tensor::Index&)>& eval,
    const std::vector<bool>* freeze) const {
  // Single algorithm, two entry points: the batched hot path calls the
  // template directly with reused scratch; this overload is the convenient
  // polymorphic form.
  InterpolationScratch scratch;
  return interpolate_t(x, eval, freeze, scratch);
}

void Discretization::serialize(SerialSink& sink) const {
  sink.write_u64(params_.size());
  for (std::size_t j = 0; j < params_.size(); ++j) {
    const auto& p = params_[j];
    sink.write_string(p.name);
    sink.write_u64(static_cast<std::uint64_t>(p.kind));
    sink.write_f64(p.lo);
    sink.write_f64(p.hi);
    sink.write_u64(p.integral ? 1 : 0);
    sink.write_u64(p.categories);
    sink.write_u64(dims_[j]);
  }
}

Discretization Discretization::deserialize(BufferSource& source) {
  // Each parameter record is >= 7 u64-sized fields; bound before allocating.
  const auto order = source.read_count(7 * sizeof(std::uint64_t));
  std::vector<ParameterSpec> params(order);
  std::vector<std::size_t> cells(order);
  for (std::size_t j = 0; j < order; ++j) {
    auto& p = params[j];
    p.name = source.read_string();
    p.kind = static_cast<ParameterKind>(source.read_u64());
    p.lo = source.read_f64();
    p.hi = source.read_f64();
    p.integral = source.read_u64() != 0;
    p.categories = source.read_u64();
    cells[j] = source.read_u64();
    // Grid edges are computed (not stored), so corrupt counts cannot be
    // bounded by the remaining bytes: cap them at a generous sanity limit
    // instead of letting build() allocate gigabytes.
    constexpr std::size_t kMaxCellsPerDim = std::size_t{1} << 24;
    CPR_CHECK_MSG(p.categories <= kMaxCellsPerDim && cells[j] <= kMaxCellsPerDim,
                  "archive declares an implausible grid ('" << p.name << "')");
  }
  return Discretization(std::move(params), std::move(cells));
}

}  // namespace cpr::grid
