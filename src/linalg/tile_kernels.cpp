#include "linalg/tile_kernels.hpp"

#include <cmath>
#include <vector>

#include "util/simd.hpp"

namespace cpr::linalg::tile {

bool potrf(double* a, std::size_t n, std::size_t lda) {
  for (std::size_t j = 0; j < n; ++j) {
    const double* __restrict__ rowj = a + j * lda;
    double diag = rowj[j];
    for (std::size_t k = 0; k < j; ++k) diag -= rowj[k] * rowj[k];
    if (!(diag > 0.0) || !std::isfinite(diag)) return false;
    const double ljj = std::sqrt(diag);
    a[j * lda + j] = ljj;
    const double inv_ljj = 1.0 / ljj;
    for (std::size_t i = j + 1; i < n; ++i) {
      double* __restrict__ rowi = a + i * lda;
      double sum = rowi[j];
      for (std::size_t k = 0; k < j; ++k) sum -= rowi[k] * rowj[k];
      rowi[j] = sum * inv_ljj;
    }
  }
  return true;
}

namespace {

/// Accumulator block width: two AVX-512 (or four AVX2) vectors of doubles.
/// A whole block of C elements lives in registers across the entire k loop;
/// the subtractions still land per element in ascending k, so the chain is
/// the serial one exactly.
constexpr std::size_t kAccWidth = 16;

/// C[0..w) -= sum_k aik * bt(k, 0..w) with per-element ascending-k chains,
/// accumulated in registers. `bt` is k-major with row stride `ldb`.
inline void acc_block(const double* __restrict__ ai,
                      const double* __restrict__ bt, std::size_t ldb,
                      std::size_t nk, double* __restrict__ ci, std::size_t w) {
  if (w == kAccWidth) {
    double acc[kAccWidth];
    CPR_SIMD
    for (std::size_t j = 0; j < kAccWidth; ++j) acc[j] = ci[j];
    for (std::size_t k = 0; k < nk; ++k) {
      const double aik = ai[k];
      const double* __restrict__ btk = bt + k * ldb;
      CPR_SIMD
      for (std::size_t j = 0; j < kAccWidth; ++j) acc[j] -= aik * btk[j];
    }
    CPR_SIMD
    for (std::size_t j = 0; j < kAccWidth; ++j) ci[j] = acc[j];
  } else {
    double acc[kAccWidth];
    for (std::size_t j = 0; j < w; ++j) acc[j] = ci[j];
    for (std::size_t k = 0; k < nk; ++k) {
      const double aik = ai[k];
      const double* __restrict__ btk = bt + k * ldb;
      CPR_SIMD
      for (std::size_t j = 0; j < w; ++j) acc[j] -= aik * btk[j];
    }
    for (std::size_t j = 0; j < w; ++j) ci[j] = acc[j];
  }
}

/// Four-row variant of acc_block at full width: 4 x kAccWidth C elements in
/// registers gives eight independent subtraction chains per k step, hiding
/// the FP latency a single row's two chains cannot. Same per-element
/// arithmetic and order as acc_block.
inline void acc_rows4(const double* __restrict__ a, std::size_t lda,
                      const double* __restrict__ bt, std::size_t ldb,
                      std::size_t nk, double* __restrict__ c, std::size_t ldc) {
  double acc[4][kAccWidth];
  for (std::size_t r = 0; r < 4; ++r) {
    CPR_SIMD
    for (std::size_t j = 0; j < kAccWidth; ++j) acc[r][j] = c[r * ldc + j];
  }
  for (std::size_t k = 0; k < nk; ++k) {
    const double* __restrict__ btk = bt + k * ldb;
    for (std::size_t r = 0; r < 4; ++r) {
      const double ark = a[r * lda + k];
      CPR_SIMD
      for (std::size_t j = 0; j < kAccWidth; ++j) acc[r][j] -= ark * btk[j];
    }
  }
  for (std::size_t r = 0; r < 4; ++r) {
    CPR_SIMD
    for (std::size_t j = 0; j < kAccWidth; ++j) c[r * ldc + j] = acc[r][j];
  }
}

}  // namespace

void trsm(const double* l, std::size_t nj, std::size_t ldl, double* a,
          std::size_t ni, std::size_t lda) {
  // Column-major pack of the panel: xt(j, i) = a(i, j). Every row's j-chain
  // advances in lockstep, so the subtractions and the final reciprocal
  // multiply vectorize across contiguous i while each element still sees the
  // serial ascending-k order and the identical `sum * (1.0 / l(j, j))`.
  thread_local std::vector<double> scratch;
  if (scratch.size() < ni * nj) scratch.resize(ni * nj);
  double* __restrict__ xt = scratch.data();
  for (std::size_t i = 0; i < ni; ++i) {
    const double* __restrict__ rowi = a + i * lda;
    for (std::size_t j = 0; j < nj; ++j) xt[j * ni + i] = rowi[j];
  }
  for (std::size_t j = 0; j < nj; ++j) {
    const double* __restrict__ lj = l + j * ldl;
    double* __restrict__ xj = xt + j * ni;
    for (std::size_t k = 0; k < j; ++k) {
      const double ljk = lj[k];
      const double* __restrict__ xk = xt + k * ni;
      CPR_SIMD
      for (std::size_t i = 0; i < ni; ++i) xj[i] -= ljk * xk[i];
    }
    const double inv_ljj = 1.0 / lj[j];
    CPR_SIMD
    for (std::size_t i = 0; i < ni; ++i) xj[i] *= inv_ljj;
  }
  for (std::size_t i = 0; i < ni; ++i) {
    double* __restrict__ rowi = a + i * lda;
    for (std::size_t j = 0; j < nj; ++j) rowi[j] = xt[j * ni + i];
  }
}

void syrk(const double* a, std::size_t ni, std::size_t nk, std::size_t lda,
          double* c, std::size_t ldc) {
  // Pack A^T (k-major) once, then run the register-accumulator kernel on
  // each lower-triangle block of C; the diagonal block is a partial width.
  thread_local std::vector<double> scratch;
  if (scratch.size() < nk * ni) scratch.resize(nk * ni);
  double* __restrict__ at = scratch.data();
  for (std::size_t j = 0; j < ni; ++j) {
    const double* __restrict__ aj = a + j * lda;
    for (std::size_t k = 0; k < nk; ++k) at[k * ni + j] = aj[k];
  }
  std::size_t i0 = 0;
  for (; i0 + 4 <= ni; i0 += 4) {
    // Blocks fully below the diagonal of all four rows take the 4-row
    // kernel; the diagonal-straddling tail of each row runs per-row.
    const std::size_t n_full = (i0 + 1) / kAccWidth;
    for (std::size_t t = 0; t < n_full; ++t) {
      acc_rows4(a + i0 * lda, lda, at + t * kAccWidth, ni, nk,
                c + i0 * ldc + t * kAccWidth, ldc);
    }
    for (std::size_t r = 0; r < 4; ++r) {
      const std::size_t i = i0 + r;
      for (std::size_t j0 = n_full * kAccWidth; j0 <= i; j0 += kAccWidth) {
        const std::size_t w = std::min(kAccWidth, i + 1 - j0);
        acc_block(a + i * lda, at + j0, ni, nk, c + i * ldc + j0, w);
      }
    }
  }
  for (; i0 < ni; ++i0) {
    for (std::size_t j0 = 0; j0 <= i0; j0 += kAccWidth) {
      const std::size_t w = std::min(kAccWidth, i0 + 1 - j0);
      acc_block(a + i0 * lda, at + j0, ni, nk, c + i0 * ldc + j0, w);
    }
  }
}

void gemm(const double* a, std::size_t ni, std::size_t lda, const double* b,
          std::size_t nj, std::size_t ldb, std::size_t nk, double* c,
          std::size_t ldc) {
  // Pack B^T (k-major) so the accumulator kernel reads contiguously:
  // bt(k, j) = b(j, k).
  thread_local std::vector<double> scratch;
  if (scratch.size() < nk * nj) scratch.resize(nk * nj);
  double* __restrict__ bt = scratch.data();
  for (std::size_t j = 0; j < nj; ++j) {
    const double* __restrict__ bj = b + j * ldb;
    for (std::size_t k = 0; k < nk; ++k) bt[k * nj + j] = bj[k];
  }
  const std::size_t nj_full = (nj / kAccWidth) * kAccWidth;
  std::size_t i0 = 0;
  for (; i0 + 4 <= ni; i0 += 4) {
    for (std::size_t j0 = 0; j0 < nj_full; j0 += kAccWidth) {
      acc_rows4(a + i0 * lda, lda, bt + j0, nj, nk, c + i0 * ldc + j0, ldc);
    }
    if (nj_full < nj) {
      for (std::size_t r = 0; r < 4; ++r) {
        acc_block(a + (i0 + r) * lda, bt + nj_full, nj, nk,
                  c + (i0 + r) * ldc + nj_full, nj - nj_full);
      }
    }
  }
  for (; i0 < ni; ++i0) {
    for (std::size_t j0 = 0; j0 < nj; j0 += kAccWidth) {
      const std::size_t w = std::min(kAccWidth, nj - j0);
      acc_block(a + i0 * lda, bt + j0, nj, nk, c + i0 * ldc + j0, w);
    }
  }
}

}  // namespace cpr::linalg::tile
