#include "linalg/lu.hpp"

#include <cmath>
#include <numeric>

namespace cpr::linalg {

std::optional<Vector> solve_lu(Matrix a, Vector b) {
  CPR_CHECK(a.rows() == a.cols() && a.rows() == b.size());
  const std::size_t n = a.rows();
  std::vector<std::size_t> perm(n);
  std::iota(perm.begin(), perm.end(), 0);

  for (std::size_t k = 0; k < n; ++k) {
    // Partial pivot.
    std::size_t pivot = k;
    double max_val = std::abs(a(k, k));
    for (std::size_t i = k + 1; i < n; ++i) {
      if (std::abs(a(i, k)) > max_val) {
        max_val = std::abs(a(i, k));
        pivot = i;
      }
    }
    if (max_val == 0.0 || !std::isfinite(max_val)) return std::nullopt;
    if (pivot != k) {
      for (std::size_t j = 0; j < n; ++j) std::swap(a(k, j), a(pivot, j));
      std::swap(b[k], b[pivot]);
    }
    const double inv_pivot = 1.0 / a(k, k);
    for (std::size_t i = k + 1; i < n; ++i) {
      const double factor = a(i, k) * inv_pivot;
      a(i, k) = factor;
      for (std::size_t j = k + 1; j < n; ++j) a(i, j) -= factor * a(k, j);
      b[i] -= factor * b[k];
    }
  }

  Vector x(n, 0.0);
  for (std::size_t ii = n; ii > 0; --ii) {
    const std::size_t i = ii - 1;
    double sum = b[i];
    for (std::size_t j = i + 1; j < n; ++j) sum -= a(i, j) * x[j];
    x[i] = sum / a(i, i);
  }
  for (const double v : x) {
    if (!std::isfinite(v)) return std::nullopt;
  }
  return x;
}

}  // namespace cpr::linalg
