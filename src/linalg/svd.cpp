#include "linalg/svd.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "linalg/blas.hpp"

namespace cpr::linalg {

SvdResult svd(const Matrix& a, int max_sweeps, double tol) {
  // One-sided Jacobi: orthogonalize the columns of a working copy W = A V by
  // plane rotations accumulated into V; then sigma_j = ||w_j||, u_j = w_j/sigma_j.
  const std::size_t m = a.rows(), n = a.cols();
  const bool transpose_input = m < n;
  Matrix w = transpose_input ? a.transposed() : a;
  const std::size_t wm = w.rows(), wn = w.cols();
  Matrix v(wn, wn);
  v.set_identity();

  for (int sweep = 0; sweep < max_sweeps; ++sweep) {
    double max_offdiag = 0.0;
    for (std::size_t p = 0; p + 1 < wn; ++p) {
      for (std::size_t q = p + 1; q < wn; ++q) {
        double alpha = 0.0, beta = 0.0, gamma = 0.0;
        for (std::size_t i = 0; i < wm; ++i) {
          const double wp = w(i, p), wq = w(i, q);
          alpha += wp * wp;
          beta += wq * wq;
          gamma += wp * wq;
        }
        const double denom = std::sqrt(alpha * beta);
        if (denom > 0.0) max_offdiag = std::max(max_offdiag, std::abs(gamma) / denom);
        if (std::abs(gamma) <= tol * denom || denom == 0.0) continue;
        // Jacobi rotation zeroing the (p,q) entry of W^T W.
        const double zeta = (beta - alpha) / (2.0 * gamma);
        const double t = (zeta >= 0.0 ? 1.0 : -1.0) /
                         (std::abs(zeta) + std::sqrt(1.0 + zeta * zeta));
        const double c = 1.0 / std::sqrt(1.0 + t * t);
        const double s = c * t;
        for (std::size_t i = 0; i < wm; ++i) {
          const double wp = w(i, p), wq = w(i, q);
          w(i, p) = c * wp - s * wq;
          w(i, q) = s * wp + c * wq;
        }
        for (std::size_t i = 0; i < wn; ++i) {
          const double vp = v(i, p), vq = v(i, q);
          v(i, p) = c * vp - s * vq;
          v(i, q) = s * vp + c * vq;
        }
      }
    }
    if (max_offdiag < tol) break;
  }

  // Column norms are singular values; sort non-increasing.
  Vector sigma(wn, 0.0);
  for (std::size_t j = 0; j < wn; ++j) {
    double sum = 0.0;
    for (std::size_t i = 0; i < wm; ++i) sum += w(i, j) * w(i, j);
    sigma[j] = std::sqrt(sum);
  }
  std::vector<std::size_t> order(wn);
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(),
            [&](std::size_t x, std::size_t y) { return sigma[x] > sigma[y]; });

  Matrix u_sorted(wm, wn, 0.0), v_sorted(wn, wn, 0.0);
  Vector sigma_sorted(wn, 0.0);
  for (std::size_t jj = 0; jj < wn; ++jj) {
    const std::size_t j = order[jj];
    sigma_sorted[jj] = sigma[j];
    const double inv = sigma[j] > 0.0 ? 1.0 / sigma[j] : 0.0;
    for (std::size_t i = 0; i < wm; ++i) u_sorted(i, jj) = w(i, j) * inv;
    for (std::size_t i = 0; i < wn; ++i) v_sorted(i, jj) = v(i, j);
  }

  if (transpose_input) {
    // A = (W_t)^T = V Sigma U^T: swap roles of U and V.
    return SvdResult{std::move(v_sorted), std::move(sigma_sorted), std::move(u_sorted)};
  }
  return SvdResult{std::move(u_sorted), std::move(sigma_sorted), std::move(v_sorted)};
}

Matrix svd_truncate(const SvdResult& s, std::size_t rank) {
  rank = std::min(rank, s.sigma.size());
  Matrix out(s.u.rows(), s.v.rows(), 0.0);
  for (std::size_t r = 0; r < rank; ++r) {
    const double sig = s.sigma[r];
    for (std::size_t i = 0; i < out.rows(); ++i) {
      const double uis = s.u(i, r) * sig;
      for (std::size_t j = 0; j < out.cols(); ++j) out(i, j) += uis * s.v(j, r);
    }
  }
  return out;
}

Rank1Svd rank1_svd(const Matrix& a, int max_iters, double tol) {
  const std::size_t m = a.rows(), n = a.cols();
  CPR_CHECK(m > 0 && n > 0);
  // Power iteration on the Gram operator x -> A^T (A x), starting from a
  // deterministic positive vector so positive matrices converge to the
  // Perron vector immediately.
  Vector x(n, 1.0 / std::sqrt(static_cast<double>(n)));
  Vector ax(m, 0.0), atax(n, 0.0);
  double sigma_prev = 0.0;
  for (int iter = 0; iter < max_iters; ++iter) {
    gemv(a, x, ax);
    gemv_t(a, ax, atax);
    const double norm = norm2(atax);
    if (norm == 0.0) break;  // A x in null space: accept current estimate
    for (std::size_t j = 0; j < n; ++j) x[j] = atax[j] / norm;
    gemv(a, x, ax);
    const double sigma_now = norm2(ax);
    if (std::abs(sigma_now - sigma_prev) <= tol * std::max(1.0, sigma_now)) {
      sigma_prev = sigma_now;
      break;
    }
    sigma_prev = sigma_now;
  }
  gemv(a, x, ax);
  double sigma = norm2(ax);
  Vector u(m, 0.0);
  if (sigma > 0.0) {
    for (std::size_t i = 0; i < m; ++i) u[i] = ax[i] / sigma;
  }
  // Sign canonicalization: make the dominant entry of u positive.
  std::size_t argmax = 0;
  for (std::size_t i = 1; i < m; ++i) {
    if (std::abs(u[i]) > std::abs(u[argmax])) argmax = i;
  }
  if (u[argmax] < 0.0) {
    for (double& ui : u) ui = -ui;
    for (double& vi : x) vi = -vi;
  }
  return Rank1Svd{std::move(u), sigma, std::move(x)};
}

}  // namespace cpr::linalg
