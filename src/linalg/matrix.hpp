#pragma once
// Dense row-major matrix and vector types used throughout the library.
//
// This is a from-scratch substrate (no Eigen/BLAS dependency): the paper's
// completion algorithms only need small-R dense kernels (R <= 64), plus QR /
// SVD / Cholesky on tall-skinny or R-by-R operands, so a straightforward
// cache-friendly implementation with OpenMP on the outer loops suffices.

#include <cstddef>
#include <initializer_list>
#include <vector>

#include "util/check.hpp"
#include "util/serialize.hpp"

namespace cpr::linalg {

using Vector = std::vector<double>;

class Matrix {
 public:
  Matrix() = default;

  /// rows-by-cols matrix initialized to `fill`.
  Matrix(std::size_t rows, std::size_t cols, double fill = 0.0)
      : rows_(rows), cols_(cols), data_(rows * cols, fill) {}

  /// Construct from nested initializer list (row-major), e.g. {{1,2},{3,4}}.
  Matrix(std::initializer_list<std::initializer_list<double>> init);

  std::size_t rows() const { return rows_; }
  std::size_t cols() const { return cols_; }
  std::size_t size() const { return data_.size(); }
  bool empty() const { return data_.empty(); }

  double& operator()(std::size_t i, std::size_t j) {
    CPR_DCHECK(i < rows_ && j < cols_);
    return data_[i * cols_ + j];
  }
  double operator()(std::size_t i, std::size_t j) const {
    CPR_DCHECK(i < rows_ && j < cols_);
    return data_[i * cols_ + j];
  }

  double* data() { return data_.data(); }
  const double* data() const { return data_.data(); }
  double* row_ptr(std::size_t i) { return data_.data() + i * cols_; }
  const double* row_ptr(std::size_t i) const { return data_.data() + i * cols_; }

  /// Copies row i into a Vector.
  Vector row(std::size_t i) const;
  /// Copies column j into a Vector.
  Vector col(std::size_t j) const;
  void set_row(std::size_t i, const Vector& v);
  void set_col(std::size_t j, const Vector& v);

  void fill(double value) { std::fill(data_.begin(), data_.end(), value); }

  /// Sets this to the identity (must be square).
  void set_identity();

  Matrix transposed() const;

  /// Frobenius norm.
  double frobenius_norm() const;

  /// Element-wise operations (shapes must match).
  Matrix& operator+=(const Matrix& other);
  Matrix& operator-=(const Matrix& other);
  Matrix& operator*=(double scalar);

  bool same_shape(const Matrix& other) const {
    return rows_ == other.rows_ && cols_ == other.cols_;
  }

  void serialize(SerialSink& sink) const;
  static Matrix deserialize(BufferSource& source);

 private:
  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  std::vector<double> data_;
};

/// Max |a_ij - b_ij| over all elements (shapes must match).
double max_abs_diff(const Matrix& a, const Matrix& b);

}  // namespace cpr::linalg
