#pragma once
// BLAS-like dense kernels on Matrix/Vector.
//
// gemm uses a blocked i-k-j loop order (streaming the B panel) and OpenMP on
// the row dimension; everything else is level-1/2 and memory-bound.

#include "linalg/matrix.hpp"

namespace cpr::linalg {

/// C = alpha * A * B + beta * C.
void gemm(const Matrix& a, const Matrix& b, Matrix& c, double alpha = 1.0,
          double beta = 0.0);

/// C = alpha * A^T * B + beta * C.
void gemm_tn(const Matrix& a, const Matrix& b, Matrix& c, double alpha = 1.0,
             double beta = 0.0);

/// y = alpha * A * x + beta * y.
void gemv(const Matrix& a, const Vector& x, Vector& y, double alpha = 1.0,
          double beta = 0.0);

/// y = alpha * A^T * x + beta * y.
void gemv_t(const Matrix& a, const Vector& x, Vector& y, double alpha = 1.0,
            double beta = 0.0);

/// C = A^T * A (upper and lower filled; C must be cols(A) x cols(A)).
void syrk_tn(const Matrix& a, Matrix& c);

double dot(const Vector& x, const Vector& y);
double norm2(const Vector& x);

/// y += alpha * x.
void axpy(double alpha, const Vector& x, Vector& y);

/// x *= alpha.
void scal(double alpha, Vector& x);

}  // namespace cpr::linalg
