#pragma once
// Householder QR and linear least-squares solves.
//
// Used by OLS/PMNF baselines, MARS's repeated refits, and tests that verify
// the ALS normal-equation solutions against an orthogonalization-based solve.

#include "linalg/matrix.hpp"

namespace cpr::linalg {

/// Compact Householder QR of an m-by-n matrix (m >= n).
/// `qr` holds R in its upper triangle and the Householder vectors below the
/// diagonal; `tau` holds the reflector scales.
struct QrFactorization {
  Matrix qr;
  Vector tau;

  std::size_t rows() const { return qr.rows(); }
  std::size_t cols() const { return qr.cols(); }

  /// Applies Q^T to a vector of length m in place.
  void apply_qt(Vector& v) const;

  /// Extracts the thin Q (m-by-n).
  Matrix thin_q() const;

  /// Extracts R (n-by-n upper triangular).
  Matrix r() const;
};

/// Serial reference Householder QR — one reflector at a time, applied to
/// every trailing column immediately.
QrFactorization qr_factor_serial(Matrix a);

/// Dispatching entry point: `CPR_KERNEL=blocked` (the default) uses the
/// panel-blocked factorization of linalg/qr_tiled.hpp, `serial` the reference
/// above. Both produce bitwise-identical factorizations.
QrFactorization qr_factor(Matrix a);

/// Minimum-norm-ish least squares: minimizes ||A x - b||_2 for full-rank A
/// (m >= n). Small diagonal entries of R are regularized to keep the solve
/// finite for nearly rank-deficient systems.
Vector solve_least_squares(const Matrix& a, const Vector& b);

/// Ridge least squares: minimizes ||A x - b||^2 + lambda ||x||^2 by solving
/// the (n+m)-row augmented system via QR when lambda > 0.
Vector solve_ridge(const Matrix& a, const Vector& b, double lambda);

}  // namespace cpr::linalg
