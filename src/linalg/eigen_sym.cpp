#include "linalg/eigen_sym.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>

namespace cpr::linalg {

SymEigResult eigen_sym(Matrix a, int max_sweeps, double tol) {
  CPR_CHECK_MSG(a.rows() == a.cols(), "eigen_sym: matrix must be square");
  const std::size_t n = a.rows();
  Matrix v(n, n);
  v.set_identity();

  for (int sweep = 0; sweep < max_sweeps; ++sweep) {
    // Off-diagonal Frobenius mass to test convergence.
    double off = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
      for (std::size_t j = i + 1; j < n; ++j) off += a(i, j) * a(i, j);
    }
    if (std::sqrt(off) < tol * std::max(1.0, a.frobenius_norm())) break;

    for (std::size_t p = 0; p + 1 < n; ++p) {
      for (std::size_t q = p + 1; q < n; ++q) {
        const double apq = a(p, q);
        if (apq == 0.0) continue;
        const double theta = (a(q, q) - a(p, p)) / (2.0 * apq);
        const double t = (theta >= 0.0 ? 1.0 : -1.0) /
                         (std::abs(theta) + std::sqrt(1.0 + theta * theta));
        const double c = 1.0 / std::sqrt(1.0 + t * t);
        const double s = c * t;
        // A <- J^T A J for the (p,q) rotation.
        for (std::size_t k = 0; k < n; ++k) {
          const double akp = a(k, p), akq = a(k, q);
          a(k, p) = c * akp - s * akq;
          a(k, q) = s * akp + c * akq;
        }
        for (std::size_t k = 0; k < n; ++k) {
          const double apk = a(p, k), aqk = a(q, k);
          a(p, k) = c * apk - s * aqk;
          a(q, k) = s * apk + c * aqk;
        }
        for (std::size_t k = 0; k < n; ++k) {
          const double vkp = v(k, p), vkq = v(k, q);
          v(k, p) = c * vkp - s * vkq;
          v(k, q) = s * vkp + c * vkq;
        }
      }
    }
  }

  Vector eigenvalues(n);
  for (std::size_t i = 0; i < n; ++i) eigenvalues[i] = a(i, i);
  std::vector<std::size_t> order(n);
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(),
            [&](std::size_t x, std::size_t y) { return eigenvalues[x] > eigenvalues[y]; });
  Vector sorted_values(n);
  Matrix sorted_vectors(n, n);
  for (std::size_t jj = 0; jj < n; ++jj) {
    sorted_values[jj] = eigenvalues[order[jj]];
    for (std::size_t i = 0; i < n; ++i) sorted_vectors(i, jj) = v(i, order[jj]);
  }
  return SymEigResult{std::move(sorted_values), std::move(sorted_vectors)};
}

}  // namespace cpr::linalg
