#include "linalg/cholesky.hpp"

#include <cmath>

namespace cpr::linalg {

bool cholesky_factor(Matrix& a) {
  CPR_CHECK_MSG(a.rows() == a.cols(), "cholesky: matrix must be square");
  const std::size_t n = a.rows();
  for (std::size_t j = 0; j < n; ++j) {
    double diag = a(j, j);
    for (std::size_t k = 0; k < j; ++k) diag -= a(j, k) * a(j, k);
    if (!(diag > 0.0) || !std::isfinite(diag)) return false;
    const double ljj = std::sqrt(diag);
    a(j, j) = ljj;
    const double inv_ljj = 1.0 / ljj;
    for (std::size_t i = j + 1; i < n; ++i) {
      double sum = a(i, j);
      for (std::size_t k = 0; k < j; ++k) sum -= a(i, k) * a(j, k);
      a(i, j) = sum * inv_ljj;
    }
  }
  return true;
}

void forward_substitute(const Matrix& l, const Vector& b, Vector& y) {
  const std::size_t n = l.rows();
  CPR_CHECK(b.size() == n);
  y.assign(n, 0.0);
  for (std::size_t i = 0; i < n; ++i) {
    double sum = b[i];
    for (std::size_t k = 0; k < i; ++k) sum -= l(i, k) * y[k];
    y[i] = sum / l(i, i);
  }
}

void backward_substitute_t(const Matrix& l, const Vector& y, Vector& x) {
  const std::size_t n = l.rows();
  CPR_CHECK(y.size() == n);
  x.assign(n, 0.0);
  for (std::size_t ii = n; ii > 0; --ii) {
    const std::size_t i = ii - 1;
    double sum = y[i];
    for (std::size_t k = i + 1; k < n; ++k) sum -= l(k, i) * x[k];
    x[i] = sum / l(i, i);
  }
}

namespace {
// Scale-aware jitter: proportional to the mean diagonal magnitude.
double initial_jitter(const Matrix& a) {
  double trace = 0.0;
  for (std::size_t i = 0; i < a.rows(); ++i) trace += std::abs(a(i, i));
  const double mean_diag = a.rows() ? trace / static_cast<double>(a.rows()) : 1.0;
  return std::max(1e-12, 1e-10 * mean_diag);
}
}  // namespace

std::optional<Vector> solve_spd(Matrix a, Vector b, int max_jitter_tries) {
  CPR_CHECK(a.rows() == b.size());
  const Matrix original = a;
  double jitter = initial_jitter(a);
  for (int attempt = 0; attempt <= max_jitter_tries; ++attempt) {
    if (attempt > 0) {
      a = original;
      for (std::size_t i = 0; i < a.rows(); ++i) a(i, i) += jitter;
      jitter *= 100.0;
    }
    if (cholesky_factor(a)) {
      Vector y, x;
      forward_substitute(a, b, y);
      backward_substitute_t(a, y, x);
      return x;
    }
  }
  return std::nullopt;
}

std::optional<Matrix> solve_spd_multi(Matrix a, const Matrix& b, int max_jitter_tries) {
  CPR_CHECK(a.rows() == b.rows());
  const Matrix original = a;
  double jitter = initial_jitter(a);
  for (int attempt = 0; attempt <= max_jitter_tries; ++attempt) {
    if (attempt > 0) {
      a = original;
      for (std::size_t i = 0; i < a.rows(); ++i) a(i, i) += jitter;
      jitter *= 100.0;
    }
    if (cholesky_factor(a)) {
      Matrix x(b.rows(), b.cols());
      Vector column(b.rows()), y, xi;
      for (std::size_t j = 0; j < b.cols(); ++j) {
        for (std::size_t i = 0; i < b.rows(); ++i) column[i] = b(i, j);
        forward_substitute(a, column, y);
        backward_substitute_t(a, y, xi);
        for (std::size_t i = 0; i < b.rows(); ++i) x(i, j) = xi[i];
      }
      return x;
    }
  }
  return std::nullopt;
}

std::optional<double> logdet_spd(Matrix a) {
  if (!cholesky_factor(a)) return std::nullopt;
  double logdet = 0.0;
  for (std::size_t i = 0; i < a.rows(); ++i) logdet += std::log(a(i, i));
  return 2.0 * logdet;
}

}  // namespace cpr::linalg
