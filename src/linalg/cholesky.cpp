#include "linalg/cholesky.hpp"

#include <cmath>

#include "linalg/cholesky_tiled.hpp"
#include "obs/profile.hpp"
#include "util/kernel_mode.hpp"

namespace cpr::linalg {

bool cholesky_factor(Matrix& a) {
  CPR_CHECK_MSG(a.rows() == a.cols(), "cholesky: matrix must be square");
  const std::size_t n = a.rows();
  for (std::size_t j = 0; j < n; ++j) {
    double diag = a(j, j);
    for (std::size_t k = 0; k < j; ++k) diag -= a(j, k) * a(j, k);
    if (!(diag > 0.0) || !std::isfinite(diag)) return false;
    const double ljj = std::sqrt(diag);
    a(j, j) = ljj;
    const double inv_ljj = 1.0 / ljj;
    for (std::size_t i = j + 1; i < n; ++i) {
      double sum = a(i, j);
      for (std::size_t k = 0; k < j; ++k) sum -= a(i, k) * a(j, k);
      a(i, j) = sum * inv_ljj;
    }
  }
  return true;
}

void forward_substitute(const Matrix& l, const Vector& b, Vector& y) {
  const std::size_t n = l.rows();
  CPR_CHECK(b.size() == n);
  y.assign(n, 0.0);
  for (std::size_t i = 0; i < n; ++i) {
    double sum = b[i];
    for (std::size_t k = 0; k < i; ++k) sum -= l(i, k) * y[k];
    y[i] = sum / l(i, i);
  }
}

void backward_substitute_t(const Matrix& l, const Vector& y, Vector& x) {
  const std::size_t n = l.rows();
  CPR_CHECK(y.size() == n);
  x.assign(n, 0.0);
  for (std::size_t ii = n; ii > 0; --ii) {
    const std::size_t i = ii - 1;
    double sum = y[i];
    for (std::size_t k = i + 1; k < n; ++k) sum -= l(k, i) * x[k];
    x[i] = sum / l(i, i);
  }
}

namespace {
// Scale-aware jitter: proportional to the mean diagonal magnitude.
double initial_jitter(const Matrix& a) {
  double trace = 0.0;
  for (std::size_t i = 0; i < a.rows(); ++i) trace += std::abs(a(i, i));
  const double mean_diag = a.rows() ? trace / static_cast<double>(a.rows()) : 1.0;
  return std::max(1e-12, 1e-10 * mean_diag);
}
}  // namespace

std::optional<CholeskyFactorization> CholeskyFactorization::compute(
    Matrix a, int max_jitter_tries) {
  CPR_PROFILE_SCOPE("potrf");
  CPR_CHECK_MSG(a.rows() == a.cols(), "cholesky: matrix must be square");
  const std::size_t n = a.rows();
  // The tiled path only pays off past one tile; below that it would factor a
  // single tile with the same arithmetic after a round-trip copy, so small
  // systems (the ALS rank solves) stay on the serial path. Results are
  // bitwise-identical either way, making the threshold invisible to callers.
  const bool tiled =
      kernel_mode() == KernelMode::Blocked && n > kDefaultTileSize;

  CholeskyFactorization fact;
  fact.n_ = n;
  fact.tiled_ = tiled;

  double next_jitter = initial_jitter(a);
  for (int attempt = 0; attempt <= max_jitter_tries; ++attempt) {
    // Each attempt factors a fresh copy of the pristine input plus a single
    // jitter term — never the half-factored or previously jittered buffer —
    // so jitter cannot accumulate across retries.
    double jitter = 0.0;
    if (attempt > 0) {
      jitter = next_jitter;
      next_jitter *= 100.0;
    }
    if (tiled) {
      TiledMatrix work = TiledMatrix::from_matrix(a);
      if (jitter != 0.0) {
        for (std::size_t i = 0; i < n; ++i) work(i, i) += jitter;
      }
      if (cholesky_factor_tiled(work)) {
        fact.tiled_l_ = std::move(work);
        fact.jitter_ = jitter;
        return fact;
      }
    } else {
      Matrix work = a;
      if (jitter != 0.0) {
        for (std::size_t i = 0; i < n; ++i) work(i, i) += jitter;
      }
      if (cholesky_factor(work)) {
        fact.serial_l_ = std::move(work);
        fact.jitter_ = jitter;
        return fact;
      }
    }
  }
  return std::nullopt;
}

Vector CholeskyFactorization::solve(const Vector& b) const {
  CPR_CHECK(b.size() == n_);
  Vector y, x;
  if (tiled_) {
    forward_substitute_tiled(tiled_l_, b, y);
    backward_substitute_t_tiled(tiled_l_, y, x);
  } else {
    forward_substitute(serial_l_, b, y);
    backward_substitute_t(serial_l_, y, x);
  }
  return x;
}

Matrix CholeskyFactorization::solve_multi(const Matrix& b) const {
  CPR_CHECK(b.rows() == n_);
  Matrix x(b.rows(), b.cols());
  Vector column(b.rows()), y, xi;
  for (std::size_t j = 0; j < b.cols(); ++j) {
    for (std::size_t i = 0; i < b.rows(); ++i) column[i] = b(i, j);
    if (tiled_) {
      forward_substitute_tiled(tiled_l_, column, y);
      backward_substitute_t_tiled(tiled_l_, y, xi);
    } else {
      forward_substitute(serial_l_, column, y);
      backward_substitute_t(serial_l_, y, xi);
    }
    for (std::size_t i = 0; i < b.rows(); ++i) x(i, j) = xi[i];
  }
  return x;
}

double CholeskyFactorization::logdet() const {
  double logdet = 0.0;
  if (tiled_) {
    for (std::size_t i = 0; i < n_; ++i) logdet += std::log(tiled_l_(i, i));
  } else {
    for (std::size_t i = 0; i < n_; ++i) logdet += std::log(serial_l_(i, i));
  }
  return 2.0 * logdet;
}

Matrix CholeskyFactorization::factor() const {
  return tiled_ ? tiled_l_.to_matrix() : serial_l_;
}

std::optional<Vector> solve_spd(Matrix a, Vector b, int max_jitter_tries) {
  CPR_CHECK(a.rows() == b.size());
  const auto fact = CholeskyFactorization::compute(std::move(a), max_jitter_tries);
  if (!fact) return std::nullopt;
  return fact->solve(b);
}

std::optional<Matrix> solve_spd_multi(Matrix a, const Matrix& b, int max_jitter_tries) {
  CPR_CHECK(a.rows() == b.rows());
  const auto fact = CholeskyFactorization::compute(std::move(a), max_jitter_tries);
  if (!fact) return std::nullopt;
  return fact->solve_multi(b);
}

std::optional<double> logdet_spd(Matrix a) {
  // No jitter here: logdet of a silently regularized matrix would be a lie.
  const auto fact = CholeskyFactorization::compute(std::move(a), 0);
  if (!fact) return std::nullopt;
  return fact->logdet();
}

}  // namespace cpr::linalg
