#pragma once
// Fused normal-equation assembly — part of the blocked SIMD kernel layer.
//
// The ALS row solve of the completion optimizers assembles, per factor row,
// the rank x rank Gram matrix G = Z^T Z and the right-hand side b = Z^T w of
// the ridge-regularized normal equations, where Z packs the Hadamard rows of
// the row's observed entries. Calling syrk_tn + gemv_t separately streams Z
// twice; this kernel fuses both products into a single pass over the row
// block, with the rank loops vectorized over restrict-qualified pointers.
// Per output element the accumulation order over block rows is the packed
// order, so assembling a row's entries tile-by-tile reproduces the scalar
// reference (one entry at a time) bitwise.

#include <cstddef>

#include "linalg/matrix.hpp"

namespace cpr::linalg {

/// \brief One-pass accumulation of `gram += Z^T Z` (upper triangle only) and
///        `rhs += Z^T w` over a packed row block.
/// \param z      row-major n_rows x rank block (e.g. Hadamard rows).
/// \param w      n_rows weights (e.g. observed tensor values).
/// \param n_rows rows in the block.
/// \param rank   columns of the block; `gram` must be rank x rank and `rhs`
///               length rank.
/// \param gram   accumulated Gram matrix; only the upper triangle (s >= r)
///               is written — mirror it after the final tile.
/// \param rhs    accumulated right-hand side.
///
/// Contributions accumulate row-by-row in block order: element (r, s) of
/// `gram` receives z[b*rank+r] * z[b*rank+s] for b = 0..n_rows-1 in that
/// exact order, matching the per-entry scalar assembly bitwise.
void fused_gram_rhs(const double* z, const double* w, std::size_t n_rows,
                    std::size_t rank, Matrix& gram, Vector& rhs);

}  // namespace cpr::linalg
