#pragma once
// Singular value decomposition.
//
// Two entry points:
//  * `svd` — full thin SVD via one-sided Jacobi (robust, O(mn^2) per sweep);
//    used for the Figure 1 analysis of discretized performance functions.
//  * `rank1_svd` — dominant singular triple via power iteration on A^T A;
//    used by the Section 5.3 extrapolation model, where Perron–Frobenius
//    guarantees the leading singular vectors of a positive matrix are
//    positive (we canonicalize signs so they are).

#include "linalg/matrix.hpp"

namespace cpr::linalg {

struct SvdResult {
  Matrix u;        ///< m-by-k left singular vectors (columns)
  Vector sigma;    ///< k singular values, non-increasing
  Matrix v;        ///< n-by-k right singular vectors (columns)
};

/// Thin SVD of an m-by-n matrix (k = min(m, n)) via one-sided Jacobi
/// rotations applied to the columns of A.
SvdResult svd(const Matrix& a, int max_sweeps = 60, double tol = 1e-12);

/// Reconstructs U * diag(sigma[0..rank)) * V^T truncated to `rank` triples.
Matrix svd_truncate(const SvdResult& s, std::size_t rank);

struct Rank1Svd {
  Vector u;      ///< unit left singular vector (length m)
  double sigma;  ///< dominant singular value
  Vector v;      ///< unit right singular vector (length n)
};

/// Dominant singular triple via power iteration; sign-canonicalized so the
/// entry of largest magnitude in u is positive (for a strictly positive
/// matrix this makes both u and v entrywise positive).
Rank1Svd rank1_svd(const Matrix& a, int max_iters = 500, double tol = 1e-12);

}  // namespace cpr::linalg
