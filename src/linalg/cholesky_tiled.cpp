#include "linalg/cholesky_tiled.hpp"

#include <atomic>

#include "linalg/tile_kernels.hpp"

namespace cpr::linalg {

bool cholesky_factor_tiled(TiledMatrix& a) {
  CPR_CHECK_MSG(a.rows() == a.cols(), "cholesky_tiled: matrix must be square");
  const std::size_t nt = a.n_tile_rows();
  const std::size_t tb = a.tile_size();
  // A failed pivot poisons the run: later tasks drain without touching tiles
  // (the factor is discarded on failure, so partial state is irrelevant).
  std::atomic<bool> ok{true};

#ifdef CPR_HAVE_OPENMP
#pragma omp parallel default(shared)
#pragma omp single
  {
    // Tasks are created in the serial tile order, so tasks with an inout
    // dependence on the same tile run in exactly that order: every trailing
    // tile receives its syrk/gemm updates in ascending k — the serial
    // accumulation order — regardless of thread count. Loop locals (the tile
    // pointers and extents) are implicitly firstprivate in the tasks; `ok`
    // is shared from the enclosing parallel region.
    for (std::size_t k = 0; k < nt; ++k) {
      double* akk = a.tile(k, k);
      const std::size_t kk = a.tile_row_extent(k);
#pragma omp task depend(inout : akk[0])
      {
        if (ok.load(std::memory_order_relaxed) && !tile::potrf(akk, kk, tb)) {
          ok.store(false, std::memory_order_relaxed);
        }
      }
      for (std::size_t i = k + 1; i < nt; ++i) {
        double* aik = a.tile(i, k);
        const std::size_t ni = a.tile_row_extent(i);
#pragma omp task depend(in : akk[0]) depend(inout : aik[0])
        {
          if (ok.load(std::memory_order_relaxed)) {
            tile::trsm(akk, kk, tb, aik, ni, tb);
          }
        }
      }
      for (std::size_t i = k + 1; i < nt; ++i) {
        double* aik = a.tile(i, k);
        double* aii = a.tile(i, i);
        const std::size_t ni = a.tile_row_extent(i);
#pragma omp task depend(in : aik[0]) depend(inout : aii[0])
        {
          if (ok.load(std::memory_order_relaxed)) {
            tile::syrk(aik, ni, kk, tb, aii, tb);
          }
        }
        for (std::size_t j = k + 1; j < i; ++j) {
          double* ajk = a.tile(j, k);
          double* aij = a.tile(i, j);
          const std::size_t nj = a.tile_row_extent(j);
#pragma omp task depend(in : aik[0], ajk[0]) depend(inout : aij[0])
          {
            if (ok.load(std::memory_order_relaxed)) {
              tile::gemm(aik, ni, tb, ajk, nj, tb, kk, aij, tb);
            }
          }
        }
      }
    }
  }  // implicit barrier: all tasks complete
#else
  for (std::size_t k = 0; k < nt && ok.load(std::memory_order_relaxed); ++k) {
    double* akk = a.tile(k, k);
    const std::size_t kk = a.tile_row_extent(k);
    if (!tile::potrf(akk, kk, tb)) {
      ok.store(false, std::memory_order_relaxed);
      break;
    }
    for (std::size_t i = k + 1; i < nt; ++i) {
      tile::trsm(akk, kk, tb, a.tile(i, k), a.tile_row_extent(i), tb);
    }
    for (std::size_t i = k + 1; i < nt; ++i) {
      const double* aik = a.tile(i, k);
      const std::size_t ni = a.tile_row_extent(i);
      tile::syrk(aik, ni, kk, tb, a.tile(i, i), tb);
      for (std::size_t j = k + 1; j < i; ++j) {
        tile::gemm(aik, ni, tb, a.tile(j, k), a.tile_row_extent(j), tb, kk,
                   a.tile(i, j), tb);
      }
    }
  }
#endif
  return ok.load(std::memory_order_relaxed);
}

void forward_substitute_tiled(const TiledMatrix& l, const Vector& b, Vector& y) {
  const std::size_t n = l.rows();
  CPR_CHECK(b.size() == n);
  y.assign(n, 0.0);
  const std::size_t tb = l.tile_size();
  for (std::size_t i = 0; i < n; ++i) {
    const std::size_t ti = i / tb;
    const std::size_t li = i % tb;
    double sum = b[i];
    // Tiles left of the diagonal tile are full-width; then the in-tile
    // remainder — global k ascending throughout, as in the serial routine.
    for (std::size_t tk = 0; tk < ti; ++tk) {
      const double* row = l.tile(ti, tk) + li * tb;
      const double* yk = y.data() + tk * tb;
      for (std::size_t k = 0; k < tb; ++k) sum -= row[k] * yk[k];
    }
    const double* row = l.tile(ti, ti) + li * tb;
    const double* yk = y.data() + ti * tb;
    for (std::size_t k = 0; k < li; ++k) sum -= row[k] * yk[k];
    y[i] = sum / row[li];
  }
}

void backward_substitute_t_tiled(const TiledMatrix& l, const Vector& y, Vector& x) {
  const std::size_t n = l.rows();
  CPR_CHECK(y.size() == n);
  x.assign(n, 0.0);
  const std::size_t tb = l.tile_size();
  for (std::size_t ii = n; ii > 0; --ii) {
    const std::size_t i = ii - 1;
    const std::size_t ti = i / tb;
    const std::size_t li = i % tb;
    double sum = y[i];
    // Serial order is k = i+1 .. n-1 ascending: the remainder of the
    // diagonal tile's column first, then the tiles below it.
    const double* diag = l.tile(ti, ti);
    {
      const std::size_t nk = l.tile_row_extent(ti);
      const double* xk = x.data() + ti * tb;
      for (std::size_t lk = li + 1; lk < nk; ++lk) {
        sum -= diag[lk * tb + li] * xk[lk];
      }
    }
    for (std::size_t tk = ti + 1; tk < l.n_tile_rows(); ++tk) {
      const double* t = l.tile(tk, ti);
      const std::size_t nk = l.tile_row_extent(tk);
      const double* xk = x.data() + tk * tb;
      for (std::size_t lk = 0; lk < nk; ++lk) sum -= t[lk * tb + li] * xk[lk];
    }
    x[i] = sum / diag[li * tb + li];
  }
}

}  // namespace cpr::linalg
