#include "linalg/matrix.hpp"

#include <algorithm>
#include <cmath>

namespace cpr::linalg {

Matrix::Matrix(std::initializer_list<std::initializer_list<double>> init) {
  rows_ = init.size();
  cols_ = rows_ ? init.begin()->size() : 0;
  data_.reserve(rows_ * cols_);
  for (const auto& row : init) {
    CPR_CHECK_MSG(row.size() == cols_, "ragged initializer list");
    data_.insert(data_.end(), row.begin(), row.end());
  }
}

Vector Matrix::row(std::size_t i) const {
  CPR_CHECK(i < rows_);
  return Vector(row_ptr(i), row_ptr(i) + cols_);
}

Vector Matrix::col(std::size_t j) const {
  CPR_CHECK(j < cols_);
  Vector v(rows_);
  for (std::size_t i = 0; i < rows_; ++i) v[i] = (*this)(i, j);
  return v;
}

void Matrix::set_row(std::size_t i, const Vector& v) {
  CPR_CHECK(i < rows_ && v.size() == cols_);
  std::copy(v.begin(), v.end(), row_ptr(i));
}

void Matrix::set_col(std::size_t j, const Vector& v) {
  CPR_CHECK(j < cols_ && v.size() == rows_);
  for (std::size_t i = 0; i < rows_; ++i) (*this)(i, j) = v[i];
}

void Matrix::set_identity() {
  CPR_CHECK_MSG(rows_ == cols_, "identity requires a square matrix");
  fill(0.0);
  for (std::size_t i = 0; i < rows_; ++i) (*this)(i, i) = 1.0;
}

Matrix Matrix::transposed() const {
  Matrix t(cols_, rows_);
  for (std::size_t i = 0; i < rows_; ++i) {
    for (std::size_t j = 0; j < cols_; ++j) t(j, i) = (*this)(i, j);
  }
  return t;
}

double Matrix::frobenius_norm() const {
  double sum = 0.0;
  for (const double v : data_) sum += v * v;
  return std::sqrt(sum);
}

Matrix& Matrix::operator+=(const Matrix& other) {
  CPR_CHECK(same_shape(other));
  for (std::size_t k = 0; k < data_.size(); ++k) data_[k] += other.data_[k];
  return *this;
}

Matrix& Matrix::operator-=(const Matrix& other) {
  CPR_CHECK(same_shape(other));
  for (std::size_t k = 0; k < data_.size(); ++k) data_[k] -= other.data_[k];
  return *this;
}

Matrix& Matrix::operator*=(double scalar) {
  for (double& v : data_) v *= scalar;
  return *this;
}

void Matrix::serialize(SerialSink& sink) const {
  sink.write_u64(rows_);
  sink.write_u64(cols_);
  if (sink.quant_mode() == QuantMode::F64) {
    // Version-1 framing, byte-identical to pre-quantization archives.
    sink.write_doubles(data_);
    return;
  }
  util::write_quantized_block(sink, data_, cols_, sink.quant_mode());
}

Matrix Matrix::deserialize(BufferSource& source) {
  Matrix m;
  m.rows_ = source.read_u64();
  m.cols_ = source.read_u64();
  if (source.quantized_framing()) {
    // The element count is implied by the shape; bound it against the
    // remaining bytes (at the smallest possible element footprint) before
    // read_quantized_block allocates.
    CPR_CHECK_MSG(m.cols_ == 0 || m.rows_ <= source.remaining() / m.cols_,
                  "serialized buffer underrun");
    m.data_ = util::read_quantized_block(source, m.rows_ * m.cols_, m.cols_);
  } else {
    m.data_ = source.read_doubles();
  }
  CPR_CHECK(m.data_.size() == m.rows_ * m.cols_);
  return m;
}

double max_abs_diff(const Matrix& a, const Matrix& b) {
  CPR_CHECK(a.same_shape(b));
  double max_diff = 0.0;
  for (std::size_t i = 0; i < a.rows(); ++i) {
    for (std::size_t j = 0; j < a.cols(); ++j) {
      max_diff = std::max(max_diff, std::abs(a(i, j) - b(i, j)));
    }
  }
  return max_diff;
}

}  // namespace cpr::linalg
