#include "linalg/fused.hpp"

#include "obs/profile.hpp"
#include "util/check.hpp"
#include "util/simd.hpp"

namespace cpr::linalg {

void fused_gram_rhs(const double* z, const double* w, std::size_t n_rows,
                    std::size_t rank, Matrix& gram, Vector& rhs) {
  CPR_CHECK(gram.rows() == rank && gram.cols() == rank && rhs.size() == rank);
  CPR_PROFILE_SCOPE("fused_gram_rhs");
  for (std::size_t b = 0; b < n_rows; ++b) {
    const double* __restrict__ zb = z + b * rank;
    const double wb = w[b];
    double* __restrict__ rhs_ptr = rhs.data();
    CPR_SIMD
    for (std::size_t r = 0; r < rank; ++r) rhs_ptr[r] += wb * zb[r];
    for (std::size_t r = 0; r < rank; ++r) {
      const double zr = zb[r];
      double* __restrict__ gr = gram.row_ptr(r);
      CPR_SIMD
      for (std::size_t s = r; s < rank; ++s) gr[s] += zr * zb[s];
    }
  }
}

}  // namespace cpr::linalg
