#pragma once
// LU factorization with partial pivoting for general square solves
// (used by Newton steps on non-SPD Hessians in the AMN completer).

#include <optional>

#include "linalg/matrix.hpp"

namespace cpr::linalg {

/// Solves A x = b for general square A via LU with partial pivoting.
/// Returns nullopt if A is numerically singular.
std::optional<Vector> solve_lu(Matrix a, Vector b);

}  // namespace cpr::linalg
