#include "linalg/tiled_matrix.hpp"

namespace cpr::linalg {

namespace {
// Validated before tile_rows_/tile_cols_ divide by it in the initializer list.
std::size_t checked_tile(std::size_t tile_size) {
  CPR_CHECK_MSG(tile_size >= 1, "TiledMatrix: tile size must be >= 1");
  return tile_size;
}
}  // namespace

TiledMatrix::TiledMatrix(std::size_t rows, std::size_t cols, std::size_t tile_size)
    : rows_(rows),
      cols_(cols),
      tile_(checked_tile(tile_size)),
      tile_rows_((rows + tile_ - 1) / tile_),
      tile_cols_((cols + tile_ - 1) / tile_),
      data_(tile_rows_ * tile_cols_ * tile_ * tile_, 0.0) {}

TiledMatrix TiledMatrix::from_matrix(const Matrix& m, std::size_t tile_size) {
  TiledMatrix out(m.rows(), m.cols(), tile_size);
  const std::size_t tb = out.tile_;
  for (std::size_t ti = 0; ti < out.tile_rows_; ++ti) {
    const std::size_t ni = out.tile_row_extent(ti);
    for (std::size_t tj = 0; tj < out.tile_cols_; ++tj) {
      const std::size_t nj = out.tile_col_extent(tj);
      double* t = out.tile(ti, tj);
      for (std::size_t i = 0; i < ni; ++i) {
        const double* src = m.row_ptr(ti * tb + i) + tj * tb;
        double* dst = t + i * tb;
        for (std::size_t j = 0; j < nj; ++j) dst[j] = src[j];
      }
    }
  }
  return out;
}

Matrix TiledMatrix::to_matrix() const {
  Matrix out(rows_, cols_);
  for (std::size_t ti = 0; ti < tile_rows_; ++ti) {
    const std::size_t ni = tile_row_extent(ti);
    for (std::size_t tj = 0; tj < tile_cols_; ++tj) {
      const std::size_t nj = tile_col_extent(tj);
      const double* t = tile(ti, tj);
      for (std::size_t i = 0; i < ni; ++i) {
        const double* src = t + i * tile_;
        double* dst = out.row_ptr(ti * tile_ + i) + tj * tile_;
        for (std::size_t j = 0; j < nj; ++j) dst[j] = src[j];
      }
    }
  }
  return out;
}

}  // namespace cpr::linalg
