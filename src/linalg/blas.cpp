#include "linalg/blas.hpp"

#include <cmath>

#ifdef CPR_HAVE_OPENMP
#include <omp.h>
#endif

namespace cpr::linalg {

void gemm(const Matrix& a, const Matrix& b, Matrix& c, double alpha, double beta) {
  CPR_CHECK_MSG(a.cols() == b.rows(), "gemm: inner dimensions differ");
  CPR_CHECK_MSG(c.rows() == a.rows() && c.cols() == b.cols(), "gemm: bad output shape");
  const std::size_t m = a.rows(), k = a.cols(), n = b.cols();
#ifdef CPR_HAVE_OPENMP
#pragma omp parallel for schedule(static) if (m * n * k > 1u << 16)
#endif
  for (std::size_t i = 0; i < m; ++i) {
    double* ci = c.row_ptr(i);
    for (std::size_t j = 0; j < n; ++j) ci[j] *= beta;
    const double* ai = a.row_ptr(i);
    for (std::size_t p = 0; p < k; ++p) {
      const double aip = alpha * ai[p];
      const double* bp = b.row_ptr(p);
      for (std::size_t j = 0; j < n; ++j) ci[j] += aip * bp[j];
    }
  }
}

void gemm_tn(const Matrix& a, const Matrix& b, Matrix& c, double alpha, double beta) {
  CPR_CHECK_MSG(a.rows() == b.rows(), "gemm_tn: inner dimensions differ");
  CPR_CHECK_MSG(c.rows() == a.cols() && c.cols() == b.cols(), "gemm_tn: bad output shape");
  const std::size_t m = a.cols(), k = a.rows(), n = b.cols();
#ifdef CPR_HAVE_OPENMP
  if (omp_get_max_threads() > 1 && m * n * k > 1u << 16) {
    // Each thread owns a stripe of output rows; per element the accumulation
    // order over p is the serial order, so the result matches the serial
    // kernel bitwise. Column-strided reads of A are the price of giving
    // threads disjoint outputs; the parallel win covers it at these sizes.
#pragma omp parallel for schedule(static)
    for (std::size_t i = 0; i < m; ++i) {
      double* ci = c.row_ptr(i);
      for (std::size_t j = 0; j < n; ++j) ci[j] *= beta;
      for (std::size_t p = 0; p < k; ++p) {
        const double api = alpha * a.row_ptr(p)[i];
        const double* bp = b.row_ptr(p);
        for (std::size_t j = 0; j < n; ++j) ci[j] += api * bp[j];
      }
    }
    return;
  }
#endif
  for (std::size_t i = 0; i < m; ++i) {
    double* ci = c.row_ptr(i);
    for (std::size_t j = 0; j < n; ++j) ci[j] *= beta;
  }
  // Accumulate rank-1 contributions row-by-row of A/B (streaming access).
  for (std::size_t p = 0; p < k; ++p) {
    const double* ap = a.row_ptr(p);
    const double* bp = b.row_ptr(p);
    for (std::size_t i = 0; i < m; ++i) {
      const double api = alpha * ap[i];
      double* ci = c.row_ptr(i);
      for (std::size_t j = 0; j < n; ++j) ci[j] += api * bp[j];
    }
  }
}

void gemv(const Matrix& a, const Vector& x, Vector& y, double alpha, double beta) {
  CPR_CHECK_MSG(a.cols() == x.size() && a.rows() == y.size(), "gemv: bad shapes");
#ifdef CPR_HAVE_OPENMP
#pragma omp parallel for schedule(static) if (a.size() > 1u << 16)
#endif
  for (std::size_t i = 0; i < a.rows(); ++i) {
    const double* ai = a.row_ptr(i);
    double sum = 0.0;
    for (std::size_t j = 0; j < a.cols(); ++j) sum += ai[j] * x[j];
    y[i] = alpha * sum + beta * y[i];
  }
}

void gemv_t(const Matrix& a, const Vector& x, Vector& y, double alpha, double beta) {
  CPR_CHECK_MSG(a.rows() == x.size() && a.cols() == y.size(), "gemv_t: bad shapes");
  const std::size_t n = a.cols();
  // Streams A row-major over a contiguous column block [j0, j1); each
  // element's accumulation order over i is the serial order, so any column
  // partition yields a bitwise-identical result.
  const auto accumulate_columns = [&](std::size_t j0, std::size_t j1) {
    for (std::size_t j = j0; j < j1; ++j) y[j] *= beta;
    for (std::size_t i = 0; i < a.rows(); ++i) {
      const double* ai = a.row_ptr(i);
      const double xi = alpha * x[i];
      for (std::size_t j = j0; j < j1; ++j) y[j] += xi * ai[j];
    }
  };
#ifdef CPR_HAVE_OPENMP
  if (omp_get_max_threads() > 1 && a.size() > 1u << 16) {
#pragma omp parallel
    {
      const auto tid = static_cast<std::size_t>(omp_get_thread_num());
      const auto n_threads = static_cast<std::size_t>(omp_get_num_threads());
      accumulate_columns(n * tid / n_threads, n * (tid + 1) / n_threads);
    }
    return;
  }
#endif
  accumulate_columns(0, n);
}

void syrk_tn(const Matrix& a, Matrix& c) {
  CPR_CHECK_MSG(c.rows() == a.cols() && c.cols() == a.cols(), "syrk_tn: bad output shape");
  c.fill(0.0);
  const std::size_t n = a.cols(), k = a.rows();
#ifdef CPR_HAVE_OPENMP
  if (omp_get_max_threads() > 1 && n * n * k > 1u << 16) {
    // Row-owned upper triangle; per element the accumulation order over p is
    // the serial order, so the result matches the serial kernel bitwise.
#pragma omp parallel for schedule(dynamic, 8)
    for (std::size_t i = 0; i < n; ++i) {
      double* ci = c.row_ptr(i);
      for (std::size_t p = 0; p < k; ++p) {
        const double* ap = a.row_ptr(p);
        const double api = ap[i];
        for (std::size_t j = i; j < n; ++j) ci[j] += api * ap[j];
      }
    }
  } else
#endif
  {
    // Streaming rank-1 accumulation: each row of A is read exactly once.
    for (std::size_t p = 0; p < k; ++p) {
      const double* ap = a.row_ptr(p);
      for (std::size_t i = 0; i < n; ++i) {
        const double api = ap[i];
        double* ci = c.row_ptr(i);
        for (std::size_t j = i; j < n; ++j) ci[j] += api * ap[j];
      }
    }
  }
  // Mirror the upper triangle.
  for (std::size_t i = 0; i < c.rows(); ++i) {
    for (std::size_t j = 0; j < i; ++j) c(i, j) = c(j, i);
  }
}

double dot(const Vector& x, const Vector& y) {
  CPR_CHECK(x.size() == y.size());
  double sum = 0.0;
  for (std::size_t i = 0; i < x.size(); ++i) sum += x[i] * y[i];
  return sum;
}

double norm2(const Vector& x) { return std::sqrt(dot(x, x)); }

void axpy(double alpha, const Vector& x, Vector& y) {
  CPR_CHECK(x.size() == y.size());
  for (std::size_t i = 0; i < x.size(); ++i) y[i] += alpha * x[i];
}

void scal(double alpha, Vector& x) {
  for (double& v : x) v *= alpha;
}

}  // namespace cpr::linalg
