#pragma once
// Conjugate gradient for SPD operators given in functional (matrix-free)
// form. The sparse-grid baseline solves its regularized normal equations
// through this interface without materializing the design matrix.

#include <functional>

#include "linalg/matrix.hpp"

namespace cpr::linalg {

struct CgResult {
  Vector x;
  int iterations = 0;
  double residual_norm = 0.0;
  bool converged = false;
};

/// Solves A x = b where apply_a computes y = A x for SPD A.
/// Stops when ||r|| <= tol * ||b|| or after max_iters iterations.
CgResult conjugate_gradient(
    const std::function<void(const Vector&, Vector&)>& apply_a, const Vector& b,
    int max_iters = 1000, double tol = 1e-10, const Vector* x0 = nullptr);

}  // namespace cpr::linalg
