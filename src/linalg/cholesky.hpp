#pragma once
// Cholesky factorization and SPD solves.
//
// The ALS normal equations (G + lambda I) x = b with G = sum of outer
// products are SPD by construction; Cholesky is the workhorse solver for
// every per-row subproblem in completion/ and for GP regression.

#include <optional>

#include "linalg/matrix.hpp"

namespace cpr::linalg {

/// In-place lower Cholesky factor of SPD matrix `a` (upper triangle
/// untouched). Returns false if a non-positive pivot is encountered.
bool cholesky_factor(Matrix& a);

/// Solves L y = b (forward substitution) given lower-triangular L.
void forward_substitute(const Matrix& l, const Vector& b, Vector& y);

/// Solves L^T x = y (back substitution) given lower-triangular L.
void backward_substitute_t(const Matrix& l, const Vector& y, Vector& x);

/// Solves A x = b for SPD A via Cholesky. If factorization fails, retries
/// with geometrically increasing diagonal jitter (up to `max_jitter_tries`).
/// Returns nullopt only if all retries fail.
std::optional<Vector> solve_spd(Matrix a, Vector b, int max_jitter_tries = 6);

/// Solves A X = B column-by-column for SPD A (B and X are cols-major splits).
std::optional<Matrix> solve_spd_multi(Matrix a, const Matrix& b, int max_jitter_tries = 6);

/// log(det(A)) for SPD A via Cholesky; nullopt if not positive definite.
std::optional<double> logdet_spd(Matrix a);

}  // namespace cpr::linalg
