#pragma once
// Cholesky factorization and SPD solves.
//
// The ALS normal equations (G + lambda I) x = b with G = sum of outer
// products are SPD by construction; Cholesky is the workhorse solver for
// every per-row subproblem in completion/ and for GP regression.
//
// Two implementations sit behind the `CPR_KERNEL` dispatch
// (util/kernel_mode.hpp): the serial reference below, and the task-graph
// tiled factorization of linalg/cholesky_tiled.hpp, which `blocked` mode
// uses for systems larger than one tile. Both are bitwise-equal, so the
// dispatch is invisible to callers (asserted in tests/linalg_test.cpp and
// tests/kernels_test.cpp).

#include <optional>

#include "linalg/matrix.hpp"
#include "linalg/tiled_matrix.hpp"

namespace cpr::linalg {

/// In-place lower Cholesky factor of SPD matrix `a` (upper triangle
/// untouched). Returns false if a non-positive pivot is encountered.
/// This is the serial reference; `CholeskyFactorization::compute` is the
/// dispatching entry point.
bool cholesky_factor(Matrix& a);

/// Solves L y = b (forward substitution) given lower-triangular L.
void forward_substitute(const Matrix& l, const Vector& b, Vector& y);

/// Solves L^T x = y (back substitution) given lower-triangular L.
void backward_substitute_t(const Matrix& l, const Vector& y, Vector& x);

/// \brief A computed Cholesky factor that can be reused across solves.
///
/// `solve_spd` and `logdet_spd` each factor from scratch; code that needs
/// both (e.g. GP marginal likelihood: solve for alpha *and* log det of the
/// same kernel matrix) computes this object once instead of paying the
/// O(n^3) factorization twice. The factor is stored tiled or row-major
/// according to the kernel mode at compute() time, so solves run end-to-end
/// on the representation the factorization produced.
class CholeskyFactorization {
 public:
  /// \brief Factors SPD `a`, dispatching on the ambient kernel mode.
  /// \param a the SPD matrix (taken by value; kept pristine internally so
  ///          every jitter retry restarts from the original input).
  /// \param max_jitter_tries failed factorizations are retried with
  ///          geometrically increasing diagonal jitter this many times; pass
  ///          0 to demand the unmodified matrix factor.
  /// \return the factorization, or nullopt if every attempt hit a
  ///         non-positive pivot.
  static std::optional<CholeskyFactorization> compute(Matrix a,
                                                      int max_jitter_tries = 6);

  /// \brief Solves A x = b with the stored factor (two triangular solves).
  Vector solve(const Vector& b) const;

  /// \brief Solves A X = B column-by-column.
  Matrix solve_multi(const Matrix& b) const;

  /// \brief log(det(A)) = 2 sum_i log L_ii of the factored matrix.
  double logdet() const;

  /// \brief Order of the factored system.
  std::size_t dimension() const { return n_; }

  /// \brief Diagonal jitter added on the successful attempt (0.0 when the
  ///        input factored as given). The factor corresponds to
  ///        A + jitter_applied() * I.
  double jitter_applied() const { return jitter_; }

  /// \brief The factor as a row-major matrix: L in the lower triangle, the
  ///        input's upper triangle untouched (copied out of tile storage
  ///        when the blocked path computed it).
  Matrix factor() const;

 private:
  CholeskyFactorization() = default;

  std::size_t n_ = 0;
  double jitter_ = 0.0;
  bool tiled_ = false;     ///< which storage below holds the factor
  Matrix serial_l_;        ///< serial-mode factor (row-major)
  TiledMatrix tiled_l_;    ///< blocked-mode factor (tile-major)
};

/// Solves A x = b for SPD A via Cholesky. If factorization fails, retries
/// with geometrically increasing diagonal jitter (up to `max_jitter_tries`).
/// Returns nullopt only if all retries fail.
std::optional<Vector> solve_spd(Matrix a, Vector b, int max_jitter_tries = 6);

/// Solves A X = B column-by-column for SPD A (B and X are cols-major splits).
std::optional<Matrix> solve_spd_multi(Matrix a, const Matrix& b, int max_jitter_tries = 6);

/// log(det(A)) for SPD A via Cholesky; nullopt if not positive definite.
std::optional<double> logdet_spd(Matrix a);

}  // namespace cpr::linalg
