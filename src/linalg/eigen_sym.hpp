#pragma once
// Symmetric eigendecomposition via the classical Jacobi rotation method.
//
// Needed by the GP baseline (kernel conditioning diagnostics) and tests that
// cross-check SVD against the eigendecomposition of A^T A.

#include "linalg/matrix.hpp"

namespace cpr::linalg {

struct SymEigResult {
  Vector eigenvalues;   ///< non-increasing
  Matrix eigenvectors;  ///< columns, same order as eigenvalues
};

/// Eigendecomposition of a symmetric matrix (only the lower triangle is
/// referenced conceptually; the input must be symmetric).
SymEigResult eigen_sym(Matrix a, int max_sweeps = 100, double tol = 1e-13);

}  // namespace cpr::linalg
