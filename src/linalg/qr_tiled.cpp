#include "linalg/qr_tiled.hpp"

#include <cmath>

#include "util/simd.hpp"

#ifdef CPR_HAVE_OPENMP
#include <omp.h>
#endif

namespace cpr::linalg {

namespace {

constexpr std::size_t kPanelWidth = 32;  ///< reflector columns per panel
constexpr std::size_t kColTile = 64;     ///< trailing columns per update tile

/// Applies reflectors [k0, k1) to columns [j0, j1), one reflector at a time
/// in ascending k. Per column the arithmetic chain is exactly the serial
/// qr_factor update; the j loops vectorize over the contiguous column tile.
/// `w` must hold j1 - j0 doubles.
void apply_reflectors(Matrix& a, const Vector& tau, std::size_t k0,
                      std::size_t k1, std::size_t j0, std::size_t j1,
                      double* __restrict__ w) {
  const std::size_t m = a.rows();
  const std::size_t width = j1 - j0;
  for (std::size_t k = k0; k < k1; ++k) {
    if (tau[k] == 0.0) continue;
    const double tk = tau[k];
    const double* __restrict__ rowk_in = a.row_ptr(k) + j0;
    for (std::size_t j = 0; j < width; ++j) w[j] = rowk_in[j];
    for (std::size_t i = k + 1; i < m; ++i) {
      const double aik = a(i, k);
      const double* __restrict__ rowi = a.row_ptr(i) + j0;
      CPR_SIMD
      for (std::size_t j = 0; j < width; ++j) w[j] += aik * rowi[j];
    }
    double* __restrict__ rowk = a.row_ptr(k) + j0;
    CPR_SIMD
    for (std::size_t j = 0; j < width; ++j) {
      w[j] *= tk;
      rowk[j] -= w[j];
    }
    for (std::size_t i = k + 1; i < m; ++i) {
      const double aik = a(i, k);
      double* __restrict__ rowi = a.row_ptr(i) + j0;
      CPR_SIMD
      for (std::size_t j = 0; j < width; ++j) rowi[j] -= aik * w[j];
    }
  }
}

}  // namespace

QrFactorization qr_factor_blocked(Matrix a) {
  const std::size_t m = a.rows(), n = a.cols();
  CPR_CHECK_MSG(m >= n, "qr_factor requires rows >= cols");
  Vector tau(n, 0.0);
  double panel_w[kPanelWidth];
  for (std::size_t p0 = 0; p0 < n; p0 += kPanelWidth) {
    const std::size_t p1 = std::min(p0 + kPanelWidth, n);
    // Factor the panel column-by-column with the reference reflector
    // arithmetic, applying each reflector to the rest of the panel at once.
    for (std::size_t k = p0; k < p1; ++k) {
      double norm_sq = 0.0;
      for (std::size_t i = k; i < m; ++i) norm_sq += a(i, k) * a(i, k);
      const double norm = std::sqrt(norm_sq);
      if (norm == 0.0) {
        tau[k] = 0.0;
        continue;
      }
      const double alpha = a(k, k) >= 0.0 ? -norm : norm;
      const double v0 = a(k, k) - alpha;
      for (std::size_t i = k + 1; i < m; ++i) a(i, k) /= v0;
      tau[k] = -v0 / alpha;  // tau = 2 / (v^T v) with v_k = 1
      a(k, k) = alpha;
      apply_reflectors(a, tau, k, k + 1, k + 1, p1, panel_w);
    }
    // Apply the whole panel to the trailing columns in independent column
    // tiles; each tile sees the reflectors in ascending k, so per element
    // the result is bitwise-identical at any thread count.
    if (p1 < n) {
      const std::size_t n_tiles = (n - p1 + kColTile - 1) / kColTile;
#ifdef CPR_HAVE_OPENMP
#pragma omp parallel for schedule(dynamic) if (n_tiles > 1 && (m - p0) * (n - p1) > 1u << 14)
#endif
      for (std::size_t t = 0; t < n_tiles; ++t) {
        const std::size_t j0 = p1 + t * kColTile;
        const std::size_t j1 = std::min(j0 + kColTile, n);
        double w[kColTile];
        apply_reflectors(a, tau, p0, p1, j0, j1, w);
      }
    }
  }
  return QrFactorization{std::move(a), std::move(tau)};
}

}  // namespace cpr::linalg
