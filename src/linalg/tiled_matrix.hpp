#pragma once
// Tile-major dense matrix storage for the task-graph blocked factorizations.
//
// A TiledMatrix partitions an n_rows x n_cols matrix into square tiles of a
// configurable size; each tile is a contiguous row-major block, and tiles are
// laid out row-major in one allocation. Tile contiguity is what makes the
// blocked Cholesky a task graph: every potrf/trsm/syrk/gemm task reads and
// writes whole tiles, so one pointer per tile is both the working set handle
// and the OpenMP `depend` clause address (linalg/cholesky_tiled.hpp).
// Edge tiles are zero-padded up to the full tile footprint — kernels loop to
// the effective extents, so the padding is never read or written.

#include <cstddef>
#include <vector>

#include "linalg/matrix.hpp"

namespace cpr::linalg {

/// \brief Default tile edge for the blocked factorizations: a 64 x 64 tile of
///        doubles is a 32 KiB block, sized so one output tile plus the two
///        operand tiles of a gemm task sit inside a typical L1d + L2 budget.
inline constexpr std::size_t kDefaultTileSize = 64;

/// \brief Dense matrix stored as contiguous tile-major blocks.
///
/// Conversion to/from the row-major `Matrix` copies values verbatim, so a
/// round trip is bitwise lossless. The element accessors address single
/// entries through the tile layout and are meant for the O(n^2) triangular
/// solves and for tests; the O(n^3) kernels go through `tile()` pointers.
class TiledMatrix {
 public:
  TiledMatrix() = default;

  /// \brief Zero-initialized rows-by-cols matrix tiled at `tile_size`.
  /// \param rows      matrix rows.
  /// \param cols      matrix columns.
  /// \param tile_size tile edge length (>= 1).
  TiledMatrix(std::size_t rows, std::size_t cols,
              std::size_t tile_size = kDefaultTileSize);

  /// \brief Tiles a row-major matrix (values copied bitwise).
  /// \param m         the source matrix.
  /// \param tile_size tile edge length (>= 1).
  static TiledMatrix from_matrix(const Matrix& m,
                                 std::size_t tile_size = kDefaultTileSize);

  /// \brief Converts back to a row-major matrix (values copied bitwise).
  Matrix to_matrix() const;

  std::size_t rows() const { return rows_; }
  std::size_t cols() const { return cols_; }
  std::size_t tile_size() const { return tile_; }

  /// \brief Number of tile rows (= ceil(rows / tile_size)).
  std::size_t n_tile_rows() const { return tile_rows_; }
  /// \brief Number of tile columns (= ceil(cols / tile_size)).
  std::size_t n_tile_cols() const { return tile_cols_; }

  /// \brief Contiguous row-major block of tile (ti, tj); stride tile_size().
  double* tile(std::size_t ti, std::size_t tj) {
    CPR_DCHECK(ti < tile_rows_ && tj < tile_cols_);
    return data_.data() + (ti * tile_cols_ + tj) * tile_ * tile_;
  }
  const double* tile(std::size_t ti, std::size_t tj) const {
    CPR_DCHECK(ti < tile_rows_ && tj < tile_cols_);
    return data_.data() + (ti * tile_cols_ + tj) * tile_ * tile_;
  }

  /// \brief Effective row extent of tile row `ti` (tile_size except at the
  ///        bottom edge).
  std::size_t tile_row_extent(std::size_t ti) const {
    return ti + 1 == tile_rows_ ? rows_ - ti * tile_ : tile_;
  }
  /// \brief Effective column extent of tile column `tj`.
  std::size_t tile_col_extent(std::size_t tj) const {
    return tj + 1 == tile_cols_ ? cols_ - tj * tile_ : tile_;
  }

  /// \brief Element access through the tile layout.
  double operator()(std::size_t i, std::size_t j) const {
    CPR_DCHECK(i < rows_ && j < cols_);
    return tile(i / tile_, j / tile_)[(i % tile_) * tile_ + (j % tile_)];
  }
  double& operator()(std::size_t i, std::size_t j) {
    CPR_DCHECK(i < rows_ && j < cols_);
    return tile(i / tile_, j / tile_)[(i % tile_) * tile_ + (j % tile_)];
  }

 private:
  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  std::size_t tile_ = kDefaultTileSize;
  std::size_t tile_rows_ = 0;
  std::size_t tile_cols_ = 0;
  std::vector<double> data_;  ///< tile-major blocks, zero-padded at the edges
};

}  // namespace cpr::linalg
