#pragma once
// Task-graph blocked Cholesky on TiledMatrix storage — the linalg tentpole
// of the `CPR_KERNEL=blocked` layer.
//
// The factorization is the classic right-looking tile decomposition: at each
// tile step k, potrf factors the diagonal tile, trsm solves the panel tiles
// below it, and syrk/gemm apply the symmetric/general trailing updates. With
// OpenMP the four kernels run as `#pragma omp task depend(...)` tasks keyed
// on tile base pointers, so independent tiles factor concurrently while the
// dependence graph serializes each tile's updates in task-creation order —
// ascending k, the serial accumulation order. Combined with the
// order-preserving tile kernels (linalg/tile_kernels.hpp) the factor is
// bitwise-equal to `cholesky_factor` at any tile size and thread count;
// tests/linalg_test.cpp asserts this across sizes and threads.
//
//   potrf(kk) ──► trsm(ik) ──► syrk(ik → ii), gemm(ik, jk → ij) ──► step k+1
//
// The tiled triangular solves walk elements in the exact serial substitution
// order (reading rows/columns through the tile layout), so solve_spd and
// logdet_spd run end-to-end on tiles with bitwise-identical results.

#include "linalg/matrix.hpp"
#include "linalg/tiled_matrix.hpp"

namespace cpr::linalg {

/// \brief In-place blocked lower Cholesky factor of SPD `a` as an OpenMP
///        task graph (sequential tile loop when OpenMP is off).
/// \param a tiled SPD matrix; on success the lower triangle holds L and the
///          strict upper triangle is untouched.
/// \return false if any diagonal tile hits a non-positive or non-finite
///         pivot (the non-SPD failure the serial reference reports); the
///         remaining tasks drain without further tile writes.
bool cholesky_factor_tiled(TiledMatrix& a);

/// \brief Solves L y = b on tiles (forward substitution).
/// \param l tiled lower Cholesky factor.
/// \param b right-hand side (length rows()).
/// \param y solution output; assigned to length rows().
///
/// Per element the subtractions run over ascending k with a final division,
/// matching `forward_substitute` bitwise.
void forward_substitute_tiled(const TiledMatrix& l, const Vector& b, Vector& y);

/// \brief Solves L^T x = y on tiles (back substitution), matching
///        `backward_substitute_t` bitwise.
/// \param l tiled lower Cholesky factor.
/// \param y forward-substitution result.
/// \param x solution output; assigned to length rows().
void backward_substitute_t_tiled(const TiledMatrix& l, const Vector& y, Vector& x);

}  // namespace cpr::linalg
