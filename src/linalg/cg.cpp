#include "linalg/cg.hpp"

#include <cmath>

#include "linalg/blas.hpp"

namespace cpr::linalg {

CgResult conjugate_gradient(const std::function<void(const Vector&, Vector&)>& apply_a,
                            const Vector& b, int max_iters, double tol, const Vector* x0) {
  const std::size_t n = b.size();
  CgResult result;
  result.x = x0 ? *x0 : Vector(n, 0.0);
  CPR_CHECK(result.x.size() == n);

  Vector r(n), p(n), ap(n);
  apply_a(result.x, ap);
  for (std::size_t i = 0; i < n; ++i) r[i] = b[i] - ap[i];
  p = r;
  double rs_old = dot(r, r);
  const double b_norm = std::max(norm2(b), 1e-300);

  for (int iter = 0; iter < max_iters; ++iter) {
    result.residual_norm = std::sqrt(rs_old);
    if (result.residual_norm <= tol * b_norm) {
      result.converged = true;
      result.iterations = iter;
      return result;
    }
    apply_a(p, ap);
    const double pap = dot(p, ap);
    if (pap <= 0.0 || !std::isfinite(pap)) break;  // loss of positive-definiteness
    const double alpha = rs_old / pap;
    axpy(alpha, p, result.x);
    axpy(-alpha, ap, r);
    const double rs_new = dot(r, r);
    const double beta = rs_new / rs_old;
    for (std::size_t i = 0; i < n; ++i) p[i] = r[i] + beta * p[i];
    rs_old = rs_new;
    result.iterations = iter + 1;
  }
  result.residual_norm = std::sqrt(rs_old);
  result.converged = result.residual_norm <= tol * b_norm;
  return result;
}

}  // namespace cpr::linalg
