#pragma once
// SIMD tile kernels of the blocked dense factorizations — the linalg side of
// the `CPR_KERNEL=blocked` layer (util/kernel_mode.hpp).
//
// Each kernel operates on contiguous row-major tiles (TiledMatrix blocks or
// sub-panels of a Matrix) and preserves, per output element, the exact
// accumulation order of the serial reference routines in linalg/cholesky.cpp:
// subtrahends are applied one factor-column k at a time in ascending k, and
// column scalings multiply by the same reciprocal the reference computes. The
// vectorized dimension is always a row index range (`CPR_SIMD` over
// contiguous j), never a reduction, so the blocked Cholesky is bitwise-equal
// to `cholesky_factor` at any tile size and thread count. This TU is
// compiled with the host ISA (-march=native where available) and FP
// contraction off, like tensor/mttkrp_blocked.cpp.

#include <cstddef>

namespace cpr::linalg::tile {

/// \brief In-place lower Cholesky factor of the leading n x n block of a
///        diagonal tile (the potrf task).
/// \param a   tile base pointer; row-major with stride `lda`.
/// \param n   effective tile extent.
/// \param lda tile row stride.
/// \return false on a non-positive or non-finite pivot (non-SPD input).
///
/// Identical arithmetic to `cholesky_factor` restricted to the tile: by the
/// time the task runs, every contribution with column index below the tile
/// has already been subtracted by the syrk tasks.
bool potrf(double* a, std::size_t n, std::size_t lda);

/// \brief Triangular solve of a panel tile against a factored diagonal tile:
///        A <- A * L^-T (the trsm task).
/// \param l   factored diagonal tile (lower triangle of `nj` columns).
/// \param nj  effective column extent of the diagonal tile.
/// \param ldl row stride of `l`.
/// \param a   panel tile below the diagonal; `ni` rows are solved in place.
/// \param ni  effective row extent of the panel tile.
/// \param lda row stride of `a`.
void trsm(const double* l, std::size_t nj, std::size_t ldl, double* a,
          std::size_t ni, std::size_t lda);

/// \brief Symmetric trailing update of a diagonal tile: C -= A * A^T on the
///        lower triangle only (the syrk task).
/// \param a   factor panel tile (ni rows, nk factored columns).
/// \param ni  effective extent of the diagonal tile (and rows of `a`).
/// \param nk  factored columns contributed by this task's tile column.
/// \param lda row stride of `a`.
/// \param c   diagonal tile updated in place; upper triangle untouched.
/// \param ldc row stride of `c`.
void syrk(const double* a, std::size_t ni, std::size_t nk, std::size_t lda,
          double* c, std::size_t ldc);

/// \brief General trailing update: C -= A * B^T (the gemm task).
/// \param a   left factor panel tile (ni x nk).
/// \param ni  rows of `c`.
/// \param lda row stride of `a`.
/// \param b   right factor panel tile (nj x nk).
/// \param nj  columns of `c`.
/// \param ldb row stride of `b`.
/// \param nk  factored columns contributed by this task's tile column.
/// \param c   updated tile (ni x nj).
/// \param ldc row stride of `c`.
///
/// B is packed transposed into thread-local scratch so the inner loop runs
/// `CPR_SIMD` over contiguous j while each element's k-subtractions stay in
/// ascending (serial) order.
void gemm(const double* a, std::size_t ni, std::size_t lda, const double* b,
          std::size_t nj, std::size_t ldb, std::size_t nk, double* c,
          std::size_t ldc);

}  // namespace cpr::linalg::tile
