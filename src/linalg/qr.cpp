#include "linalg/qr.hpp"

#include <cmath>

#include "linalg/qr_tiled.hpp"
#include "obs/profile.hpp"
#include "util/kernel_mode.hpp"

namespace cpr::linalg {

QrFactorization qr_factor_serial(Matrix a) {
  const std::size_t m = a.rows(), n = a.cols();
  CPR_CHECK_MSG(m >= n, "qr_factor requires rows >= cols");
  Vector tau(n, 0.0);
  for (std::size_t k = 0; k < n; ++k) {
    // Build the Householder reflector for column k below the diagonal.
    double norm_sq = 0.0;
    for (std::size_t i = k; i < m; ++i) norm_sq += a(i, k) * a(i, k);
    const double norm = std::sqrt(norm_sq);
    if (norm == 0.0) {
      tau[k] = 0.0;
      continue;
    }
    const double alpha = a(k, k) >= 0.0 ? -norm : norm;
    const double v0 = a(k, k) - alpha;
    // Normalize so v_k = 1; store v below the diagonal.
    for (std::size_t i = k + 1; i < m; ++i) a(i, k) /= v0;
    tau[k] = -v0 / alpha;  // tau = 2 / (v^T v) with v_k = 1
    a(k, k) = alpha;
    // Apply the reflector to the trailing columns.
    for (std::size_t j = k + 1; j < n; ++j) {
      double w = a(k, j);
      for (std::size_t i = k + 1; i < m; ++i) w += a(i, k) * a(i, j);
      w *= tau[k];
      a(k, j) -= w;
      for (std::size_t i = k + 1; i < m; ++i) a(i, j) -= a(i, k) * w;
    }
  }
  return QrFactorization{std::move(a), std::move(tau)};
}

QrFactorization qr_factor(Matrix a) {
  CPR_PROFILE_SCOPE("qr");
  // Both paths are bitwise-equal (the blocked panel QR applies reflectors in
  // the serial order; see linalg/qr_tiled.hpp), so the dispatch is invisible
  // to callers.
  if (kernel_mode() == KernelMode::Blocked) {
    return qr_factor_blocked(std::move(a));
  }
  return qr_factor_serial(std::move(a));
}

void QrFactorization::apply_qt(Vector& v) const {
  const std::size_t m = qr.rows(), n = qr.cols();
  CPR_CHECK(v.size() == m);
  for (std::size_t k = 0; k < n; ++k) {
    if (tau[k] == 0.0) continue;
    double w = v[k];
    for (std::size_t i = k + 1; i < m; ++i) w += qr(i, k) * v[i];
    w *= tau[k];
    v[k] -= w;
    for (std::size_t i = k + 1; i < m; ++i) v[i] -= qr(i, k) * w;
  }
}

Matrix QrFactorization::thin_q() const {
  const std::size_t m = qr.rows(), n = qr.cols();
  Matrix q(m, n, 0.0);
  // Apply reflectors in reverse to the first n columns of the identity.
  for (std::size_t j = 0; j < n; ++j) q(j, j) = 1.0;
  for (std::size_t col = 0; col < n; ++col) {
    Vector e = q.col(col);
    for (std::size_t kk = n; kk > 0; --kk) {
      const std::size_t k = kk - 1;
      if (tau[k] == 0.0) continue;
      double w = e[k];
      for (std::size_t i = k + 1; i < m; ++i) w += qr(i, k) * e[i];
      w *= tau[k];
      e[k] -= w;
      for (std::size_t i = k + 1; i < m; ++i) e[i] -= qr(i, k) * w;
    }
    q.set_col(col, e);
  }
  return q;
}

Matrix QrFactorization::r() const {
  const std::size_t n = qr.cols();
  Matrix out(n, n, 0.0);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = i; j < n; ++j) out(i, j) = qr(i, j);
  }
  return out;
}

Vector solve_least_squares(const Matrix& a, const Vector& b) {
  CPR_CHECK(a.rows() == b.size());
  CPR_CHECK_MSG(a.rows() >= a.cols(), "least squares requires rows >= cols");
  const auto fact = qr_factor(a);
  Vector qtb = b;
  fact.apply_qt(qtb);
  const std::size_t n = a.cols();
  // Guard tiny pivots so nearly rank-deficient designs stay solvable.
  double max_diag = 0.0;
  for (std::size_t i = 0; i < n; ++i) max_diag = std::max(max_diag, std::abs(fact.qr(i, i)));
  const double tiny = std::max(1e-300, 1e-12 * max_diag);
  Vector x(n, 0.0);
  for (std::size_t ii = n; ii > 0; --ii) {
    const std::size_t i = ii - 1;
    double sum = qtb[i];
    for (std::size_t j = i + 1; j < n; ++j) sum -= fact.qr(i, j) * x[j];
    const double diag = fact.qr(i, i);
    x[i] = std::abs(diag) < tiny ? 0.0 : sum / diag;
  }
  return x;
}

Vector solve_ridge(const Matrix& a, const Vector& b, double lambda) {
  if (lambda <= 0.0) return solve_least_squares(a, b);
  const std::size_t m = a.rows(), n = a.cols();
  Matrix augmented(m + n, n, 0.0);
  for (std::size_t i = 0; i < m; ++i) {
    for (std::size_t j = 0; j < n; ++j) augmented(i, j) = a(i, j);
  }
  const double sqrt_lambda = std::sqrt(lambda);
  for (std::size_t j = 0; j < n; ++j) augmented(m + j, j) = sqrt_lambda;
  Vector rhs(m + n, 0.0);
  std::copy(b.begin(), b.end(), rhs.begin());
  return solve_least_squares(augmented, rhs);
}

}  // namespace cpr::linalg
