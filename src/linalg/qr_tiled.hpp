#pragma once
// Blocked Householder QR — the linalg/QR side of the `CPR_KERNEL=blocked`
// layer (dispatched from `qr_factor`, linalg/qr.hpp).
//
// The columns are processed in panels: each panel is factored column-by-
// column with the reference reflector arithmetic, then the panel's
// reflectors are applied to the trailing columns in cache-sized column
// tiles. Per trailing column the reflectors apply one at a time in ascending
// k — the serial order — so no compact-WY aggregation is used (aggregating
// into a T factor would reassociate the arithmetic and break the bitwise
// contract). The win is locality and vectorization: the m x panel block
// stays hot while the update streams each column tile once per panel, and
// the gemm-shaped i-loops of the reflector application run `CPR_SIMD` over
// contiguous trailing columns (the reduction per column stays sequential).
// With OpenMP the independent column tiles of a panel update run in
// parallel. Bitwise equality with `qr_factor_serial` is asserted in
// tests/linalg_test.cpp. This TU shares the tile-kernel compile options
// (-march=native where available, FP contraction off).

#include "linalg/qr.hpp"

namespace cpr::linalg {

/// \brief Panel-blocked Householder QR of an m-by-n matrix (m >= n),
///        bitwise-equal to `qr_factor_serial`.
/// \param a the matrix to factor (taken by value, factored in place).
/// \return the same compact representation `qr_factor_serial` produces.
QrFactorization qr_factor_blocked(Matrix a);

}  // namespace cpr::linalg
