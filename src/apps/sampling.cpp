#include "apps/sampling.hpp"

#include <algorithm>
#include <cmath>

namespace cpr::apps {

const char* sampling_strategy_name(SamplingStrategy strategy) {
  switch (strategy) {
    case SamplingStrategy::IidRandom: return "iid";
    case SamplingStrategy::LatinHypercube: return "lhs";
    case SamplingStrategy::GridAligned: return "grid";
    case SamplingStrategy::Exploitative: return "exploit";
  }
  return "?";
}

namespace {

/// Maps a stratified unit draw u in [0,1) to a parameter value under the
/// app's sampling rule.
double from_unit(const grid::ParameterSpec& p, SampleRule rule, double u) {
  double value = 0.0;
  switch (rule) {
    case SampleRule::LogUniform:
      value = std::exp(std::log(p.lo) + u * (std::log(p.hi) - std::log(p.lo)));
      break;
    case SampleRule::Uniform:
      value = p.lo + u * (p.hi - p.lo);
      break;
    case SampleRule::UniformChoice:
      return std::floor(u * static_cast<double>(p.categories));
  }
  if (p.integral) value = std::clamp(std::round(value), p.lo, p.hi);
  return value;
}

common::Dataset latin_hypercube(const BenchmarkApp& app, std::size_t n,
                                std::uint64_t seed) {
  Rng rng(seed);
  const auto& params = app.parameters();
  const auto& rules = app.sample_rules();
  const std::size_t d = params.size();

  // One stratum permutation per dimension; rejected (constraint-violating)
  // rows are re-drawn with fresh jitter inside a random stratum.
  std::vector<std::vector<std::size_t>> strata(d);
  for (std::size_t j = 0; j < d; ++j) {
    strata[j].resize(n);
    for (std::size_t i = 0; i < n; ++i) strata[j][i] = i;
    rng.shuffle(strata[j]);
  }

  common::Dataset data;
  data.x = linalg::Matrix(n, d);
  data.y.resize(n);
  for (std::size_t i = 0; i < n; ++i) {
    grid::Config x(d);
    bool ok = false;
    for (int attempt = 0; attempt < 1000 && !ok; ++attempt) {
      for (std::size_t j = 0; j < d; ++j) {
        const std::size_t stratum =
            attempt == 0 ? strata[j][i]
                         : static_cast<std::size_t>(
                               rng.uniform_int(0, static_cast<std::int64_t>(n) - 1));
        const double u = (static_cast<double>(stratum) + rng.uniform()) /
                         static_cast<double>(n);
        x[j] = from_unit(params[j], rules[j], u);
      }
      ok = app.satisfies_constraints(x);
    }
    CPR_CHECK_MSG(ok, "LHS could not satisfy the app's constraints");
    for (std::size_t j = 0; j < d; ++j) data.x(i, j) = x[j];
    data.y[i] = app.measure(x, seed * 2654435761ull + i);
  }
  return data;
}

common::Dataset grid_aligned(const BenchmarkApp& app, std::size_t n, std::uint64_t seed,
                             const grid::Discretization& reference) {
  Rng rng(seed);
  const auto& dims = reference.dims();
  const std::size_t total = reference.cell_count();
  common::Dataset data;
  data.x = linalg::Matrix(n, app.dimensions());
  data.y.resize(n);
  // Round-robin over a random permutation of cells; configurations sit at
  // cell mid-points (categoricals at the cell's category).
  std::vector<std::size_t> order(total);
  for (std::size_t c = 0; c < total; ++c) order[c] = c;
  rng.shuffle(order);
  std::size_t produced = 0, cursor = 0;
  int wraps = 0;
  while (produced < n) {
    if (cursor == total) {
      cursor = 0;
      if (++wraps > 1000) CPR_CHECK_MSG(false, "grid sampling cannot satisfy constraints");
    }
    const auto idx = tensor::delinearize(order[cursor++], dims);
    grid::Config x(app.dimensions());
    for (std::size_t j = 0; j < x.size(); ++j) x[j] = reference.midpoint(j, idx[j]);
    if (!app.satisfies_constraints(x)) continue;
    for (std::size_t j = 0; j < x.size(); ++j) data.x(produced, j) = x[j];
    data.y[produced] = app.measure(x, seed * 2654435761ull + produced);
    ++produced;
  }
  return data;
}

common::Dataset exploitative(const BenchmarkApp& app, std::size_t n, std::uint64_t seed) {
  Rng rng(seed);
  const std::size_t explore = n / 2;
  common::Dataset data;
  data.x = linalg::Matrix(n, app.dimensions());
  data.y.resize(n);

  // Exploration phase: iid.
  std::vector<std::pair<double, grid::Config>> scored;
  for (std::size_t i = 0; i < explore; ++i) {
    const auto x = app.sample_config(rng);
    const double y = app.measure(x, seed * 2654435761ull + i);
    for (std::size_t j = 0; j < x.size(); ++j) data.x(i, j) = x[j];
    data.y[i] = y;
    scored.emplace_back(y, x);
  }
  std::sort(scored.begin(), scored.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
  const std::size_t elites = std::max<std::size_t>(1, scored.size() / 10);

  // Exploitation phase: perturb elite configurations dimension-wise.
  const auto& params = app.parameters();
  for (std::size_t i = explore; i < n; ++i) {
    grid::Config x;
    for (int attempt = 0; attempt < 1000; ++attempt) {
      x = scored[static_cast<std::size_t>(
                     rng.uniform_int(0, static_cast<std::int64_t>(elites) - 1))]
              .second;
      for (std::size_t j = 0; j < x.size(); ++j) {
        const auto& p = params[j];
        if (p.kind == grid::ParameterKind::Categorical) {
          if (rng.uniform() < 0.2) {
            x[j] = static_cast<double>(
                rng.uniform_int(0, static_cast<std::int64_t>(p.categories) - 1));
          }
          continue;
        }
        // Multiplicative jitter within +-25% (additive for lo <= 0 ranges).
        if (p.lo > 0.0) {
          x[j] = std::clamp(x[j] * std::exp(rng.normal(0.0, 0.25)), p.lo, p.hi);
        } else {
          x[j] = std::clamp(x[j] + rng.normal(0.0, 0.1 * (p.hi - p.lo)), p.lo, p.hi);
        }
        if (p.integral) x[j] = std::round(x[j]);
      }
      if (app.satisfies_constraints(x)) break;
    }
    for (std::size_t j = 0; j < x.size(); ++j) data.x(i, j) = x[j];
    data.y[i] = app.measure(x, seed * 2654435761ull + i);
  }
  return data;
}

}  // namespace

common::Dataset generate_with_strategy(const BenchmarkApp& app, std::size_t n,
                                       std::uint64_t seed, SamplingStrategy strategy,
                                       const grid::Discretization* reference_grid) {
  CPR_CHECK_MSG(n > 0, "dataset size must be positive");
  switch (strategy) {
    case SamplingStrategy::IidRandom:
      return app.generate_dataset(n, seed);
    case SamplingStrategy::LatinHypercube:
      return latin_hypercube(app, n, seed);
    case SamplingStrategy::GridAligned:
      CPR_CHECK_MSG(reference_grid != nullptr,
                    "GridAligned sampling needs a reference discretization");
      return grid_aligned(app, n, seed, *reference_grid);
    case SamplingStrategy::Exploitative:
      return exploitative(app, n, seed);
  }
  CPR_CHECK_MSG(false, "unknown sampling strategy");
  return {};
}

}  // namespace cpr::apps
