// MPI_Bcast kernel simulator (Intel MPI on Stampede2's Omni-Path fat tree in
// the paper): nodes in {1..128}, ppn in {1..64}, message size 2^16..2^26 B.
//
// Cost structure: the minimum of a binomial-tree estimate (latency-bound,
// small messages) and a scatter-allgather estimate (bandwidth-bound, large
// messages), with per-node injection bandwidth shared across ranks (ppn
// contention) and latency growing slowly with the node count (fat-tree
// hops). The algorithm crossover produces the non-smooth surface the paper's
// BC panels show.

#include <algorithm>
#include <cmath>

#include "apps/benchmark_app.hpp"

namespace cpr::apps {

namespace {

class BroadcastApp final : public BenchmarkApp {
 public:
  BroadcastApp() {
    params_ = {
        grid::ParameterSpec::numerical_log("nodes", 1, 128, /*integral=*/true),
        grid::ParameterSpec::numerical_log("ppn", 1, 64, /*integral=*/true),
        grid::ParameterSpec::numerical_log("msg_bytes", 65536, 67108864,
                                           /*integral=*/true),
    };
    rules_ = {SampleRule::LogUniform, SampleRule::LogUniform, SampleRule::LogUniform};
  }

  std::string name() const override { return "BC"; }
  const std::vector<grid::ParameterSpec>& parameters() const override { return params_; }
  const std::vector<SampleRule>& sample_rules() const override { return rules_; }
  int runs_per_configuration() const override { return 50; }
  double noise_cv() const override { return 0.08; }

  double base_time(const grid::Config& x) const override {
    const double nodes = x[0], ppn = x[1], bytes = x[2];
    const double ranks = nodes * ppn;
    const double hops = std::log2(std::max(2.0, nodes));
    const double latency = 1.5e-6 + 4.0e-7 * hops;          // per message stage
    const double node_bandwidth = 1.2e10;                   // OPA ~ 100 Gb/s
    const double shared = node_bandwidth / std::max(1.0, std::min(ppn, 8.0));
    const double intra_penalty = 1.0 + 0.05 * std::log2(std::max(1.0, ppn));

    const double stages = std::ceil(std::log2(std::max(2.0, ranks)));
    const double binomial = stages * (latency + bytes / shared);
    // van de Geijn scatter + ring allgather (bandwidth optimal).
    const double scatter_allgather =
        2.0 * (ranks - 1.0) / ranks * bytes / shared + (stages + ranks * 0.01) * latency;
    return std::min(binomial, scatter_allgather) * intra_penalty;
  }

 private:
  std::vector<grid::ParameterSpec> params_;
  std::vector<SampleRule> rules_;
};

}  // namespace

std::unique_ptr<BenchmarkApp> make_broadcast() { return std::make_unique<BroadcastApp>(); }

}  // namespace cpr::apps
