// Single-threaded Householder QR kernel simulator (Intel MKL DGEQRF in the
// paper): A_{m x n} -> QR with 32 <= n <= m <= 262144 (m >= n so R is upper
// triangular; sampling rejects m < n).
//
// Cost structure: 2mn^2 - (2/3)n^3 flops with a panel-width efficiency term
// (tall-skinny panels are memory-bound; square-ish trailing updates run near
// GEMM speed) plus repeated-panel memory traffic.

#include <cmath>

#include "apps/benchmark_app.hpp"

namespace cpr::apps {

namespace {

class QrApp final : public BenchmarkApp {
 public:
  QrApp() {
    params_ = {
        grid::ParameterSpec::numerical_log("m", 32, 262144, /*integral=*/true),
        grid::ParameterSpec::numerical_log("n", 32, 4096, /*integral=*/true),
    };
    rules_ = {SampleRule::LogUniform, SampleRule::LogUniform};
  }

  std::string name() const override { return "QR"; }
  const std::vector<grid::ParameterSpec>& parameters() const override { return params_; }
  const std::vector<SampleRule>& sample_rules() const override { return rules_; }
  int runs_per_configuration() const override { return 50; }
  double noise_cv() const override { return 0.05; }

  bool satisfies_constraints(const grid::Config& x) const override {
    return x[0] >= x[1];  // m >= n
  }

  double base_time(const grid::Config& x) const override {
    const double m = x[0], n = std::min(x[0], x[1]);
    const double flops = 2.0 * m * n * n - (2.0 / 3.0) * n * n * n;
    // Panel factorization is level-2 BLAS: effective rate interpolates
    // between memory-bound (narrow n) and near-peak (wide trailing matrix).
    const double blas3_fraction = n / (n + 128.0);
    const double rate = 2.5e9 + 2.6e10 * blas3_fraction * (m / (m + 256.0));
    // Panel passes re-read the trailing matrix ~ n / block times.
    const double block = 64.0;
    const double traffic = 8.0 * m * n * (1.0 + n / (2.0 * block) * 0.08);
    const double bandwidth = 6.0e9;
    return flops / rate + traffic / bandwidth;
  }

 private:
  std::vector<grid::ParameterSpec> params_;
  std::vector<SampleRule> rules_;
};

}  // namespace

std::unique_ptr<BenchmarkApp> make_qr_factorization() { return std::make_unique<QrApp>(); }

}  // namespace cpr::apps
