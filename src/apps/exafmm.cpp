// ExaFMM m2l_&_p2p kernel simulator (single KNL node in the paper).
//
// Parameters (Table 2): particles per node n in [2^12, 2^16], expansion
// order ord in [4, 15] (inputs); particles-per-leaf ppl in [32, 256] and
// partitioning tree level tl in [0, 4] (configuration); tpp, ppn in [1, 64]
// with 64 <= ppn*tpp <= 128 (architectural).
//
// Cost structure: P2P scales with n*ppl (27 near-field neighbors), M2L with
// (n/ppl)*ord^3 (189-cell interaction lists, rotation-based translations).
// The ppl trade-off creates the classic FMM U-shape; a quadratic penalty
// around the balanced tree level and imperfect strong scaling with
// hyper-thread saturation supply the architectural interactions.

#include <algorithm>
#include <cmath>

#include "apps/benchmark_app.hpp"

namespace cpr::apps {

namespace {

class ExaFmmApp final : public BenchmarkApp {
 public:
  ExaFmmApp() {
    params_ = {
        grid::ParameterSpec::numerical_log("n", 4096, 65536, /*integral=*/true),
        grid::ParameterSpec::numerical_log("ord", 4, 15, /*integral=*/true),
        grid::ParameterSpec::numerical_log("tpp", 1, 64, /*integral=*/true),
        grid::ParameterSpec::numerical_log("ppn", 1, 64, /*integral=*/true),
        grid::ParameterSpec::numerical_uniform("ppl", 32, 256, /*integral=*/true),
        grid::ParameterSpec::numerical_uniform("tl", 0, 4, /*integral=*/true),
    };
    rules_ = {SampleRule::LogUniform, SampleRule::LogUniform, SampleRule::LogUniform,
              SampleRule::LogUniform, SampleRule::Uniform, SampleRule::Uniform};
  }

  std::string name() const override { return "FMM"; }
  const std::vector<grid::ParameterSpec>& parameters() const override { return params_; }
  const std::vector<SampleRule>& sample_rules() const override { return rules_; }
  double noise_cv() const override { return 0.10; }

  bool satisfies_constraints(const grid::Config& x) const override {
    const double cores = x[2] * x[3];  // tpp * ppn
    return cores >= 64.0 && cores <= 128.0;
  }

  double base_time(const grid::Config& x) const override {
    const double n = x[0], ord = x[1], tpp = x[2], ppn = x[3], ppl = x[4], tl = x[5];
    const double leaves = std::max(1.0, n / ppl);
    const double p2p_work = 27.0 * n * ppl;                    // near-field pairs
    const double m2l_work = 189.0 * leaves * ord * ord * ord;  // far-field translations
    const double p2p_rate = 2.2e9;  // pairwise interactions / s / core
    const double m2l_rate = 3.0e9;  // translations / s / core (rotation-based)

    // Tree-level balance: deviation from log8 of the leaf count is penalized
    // quadratically (too shallow -> huge leaves, too deep -> traversal cost).
    const double balanced_tl =
        std::clamp(std::log(leaves) / std::log(8.0) - 1.0, 0.0, 4.0);
    const double imbalance = 1.0 + 0.12 * (tl - balanced_tl) * (tl - balanced_tl);

    // Strong scaling: P2P scales well, M2L (tree-bound) less so; more than 4
    // hyper-threads per KNL core stop helping.
    const double cores = ppn * tpp;
    const double ht_penalty = 1.0 + 0.25 * std::log2(std::max(1.0, tpp / 4.0));
    const double p2p_time = p2p_work / (p2p_rate * std::pow(cores, 0.90));
    const double m2l_time = m2l_work / (m2l_rate * std::pow(cores, 0.72));
    // Non-smooth per-octave scheduling/affinity bands along the
    // architectural dimensions (see octave_texture).
    const double texture = octave_texture(0x1f31, tpp, 0.18) *
                           octave_texture(0x1f32, ppn, 0.18) *
                           octave_texture(0x1f33, n, 0.08) *
                           interaction_texture(0x1f41, n, ord, 0.16) *
                           interaction_texture(0x1f42, n, ppl, 0.12) *
                           interaction3_texture(0x1f43, n, ord, tpp, 0.12);
    return (p2p_time + m2l_time) * imbalance * ht_penalty * texture;
  }

 private:
  std::vector<grid::ParameterSpec> params_;
  std::vector<SampleRule> rules_;
};

}  // namespace

std::unique_ptr<BenchmarkApp> make_exafmm() { return std::make_unique<ExaFmmApp>(); }

}  // namespace cpr::apps
