#pragma once
// Synthetic application benchmarks standing in for the paper's Stampede2
// measurements (see DESIGN.md, "Substitutions").
//
// Each app defines the exact parameter space of Table 2 and an analytic
// base cost model with the structural features the paper's evaluation
// exercises: power-law scaling in input parameters, non-monotonic
// configuration effects, categorical choices with distinct scaling, core
// contention in ppn x tpp, and multiplicative log-normal noise. Noise is
// deterministic per (configuration, run id) via hashing, so datasets are
// reproducible.
//
// Dataset generation follows Section 6.0.3: input and architectural
// parameters are sampled log-uniformly, configuration parameters uniformly,
// categorical parameters uniformly over their choices. Kernel benchmarks
// (MM, QR, BC) average 50 simulated runs per configuration; applications
// (FMM, AMG, Kripke) execute once.

#include <memory>
#include <optional>
#include <string>

#include "common/dataset.hpp"
#include "grid/parameter.hpp"
#include "util/rng.hpp"

namespace cpr::apps {

/// Sampling treatment per parameter (Section 6.0.3).
enum class SampleRule {
  LogUniform,   ///< input and architectural parameters
  Uniform,      ///< configuration parameters
  UniformChoice ///< categorical parameters
};

class BenchmarkApp {
 public:
  virtual ~BenchmarkApp() = default;

  virtual std::string name() const = 0;

  /// Table-2 parameter space (order fixes the tensor mode order).
  virtual const std::vector<grid::ParameterSpec>& parameters() const = 0;

  /// Sampling rule per parameter (same arity as parameters()).
  virtual const std::vector<SampleRule>& sample_rules() const = 0;

  /// Noise-free execution time (seconds) of a configuration.
  virtual double base_time(const grid::Config& x) const = 0;

  /// Coefficient of variation of the per-run multiplicative noise.
  virtual double noise_cv() const { return 0.03; }

  /// Runs averaged per measured configuration (kernels: 50; apps: 1).
  virtual int runs_per_configuration() const { return 1; }

  /// Configuration-validity constraint (e.g. 64 <= ppn*tpp <= 128 or m >= n);
  /// invalid samples are rejected and redrawn.
  virtual bool satisfies_constraints(const grid::Config& x) const {
    (void)x;
    return true;
  }

  std::size_t dimensions() const { return parameters().size(); }

  /// One simulated execution: base_time * exp(noise). Deterministic in
  /// (x, run_id).
  double execute(const grid::Config& x, std::uint64_t run_id = 0) const;

  /// Mean over runs_per_configuration() simulated executions — the "measured"
  /// value a dataset stores.
  double measure(const grid::Config& x, std::uint64_t config_id) const;

  /// Draws one valid configuration. `bounds_override[j]`, when present,
  /// replaces the sampling range of parameter j (used by the Figure-8
  /// extrapolation splits); it does not affect validity constraints.
  grid::Config sample_config(
      Rng& rng,
      const std::vector<std::optional<std::pair<double, double>>>* bounds_override =
          nullptr) const;

  /// Generates an n-sample dataset per the Section 6.0.3 rules.
  common::Dataset generate_dataset(
      std::size_t n, std::uint64_t seed,
      const std::vector<std::optional<std::pair<double, double>>>* bounds_override =
          nullptr) const;
};

/// Deterministic piecewise-constant "texture": a per-octave multiplier in
/// [1 - amplitude, 1 + amplitude] drawn by hashing (salt, floor(log2 x)).
/// Models the non-smooth per-value behavior real applications exhibit
/// (cache alignment, hyper-thread scheduling steps, load-imbalance bands)
/// that Section 3.2 argues global smooth models cannot capture — a regular
/// grid resolves it per cell, a level-bounded sparse grid or a few-knot
/// spline cannot resolve it along every dimension at once.
double octave_texture(std::uint64_t salt, double x, double amplitude);

/// Pairwise interaction texture: exp(amplitude * s(x) * s(y)) where s maps
/// each octave of its argument to a deterministic value in [-1, 1]. In log
/// space this is a *product* of univariate functions — exactly a rank-1
/// CP component, but a true two-dimensional interaction for sparse grids
/// (whose level-sum budget cannot afford octave resolution along two
/// dimensions simultaneously) and for low-degree spline models. Captures
/// the kind of configuration-coupling (e.g. ppn x tpp contention bands)
/// Section 1 cites as motivation.
double interaction_texture(std::uint64_t salt, double x, double y, double amplitude);

/// Three-way regime coupling: exp(amplitude * s(x) * s(y) * s(z)) with ±1
/// octave signs — still a single rank-1 CP component in log space, but a
/// third-order interaction no affordable sparse-grid level can resolve.
double interaction3_texture(std::uint64_t salt, double x, double y, double z,
                            double amplitude);

/// All six benchmarks, in the paper's order: MM, QR, BC, FMM, AMG, Kripke.
std::vector<std::unique_ptr<BenchmarkApp>> make_all_apps();

std::unique_ptr<BenchmarkApp> make_matmul();
std::unique_ptr<BenchmarkApp> make_qr_factorization();
std::unique_ptr<BenchmarkApp> make_broadcast();
std::unique_ptr<BenchmarkApp> make_exafmm();
std::unique_ptr<BenchmarkApp> make_amg();
std::unique_ptr<BenchmarkApp> make_kripke();

}  // namespace cpr::apps
