// Single-threaded dense GEMM kernel simulator (Intel MKL DGEMM on one KNL
// core in the paper): C_{m x n} += A_{m x k} B_{k x n}, 32 <= m, n, k <= 4096.
//
// Cost structure: 2mnk flops at a peak rate degraded for small dimensions
// (loop/packing overhead), a streaming-memory term, and a smooth cache-
// capacity penalty once the working set spills L2 — giving the mild
// piecewise behavior Figure 1/3 exploit.

#include <cmath>

#include "apps/benchmark_app.hpp"

namespace cpr::apps {

namespace {

class MatMulApp final : public BenchmarkApp {
 public:
  MatMulApp() {
    params_ = {
        grid::ParameterSpec::numerical_log("m", 32, 4096, /*integral=*/true),
        grid::ParameterSpec::numerical_log("n", 32, 4096, /*integral=*/true),
        grid::ParameterSpec::numerical_log("k", 32, 4096, /*integral=*/true),
    };
    rules_ = {SampleRule::LogUniform, SampleRule::LogUniform, SampleRule::LogUniform};
  }

  std::string name() const override { return "MM"; }
  const std::vector<grid::ParameterSpec>& parameters() const override { return params_; }
  const std::vector<SampleRule>& sample_rules() const override { return rules_; }
  int runs_per_configuration() const override { return 50; }
  double noise_cv() const override { return 0.05; }

  double base_time(const grid::Config& x) const override {
    const double m = x[0], n = x[1], k = x[2];
    const double flops = 2.0 * m * n * k;
    // Per-dimension efficiency loss for short loops (packing overhead).
    const double efficiency =
        (m / (m + 48.0)) * (n / (n + 48.0)) * (k / (k + 48.0));
    const double peak = 3.0e10;  // flop/s, single KNL core w/ AVX-512 FMA
    // Streaming traffic: read A, B once per blocked pass; write C.
    const double bytes = 8.0 * (m * k + k * n + 2.0 * m * n);
    const double bandwidth = 6.0e9;
    // Smooth L2-capacity penalty (512 KB per KNL core).
    const double working_set = 8.0 * (m * k + k * n + m * n);
    const double spill = 1.0 + 0.18 / (1.0 + std::exp(-(std::log(working_set) -
                                                        std::log(512.0 * 1024.0))));
    return (flops / (peak * efficiency) + bytes / bandwidth) * spill;
  }

 private:
  std::vector<grid::ParameterSpec> params_;
  std::vector<SampleRule> rules_;
};

}  // namespace

std::unique_ptr<BenchmarkApp> make_matmul() { return std::make_unique<MatMulApp>(); }

}  // namespace cpr::apps
