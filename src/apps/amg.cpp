// AMG proxy-app simulator (parallel algebraic multigrid solve, single KNL
// node in the paper).
//
// Parameters (Table 2): per-process problem size nx, ny, nz in [2^3, 2^7]
// (inputs); tpp, ppn in [1, 64] with 64 <= ppn*tpp <= 128 (architectural);
// coarsening type (7 choices), relaxation type (10), interpolation type (14)
// (categorical configuration).
//
// Cost structure: work per V-cycle scales with the local grid size times a
// per-choice operator-complexity factor; iteration count depends on the
// (coarsening, relaxation) pair — modeled with deterministic per-category
// factors plus a hashed pairwise interaction — matching the paper's
// observation that categorical choices dominate AMG's performance surface.

#include <algorithm>
#include <cmath>

#include "apps/benchmark_app.hpp"

namespace cpr::apps {

namespace {

// Deterministic per-category factors (spread roughly matching hypre's
// operator-complexity differences between choices).
constexpr double kCoarsenFactor[7] = {1.00, 1.42, 0.88, 1.65, 1.12, 2.05, 1.28};
constexpr double kRelaxFactor[10] = {1.00, 0.92, 1.30, 1.55, 1.10, 0.85,
                                     1.72, 1.25, 1.05, 1.48};
constexpr double kInterpFactor[14] = {1.00, 1.18, 0.90, 1.34, 1.08, 1.52, 0.95,
                                      1.26, 1.40, 1.02, 1.62, 1.14, 0.87, 1.31};

class AmgApp final : public BenchmarkApp {
 public:
  AmgApp() {
    params_ = {
        grid::ParameterSpec::numerical_log("nx", 8, 128, /*integral=*/true),
        grid::ParameterSpec::numerical_log("ny", 8, 128, /*integral=*/true),
        grid::ParameterSpec::numerical_log("nz", 8, 128, /*integral=*/true),
        grid::ParameterSpec::numerical_log("tpp", 1, 64, /*integral=*/true),
        grid::ParameterSpec::numerical_log("ppn", 1, 64, /*integral=*/true),
        grid::ParameterSpec::categorical("ct", 7),
        grid::ParameterSpec::categorical("rt", 10),
        grid::ParameterSpec::categorical("it", 14),
    };
    rules_ = {SampleRule::LogUniform, SampleRule::LogUniform,  SampleRule::LogUniform,
              SampleRule::LogUniform, SampleRule::LogUniform,  SampleRule::UniformChoice,
              SampleRule::UniformChoice, SampleRule::UniformChoice};
  }

  std::string name() const override { return "AMG"; }
  const std::vector<grid::ParameterSpec>& parameters() const override { return params_; }
  const std::vector<SampleRule>& sample_rules() const override { return rules_; }
  double noise_cv() const override { return 0.12; }

  bool satisfies_constraints(const grid::Config& x) const override {
    const double cores = x[3] * x[4];  // tpp * ppn
    return cores >= 64.0 && cores <= 128.0;
  }

  double base_time(const grid::Config& x) const override {
    const double nx = x[0], ny = x[1], nz = x[2], tpp = x[3], ppn = x[4];
    const auto ct = static_cast<std::size_t>(x[5]);
    const auto rt = static_cast<std::size_t>(x[6]);
    const auto it = static_cast<std::size_t>(x[7]);

    const double local_points = nx * ny * nz;          // per process
    const double total_points = local_points * ppn;    // single-node run
    // Operator complexity multiplies V-cycle work; the hashed (ct, rt)
    // interaction perturbs the iteration count (convergence coupling).
    const double complexity = kCoarsenFactor[ct] * kInterpFactor[it];
    const double pair_hash = static_cast<double>(
        hash64(ct * 131 + rt * 17) % 1000) / 1000.0;
    const double iterations = 8.0 * kRelaxFactor[rt] * (1.0 + 0.6 * pair_hash);

    // Anisotropic local boxes coarsen poorly.
    const double aspect =
        std::abs(std::log(nx / ny)) + std::abs(std::log(ny / nz));
    const double anisotropy = 1.0 + 0.08 * aspect;

    const double rate_per_thread = 2.0e7;  // points/s/thread incl. memory stalls
    const double threads = ppn * tpp;
    const double scaling = std::pow(threads, 0.80);
    // MPI ranks add halo-exchange overhead that grows with ppn.
    const double comm = 1.0 + 0.03 * std::pow(ppn, 0.7) +
                        2.0e-4 * std::sqrt(total_points) / std::sqrt(local_points);
    // Per-octave halo-exchange / NUMA bands (see octave_texture).
    const double texture = octave_texture(0xa401, tpp, 0.20) *
                           octave_texture(0xa402, ppn, 0.20) *
                           octave_texture(0xa403, nx, 0.08) *
                           octave_texture(0xa404, ny, 0.08) *
                           interaction_texture(0xa411, nx, nz, 0.16) *
                           interaction_texture(0xa412, ny, nz, 0.14) *
                           interaction3_texture(0xa413, nx, ny, nz, 0.12);
    return total_points * iterations * complexity * anisotropy * comm * texture /
           (rate_per_thread * scaling);
  }

 private:
  std::vector<grid::ParameterSpec> params_;
  std::vector<SampleRule> rules_;
};

}  // namespace

std::unique_ptr<BenchmarkApp> make_amg() { return std::make_unique<AmgApp>(); }

}  // namespace cpr::apps
