#include "apps/benchmark_app.hpp"

#include <bit>
#include <cmath>

#include "util/check.hpp"

namespace cpr::apps {

namespace {

/// Deterministic noise seed from a configuration and run id.
std::uint64_t config_hash(const grid::Config& x, std::uint64_t run_id,
                          std::uint64_t salt) {
  std::uint64_t h = hash_combine(salt, run_id);
  for (const double v : x) {
    h = hash_combine(h, std::bit_cast<std::uint64_t>(v));
  }
  return h;
}

/// Salt derived from the app name so different apps decorrelate.
std::uint64_t name_salt(const std::string& name) {
  std::uint64_t h = 0x6a09e667f3bcc909ull;
  for (const char c : name) h = hash_combine(h, static_cast<std::uint64_t>(c));
  return h;
}

}  // namespace

double BenchmarkApp::execute(const grid::Config& x, std::uint64_t run_id) const {
  const double base = base_time(x);
  CPR_CHECK_MSG(base > 0.0, "app '" << name() << "' produced non-positive base time");
  Rng rng(config_hash(x, run_id, name_salt(name())));
  // Log-normal multiplicative noise with the requested CV:
  // Var[exp(sigma Z)] / E^2 = exp(sigma^2) - 1  =>  sigma^2 = log(1 + cv^2).
  const double sigma = std::sqrt(std::log(1.0 + noise_cv() * noise_cv()));
  return base * std::exp(rng.normal(0.0, sigma) - 0.5 * sigma * sigma);
}

double BenchmarkApp::measure(const grid::Config& x, std::uint64_t config_id) const {
  const int runs = runs_per_configuration();
  double sum = 0.0;
  for (int r = 0; r < runs; ++r) {
    sum += execute(x, config_id * 1000003ull + static_cast<std::uint64_t>(r));
  }
  return sum / runs;
}

grid::Config BenchmarkApp::sample_config(
    Rng& rng,
    const std::vector<std::optional<std::pair<double, double>>>* bounds_override) const {
  const auto& params = parameters();
  const auto& rules = sample_rules();
  CPR_CHECK(rules.size() == params.size());
  grid::Config x(params.size());
  for (int attempt = 0; attempt < 10000; ++attempt) {
    for (std::size_t j = 0; j < params.size(); ++j) {
      const auto& p = params[j];
      double lo = p.lo, hi = p.hi;
      if (bounds_override != nullptr && (*bounds_override)[j].has_value()) {
        lo = (*bounds_override)[j]->first;
        hi = (*bounds_override)[j]->second;
      }
      switch (rules[j]) {
        case SampleRule::LogUniform:
          x[j] = p.integral
                     ? static_cast<double>(rng.log_uniform_int(
                           static_cast<std::int64_t>(lo), static_cast<std::int64_t>(hi)))
                     : rng.log_uniform(lo, hi);
          break;
        case SampleRule::Uniform:
          x[j] = p.integral
                     ? static_cast<double>(rng.uniform_int(
                           static_cast<std::int64_t>(lo), static_cast<std::int64_t>(hi)))
                     : rng.uniform(lo, hi);
          break;
        case SampleRule::UniformChoice:
          x[j] = static_cast<double>(
              rng.uniform_int(0, static_cast<std::int64_t>(p.categories) - 1));
          break;
      }
    }
    if (satisfies_constraints(x)) return x;
  }
  CPR_CHECK_MSG(false, "app '" << name() << "': could not sample a valid configuration");
  return x;  // unreachable
}

common::Dataset BenchmarkApp::generate_dataset(
    std::size_t n, std::uint64_t seed,
    const std::vector<std::optional<std::pair<double, double>>>* bounds_override) const {
  CPR_CHECK_MSG(n > 0, "dataset size must be positive");
  Rng rng(seed);
  common::Dataset data;
  data.x = linalg::Matrix(n, dimensions());
  data.y.resize(n);
  for (std::size_t i = 0; i < n; ++i) {
    const grid::Config x = sample_config(rng, bounds_override);
    for (std::size_t j = 0; j < x.size(); ++j) data.x(i, j) = x[j];
    data.y[i] = measure(x, seed * 2654435761ull + i);
  }
  return data;
}

namespace {
/// Octave-indexed deterministic value in [-1, 1].
double octave_value(std::uint64_t salt, double x) {
  const auto octave = static_cast<std::uint64_t>(std::floor(std::log2(std::max(1.0, x))));
  const double u = static_cast<double>(hash_combine(salt, octave) % 100000) / 100000.0;
  return 2.0 * u - 1.0;
}

/// Half-octave-indexed Rademacher (+1/-1) regime indicator — fine enough
/// that resolving it along two dimensions at once exceeds any affordable
/// sparse-grid level budget, while a regular grid with ~2 cells per octave
/// captures it directly.
double octave_sign(std::uint64_t salt, double x) {
  const auto bucket =
      static_cast<std::uint64_t>(std::floor(2.0 * std::log2(std::max(1.0, x))));
  const double u = static_cast<double>(hash_combine(salt, bucket) % 100000) / 100000.0;
  return u >= 0.5 ? 1.0 : -1.0;
}
}  // namespace

double octave_texture(std::uint64_t salt, double x, double amplitude) {
  return 1.0 + amplitude * octave_value(salt, x);
}

double interaction_texture(std::uint64_t salt, double x, double y, double amplitude) {
  // Regime-coupled ±amplitude in log space: a product of univariate ±1
  // step functions (rank-1 for CP; an irreducible 2-D interaction for
  // sparse grids and low-order splines).
  return std::exp(amplitude * octave_sign(salt, x) * octave_sign(salt ^ 0x9e3779b9ull, y));
}

double interaction3_texture(std::uint64_t salt, double x, double y, double z,
                            double amplitude) {
  return std::exp(amplitude * octave_sign(salt, x) * octave_sign(salt ^ 0x9e3779b9ull, y) *
                  octave_sign(salt ^ 0x7f4a7c15ull, z));
}

std::vector<std::unique_ptr<BenchmarkApp>> make_all_apps() {
  std::vector<std::unique_ptr<BenchmarkApp>> apps;
  apps.push_back(make_matmul());
  apps.push_back(make_qr_factorization());
  apps.push_back(make_broadcast());
  apps.push_back(make_exafmm());
  apps.push_back(make_amg());
  apps.push_back(make_kripke());
  return apps;
}

}  // namespace cpr::apps
