#pragma once
// Alternative dataset-sampling strategies — the paper's future-work item on
// "performance observation datasets with different (non-random) structure
// that reflects exploration and exploitation sampling methods".
//
// Strategies:
//   IidRandom       the paper's protocol (log-uniform inputs/arch, uniform
//                   configs) — BenchmarkApp::generate_dataset.
//   LatinHypercube  stratified: each parameter's range is split into n
//                   strata (in sampling space) and each stratum is used
//                   exactly once — better marginal coverage per sample.
//   GridAligned     configurations drawn at the mid-points of a reference
//                   discretization (round-robin over cells) — the fully
//                   "designed experiment" extreme with zero within-cell
//                   dispersion.
//   Exploitative    half the budget iid, half concentrated around the
//                   fastest configurations seen so far — mimics an
//                   autotuner's biased trace.

#include "apps/benchmark_app.hpp"
#include "grid/discretization.hpp"

namespace cpr::apps {

enum class SamplingStrategy { IidRandom, LatinHypercube, GridAligned, Exploitative };

const char* sampling_strategy_name(SamplingStrategy strategy);

/// Generates an n-sample dataset from `app` under the given strategy.
/// `reference_grid` is required for GridAligned (ignored otherwise).
common::Dataset generate_with_strategy(const BenchmarkApp& app, std::size_t n,
                                       std::uint64_t seed, SamplingStrategy strategy,
                                       const grid::Discretization* reference_grid = nullptr);

}  // namespace cpr::apps
