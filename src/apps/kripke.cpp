// Kripke proxy-app simulator (discrete-ordinates neutral particle transport,
// single KNL node in the paper).
//
// Parameters (Table 2): energy groups in [2^3, 2^7], Legendre order in
// [0, 5], quadrature points in [2^3, 2^7] (inputs); tpp, ppn in [1, 64] with
// 64 <= ppn*tpp <= 128 (architectural); data layout (6 nestings), solver
// {sweep, block-jacobi}, direction-set size dset in [8, 64], group-set count
// gset in [1, 32] (configuration).
//
// Cost structure: sweep work scales with zones * groups * quad *
// (legendre+1)^2 (scattering moments); layout choice changes the effective
// per-thread rate (cache behavior of the gzd/zdg/... nestings); dset/gset
// blocking has a U-shaped optimum (too-small sets lose vector efficiency,
// too-large sets overflow cache and reduce sweep parallelism); the
// block-jacobi solver costs more per iteration but scales better than the
// wavefront sweep.

#include <algorithm>
#include <cmath>

#include "apps/benchmark_app.hpp"

namespace cpr::apps {

namespace {

// Per-layout throughput factors for the 6 loop nestings
// {dgz, dzg, gdz, gzd, zdg, zgd} and the 2 solvers {sweep, bj}.
constexpr double kLayoutFactor[6] = {1.00, 1.22, 1.08, 1.45, 1.30, 1.12};

class KripkeApp final : public BenchmarkApp {
 public:
  KripkeApp() {
    params_ = {
        grid::ParameterSpec::numerical_log("groups", 8, 128, /*integral=*/true),
        grid::ParameterSpec::numerical_uniform("legendre", 0, 5, /*integral=*/true),
        grid::ParameterSpec::numerical_log("quad", 8, 128, /*integral=*/true),
        grid::ParameterSpec::numerical_log("tpp", 1, 64, /*integral=*/true),
        grid::ParameterSpec::numerical_log("ppn", 1, 64, /*integral=*/true),
        grid::ParameterSpec::categorical("layout", 6),
        grid::ParameterSpec::categorical("solver", 2),
        grid::ParameterSpec::numerical_uniform("dset", 8, 64, /*integral=*/true),
        grid::ParameterSpec::numerical_uniform("gset", 1, 32, /*integral=*/true),
    };
    rules_ = {SampleRule::LogUniform,    SampleRule::Uniform,
              SampleRule::LogUniform,    SampleRule::LogUniform,
              SampleRule::LogUniform,    SampleRule::UniformChoice,
              SampleRule::UniformChoice, SampleRule::Uniform,
              SampleRule::Uniform};
  }

  std::string name() const override { return "KRIPKE"; }
  const std::vector<grid::ParameterSpec>& parameters() const override { return params_; }
  const std::vector<SampleRule>& sample_rules() const override { return rules_; }
  double noise_cv() const override { return 0.10; }

  bool satisfies_constraints(const grid::Config& x) const override {
    const double cores = x[3] * x[4];  // tpp * ppn
    return cores >= 64.0 && cores <= 128.0;
  }

  double base_time(const grid::Config& x) const override {
    const double groups = x[0], legendre = x[1], quad = x[2];
    const double tpp = x[3], ppn = x[4];
    const auto layout = static_cast<std::size_t>(x[5]);
    const auto solver = static_cast<std::size_t>(x[6]);
    const double dset = x[7], gset = x[8];

    const double zones = 4096.0;  // fixed single-node zone count
    const double moments = (legendre + 1.0) * (legendre + 1.0);
    const double work = zones * groups * quad * (2.0 + 0.4 * moments);

    // Blocking: direction sets near 16 and group sets near groups/16 balance
    // vector width against cache footprint.
    const double dset_deviation = std::log2(dset) - std::log2(16.0);
    const double gset_optimum = std::clamp(groups / 16.0, 1.0, 32.0);
    const double gset_deviation = std::log2(gset) - std::log2(gset_optimum);
    const double blocking =
        1.0 + 0.07 * dset_deviation * dset_deviation + 0.05 * gset_deviation * gset_deviation;

    const double cores = ppn * tpp;
    const double rate = 6.0e8 * kLayoutFactor[layout];  // zone-updates/s/core basis
    double time;
    if (solver == 0) {
      // Wavefront sweep: pipeline fill limits strong scaling.
      time = work * blocking / (rate * std::pow(cores, 0.78));
    } else {
      // Block-Jacobi: ~1.5x more iterations, near-linear scaling.
      time = 1.5 * work * blocking / (rate * std::pow(cores, 0.92));
    }
    const double ht_penalty = 1.0 + 0.2 * std::log2(std::max(1.0, tpp / 4.0));
    // Per-octave sweep-pipeline and vectorization bands (see octave_texture).
    const double texture = octave_texture(0x6b01, tpp, 0.18) *
                           octave_texture(0x6b02, ppn, 0.18) *
                           octave_texture(0x6b03, groups, 0.10) *
                           octave_texture(0x6b04, quad, 0.10) *
                           interaction_texture(0x6b11, groups, quad, 0.16) *
                           interaction_texture(0x6b12, quad, tpp, 0.12) *
                           interaction3_texture(0x6b13, groups, quad, tpp, 0.12);
    return time * ht_penalty * texture;
  }

 private:
  std::vector<grid::ParameterSpec> params_;
  std::vector<SampleRule> rules_;
};

}  // namespace

std::unique_ptr<BenchmarkApp> make_kripke() { return std::make_unique<KripkeApp>(); }

}  // namespace cpr::apps
