#pragma once
// Per-request span tracing for the serving pipeline.
//
// A RequestTrace is allocated at frame parse (sampled 1-in-N by the
// TraceCollector) and rides the request through every stage as a
// shared_ptr handle: the IO loop stamps admission, a dispatch worker runs
// handle_line, a batcher worker stamps batch wait and predict, and the IO
// loop stamps the reply flush. A null handle means "not sampled" and every
// operation on it is a no-op, so the unsampled fast path costs one atomic
// fetch_add at parse and pointer checks everywhere else.
//
// Completed traces are exported as Chrome trace-event JSON (`"ph":"X"`
// complete events, microsecond timestamps) loadable in Perfetto or
// chrome://tracing; each request renders as its own track (tid = request
// id), so a pipelined connection shows its requests stacked in parallel.
//
// Span taxonomy (docs/OBSERVABILITY.md has the full contract):
//   request        — frame parse to reply rendered (the root span)
//   admission_wait — dispatch-queue wait (TCP front end only)
//   handle         — Server::handle_line; args: verb, cache=hit|miss
//   batch_wait     — batcher submit to batch pickup
//   predict        — predict_batch; args: batch, kernel, model
//   flush          — dispatch complete to reply bytes rendered

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "obs/metrics.hpp"

namespace cpr::obs {

struct TraceSpan {
  std::string name;
  std::uint64_t start_ns = 0;
  std::uint64_t end_ns = 0;
  std::vector<std::pair<std::string, std::string>> args;
};

/// One sampled request's span log. Spans are appended from whichever thread
/// currently owns the request, so the vector is mutex-guarded; contention is
/// nil (a handful of appends per request, each from a different stage).
class RequestTrace {
 public:
  RequestTrace(std::uint64_t id, std::uint64_t start_ns) : id_(id), start_ns_(start_ns) {}

  std::uint64_t id() const { return id_; }
  std::uint64_t start_ns() const { return start_ns_; }

  void add_span(TraceSpan span) {
    std::lock_guard<std::mutex> lock(mu_);
    spans_.push_back(std::move(span));
  }

  std::vector<TraceSpan> spans() const {
    std::lock_guard<std::mutex> lock(mu_);
    return spans_;
  }

 private:
  std::uint64_t id_;
  std::uint64_t start_ns_;
  mutable std::mutex mu_;
  std::vector<TraceSpan> spans_;
};

/// Null handle = unsampled request; every consumer checks before stamping.
using TraceHandle = std::shared_ptr<RequestTrace>;

/// RAII span on a (possibly null) trace: stamps start on construction, end
/// plus any accumulated args on destruction. No-op for null handles.
class SpanTimer {
 public:
  SpanTimer(TraceHandle trace, std::string name) : trace_(std::move(trace)) {
    if (trace_) {
      span_.name = std::move(name);
      span_.start_ns = monotonic_ns();
    }
  }
  ~SpanTimer() {
    if (trace_) {
      span_.end_ns = monotonic_ns();
      trace_->add_span(std::move(span_));
    }
  }
  SpanTimer(const SpanTimer&) = delete;
  SpanTimer& operator=(const SpanTimer&) = delete;

  void arg(std::string key, std::string value) {
    if (trace_) span_.args.emplace_back(std::move(key), std::move(value));
  }

 private:
  TraceHandle trace_;
  TraceSpan span_;
};

/// Owns the sampling decision and the completed-trace buffer for one
/// Server. sample_every == 0 disables tracing (the default); N samples
/// every Nth request. The buffer is bounded: beyond kMaxTraces completed
/// traces are counted in dropped() instead of retained, so a long soak with
/// --trace-sample=1 cannot grow without bound.
class TraceCollector {
 public:
  static constexpr std::size_t kMaxTraces = 1 << 16;

  void set_sample_every(std::uint64_t n) {
    sample_every_.store(n, std::memory_order_relaxed);
  }
  std::uint64_t sample_every() const {
    return sample_every_.load(std::memory_order_relaxed);
  }

  /// Null unless this request is sampled; also stamps the trace start.
  TraceHandle maybe_start();

  /// Closes the root `request` span and retains the trace (or counts a
  /// drop when full). No-op for null handles.
  void finish(const TraceHandle& trace);

  std::size_t collected() const;
  std::uint64_t dropped() const { return dropped_.load(std::memory_order_relaxed); }

  /// All retained traces as Chrome trace-event JSON.
  std::string render_chrome_json() const;

 private:
  std::atomic<std::uint64_t> sample_every_{0};
  std::atomic<std::uint64_t> sequence_{0};
  std::atomic<std::uint64_t> next_id_{0};
  std::atomic<std::uint64_t> dropped_{0};
  mutable std::mutex mu_;
  std::vector<TraceHandle> done_;
};

/// One rendered trace-event: the shared currency between the request
/// tracer and the training profiler, so both export the same JSON shape.
struct ChromeEvent {
  std::string name;
  std::uint64_t tid = 0;
  std::uint64_t start_ns = 0;
  std::uint64_t end_ns = 0;
  std::vector<std::pair<std::string, std::string>> args;
};

/// `{"traceEvents":[...]}` with `"ph":"X"` complete events, ts/dur in
/// microseconds, pid 1. Events are sorted by (tid, ts) so timestamps are
/// monotone per track and the output is deterministic in the event set.
std::string render_chrome_events(std::vector<ChromeEvent> events);

/// JSON string escaping (quotes, backslashes, control characters). Total:
/// any byte sequence in, valid JSON string contents out.
std::string json_escape(std::string_view text);

/// Structural validator for the Chrome trace JSON (the `cpr_obscheck` gate
/// and well-formedness tests): the document must parse as JSON, carry a
/// `traceEvents` array, and every event needs a string `name`/`ph` plus
/// non-negative numeric `ts` and `dur` (every span closed), with `ts`
/// monotone per `tid`. On failure describes the first violation in `*error`.
bool validate_chrome_trace(const std::string& json, std::string* error);

}  // namespace cpr::obs
