#include "obs/metrics.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <sstream>

#include "util/check.hpp"

namespace cpr::obs {
namespace {

constexpr std::size_t kFiniteBuckets = 108;  // 1e-6 * 2^(107/4) ~= 113 s

std::string format_double(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  return buf;
}

std::string format_boundary(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.9g", v);
  return buf;
}

}  // namespace

std::size_t thread_shard() {
  static std::atomic<std::size_t> next{0};
  thread_local const std::size_t slot =
      next.fetch_add(1, std::memory_order_relaxed) % kMetricShards;
  return slot;
}

std::uint64_t HistogramSnapshot::count() const {
  std::uint64_t total = 0;
  for (std::uint64_t b : buckets) total += b;
  return total;
}

void HistogramSnapshot::merge(const HistogramSnapshot& other) {
  if (buckets.empty()) buckets.assign(other.buckets.size(), 0);
  CPR_CHECK_MSG(buckets.size() == other.buckets.size(),
                "histogram merge: mismatched bucket layouts");
  for (std::size_t i = 0; i < buckets.size(); ++i) buckets[i] += other.buckets[i];
  sum_ns += other.sum_ns;
}

double HistogramSnapshot::percentile(double q) const {
  const std::uint64_t total = count();
  if (total == 0) return 0.0;
  q = std::min(1.0, std::max(0.0, q));
  const std::uint64_t rank = std::max<std::uint64_t>(
      1, static_cast<std::uint64_t>(std::ceil(q * static_cast<double>(total))));
  const auto& bounds = Histogram::boundaries();
  std::uint64_t seen = 0;
  for (std::size_t i = 0; i < buckets.size(); ++i) {
    seen += buckets[i];
    if (seen >= rank) {
      // Overflow samples report the last finite boundary: still deterministic
      // and clearly pinned at "at least the top of the scale".
      return i < bounds.size() ? bounds[i] : bounds.back();
    }
  }
  return bounds.back();
}

const std::vector<double>& Histogram::boundaries() {
  static const std::vector<double> bounds = [] {
    std::vector<double> b;
    b.reserve(kFiniteBuckets);
    for (std::size_t i = 0; i < kFiniteBuckets; ++i) {
      b.push_back(1e-6 * std::exp2(static_cast<double>(i) * 0.25));
    }
    return b;
  }();
  return bounds;
}

Histogram::Histogram() {
  for (auto& shard : shards_) {
    shard.buckets = std::make_unique<std::atomic<std::uint64_t>[]>(kFiniteBuckets + 1);
    for (std::size_t i = 0; i <= kFiniteBuckets; ++i) {
      shard.buckets[i].store(0, std::memory_order_relaxed);
    }
  }
}

void Histogram::record(double seconds) {
  if (!(seconds > 0.0)) seconds = 0.0;  // negatives and NaN clamp to bucket 0
  const auto& bounds = boundaries();
  // First bucket whose upper bound is >= the sample (`le` semantics); past
  // the last finite bound the sample lands in the overflow slot.
  const std::size_t index = static_cast<std::size_t>(
      std::lower_bound(bounds.begin(), bounds.end(), seconds) - bounds.begin());
  Shard& shard = shards_[thread_shard()];
  shard.buckets[index].fetch_add(1, std::memory_order_relaxed);
  const std::uint64_t ns =
      seconds <= 0.0 ? 0 : static_cast<std::uint64_t>(std::llround(seconds * 1e9));
  shard.sum_ns.fetch_add(ns, std::memory_order_relaxed);
}

HistogramSnapshot Histogram::snapshot() const {
  HistogramSnapshot snap;
  snap.buckets.assign(kFiniteBuckets + 1, 0);
  for (const auto& shard : shards_) {
    for (std::size_t i = 0; i <= kFiniteBuckets; ++i) {
      snap.buckets[i] += shard.buckets[i].load(std::memory_order_relaxed);
    }
    snap.sum_ns += shard.sum_ns.load(std::memory_order_relaxed);
  }
  return snap;
}

Registry::Entry& Registry::entry(const std::string& name, const std::string& help) {
  auto [it, inserted] = entries_.try_emplace(name);
  if (inserted) it->second.help = help;
  return it->second;
}

Counter& Registry::counter(const std::string& name, const std::string& help) {
  std::lock_guard<std::mutex> lock(mu_);
  Entry& e = entry(name, help);
  CPR_CHECK_MSG(!e.gauge && !e.histogram && !e.fn,
                "metric '" + name + "' already registered with a different type");
  if (!e.counter) e.counter = std::make_unique<Counter>();
  return *e.counter;
}

Gauge& Registry::gauge(const std::string& name, const std::string& help) {
  std::lock_guard<std::mutex> lock(mu_);
  Entry& e = entry(name, help);
  CPR_CHECK_MSG(!e.counter && !e.histogram && !e.fn,
                "metric '" + name + "' already registered with a different type");
  if (!e.gauge) e.gauge = std::make_unique<Gauge>();
  return *e.gauge;
}

Histogram& Registry::histogram(const std::string& name, const std::string& help) {
  std::lock_guard<std::mutex> lock(mu_);
  Entry& e = entry(name, help);
  CPR_CHECK_MSG(!e.counter && !e.gauge && !e.fn,
                "metric '" + name + "' already registered with a different type");
  if (!e.histogram) e.histogram = std::make_unique<Histogram>();
  return *e.histogram;
}

void Registry::callback(const std::string& name, const std::string& help,
                        CallbackKind kind, std::function<double()> fn) {
  std::lock_guard<std::mutex> lock(mu_);
  Entry& e = entry(name, help);
  CPR_CHECK_MSG(!e.counter && !e.gauge && !e.histogram && !e.fn,
                "metric '" + name + "' already registered");
  e.fn = std::move(fn);
  e.fn_kind = kind;
}

std::string Registry::render() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::ostringstream out;
  for (const auto& [name, e] : entries_) {  // std::map: sorted by name
    out << "# HELP " << name << ' ' << e.help << '\n';
    if (e.counter || (e.fn && e.fn_kind == CallbackKind::Counter)) {
      out << "# TYPE " << name << " counter\n";
      const double value =
          e.counter ? static_cast<double>(e.counter->value()) : e.fn();
      out << name << ' ' << format_double(value) << '\n';
    } else if (e.gauge || (e.fn && e.fn_kind == CallbackKind::Gauge)) {
      out << "# TYPE " << name << " gauge\n";
      const double value = e.gauge ? static_cast<double>(e.gauge->value()) : e.fn();
      out << name << ' ' << format_double(value) << '\n';
    } else if (e.histogram) {
      out << "# TYPE " << name << " histogram\n";
      const HistogramSnapshot snap = e.histogram->snapshot();
      const auto& bounds = Histogram::boundaries();
      std::uint64_t cumulative = 0;
      for (std::size_t i = 0; i < bounds.size(); ++i) {
        cumulative += snap.buckets[i];
        out << name << "_bucket{le=\"" << format_boundary(bounds[i]) << "\"} "
            << cumulative << '\n';
      }
      cumulative += snap.buckets.back();
      out << name << "_bucket{le=\"+Inf\"} " << cumulative << '\n';
      out << name << "_sum " << format_double(snap.sum_seconds()) << '\n';
      out << name << "_count " << cumulative << '\n';
    }
  }
  return out.str();
}

namespace {

bool fail(std::string* error, const std::string& message) {
  if (error) *error = message;
  return false;
}

struct Sample {
  std::string name;
  std::string le;  // empty when no le label
  double value = 0.0;
  bool has_le = false;
};

bool parse_sample(const std::string& line, Sample* out, std::string* error) {
  std::size_t name_end = line.find_first_of("{ ");
  if (name_end == std::string::npos || name_end == 0) {
    return fail(error, "malformed sample line: '" + line + "'");
  }
  out->name = line.substr(0, name_end);
  std::size_t value_begin = name_end;
  if (line[name_end] == '{') {
    const std::size_t close = line.find('}', name_end);
    if (close == std::string::npos) {
      return fail(error, "unterminated label set: '" + line + "'");
    }
    const std::string labels = line.substr(name_end + 1, close - name_end - 1);
    const std::string prefix = "le=\"";
    if (labels.rfind(prefix, 0) == 0 && labels.size() > prefix.size() &&
        labels.back() == '"') {
      out->has_le = true;
      out->le = labels.substr(prefix.size(), labels.size() - prefix.size() - 1);
    }
    value_begin = close + 1;
  }
  const std::string value_text = line.substr(value_begin);
  char* end = nullptr;
  out->value = std::strtod(value_text.c_str(), &end);
  if (end == value_text.c_str()) {
    return fail(error, "sample without a numeric value: '" + line + "'");
  }
  return true;
}

}  // namespace

bool validate_prometheus_text(const std::string& text, std::string* error) {
  std::map<std::string, std::string> types;  // base name -> declared type
  // Per histogram: running cumulative check + bookkeeping for +Inf/_sum/_count.
  struct HistState {
    double last_bucket = -1.0;
    bool saw_inf = false;
    double inf_value = 0.0;
    bool saw_sum = false;
    bool saw_count = false;
    double count_value = 0.0;
  };
  std::map<std::string, HistState> hists;

  std::istringstream in(text);
  std::string line;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    if (line[0] == '#') {
      std::istringstream meta(line);
      std::string hash, keyword, name, rest;
      meta >> hash >> keyword >> name;
      if (keyword == "TYPE") {
        meta >> rest;
        if (name.empty() || rest.empty()) {
          return fail(error, "malformed TYPE line: '" + line + "'");
        }
        if (rest != "counter" && rest != "gauge" && rest != "histogram") {
          return fail(error, "unknown metric type '" + rest + "' for " + name);
        }
        types[name] = rest;
      } else if (keyword != "HELP") {
        return fail(error, "unknown comment keyword in '" + line + "'");
      }
      continue;
    }
    Sample sample;
    if (!parse_sample(line, &sample, error)) return false;
    // Resolve the base metric: histogram series use _bucket/_sum/_count.
    std::string base = sample.name;
    for (const char* suffix : {"_bucket", "_sum", "_count"}) {
      const std::string s = suffix;
      if (base.size() > s.size() &&
          base.compare(base.size() - s.size(), s.size(), s) == 0) {
        const std::string candidate = base.substr(0, base.size() - s.size());
        auto it = types.find(candidate);
        if (it != types.end() && it->second == "histogram") {
          base = candidate;
          HistState& h = hists[base];
          if (s == "_bucket") {
            if (!sample.has_le) {
              return fail(error, base + "_bucket sample missing le label");
            }
            if (h.saw_inf) {
              return fail(error, base + ": bucket after le=\"+Inf\"");
            }
            if (sample.value < h.last_bucket) {
              return fail(error, base + ": bucket counts are not cumulative");
            }
            h.last_bucket = sample.value;
            if (sample.le == "+Inf") {
              h.saw_inf = true;
              h.inf_value = sample.value;
            }
          } else if (s == "_sum") {
            h.saw_sum = true;
          } else {
            h.saw_count = true;
            h.count_value = sample.value;
          }
        }
        break;
      }
    }
    if (base == sample.name && types.find(base) == types.end()) {
      return fail(error, "sample '" + sample.name + "' has no preceding # TYPE");
    }
  }
  for (const auto& [name, h] : hists) {
    if (!h.saw_inf) return fail(error, name + ": missing le=\"+Inf\" bucket");
    if (!h.saw_sum) return fail(error, name + ": missing _sum");
    if (!h.saw_count) return fail(error, name + ": missing _count");
    if (h.count_value != h.inf_value) {
      return fail(error, name + ": _count disagrees with the +Inf bucket");
    }
  }
  for (const auto& [name, type] : types) {
    if (type == "histogram" && hists.find(name) == hists.end()) {
      return fail(error, name + ": histogram declared but no series emitted");
    }
  }
  return true;
}

}  // namespace cpr::obs
