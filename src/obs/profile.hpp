#pragma once
// Scoped phase timers for the training/tuning path.
//
// `CPR_PROFILE_SCOPE("mttkrp")` at the top of a kernel registers the phase
// once (a function-local static, so OpenMP teams race-free share one
// handle) and times the enclosing scope whenever profiling is enabled.
// Disabled — the default, and the only state the serving benches ever see —
// the macro costs one relaxed atomic load, cheap enough to live inside
// MTTKRP and the per-tile fused Gram+RHS kernel.
//
// Enabled via `cpr_train/cpr_tune --profile`, every scope accumulates into
// per-thread-sharded {calls, total_ns} cells rendered as a per-phase time
// table; with event capture additionally on (`--trace-out`), each scope
// also appends a bounded per-thread-tracked event exported in the same
// Chrome trace JSON as the serving tracer.
//
// The Profiler is a process-wide singleton on purpose: phase handles are
// burned into function-local statics, and the kernels it instruments have
// no context argument to thread a registry through. Tests that enable it
// must reset() + disable when done.

#include <array>
#include <atomic>
#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

#include "obs/metrics.hpp"
#include "util/table.hpp"

namespace cpr::obs {

class Profiler {
 public:
  static constexpr std::size_t kMaxPhases = 64;
  static constexpr std::size_t kMaxEvents = 1 << 17;

  static Profiler& instance();

  /// `timing` turns the scopes on; `capture` additionally records one event
  /// per scope for the trace export. Capture without timing is meaningless
  /// and treated as timing too.
  void set_enabled(bool timing, bool capture = false);
  bool enabled() const { return flags_.load(std::memory_order_relaxed) != 0; }
  bool capturing() const {
    return (flags_.load(std::memory_order_relaxed) & kCaptureBit) != 0;
  }

  /// Idempotent by name; at most kMaxPhases distinct phases.
  std::size_t register_phase(const std::string& name);

  /// Accumulates one timed scope (called by ScopedPhase, not directly).
  void record(std::size_t phase, std::uint64_t start_ns, std::uint64_t end_ns);

  struct PhaseStat {
    std::string name;
    std::uint64_t calls = 0;
    std::uint64_t total_ns = 0;
  };
  /// Non-zero phases in registration order.
  std::vector<PhaseStat> stats() const;

  /// phase | calls | total_ms | mean_us table for `--profile` output.
  Table render_table() const;

  /// Captured events (tid = profiling thread) as Chrome trace JSON.
  std::string render_chrome_json() const;

  std::uint64_t events_dropped() const {
    return events_dropped_.load(std::memory_order_relaxed);
  }

  /// Zeroes accumulators and captured events; registered phases survive
  /// (their handles live in function-local statics).
  void reset();

 private:
  static constexpr int kTimingBit = 1;
  static constexpr int kCaptureBit = 2;

  Profiler() = default;

  struct alignas(64) Cell {
    std::atomic<std::uint64_t> calls{0};
    std::atomic<std::uint64_t> total_ns{0};
  };
  struct Phase {
    std::string name;
    std::array<Cell, kMetricShards> cells;
  };

  struct Event {
    std::uint32_t phase = 0;
    std::uint32_t tid = 0;
    std::uint64_t start_ns = 0;
    std::uint64_t end_ns = 0;
  };

  std::atomic<int> flags_{0};
  mutable std::mutex mu_;  // phase registration + event buffer
  // Fixed-capacity phase storage: record() indexes it without a lock, so
  // the array must never reallocate.
  std::array<Phase, kMaxPhases> phases_;
  std::atomic<std::size_t> phase_count_{0};
  std::vector<Event> events_;
  std::atomic<std::uint64_t> events_dropped_{0};
};

/// RAII timer for one profiled scope; see CPR_PROFILE_SCOPE.
class ScopedPhase {
 public:
  explicit ScopedPhase(std::size_t phase) {
    if (Profiler::instance().enabled()) {
      phase_ = phase;
      start_ns_ = monotonic_ns();
      active_ = true;
    }
  }
  ~ScopedPhase() {
    if (active_) Profiler::instance().record(phase_, start_ns_, monotonic_ns());
  }
  ScopedPhase(const ScopedPhase&) = delete;
  ScopedPhase& operator=(const ScopedPhase&) = delete;

 private:
  std::size_t phase_ = 0;
  std::uint64_t start_ns_ = 0;
  bool active_ = false;
};

}  // namespace cpr::obs

#define CPR_PROFILE_CONCAT_INNER(a, b) a##b
#define CPR_PROFILE_CONCAT(a, b) CPR_PROFILE_CONCAT_INNER(a, b)

/// Times the enclosing scope under `name` when profiling is enabled; one
/// relaxed atomic load when it is not.
#define CPR_PROFILE_SCOPE(name)                                                 \
  static const std::size_t CPR_PROFILE_CONCAT(cpr_profile_phase_, __LINE__) =   \
      ::cpr::obs::Profiler::instance().register_phase(name);                    \
  ::cpr::obs::ScopedPhase CPR_PROFILE_CONCAT(cpr_profile_scope_, __LINE__)(     \
      CPR_PROFILE_CONCAT(cpr_profile_phase_, __LINE__))
