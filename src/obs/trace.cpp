#include "obs/trace.hpp"

#include <algorithm>
#include <cctype>
#include <cstdio>
#include <cstdlib>
#include <map>
#include <sstream>

namespace cpr::obs {

TraceHandle TraceCollector::maybe_start() {
  const std::uint64_t every = sample_every_.load(std::memory_order_relaxed);
  if (every == 0) return nullptr;
  const std::uint64_t n = sequence_.fetch_add(1, std::memory_order_relaxed);
  if (n % every != 0) return nullptr;
  const std::uint64_t id = next_id_.fetch_add(1, std::memory_order_relaxed);
  return std::make_shared<RequestTrace>(id, monotonic_ns());
}

void TraceCollector::finish(const TraceHandle& trace) {
  if (!trace) return;
  TraceSpan root;
  root.name = "request";
  root.start_ns = trace->start_ns();
  root.end_ns = monotonic_ns();
  trace->add_span(std::move(root));
  std::lock_guard<std::mutex> lock(mu_);
  if (done_.size() >= kMaxTraces) {
    dropped_.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  done_.push_back(trace);
}

std::size_t TraceCollector::collected() const {
  std::lock_guard<std::mutex> lock(mu_);
  return done_.size();
}

std::string TraceCollector::render_chrome_json() const {
  std::vector<TraceHandle> done;
  {
    std::lock_guard<std::mutex> lock(mu_);
    done = done_;
  }
  std::vector<ChromeEvent> events;
  for (const TraceHandle& trace : done) {
    for (TraceSpan& span : trace->spans()) {
      ChromeEvent event;
      event.name = std::move(span.name);
      event.tid = trace->id();
      event.start_ns = span.start_ns;
      event.end_ns = span.end_ns;
      event.args = std::move(span.args);
      events.push_back(std::move(event));
    }
  }
  return render_chrome_events(std::move(events));
}

std::string json_escape(std::string_view text) {
  std::string out;
  out.reserve(text.size());
  for (unsigned char c : text) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\b': out += "\\b"; break;
      case '\f': out += "\\f"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (c < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += static_cast<char>(c);
        }
    }
  }
  return out;
}

namespace {

// ts/dur in integer-nanosecond-derived microseconds with three decimals:
// deterministic text for identical inputs, sub-µs spans stay non-zero.
std::string format_us(std::uint64_t ns) {
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%llu.%03llu",
                static_cast<unsigned long long>(ns / 1000),
                static_cast<unsigned long long>(ns % 1000));
  return buf;
}

}  // namespace

std::string render_chrome_events(std::vector<ChromeEvent> events) {
  std::stable_sort(events.begin(), events.end(),
                   [](const ChromeEvent& a, const ChromeEvent& b) {
                     if (a.tid != b.tid) return a.tid < b.tid;
                     return a.start_ns < b.start_ns;
                   });
  std::ostringstream out;
  out << "{\"traceEvents\":[";
  bool first = true;
  for (const ChromeEvent& event : events) {
    if (!first) out << ',';
    first = false;
    const std::uint64_t end = std::max(event.end_ns, event.start_ns);
    // The validator requires a non-empty name; keep the serializer total.
    out << "{\"name\":\""
        << (event.name.empty() ? "(unnamed)" : json_escape(event.name))
        << "\",\"ph\":\"X\",\"pid\":1"
        << ",\"tid\":" << event.tid << ",\"ts\":" << format_us(event.start_ns)
        << ",\"dur\":" << format_us(end - event.start_ns);
    if (!event.args.empty()) {
      out << ",\"args\":{";
      bool first_arg = true;
      for (const auto& [key, value] : event.args) {
        if (!first_arg) out << ',';
        first_arg = false;
        out << '"' << json_escape(key) << "\":\"" << json_escape(value) << '"';
      }
      out << '}';
    }
    out << '}';
  }
  out << "]}";
  return out.str();
}

namespace {

// Minimal recursive-descent JSON reader: just enough structure to validate
// the trace export without pulling in a dependency.
struct JsonValue {
  enum class Type { Null, Bool, Number, String, Array, Object };
  Type type = Type::Null;
  bool boolean = false;
  double number = 0.0;
  std::string text;
  std::vector<JsonValue> items;
  std::vector<std::pair<std::string, JsonValue>> fields;

  const JsonValue* find(const std::string& key) const {
    for (const auto& [k, v] : fields) {
      if (k == key) return &v;
    }
    return nullptr;
  }
};

class JsonParser {
 public:
  JsonParser(const std::string& text, std::string* error)
      : text_(text), error_(error) {}

  bool parse(JsonValue* out) {
    skip_ws();
    if (!parse_value(out)) return false;
    skip_ws();
    if (pos_ != text_.size()) return fail("trailing bytes after JSON document");
    return true;
  }

 private:
  bool fail(const std::string& message) {
    if (error_ && error_->empty()) {
      *error_ = message + " (offset " + std::to_string(pos_) + ")";
    }
    return false;
  }

  void skip_ws() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' || text_[pos_] == '\n' ||
            text_[pos_] == '\r')) {
      ++pos_;
    }
  }

  bool parse_value(JsonValue* out) {
    if (++depth_ > 64) return fail("nesting too deep");
    if (pos_ >= text_.size()) return fail("unexpected end of input");
    bool ok = false;
    switch (text_[pos_]) {
      case '{': ok = parse_object(out); break;
      case '[': ok = parse_array(out); break;
      case '"':
        out->type = JsonValue::Type::String;
        ok = parse_string(&out->text);
        break;
      case 't':
      case 'f': ok = parse_keyword(out); break;
      case 'n': ok = parse_keyword(out); break;
      default: ok = parse_number(out);
    }
    --depth_;
    return ok;
  }

  bool parse_keyword(JsonValue* out) {
    static const struct { const char* word; JsonValue::Type type; bool b; } kWords[] = {
        {"true", JsonValue::Type::Bool, true},
        {"false", JsonValue::Type::Bool, false},
        {"null", JsonValue::Type::Null, false},
    };
    for (const auto& w : kWords) {
      const std::size_t len = std::string(w.word).size();
      if (text_.compare(pos_, len, w.word) == 0) {
        out->type = w.type;
        out->boolean = w.b;
        pos_ += len;
        return true;
      }
    }
    return fail("invalid literal");
  }

  bool parse_number(JsonValue* out) {
    const std::size_t start = pos_;
    if (pos_ < text_.size() && text_[pos_] == '-') ++pos_;
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
            text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E' ||
            text_[pos_] == '+' || text_[pos_] == '-')) {
      ++pos_;
    }
    if (pos_ == start) return fail("invalid value");
    const std::string token = text_.substr(start, pos_ - start);
    char* end = nullptr;
    out->number = std::strtod(token.c_str(), &end);
    if (end != token.c_str() + token.size()) return fail("invalid number");
    out->type = JsonValue::Type::Number;
    return true;
  }

  bool parse_string(std::string* out) {
    if (text_[pos_] != '"') return fail("expected string");
    ++pos_;
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c == '"') {
        ++pos_;
        return true;
      }
      if (c == '\\') {
        if (pos_ + 1 >= text_.size()) return fail("bad escape");
        const char esc = text_[pos_ + 1];
        switch (esc) {
          case '"': *out += '"'; break;
          case '\\': *out += '\\'; break;
          case '/': *out += '/'; break;
          case 'b': *out += '\b'; break;
          case 'f': *out += '\f'; break;
          case 'n': *out += '\n'; break;
          case 'r': *out += '\r'; break;
          case 't': *out += '\t'; break;
          case 'u': {
            if (pos_ + 5 >= text_.size()) return fail("bad \\u escape");
            for (std::size_t i = pos_ + 2; i < pos_ + 6; ++i) {
              if (!std::isxdigit(static_cast<unsigned char>(text_[i]))) {
                return fail("bad \\u escape");
              }
            }
            *out += '?';  // code point identity is irrelevant for validation
            pos_ += 4;
            break;
          }
          default: return fail("bad escape");
        }
        pos_ += 2;
        continue;
      }
      if (static_cast<unsigned char>(c) < 0x20) return fail("raw control character");
      *out += c;
      ++pos_;
    }
    return fail("unterminated string");
  }

  bool parse_array(JsonValue* out) {
    out->type = JsonValue::Type::Array;
    ++pos_;  // '['
    skip_ws();
    if (pos_ < text_.size() && text_[pos_] == ']') {
      ++pos_;
      return true;
    }
    while (true) {
      JsonValue item;
      skip_ws();
      if (!parse_value(&item)) return false;
      out->items.push_back(std::move(item));
      skip_ws();
      if (pos_ >= text_.size()) return fail("unterminated array");
      if (text_[pos_] == ',') {
        ++pos_;
        continue;
      }
      if (text_[pos_] == ']') {
        ++pos_;
        return true;
      }
      return fail("expected ',' or ']'");
    }
  }

  bool parse_object(JsonValue* out) {
    out->type = JsonValue::Type::Object;
    ++pos_;  // '{'
    skip_ws();
    if (pos_ < text_.size() && text_[pos_] == '}') {
      ++pos_;
      return true;
    }
    while (true) {
      skip_ws();
      std::string key;
      if (pos_ >= text_.size() || text_[pos_] != '"') return fail("expected object key");
      if (!parse_string(&key)) return false;
      skip_ws();
      if (pos_ >= text_.size() || text_[pos_] != ':') return fail("expected ':'");
      ++pos_;
      skip_ws();
      JsonValue value;
      if (!parse_value(&value)) return false;
      out->fields.emplace_back(std::move(key), std::move(value));
      skip_ws();
      if (pos_ >= text_.size()) return fail("unterminated object");
      if (text_[pos_] == ',') {
        ++pos_;
        continue;
      }
      if (text_[pos_] == '}') {
        ++pos_;
        return true;
      }
      return fail("expected ',' or '}'");
    }
  }

  const std::string& text_;
  std::string* error_;
  std::size_t pos_ = 0;
  int depth_ = 0;
};

bool trace_fail(std::string* error, const std::string& message) {
  if (error) *error = message;
  return false;
}

}  // namespace

bool validate_chrome_trace(const std::string& json, std::string* error) {
  if (error) error->clear();
  JsonValue root;
  JsonParser parser(json, error);
  if (!parser.parse(&root)) return false;
  if (root.type != JsonValue::Type::Object) {
    return trace_fail(error, "top level is not an object");
  }
  const JsonValue* events = root.find("traceEvents");
  if (!events || events->type != JsonValue::Type::Array) {
    return trace_fail(error, "missing traceEvents array");
  }
  std::map<std::uint64_t, double> last_ts;  // per-tid monotonicity
  for (std::size_t i = 0; i < events->items.size(); ++i) {
    const JsonValue& event = events->items[i];
    const std::string where = "event " + std::to_string(i);
    if (event.type != JsonValue::Type::Object) {
      return trace_fail(error, where + " is not an object");
    }
    const JsonValue* name = event.find("name");
    if (!name || name->type != JsonValue::Type::String || name->text.empty()) {
      return trace_fail(error, where + ": missing name");
    }
    const JsonValue* ph = event.find("ph");
    if (!ph || ph->type != JsonValue::Type::String) {
      return trace_fail(error, where + ": missing ph");
    }
    const JsonValue* ts = event.find("ts");
    if (!ts || ts->type != JsonValue::Type::Number || ts->number < 0) {
      return trace_fail(error, where + " ('" + name->text +
                                    "'): missing or negative ts");
    }
    // Complete events must carry a duration — this is the "every span
    // closed" check: an unclosed span would have no dur to emit.
    if (ph->text == "X") {
      const JsonValue* dur = event.find("dur");
      if (!dur || dur->type != JsonValue::Type::Number || dur->number < 0) {
        return trace_fail(error, where + " ('" + name->text +
                                      "'): missing or negative dur");
      }
    }
    std::uint64_t tid = 0;
    if (const JsonValue* t = event.find("tid");
        t && t->type == JsonValue::Type::Number && t->number >= 0) {
      tid = static_cast<std::uint64_t>(t->number);
    }
    auto [it, inserted] = last_ts.try_emplace(tid, ts->number);
    if (!inserted) {
      if (ts->number < it->second) {
        return trace_fail(error, where + " ('" + name->text +
                                      "'): ts not monotone within tid");
      }
      it->second = ts->number;
    }
  }
  return true;
}

}  // namespace cpr::obs
