#pragma once
// Lock-free metrics for the serving and training layers.
//
// Three primitives, all safe to hammer from any number of threads with no
// lock on the hot path:
//
//   Counter   — per-thread-sharded relaxed atomics; value() sums the shards.
//   Gauge     — a single atomic level (connections open, entries resident).
//   Histogram — fixed-boundary log-scale buckets with EXACT counts. Every
//               histogram shares one boundary table (1 µs to ~113 s, four
//               buckets per octave), so any two snapshots merge by
//               element-wise addition — associative and deterministic no
//               matter how many shards or processes contributed. Percentiles
//               are computed by nearest rank over the exact bucket counts
//               and return the bucket's upper bound: a pure function of the
//               counts, bitwise-reproducible across runs of the same
//               recorded workload (unlike the sampling reservoir this
//               replaces, whose tails were sample noise).
//
// The Registry names metrics and renders the Prometheus text exposition
// (`# HELP`/`# TYPE`, cumulative `_bucket{le="..."}` lines, `_sum`,
// `_count`) served by the METRICS protocol verb and dumped by
// `cpr_serve --metrics-out`. Registries are instances, not process globals:
// each Server owns one, so tests and multi-server processes never share
// counters.

#include <array>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace cpr::obs {

/// Shard count for the per-thread-sharded primitives: enough slots that a
/// dispatch pool plus batcher workers rarely collide on a cacheline.
inline constexpr std::size_t kMetricShards = 16;

/// This thread's shard slot (assigned once per thread, round-robin).
std::size_t thread_shard();

/// Monotonic nanoseconds (steady_clock): the one clock every observability
/// component stamps with, so spans and histograms are mutually comparable.
inline std::uint64_t monotonic_ns() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

/// Monotonically non-decreasing event counter.
class Counter {
 public:
  void inc(std::uint64_t n = 1) {
    slots_[thread_shard()].value.fetch_add(n, std::memory_order_relaxed);
  }
  std::uint64_t value() const {
    std::uint64_t total = 0;
    for (const auto& slot : slots_) total += slot.value.load(std::memory_order_relaxed);
    return total;
  }

 private:
  struct alignas(64) Slot {
    std::atomic<std::uint64_t> value{0};
  };
  std::array<Slot, kMetricShards> slots_;
};

/// A level that can go up and down (open connections, resident entries).
class Gauge {
 public:
  void set(std::int64_t v) { value_.store(v, std::memory_order_relaxed); }
  void add(std::int64_t delta) { value_.fetch_add(delta, std::memory_order_relaxed); }
  std::int64_t value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<std::int64_t> value_{0};
};

/// Element-wise-addable histogram state: bucket counts over the shared
/// boundary table plus a fixed-point (integer nanosecond) sum, so merged
/// totals are exact and merge order cannot change any digit.
struct HistogramSnapshot {
  std::vector<std::uint64_t> buckets;  ///< finite buckets + one overflow slot
  std::uint64_t sum_ns = 0;            ///< exact total in nanoseconds

  std::uint64_t count() const;
  double sum_seconds() const { return static_cast<double>(sum_ns) * 1e-9; }

  /// Element-wise addition; associative and commutative, so any merge tree
  /// over the same shards yields bitwise-identical state.
  void merge(const HistogramSnapshot& other);

  /// Nearest-rank percentile (q in [0,1]) over the exact counts; returns
  /// the containing bucket's upper boundary (the last finite boundary for
  /// overflow samples), or 0 when empty. Deterministic in the counts alone.
  double percentile(double q) const;
};

/// Fixed-boundary log-scale latency histogram (see file comment).
class Histogram {
 public:
  /// Shared upper boundaries: bounds[i] = 1e-6 * 2^(i/4), covering 1 µs to
  /// ~113 s in 108 buckets; samples above the last bound land in one
  /// overflow bucket, samples below 1 µs in the first bucket.
  static const std::vector<double>& boundaries();

  Histogram();

  /// Records one observation; negative/NaN values clamp into the first
  /// bucket. One binary search plus two relaxed fetch_adds — no locks.
  void record(double seconds);

  HistogramSnapshot snapshot() const;

  /// Convenience: snapshot().percentile(q).
  double percentile(double q) const { return snapshot().percentile(q); }

 private:
  struct alignas(64) Shard {
    std::unique_ptr<std::atomic<std::uint64_t>[]> buckets;
    std::atomic<std::uint64_t> sum_ns{0};
  };
  std::array<Shard, kMetricShards> shards_;
};

/// Named-metric registry with Prometheus text exposition. Registration is
/// mutex-guarded (cold path); the returned references stay valid for the
/// registry's lifetime, and recording through them is lock-free.
class Registry {
 public:
  enum class CallbackKind { Counter, Gauge };

  Registry() = default;
  Registry(const Registry&) = delete;
  Registry& operator=(const Registry&) = delete;

  /// Each returns the existing metric when `name` is already registered
  /// (and throws CheckError if it was registered as a different kind).
  Counter& counter(const std::string& name, const std::string& help);
  Gauge& gauge(const std::string& name, const std::string& help);
  Histogram& histogram(const std::string& name, const std::string& help);

  /// Registers a render-time value pulled from elsewhere (cache counters,
  /// batcher stats). `fn` runs during render() and must be thread-safe.
  void callback(const std::string& name, const std::string& help, CallbackKind kind,
                std::function<double()> fn);

  /// The full Prometheus text exposition, metrics sorted by name.
  std::string render() const;

 private:
  struct Entry {
    std::string help;
    std::unique_ptr<Counter> counter;
    std::unique_ptr<Gauge> gauge;
    std::unique_ptr<Histogram> histogram;
    std::function<double()> fn;
    CallbackKind fn_kind = CallbackKind::Gauge;
  };
  Entry& entry(const std::string& name, const std::string& help);

  mutable std::mutex mu_;
  std::map<std::string, Entry> entries_;
};

/// Structural validator for the Prometheus text exposition (the
/// `tools/cpr_obscheck` gate and the golden-format tests): every sample
/// needs a preceding `# TYPE`, histogram buckets must be cumulative and
/// non-decreasing, end in `le="+Inf"`, and agree with `_count`; `_sum`
/// must be present. On failure returns false and describes the first
/// violation in `*error`.
bool validate_prometheus_text(const std::string& text, std::string* error);

}  // namespace cpr::obs
