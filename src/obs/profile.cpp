#include "obs/profile.hpp"

#include "obs/trace.hpp"
#include "util/check.hpp"

namespace cpr::obs {
namespace {

// Dense per-thread index for event attribution (distinct from thread_shard,
// which folds threads into kMetricShards slots).
std::uint32_t profile_thread_id() {
  static std::atomic<std::uint32_t> next{0};
  thread_local const std::uint32_t id = next.fetch_add(1, std::memory_order_relaxed);
  return id;
}

}  // namespace

Profiler& Profiler::instance() {
  static Profiler profiler;
  return profiler;
}

void Profiler::set_enabled(bool timing, bool capture) {
  int flags = 0;
  if (timing || capture) flags |= kTimingBit;
  if (capture) flags |= kCaptureBit;
  flags_.store(flags, std::memory_order_relaxed);
}

std::size_t Profiler::register_phase(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  const std::size_t count = phase_count_.load(std::memory_order_relaxed);
  for (std::size_t i = 0; i < count; ++i) {
    if (phases_[i].name == name) return i;
  }
  CPR_CHECK_MSG(count < kMaxPhases, "profiler: too many distinct phases");
  phases_[count].name = name;
  // Release so a record() that read this index sees the name published.
  phase_count_.store(count + 1, std::memory_order_release);
  return count;
}

void Profiler::record(std::size_t phase, std::uint64_t start_ns, std::uint64_t end_ns) {
  if (phase >= phase_count_.load(std::memory_order_acquire)) return;
  if (end_ns < start_ns) end_ns = start_ns;
  Cell& cell = phases_[phase].cells[thread_shard()];
  cell.calls.fetch_add(1, std::memory_order_relaxed);
  cell.total_ns.fetch_add(end_ns - start_ns, std::memory_order_relaxed);
  if (capturing()) {
    Event event;
    event.phase = static_cast<std::uint32_t>(phase);
    event.tid = profile_thread_id();
    event.start_ns = start_ns;
    event.end_ns = end_ns;
    std::lock_guard<std::mutex> lock(mu_);
    if (events_.size() >= kMaxEvents) {
      events_dropped_.fetch_add(1, std::memory_order_relaxed);
    } else {
      events_.push_back(event);
    }
  }
}

std::vector<Profiler::PhaseStat> Profiler::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  const std::size_t count = phase_count_.load(std::memory_order_acquire);
  std::vector<PhaseStat> out;
  for (std::size_t i = 0; i < count; ++i) {
    PhaseStat stat;
    stat.name = phases_[i].name;
    for (const Cell& cell : phases_[i].cells) {
      stat.calls += cell.calls.load(std::memory_order_relaxed);
      stat.total_ns += cell.total_ns.load(std::memory_order_relaxed);
    }
    if (stat.calls > 0) out.push_back(std::move(stat));
  }
  return out;
}

Table Profiler::render_table() const {
  Table table({"phase", "calls", "total_ms", "mean_us"});
  for (const PhaseStat& stat : stats()) {
    const double total_ms = static_cast<double>(stat.total_ns) * 1e-6;
    const double mean_us =
        static_cast<double>(stat.total_ns) * 1e-3 / static_cast<double>(stat.calls);
    table.add_row({stat.name, Table::fmt(stat.calls), Table::fmt(total_ms, 3),
                   Table::fmt(mean_us, 3)});
  }
  return table;
}

std::string Profiler::render_chrome_json() const {
  std::vector<ChromeEvent> events;
  {
    std::lock_guard<std::mutex> lock(mu_);
    events.reserve(events_.size());
    for (const Event& event : events_) {
      ChromeEvent out;
      out.name = phases_[event.phase].name;
      out.tid = event.tid;
      out.start_ns = event.start_ns;
      out.end_ns = event.end_ns;
      events.push_back(std::move(out));
    }
  }
  return render_chrome_events(std::move(events));
}

void Profiler::reset() {
  std::lock_guard<std::mutex> lock(mu_);
  const std::size_t count = phase_count_.load(std::memory_order_acquire);
  for (std::size_t i = 0; i < count; ++i) {
    for (Cell& cell : phases_[i].cells) {
      cell.calls.store(0, std::memory_order_relaxed);
      cell.total_ns.store(0, std::memory_order_relaxed);
    }
  }
  events_.clear();
  events_dropped_.store(0, std::memory_order_relaxed);
}

}  // namespace cpr::obs
