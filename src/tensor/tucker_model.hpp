#pragma once
// Tucker decomposition model — the "alternative tensor factorization" the
// paper defers to future work (Section 4.1 cites Tucker alongside CP).
//
// A Tucker model stores a dense core tensor G of shape R_1 x ... x R_d and
// per-mode factor matrices U_j in R^{I_j x R_j}:
//   t̂_i = sum_{r} g_r * prod_j U_j(i_j, r_j).
// Unlike CP, the core couples the modes, so model size carries a
// prod_j R_j term — the trade-off the ext_tucker_vs_cp bench quantifies.

#include "linalg/matrix.hpp"
#include "tensor/dense_tensor.hpp"
#include "tensor/multi_index.hpp"
#include "util/rng.hpp"
#include "util/serialize.hpp"

namespace cpr::tensor {

class TuckerModel {
 public:
  TuckerModel() = default;

  /// Zero-initialized model; `core_dims[j]` is the mode-j rank R_j <= dims[j].
  TuckerModel(Dims dims, Dims core_dims);

  std::size_t order() const { return factors_.size(); }
  const Dims& dims() const { return dims_; }
  const Dims& core_dims() const { return core_.dims(); }

  DenseTensor& core() { return core_; }
  const DenseTensor& core() const { return core_; }
  linalg::Matrix& factor(std::size_t j) { return factors_.at(j); }
  const linalg::Matrix& factor(std::size_t j) const { return factors_.at(j); }

  /// Reconstructs element t̂_i (cost prod_j R_j).
  double eval(const Index& idx) const;

  /// Contraction weight vector for mode `mode` at entry index `idx`:
  /// w in R^{R_mode} with t̂ = U_mode(i_mode, :) · w. Used by the row-wise
  /// least-squares updates in tucker_complete.
  void mode_weights(const Index& idx, std::size_t mode, double* w) const;

  /// Kronecker design vector z = kron_j U_j(i_j, :) (length prod R_j) with
  /// t̂ = <vec(G), z>. Used by the core update.
  void design_vector(const Index& idx, double* z) const;

  /// Ones + jitter init (same rationale as CpModel::init_ones).
  void init_ones(Rng& rng, double jitter = 0.1);

  std::size_t parameter_count() const;
  std::size_t parameter_bytes() const;

  void serialize(SerialSink& sink) const;
  static TuckerModel deserialize(BufferSource& source);

 private:
  Dims dims_;
  DenseTensor core_;
  std::vector<linalg::Matrix> factors_;
};

}  // namespace cpr::tensor
