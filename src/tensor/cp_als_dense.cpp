#include "tensor/cp_als_dense.hpp"

#include <cmath>

#include "linalg/blas.hpp"
#include "linalg/cholesky.hpp"
#include "tensor/mttkrp.hpp"
#include "util/log.hpp"

namespace cpr::tensor {

namespace {

/// Dense MTTKRP via direct iteration over all tensor elements.
void dense_mttkrp(const DenseTensor& t, const CpModel& model, std::size_t mode,
                  linalg::Matrix& out) {
  out.fill(0.0);
  const std::size_t rank = model.rank();
  Index idx(t.order(), 0);
  std::vector<double> z(rank);
  std::size_t flat = 0;
  do {
    for (std::size_t r = 0; r < rank; ++r) z[r] = 1.0;
    for (std::size_t j = 0; j < t.order(); ++j) {
      if (j == mode) continue;
      const double* row = model.factor(j).row_ptr(idx[j]);
      for (std::size_t r = 0; r < rank; ++r) z[r] *= row[r];
    }
    double* row = out.row_ptr(idx[mode]);
    const double value = t[flat++];
    for (std::size_t r = 0; r < rank; ++r) row[r] += value * z[r];
  } while (next_index(idx, t.dims()));
}

}  // namespace

DenseAlsReport cp_als_dense(const DenseTensor& t, CpModel& model,
                            const DenseAlsOptions& options) {
  CPR_CHECK(t.dims() == model.dims());
  CPR_CHECK(model.rank() == options.rank);
  const std::size_t rank = options.rank;
  const std::size_t order = t.order();
  const double t_norm = std::max(t.frobenius_norm(), 1e-300);

  DenseAlsReport report;
  double prev_fit = -1.0;
  linalg::Matrix mttkrp_out, gram(rank, rank), hadamard(rank, rank);

  for (int sweep = 0; sweep < options.max_sweeps; ++sweep) {
    for (std::size_t mode = 0; mode < order; ++mode) {
      mttkrp_out = linalg::Matrix(t.dims()[mode], rank);
      dense_mttkrp(t, model, mode, mttkrp_out);
      // Normal-equation matrix: Hadamard of the other modes' Grams.
      hadamard.fill(1.0);
      for (std::size_t j = 0; j < order; ++j) {
        if (j == mode) continue;
        linalg::syrk_tn(model.factor(j), gram);
        for (std::size_t r = 0; r < rank; ++r) {
          for (std::size_t s = 0; s < rank; ++s) hadamard(r, s) *= gram(r, s);
        }
      }
      for (std::size_t r = 0; r < rank; ++r) hadamard(r, r) += options.regularization;
      const auto solution = linalg::solve_spd_multi(hadamard, mttkrp_out.transposed());
      CPR_CHECK_MSG(solution.has_value(), "dense ALS normal equations not SPD");
      model.factor(mode) = solution->transposed();
    }

    const DenseTensor reconstructed = model.reconstruct();
    const double fit = 1.0 - t.frobenius_distance(reconstructed) / t_norm;
    report.sweeps = sweep + 1;
    report.final_fit = fit;
    CPR_LOG_DEBUG("dense ALS sweep " << sweep << " fit " << fit);
    if (prev_fit >= 0.0 && std::abs(fit - prev_fit) < options.tol) {
      report.converged = true;
      break;
    }
    prev_fit = fit;
  }
  return report;
}

}  // namespace cpr::tensor
