#include "tensor/multi_index.hpp"

namespace cpr::tensor {

std::size_t element_count(const Dims& dims) {
  std::size_t count = 1;
  for (const std::size_t d : dims) count *= d;
  return count;
}

std::vector<std::size_t> row_major_strides(const Dims& dims) {
  std::vector<std::size_t> strides(dims.size(), 1);
  for (std::size_t j = dims.size(); j-- > 1;) {
    strides[j - 1] = strides[j] * dims[j];
  }
  return strides;
}

std::size_t linearize(const Index& idx, const Dims& dims) {
  CPR_DCHECK(idx.size() == dims.size());
  std::size_t flat = 0;
  for (std::size_t j = 0; j < dims.size(); ++j) {
    CPR_DCHECK(idx[j] < dims[j]);
    flat = flat * dims[j] + idx[j];
  }
  return flat;
}

Index delinearize(std::size_t flat, const Dims& dims) {
  Index idx(dims.size(), 0);
  for (std::size_t j = dims.size(); j-- > 0;) {
    idx[j] = flat % dims[j];
    flat /= dims[j];
  }
  CPR_DCHECK(flat == 0);
  return idx;
}

bool next_index(Index& idx, const Dims& dims) {
  CPR_DCHECK(idx.size() == dims.size());
  for (std::size_t j = dims.size(); j-- > 0;) {
    if (++idx[j] < dims[j]) return true;
    idx[j] = 0;
  }
  return false;
}

bool in_bounds(const Index& idx, const Dims& dims) {
  if (idx.size() != dims.size()) return false;
  for (std::size_t j = 0; j < dims.size(); ++j) {
    if (idx[j] >= dims[j]) return false;
  }
  return true;
}

}  // namespace cpr::tensor
