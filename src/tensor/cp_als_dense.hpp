#pragma once
// Classical CP-ALS for fully-observed dense tensors.
//
// Reference path used by tests (the completion ALS on a fully-observed Ω
// must agree with it) and by small exact-decomposition analyses.

#include "tensor/cp_model.hpp"
#include "tensor/dense_tensor.hpp"

namespace cpr::tensor {

struct DenseAlsOptions {
  std::size_t rank = 4;
  int max_sweeps = 100;
  double tol = 1e-8;          ///< stop when relative fit improves less than this
  double regularization = 0.0;
  std::uint64_t seed = 42;
};

struct DenseAlsReport {
  int sweeps = 0;
  double final_fit = 0.0;  ///< 1 - ||T - T̂||_F / ||T||_F
  bool converged = false;
};

/// Fits a rank-R CP model to a dense tensor via alternating least squares.
DenseAlsReport cp_als_dense(const DenseTensor& t, CpModel& model,
                            const DenseAlsOptions& options);

}  // namespace cpr::tensor
