#pragma once
// Multi-index helpers shared by dense and sparse tensors.
//
// Indices are stored as std::vector<std::size_t>; linearization is row-major
// (last mode fastest) to match DenseTensor's layout.

#include <cstddef>
#include <vector>

#include "util/check.hpp"

namespace cpr::tensor {

using Index = std::vector<std::size_t>;
using Dims = std::vector<std::size_t>;

/// Total number of elements (product of dims); 1 for an order-0 tensor.
std::size_t element_count(const Dims& dims);

/// Row-major strides (stride of last mode is 1).
std::vector<std::size_t> row_major_strides(const Dims& dims);

/// Flattens a multi-index (bounds-checked in debug builds).
std::size_t linearize(const Index& idx, const Dims& dims);

/// Inverse of linearize.
Index delinearize(std::size_t flat, const Dims& dims);

/// Advances idx to the next row-major multi-index; returns false after the
/// last index wraps (so `do { } while (next_index(...))` visits every cell).
bool next_index(Index& idx, const Dims& dims);

/// True if every coordinate is within bounds.
bool in_bounds(const Index& idx, const Dims& dims);

}  // namespace cpr::tensor
