#pragma once
// Dense order-d tensor with row-major storage.
//
// Dense tensors appear in tests and in the fully-observed CP-ALS reference
// path; the completion pipeline itself works on SparseTensor.

#include "tensor/multi_index.hpp"

namespace cpr::tensor {

class DenseTensor {
 public:
  DenseTensor() = default;
  explicit DenseTensor(Dims dims, double fill = 0.0)
      : dims_(std::move(dims)), data_(element_count(dims_), fill) {}

  std::size_t order() const { return dims_.size(); }
  const Dims& dims() const { return dims_; }
  std::size_t size() const { return data_.size(); }

  double& operator[](std::size_t flat) {
    CPR_DCHECK(flat < data_.size());
    return data_[flat];
  }
  double operator[](std::size_t flat) const {
    CPR_DCHECK(flat < data_.size());
    return data_[flat];
  }

  double& at(const Index& idx) { return data_[linearize(idx, dims_)]; }
  double at(const Index& idx) const { return data_[linearize(idx, dims_)]; }

  double* data() { return data_.data(); }
  const double* data() const { return data_.data(); }

  double frobenius_norm() const;

  /// ||this - other||_F (shapes must match).
  double frobenius_distance(const DenseTensor& other) const;

 private:
  Dims dims_;
  std::vector<double> data_;
};

}  // namespace cpr::tensor
