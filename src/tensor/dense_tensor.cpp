#include "tensor/dense_tensor.hpp"

#include <cmath>

namespace cpr::tensor {

double DenseTensor::frobenius_norm() const {
  double sum = 0.0;
  for (const double v : data_) sum += v * v;
  return std::sqrt(sum);
}

double DenseTensor::frobenius_distance(const DenseTensor& other) const {
  CPR_CHECK(dims_ == other.dims_);
  double sum = 0.0;
  for (std::size_t k = 0; k < data_.size(); ++k) {
    const double diff = data_[k] - other.data_[k];
    sum += diff * diff;
  }
  return std::sqrt(sum);
}

}  // namespace cpr::tensor
