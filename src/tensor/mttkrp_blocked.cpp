#include "tensor/mttkrp_blocked.hpp"

#include <algorithm>

#include "util/simd.hpp"

#ifdef CPR_HAVE_OPENMP
#include <omp.h>
#endif

namespace cpr::tensor {

namespace {

/// Output-tile budget per row block: half of a typical 512 KiB L2 slice,
/// leaving the rest for the gathered factor rows streaming through.
constexpr std::size_t kBlockBytes = 256u << 10;

}  // namespace

RowBlocks::RowBlocks(const SparseTensor& t, std::size_t mode, std::size_t rank) {
  CPR_CHECK(mode < t.order());
  const std::size_t n_rows = t.dims()[mode];
  const std::size_t nnz = t.nnz();

  // Stable counting sort of entry ids by their mode coordinate: the ids of
  // each row end up in ascending storage order, i.e. the serial kernel's
  // accumulation order.
  row_offsets_.assign(n_rows + 1, 0);
  for (std::size_t e = 0; e < nnz; ++e) ++row_offsets_[t.index(e, mode) + 1];
  for (std::size_t i = 0; i < n_rows; ++i) row_offsets_[i + 1] += row_offsets_[i];
  sorted_.resize(nnz);
  std::vector<std::size_t> cursor(row_offsets_.begin(), row_offsets_.end() - 1);
  for (std::size_t e = 0; e < nnz; ++e) sorted_[cursor[t.index(e, mode)]++] = e;

  // Partition rows into blocks whose output tile fits the L2 budget.
  const std::size_t row_bytes = std::max<std::size_t>(rank, 1) * sizeof(double);
  const std::size_t rows_per_block = std::max<std::size_t>(1, kBlockBytes / row_bytes);
  block_rows_.push_back(0);
  while (block_rows_.back() < n_rows) {
    block_rows_.push_back(std::min(n_rows, block_rows_.back() + rows_per_block));
  }
  if (n_rows == 0) block_rows_.push_back(0);
}

void hadamard_block(const CpModel& model, const SparseTensor& t,
                    const std::size_t* entries, std::size_t n,
                    std::size_t skip_mode, double* z_block) {
  const std::size_t rank = model.rank();
  const std::size_t order = model.order();
  // Participating modes in ascending order (the reference product order).
  // The fixed bound keeps the list on the stack; no realistic parameter
  // space approaches it, and overflowing it would corrupt the stack.
  CPR_CHECK_MSG(order <= 64, "hadamard_block supports tensors up to order 64");
  std::size_t modes[64];
  std::size_t n_modes = 0;
  for (std::size_t j = 0; j < order; ++j) {
    if (j != skip_mode) modes[n_modes++] = j;
  }
  for (std::size_t b = 0; b < n; ++b) {
    const std::size_t e = entries[b];
    double* __restrict__ z = z_block + b * rank;
    if (n_modes == 0) {
      for (std::size_t r = 0; r < rank; ++r) z[r] = 1.0;
      continue;
    }
    const double* __restrict__ f0 =
        model.factor(modes[0]).row_ptr(t.index(e, modes[0]));
    if (n_modes == 1) {
      CPR_SIMD
      for (std::size_t r = 0; r < rank; ++r) z[r] = f0[r];
    } else {
      const double* __restrict__ f1 =
          model.factor(modes[1]).row_ptr(t.index(e, modes[1]));
      CPR_SIMD
      for (std::size_t r = 0; r < rank; ++r) z[r] = f0[r] * f1[r];
      for (std::size_t m = 2; m < n_modes; ++m) {
        const double* __restrict__ fm =
            model.factor(modes[m]).row_ptr(t.index(e, modes[m]));
        CPR_SIMD
        for (std::size_t r = 0; r < rank; ++r) z[r] *= fm[r];
      }
    }
  }
}

namespace {

/// Accumulates the rows [first_row, last_row) of one block straight into the
/// (pre-zeroed) output — the block owns those rows, so no reduction is
/// needed. Order-3 tensors (the common case) fuse the whole contribution
/// into a single rank pass; higher orders build the Hadamard product in a
/// stack-local register tile first.
void accumulate_block(const SparseTensor& t, const CpModel& model, std::size_t mode,
                      const RowBlocks& blocks, std::size_t first_row,
                      std::size_t last_row, linalg::Matrix& out) {
  const std::size_t rank = model.rank();
  const std::size_t order = model.order();
  std::vector<double> z_buf(order > 3 ? rank : 0);
  for (std::size_t i = first_row; i < last_row; ++i) {
    const std::size_t count = blocks.row_entry_count(i);
    if (count == 0) continue;
    const std::size_t* entries = blocks.row_entries(i);
    double* __restrict__ row = out.row_ptr(i);
    if (order == 3) {
      // The common case: fuse Hadamard product and accumulation into one
      // rank pass, no intermediate tile.
      const std::size_t j0 = mode == 0 ? 1 : 0;
      const std::size_t j1 = mode == 2 ? 1 : 2;
      const linalg::Matrix& u0 = model.factor(j0);
      const linalg::Matrix& u1 = model.factor(j1);
      for (std::size_t k = 0; k < count; ++k) {
        const std::size_t e = entries[k];
        const double value = t.value(e);
        const double* __restrict__ a = u0.row_ptr(t.index(e, j0));
        const double* __restrict__ b = u1.row_ptr(t.index(e, j1));
        CPR_SIMD
        for (std::size_t r = 0; r < rank; ++r) row[r] += value * (a[r] * b[r]);
      }
    } else if (order == 2) {
      const std::size_t j0 = 1 - mode;
      const linalg::Matrix& u0 = model.factor(j0);
      for (std::size_t k = 0; k < count; ++k) {
        const std::size_t e = entries[k];
        const double value = t.value(e);
        const double* __restrict__ a = u0.row_ptr(t.index(e, j0));
        CPR_SIMD
        for (std::size_t r = 0; r < rank; ++r) row[r] += value * a[r];
      }
    } else if (order == 1) {
      // No participating factors: the Hadamard product is all-ones.
      for (std::size_t k = 0; k < count; ++k) {
        const double value = t.value(entries[k]);
        for (std::size_t r = 0; r < rank; ++r) row[r] += value;
      }
    } else {
      for (std::size_t k = 0; k < count; ++k) {
        const double value = t.value(entries[k]);
        double* __restrict__ z = z_buf.data();
        hadamard_block(model, t, entries + k, 1, mode, z);
        CPR_SIMD
        for (std::size_t r = 0; r < rank; ++r) row[r] += value * z[r];
      }
    }
  }
}

}  // namespace

namespace {

/// Streaming fused accumulation in storage order — the single-thread arm:
/// with one thread no output row is contended, so the row bucketing would
/// only add an O(nnz) sort to the exact same accumulation order. Identical
/// inner loops to accumulate_block, identical (serial) per-element order.
void accumulate_streaming(const SparseTensor& t, const CpModel& model,
                          std::size_t mode, linalg::Matrix& out) {
  const std::size_t rank = model.rank();
  const std::size_t order = model.order();
  const std::size_t nnz = t.nnz();
  if (order == 3) {
    const std::size_t j0 = mode == 0 ? 1 : 0;
    const std::size_t j1 = mode == 2 ? 1 : 2;
    const linalg::Matrix& u0 = model.factor(j0);
    const linalg::Matrix& u1 = model.factor(j1);
    for (std::size_t e = 0; e < nnz; ++e) {
      const double value = t.value(e);
      double* __restrict__ row = out.row_ptr(t.index(e, mode));
      const double* __restrict__ a = u0.row_ptr(t.index(e, j0));
      const double* __restrict__ b = u1.row_ptr(t.index(e, j1));
      CPR_SIMD
      for (std::size_t r = 0; r < rank; ++r) row[r] += value * (a[r] * b[r]);
    }
    return;
  }
  std::vector<double> z_buf(rank);
  for (std::size_t e = 0; e < nnz; ++e) {
    const double value = t.value(e);
    double* __restrict__ row = out.row_ptr(t.index(e, mode));
    double* __restrict__ z = z_buf.data();
    hadamard_block(model, t, &e, 1, mode, z);
    CPR_SIMD
    for (std::size_t r = 0; r < rank; ++r) row[r] += value * z[r];
  }
}

}  // namespace

void sparse_mttkrp_blocked(const SparseTensor& t, const CpModel& model,
                           std::size_t mode, const RowBlocks& blocks,
                           linalg::Matrix& out) {
  CPR_CHECK(mode < model.order());
  CPR_CHECK(out.rows() == model.dims()[mode] && out.cols() == model.rank());
  CPR_CHECK(t.dims() == model.dims());
  out.fill(0.0);
  const std::size_t n_blocks = blocks.n_blocks();
#ifdef CPR_HAVE_OPENMP
#pragma omp parallel for schedule(dynamic) if (n_blocks > 1)
#endif
  for (std::size_t b = 0; b < n_blocks; ++b) {
    accumulate_block(t, model, mode, blocks, blocks.block_first_row(b),
                     blocks.block_last_row(b), out);
  }
}

void sparse_mttkrp_blocked(const SparseTensor& t, const CpModel& model,
                           std::size_t mode, linalg::Matrix& out) {
  int threads = 1;
#ifdef CPR_HAVE_OPENMP
  threads = omp_get_max_threads();
#endif
  if (threads <= 1) {
    CPR_CHECK(mode < model.order());
    CPR_CHECK(out.rows() == model.dims()[mode] && out.cols() == model.rank());
    CPR_CHECK(t.dims() == model.dims());
    out.fill(0.0);
    accumulate_streaming(t, model, mode, out);
    return;
  }
  const RowBlocks blocks(t, mode, model.rank());
  sparse_mttkrp_blocked(t, model, mode, blocks, out);
}

}  // namespace cpr::tensor
