#pragma once
// Cache-blocked, explicitly vectorized sparse MTTKRP — the tentpole kernel
// layer behind the `CPR_KERNEL=blocked` dispatch (util/kernel_mode.hpp).
//
// The scalar reference (tensor/mttkrp.hpp) walks the nonzeros in storage
// order and scatters each contribution into a dims[mode] x rank output with
// a thread-local-accumulator reduction. This layer instead counting-sorts
// the nonzeros by their output row, partitions the rows into blocks whose
// output tile fits the L2 budget, and runs the rank-dimension inner loops
// through `#pragma omp simd` over restrict-qualified pointers so the
// compiler vectorizes them (the TU is built with -march=native where
// available, with FP contraction off so results stay bitwise-stable).
// Because the counting sort is stable, every output element accumulates its
// contributions in exactly the serial entry order: the blocked kernel is
// bitwise-equal to `sparse_mttkrp_serial` per element, threads never share
// an output row, and no reduction pass is needed.

#include <cstddef>
#include <vector>

#include "linalg/matrix.hpp"
#include "tensor/cp_model.hpp"
#include "tensor/sparse_tensor.hpp"

namespace cpr::tensor {

/// \brief Nonzeros of a sparse tensor bucketed by their coordinate along one
///        mode, with the mode's rows partitioned into L2-sized blocks.
///
/// Built in O(nnz) by a stable counting sort, so the entry ids of each row
/// are listed in ascending storage order — the accumulation order of the
/// serial reference kernel.
class RowBlocks {
 public:
  /// \brief Buckets the nonzeros of `t` along mode `mode`.
  /// \param t    the observed tensor.
  /// \param mode the MTTKRP output mode (row index of the output matrix).
  /// \param rank CP rank; sizes the row blocks so one block's output tile
  ///             (block rows x rank doubles) stays inside the L2 budget.
  RowBlocks(const SparseTensor& t, std::size_t mode, std::size_t rank);

  /// \brief Number of rows along the bucketed mode.
  std::size_t n_rows() const { return row_offsets_.size() - 1; }

  /// \brief Number of row blocks (>= 1 unless the mode has no rows).
  std::size_t n_blocks() const { return block_rows_.size() - 1; }

  /// \brief First row owned by block `b`.
  std::size_t block_first_row(std::size_t b) const { return block_rows_[b]; }

  /// \brief One-past-last row owned by block `b`.
  std::size_t block_last_row(std::size_t b) const { return block_rows_[b + 1]; }

  /// \brief Entry ids of row `i`, ascending in storage order.
  const std::size_t* row_entries(std::size_t i) const {
    return sorted_.data() + row_offsets_[i];
  }

  /// \brief Number of nonzeros observed in row `i`.
  std::size_t row_entry_count(std::size_t i) const {
    return row_offsets_[i + 1] - row_offsets_[i];
  }

 private:
  std::vector<std::size_t> sorted_;       ///< entry ids, stably sorted by row
  std::vector<std::size_t> row_offsets_;  ///< CSR offsets into sorted_, n_rows + 1
  std::vector<std::size_t> block_rows_;   ///< block row boundaries, n_blocks + 1
};

/// \brief Blocked SIMD sparse MTTKRP for the given mode.
/// \param t     the observed tensor.
/// \param model CP factors; factor(mode) is not read.
/// \param mode  output mode; `out` must be dims[mode] x rank and is
///              overwritten.
/// \param out   the MTTKRP result matrix.
///
/// Matches `sparse_mttkrp_serial` bitwise per element at any thread count
/// (each row's contributions accumulate in storage order and rows are owned
/// by exactly one block). With more than one OpenMP thread the nonzeros are
/// bucketed into row blocks and the blocks run in parallel; with one thread
/// the same fused SIMD inner loops stream the nonzeros in storage order
/// directly (the bucketing would only re-derive that order).
void sparse_mttkrp_blocked(const SparseTensor& t, const CpModel& model,
                           std::size_t mode, linalg::Matrix& out);

/// \brief Blocked MTTKRP over a prebuilt row partition (amortizes the
///        counting sort across repeated calls with the same sparsity).
/// \param blocks partition previously built for (`t`, `mode`, rank).
void sparse_mttkrp_blocked(const SparseTensor& t, const CpModel& model,
                           std::size_t mode, const RowBlocks& blocks,
                           linalg::Matrix& out);

/// \brief Packs the Hadamard rows of a list of nonzeros into a row block.
/// \param model     CP factors.
/// \param t         the observed tensor.
/// \param entries   ids of the `n` nonzeros to expand.
/// \param n         number of nonzeros (rows of the output block).
/// \param skip_mode mode excluded from the product (the mode being solved).
/// \param z_block   n x rank row-major output; row b receives
///                  prod_{j != skip} U_j(i_j(entries[b]), :).
///
/// Row b equals `hadamard_row(model, t, entries[b], skip_mode, ...)` bitwise;
/// the first two participating factors initialize the product directly
/// (1 * a == a exactly), the rest multiply in ascending mode order. This is
/// the gather stage of the fused normal-equation assembly (linalg/fused.hpp).
void hadamard_block(const CpModel& model, const SparseTensor& t,
                    const std::size_t* entries, std::size_t n,
                    std::size_t skip_mode, double* z_block);

}  // namespace cpr::tensor
