#pragma once
// Partially-observed tensor in coordinate (COO) format.
//
// This is the Ω of the paper: the set of observed (index, value) pairs.
// The builder averages duplicate observations mapped to the same cell
// (Section 5.1: "t_i stores the mean execution time among those mapped
// within cell C_i").

#include <unordered_map>

#include "tensor/dense_tensor.hpp"
#include "tensor/multi_index.hpp"

namespace cpr::tensor {

class SparseTensor {
 public:
  SparseTensor() = default;
  explicit SparseTensor(Dims dims) : dims_(std::move(dims)) {}

  std::size_t order() const { return dims_.size(); }
  const Dims& dims() const { return dims_; }
  std::size_t nnz() const { return values_.size(); }

  /// Fraction of cells observed.
  double density() const {
    const auto total = element_count(dims_);
    return total ? static_cast<double>(nnz()) / static_cast<double>(total) : 0.0;
  }

  /// Coordinate of entry e along mode j.
  std::size_t index(std::size_t e, std::size_t j) const {
    CPR_DCHECK(e < nnz() && j < order());
    return coords_[e * order() + j];
  }

  double value(std::size_t e) const {
    CPR_DCHECK(e < nnz());
    return values_[e];
  }
  double& value(std::size_t e) {
    CPR_DCHECK(e < nnz());
    return values_[e];
  }

  Index entry_index(std::size_t e) const;

  /// Appends an entry; duplicate coordinates are the caller's responsibility
  /// (use Accumulator for mean-aggregation).
  void push_back(const Index& idx, double value);

  /// Applies f to every stored value in place (e.g. log-transform).
  template <typename F>
  void transform_values(F&& f) {
    for (double& v : values_) v = f(v);
  }

  /// Scatters observed entries into a dense tensor (unobserved cells get
  /// `fill`).
  DenseTensor to_dense(double fill = 0.0) const;

  /// Accumulates repeated observations per cell and emits their means.
  class Accumulator {
   public:
    explicit Accumulator(Dims dims) : dims_(std::move(dims)) {}

    void add(const Index& idx, double value);
    std::size_t distinct_cells() const { return sums_.size(); }

    /// Builds the mean-aggregated sparse tensor (entries in ascending flat
    /// order, so construction is deterministic).
    SparseTensor build() const;

    const Dims& dims() const { return dims_; }

   private:
    Dims dims_;
    std::unordered_map<std::size_t, std::pair<double, std::size_t>> sums_;
  };

 private:
  Dims dims_;
  std::vector<std::size_t> coords_;  ///< nnz * order, entry-major
  std::vector<double> values_;
};

/// Per-mode grouping of entries: slices[j][i] lists the entry ids e with
/// index(e, j) == i. Built once per completion run; every optimizer sweeps
/// rows through it.
class ModeSlices {
 public:
  explicit ModeSlices(const SparseTensor& t);

  const std::vector<std::size_t>& entries(std::size_t mode, std::size_t row) const {
    return slices_[mode][row];
  }
  std::size_t rows(std::size_t mode) const { return slices_[mode].size(); }
  std::size_t modes() const { return slices_.size(); }

 private:
  std::vector<std::vector<std::vector<std::size_t>>> slices_;
};

}  // namespace cpr::tensor
