#include "tensor/sparse_tensor.hpp"

#include <algorithm>

namespace cpr::tensor {

Index SparseTensor::entry_index(std::size_t e) const {
  CPR_CHECK(e < nnz());
  return Index(coords_.begin() + static_cast<std::ptrdiff_t>(e * order()),
               coords_.begin() + static_cast<std::ptrdiff_t>((e + 1) * order()));
}

void SparseTensor::push_back(const Index& idx, double value) {
  CPR_CHECK_MSG(in_bounds(idx, dims_), "sparse tensor entry out of bounds");
  coords_.insert(coords_.end(), idx.begin(), idx.end());
  values_.push_back(value);
}

DenseTensor SparseTensor::to_dense(double fill) const {
  DenseTensor dense(dims_, fill);
  for (std::size_t e = 0; e < nnz(); ++e) {
    dense.at(entry_index(e)) = values_[e];
  }
  return dense;
}

void SparseTensor::Accumulator::add(const Index& idx, double value) {
  CPR_CHECK_MSG(in_bounds(idx, dims_), "observation out of tensor bounds");
  auto& slot = sums_[linearize(idx, dims_)];
  slot.first += value;
  slot.second += 1;
}

SparseTensor SparseTensor::Accumulator::build() const {
  std::vector<std::size_t> flats;
  flats.reserve(sums_.size());
  for (const auto& [flat, unused] : sums_) flats.push_back(flat);
  std::sort(flats.begin(), flats.end());

  SparseTensor t(dims_);
  for (const std::size_t flat : flats) {
    const auto& [sum, count] = sums_.at(flat);
    t.push_back(delinearize(flat, dims_), sum / static_cast<double>(count));
  }
  return t;
}

ModeSlices::ModeSlices(const SparseTensor& t) {
  slices_.resize(t.order());
  for (std::size_t j = 0; j < t.order(); ++j) {
    slices_[j].resize(t.dims()[j]);
  }
  for (std::size_t e = 0; e < t.nnz(); ++e) {
    for (std::size_t j = 0; j < t.order(); ++j) {
      slices_[j][t.index(e, j)].push_back(e);
    }
  }
}

}  // namespace cpr::tensor
