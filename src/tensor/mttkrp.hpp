#pragma once
// Khatri–Rao product and sparse MTTKRP.
//
// MTTKRP (matricized tensor times Khatri–Rao product) is the dominant kernel
// of CP optimization: for mode m,
//   M(i_m, :) += t_i * hadamard_{j != m} U_j(i_j, :)
// summed over observed entries i. The sparse variant iterates Ω directly.

#include "linalg/matrix.hpp"
#include "tensor/cp_model.hpp"
#include "tensor/sparse_tensor.hpp"

namespace cpr::tensor {

/// Column-wise Khatri–Rao product: (A ⊙ B)((i*rows(B)+k), r) = A(i,r)*B(k,r).
linalg::Matrix khatri_rao(const linalg::Matrix& a, const linalg::Matrix& b);

/// Sparse MTTKRP for the given mode; `out` must be dims[mode] x rank and is
/// overwritten. Dispatches on the runtime kernel mode (util/kernel_mode.hpp):
/// `blocked` (default) runs the cache-blocked SIMD kernel of
/// tensor/mttkrp_blocked.hpp; `CPR_KERNEL=serial` falls back to this file's
/// scalar reference, parallelized over entries with thread-local
/// accumulators. Both agree with `sparse_mttkrp_serial` within 1e-12.
void sparse_mttkrp(const SparseTensor& t, const CpModel& model, std::size_t mode,
                   linalg::Matrix& out);

/// Single-threaded MTTKRP reference: the exact entry-order accumulation the
/// parallel path reduces to. The threaded variant must match it within
/// floating-point reduction reordering (~1e-12 relative).
void sparse_mttkrp_serial(const SparseTensor& t, const CpModel& model,
                          std::size_t mode, linalg::Matrix& out);

/// Hadamard row product of all factors except `skip_mode` at the entry's
/// coordinates: z_r = prod_{j != skip} U_j(i_j, r). Appends into `z` (size R).
void hadamard_row(const CpModel& model, const SparseTensor& t, std::size_t entry,
                  std::size_t skip_mode, double* z);

/// Sum of squared residuals over observed entries: sum_Ω (t_i - t̂_i)^2.
double sq_residual_observed(const SparseTensor& t, const CpModel& model);

}  // namespace cpr::tensor
