#include "tensor/cp_model.hpp"

#include <cmath>

#include "linalg/blas.hpp"

namespace cpr::tensor {

CpModel::CpModel(Dims dims, std::size_t rank) : dims_(std::move(dims)), rank_(rank) {
  CPR_CHECK_MSG(rank_ > 0, "CP rank must be positive");
  CPR_CHECK_MSG(!dims_.empty(), "CP model needs at least one mode");
  factors_.reserve(dims_.size());
  for (const std::size_t dim : dims_) {
    CPR_CHECK_MSG(dim > 0, "CP mode dimension must be positive");
    factors_.emplace_back(dim, rank_, 0.0);
  }
}

double CpModel::eval(const Index& idx) const {
  CPR_DCHECK(idx.size() == order());
  double total = 0.0;
  for (std::size_t r = 0; r < rank_; ++r) {
    double product = 1.0;
    for (std::size_t j = 0; j < order(); ++j) {
      product *= factors_[j](idx[j], r);
    }
    total += product;
  }
  return total;
}

DenseTensor CpModel::reconstruct() const {
  DenseTensor out(dims_);
  Index idx(order(), 0);
  std::size_t flat = 0;
  do {
    out[flat++] = eval(idx);
  } while (next_index(idx, dims_));
  return out;
}

void CpModel::init_random(Rng& rng, double scale) {
  for (auto& factor : factors_) {
    for (std::size_t i = 0; i < factor.rows(); ++i) {
      for (std::size_t r = 0; r < factor.cols(); ++r) {
        factor(i, r) = rng.normal(0.0, scale);
      }
    }
  }
}

void CpModel::init_ones(Rng& rng, double jitter) {
  for (auto& factor : factors_) {
    for (std::size_t i = 0; i < factor.rows(); ++i) {
      for (std::size_t r = 0; r < factor.cols(); ++r) {
        factor(i, r) = 1.0 + rng.normal(0.0, jitter);
      }
    }
  }
}

void CpModel::init_positive(Rng& rng, double magnitude, double jitter) {
  CPR_CHECK_MSG(magnitude > 0.0, "positive init requires positive magnitude");
  // Spread the target magnitude across rank terms so eval() starts near it.
  const double per_entry =
      magnitude / std::pow(static_cast<double>(rank_), 1.0 / static_cast<double>(order()));
  for (auto& factor : factors_) {
    for (std::size_t i = 0; i < factor.rows(); ++i) {
      for (std::size_t r = 0; r < factor.cols(); ++r) {
        factor(i, r) = per_entry * std::exp(rng.normal(0.0, jitter));
      }
    }
  }
}

bool CpModel::all_factors_positive() const {
  for (const auto& factor : factors_) {
    for (std::size_t i = 0; i < factor.rows(); ++i) {
      for (std::size_t r = 0; r < factor.cols(); ++r) {
        if (!(factor(i, r) > 0.0)) return false;
      }
    }
  }
  return true;
}

double CpModel::frobenius_norm() const {
  // ||T||_F^2 = 1^T (G_1 ∘ G_2 ∘ ... ∘ G_d) 1 with G_j = U_j^T U_j.
  linalg::Matrix hadamard(rank_, rank_, 1.0);
  linalg::Matrix gram(rank_, rank_, 0.0);
  for (const auto& factor : factors_) {
    linalg::syrk_tn(factor, gram);
    for (std::size_t r = 0; r < rank_; ++r) {
      for (std::size_t s = 0; s < rank_; ++s) hadamard(r, s) *= gram(r, s);
    }
  }
  double sum = 0.0;
  for (std::size_t r = 0; r < rank_; ++r) {
    for (std::size_t s = 0; s < rank_; ++s) sum += hadamard(r, s);
  }
  return std::sqrt(std::max(0.0, sum));
}

double CpModel::regularization_term() const {
  double sum = 0.0;
  for (const auto& factor : factors_) {
    const double norm = factor.frobenius_norm();
    sum += norm * norm;
  }
  return sum;
}

std::size_t CpModel::parameter_bytes() const {
  ByteCountSink sink;
  serialize(sink);
  return sink.count();
}

void CpModel::serialize(SerialSink& sink) const {
  sink.write_u64(order());
  sink.write_u64(rank_);
  for (const std::size_t dim : dims_) sink.write_u64(dim);
  for (const auto& factor : factors_) factor.serialize(sink);
}

CpModel CpModel::deserialize(BufferSource& source) {
  const auto order = source.read_count(2 * sizeof(std::uint64_t));
  const auto rank = source.read_u64();
  Dims dims(order);
  for (auto& dim : dims) dim = source.read_u64();
  // The factors (dims[j] x rank doubles each) follow in the body; reject
  // corrupt shapes before the constructor allocates them. The budget is
  // consumed across factors so their SUM is bounded too, not just each one.
  std::size_t budget = source.remaining() / sizeof(double);
  for (const auto dim : dims) {
    CPR_CHECK_MSG(rank > 0 && dim <= budget / rank, "serialized buffer underrun");
    budget -= dim * rank;
  }
  CpModel model(dims, rank);
  for (std::size_t j = 0; j < order; ++j) {
    model.factors_[j] = linalg::Matrix::deserialize(source);
    CPR_CHECK(model.factors_[j].rows() == dims[j] && model.factors_[j].cols() == rank);
  }
  return model;
}

}  // namespace cpr::tensor
