#include "tensor/cp_model.hpp"

#include <cmath>

#include "linalg/blas.hpp"

namespace cpr::tensor {

CpModel::CpModel(Dims dims, std::size_t rank) : dims_(std::move(dims)), rank_(rank) {
  CPR_CHECK_MSG(rank_ > 0, "CP rank must be positive");
  CPR_CHECK_MSG(!dims_.empty(), "CP model needs at least one mode");
  factors_.reserve(dims_.size());
  for (const std::size_t dim : dims_) {
    CPR_CHECK_MSG(dim > 0, "CP mode dimension must be positive");
    factors_.emplace_back(dim, rank_, 0.0);
  }
}

double CpModel::eval(const Index& idx) const {
  CPR_DCHECK(idx.size() == order());
  if (f32_) {
    // Float arm: the same multiply sequence per component with a double
    // accumulator, so it is bitwise equal to the vectorized float kernel in
    // CprModel's blocked dispatch.
    double total = 0.0;
    for (std::size_t r = 0; r < rank_; ++r) {
      float product = 1.0f;
      for (std::size_t j = 0; j < order(); ++j) {
        product *= f32_row_ptr(j, idx[j])[r];
      }
      total += static_cast<double>(product);
    }
    return total;
  }
  double total = 0.0;
  for (std::size_t r = 0; r < rank_; ++r) {
    double product = 1.0;
    for (std::size_t j = 0; j < order(); ++j) {
      product *= factors_[j](idx[j], r);
    }
    total += product;
  }
  return total;
}

bool CpModel::adopt_f32_storage() {
  if (f32_) return true;
  std::vector<std::vector<float>> narrow(factors_.size());
  for (std::size_t j = 0; j < factors_.size(); ++j) {
    const linalg::Matrix& factor = factors_[j];
    narrow[j].resize(factor.size());
    const double* values = factor.data();
    for (std::size_t k = 0; k < factor.size(); ++k) {
      const float f = static_cast<float>(values[k]);
      // Exactness requirement: a lossy narrowing here would change
      // predictions AND break the bitwise save/reload round trip.
      if (static_cast<double>(f) != values[k]) return false;
      narrow[j][k] = f;
    }
  }
  f32_factors_ = std::move(narrow);
  factors_.clear();
  factors_.shrink_to_fit();
  f32_ = true;
  return true;
}

DenseTensor CpModel::reconstruct() const {
  DenseTensor out(dims_);
  Index idx(order(), 0);
  std::size_t flat = 0;
  do {
    out[flat++] = eval(idx);
  } while (next_index(idx, dims_));
  return out;
}

void CpModel::init_random(Rng& rng, double scale) {
  for (auto& factor : factors_) {
    for (std::size_t i = 0; i < factor.rows(); ++i) {
      for (std::size_t r = 0; r < factor.cols(); ++r) {
        factor(i, r) = rng.normal(0.0, scale);
      }
    }
  }
}

void CpModel::init_ones(Rng& rng, double jitter) {
  for (auto& factor : factors_) {
    for (std::size_t i = 0; i < factor.rows(); ++i) {
      for (std::size_t r = 0; r < factor.cols(); ++r) {
        factor(i, r) = 1.0 + rng.normal(0.0, jitter);
      }
    }
  }
}

void CpModel::init_positive(Rng& rng, double magnitude, double jitter) {
  CPR_CHECK_MSG(magnitude > 0.0, "positive init requires positive magnitude");
  // Spread the target magnitude across rank terms so eval() starts near it.
  const double per_entry =
      magnitude / std::pow(static_cast<double>(rank_), 1.0 / static_cast<double>(order()));
  for (auto& factor : factors_) {
    for (std::size_t i = 0; i < factor.rows(); ++i) {
      for (std::size_t r = 0; r < factor.cols(); ++r) {
        factor(i, r) = per_entry * std::exp(rng.normal(0.0, jitter));
      }
    }
  }
}

bool CpModel::all_factors_positive() const {
  for (const auto& factor : factors_) {
    for (std::size_t i = 0; i < factor.rows(); ++i) {
      for (std::size_t r = 0; r < factor.cols(); ++r) {
        if (!(factor(i, r) > 0.0)) return false;
      }
    }
  }
  return true;
}

double CpModel::frobenius_norm() const {
  // ||T||_F^2 = 1^T (G_1 ∘ G_2 ∘ ... ∘ G_d) 1 with G_j = U_j^T U_j.
  linalg::Matrix hadamard(rank_, rank_, 1.0);
  linalg::Matrix gram(rank_, rank_, 0.0);
  for (const auto& factor : factors_) {
    linalg::syrk_tn(factor, gram);
    for (std::size_t r = 0; r < rank_; ++r) {
      for (std::size_t s = 0; s < rank_; ++s) hadamard(r, s) *= gram(r, s);
    }
  }
  double sum = 0.0;
  for (std::size_t r = 0; r < rank_; ++r) {
    for (std::size_t s = 0; s < rank_; ++s) sum += hadamard(r, s);
  }
  return std::sqrt(std::max(0.0, sum));
}

double CpModel::regularization_term() const {
  double sum = 0.0;
  for (const auto& factor : factors_) {
    const double norm = factor.frobenius_norm();
    sum += norm * norm;
  }
  return sum;
}

std::size_t CpModel::parameter_bytes() const {
  ByteCountSink sink;
  serialize(sink);
  return sink.count();
}

void CpModel::serialize(SerialSink& sink) const {
  sink.write_u64(order());
  sink.write_u64(rank_);
  for (const std::size_t dim : dims_) sink.write_u64(dim);
  if (f32_) {
    // Widen the fp32 storage on the fly (exact by the adoption invariant);
    // the sink's quant mode decides how the matrix is re-encoded.
    for (std::size_t j = 0; j < order(); ++j) {
      linalg::Matrix factor(dims_[j], rank_);
      const std::vector<float>& narrow = f32_factors_[j];
      for (std::size_t k = 0; k < narrow.size(); ++k) {
        factor.data()[k] = static_cast<double>(narrow[k]);
      }
      factor.serialize(sink);
    }
    return;
  }
  for (const auto& factor : factors_) factor.serialize(sink);
}

CpModel CpModel::deserialize(BufferSource& source) {
  const auto order = source.read_count(2 * sizeof(std::uint64_t));
  const auto rank = source.read_u64();
  Dims dims(order);
  for (auto& dim : dims) dim = source.read_u64();
  // The factors (dims[j] x rank elements each) follow in the body; reject
  // corrupt shapes before the constructor allocates them. The budget is
  // consumed across factors so their SUM is bounded too, not just each one;
  // quantized archives back an element with as little as one byte.
  std::size_t budget = source.remaining() / source.min_matrix_bytes_per_element();
  for (const auto dim : dims) {
    CPR_CHECK_MSG(rank > 0 && dim <= budget / rank, "serialized buffer underrun");
    budget -= dim * rank;
  }
  CpModel model(dims, rank);
  for (std::size_t j = 0; j < order; ++j) {
    model.factors_[j] = linalg::Matrix::deserialize(source);
    CPR_CHECK(model.factors_[j].rows() == dims[j] && model.factors_[j].cols() == rank);
  }
  if (source.quantized_framing() && source.quant_mode() == QuantMode::F32) {
    // fp32 archive: serve straight from float factors (exact narrowing of
    // the just-widened fp32 blocks; falls back to fp64 storage if any block
    // had to be written wider).
    model.adopt_f32_storage();
  }
  return model;
}

}  // namespace cpr::tensor
