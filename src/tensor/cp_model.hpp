#pragma once
// Canonical-polyadic (CP) decomposition model (Section 4.1, Eq. 2).
//
// A rank-R CP model of an order-d tensor stores d factor matrices
// U_j in R^{I_j x R}; the modeled element is
//   t̂_i = sum_r prod_j U_j(i_j, r).
// Model size is linear in order and rank — the property Section 7.1.3
// attributes CPR's memory-efficiency to.

#include "linalg/matrix.hpp"
#include "tensor/dense_tensor.hpp"
#include "tensor/multi_index.hpp"
#include "util/rng.hpp"
#include "util/serialize.hpp"

namespace cpr::tensor {

class CpModel {
 public:
  CpModel() = default;

  /// Zero-initialized model with the given shape.
  CpModel(Dims dims, std::size_t rank);

  std::size_t order() const { return factors_.size(); }
  std::size_t rank() const { return rank_; }
  const Dims& dims() const { return dims_; }

  linalg::Matrix& factor(std::size_t j) { return factors_.at(j); }
  const linalg::Matrix& factor(std::size_t j) const { return factors_.at(j); }

  /// Reconstructs element t̂_i.
  double eval(const Index& idx) const;

  /// Reconstructs the full dense tensor (tests / small analyses only).
  DenseTensor reconstruct() const;

  /// Gaussian init: entries ~ N(0, scale). Standard for least-squares ALS.
  void init_random(Rng& rng, double scale = 1.0);

  /// Ones-based init: entries = 1 + N(0, jitter). For high-order tensors of
  /// (centered) log execution times this is far better conditioned than a
  /// zero-mean init: the Hadamard products of the unsolved modes start near
  /// 1 instead of near 0, so the first ALS sweep immediately captures each
  /// mode's additive-in-log main effect instead of solving a degenerate
  /// system dominated by the ridge term.
  void init_ones(Rng& rng, double jitter = 0.1);

  /// Strictly positive init: entries = magnitude * exp(N(0, jitter)).
  /// Used by the interior-point (AMN) path, which must stay in the positive
  /// orthant. `magnitude` is typically (geometric mean of data)^(1/d).
  void init_positive(Rng& rng, double magnitude, double jitter = 0.1);

  /// True if every factor entry is strictly positive.
  bool all_factors_positive() const;

  /// ||model||_F computed factorized via the Hadamard product of Gram
  /// matrices (never materializes the dense tensor).
  double frobenius_norm() const;

  /// Sum of squared factor entries (the regularization term of Eq. 3).
  double regularization_term() const;

  /// Bytes needed to persist the factor matrices.
  std::size_t parameter_bytes() const;

  void serialize(SerialSink& sink) const;
  static CpModel deserialize(BufferSource& source);

 private:
  Dims dims_;
  std::size_t rank_ = 0;
  std::vector<linalg::Matrix> factors_;
};

}  // namespace cpr::tensor
