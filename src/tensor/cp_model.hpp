#pragma once
// Canonical-polyadic (CP) decomposition model (Section 4.1, Eq. 2).
//
// A rank-R CP model of an order-d tensor stores d factor matrices
// U_j in R^{I_j x R}; the modeled element is
//   t̂_i = sum_r prod_j U_j(i_j, r).
// Model size is linear in order and rank — the property Section 7.1.3
// attributes CPR's memory-efficiency to.

#include "linalg/matrix.hpp"
#include "tensor/dense_tensor.hpp"
#include "tensor/multi_index.hpp"
#include "util/rng.hpp"
#include "util/serialize.hpp"

namespace cpr::tensor {

class CpModel {
 public:
  CpModel() = default;

  /// Zero-initialized model with the given shape.
  CpModel(Dims dims, std::size_t rank);

  std::size_t order() const { return dims_.size(); }
  std::size_t rank() const { return rank_; }
  const Dims& dims() const { return dims_; }

  linalg::Matrix& factor(std::size_t j) {
    CPR_CHECK_MSG(!f32_, "CpModel::factor on an fp32-storage model");
    return factors_.at(j);
  }
  const linalg::Matrix& factor(std::size_t j) const {
    CPR_CHECK_MSG(!f32_, "CpModel::factor on an fp32-storage model");
    return factors_.at(j);
  }

  /// Dequantize-free fp32 storage: narrows every factor entry to float and
  /// frees the fp64 copies, so predict touches half the cache lines with no
  /// widening pass. Only adopted when the narrowing is exact (every entry is
  /// float-representable — always true for values loaded from an fp32
  /// block), so serialize() round-trips bitwise; returns false and leaves
  /// the model untouched otherwise. eval() and the blocked kernel dispatch
  /// on f32_storage() with identical op order, keeping serial and blocked
  /// predictions bitwise equal.
  bool adopt_f32_storage();
  bool f32_storage() const { return f32_; }

  /// Row pointer into the fp32 copy of factor j (f32_storage() only).
  const float* f32_row_ptr(std::size_t j, std::size_t i) const {
    CPR_DCHECK(f32_ && j < f32_factors_.size());
    return f32_factors_[j].data() + i * rank_;
  }

  /// Reconstructs element t̂_i.
  double eval(const Index& idx) const;

  /// Reconstructs the full dense tensor (tests / small analyses only).
  DenseTensor reconstruct() const;

  /// Gaussian init: entries ~ N(0, scale). Standard for least-squares ALS.
  void init_random(Rng& rng, double scale = 1.0);

  /// Ones-based init: entries = 1 + N(0, jitter). For high-order tensors of
  /// (centered) log execution times this is far better conditioned than a
  /// zero-mean init: the Hadamard products of the unsolved modes start near
  /// 1 instead of near 0, so the first ALS sweep immediately captures each
  /// mode's additive-in-log main effect instead of solving a degenerate
  /// system dominated by the ridge term.
  void init_ones(Rng& rng, double jitter = 0.1);

  /// Strictly positive init: entries = magnitude * exp(N(0, jitter)).
  /// Used by the interior-point (AMN) path, which must stay in the positive
  /// orthant. `magnitude` is typically (geometric mean of data)^(1/d).
  void init_positive(Rng& rng, double magnitude, double jitter = 0.1);

  /// True if every factor entry is strictly positive.
  bool all_factors_positive() const;

  /// ||model||_F computed factorized via the Hadamard product of Gram
  /// matrices (never materializes the dense tensor).
  double frobenius_norm() const;

  /// Sum of squared factor entries (the regularization term of Eq. 3).
  double regularization_term() const;

  /// Bytes needed to persist the factor matrices.
  std::size_t parameter_bytes() const;

  void serialize(SerialSink& sink) const;
  static CpModel deserialize(BufferSource& source);

 private:
  Dims dims_;
  std::size_t rank_ = 0;
  std::vector<linalg::Matrix> factors_;
  /// fp32 storage (adopt_f32_storage): one row-major dims_[j] x rank_ buffer
  /// per mode; factors_ is empty while f32_ is set.
  std::vector<std::vector<float>> f32_factors_;
  bool f32_ = false;
};

}  // namespace cpr::tensor
