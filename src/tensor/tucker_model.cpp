#include "tensor/tucker_model.hpp"

namespace cpr::tensor {

TuckerModel::TuckerModel(Dims dims, Dims core_dims)
    : dims_(std::move(dims)), core_(core_dims) {
  CPR_CHECK_MSG(!dims_.empty(), "Tucker model needs at least one mode");
  CPR_CHECK_MSG(core_dims.size() == dims_.size(), "core order must match tensor order");
  factors_.reserve(dims_.size());
  for (std::size_t j = 0; j < dims_.size(); ++j) {
    CPR_CHECK_MSG(core_dims[j] >= 1 && core_dims[j] <= dims_[j],
                  "mode-" << j << " rank must be in [1, I_j]");
    factors_.emplace_back(dims_[j], core_dims[j], 0.0);
  }
}

double TuckerModel::eval(const Index& idx) const {
  CPR_DCHECK(idx.size() == order());
  // Contract the core against each mode's selected factor row, one mode at
  // a time (cost sum over modes of partial products, ~ prod R_j total).
  std::vector<double> current(core_.data(), core_.data() + core_.size());
  std::vector<double> next;
  Dims remaining = core_.dims();
  for (std::size_t j = 0; j < order(); ++j) {
    const std::size_t r_j = remaining[0];
    const std::size_t tail = current.size() / r_j;
    const double* row = factors_[j].row_ptr(idx[j]);
    next.assign(tail, 0.0);
    for (std::size_t r = 0; r < r_j; ++r) {
      const double weight = row[r];
      const double* block = current.data() + r * tail;
      for (std::size_t k = 0; k < tail; ++k) next[k] += weight * block[k];
    }
    current.swap(next);
    remaining.erase(remaining.begin());
  }
  CPR_DCHECK(current.size() == 1);
  return current[0];
}

void TuckerModel::mode_weights(const Index& idx, std::size_t mode, double* w) const {
  CPR_DCHECK(mode < order());
  // w_r = sum over core indices with mode-index r of g * prod_{j != mode} U_j rows.
  const auto& core_dims = core_.dims();
  const std::size_t r_mode = core_dims[mode];
  for (std::size_t r = 0; r < r_mode; ++r) w[r] = 0.0;
  Index core_idx(order(), 0);
  std::size_t flat = 0;
  do {
    double product = core_[flat++];
    for (std::size_t j = 0; j < order(); ++j) {
      if (j == mode) continue;
      product *= factors_[j](idx[j], core_idx[j]);
    }
    w[core_idx[mode]] += product;
  } while (next_index(core_idx, core_dims));
}

void TuckerModel::design_vector(const Index& idx, double* z) const {
  const auto& core_dims = core_.dims();
  Index core_idx(order(), 0);
  std::size_t flat = 0;
  do {
    double product = 1.0;
    for (std::size_t j = 0; j < order(); ++j) {
      product *= factors_[j](idx[j], core_idx[j]);
    }
    z[flat++] = product;
  } while (next_index(core_idx, core_dims));
}

void TuckerModel::init_ones(Rng& rng, double jitter) {
  for (auto& factor : factors_) {
    for (std::size_t i = 0; i < factor.rows(); ++i) {
      for (std::size_t r = 0; r < factor.cols(); ++r) {
        factor(i, r) = 1.0 + rng.normal(0.0, jitter);
      }
    }
  }
  // Concentrate the core's mass on its (0, ..., 0) entry so the initial
  // reconstruction is near 1 with mild coupling noise elsewhere.
  for (std::size_t k = 0; k < core_.size(); ++k) {
    core_[k] = rng.normal(0.0, jitter * 0.1);
  }
  core_[0] = 1.0;
}

std::size_t TuckerModel::parameter_count() const {
  std::size_t count = core_.size();
  for (const auto& factor : factors_) count += factor.size();
  return count;
}

std::size_t TuckerModel::parameter_bytes() const {
  ByteCountSink sink;
  serialize(sink);
  return sink.count();
}

void TuckerModel::serialize(SerialSink& sink) const {
  sink.write_u64(order());
  for (const auto d : dims_) sink.write_u64(d);
  for (const auto r : core_.dims()) sink.write_u64(r);
  sink.write_doubles(std::vector<double>(core_.data(), core_.data() + core_.size()));
  for (const auto& factor : factors_) factor.serialize(sink);
}

TuckerModel TuckerModel::deserialize(BufferSource& source) {
  const auto order = source.read_count(2 * sizeof(std::uint64_t));
  Dims dims(order), core_dims(order);
  for (auto& d : dims) d = source.read_u64();
  for (auto& r : core_dims) r = source.read_u64();
  // The core (prod core_dims doubles) and factors (dims[j] x core_dims[j])
  // follow in the body; reject corrupt shapes before allocating them. The
  // factor budget is consumed across modes so their SUM is bounded too
  // (factors may be quantized down to one byte per element; the core is
  // always fp64 but shares the same conservative bound).
  std::size_t core_budget = source.remaining() / sizeof(double);
  std::size_t factor_budget =
      source.remaining() / source.min_matrix_bytes_per_element();
  for (std::size_t j = 0; j < order; ++j) {
    CPR_CHECK_MSG(core_dims[j] > 0 && core_dims[j] <= core_budget,
                  "serialized buffer underrun");
    core_budget /= core_dims[j];
    CPR_CHECK_MSG(dims[j] <= factor_budget / core_dims[j],
                  "serialized buffer underrun");
    factor_budget -= dims[j] * core_dims[j];
  }
  TuckerModel model(dims, core_dims);
  const auto core_values = source.read_doubles();
  CPR_CHECK(core_values.size() == model.core_.size());
  std::copy(core_values.begin(), core_values.end(), model.core_.data());
  for (std::size_t j = 0; j < order; ++j) {
    model.factors_[j] = linalg::Matrix::deserialize(source);
  }
  return model;
}

}  // namespace cpr::tensor
