#include "tensor/mttkrp.hpp"

#include "obs/profile.hpp"
#include "tensor/mttkrp_blocked.hpp"
#include "util/kernel_mode.hpp"

#ifdef CPR_HAVE_OPENMP
#include <omp.h>
#endif

namespace cpr::tensor {

linalg::Matrix khatri_rao(const linalg::Matrix& a, const linalg::Matrix& b) {
  CPR_CHECK_MSG(a.cols() == b.cols(), "khatri_rao: rank mismatch");
  linalg::Matrix out(a.rows() * b.rows(), a.cols());
  for (std::size_t i = 0; i < a.rows(); ++i) {
    for (std::size_t k = 0; k < b.rows(); ++k) {
      double* row = out.row_ptr(i * b.rows() + k);
      const double* ai = a.row_ptr(i);
      const double* bk = b.row_ptr(k);
      for (std::size_t r = 0; r < a.cols(); ++r) row[r] = ai[r] * bk[r];
    }
  }
  return out;
}

void hadamard_row(const CpModel& model, const SparseTensor& t, std::size_t entry,
                  std::size_t skip_mode, double* z) {
  const std::size_t rank = model.rank();
  for (std::size_t r = 0; r < rank; ++r) z[r] = 1.0;
  for (std::size_t j = 0; j < model.order(); ++j) {
    if (j == skip_mode) continue;
    const double* row = model.factor(j).row_ptr(t.index(entry, j));
    for (std::size_t r = 0; r < rank; ++r) z[r] *= row[r];
  }
}

namespace {

/// Shared shape checks + zeroing for both MTTKRP entry points.
std::size_t prepare_mttkrp_output(const CpModel& model, std::size_t mode,
                                  linalg::Matrix& out) {
  CPR_CHECK(mode < model.order());
  CPR_CHECK(out.rows() == model.dims()[mode] && out.cols() == model.rank());
  out.fill(0.0);
  return model.rank();
}

/// Entry-order accumulation of entries [begin, end) into a zeroed output;
/// the single kernel shared by the serial path and each thread's local
/// accumulation in the parallel path.
void accumulate_entries(const SparseTensor& t, const CpModel& model,
                        std::size_t mode, std::size_t rank, std::size_t begin,
                        std::size_t end, linalg::Matrix& out) {
  std::vector<double> z(rank);
  for (std::size_t e = begin; e < end; ++e) {
    hadamard_row(model, t, e, mode, z.data());
    double* row = out.row_ptr(t.index(e, mode));
    const double value = t.value(e);
    for (std::size_t r = 0; r < rank; ++r) row[r] += value * z[r];
  }
}

}  // namespace

void sparse_mttkrp_serial(const SparseTensor& t, const CpModel& model,
                          std::size_t mode, linalg::Matrix& out) {
  const std::size_t rank = prepare_mttkrp_output(model, mode, out);
  accumulate_entries(t, model, mode, rank, 0, t.nnz(), out);
}

void sparse_mttkrp(const SparseTensor& t, const CpModel& model, std::size_t mode,
                   linalg::Matrix& out) {
  CPR_PROFILE_SCOPE("mttkrp");
  if (kernel_mode() == KernelMode::Blocked) {
    sparse_mttkrp_blocked(t, model, mode, out);
    return;
  }
  const std::size_t rank = prepare_mttkrp_output(model, mode, out);
#ifdef CPR_HAVE_OPENMP
  if (omp_get_max_threads() > 1) {
#pragma omp parallel
    {
      const auto tid = static_cast<std::size_t>(omp_get_thread_num());
      const auto n_threads = static_cast<std::size_t>(omp_get_num_threads());
      linalg::Matrix local(out.rows(), out.cols(), 0.0);
      accumulate_entries(t, model, mode, rank, t.nnz() * tid / n_threads,
                         t.nnz() * (tid + 1) / n_threads, local);
#pragma omp critical(cpr_mttkrp_reduce)
      out += local;
    }
    return;
  }
#endif
  accumulate_entries(t, model, mode, rank, 0, t.nnz(), out);
}

double sq_residual_observed(const SparseTensor& t, const CpModel& model) {
  double total = 0.0;
#ifdef CPR_HAVE_OPENMP
#pragma omp parallel for schedule(static) reduction(+ : total)
#endif
  for (std::size_t e = 0; e < t.nnz(); ++e) {
    const double diff = t.value(e) - model.eval(t.entry_index(e));
    total += diff * diff;
  }
  return total;
}

}  // namespace cpr::tensor
