#include "completion/tucker_als.hpp"

#include <cmath>

#include "linalg/cholesky.hpp"
#include "util/log.hpp"

namespace cpr::completion {

double tucker_objective(const tensor::SparseTensor& t, const tensor::TuckerModel& model,
                        double regularization) {
  double sq_residual = 0.0;
#ifdef CPR_HAVE_OPENMP
#pragma omp parallel for schedule(static) reduction(+ : sq_residual)
#endif
  for (std::size_t e = 0; e < t.nnz(); ++e) {
    const double diff = t.value(e) - model.eval(t.entry_index(e));
    sq_residual += diff * diff;
  }
  double ridge = 0.0;
  for (std::size_t j = 0; j < model.order(); ++j) {
    const double norm = model.factor(j).frobenius_norm();
    ridge += norm * norm;
  }
  const double core_norm = model.core().frobenius_norm();
  ridge += core_norm * core_norm;
  return sq_residual / std::max<std::size_t>(t.nnz(), 1) + regularization * ridge;
}

CompletionReport tucker_complete(const tensor::SparseTensor& t,
                                 tensor::TuckerModel& model,
                                 const CompletionOptions& options) {
  CPR_CHECK(t.dims() == model.dims());
  CPR_CHECK_MSG(t.nnz() > 0, "cannot complete a tensor with no observations");
  const std::size_t core_size = model.core().size();
  CPR_CHECK_MSG(core_size <= 4096,
                "core too large for the dense core update (prod R = " << core_size << ")");
  const tensor::ModeSlices slices(t);

  CompletionReport report;
  double prev_objective = tucker_objective(t, model, options.regularization);

  for (int sweep = 0; sweep < options.max_sweeps; ++sweep) {
    // Factor-row updates (per mode, rows independent).
    for (std::size_t mode = 0; mode < model.order(); ++mode) {
      auto& factor = model.factor(mode);
      const std::size_t rank = factor.cols();
      const std::size_t n_rows = factor.rows();
#ifdef CPR_HAVE_OPENMP
#pragma omp parallel for schedule(dynamic, 4)
#endif
      for (std::size_t i = 0; i < n_rows; ++i) {
        const auto& entries = slices.entries(mode, i);
        if (entries.empty()) continue;
        const double inv_count = 1.0 / static_cast<double>(entries.size());
        linalg::Matrix gram(rank, rank, 0.0);
        linalg::Vector rhs(rank, 0.0);
        std::vector<double> w(rank);
        for (const std::size_t e : entries) {
          model.mode_weights(t.entry_index(e), mode, w.data());
          const double value = t.value(e);
          for (std::size_t r = 0; r < rank; ++r) {
            rhs[r] += value * w[r];
            for (std::size_t s = r; s < rank; ++s) gram(r, s) += w[r] * w[s];
          }
        }
        for (std::size_t r = 0; r < rank; ++r) {
          rhs[r] *= inv_count;
          for (std::size_t s = r; s < rank; ++s) {
            gram(r, s) *= inv_count;
            gram(s, r) = gram(r, s);
          }
          gram(r, r) += options.regularization;
        }
        const auto solution = linalg::solve_spd(std::move(gram), std::move(rhs));
        if (solution.has_value()) factor.set_row(i, *solution);
      }
    }

    // Core update: one ridge least-squares over all observations.
    {
      linalg::Matrix gram(core_size, core_size, 0.0);
      linalg::Vector rhs(core_size, 0.0);
      std::vector<double> z(core_size);
      for (std::size_t e = 0; e < t.nnz(); ++e) {
        model.design_vector(t.entry_index(e), z.data());
        const double value = t.value(e);
        for (std::size_t r = 0; r < core_size; ++r) {
          rhs[r] += value * z[r];
          for (std::size_t s = r; s < core_size; ++s) gram(r, s) += z[r] * z[s];
        }
      }
      const double inv_count = 1.0 / static_cast<double>(t.nnz());
      for (std::size_t r = 0; r < core_size; ++r) {
        rhs[r] *= inv_count;
        for (std::size_t s = r; s < core_size; ++s) {
          gram(r, s) *= inv_count;
          gram(s, r) = gram(r, s);
        }
        gram(r, r) += options.regularization;
      }
      const auto solution = linalg::solve_spd(std::move(gram), std::move(rhs));
      if (solution.has_value()) {
        std::copy(solution->begin(), solution->end(), model.core().data());
      }
    }

    const double objective = tucker_objective(t, model, options.regularization);
    report.objective_history.push_back(objective);
    report.sweeps = sweep + 1;
    CPR_LOG_DEBUG("Tucker sweep " << sweep << " objective " << objective);
    const double denom = std::max(std::abs(prev_objective), 1e-300);
    if (std::abs(prev_objective - objective) / denom < options.tol) {
      report.converged = true;
      break;
    }
    prev_objective = objective;
  }
  return report;
}

}  // namespace cpr::completion
