#pragma once
// Cyclic coordinate descent for tensor completion (Section 4.2.1).
//
// CCD optimizes one factor-matrix element u_{i,r} at a time, which reduces
// the per-sweep arithmetic of ALS by a factor of R at the cost of slower
// convergence (the paper notes both properties). Residuals are maintained
// incrementally so each scalar update costs O(|Ω_i|).

#include "completion/options.hpp"
#include "tensor/cp_model.hpp"
#include "tensor/sparse_tensor.hpp"

namespace cpr::completion {

CompletionReport ccd_complete(const tensor::SparseTensor& t, tensor::CpModel& model,
                              const CompletionOptions& options);

}  // namespace cpr::completion
