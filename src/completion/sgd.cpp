#include "completion/sgd.hpp"

#include <atomic>
#include <cmath>
#include <numeric>
#include <type_traits>

#include "completion/als.hpp"
#include "util/log.hpp"
#include "util/rng.hpp"

namespace cpr::completion {

namespace {
// Product over modes k != j of rows[k][r]; fallback for when the cached
// full product cannot be divided by a zero row entry.
double hadamard_excluding(const std::vector<std::vector<double>>& rows, std::size_t j,
                          std::size_t r) {
  double product = 1.0;
  for (std::size_t k = 0; k < rows.size(); ++k) {
    if (k != j) product *= rows[k][r];
  }
  return product;
}
}  // namespace

CompletionReport sgd_complete(const tensor::SparseTensor& t, tensor::CpModel& model,
                              const SgdOptions& options) {
  CPR_CHECK(t.dims() == model.dims());
  CPR_CHECK_MSG(t.nnz() > 0, "cannot complete a tensor with no observations");
  const std::size_t rank = model.rank();
  const std::size_t order = model.order();

  Rng rng(options.seed);
  std::vector<std::size_t> schedule(t.nnz());
  std::iota(schedule.begin(), schedule.end(), 0);

  CompletionReport report;
  double prev_objective = completion_objective(t, model, options.regularization);

  // One gradient step for the sampled entry: cache the touched rows and the
  // full Hadamard product, then update every mode's row. Under Hogwild the
  // factor elements are accessed through relaxed atomic_refs so concurrent
  // steps are defined behavior (no tearing); the serial path keeps plain
  // (register-allocatable, vectorizable) loads and stores.
  const auto sgd_step = [&]<bool Hogwild>(std::bool_constant<Hogwild>, std::size_t e,
                                          double lr,
                                          std::vector<std::vector<double>>& rows,
                                          std::vector<double>& full) {
    for (std::size_t r = 0; r < rank; ++r) full[r] = 1.0;
    for (std::size_t j = 0; j < order; ++j) {
      double* row = model.factor(j).row_ptr(t.index(e, j));
      for (std::size_t r = 0; r < rank; ++r) {
        if constexpr (Hogwild) {
          rows[j][r] = std::atomic_ref(row[r]).load(std::memory_order_relaxed);
        } else {
          rows[j][r] = row[r];
        }
        full[r] *= rows[j][r];
      }
    }
    double prediction = 0.0;
    for (std::size_t r = 0; r < rank; ++r) prediction += full[r];
    const double error = prediction - t.value(e);
    if (!std::isfinite(error)) return;
    // Row gradients: d/dU_j(i_j,r) = error * prod_{k != j} U_k(i_k,r)
    // plus weight decay from the ridge term.
    for (std::size_t j = 0; j < order; ++j) {
      double* row = model.factor(j).row_ptr(t.index(e, j));
      for (std::size_t r = 0; r < rank; ++r) {
        const double others =
            rows[j][r] != 0.0 ? full[r] / rows[j][r] : hadamard_excluding(rows, j, r);
        const double grad = error * others + options.regularization * rows[j][r];
        if constexpr (Hogwild) {
          std::atomic_ref element(row[r]);
          element.store(element.load(std::memory_order_relaxed) - lr * grad,
                        std::memory_order_relaxed);
        } else {
          row[r] -= lr * grad;
        }
      }
    }
  };

  // Scratch: per-mode partial products so each row gradient is O(R).
  std::vector<std::vector<double>> rows(order, std::vector<double>(rank));
  std::vector<double> full(rank);

  for (int epoch = 0; epoch < options.max_sweeps; ++epoch) {
    const double lr = options.learning_rate / (1.0 + options.decay * epoch);
    rng.shuffle(schedule);
#ifdef CPR_HAVE_OPENMP
    if (options.hogwild) {
      // Hogwild-style epoch: sparse observations rarely share factor rows,
      // so lock-free concurrent steps converge to the same objective even
      // though individual updates may race.
#pragma omp parallel
      {
        std::vector<std::vector<double>> local_rows(order, std::vector<double>(rank));
        std::vector<double> local_full(rank);
#pragma omp for schedule(static)
        for (std::size_t s = 0; s < schedule.size(); ++s) {
          sgd_step(std::bool_constant<true>{}, schedule[s], lr, local_rows, local_full);
        }
      }
    } else
#endif
    {
      for (const std::size_t e : schedule) {
        sgd_step(std::bool_constant<false>{}, e, lr, rows, full);
      }
    }

    const double objective = completion_objective(t, model, options.regularization);
    report.objective_history.push_back(objective);
    report.sweeps = epoch + 1;
    CPR_LOG_DEBUG("SGD epoch " << epoch << " objective " << objective);
    const double denom = std::max(std::abs(prev_objective), 1e-300);
    if (std::abs(prev_objective - objective) / denom < options.tol) {
      report.converged = true;
      break;
    }
    prev_objective = objective;
  }
  return report;
}

}  // namespace cpr::completion
