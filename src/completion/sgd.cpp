#include "completion/sgd.hpp"

#include <cmath>
#include <numeric>

#include "completion/als.hpp"
#include "util/log.hpp"
#include "util/rng.hpp"

namespace cpr::completion {

namespace {
// Product over modes k != j of rows[k][r]; fallback for when the cached
// full product cannot be divided by a zero row entry.
double hadamard_excluding(const std::vector<std::vector<double>>& rows, std::size_t j,
                          std::size_t r) {
  double product = 1.0;
  for (std::size_t k = 0; k < rows.size(); ++k) {
    if (k != j) product *= rows[k][r];
  }
  return product;
}
}  // namespace

CompletionReport sgd_complete(const tensor::SparseTensor& t, tensor::CpModel& model,
                              const SgdOptions& options) {
  CPR_CHECK(t.dims() == model.dims());
  CPR_CHECK_MSG(t.nnz() > 0, "cannot complete a tensor with no observations");
  const std::size_t rank = model.rank();
  const std::size_t order = model.order();

  Rng rng(options.seed);
  std::vector<std::size_t> schedule(t.nnz());
  std::iota(schedule.begin(), schedule.end(), 0);

  CompletionReport report;
  double prev_objective = completion_objective(t, model, options.regularization);

  // Scratch: per-mode partial products so each row gradient is O(R).
  std::vector<std::vector<double>> rows(order, std::vector<double>(rank));
  std::vector<double> full(rank);

  for (int epoch = 0; epoch < options.max_sweeps; ++epoch) {
    const double lr = options.learning_rate / (1.0 + options.decay * epoch);
    rng.shuffle(schedule);
    for (const std::size_t e : schedule) {
      // Cache all touched rows and the full Hadamard product.
      for (std::size_t r = 0; r < rank; ++r) full[r] = 1.0;
      for (std::size_t j = 0; j < order; ++j) {
        const double* row = model.factor(j).row_ptr(t.index(e, j));
        for (std::size_t r = 0; r < rank; ++r) {
          rows[j][r] = row[r];
          full[r] *= row[r];
        }
      }
      double prediction = 0.0;
      for (std::size_t r = 0; r < rank; ++r) prediction += full[r];
      const double error = prediction - t.value(e);
      if (!std::isfinite(error)) continue;
      // Row gradients: d/dU_j(i_j,r) = error * prod_{k != j} U_k(i_k,r)
      // plus weight decay from the ridge term.
      for (std::size_t j = 0; j < order; ++j) {
        double* row = model.factor(j).row_ptr(t.index(e, j));
        for (std::size_t r = 0; r < rank; ++r) {
          const double others =
              rows[j][r] != 0.0 ? full[r] / rows[j][r] : hadamard_excluding(rows, j, r);
          const double grad = error * others + options.regularization * rows[j][r];
          row[r] -= lr * grad;
        }
      }
    }

    const double objective = completion_objective(t, model, options.regularization);
    report.objective_history.push_back(objective);
    report.sweeps = epoch + 1;
    CPR_LOG_DEBUG("SGD epoch " << epoch << " objective " << objective);
    const double denom = std::max(std::abs(prev_objective), 1e-300);
    if (std::abs(prev_objective - objective) / denom < options.tol) {
      report.converged = true;
      break;
    }
    prev_objective = objective;
  }
  return report;
}

}  // namespace cpr::completion
