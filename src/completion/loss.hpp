#pragma once
// Element-wise loss functions for generalized tensor completion (Section
// 4.2.2). Exposed for tests and for composing custom optimizers; the shipped
// completers hard-wire the two losses the paper uses (least squares on
// log-transformed data for interpolation, MLogQ2 for extrapolation).

#include <cmath>
#include <limits>

namespace cpr::completion {

/// phi(t, m) = (t - m)^2 with derivatives in the model output m.
struct LeastSquaresLoss {
  static double value(double t, double m) {
    const double d = m - t;
    return d * d;
  }
  static double d1(double t, double m) { return 2.0 * (m - t); }
  static double d2(double /*t*/, double /*m*/) { return 2.0; }
  static constexpr bool requires_positive_model = false;
};

/// phi(t, m) = (log m - log t)^2 with derivatives in m (m, t > 0).
struct LogQuadraticLoss {
  static double value(double t, double m) {
    if (!(m > 0.0) || !(t > 0.0)) return std::numeric_limits<double>::infinity();
    const double d = std::log(m / t);
    return d * d;
  }
  static double d1(double t, double m) { return 2.0 * std::log(m / t) / m; }
  static double d2(double t, double m) {
    return 2.0 * (1.0 - std::log(m / t)) / (m * m);
  }
  static constexpr bool requires_positive_model = true;
};

}  // namespace cpr::completion
