#pragma once
// Shared option/report types for tensor-completion optimizers (Section 4.2).

#include <cstdint>
#include <vector>

namespace cpr::completion {

struct CompletionOptions {
  double regularization = 1e-5;  ///< lambda of Eq. 3
  int max_sweeps = 100;          ///< paper: 100 ALS sweeps max
  double tol = 1e-6;             ///< relative objective-change stopping threshold
  std::uint64_t seed = 42;       ///< factor initialization seed
  bool rebalance = true;         ///< per-component column-norm rebalancing per sweep
};

/// Per-run convergence record (objective after each sweep).
struct CompletionReport {
  std::vector<double> objective_history;
  int sweeps = 0;
  bool converged = false;

  double final_objective() const {
    return objective_history.empty() ? 0.0 : objective_history.back();
  }
};

}  // namespace cpr::completion
