#pragma once
// Alternating minimization via Newton's method (AMN) with log-barrier
// continuation — the generalized tensor-completion path of Section 4.2.2.
//
// Minimizes Eq. 3 with the scale-independent loss
//   phi(t, t̂) = (log t - log t̂)^2            (targets MLogQ2, Section 2.2)
// subject to strictly positive factor matrices, enforced by element-wise log
// barriers -eta * sum log(u) added to the objective. Following interior-point
// practice (and the paper's schedule), eta starts at 10 and is decreased
// geometrically by 8x until it reaches eta_min; each row subproblem is
// solved with at most `max_newton_iters` damped Newton steps.
//
// The resulting positive factors feed the extrapolation model (Section 5.3):
// their rank-1 SVDs are positive by Perron–Frobenius.

#include "completion/options.hpp"
#include "tensor/cp_model.hpp"
#include "tensor/sparse_tensor.hpp"

namespace cpr::completion {

struct AmnOptions : CompletionOptions {
  double eta_init = 10.0;    ///< initial barrier parameter (paper: 10)
  double eta_factor = 8.0;   ///< geometric decrease factor (paper: 8)
  double eta_min = 1e-11;    ///< continuation stops once eta <= eta_min (paper: 1e-11)
  int max_newton_iters = 40; ///< Newton iterations per row subproblem (paper: 40)
  double newton_tol = 1e-9;  ///< gradient-norm tolerance for a row subproblem
  int sweeps_per_eta = 6;    ///< alternating sweeps per barrier value
};

/// Fits a strictly positive CP model to the *positive* observed values of `t`
/// under the MLogQ2 loss. `model` must be initialized strictly positive
/// (e.g. CpModel::init_positive). Throws CheckError if any observation or
/// initial factor entry is non-positive.
CompletionReport amn_complete(const tensor::SparseTensor& t, tensor::CpModel& model,
                              const AmnOptions& options);

/// Mean MLogQ2 over observed entries plus the regularization term —
/// the objective AMN drives down (barrier excluded).
double mlogq2_objective(const tensor::SparseTensor& t, const tensor::CpModel& model,
                        double regularization);

}  // namespace cpr::completion
