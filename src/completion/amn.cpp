#include "completion/amn.hpp"

#include <cmath>

#include "linalg/lu.hpp"
#include "tensor/mttkrp.hpp"
#include "util/log.hpp"

namespace cpr::completion {

double mlogq2_objective(const tensor::SparseTensor& t, const tensor::CpModel& model,
                        double regularization) {
  double total = 0.0;
#ifdef CPR_HAVE_OPENMP
#pragma omp parallel for schedule(static) reduction(+ : total)
#endif
  for (std::size_t e = 0; e < t.nnz(); ++e) {
    const double prediction = model.eval(t.entry_index(e));
    if (prediction <= 0.0) {
      total += 1e12;  // outside the positive orthant: effectively infinite
      continue;
    }
    const double log_q = std::log(prediction / t.value(e));
    total += log_q * log_q;
  }
  const double n = std::max<std::size_t>(t.nnz(), 1);
  return total / n + regularization * model.regularization_term();
}

namespace {

/// Full objective for one row u of one factor, including the barrier:
///   (1/|Ω_i|) Σ_e (log(z_e·u) - log t_e)^2 + λ||u||² - η Σ_r log u_r.
/// Returns +inf when u leaves the positive orthant or z·u <= 0.
double row_objective(const std::vector<std::vector<double>>& zs,
                     const std::vector<double>& log_ts, const linalg::Vector& u,
                     double lambda, double eta) {
  for (const double ur : u) {
    if (!(ur > 0.0)) return std::numeric_limits<double>::infinity();
  }
  const double inv_count = 1.0 / static_cast<double>(zs.size());
  double data_term = 0.0;
  for (std::size_t e = 0; e < zs.size(); ++e) {
    double m = 0.0;
    for (std::size_t r = 0; r < u.size(); ++r) m += zs[e][r] * u[r];
    if (!(m > 0.0)) return std::numeric_limits<double>::infinity();
    const double res = std::log(m) - log_ts[e];
    data_term += res * res;
  }
  double value = data_term * inv_count;
  for (const double ur : u) {
    value += lambda * ur * ur - eta * std::log(ur);
  }
  return value;
}

}  // namespace

CompletionReport amn_complete(const tensor::SparseTensor& t, tensor::CpModel& model,
                              const AmnOptions& options) {
  CPR_CHECK(t.dims() == model.dims());
  CPR_CHECK_MSG(t.nnz() > 0, "cannot complete a tensor with no observations");
  CPR_CHECK_MSG(model.all_factors_positive(),
                "AMN requires a strictly positive initial model (use init_positive)");
  for (std::size_t e = 0; e < t.nnz(); ++e) {
    CPR_CHECK_MSG(t.value(e) > 0.0, "MLogQ2 loss requires positive observations");
  }

  const std::size_t rank = model.rank();
  const tensor::ModeSlices slices(t);

  // Pre-compute log of observations once.
  std::vector<double> log_values(t.nnz());
  for (std::size_t e = 0; e < t.nnz(); ++e) log_values[e] = std::log(t.value(e));

  CompletionReport report;
  double prev_objective = mlogq2_objective(t, model, options.regularization);
  int total_sweeps = 0;

  // One "sweep" = a full pass of row-wise Newton solves over every mode.
  const auto sweep_all_modes = [&](double eta) {
    for (std::size_t mode = 0; mode < model.order(); ++mode) {
      auto& factor = model.factor(mode);
      const std::size_t n_rows = factor.rows();
#ifdef CPR_HAVE_OPENMP
#pragma omp parallel for schedule(dynamic, 2)
#endif
      for (std::size_t i = 0; i < n_rows; ++i) {
        const auto& entries = slices.entries(mode, i);
        if (entries.empty()) continue;
        const double inv_count = 1.0 / static_cast<double>(entries.size());

        // Cache the Hadamard rows z_e for this slice (fixed during the row solve).
        std::vector<std::vector<double>> zs(entries.size(), std::vector<double>(rank));
        std::vector<double> log_ts(entries.size());
        for (std::size_t k = 0; k < entries.size(); ++k) {
          tensor::hadamard_row(model, t, entries[k], mode, zs[k].data());
          log_ts[k] = log_values[entries[k]];
        }

        linalg::Vector u = factor.row(i);
        double current = row_objective(zs, log_ts, u, options.regularization, eta);

        for (int iter = 0; iter < options.max_newton_iters; ++iter) {
          // Gradient and Hessian of the barrier-augmented row objective
          // (Equation 4 ingredients).
          linalg::Vector grad(rank, 0.0);
          linalg::Matrix hess(rank, rank, 0.0);
          for (std::size_t k = 0; k < entries.size(); ++k) {
            const auto& z = zs[k];
            double m = 0.0;
            for (std::size_t r = 0; r < rank; ++r) m += z[r] * u[r];
            const double res = std::log(m) - log_ts[k];
            const double inv_m = 1.0 / m;
            for (std::size_t r = 0; r < rank; ++r) {
              grad[r] += 2.0 * res * z[r] * inv_m * inv_count;
              const double coeff = 2.0 * (1.0 - res) * inv_m * inv_m * inv_count;
              for (std::size_t s = r; s < rank; ++s) {
                hess(r, s) += coeff * z[r] * z[s];
              }
            }
          }
          double grad_norm_sq = 0.0;
          for (std::size_t r = 0; r < rank; ++r) {
            grad[r] += 2.0 * options.regularization * u[r] - eta / u[r];
            hess(r, r) += 2.0 * options.regularization + eta / (u[r] * u[r]);
            grad_norm_sq += grad[r] * grad[r];
            for (std::size_t s = 0; s < r; ++s) hess(r, s) = hess(s, r);
          }
          if (std::sqrt(grad_norm_sq) < options.newton_tol) break;

          // Newton direction with Levenberg fallback: if the (possibly
          // indefinite) Hessian solve fails, damp the diagonal and retry.
          linalg::Vector step;
          double damping = 0.0;
          for (int attempt = 0; attempt < 5; ++attempt) {
            linalg::Matrix damped = hess;
            if (damping > 0.0) {
              for (std::size_t r = 0; r < rank; ++r) damped(r, r) += damping;
            }
            auto solved = linalg::solve_lu(std::move(damped), grad);
            if (solved.has_value()) {
              // Require a descent direction: grad^T step > 0 (we move -step).
              double descent = 0.0;
              for (std::size_t r = 0; r < rank; ++r) descent += grad[r] * (*solved)[r];
              if (descent > 0.0) {
                step = std::move(*solved);
                break;
              }
            }
            damping = damping == 0.0 ? 1e-4 : damping * 100.0;
          }
          if (step.empty()) break;  // no usable direction; keep current row

          // Fraction-to-the-boundary rule plus backtracking line search.
          double alpha = 1.0;
          for (std::size_t r = 0; r < rank; ++r) {
            if (step[r] > 0.0) {
              alpha = std::min(alpha, 0.95 * u[r] / step[r]);
            }
          }
          bool improved = false;
          for (int ls = 0; ls < 30 && alpha > 1e-14; ++ls) {
            linalg::Vector candidate = u;
            for (std::size_t r = 0; r < rank; ++r) candidate[r] -= alpha * step[r];
            const double value =
                row_objective(zs, log_ts, candidate, options.regularization, eta);
            if (value < current) {
              u = std::move(candidate);
              current = value;
              improved = true;
              break;
            }
            alpha *= 0.5;
          }
          if (!improved) break;
        }
        factor.set_row(i, u);
      }
    }
  };

  // Interior-point continuation: for each barrier value, sweep the
  // alternating row solves until the objective stalls (or the per-eta sweep
  // cap is hit), then tighten the barrier geometrically.
  for (double eta = options.eta_init; eta > options.eta_min; eta /= options.eta_factor) {
    if (total_sweeps >= options.max_sweeps) break;
    double eta_prev = mlogq2_objective(t, model, options.regularization);
    for (int inner = 0; inner < options.sweeps_per_eta; ++inner) {
      if (total_sweeps >= options.max_sweeps) break;
      ++total_sweeps;
      sweep_all_modes(eta);
      const double objective = mlogq2_objective(t, model, options.regularization);
      report.objective_history.push_back(objective);
      report.sweeps = total_sweeps;
      CPR_LOG_DEBUG("AMN eta " << eta << " sweep " << inner << " objective " << objective);
      const double denom = std::max(std::abs(eta_prev), 1e-300);
      if (std::abs(eta_prev - objective) / denom < options.tol) break;
      eta_prev = objective;
    }
    const double objective = report.objective_history.empty()
                                 ? prev_objective
                                 : report.objective_history.back();
    const double denom = std::max(std::abs(prev_objective), 1e-300);
    if (eta <= options.regularization &&
        std::abs(prev_objective - objective) / denom < options.tol) {
      report.converged = true;
      break;
    }
    prev_objective = objective;
  }
  return report;
}

}  // namespace cpr::completion
