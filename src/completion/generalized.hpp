#pragma once
// Generalized tensor completion (Section 4.2.2 / Hong-Kolda-Duersch):
// alternating row-wise Newton minimization of
//   sum_Omega phi(t_i, t̂_i) + lambda ||factors||^2  [+ log barriers]
// for any element-wise loss phi supplied as a policy type with
//   value(t, m), d1(t, m), d2(t, m)  (derivatives in the model output m)
// and a `requires_positive_model` flag that turns on the interior-point
// barrier machinery (fraction-to-the-boundary + geometric eta schedule).
//
// The shipped AmnCompleter (amn.cpp) is the hand-tuned LogQuadratic
// instantiation; this header-only template generalizes it to other convex
// losses — see HuberLogLoss below for a robust variant evaluated in the
// loss-function tests.

#include <cmath>
#include <limits>

#include "completion/options.hpp"
#include "completion/loss.hpp"
#include "linalg/lu.hpp"
#include "tensor/cp_model.hpp"
#include "tensor/mttkrp.hpp"
#include "tensor/sparse_tensor.hpp"
#include "util/check.hpp"

namespace cpr::completion {

/// Huber loss on the log accuracy ratio: quadratic for |log(m/t)| <= delta,
/// linear beyond — robust to corrupted measurements (stragglers, timer
/// glitches) that would dominate a squared loss.
struct HuberLogLoss {
  static constexpr double delta = 1.0;
  static double value(double t, double m) {
    if (!(m > 0.0) || !(t > 0.0)) return std::numeric_limits<double>::infinity();
    const double r = std::log(m / t);
    return std::abs(r) <= delta ? r * r : 2.0 * delta * std::abs(r) - delta * delta;
  }
  static double d1(double t, double m) {
    const double r = std::log(m / t);
    const double dr = std::abs(r) <= delta ? 2.0 * r : 2.0 * delta * (r > 0 ? 1.0 : -1.0);
    return dr / m;
  }
  static double d2(double t, double m) {
    // f(m) = rho(log(m/t)): f'' = (rho''(r) - rho'(r)) / m^2, with
    // rho'' = 2 inside the quadratic zone and 0 outside. A positive floor
    // keeps Newton's curvature usable in the linear zone.
    const double r = std::log(m / t);
    const double rho2 = std::abs(r) <= delta ? 2.0 : 0.0;
    const double rho1 = std::abs(r) <= delta ? 2.0 * r : 2.0 * delta * (r > 0 ? 1.0 : -1.0);
    return std::max((rho2 - rho1) / (m * m), 0.2 / (m * m));
  }
  static constexpr bool requires_positive_model = true;
};

struct GeneralizedOptions : CompletionOptions {
  double eta_init = 10.0;
  double eta_factor = 8.0;
  double eta_min = 1e-11;
  int max_newton_iters = 40;
  int sweeps_per_eta = 6;
};

namespace detail {

template <typename Loss>
double generalized_row_objective(const std::vector<std::vector<double>>& zs,
                                 const std::vector<double>& ts, const linalg::Vector& u,
                                 double lambda, double eta) {
  if constexpr (Loss::requires_positive_model) {
    for (const double ur : u) {
      if (!(ur > 0.0)) return std::numeric_limits<double>::infinity();
    }
  }
  const double inv_count = 1.0 / static_cast<double>(zs.size());
  double data_term = 0.0;
  for (std::size_t e = 0; e < zs.size(); ++e) {
    double m = 0.0;
    for (std::size_t r = 0; r < u.size(); ++r) m += zs[e][r] * u[r];
    if (Loss::requires_positive_model && !(m > 0.0)) {
      return std::numeric_limits<double>::infinity();
    }
    data_term += Loss::value(ts[e], m);
  }
  double total = data_term * inv_count;
  for (const double ur : u) {
    total += lambda * ur * ur;
    if constexpr (Loss::requires_positive_model) total -= eta * std::log(ur);
  }
  return total;
}

}  // namespace detail

/// Mean loss over observed entries plus the ridge term.
template <typename Loss>
double generalized_objective(const tensor::SparseTensor& t, const tensor::CpModel& model,
                             double regularization) {
  double total = 0.0;
  for (std::size_t e = 0; e < t.nnz(); ++e) {
    const double prediction = model.eval(t.entry_index(e));
    const double value = Loss::value(t.value(e), prediction);
    total += std::isfinite(value) ? value : 1e12;
  }
  return total / std::max<std::size_t>(t.nnz(), 1) +
         regularization * model.regularization_term();
}

/// Fits `model` under the loss policy. For positivity-requiring losses the
/// model must start strictly positive (CpModel::init_positive) and the
/// observations must be positive; for unconstrained losses a single
/// "eta stage" (no barrier) runs for max_sweeps sweeps.
template <typename Loss>
CompletionReport generalized_complete(const tensor::SparseTensor& t,
                                      tensor::CpModel& model,
                                      const GeneralizedOptions& options) {
  CPR_CHECK(t.dims() == model.dims());
  CPR_CHECK_MSG(t.nnz() > 0, "cannot complete a tensor with no observations");
  if constexpr (Loss::requires_positive_model) {
    CPR_CHECK_MSG(model.all_factors_positive(),
                  "this loss requires a strictly positive initial model");
    for (std::size_t e = 0; e < t.nnz(); ++e) {
      CPR_CHECK_MSG(t.value(e) > 0.0, "this loss requires positive observations");
    }
  }

  const std::size_t rank = model.rank();
  const tensor::ModeSlices slices(t);
  CompletionReport report;
  double prev_objective = generalized_objective<Loss>(t, model, options.regularization);
  int total_sweeps = 0;

  const auto sweep_all_modes = [&](double eta) {
    for (std::size_t mode = 0; mode < model.order(); ++mode) {
      auto& factor = model.factor(mode);
      const std::size_t n_rows = factor.rows();
#ifdef CPR_HAVE_OPENMP
#pragma omp parallel for schedule(dynamic, 2)
#endif
      for (std::size_t i = 0; i < n_rows; ++i) {
        const auto& entries = slices.entries(mode, i);
        if (entries.empty()) continue;
        const double inv_count = 1.0 / static_cast<double>(entries.size());

        std::vector<std::vector<double>> zs(entries.size(), std::vector<double>(rank));
        std::vector<double> ts(entries.size());
        for (std::size_t k = 0; k < entries.size(); ++k) {
          tensor::hadamard_row(model, t, entries[k], mode, zs[k].data());
          ts[k] = t.value(entries[k]);
        }

        linalg::Vector u = factor.row(i);
        double current =
            detail::generalized_row_objective<Loss>(zs, ts, u, options.regularization, eta);

        for (int iter = 0; iter < options.max_newton_iters; ++iter) {
          linalg::Vector gradient(rank, 0.0);
          linalg::Matrix hessian(rank, rank, 0.0);
          bool degenerate = false;
          for (std::size_t k = 0; k < entries.size(); ++k) {
            const auto& z = zs[k];
            double m = 0.0;
            for (std::size_t r = 0; r < rank; ++r) m += z[r] * u[r];
            if (Loss::requires_positive_model && !(m > 0.0)) {
              degenerate = true;
              break;
            }
            const double g1 = Loss::d1(ts[k], m) * inv_count;
            const double g2 = Loss::d2(ts[k], m) * inv_count;
            for (std::size_t r = 0; r < rank; ++r) {
              gradient[r] += g1 * z[r];
              for (std::size_t s = r; s < rank; ++s) hessian(r, s) += g2 * z[r] * z[s];
            }
          }
          if (degenerate) break;
          double gradient_norm_sq = 0.0;
          for (std::size_t r = 0; r < rank; ++r) {
            gradient[r] += 2.0 * options.regularization * u[r];
            hessian(r, r) += 2.0 * options.regularization;
            if constexpr (Loss::requires_positive_model) {
              gradient[r] -= eta / u[r];
              hessian(r, r) += eta / (u[r] * u[r]);
            }
            gradient_norm_sq += gradient[r] * gradient[r];
            for (std::size_t s = 0; s < r; ++s) hessian(r, s) = hessian(s, r);
          }
          if (std::sqrt(gradient_norm_sq) < 1e-9) break;

          linalg::Vector step;
          double damping = 0.0;
          for (int attempt = 0; attempt < 5; ++attempt) {
            linalg::Matrix damped = hessian;
            if (damping > 0.0) {
              for (std::size_t r = 0; r < rank; ++r) damped(r, r) += damping;
            }
            auto solved = linalg::solve_lu(std::move(damped), gradient);
            if (solved.has_value()) {
              double descent = 0.0;
              for (std::size_t r = 0; r < rank; ++r) descent += gradient[r] * (*solved)[r];
              if (descent > 0.0) {
                step = std::move(*solved);
                break;
              }
            }
            damping = damping == 0.0 ? 1e-4 : damping * 100.0;
          }
          if (step.empty()) break;

          double alpha = 1.0;
          if constexpr (Loss::requires_positive_model) {
            for (std::size_t r = 0; r < rank; ++r) {
              if (step[r] > 0.0) alpha = std::min(alpha, 0.95 * u[r] / step[r]);
            }
          }
          bool improved = false;
          for (int ls = 0; ls < 30 && alpha > 1e-14; ++ls) {
            linalg::Vector candidate = u;
            for (std::size_t r = 0; r < rank; ++r) candidate[r] -= alpha * step[r];
            const double value = detail::generalized_row_objective<Loss>(
                zs, ts, candidate, options.regularization, eta);
            if (value < current) {
              u = std::move(candidate);
              current = value;
              improved = true;
              break;
            }
            alpha *= 0.5;
          }
          if (!improved) break;
        }
        factor.set_row(i, u);
      }
    }
  };

  if constexpr (Loss::requires_positive_model) {
    for (double eta = options.eta_init; eta > options.eta_min;
         eta /= options.eta_factor) {
      if (total_sweeps >= options.max_sweeps) break;
      double eta_prev = generalized_objective<Loss>(t, model, options.regularization);
      for (int inner = 0; inner < options.sweeps_per_eta; ++inner) {
        if (total_sweeps >= options.max_sweeps) break;
        ++total_sweeps;
        sweep_all_modes(eta);
        const double objective =
            generalized_objective<Loss>(t, model, options.regularization);
        report.objective_history.push_back(objective);
        report.sweeps = total_sweeps;
        const double denom = std::max(std::abs(eta_prev), 1e-300);
        if (std::abs(eta_prev - objective) / denom < options.tol) break;
        eta_prev = objective;
      }
    }
  } else {
    for (int sweep = 0; sweep < options.max_sweeps; ++sweep) {
      ++total_sweeps;
      sweep_all_modes(0.0);
      const double objective =
          generalized_objective<Loss>(t, model, options.regularization);
      report.objective_history.push_back(objective);
      report.sweeps = total_sweeps;
      const double denom = std::max(std::abs(prev_objective), 1e-300);
      if (std::abs(prev_objective - objective) / denom < options.tol) {
        report.converged = true;
        break;
      }
      prev_objective = objective;
    }
  }
  return report;
}

}  // namespace cpr::completion
