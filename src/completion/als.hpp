#pragma once
// Alternating least squares for tensor completion (Section 4.2.1).
//
// For each mode and each row i, ALS fixes all other factors and minimizes
//   g(u_i) = (1/|Ω_i|) sum_{Ω_i} (t_i - z^T u_i)^2 + lambda ||u_i||^2,
// a linear least-squares problem solved through its normal equations.
// Rows are independent, so the sweep is parallelized over rows.
//
// Total arithmetic cost is O((sum_j I_j) R^3 + |Ω| d R^2) per sweep,
// matching the complexity quoted in the paper.

#include "completion/options.hpp"
#include "tensor/cp_model.hpp"
#include "tensor/sparse_tensor.hpp"

namespace cpr::completion {

/// Fits `model` to the observed entries of `t` (values used as-is — callers
/// wanting the log-MSE loss of Section 5.2 log-transform `t` first).
/// `model` must already be shaped (dims/rank) and initialized.
CompletionReport als_complete(const tensor::SparseTensor& t, tensor::CpModel& model,
                              const CompletionOptions& options);

/// Mean squared error over observed entries plus the regularization term —
/// the objective ALS monotonically decreases (Eq. 3 with per-row scaling
/// folded out).
double completion_objective(const tensor::SparseTensor& t, const tensor::CpModel& model,
                            double regularization);

}  // namespace cpr::completion
