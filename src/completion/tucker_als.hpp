#pragma once
// Tucker completion by regularized alternating least squares.
//
// Extends the Section-4.2.1 machinery to the Tucker format: factor rows are
// updated exactly like CP rows (the contraction weights replace the
// Hadamard rows), and the core tensor is refit as one ridge least-squares
// problem in vec(G) whose design vectors are Kronecker products of the
// selected factor rows. Keep prod_j R_j modest (<= a few hundred): the core
// update solves a dense (prod R)^2 system.

#include "completion/options.hpp"
#include "tensor/sparse_tensor.hpp"
#include "tensor/tucker_model.hpp"

namespace cpr::completion {

CompletionReport tucker_complete(const tensor::SparseTensor& t,
                                 tensor::TuckerModel& model,
                                 const CompletionOptions& options);

/// Mean squared error over observed entries plus ridge on all parameters.
double tucker_objective(const tensor::SparseTensor& t, const tensor::TuckerModel& model,
                        double regularization);

}  // namespace cpr::completion
