#include "completion/ccd.hpp"

#include <cmath>

#include "completion/als.hpp"
#include "tensor/mttkrp.hpp"
#include "util/log.hpp"

namespace cpr::completion {

CompletionReport ccd_complete(const tensor::SparseTensor& t, tensor::CpModel& model,
                              const CompletionOptions& options) {
  CPR_CHECK(t.dims() == model.dims());
  CPR_CHECK_MSG(t.nnz() > 0, "cannot complete a tensor with no observations");
  const std::size_t rank = model.rank();
  const std::size_t order = model.order();
  const tensor::ModeSlices slices(t);

  // residual[e] = t_e - t̂_e, maintained incrementally across scalar updates.
  std::vector<double> residual(t.nnz());
  for (std::size_t e = 0; e < t.nnz(); ++e) {
    residual[e] = t.value(e) - model.eval(t.entry_index(e));
  }

  CompletionReport report;
  double prev_objective = completion_objective(t, model, options.regularization);

  for (int sweep = 0; sweep < options.max_sweeps; ++sweep) {
    for (std::size_t mode = 0; mode < order; ++mode) {
      auto& factor = model.factor(mode);
      const std::size_t n_rows = factor.rows();
      // Rows of one mode touch disjoint residual slices and only read the
      // other modes' factors, so the row loop parallelizes with bitwise
      // deterministic results (each row's update order is unchanged).
#ifdef CPR_HAVE_OPENMP
#pragma omp parallel
#endif
      {
        // Per-thread cache of z_{e,:} for one row's entries: z excludes the
        // mode being updated, so it is invariant across the whole r-loop and
        // needs computing once per entry (not 2R times). The cache is capped
        // (8 MB/thread); a pathologically dense slice falls back to
        // recomputing z per access instead of ballooning memory.
        constexpr std::size_t kMaxCacheDoubles = 1u << 20;
        std::vector<double> z_cache;
        std::vector<double> z_tmp(rank);
#ifdef CPR_HAVE_OPENMP
#pragma omp for schedule(dynamic, 4)
#endif
        for (std::size_t i = 0; i < n_rows; ++i) {
          const auto& entries = slices.entries(mode, i);
          if (entries.empty()) continue;
          const double inv_count = 1.0 / static_cast<double>(entries.size());
          const bool cached = entries.size() * rank <= kMaxCacheDoubles;
          if (cached) {
            z_cache.resize(entries.size() * rank);
            for (std::size_t s = 0; s < entries.size(); ++s) {
              tensor::hadamard_row(model, t, entries[s], mode, z_cache.data() + s * rank);
            }
          }
          const auto z_at = [&](std::size_t s) -> const double* {
            if (cached) return z_cache.data() + s * rank;
            tensor::hadamard_row(model, t, entries[s], mode, z_tmp.data());
            return z_tmp.data();
          };
          for (std::size_t r = 0; r < rank; ++r) {
            // Scalar subproblem in u = u_{i,r}:
            //   min (1/|Ω_i|) sum_e (residual_e + (u_old - u) z_{e,r})^2 + lambda u^2
            double numerator = 0.0, denominator = 0.0;
            const double u_old = factor(i, r);
            for (std::size_t s = 0; s < entries.size(); ++s) {
              const double zr = z_at(s)[r];
              numerator += (residual[entries[s]] + u_old * zr) * zr;
              denominator += zr * zr;
            }
            const double u_new = (numerator * inv_count) /
                                 (denominator * inv_count + options.regularization);
            if (!std::isfinite(u_new)) continue;
            const double delta = u_new - u_old;
            factor(i, r) = u_new;
            // Incremental residual maintenance.
            for (std::size_t s = 0; s < entries.size(); ++s) {
              residual[entries[s]] -= delta * z_at(s)[r];
            }
          }
        }
      }
    }

    const double objective = completion_objective(t, model, options.regularization);
    report.objective_history.push_back(objective);
    report.sweeps = sweep + 1;
    CPR_LOG_DEBUG("CCD sweep " << sweep << " objective " << objective);
    const double denom = std::max(std::abs(prev_objective), 1e-300);
    if (std::abs(prev_objective - objective) / denom < options.tol) {
      report.converged = true;
      break;
    }
    prev_objective = objective;
  }
  return report;
}

}  // namespace cpr::completion
