#include "completion/ccd.hpp"

#include <cmath>

#include "completion/als.hpp"
#include "tensor/mttkrp.hpp"
#include "util/log.hpp"

namespace cpr::completion {

CompletionReport ccd_complete(const tensor::SparseTensor& t, tensor::CpModel& model,
                              const CompletionOptions& options) {
  CPR_CHECK(t.dims() == model.dims());
  CPR_CHECK_MSG(t.nnz() > 0, "cannot complete a tensor with no observations");
  const std::size_t rank = model.rank();
  const std::size_t order = model.order();
  const tensor::ModeSlices slices(t);

  // residual[e] = t_e - t̂_e, maintained incrementally across scalar updates.
  std::vector<double> residual(t.nnz());
  for (std::size_t e = 0; e < t.nnz(); ++e) {
    residual[e] = t.value(e) - model.eval(t.entry_index(e));
  }

  CompletionReport report;
  double prev_objective = completion_objective(t, model, options.regularization);
  std::vector<double> z(rank);

  for (int sweep = 0; sweep < options.max_sweeps; ++sweep) {
    for (std::size_t mode = 0; mode < order; ++mode) {
      auto& factor = model.factor(mode);
      for (std::size_t i = 0; i < factor.rows(); ++i) {
        const auto& entries = slices.entries(mode, i);
        if (entries.empty()) continue;
        const double inv_count = 1.0 / static_cast<double>(entries.size());
        for (std::size_t r = 0; r < rank; ++r) {
          // Scalar subproblem in u = u_{i,r}:
          //   min (1/|Ω_i|) sum_e (residual_e + (u_old - u) z_{e,r})^2 + lambda u^2
          double numerator = 0.0, denominator = 0.0;
          const double u_old = factor(i, r);
          for (const std::size_t e : entries) {
            tensor::hadamard_row(model, t, e, mode, z.data());
            const double zr = z[r];
            numerator += (residual[e] + u_old * zr) * zr;
            denominator += zr * zr;
          }
          const double u_new = (numerator * inv_count) /
                               (denominator * inv_count + options.regularization);
          if (!std::isfinite(u_new)) continue;
          const double delta = u_new - u_old;
          factor(i, r) = u_new;
          // Incremental residual maintenance.
          for (const std::size_t e : entries) {
            tensor::hadamard_row(model, t, e, mode, z.data());
            residual[e] -= delta * z[r];
          }
        }
      }
    }

    const double objective = completion_objective(t, model, options.regularization);
    report.objective_history.push_back(objective);
    report.sweeps = sweep + 1;
    CPR_LOG_DEBUG("CCD sweep " << sweep << " objective " << objective);
    const double denom = std::max(std::abs(prev_objective), 1e-300);
    if (std::abs(prev_objective - objective) / denom < options.tol) {
      report.converged = true;
      break;
    }
    prev_objective = objective;
  }
  return report;
}

}  // namespace cpr::completion
