#pragma once
// Stochastic gradient descent for tensor completion (Section 4.2.1).
//
// Updates all d factor rows touched by a sampled observation at once using
// the gradient of the regularized squared loss, with an inverse-time-decay
// learning-rate schedule. Included for completeness of the optimizer study;
// ALS remains the default for the CPR model.

#include "completion/options.hpp"
#include "tensor/cp_model.hpp"
#include "tensor/sparse_tensor.hpp"

namespace cpr::completion {

struct SgdOptions : CompletionOptions {
  double learning_rate = 0.05;
  double decay = 0.01;  ///< lr_t = lr / (1 + decay * epoch)

  /// Lock-free (Hogwild-style) parallel epochs. Off by default: concurrent
  /// row updates make the iterate order non-deterministic, so results are
  /// only statistically — not bitwise — equivalent to the serial sweep.
  /// Requires an OpenMP build; without one the flag is ignored and epochs
  /// run as the ordinary serial sweep.
  bool hogwild = false;
};

CompletionReport sgd_complete(const tensor::SparseTensor& t, tensor::CpModel& model,
                              const SgdOptions& options);

}  // namespace cpr::completion
