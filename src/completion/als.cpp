#include "completion/als.hpp"

#include <cmath>

#include "linalg/cholesky.hpp"
#include "linalg/fused.hpp"
#include "tensor/mttkrp.hpp"
#include "tensor/mttkrp_blocked.hpp"
#include "util/kernel_mode.hpp"
#include "util/log.hpp"

namespace cpr::completion {

namespace {

/// Rebalances the per-component column norms across modes: for each rank
/// component r, every factor column is rescaled to the geometric mean of the
/// column norms. The reconstruction is unchanged (the product of the scales
/// is 1), but the scale indeterminacy of CP — which lets sparsely-observed
/// rows blow up against tiny regularization — is removed after every sweep.
void rebalance_columns(tensor::CpModel& model) {
  const std::size_t rank = model.rank();
  const std::size_t order = model.order();
  std::vector<double> norms(order);
  for (std::size_t r = 0; r < rank; ++r) {
    double log_geo = 0.0;
    bool degenerate = false;
    for (std::size_t j = 0; j < order; ++j) {
      double sum = 0.0;
      const auto& factor = model.factor(j);
      for (std::size_t i = 0; i < factor.rows(); ++i) {
        sum += factor(i, r) * factor(i, r);
      }
      norms[j] = std::sqrt(sum);
      if (norms[j] == 0.0) {
        degenerate = true;
        break;
      }
      log_geo += std::log(norms[j]);
    }
    if (degenerate) continue;
    const double geo = std::exp(log_geo / static_cast<double>(order));
    for (std::size_t j = 0; j < order; ++j) {
      const double scale = geo / norms[j];
      auto& factor = model.factor(j);
      for (std::size_t i = 0; i < factor.rows(); ++i) factor(i, r) *= scale;
    }
  }
}

}  // namespace

double completion_objective(const tensor::SparseTensor& t, const tensor::CpModel& model,
                            double regularization) {
  const double sq_res = tensor::sq_residual_observed(t, model);
  const double n = std::max<std::size_t>(t.nnz(), 1);
  return sq_res / n + regularization * model.regularization_term();
}

CompletionReport als_complete(const tensor::SparseTensor& t, tensor::CpModel& model,
                              const CompletionOptions& options) {
  CPR_CHECK(t.dims() == model.dims());
  CPR_CHECK_MSG(t.nnz() > 0, "cannot complete a tensor with no observations");
  const std::size_t rank = model.rank();
  const tensor::ModeSlices slices(t);
  const bool blocked = kernel_mode() == KernelMode::Blocked;

  CompletionReport report;
  double prev_objective = completion_objective(t, model, options.regularization);

  for (int sweep = 0; sweep < options.max_sweeps; ++sweep) {
    for (std::size_t mode = 0; mode < model.order(); ++mode) {
      auto& factor = model.factor(mode);
      const std::size_t n_rows = factor.rows();
      constexpr std::size_t kTile = 64;
#ifdef CPR_HAVE_OPENMP
#pragma omp parallel
#endif
      {
        // Per-thread assembly scratch, reused across every row the thread
        // owns (gram/rhs are moved into the solver, so those stay per-row).
        std::vector<double> z_tile(blocked ? kTile * rank : 0);
        std::vector<double> w_tile(blocked ? kTile : 0);
        std::vector<double> z(blocked ? 0 : rank);
#ifdef CPR_HAVE_OPENMP
#pragma omp for schedule(dynamic, 4)
#endif
        for (std::size_t i = 0; i < n_rows; ++i) {
          const auto& entries = slices.entries(mode, i);
          if (entries.empty()) continue;  // unobserved slice: keep current row
          const double inv_count = 1.0 / static_cast<double>(entries.size());
          linalg::Matrix gram(rank, rank, 0.0);
          linalg::Vector rhs(rank, 0.0);
          if (blocked) {
            // Fused normal-equation assembly: expand a tile of Hadamard
            // rows, then accumulate Z^T Z and Z^T w in one pass over the
            // tile (linalg/fused.hpp). Entry order inside and across tiles
            // is the slice order, so the result matches the scalar path
            // bitwise.
            for (std::size_t first = 0; first < entries.size(); first += kTile) {
              const std::size_t n = std::min(kTile, entries.size() - first);
              tensor::hadamard_block(model, t, entries.data() + first, n, mode,
                                     z_tile.data());
              for (std::size_t b = 0; b < n; ++b) {
                w_tile[b] = t.value(entries[first + b]);
              }
              linalg::fused_gram_rhs(z_tile.data(), w_tile.data(), n, rank, gram,
                                     rhs);
            }
          } else {
            for (const std::size_t e : entries) {
              tensor::hadamard_row(model, t, e, mode, z.data());
              const double value = t.value(e);
              for (std::size_t r = 0; r < rank; ++r) {
                rhs[r] += value * z[r];
                for (std::size_t s = r; s < rank; ++s) gram(r, s) += z[r] * z[s];
              }
            }
          }
          // Mirror the upper triangle, apply the 1/|Ω_i| scaling, and add
          // the ridge term (row objective of Section 4.2.1).
          for (std::size_t r = 0; r < rank; ++r) {
            rhs[r] *= inv_count;
            for (std::size_t s = r; s < rank; ++s) {
              gram(r, s) *= inv_count;
              gram(s, r) = gram(r, s);
            }
            gram(r, r) += options.regularization;
          }
          const auto solution = linalg::solve_spd(std::move(gram), std::move(rhs));
          if (solution.has_value()) {
            factor.set_row(i, *solution);
          }
          // On the (rare) total Cholesky failure the previous row is kept.
        }
      }
    }

    if (options.rebalance) rebalance_columns(model);

    const double objective = completion_objective(t, model, options.regularization);
    report.objective_history.push_back(objective);
    report.sweeps = sweep + 1;
    CPR_LOG_DEBUG("ALS sweep " << sweep << " objective " << objective);
    const double denom = std::max(std::abs(prev_objective), 1e-300);
    if (std::abs(prev_objective - objective) / denom < options.tol) {
      report.converged = true;
      break;
    }
    prev_objective = objective;
  }
  return report;
}

}  // namespace cpr::completion
