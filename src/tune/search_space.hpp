#pragma once
// Family-agnostic hyper-parameter search spaces (the tuning subsystem's
// candidate source).
//
// A SearchSpace wraps the HyperAxis list a family registered alongside its
// ModelRegistry entry (or axes the user supplied via the --space grammar)
// and turns it into a deterministic candidate list: fully enumerable grids
// are swept lexicographically (first axis outermost, reproducing the
// historical sweep order); spaces with range axes draw each candidate from
// an Rng seeded by (seed, candidate index), so the candidate set is
// identical regardless of evaluation order or tuner thread count.

#include <string>
#include <utility>
#include <vector>

#include "common/model_registry.hpp"

namespace cpr::tune {

/// One concrete assignment drawn from a SearchSpace, in axis order. The
/// reserved axis name "cells" maps to ModelSpec::cells; every other axis
/// name is a hyper-parameter key of the family.
struct Candidate {
  std::vector<std::pair<std::string, std::string>> assignment;

  /// "cells=8 rank=4 lambda=1e-05" — stable display and dedup key.
  std::string label() const;

  /// Returns `base` with this assignment applied on top.
  common::ModelSpec apply_to(const common::ModelSpec& base) const;
};

class SearchSpace {
 public:
  /// Validates the axes: unique non-empty names, sane ranges/value lists.
  /// An empty axis list is allowed and yields one empty candidate (the
  /// tuner then just cross-validates the base spec).
  explicit SearchSpace(std::vector<common::HyperAxis> axes);

  const std::vector<common::HyperAxis>& axes() const { return axes_; }

  /// True when every axis is an explicit value list (Grid).
  bool enumerable() const;

  /// Number of grid points of an enumerable space.
  std::size_t cardinality() const;

  /// Deterministic candidate list: the full grid in lexicographic order when
  /// the space is enumerable and fits within max_trials, otherwise
  /// max_trials seeded samples (deduplicated by label, draw order kept).
  std::vector<Candidate> materialize(std::size_t max_trials, std::uint64_t seed) const;

 private:
  std::vector<common::HyperAxis> axes_;
};

/// Parses one axis declaration (the cpr_tune --space grammar):
///   name=v1|v2|...          explicit value grid (numeric or categorical)
///   name=lo..hi             uniform real range
///   name=lo..hi:log         log-uniform real range
///   name=lo..hi:int         uniform integer range
///   name=lo..hi:logint      log-uniform integer range
/// Throws CheckError on any grammar violation.
common::HyperAxis parse_axis(const std::string& text);

/// Parses a comma-separated axis list; empty text yields no axes.
std::vector<common::HyperAxis> parse_search_space(const std::string& text);

/// Merges `overrides` into `base`: same-name axes are replaced in place,
/// new axes appended (declaration order preserved).
std::vector<common::HyperAxis> merge_axes(std::vector<common::HyperAxis> base,
                                          const std::vector<common::HyperAxis>& overrides);

}  // namespace cpr::tune
