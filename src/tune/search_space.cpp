#include "tune/search_space.hpp"

#include <cmath>
#include <set>
#include <sstream>

#include "common/dataset_io.hpp"
#include "util/rng.hpp"

namespace cpr::tune {

namespace {

using common::HyperAxis;

std::string draw_value(const HyperAxis& axis, Rng& rng) {
  switch (axis.kind) {
    case HyperAxis::Kind::Grid:
      return axis.values[static_cast<std::size_t>(
          rng.uniform_int(0, static_cast<std::int64_t>(axis.values.size()) - 1))];
    case HyperAxis::Kind::Linear:
      return common::format_hyper_value(rng.uniform(axis.lo, axis.hi));
    case HyperAxis::Kind::Log:
      return common::format_hyper_value(rng.log_uniform(axis.lo, axis.hi));
    case HyperAxis::Kind::LinearInt:
      return std::to_string(rng.uniform_int(static_cast<std::int64_t>(axis.lo),
                                            static_cast<std::int64_t>(axis.hi)));
    case HyperAxis::Kind::LogInt:
      return std::to_string(rng.log_uniform_int(static_cast<std::int64_t>(axis.lo),
                                                static_cast<std::int64_t>(axis.hi)));
  }
  CPR_CHECK_MSG(false, "axis '" << axis.name << "': unknown kind");
  return {};
}

}  // namespace

std::string Candidate::label() const {
  std::ostringstream stream;
  for (const auto& [key, value] : assignment) {
    if (stream.tellp() > 0) stream << ' ';
    stream << key << '=' << value;
  }
  return assignment.empty() ? "(defaults)" : stream.str();
}

common::ModelSpec Candidate::apply_to(const common::ModelSpec& base) const {
  common::ModelSpec spec = base;
  for (const auto& [key, value] : assignment) {
    if (key == "cells") {
      std::size_t consumed = 0;
      std::int64_t cells = 0;
      try {
        cells = std::stoll(value, &consumed);
      } catch (const std::exception&) {
        consumed = 0;
      }
      CPR_CHECK_MSG(consumed == value.size() && cells > 0,
                    "axis 'cells': '" << value << "' is not a positive integer");
      spec.cells = static_cast<std::size_t>(cells);
    } else {
      spec.hyper[key] = value;
    }
  }
  return spec;
}

SearchSpace::SearchSpace(std::vector<common::HyperAxis> axes) : axes_(std::move(axes)) {
  std::set<std::string> names;
  for (const auto& axis : axes_) {
    CPR_CHECK_MSG(!axis.name.empty(), "search-space axis needs a name");
    CPR_CHECK_MSG(names.insert(axis.name).second,
                  "search-space axis '" << axis.name << "' declared twice");
    if (axis.kind == HyperAxis::Kind::Grid) {
      CPR_CHECK_MSG(!axis.values.empty(),
                    "axis '" << axis.name << "': grid needs at least one value");
    } else {
      CPR_CHECK_MSG(axis.lo < axis.hi, "axis '" << axis.name << "': need lo < hi");
      if (axis.kind == HyperAxis::Kind::Log || axis.kind == HyperAxis::Kind::LogInt) {
        CPR_CHECK_MSG(axis.lo > 0.0, "axis '" << axis.name
                                              << "': log range needs lo > 0");
      }
    }
  }
}

bool SearchSpace::enumerable() const {
  for (const auto& axis : axes_) {
    if (axis.kind != HyperAxis::Kind::Grid) return false;
  }
  return true;
}

std::size_t SearchSpace::cardinality() const {
  CPR_CHECK_MSG(enumerable(), "cardinality of a space with sampled range axes");
  std::size_t product = 1;
  for (const auto& axis : axes_) product *= axis.values.size();
  return product;
}

std::vector<Candidate> SearchSpace::materialize(std::size_t max_trials,
                                                std::uint64_t seed) const {
  CPR_CHECK_MSG(max_trials >= 1, "need at least one trial");
  std::vector<Candidate> candidates;
  if (axes_.empty()) {
    candidates.emplace_back();
    return candidates;
  }

  if (enumerable() && cardinality() <= max_trials) {
    const std::size_t total = cardinality();
    for (std::size_t flat = 0; flat < total; ++flat) {
      Candidate candidate;
      candidate.assignment.resize(axes_.size());
      std::size_t remainder = flat;
      for (std::size_t j = axes_.size(); j-- > 0;) {
        const auto& axis = axes_[j];
        candidate.assignment[j] = {axis.name,
                                   axis.values[remainder % axis.values.size()]};
        remainder /= axis.values.size();
      }
      candidates.push_back(std::move(candidate));
    }
    return candidates;
  }

  std::set<std::string> seen;
  const std::size_t max_attempts = 64 * max_trials;
  for (std::size_t attempt = 0;
       attempt < max_attempts && candidates.size() < max_trials; ++attempt) {
    Rng rng(hash_combine(seed, attempt));
    Candidate candidate;
    for (const auto& axis : axes_) {
      candidate.assignment.emplace_back(axis.name, draw_value(axis, rng));
    }
    if (seen.insert(candidate.label()).second) candidates.push_back(std::move(candidate));
  }
  CPR_CHECK_MSG(!candidates.empty(), "search space produced no candidates");
  return candidates;
}

common::HyperAxis parse_axis(const std::string& text) {
  const auto equals = text.find('=');
  CPR_CHECK_MSG(equals != std::string::npos && equals > 0 && equals + 1 < text.size(),
                "axis '" << text << "': expected name=values or name=lo..hi[:kind]");
  const std::string name = text.substr(0, equals);
  const std::string spec = text.substr(equals + 1);

  if (spec.find("..") == std::string::npos) {
    // Explicit value grid: v1|v2|...
    return HyperAxis::grid(name, common::split_fields(spec, '|', "axis '" + name + "'"));
  }

  // Range axis: lo..hi[:log|:int|:logint]
  std::string range = spec;
  std::string kind;
  const auto colon = spec.find(':');
  if (colon != std::string::npos) {
    range = spec.substr(0, colon);
    kind = spec.substr(colon + 1);
  }
  const auto dots = range.find("..");
  const std::string lo_text = range.substr(0, dots);
  const std::string hi_text = range.substr(dots + 2);
  CPR_CHECK_MSG(!lo_text.empty() && !hi_text.empty(),
                "axis '" << name << "': range needs lo..hi (got '" << spec << "')");
  const double lo = common::parse_number(lo_text, "axis '" + name + "' lower bound");
  const double hi = common::parse_number(hi_text, "axis '" + name + "' upper bound");

  if (kind.empty()) return HyperAxis::linear(name, lo, hi);
  if (kind == "log") return HyperAxis::log(name, lo, hi);
  if (kind == "int" || kind == "logint") {
    CPR_CHECK_MSG(lo == std::floor(lo) && hi == std::floor(hi),
                  "axis '" << name << "': integer range needs integral bounds");
    return kind == "int" ? HyperAxis::linear_int(name, static_cast<std::int64_t>(lo),
                                                 static_cast<std::int64_t>(hi))
                         : HyperAxis::log_int(name, static_cast<std::int64_t>(lo),
                                              static_cast<std::int64_t>(hi));
  }
  CPR_CHECK_MSG(false, "axis '" << name << "': unknown kind ':" << kind
                                << "' (log, int, logint)");
  return {};
}

std::vector<common::HyperAxis> parse_search_space(const std::string& text) {
  std::vector<common::HyperAxis> axes;
  for (const auto& entry : common::split_fields(text, ',', "--space")) {
    axes.push_back(parse_axis(entry));
  }
  return axes;
}

std::vector<common::HyperAxis> merge_axes(std::vector<common::HyperAxis> base,
                                          const std::vector<common::HyperAxis>& overrides) {
  for (const auto& override_axis : overrides) {
    bool replaced = false;
    for (auto& axis : base) {
      if (axis.name == override_axis.name) {
        axis = override_axis;
        replaced = true;
        break;
      }
    }
    if (!replaced) base.push_back(override_axis);
  }
  return base;
}

}  // namespace cpr::tune
