#pragma once
// k-fold cross-validation for the universal tuner.
//
// kfold_splits produces a deterministic exact partition of the row indices:
// every row lands in exactly one validation fold (no leaks, no drops), fold
// sizes differ by at most one, and each fold's training rows are precisely
// the complement of its validation rows. cross_validate then scores one
// (family, spec) candidate by refitting a fresh registry-constructed model
// per fold and averaging held-out errors in log space — MLogQ (the paper's
// Section-2.2 selection metric) and the RMS log accuracy ratio.

#include "common/dataset.hpp"
#include "common/model_registry.hpp"

namespace cpr::tune {

struct FoldSplit {
  std::vector<std::size_t> train_rows;
  std::vector<std::size_t> valid_rows;
};

/// Deterministic k-fold partition of [0, n); requires 2 <= k <= n.
std::vector<FoldSplit> kfold_splits(std::size_t n, std::size_t k, std::uint64_t seed);

/// Held-out error of one candidate, averaged over the validation folds
/// (weighted by fold size).
struct CvScore {
  double mlogq = 0.0;     ///< mean |log(pred/true)|
  double rmse_log = 0.0;  ///< sqrt(mean log(pred/true)^2)
};
CvScore cross_validate(const std::string& family, const common::ModelSpec& spec,
                       const common::Dataset& data, const std::vector<FoldSplit>& folds);

}  // namespace cpr::tune
