#pragma once
// The universal parallel hyper-parameter tuner: takes any ModelRegistry
// family name and a dataset, and returns the best ModelSpec by k-fold
// cross-validated log-space error.
//
// Search strategy: successive halving. All candidates are first
// cross-validated on a small training-sample budget (a seeded subset of the
// data); each rung keeps the top 1/eta by held-out MLogQ and multiplies the
// sample budget by eta, until the final rung scores the survivors on the
// full dataset. The winner is refit on all rows and returned ready to save
// through the versioned model archive (core/model_file) — cpr_serve can
// host it directly.
//
// Determinism: candidate sampling, budget subsets and fold splits derive
// from TunerOptions::seed alone; candidate evaluations are keyed by
// candidate index and reduced in index order after each rung, so the ranked
// trial list is bitwise-identical no matter how many worker threads run the
// evaluations.

#include <functional>
#include <iosfwd>

#include "common/dataset.hpp"
#include "tune/cross_validator.hpp"
#include "tune/search_space.hpp"

namespace cpr::tune {

/// One candidate's record, updated at every rung it survives to.
struct Trial {
  std::size_t index = 0;  ///< candidate index in sampler order
  std::string config;     ///< display label of the assignment
  Candidate candidate;
  std::size_t rung = 0;     ///< last rung evaluated (0-based)
  std::size_t samples = 0;  ///< training-sample budget at that rung
  double mlogq = 0.0;       ///< cross-validated MLogQ at that rung
  double rmse_log = 0.0;
  std::string error;  ///< non-empty when the candidate failed to fit

  bool failed() const { return !error.empty(); }
};

struct TunerOptions {
  std::size_t max_trials = 24;  ///< rung-0 candidate count (grid cap / sample count)
  std::size_t folds = 3;        ///< cross-validation folds per rung
  std::size_t rungs = 3;        ///< successive-halving rounds (>= 1)
  double eta = 3.0;             ///< survivor fraction / budget growth per rung
  std::size_t min_rung_samples = 96;  ///< floor for the first rung's budget
  std::size_t threads = 1;      ///< worker pool size for candidate evaluation
  std::uint64_t seed = 42;
  /// Invoked after each rung for every evaluated candidate, in candidate
  /// order (deterministic; never from worker threads).
  std::function<void(const Trial&)> progress;
};

struct TuningOutcome {
  std::string family;
  std::vector<Trial> ranked;    ///< best first; eliminated candidates follow
  common::ModelSpec best_spec;  ///< winner applied to the base spec
  double best_mlogq = 0.0;      ///< winner's final-rung cross-validated MLogQ
  common::RegressorPtr model;   ///< winner refit on the full dataset
};

/// \brief The tools' default progress callback.
/// \param out stream receiving one line per evaluated candidate
///            ("rung R [N samples] config -> CV MLogQ x" / "-> failed: why").
/// \return a callback suitable for TunerOptions::progress.
std::function<void(const Trial&)> stream_progress(std::ostream& out);

/// \brief Successive-halving hyper-parameter search over any registered
///        model family (see the file comment for strategy and determinism).
class Tuner {
 public:
  /// \brief Builds a tuner with the given budget/parallelism options.
  /// \param options trial counts, rungs, folds, worker threads, and seed.
  explicit Tuner(TunerOptions options) : options_(std::move(options)) {}

  /// \brief Tunes `family` over its registered search space.
  /// \param family registry family tag (e.g. "cpr", "rf").
  /// \param base   ModelSpec template: parameter specs plus any pinned
  ///               hyper-parameters (pinned keys are kept fixed).
  /// \param data   full training dataset; rung budgets subsample it.
  /// \return ranked trials, the winning spec, and the winner refit on all
  ///         of `data`.
  TuningOutcome run(const std::string& family, const common::ModelSpec& base,
                    const common::Dataset& data) const;

  /// \brief Tunes `family` over an explicit space (CLI overrides, tests).
  /// \param family registry family tag.
  /// \param base   ModelSpec template as above.
  /// \param data   full training dataset.
  /// \param space  the axes to search instead of the registered space.
  /// \return ranked trials, the winning spec, and the refit winner.
  TuningOutcome run(const std::string& family, const common::ModelSpec& base,
                    const common::Dataset& data, const SearchSpace& space) const;

 private:
  TunerOptions options_;
};

}  // namespace cpr::tune
