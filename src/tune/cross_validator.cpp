#include "tune/cross_validator.hpp"

#include <algorithm>
#include <cmath>

#include "metrics/metrics.hpp"
#include "util/rng.hpp"

namespace cpr::tune {

std::vector<FoldSplit> kfold_splits(std::size_t n, std::size_t k, std::uint64_t seed) {
  CPR_CHECK_MSG(k >= 2, "k-fold cross-validation needs k >= 2 (got " << k << ")");
  CPR_CHECK_MSG(k <= n, "cannot split " << n << " rows into " << k << " folds");

  Rng rng(seed);
  const std::vector<std::size_t> permutation = rng.sample_without_replacement(n, n);

  std::vector<FoldSplit> folds(k);
  const std::size_t base = n / k;
  const std::size_t remainder = n % k;
  std::size_t offset = 0;
  for (std::size_t f = 0; f < k; ++f) {
    const std::size_t fold_size = base + (f < remainder ? 1 : 0);
    auto& fold = folds[f];
    fold.valid_rows.assign(permutation.begin() + static_cast<std::ptrdiff_t>(offset),
                           permutation.begin() +
                               static_cast<std::ptrdiff_t>(offset + fold_size));
    fold.train_rows.reserve(n - fold_size);
    fold.train_rows.insert(fold.train_rows.end(), permutation.begin(),
                           permutation.begin() + static_cast<std::ptrdiff_t>(offset));
    fold.train_rows.insert(fold.train_rows.end(),
                           permutation.begin() +
                               static_cast<std::ptrdiff_t>(offset + fold_size),
                           permutation.end());
    // Ascending order keeps the fit/eval row order independent of the
    // permutation layout (and makes leak checks in tests trivial).
    std::sort(fold.valid_rows.begin(), fold.valid_rows.end());
    std::sort(fold.train_rows.begin(), fold.train_rows.end());
    offset += fold_size;
  }
  return folds;
}

CvScore cross_validate(const std::string& family, const common::ModelSpec& spec,
                       const common::Dataset& data, const std::vector<FoldSplit>& folds) {
  CPR_CHECK_MSG(!folds.empty(), "cross_validate needs at least one fold");
  double abs_sum = 0.0;
  double sq_sum = 0.0;
  std::size_t held_out = 0;
  for (const auto& fold : folds) {
    auto model = common::ModelRegistry::instance().create(family, spec);
    model->fit(data.subset(fold.train_rows));
    const common::Dataset valid = data.subset(fold.valid_rows);
    const std::vector<double> predictions = model->predict_batch(valid.x);
    const double count = static_cast<double>(valid.size());
    abs_sum += metrics::mlogq(predictions, valid.y) * count;
    sq_sum += metrics::mlogq2(predictions, valid.y) * count;
    held_out += valid.size();
  }
  CvScore score;
  score.mlogq = abs_sum / static_cast<double>(held_out);
  score.rmse_log = std::sqrt(sq_sum / static_cast<double>(held_out));
  return score;
}

}  // namespace cpr::tune
