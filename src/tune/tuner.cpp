#include "tune/tuner.hpp"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <limits>
#include <ostream>
#include <sstream>
#include <thread>

#include "obs/profile.hpp"
#include "util/rng.hpp"
#include "util/table.hpp"

namespace cpr::tune {

namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

// Seed salts: keep the budget permutation, per-rung fold splits and the
// candidate sampler on disjoint streams of the one user-visible seed.
constexpr std::uint64_t kBudgetSalt = 0xb0d6e7;
constexpr std::uint64_t kFoldSalt = 0xf01d00;

/// Runs fn(0..count-1) on a fixed pool of `threads` workers. Tasks are
/// claimed via an atomic counter; any per-task state must be keyed by the
/// task index (the callers write results into index-addressed slots, so the
/// reduction order — and therefore the tuner output — is thread-count
/// independent).
template <typename Fn>
void parallel_indexed(std::size_t count, std::size_t threads, Fn&& fn) {
  threads = std::max<std::size_t>(1, std::min(threads, count));
  if (threads <= 1) {
    for (std::size_t i = 0; i < count; ++i) fn(i);
    return;
  }
  std::atomic<std::size_t> next{0};
  const auto worker = [&] {
    for (std::size_t i; (i = next.fetch_add(1)) < count;) fn(i);
  };
  std::vector<std::thread> pool;
  pool.reserve(threads - 1);
  for (std::size_t t = 0; t + 1 < threads; ++t) pool.emplace_back(worker);
  worker();
  for (auto& thread : pool) thread.join();
}

/// Strictly-increasing rung budgets ending at n: the final rung sees every
/// sample, each earlier rung 1/eta of the next (floored at
/// max(min_rung_samples, 2 * folds) so the smallest rung still supports a
/// k-fold split). Equal neighbors collapse, so tiny datasets degrade to
/// fewer (possibly one) rungs.
std::vector<std::size_t> rung_budgets(std::size_t n, const TunerOptions& options) {
  const std::size_t floor_samples =
      std::min(n, std::max(options.min_rung_samples, 2 * options.folds));
  std::vector<std::size_t> budgets(options.rungs);
  budgets.back() = n;
  for (std::size_t r = budgets.size() - 1; r-- > 0;) {
    const auto shrunk =
        static_cast<std::size_t>(std::ceil(static_cast<double>(budgets[r + 1]) / options.eta));
    budgets[r] = std::max(floor_samples, shrunk);
  }
  budgets.erase(std::unique(budgets.begin(), budgets.end()), budgets.end());
  return budgets;
}

/// Survivor order for ranking/elimination: healthy candidates by error,
/// failed ones last, ties broken by candidate index — total and
/// deterministic.
bool better_trial(const Trial& a, const Trial& b) {
  if (a.failed() != b.failed()) return !a.failed();
  if (a.mlogq != b.mlogq) return a.mlogq < b.mlogq;
  return a.index < b.index;
}

}  // namespace

std::function<void(const Trial&)> stream_progress(std::ostream& out) {
  return [&out](const Trial& trial) {
    // Build the complete line first and write it with one << so progress
    // from interleaved sources can never split a line mid-way.
    std::ostringstream line;
    line << "  rung " << trial.rung << " [" << trial.samples << " samples] "
         << trial.config << " -> "
         << (trial.failed() ? "failed: " + trial.error
                            : "CV MLogQ " + Table::fmt(trial.mlogq, 4))
         << "\n";
    out << line.str();
  };
}

TuningOutcome Tuner::run(const std::string& family, const common::ModelSpec& base,
                         const common::Dataset& data) const {
  return run(family, base, data,
             SearchSpace(common::ModelRegistry::instance().search_space(family, base)));
}

TuningOutcome Tuner::run(const std::string& family, const common::ModelSpec& base,
                         const common::Dataset& data, const SearchSpace& space) const {
  CPR_CHECK_MSG(common::ModelRegistry::instance().has_family(family),
                "unknown model family '" << family << "'");
  CPR_CHECK_MSG(options_.rungs >= 1, "need at least one rung");
  CPR_CHECK_MSG(options_.eta > 1.0, "eta must exceed 1");
  CPR_CHECK_MSG(data.size() >= 2 * options_.folds,
                "too few samples (" << data.size() << ") for " << options_.folds
                                    << "-fold tuning");

  const std::vector<Candidate> candidates =
      space.materialize(options_.max_trials, options_.seed);
  std::vector<Trial> trials(candidates.size());
  for (std::size_t i = 0; i < candidates.size(); ++i) {
    trials[i].index = i;
    trials[i].candidate = candidates[i];
    trials[i].config = candidates[i].label();
  }

  // One fixed shuffled row order; rung budgets take prefixes of it, so every
  // rung's sample set nests inside the next rung's.
  Rng budget_rng(hash_combine(options_.seed, kBudgetSalt));
  const std::vector<std::size_t> row_order =
      budget_rng.sample_without_replacement(data.size(), data.size());
  const std::vector<std::size_t> budgets = rung_budgets(data.size(), options_);

  std::vector<std::size_t> survivors(candidates.size());
  for (std::size_t i = 0; i < survivors.size(); ++i) survivors[i] = i;

  for (std::size_t r = 0; r < budgets.size(); ++r) {
    std::vector<std::size_t> rows(row_order.begin(),
                                  row_order.begin() + static_cast<std::ptrdiff_t>(budgets[r]));
    std::sort(rows.begin(), rows.end());
    const common::Dataset rung_data = data.subset(rows);
    const std::vector<FoldSplit> folds =
        kfold_splits(budgets[r], options_.folds, hash_combine(options_.seed, kFoldSalt + r));

    CPR_PROFILE_SCOPE("tune_rung");
    parallel_indexed(survivors.size(), options_.threads, [&](std::size_t s) {
      Trial& trial = trials[survivors[s]];
      trial.rung = r;
      trial.samples = budgets[r];
      try {
        const common::ModelSpec spec = trial.candidate.apply_to(base);
        const CvScore score = cross_validate(family, spec, rung_data, folds);
        // A diverged fit (e.g. an exploding learning rate) can yield NaN
        // without throwing; treat it as a failure — NaN scores would both
        // break the strict weak ordering below and crown a broken winner.
        CPR_CHECK_MSG(std::isfinite(score.mlogq) && std::isfinite(score.rmse_log),
                      "candidate '" << trial.config
                                    << "': non-finite cross-validation error");
        trial.mlogq = score.mlogq;
        trial.rmse_log = score.rmse_log;
        trial.error.clear();
      } catch (const std::exception& e) {
        trial.mlogq = kInf;
        trial.rmse_log = kInf;
        trial.error = e.what();
      }
    });

    if (options_.progress) {
      for (const std::size_t index : survivors) options_.progress(trials[index]);
    }

    // Keep the top 1/eta (at least one healthy candidate) for the next rung.
    std::sort(survivors.begin(), survivors.end(), [&](std::size_t a, std::size_t b) {
      return better_trial(trials[a], trials[b]);
    });
    if (r + 1 < budgets.size()) {
      auto keep = static_cast<std::size_t>(std::ceil(
          static_cast<double>(survivors.size()) / options_.eta));
      keep = std::max<std::size_t>(1, std::min(keep, survivors.size()));
      survivors.resize(keep);
      // Drop failed candidates from later rungs (unless nothing is healthy,
      // which the final winner check reports with the first fit error).
      const auto healthy = static_cast<std::size_t>(
          std::count_if(survivors.begin(), survivors.end(),
                        [&](std::size_t index) { return !trials[index].failed(); }));
      if (healthy > 0) survivors.resize(healthy);
      std::sort(survivors.begin(), survivors.end());
    }
  }

  // Rank: healthy trials first (later-rung survivors before earlier
  // eliminations, then by error), failed trials last. Ordering failures
  // below lower-rung healthy candidates means a survivor that only breaks
  // at the full budget falls back to the best configuration that actually
  // fit, instead of aborting the whole tune.
  std::vector<Trial> ranked = trials;
  std::sort(ranked.begin(), ranked.end(), [](const Trial& a, const Trial& b) {
    if (a.failed() != b.failed()) return !a.failed();
    if (a.rung != b.rung) return a.rung > b.rung;
    return better_trial(a, b);
  });
  CPR_CHECK_MSG(!ranked.front().failed(),
                "tuning '" << family << "' failed: every candidate errored; first: "
                           << ranked.front().error);

  TuningOutcome outcome;
  outcome.family = family;
  outcome.best_spec = ranked.front().candidate.apply_to(base);
  outcome.best_mlogq = ranked.front().mlogq;
  outcome.ranked = std::move(ranked);
  outcome.model = common::ModelRegistry::instance().create(family, outcome.best_spec);
  {
    CPR_PROFILE_SCOPE("tune_refit");
    outcome.model->fit(data);
  }
  return outcome;
}

}  // namespace cpr::tune
