#pragma once
// The newline-delimited serving protocol spoken by cpr_serve.
//
// Request grammar (one request per line, tokens separated by spaces):
//   PREDICT <model> <v1,v2,...>   predict one configuration
//   OBSERVE <model> <v1,v2,...> <seconds>
//                                 stream one measured data point (buffered
//                                 per model until the next refit)
//   REFIT <model>                 refit from the buffered observations on
//                                 the background trainer; replies when the
//                                 new generation is published
//   LOAD <model>                  force-(re)load <model>.cprm from the dir
//   UNLOAD <model>                drop the resident instance
//   STATS                         telemetry table
//   METRICS                       Prometheus text exposition
//   QUIT                          end the session
//   FRAME BINARY                  switch to binary framing (TCP only; the
//                                 transport intercepts it before dispatch)
//
// Responses: `OK ...` on success (`OK <seconds>` for PREDICT, with full
// round-trip precision; `OK observed ...`/`OK refit ...` for the online
// verbs), `ERR <reason>` on failure; STATS emits its table
// lines before the final `OK`; METRICS emits the Prometheus exposition
// lines before the final `OK`; the TCP front end may answer `BUSY` when
// admission limits shed a request (see kBusyReply). Parsing is strict and
// total: wrong arity, empty/NaN/non-numeric values, and unknown commands
// throw CheckError with a protocol-level message — the server turns those
// into ERR replies, so a malformed line can never take the process down.
//
// Binary framing (docs/SERVE_PROTOCOL.md "Binary framing"): after a
// `FRAME BINARY` negotiation each direction carries length-prefixed frames —
// a 4-byte little-endian unsigned payload length followed by that many
// payload bytes. Request payloads are one request in the exact line grammar
// above (no trailing newline); reply payloads are one complete reply text
// (STATS ships its whole table in a single frame). encode_frame/FrameDecoder
// below are the one codec both the server and the bench/test clients use.

#include <cstdint>
#include <string>
#include <string_view>

#include "grid/parameter.hpp"

namespace cpr::serve {

enum class RequestKind { Predict, Observe, Refit, Load, Unload, Stats, Metrics, Quit };

/// Reply sent by the TCP front end when admission control sheds a request
/// (global in-flight cap or per-connection write backlog exceeded). The
/// request was NOT executed; a client may retry after backing off.
inline constexpr const char* kBusyReply = "BUSY";

/// Frames larger than this are a fatal framing violation: a handful of KB
/// covers every legal request line, so a bigger length prefix means the
/// stream is corrupt (or hostile) and resynchronisation is impossible.
inline constexpr std::uint32_t kMaxFrameBytes = 1u << 20;

/// True when `line` is exactly the binary-framing negotiation request
/// (`FRAME BINARY`, any run of blanks between tokens). Transports that
/// support framing intercept this before Server::handle_line; elsewhere the
/// verb falls through to parse_request's FRAME diagnostic.
bool is_frame_binary_request(const std::string& line);

/// Wraps `payload` in a binary frame: 4-byte little-endian length + bytes.
/// Throws CheckError when payload exceeds kMaxFrameBytes.
std::string encode_frame(std::string_view payload);

/// Incremental decoder for a stream of binary frames. feed() bytes as they
/// arrive, then call next() until it returns false. A violation (zero or
/// oversized length prefix) throws CheckError and poisons the decoder — the
/// stream cannot be resynchronised, the connection must be closed.
class FrameDecoder {
 public:
  explicit FrameDecoder(std::uint32_t max_frame_bytes = kMaxFrameBytes);

  /// Appends raw bytes from the transport.
  void feed(std::string_view bytes);

  /// Extracts the next complete frame payload into `payload`; returns false
  /// when no complete frame is buffered yet. Throws CheckError on a framing
  /// violation (and on any call after one).
  bool next(std::string& payload);

  /// Bytes buffered but not yet returned (incomplete frame tail).
  std::size_t pending_bytes() const { return buffer_.size(); }

 private:
  std::uint32_t max_frame_bytes_;
  bool poisoned_ = false;
  std::string buffer_;
};

struct Request {
  RequestKind kind;
  std::string model;     ///< PREDICT/OBSERVE/REFIT/LOAD/UNLOAD only
  grid::Config values;   ///< PREDICT/OBSERVE only
  double seconds = 0.0;  ///< OBSERVE only: the measured execution time
};

/// Parses one request line; throws CheckError on any grammar violation.
Request parse_request(const std::string& line);

/// `OK <seconds>` with enough digits that the double round-trips exactly —
/// a client parsing the reply recovers the bitwise prediction.
std::string format_prediction(double seconds);

/// `ERR <reason>`; strips the CPR_CHECK expression/location prefix from
/// `what` so clients see only the human-readable cause.
std::string format_error(const std::string& what);

}  // namespace cpr::serve
