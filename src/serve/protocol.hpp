#pragma once
// The newline-delimited serving protocol spoken by cpr_serve.
//
// Request grammar (one request per line, tokens separated by spaces):
//   PREDICT <model> <v1,v2,...>   predict one configuration
//   LOAD <model>                  force-(re)load <model>.cprm from the dir
//   UNLOAD <model>                drop the resident instance
//   STATS                         telemetry table
//   QUIT                          end the session
//
// Responses: `OK ...` on success (`OK <seconds>` for PREDICT, with full
// round-trip precision), `ERR <reason>` on failure; STATS emits its table
// lines before the final `OK`. Parsing is strict and total: wrong arity,
// empty/NaN/non-numeric values, and unknown commands throw CheckError with
// a protocol-level message — the server turns those into ERR replies, so a
// malformed line can never take the process down.

#include <string>

#include "grid/parameter.hpp"

namespace cpr::serve {

enum class RequestKind { Predict, Load, Unload, Stats, Quit };

struct Request {
  RequestKind kind;
  std::string model;    ///< PREDICT/LOAD/UNLOAD only
  grid::Config values;  ///< PREDICT only
};

/// Parses one request line; throws CheckError on any grammar violation.
Request parse_request(const std::string& line);

/// `OK <seconds>` with enough digits that the double round-trips exactly —
/// a client parsing the reply recovers the bitwise prediction.
std::string format_prediction(double seconds);

/// `ERR <reason>`; strips the CPR_CHECK expression/location prefix from
/// `what` so clients see only the human-readable cause.
std::string format_error(const std::string& what);

}  // namespace cpr::serve
