#include "serve/server.hpp"

#include <sstream>

namespace cpr::serve {

Server::Server(ServerOptions options)
    : options_(options),
      store_(options.model_dir, options.reload_check),
      cache_(options.cache_capacity, options.cache_shards),
      batcher_(options.batcher) {}

std::string Server::handle_predict(const Request& request) {
  const auto start = std::chrono::steady_clock::now();
  const ModelHandle model = store_.acquire(request.model);
  CPR_CHECK_MSG(request.values.size() == model->model->input_dims(),
                "model '" << request.model << "' expects "
                          << model->model->input_dims() << " values, got "
                          << request.values.size());

  const std::string key =
      cache_.enabled()
          ? PredictionCache::make_key(model->name, model->generation, request.values)
          : std::string();
  double prediction = 0.0;
  if (const auto cached = cache_.get(key)) {
    prediction = *cached;
  } else {
    prediction = batcher_.submit(model, request.values).get();
    cache_.put(key, prediction);
  }
  stats_.record_predict(
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start).count());
  return format_prediction(prediction);
}

Server::Reply Server::handle_line(const std::string& line) {
  Reply reply;
  try {
    const Request request = parse_request(line);
    switch (request.kind) {
      case RequestKind::Predict:
        reply.text = handle_predict(request);
        break;
      case RequestKind::Load: {
        const ModelHandle model = store_.load(request.model);
        std::ostringstream os;
        os << "OK loaded " << model->name << " type=" << model->model->type_tag()
           << " dims=" << model->model->input_dims()
           << " bytes=" << model->model->model_size_bytes();
        reply.text = os.str();
        break;
      }
      case RequestKind::Unload:
        store_.unload(request.model);
        reply.text = "OK unloaded " + request.model;
        break;
      case RequestKind::Stats: {
        const Table table = render_stats_table(stats_.snapshot(), cache_.counters(),
                                               batcher_.stats(), store_.loaded_names());
        std::ostringstream os;
        table.print(os);
        os << "OK";
        reply.text = os.str();
        break;
      }
      case RequestKind::Quit:
        reply.text = "OK bye";
        reply.quit = true;
        break;
    }
  } catch (const std::exception& e) {
    stats_.record_error();
    reply.text = format_error(e.what());
  }
  return reply;
}

}  // namespace cpr::serve
