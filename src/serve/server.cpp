#include "serve/server.hpp"

#include <sstream>

namespace cpr::serve {

namespace {

const char* verb_name(RequestKind kind) {
  switch (kind) {
    case RequestKind::Predict: return "PREDICT";
    case RequestKind::Observe: return "OBSERVE";
    case RequestKind::Refit: return "REFIT";
    case RequestKind::Load: return "LOAD";
    case RequestKind::Unload: return "UNLOAD";
    case RequestKind::Stats: return "STATS";
    case RequestKind::Metrics: return "METRICS";
    case RequestKind::Quit: return "QUIT";
  }
  return "?";
}

}  // namespace

MicroBatcher::Options Server::batcher_options() {
  MicroBatcher::Options batcher = options_.batcher;
  batcher.batch_wait_histogram = &stats_.batch_wait();
  batcher.predict_histogram = &stats_.predict_time();
  return batcher;
}

RefitTrainer::Hooks Server::trainer_hooks() {
  RefitTrainer::Hooks hooks;
  hooks.refits = &stats_.refits();
  hooks.failures = &stats_.refit_failures();
  hooks.duration = &stats_.refit_duration();
  return hooks;
}

Server::Server(ServerOptions options)
    : options_(options),
      store_(options.model_dir, options.reload_check, options.observe_buffer),
      cache_(options.cache_capacity, options.cache_shards),
      stats_(registry_),
      batcher_(batcher_options()),
      drift_(options.drift_window),
      trainer_(store_, trainer_hooks()) {
  traces_.set_sample_every(options_.trace_sample);
  // Component counters owned elsewhere surface in METRICS as render-time
  // callbacks; all the underlying accessors are thread-safe.
  using Kind = obs::Registry::CallbackKind;
  registry_.callback("cpr_cache_hits_total", "prediction cache hits", Kind::Counter,
                     [this] { return static_cast<double>(cache_.counters().hits); });
  registry_.callback("cpr_cache_misses_total", "prediction cache misses",
                     Kind::Counter,
                     [this] { return static_cast<double>(cache_.counters().misses); });
  registry_.callback(
      "cpr_cache_evictions_total", "prediction cache LRU evictions", Kind::Counter,
      [this] { return static_cast<double>(cache_.counters().evictions); });
  registry_.callback("cpr_cache_entries", "prediction cache resident entries",
                     Kind::Gauge,
                     [this] { return static_cast<double>(cache_.counters().entries); });
  registry_.callback(
      "cpr_batch_requests_total", "requests accepted by the micro-batcher",
      Kind::Counter,
      [this] { return static_cast<double>(batcher_.stats().submitted); });
  registry_.callback("cpr_batches_total", "predict_batch calls issued",
                     Kind::Counter,
                     [this] { return static_cast<double>(batcher_.stats().batches); });
  registry_.callback(
      "cpr_batch_max_size", "largest batch executed so far", Kind::Gauge,
      [this] { return static_cast<double>(batcher_.stats().max_batch_seen); });
  registry_.callback("cpr_models_loaded", "models currently resident", Kind::Gauge,
                     [this] { return static_cast<double>(store_.loaded_names().size()); });
  registry_.callback(
      "cpr_observations_buffered", "observations pending the next refit",
      Kind::Gauge,
      [this] { return static_cast<double>(store_.buffered_observations()); });
  registry_.callback(
      "cpr_observations_dropped_total",
      "observations dropped because a model's buffer was full", Kind::Counter,
      [this] { return static_cast<double>(store_.dropped_observations()); });
  registry_.callback(
      "cpr_drift_abs_log_error",
      "rolling mean |log(predicted/observed)| over recent OBSERVEs", Kind::Gauge,
      [this] { return drift_.snapshot().abs_log_error; });
  registry_.callback(
      "cpr_drift_signed_log_error",
      "rolling mean log(predicted/observed) over recent OBSERVEs (bias)",
      Kind::Gauge, [this] { return drift_.snapshot().signed_log_error; });
}

std::string Server::handle_observe(const Request& request) {
  const ModelStore::ObserveResult result =
      store_.observe(request.model, request.values, request.seconds);
  // Drift telemetry: what the resident generation would have predicted for
  // the configuration whose true cost just arrived.
  drift_.record(result.handle->model->predict(request.values), request.seconds);
  stats_.record_observe();
  if (options_.refit_after > 0 && result.buffered >= options_.refit_after) {
    // Fire-and-forget: the trainer coalesces bursts into one queued job,
    // and that refit drains the whole buffer when it runs.
    trainer_.request(request.model);
  }
  std::ostringstream os;
  os << "OK observed " << request.model << " buffered=" << result.buffered;
  return os.str();
}

std::string Server::handle_refit(const Request& request) {
  // The refit runs on the trainer thread; only this request waits for it.
  // Concurrent PREDICTs keep serving the old generation until the publish.
  const RefitTrainer::Outcome outcome = trainer_.request(request.model).get();
  CPR_CHECK_MSG(outcome.ok, "refit failed — " << outcome.error);
  std::ostringstream os;
  os << "OK refit " << request.model << " generation=" << outcome.generation
     << " observations=" << outcome.observations;
  return os.str();
}

std::string Server::handle_predict(const Request& request,
                                   const obs::TraceHandle& trace,
                                   obs::SpanTimer& span) {
  const auto start = std::chrono::steady_clock::now();
  const ModelHandle model = store_.acquire(request.model);
  CPR_CHECK_MSG(request.values.size() == model->model->input_dims(),
                "model '" << request.model << "' expects "
                          << model->model->input_dims() << " values, got "
                          << request.values.size());

  const std::string key =
      cache_.enabled()
          ? PredictionCache::make_key(model->name, model->generation, request.values)
          : std::string();
  double prediction = 0.0;
  if (const auto cached = cache_.get(key)) {
    prediction = *cached;
    span.arg("cache", "hit");
  } else {
    span.arg("cache", "miss");
    prediction = batcher_.submit(model, request.values, trace).get();
    cache_.put(key, prediction);
  }
  stats_.record_predict(
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start).count());
  return format_prediction(prediction);
}

Server::Reply Server::handle_line(const std::string& line) {
  const obs::TraceHandle trace = traces_.maybe_start();
  Reply reply = handle_line(line, trace);
  traces_.finish(trace);
  return reply;
}

Server::Reply Server::handle_line(const std::string& line,
                                  const obs::TraceHandle& trace) {
  Reply reply;
  try {
    const Request request = parse_request(line);
    obs::SpanTimer span(trace, "handle");
    span.arg("verb", verb_name(request.kind));
    switch (request.kind) {
      case RequestKind::Predict:
        reply.text = handle_predict(request, trace, span);
        break;
      case RequestKind::Observe:
        reply.text = handle_observe(request);
        break;
      case RequestKind::Refit:
        reply.text = handle_refit(request);
        break;
      case RequestKind::Load: {
        const ModelHandle model = store_.load(request.model);
        std::ostringstream os;
        os << "OK loaded " << model->name << " type=" << model->model->type_tag()
           << " dims=" << model->model->input_dims()
           << " bytes=" << model->model->model_size_bytes();
        reply.text = os.str();
        break;
      }
      case RequestKind::Unload:
        store_.unload(request.model);
        reply.text = "OK unloaded " + request.model;
        break;
      case RequestKind::Stats: {
        const Table table = render_stats_table(
            stats_.snapshot(), cache_.counters(), batcher_.stats(),
            store_.loaded_names(), drift_.snapshot(), store_.buffered_observations());
        std::ostringstream os;
        table.print(os);
        os << "OK";
        reply.text = os.str();
        break;
      }
      case RequestKind::Metrics:
        reply.text = metrics_text() + "OK";
        break;
      case RequestKind::Quit:
        reply.text = "OK bye";
        reply.quit = true;
        break;
    }
  } catch (const std::exception& e) {
    stats_.record_error();
    reply.text = format_error(e.what());
  }
  return reply;
}

}  // namespace cpr::serve
