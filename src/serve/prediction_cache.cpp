#include "serve/prediction_cache.hpp"

#include <cmath>
#include <cstdio>

#include "util/check.hpp"

namespace cpr::serve {

PredictionCache::PredictionCache(std::size_t capacity, std::size_t shards)
    : capacity_(capacity) {
  if (capacity == 0) return;  // disabled
  CPR_CHECK_MSG(shards > 0, "prediction cache needs at least one shard");
  shards = std::min(shards, capacity);  // every shard holds >= 1 entry
  shard_capacity_ = (capacity + shards - 1) / shards;
  shards_.reserve(shards);
  for (std::size_t i = 0; i < shards; ++i) shards_.push_back(std::make_unique<Shard>());
}

std::string PredictionCache::make_key(std::string_view model, std::uint64_t generation,
                                      const grid::Config& values) {
  std::string key;
  key.reserve(model.size() + 8 + values.size() * 16);
  key.append(model);
  key.push_back('#');
  key.append(std::to_string(generation));
  char buffer[32];
  for (double v : values) {
    key.push_back(';');
    // NaN compares unequal to everything, so any NaN payload/sign would
    // render ("nan"/"-nan") into a key that can only ever miss — collapse
    // them all into one token instead of leaking formatter variants.
    if (std::isnan(v)) {
      key.append("nan");
      continue;
    }
    // -0.0 == 0.0 and predicts identically, but %.12g renders "-0" vs "0";
    // normalize so the two never split into distinct entries.
    if (v == 0.0) v = 0.0;
    // 12 significant digits: textually-identical requests always collapse,
    // while sub-1e-12 relative float noise cannot split cache entries.
    std::snprintf(buffer, sizeof(buffer), "%.12g", v);
    key.append(buffer);
  }
  return key;
}

PredictionCache::Shard& PredictionCache::shard_for(const std::string& key) {
  return *shards_[std::hash<std::string>{}(key) % shards_.size()];
}

std::optional<double> PredictionCache::get(const std::string& key) {
  if (!enabled()) return std::nullopt;
  Shard& shard = shard_for(key);
  std::lock_guard<std::mutex> lock(shard.mu);
  const auto it = shard.index.find(key);
  if (it == shard.index.end()) {
    ++shard.misses;
    return std::nullopt;
  }
  ++shard.hits;
  shard.lru.splice(shard.lru.begin(), shard.lru, it->second);  // refresh recency
  return it->second->second;
}

void PredictionCache::put(const std::string& key, double value) {
  if (!enabled()) return;
  Shard& shard = shard_for(key);
  std::lock_guard<std::mutex> lock(shard.mu);
  const auto it = shard.index.find(key);
  if (it != shard.index.end()) {
    it->second->second = value;
    shard.lru.splice(shard.lru.begin(), shard.lru, it->second);
    return;
  }
  shard.lru.emplace_front(key, value);
  shard.index[key] = shard.lru.begin();
  if (shard.lru.size() > shard_capacity_) {
    shard.index.erase(shard.lru.back().first);
    shard.lru.pop_back();
    ++shard.evictions;
  }
}

PredictionCache::Counters PredictionCache::counters() const {
  Counters totals;
  totals.capacity = capacity_;
  totals.shards = shards_.size();
  for (const auto& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mu);
    totals.hits += shard->hits;
    totals.misses += shard->misses;
    totals.evictions += shard->evictions;
    totals.entries += shard->lru.size();
  }
  return totals;
}

}  // namespace cpr::serve
