#pragma once
// A minimal epoll reactor for the TCP serving front end.
//
// One EventLoop owns one epoll instance and runs on one thread: fds are
// registered with a callback that fires with the ready-event mask, and
// other threads hand work to the loop thread through post() (a mutex-guarded
// task list flushed via an eventfd wakeup). All connection state in
// tcp_server.cpp is mutated only from its owning loop thread — cross-thread
// completion (the dispatch pool finishing a request) goes through post(),
// which is what keeps the per-connection state machines lock-free and the
// whole front end clean under ThreadSanitizer.
//
// The loop is level-triggered: callbacks drain their fd until EAGAIN, and
// writability interest (EPOLLOUT) is toggled explicitly by the connection
// state machine only while a write buffer is pending, so an idle loop
// never spins.

#include <atomic>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

namespace cpr::serve {

class EventLoop {
 public:
  /// Ready-event callback; `events` is the raw epoll mask (EPOLLIN etc.).
  using Callback = std::function<void(std::uint32_t events)>;

  /// Creates the epoll instance and the wakeup eventfd; throws CheckError
  /// when either kernel resource cannot be allocated.
  EventLoop();
  ~EventLoop();

  EventLoop(const EventLoop&) = delete;
  EventLoop& operator=(const EventLoop&) = delete;

  /// Registers `fd` for `events`; the callback fires on the loop thread.
  /// The fd stays owned by the caller (remove() does not close it).
  void add(int fd, std::uint32_t events, Callback callback);

  /// Changes the event interest of a registered fd.
  void modify(int fd, std::uint32_t events);

  /// Unregisters a fd; safe to call from its own callback.
  void remove(int fd);

  /// Runs the loop on the calling thread until stop().
  void run();

  /// Asks the loop to exit; thread-safe, returns immediately.
  void stop();

  /// Queues `task` to run on the loop thread (thread-safe); tasks run
  /// between epoll batches in post order. Posting after stop() is a no-op
  /// beyond the final drain.
  void post(std::function<void()> task);

  /// True when called from the thread currently inside run().
  bool in_loop_thread() const;

 private:
  void wake();
  void drain_posted();

  int epoll_fd_ = -1;
  int wake_fd_ = -1;
  std::atomic<bool> stopping_{false};
  std::atomic<std::thread::id> loop_thread_{};
  // fd -> callback; epoll events carry the fd, and every dispatch re-looks
  // the fd up so a callback that remove()s a peer fd mid-batch can never
  // reach a dangling callback. Callbacks are held by shared_ptr and pinned
  // for the duration of each invocation, so a callback that remove()s its
  // OWN fd (connection close) does not destroy itself mid-call.
  std::map<int, std::shared_ptr<Callback>> callbacks_;
  std::mutex posted_mu_;
  std::vector<std::function<void()>> posted_;
};

}  // namespace cpr::serve
