#pragma once
// Thread-safe resident-model store for the serving layer.
//
// Models live in a directory as `<name>.cprm` registry archives
// (core/model_file). acquire() lazily loads a model the first time it is
// requested and hands out ref-counted handles: a model UNLOADed or
// hot-reloaded while requests are in flight stays alive until the last
// handle drops, so inference never races file-system churn. Every loaded
// instance carries a store-unique generation number; the prediction cache
// keys on it, which turns reload-invalidation into plain LRU aging instead
// of a cross-shard purge.

#include <chrono>
#include <cstdint>
#include <filesystem>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "common/regressor.hpp"

namespace cpr::serve {

/// One immutable loaded-model instance. Concurrent predict()/predict_batch()
/// on the shared Regressor is safe: inference is const with no hidden state.
struct LoadedModel {
  std::string name;           ///< store name (archive stem)
  std::string path;           ///< archive the instance was loaded from
  std::uint64_t generation;   ///< store-unique, bumps on every (re)load
  std::filesystem::file_time_type mtime;  ///< archive mtime at load
  common::RegressorPtr model;
};

using ModelHandle = std::shared_ptr<const LoadedModel>;

class ModelStore {
 public:
  /// `reload_check` throttles the hot-reload stat(): a model's archive
  /// mtime is re-checked at most once per interval (zero = every acquire).
  explicit ModelStore(std::string directory,
                      std::chrono::milliseconds reload_check = std::chrono::milliseconds(100));

  /// Returns a handle to `name`, loading `<dir>/<name>.cprm` on first use
  /// and reloading it when the archive changed on disk since. Throws
  /// CheckError on an unknown model (missing/corrupt archive) or a name
  /// containing path components.
  ModelHandle acquire(const std::string& name);

  /// Forces a fresh load of `name` (LOAD command): always re-reads the
  /// archive and replaces any resident instance.
  ModelHandle load(const std::string& name);

  /// Drops the resident instance (UNLOAD command); in-flight handles keep
  /// it alive. Throws CheckError when `name` is not loaded.
  void unload(const std::string& name);

  /// Names currently resident, sorted.
  std::vector<std::string> loaded_names() const;

  /// Archive stems available in the model directory, sorted.
  std::vector<std::string> available() const;

  const std::string& directory() const { return directory_; }

 private:
  struct Entry {
    ModelHandle handle;
    std::chrono::steady_clock::time_point last_check;  ///< of the mtime stat
  };

  /// Reads + deserializes the archive for `name`. Pure I/O — called with
  /// `mu_` released so a slow load never stalls serving of resident models.
  /// The generation is assigned at publish time.
  std::shared_ptr<LoadedModel> load_archive(const std::string& name) const;

  /// Registers a freshly loaded instance under `mu_`. When `force` is
  /// false and the resident instance is no longer `expected_current`
  /// (a concurrent load won the race), the resident one is returned and
  /// `loaded` is discarded — callers never publish stale duplicates.
  ModelHandle publish(std::shared_ptr<LoadedModel> loaded,
                      const LoadedModel* expected_current, bool force);

  std::string directory_;
  std::chrono::milliseconds reload_check_;
  mutable std::mutex mu_;
  std::map<std::string, Entry> entries_;
  std::uint64_t next_generation_ = 1;
};

}  // namespace cpr::serve
