#pragma once
// Thread-safe resident-model store for the serving layer.
//
// Models live in a directory as `<name>.cprm` registry archives
// (core/model_file). acquire() lazily loads a model the first time it is
// requested and hands out ref-counted handles: a model UNLOADed or
// hot-reloaded while requests are in flight stays alive until the last
// handle drops, so inference never races file-system churn. Every loaded
// instance carries a store-unique generation number; the prediction cache
// keys on it, which turns reload-invalidation into plain LRU aging instead
// of a cross-shard purge.
//
// Online learning (the OBSERVE/REFIT verbs) also lives here: observe()
// appends measured (configuration, seconds) pairs to a bounded per-model
// buffer, and refit() — called from the background trainer thread, never a
// request thread — drains that buffer into a clone of the resident model,
// warm-refreshes it, and publishes the result as a new generation. The
// resident instance is never mutated: concurrent predicts keep reading it
// until the atomic publish, and their ref-counted handles stay valid after.

#include <chrono>
#include <cstdint>
#include <deque>
#include <filesystem>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "common/regressor.hpp"

namespace cpr::serve {

/// One immutable loaded-model instance. Concurrent predict()/predict_batch()
/// on the shared Regressor is safe: inference is const with no hidden state.
struct LoadedModel {
  std::string name;           ///< store name (archive stem)
  std::string path;           ///< archive the instance was loaded from
  std::uint64_t generation;   ///< store-unique, bumps on every (re)load
  std::filesystem::file_time_type mtime;  ///< archive mtime at load
  std::uintmax_t size = 0;    ///< archive byte size at load (reload detection)
  common::RegressorPtr model;
};

using ModelHandle = std::shared_ptr<const LoadedModel>;

/// One measured data point streamed in through OBSERVE.
struct Observation {
  grid::Config x;
  double seconds = 0.0;
};

class ModelStore {
 public:
  /// `reload_check` throttles the hot-reload stat(): a model's archive
  /// mtime is re-checked at most once per interval (zero = every acquire).
  /// `observe_buffer` bounds the per-model observation buffer; once full,
  /// the oldest pending observation is dropped (and counted) per append.
  explicit ModelStore(std::string directory,
                      std::chrono::milliseconds reload_check = std::chrono::milliseconds(100),
                      std::size_t observe_buffer = 4096);

  /// Returns a handle to `name`, loading `<dir>/<name>.cprm` on first use
  /// and reloading it when the archive changed on disk since — detected as
  /// a change of (mtime, byte size), so a rewrite within the file system's
  /// mtime granularity is still picked up. Throws CheckError on an unknown
  /// model (missing/corrupt archive) or a name containing path components.
  ModelHandle acquire(const std::string& name);

  /// Forces a fresh load of `name` (LOAD command): always re-reads the
  /// archive and replaces any resident instance.
  ModelHandle load(const std::string& name);

  /// Drops the resident instance (UNLOAD command); in-flight handles keep
  /// it alive. Pending observations for the model are discarded too.
  /// Throws CheckError when `name` is not loaded.
  void unload(const std::string& name);

  struct ObserveResult {
    ModelHandle handle;        ///< resident instance the observation targets
    std::size_t buffered = 0;  ///< pending observations after the append
  };

  /// Buffers one observation for `name` (OBSERVE command), lazily loading
  /// the model like acquire(). Throws CheckError when the model's family
  /// does not support online observation, on a dimension mismatch, or on a
  /// non-positive/non-finite measurement. Buffered observations survive hot
  /// reloads and refits (they drain into the next refit) but not UNLOAD.
  ObserveResult observe(const std::string& name, const grid::Config& x, double seconds);

  struct RefitResult {
    ModelHandle handle;          ///< the freshly published generation
    std::size_t observations = 0;  ///< pending observations replayed into it
  };

  /// Drains the pending observations into a clone of the resident model,
  /// warm-refreshes it, and atomically publishes the clone as a new
  /// generation (REFIT command; runs on the background trainer thread).
  /// The clone is made through the registry archive round-trip, so the
  /// result is bitwise-identical to an offline model fed the same
  /// observations in the same order. A refit force-publishes: it wins over
  /// a concurrent disk reload of the same model. Observations that arrive
  /// while the refit is running stay buffered for the next one.
  RefitResult refit(const std::string& name);

  /// Pending (not yet refit) observations across all models — the
  /// cpr_observations_buffered gauge.
  std::size_t buffered_observations() const;

  /// Observations dropped because a model's buffer was full (lifetime).
  std::uint64_t dropped_observations() const;

  /// Names currently resident, sorted.
  std::vector<std::string> loaded_names() const;

  /// Archive stems available in the model directory, sorted.
  std::vector<std::string> available() const;

  const std::string& directory() const { return directory_; }

 private:
  struct Entry {
    ModelHandle handle;
    std::chrono::steady_clock::time_point last_check;  ///< of the reload stat
    std::deque<Observation> pending;  ///< bounded OBSERVE buffer
    std::uint64_t dropped = 0;        ///< lifetime buffer-overflow drops
  };

  /// Reads + deserializes the archive for `name`. Pure I/O — called with
  /// `mu_` released so a slow load never stalls serving of resident models.
  /// The generation is assigned at publish time.
  std::shared_ptr<LoadedModel> load_archive(const std::string& name) const;

  /// Registers a freshly loaded instance under `mu_`, preserving any
  /// pending observations for the name. When `force` is false and the
  /// resident instance is no longer `expected_current` (a concurrent load
  /// won the race), the resident one is returned and `loaded` is discarded
  /// — callers never publish stale duplicates.
  ModelHandle publish(std::shared_ptr<LoadedModel> loaded,
                      const LoadedModel* expected_current, bool force);

  std::string directory_;
  std::chrono::milliseconds reload_check_;
  std::size_t observe_buffer_;
  mutable std::mutex mu_;
  std::map<std::string, Entry> entries_;
  std::uint64_t next_generation_ = 1;
  std::uint64_t dropped_unloaded_ = 0;  ///< drops from since-unloaded models
};

}  // namespace cpr::serve
