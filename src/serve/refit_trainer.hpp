#pragma once
// The background refit trainer: one shared worker thread that executes
// ModelStore::refit() off the request path.
//
// request() enqueues a refit for a model and returns a shared_future every
// interested party can wait on: the REFIT verb blocks its own request on
// it (only that request — concurrent PREDICTs keep flowing, and the refit
// itself runs on the trainer thread), while the --refit-after auto-policy
// fires and forgets. Requests for a model that is already queued coalesce
// onto the pending job instead of piling up — an OBSERVE burst schedules
// exactly one refit, which drains the whole buffer when it runs. A request
// arriving while that model's refit is mid-flight starts a fresh job:
// observations recorded after the running refit snapshotted its buffer
// still get trained in.
//
// Refit failures never throw out of the trainer: the outcome carries the
// error text and the server renders it as a protocol ERR.

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <future>
#include <map>
#include <mutex>
#include <string>
#include <thread>

#include "obs/metrics.hpp"
#include "serve/model_store.hpp"

namespace cpr::serve {

class RefitTrainer {
 public:
  /// Result of one refit job, delivered through the shared_future.
  struct Outcome {
    bool ok = false;
    std::string error;             ///< failure cause when !ok
    std::uint64_t generation = 0;  ///< published generation when ok
    std::size_t observations = 0;  ///< buffered observations replayed
    double seconds = 0.0;          ///< refit wall time
  };

  /// Telemetry sinks recorded per completed job; any pointer may be null.
  struct Hooks {
    obs::Counter* refits = nullptr;        ///< successful refits
    obs::Counter* failures = nullptr;      ///< failed refits
    obs::Histogram* duration = nullptr;    ///< refit wall time
  };

  /// `store` must outlive the trainer; `hooks` sinks may be null.
  RefitTrainer(ModelStore& store, Hooks hooks);

  /// Fails every queued job with a shutdown outcome and joins the worker.
  ~RefitTrainer();

  RefitTrainer(const RefitTrainer&) = delete;
  RefitTrainer& operator=(const RefitTrainer&) = delete;

  /// Schedules a refit of `name` (coalescing with a queued one) and returns
  /// the future its outcome will arrive on. Never blocks on the refit.
  std::shared_future<Outcome> request(const std::string& name);

  /// Jobs completed so far (success or failure) — test/telemetry hook.
  std::uint64_t completed() const { return completed_.load(std::memory_order_relaxed); }

 private:
  struct Job {
    std::string name;
    std::shared_ptr<std::promise<Outcome>> promise;
    std::shared_future<Outcome> future;
  };

  void run();

  ModelStore& store_;
  Hooks hooks_;
  std::mutex mu_;
  std::condition_variable cv_;
  bool stop_ = false;
  std::deque<Job> queue_;
  /// Queued (not yet running) jobs by model, for request() coalescing.
  std::map<std::string, std::shared_future<Outcome>> queued_;
  std::atomic<std::uint64_t> completed_{0};
  std::thread worker_;  ///< last member: joins before the rest tears down
};

}  // namespace cpr::serve
