#include "serve/event_loop.hpp"

#include <cstring>

#include <sys/epoll.h>
#include <sys/eventfd.h>
#include <unistd.h>

#include "util/check.hpp"

namespace cpr::serve {

EventLoop::EventLoop() {
  epoll_fd_ = ::epoll_create1(EPOLL_CLOEXEC);
  CPR_CHECK_MSG(epoll_fd_ >= 0, "epoll_create1(): " << std::strerror(errno));
  wake_fd_ = ::eventfd(0, EFD_CLOEXEC | EFD_NONBLOCK);
  if (wake_fd_ < 0) {
    const int saved = errno;
    ::close(epoll_fd_);
    CPR_CHECK_MSG(false, "eventfd(): " << std::strerror(saved));
  }
  epoll_event event{};
  event.events = EPOLLIN;
  event.data.fd = wake_fd_;
  CPR_CHECK_MSG(::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, wake_fd_, &event) == 0,
                "epoll_ctl(ADD wake): " << std::strerror(errno));
}

EventLoop::~EventLoop() {
  ::close(wake_fd_);
  ::close(epoll_fd_);
}

void EventLoop::add(int fd, std::uint32_t events, Callback callback) {
  CPR_CHECK_MSG(
      callbacks_.emplace(fd, std::make_shared<Callback>(std::move(callback))).second,
      "fd " << fd << " is already registered with this loop");
  epoll_event event{};
  event.events = events;
  event.data.fd = fd;
  if (::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, fd, &event) != 0) {
    const int saved = errno;
    callbacks_.erase(fd);
    CPR_CHECK_MSG(false, "epoll_ctl(ADD " << fd << "): " << std::strerror(saved));
  }
}

void EventLoop::modify(int fd, std::uint32_t events) {
  epoll_event event{};
  event.events = events;
  event.data.fd = fd;
  CPR_CHECK_MSG(::epoll_ctl(epoll_fd_, EPOLL_CTL_MOD, fd, &event) == 0,
                "epoll_ctl(MOD " << fd << "): " << std::strerror(errno));
}

void EventLoop::remove(int fd) {
  if (callbacks_.erase(fd) == 0) return;
  // The fd may already be closed by the caller; a failing DEL is harmless.
  ::epoll_ctl(epoll_fd_, EPOLL_CTL_DEL, fd, nullptr);
}

void EventLoop::wake() {
  const std::uint64_t one = 1;
  // A full eventfd counter still wakes the loop; short writes cannot happen.
  [[maybe_unused]] const ssize_t n = ::write(wake_fd_, &one, sizeof(one));
}

void EventLoop::post(std::function<void()> task) {
  {
    std::lock_guard<std::mutex> lock(posted_mu_);
    posted_.push_back(std::move(task));
  }
  wake();
}

void EventLoop::drain_posted() {
  std::vector<std::function<void()>> tasks;
  {
    std::lock_guard<std::mutex> lock(posted_mu_);
    tasks.swap(posted_);
  }
  for (auto& task : tasks) task();
}

bool EventLoop::in_loop_thread() const {
  return loop_thread_.load(std::memory_order_acquire) == std::this_thread::get_id();
}

void EventLoop::run() {
  loop_thread_.store(std::this_thread::get_id(), std::memory_order_release);
  constexpr int kMaxEvents = 128;
  epoll_event events[kMaxEvents];
  while (!stopping_.load(std::memory_order_acquire)) {
    const int ready = ::epoll_wait(epoll_fd_, events, kMaxEvents, -1);
    if (ready < 0) {
      if (errno == EINTR) continue;
      CPR_CHECK_MSG(false, "epoll_wait(): " << std::strerror(errno));
    }
    for (int i = 0; i < ready; ++i) {
      const int fd = events[i].data.fd;
      if (fd == wake_fd_) {
        std::uint64_t count;
        while (::read(wake_fd_, &count, sizeof(count)) > 0) {
        }
        continue;
      }
      // Re-lookup per event: an earlier callback in this batch may have
      // removed this fd, in which case its stale readiness is dropped. The
      // shared_ptr copy keeps the callable alive even when it remove()s its
      // own fd from inside the call.
      const auto it = callbacks_.find(fd);
      if (it == callbacks_.end()) continue;
      const std::shared_ptr<Callback> callback = it->second;
      (*callback)(events[i].events);
    }
    drain_posted();
  }
  // Final drain so completions posted concurrently with stop() still run
  // (their connections get flushed by the shutdown path afterwards).
  drain_posted();
  loop_thread_.store(std::thread::id{}, std::memory_order_release);
}

void EventLoop::stop() {
  stopping_.store(true, std::memory_order_release);
  wake();
}

}  // namespace cpr::serve
