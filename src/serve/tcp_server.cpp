#include "serve/tcp_server.hpp"

#include <cstring>
#include <set>

#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/epoll.h>
#include <sys/socket.h>
#include <unistd.h>

#include "serve/protocol.hpp"
#include "util/check.hpp"
#include "util/log.hpp"

namespace cpr::serve {

namespace {

/// One parsed request awaiting its reply. The dispatch worker writes `text`
/// and `close_after`, then publishes with done.store(release); the loop
/// thread reads them only after done.load(acquire) — the sole cross-thread
/// handoff in the connection state machine.
struct Ticket {
  std::atomic<bool> done{false};
  std::string text;
  bool close_after = false;
  bool force_newline = false;  ///< the FRAME BINARY ack ships in old framing
  obs::TraceHandle trace;      ///< sampled at parse; null otherwise
  /// Dispatch-completion stamp for the flush histogram/span; written before
  /// the done.store(release), read after done.load(acquire). 0 = completed
  /// inline (BUSY/ack), which records no flush time.
  std::uint64_t done_ns = 0;
};

using TicketPtr = std::shared_ptr<Ticket>;

struct Connection {
  int fd = -1;
  std::size_t loop_index = 0;
  std::string rbuf;          ///< newline-mode accumulation
  FrameDecoder decoder;      ///< binary-mode accumulation
  std::string wbuf;          ///< bytes not yet accepted by the kernel
  std::size_t wbuf_offset = 0;  ///< flushed prefix of wbuf (amortized erase)
  std::deque<TicketPtr> pending;  ///< replies in request order
  bool binary = false;
  bool want_write = false;     ///< EPOLLOUT currently armed
  bool reading = true;         ///< state-machine intent to read
  bool reading_armed_ = true;  ///< EPOLLIN actually registered with epoll
  bool read_eof = false;       ///< peer half-closed; flush then close
  bool closing = false;        ///< QUIT / fatal error: close once flushed
  bool closed = false;

  std::size_t backlog() const { return wbuf.size() - wbuf_offset; }
};

using ConnPtr = std::shared_ptr<Connection>;

struct Work {
  TicketPtr ticket;
  std::string line;
  std::weak_ptr<Connection> conn;
  std::uint64_t enqueued_ns = 0;  ///< admission-wait start (parse time)
};

}  // namespace

struct TcpServer::Impl {
  Server& server;
  TcpServerOptions opts;
  int listen_fd = -1;

  std::vector<std::unique_ptr<EventLoop>> loops;
  std::vector<std::thread> loop_threads;
  /// Per-loop live-connection registry; touched only on the owning loop
  /// thread (shutdown reaches it through post()).
  std::vector<std::set<ConnPtr>> conns;
  std::size_t next_loop = 0;  ///< round-robin accept distribution (loop 0 only)

  std::mutex queue_mu;
  std::condition_variable queue_cv;
  std::deque<Work> queue;
  bool dispatch_stopping = false;
  std::vector<std::thread> dispatchers;

  std::atomic<std::size_t> inflight{0};
  std::atomic<std::size_t> open_conns{0};
  std::atomic<bool> draining{false};
  std::atomic<bool> shutdown_started{false};
  std::mutex done_mu;
  std::condition_variable done_cv;
  bool finished = false;

  Impl(Server& s, TcpServerOptions o) : server(s), opts(std::move(o)) {}

  // ----------------------------------------------------------- connection

  void update_interest(const ConnPtr& conn) {
    if (conn->closed) return;
    const bool want_write = conn->backlog() > 0;
    const bool want_read =
        conn->reading && !conn->read_eof && !conn->closing && !draining.load();
    if (want_write == conn->want_write && want_read == conn->reading_armed_) return;
    std::uint32_t events = 0;
    if (want_read) events |= EPOLLIN;
    if (want_write) events |= EPOLLOUT;
    loops[conn->loop_index]->modify(conn->fd, events);
    conn->want_write = want_write;
    conn->reading_armed_ = want_read;
  }

  void close_now(const ConnPtr& conn) {
    if (conn->closed) return;
    conn->closed = true;
    loops[conn->loop_index]->remove(conn->fd);
    ::close(conn->fd);
    conns[conn->loop_index].erase(conn);
    open_conns.fetch_sub(1, std::memory_order_relaxed);
    server.stats().record_connection_close();
  }

  void maybe_close(const ConnPtr& conn) {
    if (conn->closed || conn->backlog() > 0) return;
    if (conn->closing) {
      close_now(conn);
      return;
    }
    if ((conn->read_eof || draining.load()) && conn->pending.empty()) close_now(conn);
  }

  void try_write(const ConnPtr& conn) {
    while (conn->backlog() > 0) {
      const ssize_t n = ::write(conn->fd, conn->wbuf.data() + conn->wbuf_offset,
                                conn->backlog());
      if (n < 0) {
        if (errno == EINTR) continue;
        if (errno == EAGAIN || errno == EWOULDBLOCK) break;
        close_now(conn);  // peer gone (EPIPE/ECONNRESET): drop the state
        return;
      }
      conn->wbuf_offset += static_cast<std::size_t>(n);
    }
    if (conn->backlog() == 0) {
      conn->wbuf.clear();
      conn->wbuf_offset = 0;
    } else if (conn->wbuf_offset > (1u << 16)) {
      conn->wbuf.erase(0, conn->wbuf_offset);
      conn->wbuf_offset = 0;
    }
    // Reading resumes once a paused connection drains below half the limit.
    if (!conn->reading && conn->backlog() < opts.max_write_backlog / 2) {
      conn->reading = true;
    }
    update_interest(conn);
    maybe_close(conn);
  }

  /// Appends one reply to the write buffer in the connection's framing.
  void render_reply(const ConnPtr& conn, const Ticket& ticket) {
    if (conn->binary && !ticket.force_newline) {
      conn->wbuf += encode_frame(ticket.text);
    } else {
      conn->wbuf += ticket.text;
      conn->wbuf += '\n';
    }
  }

  /// Flushes the longest completed prefix of the pending deque, preserving
  /// request order no matter how the dispatch pool finished.
  void flush_ready(const ConnPtr& conn) {
    if (conn->closed) return;
    while (!conn->pending.empty() &&
           conn->pending.front()->done.load(std::memory_order_acquire)) {
      const TicketPtr ticket = conn->pending.front();
      conn->pending.pop_front();
      render_reply(conn, *ticket);
      if (ticket->done_ns != 0) {  // dispatched (not completed inline)
        const std::uint64_t now = obs::monotonic_ns();
        server.stats().flush_time().record(
            static_cast<double>(now - ticket->done_ns) * 1e-9);
        if (ticket->trace) {
          obs::TraceSpan span;
          span.name = "flush";
          span.start_ns = ticket->done_ns;
          span.end_ns = now;
          ticket->trace->add_span(std::move(span));
          // The reply bytes are rendered: the request's story is complete.
          server.traces().finish(ticket->trace);
          ticket->trace.reset();
        }
      }
      if (ticket->close_after) {
        conn->closing = true;  // QUIT/fatal: later pipelined replies are moot
        conn->pending.clear();
        break;
      }
    }
    // Hard backpressure: a connection that will not read its replies stops
    // being read well before its write buffer can grow without bound.
    if (conn->backlog() > 2 * opts.max_write_backlog) conn->reading = false;
    try_write(conn);
  }

  /// Completes a ticket on the spot (BUSY, framing ack, fatal ERR) without
  /// touching the dispatch queue; ordering still goes through the deque.
  void complete_inline(const ConnPtr& conn, std::string text, bool close_after) {
    auto ticket = std::make_shared<Ticket>();
    ticket->text = std::move(text);
    ticket->close_after = close_after;
    ticket->done.store(true, std::memory_order_release);
    conn->pending.push_back(std::move(ticket));
  }

  void process_request(const ConnPtr& conn, std::string line) {
    if (!conn->binary && is_frame_binary_request(line)) {
      // The ack ships in the old framing; everything after switches.
      complete_inline(conn, "OK frame=binary", false);
      conn->pending.back()->force_newline = true;
      conn->binary = true;
      if (!conn->rbuf.empty()) {  // pipelined bytes already belong to frames
        conn->decoder.feed(conn->rbuf);
        conn->rbuf.clear();
      }
      return;
    }
    if (conn->binary && is_frame_binary_request(line)) {
      complete_inline(conn, "ERR already in binary framing mode", false);
      return;
    }
    // Bounded admission: shed instead of queueing without limit. The BUSY
    // ticket keeps its slot in the reply order.
    if (inflight.load(std::memory_order_relaxed) >= opts.max_inflight ||
        conn->backlog() > opts.max_write_backlog) {
      server.stats().record_shed();
      complete_inline(conn, kBusyReply, false);
      return;
    }
    auto ticket = std::make_shared<Ticket>();
    // The trace (when this request is sampled) starts here, at frame parse.
    ticket->trace = server.traces().maybe_start();
    conn->pending.push_back(ticket);
    inflight.fetch_add(1, std::memory_order_relaxed);
    {
      std::lock_guard<std::mutex> lock(queue_mu);
      queue.push_back(
          Work{std::move(ticket), std::move(line), conn, obs::monotonic_ns()});
    }
    queue_cv.notify_one();
  }

  /// Fatal protocol-stream error: one last ERR, then close once flushed.
  void fail_connection(const ConnPtr& conn, const std::string& reason) {
    complete_inline(conn, format_error(reason), /*close_after=*/true);
    conn->reading = false;
  }

  void parse_buffered(const ConnPtr& conn) {
    if (!conn->binary) {
      std::size_t newline;
      while (!conn->binary && !conn->closing &&
             (newline = conn->rbuf.find('\n')) != std::string::npos) {
        std::string line = conn->rbuf.substr(0, newline);
        conn->rbuf.erase(0, newline + 1);
        if (!line.empty() && line.back() == '\r') line.pop_back();
        if (line.empty()) continue;
        process_request(conn, std::move(line));
      }
      if (!conn->binary && conn->rbuf.size() > opts.max_line_bytes) {
        fail_connection(conn, "request line exceeds " +
                                  std::to_string(opts.max_line_bytes) + " bytes");
        return;
      }
    }
    if (conn->binary && !conn->closing) {
      try {
        std::string payload;
        while (conn->decoder.next(payload)) {
          if (conn->closing) break;
          process_request(conn, std::move(payload));
        }
      } catch (const std::exception& e) {
        // Framing violation: the stream cannot be resynchronised.
        fail_connection(conn, e.what());
      }
    }
  }

  void on_connection_event(const ConnPtr& conn, std::uint32_t events) {
    if (conn->closed) return;
    if (events & (EPOLLHUP | EPOLLERR)) {
      close_now(conn);
      return;
    }
    if (events & EPOLLOUT) try_write(conn);
    if (conn->closed || !(events & EPOLLIN)) return;

    char buffer[16384];
    for (;;) {
      const ssize_t n = ::read(conn->fd, buffer, sizeof(buffer));
      if (n < 0) {
        if (errno == EINTR) continue;
        if (errno == EAGAIN || errno == EWOULDBLOCK) break;
        close_now(conn);
        return;
      }
      if (n == 0) {  // half-close: answer what was pipelined, then close
        conn->read_eof = true;
        break;
      }
      if (conn->binary) {
        conn->decoder.feed(std::string_view(buffer, static_cast<std::size_t>(n)));
      } else {
        conn->rbuf.append(buffer, static_cast<std::size_t>(n));
      }
      parse_buffered(conn);
      if (conn->closed) return;
      if (!conn->reading || conn->closing) break;
    }
    flush_ready(conn);
  }

  // --------------------------------------------------------------- accept

  void register_connection(int fd, std::size_t loop_index) {
    auto conn = std::make_shared<Connection>();
    conn->fd = fd;
    conn->loop_index = loop_index;
    conn->decoder = FrameDecoder(static_cast<std::uint32_t>(
        std::min<std::size_t>(opts.max_line_bytes * 16, kMaxFrameBytes)));
    conns[loop_index].insert(conn);
    open_conns.fetch_add(1, std::memory_order_relaxed);
    server.stats().record_connection_open();
    conn->reading_armed_ = true;
    loops[loop_index]->add(fd, EPOLLIN,
                           [this, conn](std::uint32_t events) {
                             on_connection_event(conn, events);
                           });
    if (draining.load()) {  // raced a drain: no new work from this peer
      conn->reading = false;
      update_interest(conn);
      maybe_close(conn);
    }
  }

  void on_accept_ready() {
    for (;;) {
      const int fd = ::accept4(listen_fd, nullptr, nullptr,
                               SOCK_NONBLOCK | SOCK_CLOEXEC);
      if (fd < 0) {
        if (errno == EINTR) continue;
        if (errno == EAGAIN || errno == EWOULDBLOCK) break;
        // EMFILE/ENFILE and transient network errors: log and move on —
        // the loop must never die under fd pressure.
        CPR_LOG_WARN("cpr_serve: accept4(): " << std::strerror(errno));
        break;
      }
      const int one = 1;
      ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
      if (opts.sndbuf > 0) {
        ::setsockopt(fd, SOL_SOCKET, SO_SNDBUF, &opts.sndbuf, sizeof(opts.sndbuf));
      }
      const std::size_t target = next_loop;
      next_loop = (next_loop + 1) % loops.size();
      if (target == 0) {
        register_connection(fd, 0);
      } else {
        loops[target]->post([this, fd, target] { register_connection(fd, target); });
      }
    }
  }

  // ------------------------------------------------------------- dispatch

  void dispatch_loop() {
    for (;;) {
      Work work;
      {
        std::unique_lock<std::mutex> lock(queue_mu);
        queue_cv.wait(lock, [this] { return !queue.empty() || dispatch_stopping; });
        if (queue.empty()) return;  // stopping and drained
        work = std::move(queue.front());
        queue.pop_front();
      }
      const std::uint64_t picked_up_ns = obs::monotonic_ns();
      server.stats().admission_wait().record(
          static_cast<double>(picked_up_ns - work.enqueued_ns) * 1e-9);
      if (work.ticket->trace) {
        obs::TraceSpan span;
        span.name = "admission_wait";
        span.start_ns = work.enqueued_ns;
        span.end_ns = picked_up_ns;
        work.ticket->trace->add_span(std::move(span));
      }
      const Server::Reply reply = server.handle_line(work.line, work.ticket->trace);
      work.ticket->text = reply.text;
      work.ticket->close_after = reply.quit;  // QUIT closes only this connection
      work.ticket->done_ns = obs::monotonic_ns();
      work.ticket->done.store(true, std::memory_order_release);
      inflight.fetch_sub(1, std::memory_order_relaxed);
      if (ConnPtr conn = work.conn.lock()) {
        loops[conn->loop_index]->post([this, conn] { flush_ready(conn); });
      }
    }
  }
};

TcpServer::TcpServer(Server& server, TcpServerOptions options) {
  CPR_CHECK_MSG(options.io_threads > 0, "TcpServer needs at least one IO thread");
  CPR_CHECK_MSG(options.dispatch_threads > 0,
                "TcpServer needs at least one dispatch thread");
  CPR_CHECK_MSG(options.max_inflight > 0, "max_inflight must be positive");
  CPR_CHECK_MSG(options.max_write_backlog > 0, "max_write_backlog must be positive");
  impl_ = std::make_unique<Impl>(server, std::move(options));

  impl_->listen_fd = ::socket(AF_INET, SOCK_STREAM | SOCK_NONBLOCK | SOCK_CLOEXEC, 0);
  CPR_CHECK_MSG(impl_->listen_fd >= 0, "socket(): " << std::strerror(errno));
  const int one = 1;
  ::setsockopt(impl_->listen_fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_ANY);
  addr.sin_port = htons(impl_->opts.port);
  if (::bind(impl_->listen_fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0 ||
      ::listen(impl_->listen_fd, impl_->opts.listen_backlog) != 0) {
    const int saved = errno;
    ::close(impl_->listen_fd);
    CPR_CHECK_MSG(false, "cannot listen on TCP port " << impl_->opts.port << ": "
                                                      << std::strerror(saved));
  }
  socklen_t len = sizeof(addr);
  CPR_CHECK_MSG(
      ::getsockname(impl_->listen_fd, reinterpret_cast<sockaddr*>(&addr), &len) == 0,
      "getsockname(): " << std::strerror(errno));
  port_ = ntohs(addr.sin_port);

  impl_->loops.reserve(impl_->opts.io_threads);
  impl_->conns.resize(impl_->opts.io_threads);
  for (std::size_t i = 0; i < impl_->opts.io_threads; ++i) {
    impl_->loops.push_back(std::make_unique<EventLoop>());
  }
  impl_->loops[0]->add(impl_->listen_fd, EPOLLIN,
                       [impl = impl_.get()](std::uint32_t) { impl->on_accept_ready(); });
  for (std::size_t i = 0; i < impl_->opts.io_threads; ++i) {
    impl_->loop_threads.emplace_back([loop = impl_->loops[i].get()] { loop->run(); });
  }
  for (std::size_t i = 0; i < impl_->opts.dispatch_threads; ++i) {
    impl_->dispatchers.emplace_back([impl = impl_.get()] { impl->dispatch_loop(); });
  }
}

void TcpServer::shutdown(bool drain, std::uint64_t drain_timeout_ms) {
  if (impl_->shutdown_started.exchange(true)) {
    wait();
    return;
  }
  Impl& impl = *impl_;
  impl.draining.store(true);

  // Stop accepting and stop reading: no new requests enter the system.
  impl.loops[0]->post([&impl] { impl.loops[0]->remove(impl.listen_fd); });
  for (std::size_t i = 0; i < impl.loops.size(); ++i) {
    impl.loops[i]->post([&impl, i, drain] {
      for (const ConnPtr& conn : std::vector<ConnPtr>(impl.conns[i].begin(),
                                                      impl.conns[i].end())) {
        if (drain) {
          conn->reading = false;
          impl.update_interest(conn);
          impl.flush_ready(conn);  // closes idle connections immediately
        } else {
          impl.close_now(conn);
        }
      }
    });
  }

  // Drain: in-flight requests finish on the dispatch pool, their replies
  // flush through the loops, and each connection closes once empty.
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::milliseconds(drain_timeout_ms);
  while (drain && impl.open_conns.load() > 0 &&
         std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  // Deadline passed (or non-drain): force-close whatever is left.
  for (std::size_t i = 0; i < impl.loops.size(); ++i) {
    impl.loops[i]->post([&impl, i] {
      for (const ConnPtr& conn : std::vector<ConnPtr>(impl.conns[i].begin(),
                                                      impl.conns[i].end())) {
        impl.close_now(conn);
      }
    });
  }
  {
    std::lock_guard<std::mutex> lock(impl.queue_mu);
    impl.dispatch_stopping = true;  // workers drain the queue, then exit
  }
  impl.queue_cv.notify_all();
  for (auto& worker : impl.dispatchers) worker.join();
  for (auto& loop : impl.loops) loop->stop();
  for (auto& thread : impl.loop_threads) thread.join();
  ::close(impl.listen_fd);
  {
    std::lock_guard<std::mutex> lock(impl.done_mu);
    impl.finished = true;
  }
  impl.done_cv.notify_all();
}

void TcpServer::wait() {
  Impl& impl = *impl_;
  std::unique_lock<std::mutex> lock(impl.done_mu);
  impl.done_cv.wait(lock, [&impl] { return impl.finished; });
}

TcpServer::~TcpServer() {
  if (!impl_) return;
  if (!impl_->shutdown_started.load()) {
    shutdown(/*drain=*/false);
  } else {
    wait();
  }
}

}  // namespace cpr::serve
