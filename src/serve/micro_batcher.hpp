#pragma once
// Request coalescing for the serving layer.
//
// Concurrent single-point PREDICT requests are expensive to dispatch one by
// one: every call pays virtual dispatch, OpenMP region entry, and (for
// non-CPR families) per-row allocation. The MicroBatcher funnels requests
// into a bounded queue from which a fixed pool of worker threads assembles
// per-model batches — flushing when `max_batch` same-model requests are
// queued or `max_wait_us` has elapsed since the batch opened — and executes
// them through the family's predict_batch() override. Because every family
// guarantees predict_batch row i == predict(row i) bitwise, batching is
// invisible to clients: results are identical to serial evaluation no
// matter how requests interleave.

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <future>
#include <mutex>
#include <thread>
#include <vector>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "serve/model_store.hpp"

namespace cpr::serve {

class MicroBatcher {
 public:
  struct Options {
    std::size_t workers = 2;         ///< inference worker threads
    std::size_t max_batch = 64;      ///< flush a batch at this many requests
    std::uint64_t max_wait_us = 200; ///< flush an under-full batch after this
    std::size_t queue_capacity = 4096;  ///< submit() blocks when full

    /// Optional stage histograms (owned by ServerStats): per-request queue
    /// wait and per-batch predict_batch time. Null leaves them unrecorded.
    obs::Histogram* batch_wait_histogram = nullptr;
    obs::Histogram* predict_histogram = nullptr;
  };

  struct Stats {
    std::uint64_t submitted = 0;  ///< requests accepted
    std::uint64_t batches = 0;    ///< predict_batch calls issued
    std::uint64_t max_batch_seen = 0;

    double mean_batch() const {
      return batches == 0 ? 0.0
                          : static_cast<double>(submitted) / static_cast<double>(batches);
    }
  };

  explicit MicroBatcher(Options options);

  /// Stops accepting work, drains every queued request, joins the workers.
  ~MicroBatcher();

  MicroBatcher(const MicroBatcher&) = delete;
  MicroBatcher& operator=(const MicroBatcher&) = delete;

  /// Enqueues one prediction; the future yields exactly
  /// model->predict(config) (bitwise) or rethrows the model's error.
  /// `config` must match the model's input_dims(). Blocks while the queue
  /// is at capacity; throws CheckError after shutdown has begun. A sampled
  /// request passes its trace handle so the worker can stamp batch_wait
  /// and predict spans; null means unsampled.
  std::future<double> submit(ModelHandle model, grid::Config config,
                             obs::TraceHandle trace = nullptr);

  Stats stats() const;

  const Options& options() const { return options_; }

 private:
  struct Job {
    ModelHandle model;
    grid::Config config;
    std::promise<double> result;
    obs::TraceHandle trace;  ///< null unless the request is trace-sampled
    std::uint64_t submitted_ns = 0;
  };

  void worker_loop();
  /// Moves queued same-model jobs into `batch` up to max_batch; `mu_` held.
  void sweep_locked(std::vector<Job>& batch, const LoadedModel* key);
  void run_batch(std::vector<Job>& batch) const;

  Options options_;
  mutable std::mutex mu_;
  std::condition_variable not_empty_;
  std::condition_variable not_full_;
  std::deque<Job> queue_;
  bool stopping_ = false;
  Stats stats_;
  std::vector<std::thread> workers_;
};

}  // namespace cpr::serve
