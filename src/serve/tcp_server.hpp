#pragma once
// Event-driven TCP front end for the serving subsystem.
//
// Thread-per-connection (the Unix-socket frontend) stalls past a few
// hundred clients; this front end holds tens of thousands of connections on
// a small pool of epoll event loops (serve/event_loop). Each accepted
// connection runs a non-blocking state machine on exactly one loop thread:
//
//   read buffer -> frame parser (newline, or length-prefixed binary after a
//   `FRAME BINARY` negotiation) -> admission check -> dispatch queue ->
//   Server::handle_line on a dispatch worker (which blocks in the
//   MicroBatcher, never on a loop thread) -> ordered reply ticket ->
//   write buffer with partial-write resumption (EPOLLOUT only while bytes
//   are pending).
//
// Replies stay in request order per connection even though the dispatch
// pool completes out of order: every parsed request gets a ticket in the
// connection's pending deque and only the longest completed prefix is
// flushed. Backpressure is bounded admission, not stalling: a request
// arriving while the global in-flight count exceeds `max_inflight`, or
// while the connection's write backlog exceeds `max_write_backlog`, is
// answered `BUSY` immediately (and counted in STATS `busy_shed`); a
// connection whose backlog exceeds twice the limit additionally stops being
// read until it drains below half. `QUIT` closes only its own connection.
//
// shutdown(drain=true) is the SIGINT/SIGTERM path: stop accepting, stop
// reading, let every in-flight request complete and flush, then close.

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "serve/event_loop.hpp"
#include "serve/server.hpp"

namespace cpr::serve {

struct TcpServerOptions {
  std::uint16_t port = 0;       ///< 0 = ephemeral; see TcpServer::port()
  std::size_t io_threads = 2;   ///< event-loop threads (connections sharded)
  std::size_t dispatch_threads = 2;  ///< workers calling Server::handle_line
  std::size_t max_inflight = 1024;   ///< global dispatched-request admission cap
  std::size_t max_write_backlog = 1 << 20;  ///< per-connection bytes before BUSY
  std::size_t max_line_bytes = 1 << 16;     ///< newline mode: longer is fatal
  int listen_backlog = 1024;
  int sndbuf = 0;  ///< >0: SO_SNDBUF on accepted sockets (partial-write tests)
};

class TcpServer {
 public:
  /// Binds 0.0.0.0:`options.port` and starts the IO loops and dispatch
  /// workers; throws CheckError when the socket cannot be bound.
  TcpServer(Server& server, TcpServerOptions options);

  /// Drains and joins (shutdown(false) semantics if still running).
  ~TcpServer();

  TcpServer(const TcpServer&) = delete;
  TcpServer& operator=(const TcpServer&) = delete;

  /// The bound TCP port (resolves an ephemeral request).
  std::uint16_t port() const { return port_; }

  /// Stops the front end; idempotent and thread/signal-thread-safe.
  /// With `drain`, accepting and reading stop first and every already
  /// parsed request completes and flushes (bounded by `drain_timeout_ms`)
  /// before connections close; without, connections are torn down at once.
  void shutdown(bool drain, std::uint64_t drain_timeout_ms = 10'000);

  /// Blocks until shutdown() has completed (the cpr_serve main loop).
  void wait();

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
  std::uint16_t port_ = 0;
};

}  // namespace cpr::serve
