#pragma once
// Sharded LRU cache for served predictions.
//
// Performance-model query streams are highly repetitive — autotuners
// re-probe neighboring configurations constantly — so a small cache in
// front of the batcher absorbs a large share of traffic. Keys combine the
// model name, its load generation (so hot reloads age out stale entries via
// plain LRU instead of an invalidation sweep), and the query configuration
// quantized to 12 significant digits (collapsing float noise between
// textually-equal requests). Sharding keeps lock contention flat under
// concurrent clients; each shard is an independent mutex + LRU list.

#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "grid/parameter.hpp"

namespace cpr::serve {

class PredictionCache {
 public:
  /// `capacity` is the total entry budget, split evenly across `shards`
  /// (each shard holds at least one entry). A zero capacity disables
  /// caching: get() always misses, put() is a no-op.
  explicit PredictionCache(std::size_t capacity, std::size_t shards = 8);

  /// Cache key for one (model instance, query) pair.
  static std::string make_key(std::string_view model, std::uint64_t generation,
                              const grid::Config& values);

  /// Returns the cached prediction and refreshes its recency, or nullopt.
  std::optional<double> get(const std::string& key);

  /// Inserts/refreshes `key`, evicting the shard's least-recently-used
  /// entry when over budget.
  void put(const std::string& key, double value);

  struct Counters {
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;
    std::uint64_t evictions = 0;
    std::size_t entries = 0;   ///< currently resident
    std::size_t capacity = 0;  ///< total budget
    std::size_t shards = 0;

    double hit_rate() const {
      const auto total = hits + misses;
      return total == 0 ? 0.0 : static_cast<double>(hits) / static_cast<double>(total);
    }
  };
  /// Totals across shards, each read under its shard mutex: safe to call
  /// concurrently with traffic (the STATS/METRICS render path does).
  Counters counters() const;

  bool enabled() const { return !shards_.empty(); }

 private:
  struct Shard {
    std::mutex mu;
    std::list<std::pair<std::string, double>> lru;  ///< front = most recent
    std::unordered_map<std::string,
                       std::list<std::pair<std::string, double>>::iterator>
        index;
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;
    std::uint64_t evictions = 0;
  };

  Shard& shard_for(const std::string& key);

  std::size_t capacity_ = 0;        ///< total, as configured
  std::size_t shard_capacity_ = 0;  ///< per-shard budget
  std::vector<std::unique_ptr<Shard>> shards_;
};

}  // namespace cpr::serve
