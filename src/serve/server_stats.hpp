#pragma once
// Serving telemetry: request counts, QPS, latency quantiles, and the TCP
// front end's connection/shedding gauges — all backed by the obs registry.
//
// Latencies land in obs::Histogram's exact log-scale buckets instead of the
// sampling reservoir this replaced: p50/p99/p99.9 are now a deterministic
// function of every recorded request (bitwise-reproducible for the same
// workload), still O(1) memory over unbounded streams, and the very same
// state renders through both the STATS table and the Prometheus METRICS
// exposition. The stage histograms (admission wait, batch wait, predict,
// reply flush) are owned here too, so transports and the batcher attribute
// each request's latency to pipeline stages without new plumbing.

#include <chrono>
#include <cstdint>
#include <string>
#include <vector>

#include "obs/metrics.hpp"
#include "serve/drift_tracker.hpp"
#include "serve/micro_batcher.hpp"
#include "serve/prediction_cache.hpp"
#include "util/table.hpp"

namespace cpr::serve {

class ServerStats {
 public:
  /// Registers the request counters and latency/stage histograms on
  /// `registry`, which must outlive this object.
  explicit ServerStats(obs::Registry& registry);

  /// Records one answered PREDICT (latency includes batching wait); hit/miss
  /// accounting lives in the PredictionCache counters.
  void record_predict(double latency_seconds) {
    predicts_->inc();
    latency_->record(latency_seconds);
  }

  /// Records a request answered with ERR.
  void record_error() { errors_->inc(); }

  /// Records one accepted OBSERVE (the observation was buffered).
  void record_observe() { observes_->inc(); }

  /// Records a request shed with a BUSY reply (admission control).
  void record_shed() { sheds_->inc(); }

  /// Transport connection lifecycle (TCP/Unix-socket frontends).
  void record_connection_open() { connections_->add(1); }
  void record_connection_close() { connections_->add(-1); }

  /// Stage histograms recorded by the transports and the micro-batcher;
  /// exposed via METRICS as cpr_*_seconds for stage attribution.
  obs::Histogram& admission_wait() { return *admission_wait_; }
  obs::Histogram& batch_wait() { return *batch_wait_; }
  obs::Histogram& predict_time() { return *predict_time_; }
  obs::Histogram& flush_time() { return *flush_time_; }
  const obs::Histogram& request_latency() const { return *latency_; }

  /// Background-trainer telemetry, wired into RefitTrainer::Hooks.
  obs::Counter& refits() { return *refits_; }
  obs::Counter& refit_failures() { return *refit_failures_; }
  obs::Histogram& refit_duration() { return *refit_duration_; }

  struct Snapshot {
    std::uint64_t predicts = 0;
    std::uint64_t errors = 0;
    std::uint64_t sheds = 0;        ///< requests answered BUSY, never executed
    std::uint64_t observes = 0;     ///< OBSERVE requests accepted
    std::uint64_t refits = 0;       ///< refits published
    std::uint64_t refit_failures = 0;
    std::int64_t connections = 0;   ///< transport connections open right now
    double elapsed_seconds = 0.0;  ///< since the stats object was created
    double qps = 0.0;              ///< predicts / elapsed
    double p50_seconds = 0.0;
    double p99_seconds = 0.0;
    double p999_seconds = 0.0;
  };
  Snapshot snapshot() const;

 private:
  obs::Counter* predicts_;
  obs::Counter* errors_;
  obs::Counter* sheds_;
  obs::Counter* observes_;
  obs::Counter* refits_;
  obs::Counter* refit_failures_;
  obs::Gauge* connections_;
  obs::Histogram* latency_;
  obs::Histogram* admission_wait_;
  obs::Histogram* batch_wait_;
  obs::Histogram* predict_time_;
  obs::Histogram* flush_time_;
  obs::Histogram* refit_duration_;
  std::chrono::steady_clock::time_point start_;
};

/// Renders one STATS table from the server's component counters. `drift` is
/// the rolling OBSERVE-error window and `buffered_observations` the pending
/// (not yet refit) observation count across models.
Table render_stats_table(const ServerStats::Snapshot& requests,
                         const PredictionCache::Counters& cache,
                         const MicroBatcher::Stats& batcher,
                         const std::vector<std::string>& loaded_models,
                         const DriftTracker::Snapshot& drift = {},
                         std::size_t buffered_observations = 0);

}  // namespace cpr::serve
