#pragma once
// Serving telemetry: request counts, QPS, latency quantiles, and the TCP
// front end's connection/shedding gauges.
//
// Latencies are kept in a fixed-size reservoir (Vitter's algorithm R with a
// deterministic seed) so p50/p99/p99.9 stay O(1) in memory over unbounded
// request streams; the STATS command renders a snapshot — together with
// cache and batcher counters — through util/table. The connection gauge and
// BUSY-shed counter are plain atomics so transport threads (event loops,
// connection threads) can bump them without taking the reservoir lock.

#include <atomic>
#include <chrono>
#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

#include "serve/micro_batcher.hpp"
#include "serve/prediction_cache.hpp"
#include "util/rng.hpp"
#include "util/table.hpp"

namespace cpr::serve {

class ServerStats {
 public:
  /// `reservoir` bounds the latency sample kept for quantiles.
  explicit ServerStats(std::size_t reservoir = 4096);

  /// Records one answered PREDICT (latency includes batching wait); hit/miss
  /// accounting lives in the PredictionCache counters.
  void record_predict(double latency_seconds);

  /// Records a request answered with ERR.
  void record_error();

  /// Records a request shed with a BUSY reply (admission control).
  void record_shed() { sheds_.fetch_add(1, std::memory_order_relaxed); }

  /// Transport connection lifecycle (TCP/Unix-socket frontends).
  void record_connection_open() {
    connections_.fetch_add(1, std::memory_order_relaxed);
  }
  void record_connection_close() {
    connections_.fetch_sub(1, std::memory_order_relaxed);
  }

  struct Snapshot {
    std::uint64_t predicts = 0;
    std::uint64_t errors = 0;
    std::uint64_t sheds = 0;        ///< requests answered BUSY, never executed
    std::int64_t connections = 0;   ///< transport connections open right now
    double elapsed_seconds = 0.0;  ///< since the stats object was created
    double qps = 0.0;              ///< predicts / elapsed
    double p50_seconds = 0.0;
    double p99_seconds = 0.0;
    double p999_seconds = 0.0;
  };
  Snapshot snapshot() const;

 private:
  std::size_t reservoir_capacity_;
  mutable std::mutex mu_;
  std::uint64_t predicts_ = 0;
  std::uint64_t errors_ = 0;
  std::uint64_t latencies_seen_ = 0;
  std::atomic<std::uint64_t> sheds_{0};
  std::atomic<std::int64_t> connections_{0};
  std::vector<double> reservoir_;
  Rng rng_;
  std::chrono::steady_clock::time_point start_;
};

/// Renders one STATS table from the server's component counters.
Table render_stats_table(const ServerStats::Snapshot& requests,
                         const PredictionCache::Counters& cache,
                         const MicroBatcher::Stats& batcher,
                         const std::vector<std::string>& loaded_models);

}  // namespace cpr::serve
