#include "serve/refit_trainer.hpp"

#include <chrono>

#include "util/log.hpp"

namespace cpr::serve {

RefitTrainer::RefitTrainer(ModelStore& store, Hooks hooks)
    : store_(store), hooks_(hooks), worker_([this] { run(); }) {}

RefitTrainer::~RefitTrainer() {
  std::deque<Job> orphaned;
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
    orphaned.swap(queue_);
    queued_.clear();
  }
  cv_.notify_all();
  worker_.join();
  for (Job& job : orphaned) {
    Outcome outcome;
    outcome.error = "server shutting down";
    job.promise->set_value(std::move(outcome));
  }
}

std::shared_future<RefitTrainer::Outcome> RefitTrainer::request(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  if (stop_) {
    // Shutdown already began: answer immediately instead of enqueueing a
    // job nobody will run.
    std::promise<Outcome> promise;
    Outcome outcome;
    outcome.error = "server shutting down";
    promise.set_value(std::move(outcome));
    return promise.get_future().share();
  }
  const auto it = queued_.find(name);
  if (it != queued_.end()) return it->second;  // coalesce onto the queued job
  Job job;
  job.name = name;
  job.promise = std::make_shared<std::promise<Outcome>>();
  job.future = job.promise->get_future().share();
  queued_.emplace(name, job.future);
  queue_.push_back(job);
  cv_.notify_one();
  return queue_.back().future;
}

void RefitTrainer::run() {
  for (;;) {
    Job job;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_.wait(lock, [this] { return stop_ || !queue_.empty(); });
      if (stop_) return;  // the destructor fails whatever is still queued
      job = std::move(queue_.front());
      queue_.pop_front();
      // Un-queue before running: a request() arriving mid-refit must start
      // a fresh job to cover observations this one's snapshot misses.
      queued_.erase(job.name);
    }
    Outcome outcome;
    const auto start = std::chrono::steady_clock::now();
    try {
      const ModelStore::RefitResult result = store_.refit(job.name);
      outcome.ok = true;
      outcome.generation = result.handle->generation;
      outcome.observations = result.observations;
    } catch (const std::exception& e) {
      outcome.error = e.what();
    } catch (...) {
      outcome.error = "unknown refit failure";
    }
    outcome.seconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - start).count();
    if (hooks_.duration) hooks_.duration->record(outcome.seconds);
    if (outcome.ok) {
      if (hooks_.refits) hooks_.refits->inc();
      log_line(LogLevel::Info, "refit published",
               {{"model", job.name},
                {"generation", std::to_string(outcome.generation)},
                {"observations", std::to_string(outcome.observations)}});
    } else {
      if (hooks_.failures) hooks_.failures->inc();
      log_line(LogLevel::Warn, "refit failed",
               {{"model", job.name}, {"error", outcome.error}});
    }
    completed_.fetch_add(1, std::memory_order_relaxed);
    job.promise->set_value(std::move(outcome));
  }
}

}  // namespace cpr::serve
