#include "serve/server_stats.hpp"

#include <algorithm>
#include <cmath>

namespace cpr::serve {

namespace {

/// Nearest-rank percentile over an unsorted copy of the reservoir.
double percentile(std::vector<double> samples, double fraction) {
  if (samples.empty()) return 0.0;
  const auto rank = static_cast<std::size_t>(
      std::ceil(fraction * static_cast<double>(samples.size())));
  const std::size_t index = rank == 0 ? 0 : rank - 1;
  std::nth_element(samples.begin(),
                   samples.begin() + static_cast<std::ptrdiff_t>(index), samples.end());
  return samples[index];
}

}  // namespace

ServerStats::ServerStats(std::size_t reservoir)
    : reservoir_capacity_(reservoir), rng_(42), start_(std::chrono::steady_clock::now()) {
  CPR_CHECK_MSG(reservoir_capacity_ > 0, "latency reservoir needs capacity >= 1");
  reservoir_.reserve(reservoir_capacity_);
}

void ServerStats::record_predict(double latency_seconds) {
  std::lock_guard<std::mutex> lock(mu_);
  ++predicts_;
  ++latencies_seen_;
  if (reservoir_.size() < reservoir_capacity_) {
    reservoir_.push_back(latency_seconds);
    return;
  }
  // Algorithm R: keep each of the n samples with probability capacity/n.
  const auto slot = static_cast<std::uint64_t>(rng_.uniform_int(
      0, static_cast<std::int64_t>(latencies_seen_) - 1));
  if (slot < reservoir_capacity_) reservoir_[slot] = latency_seconds;
}

void ServerStats::record_error() {
  std::lock_guard<std::mutex> lock(mu_);
  ++errors_;
}

ServerStats::Snapshot ServerStats::snapshot() const {
  Snapshot snap;
  std::vector<double> samples;
  {
    std::lock_guard<std::mutex> lock(mu_);
    snap.predicts = predicts_;
    snap.errors = errors_;
    samples = reservoir_;
  }
  snap.sheds = sheds_.load(std::memory_order_relaxed);
  snap.connections = connections_.load(std::memory_order_relaxed);
  snap.elapsed_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start_).count();
  snap.qps = snap.elapsed_seconds > 0.0
                 ? static_cast<double>(snap.predicts) / snap.elapsed_seconds
                 : 0.0;
  snap.p50_seconds = percentile(samples, 0.50);
  snap.p99_seconds = percentile(samples, 0.99);
  snap.p999_seconds = percentile(std::move(samples), 0.999);
  return snap;
}

Table render_stats_table(const ServerStats::Snapshot& requests,
                         const PredictionCache::Counters& cache,
                         const MicroBatcher::Stats& batcher,
                         const std::vector<std::string>& loaded_models) {
  Table table({"metric", "value"});
  table.add_row({"predicts", Table::fmt(requests.predicts)});
  table.add_row({"errors", Table::fmt(requests.errors)});
  table.add_row({"uptime_seconds", Table::fmt(requests.elapsed_seconds, 3)});
  table.add_row({"qps", Table::fmt(requests.qps, 1)});
  table.add_row({"latency_p50_us", Table::fmt(requests.p50_seconds * 1e6, 1)});
  table.add_row({"latency_p99_us", Table::fmt(requests.p99_seconds * 1e6, 1)});
  table.add_row({"latency_p999_us", Table::fmt(requests.p999_seconds * 1e6, 1)});
  table.add_row({"connections", Table::fmt(requests.connections)});
  table.add_row({"busy_shed", Table::fmt(requests.sheds)});
  table.add_row({"cache_hits", Table::fmt(cache.hits)});
  table.add_row({"cache_misses", Table::fmt(cache.misses)});
  table.add_row({"cache_evictions", Table::fmt(cache.evictions)});
  table.add_row({"cache_hit_rate", Table::fmt(cache.hit_rate(), 4)});
  table.add_row({"cache_entries", Table::fmt(cache.entries)});
  table.add_row({"batches", Table::fmt(batcher.batches)});
  table.add_row({"mean_batch", Table::fmt(batcher.mean_batch(), 2)});
  table.add_row({"max_batch", Table::fmt(batcher.max_batch_seen)});
  std::string models;
  for (const auto& name : loaded_models) {
    if (!models.empty()) models += ' ';
    models += name;
  }
  table.add_row({"loaded_models", models.empty() ? "-" : models});
  return table;
}

}  // namespace cpr::serve
