#include "serve/server_stats.hpp"

namespace cpr::serve {

ServerStats::ServerStats(obs::Registry& registry)
    : predicts_(&registry.counter("cpr_predicts_total",
                                  "PREDICT requests answered OK")),
      errors_(&registry.counter("cpr_request_errors_total",
                                "requests answered ERR")),
      sheds_(&registry.counter("cpr_busy_shed_total",
                               "requests shed with BUSY by admission control")),
      observes_(&registry.counter("cpr_observes_total",
                                  "OBSERVE requests accepted (observation buffered)")),
      refits_(&registry.counter("cpr_refits_total",
                                "background refits published as new generations")),
      refit_failures_(&registry.counter("cpr_refit_failures_total",
                                        "background refits that failed")),
      connections_(&registry.gauge("cpr_connections_open",
                                   "transport connections currently open")),
      latency_(&registry.histogram("cpr_request_latency_seconds",
                                   "client-observed PREDICT handling latency")),
      admission_wait_(&registry.histogram(
          "cpr_admission_wait_seconds",
          "dispatch-queue wait between frame parse and handling")),
      batch_wait_(&registry.histogram(
          "cpr_batch_wait_seconds",
          "micro-batcher queue wait between submit and batch pickup")),
      predict_time_(&registry.histogram("cpr_predict_seconds",
                                        "predict_batch execution time per batch")),
      flush_time_(&registry.histogram(
          "cpr_flush_seconds",
          "reply-ticket wait between dispatch completion and reply render")),
      refit_duration_(&registry.histogram(
          "cpr_refit_seconds",
          "background refit wall time (clone + replay + warm refresh)")),
      start_(std::chrono::steady_clock::now()) {}

ServerStats::Snapshot ServerStats::snapshot() const {
  Snapshot snap;
  snap.predicts = predicts_->value();
  snap.errors = errors_->value();
  snap.sheds = sheds_->value();
  snap.observes = observes_->value();
  snap.refits = refits_->value();
  snap.refit_failures = refit_failures_->value();
  snap.connections = connections_->value();
  snap.elapsed_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start_).count();
  snap.qps = snap.elapsed_seconds > 0.0
                 ? static_cast<double>(snap.predicts) / snap.elapsed_seconds
                 : 0.0;
  const obs::HistogramSnapshot latency = latency_->snapshot();
  snap.p50_seconds = latency.percentile(0.50);
  snap.p99_seconds = latency.percentile(0.99);
  snap.p999_seconds = latency.percentile(0.999);
  return snap;
}

Table render_stats_table(const ServerStats::Snapshot& requests,
                         const PredictionCache::Counters& cache,
                         const MicroBatcher::Stats& batcher,
                         const std::vector<std::string>& loaded_models,
                         const DriftTracker::Snapshot& drift,
                         std::size_t buffered_observations) {
  Table table({"metric", "value"});
  table.add_row({"predicts", Table::fmt(requests.predicts)});
  table.add_row({"errors", Table::fmt(requests.errors)});
  table.add_row({"uptime_seconds", Table::fmt(requests.elapsed_seconds, 3)});
  table.add_row({"qps", Table::fmt(requests.qps, 1)});
  table.add_row({"latency_p50_us", Table::fmt(requests.p50_seconds * 1e6, 1)});
  table.add_row({"latency_p99_us", Table::fmt(requests.p99_seconds * 1e6, 1)});
  table.add_row({"latency_p999_us", Table::fmt(requests.p999_seconds * 1e6, 1)});
  table.add_row({"connections", Table::fmt(requests.connections)});
  table.add_row({"busy_shed", Table::fmt(requests.sheds)});
  table.add_row({"cache_hits", Table::fmt(cache.hits)});
  table.add_row({"cache_misses", Table::fmt(cache.misses)});
  table.add_row({"cache_evictions", Table::fmt(cache.evictions)});
  table.add_row({"cache_hit_rate", Table::fmt(cache.hit_rate(), 4)});
  table.add_row({"cache_entries", Table::fmt(cache.entries)});
  table.add_row({"batches", Table::fmt(batcher.batches)});
  table.add_row({"mean_batch", Table::fmt(batcher.mean_batch(), 2)});
  table.add_row({"max_batch", Table::fmt(batcher.max_batch_seen)});
  table.add_row({"observes", Table::fmt(requests.observes)});
  table.add_row({"obs_buffered", Table::fmt(buffered_observations)});
  table.add_row({"refits", Table::fmt(requests.refits)});
  table.add_row({"refit_failures", Table::fmt(requests.refit_failures)});
  table.add_row({"drift_abs_logerr", Table::fmt(drift.abs_log_error, 4)});
  table.add_row({"drift_signed_logerr", Table::fmt(drift.signed_log_error, 4)});
  std::string models;
  for (const auto& name : loaded_models) {
    if (!models.empty()) models += ' ';
    models += name;
  }
  table.add_row({"loaded_models", models.empty() ? "-" : models});
  return table;
}

}  // namespace cpr::serve
