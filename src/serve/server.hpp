#pragma once
// The serving core behind cpr_serve: one object tying the model store,
// micro-batcher, prediction cache and telemetry together. handle_line() is
// the whole surface — frontends (stdio, Unix socket, the throughput bench's
// in-process clients) feed it protocol lines from any number of threads and
// write back the replies. It is total: every failure becomes an `ERR` reply
// rather than an exception, so one bad client cannot take the server down.
//
// Observability is per-server: the obs::Registry holds every metric the
// METRICS verb exposes, and the obs::TraceCollector samples per-request
// span traces (`--trace-sample=1/N`). The TCP front end allocates the
// trace at frame parse and passes it through the trace-aware handle_line
// overload; the plain overload samples at line granularity for the
// stdio/Unix transports.

#include <string>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "serve/drift_tracker.hpp"
#include "serve/micro_batcher.hpp"
#include "serve/model_store.hpp"
#include "serve/prediction_cache.hpp"
#include "serve/protocol.hpp"
#include "serve/refit_trainer.hpp"
#include "serve/server_stats.hpp"

namespace cpr::serve {

struct ServerOptions {
  std::string model_dir = ".";
  MicroBatcher::Options batcher;
  std::size_t cache_capacity = 4096;  ///< total entries; 0 disables caching
  std::size_t cache_shards = 8;
  std::chrono::milliseconds reload_check{100};  ///< hot-reload stat throttle
  std::uint64_t trace_sample = 0;  ///< trace every Nth request; 0 disables
  std::size_t refit_after = 0;     ///< auto-refit every N buffered observations;
                                   ///< 0 = only explicit REFIT
  std::size_t observe_buffer = 4096;  ///< per-model OBSERVE buffer bound
  std::size_t drift_window = 256;  ///< rolling drift-error window size
};

class Server {
 public:
  explicit Server(ServerOptions options);

  struct Reply {
    std::string text;  ///< complete reply (may span lines for STATS/METRICS)
    bool quit = false;
  };

  /// Handles one protocol line; thread-safe and never throws. Starts and
  /// finishes its own trace sample (stdio/Unix transports).
  Reply handle_line(const std::string& line);

  /// Trace-aware variant for transports that own the request lifecycle
  /// (the TCP front end): `trace` was allocated at frame parse and is
  /// finished by the transport after the reply flushes. Null = unsampled.
  Reply handle_line(const std::string& line, const obs::TraceHandle& trace);

  ModelStore& store() { return store_; }
  const ServerStats& request_stats() const { return stats_; }
  /// Mutable telemetry access for transport frontends (connection gauge,
  /// BUSY-shed counter, stage histograms); request accounting stays
  /// internal to handle_line.
  ServerStats& stats() { return stats_; }
  PredictionCache::Counters cache_counters() const { return cache_.counters(); }
  MicroBatcher::Stats batcher_stats() const { return batcher_.stats(); }

  /// Request-trace sampling and export (cpr_serve --trace-sample/--trace-out).
  obs::TraceCollector& traces() { return traces_; }

  /// Rolling OBSERVE-error telemetry (also exposed via METRICS/STATS).
  DriftTracker::Snapshot drift() const { return drift_.snapshot(); }

  /// The background refit trainer (test hook: completed-job count).
  const RefitTrainer& trainer() const { return trainer_; }

  /// The Prometheus text exposition behind the METRICS verb and
  /// `cpr_serve --metrics-out` (without the protocol's trailing OK).
  std::string metrics_text() const { return registry_.render(); }

 private:
  std::string handle_predict(const Request& request, const obs::TraceHandle& trace,
                             obs::SpanTimer& span);
  std::string handle_observe(const Request& request);
  std::string handle_refit(const Request& request);
  MicroBatcher::Options batcher_options();
  RefitTrainer::Hooks trainer_hooks();

  ServerOptions options_;
  obs::Registry registry_;
  obs::TraceCollector traces_;
  ModelStore store_;
  PredictionCache cache_;
  ServerStats stats_;   // registers its metrics; must precede batcher_
  MicroBatcher batcher_;  // borrows stage histograms owned via stats_
  DriftTracker drift_;
  RefitTrainer trainer_;  // last: its worker uses store_/stats_ until joined
};

}  // namespace cpr::serve
