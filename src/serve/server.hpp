#pragma once
// The serving core behind cpr_serve: one object tying the model store,
// micro-batcher, prediction cache and telemetry together. handle_line() is
// the whole surface — frontends (stdio, Unix socket, the throughput bench's
// in-process clients) feed it protocol lines from any number of threads and
// write back the replies. It is total: every failure becomes an `ERR` reply
// rather than an exception, so one bad client cannot take the server down.

#include <string>

#include "serve/micro_batcher.hpp"
#include "serve/model_store.hpp"
#include "serve/prediction_cache.hpp"
#include "serve/protocol.hpp"
#include "serve/server_stats.hpp"

namespace cpr::serve {

struct ServerOptions {
  std::string model_dir = ".";
  MicroBatcher::Options batcher;
  std::size_t cache_capacity = 4096;  ///< total entries; 0 disables caching
  std::size_t cache_shards = 8;
  std::chrono::milliseconds reload_check{100};  ///< hot-reload stat throttle
};

class Server {
 public:
  explicit Server(ServerOptions options);

  struct Reply {
    std::string text;  ///< complete reply (may span lines for STATS)
    bool quit = false;
  };

  /// Handles one protocol line; thread-safe and never throws.
  Reply handle_line(const std::string& line);

  ModelStore& store() { return store_; }
  const ServerStats& request_stats() const { return stats_; }
  /// Mutable telemetry access for transport frontends (connection gauge,
  /// BUSY-shed counter); request accounting stays internal to handle_line.
  ServerStats& stats() { return stats_; }
  PredictionCache::Counters cache_counters() const { return cache_.counters(); }
  MicroBatcher::Stats batcher_stats() const { return batcher_.stats(); }

 private:
  std::string handle_predict(const Request& request);

  ServerOptions options_;
  ModelStore store_;
  PredictionCache cache_;
  MicroBatcher batcher_;
  ServerStats stats_;
};

}  // namespace cpr::serve
