#include "serve/model_store.hpp"

#include <cmath>
#include <iterator>

#include "common/model_registry.hpp"
#include "core/model_file.hpp"
#include "util/log.hpp"
#include "util/quantize.hpp"
#include "util/serialize.hpp"

namespace cpr::serve {

namespace {

/// OBSERVE/REFIT replay observations on top of the loaded parameters; doing
/// that over quantized (lossy) factors would silently diverge from offline
/// training, so anything but an fp64 archive is refused by name.
void check_refittable(const std::string& name, const common::Regressor& model,
                      const char* verb) {
  CPR_CHECK_MSG(model.archive_quant_mode() == QuantMode::F64,
                "model '" << name << "' was loaded from an archive quantized as "
                          << util::quant_mode_name(model.archive_quant_mode())
                          << " and cannot " << verb
                          << ": refit of lossy models is out of scope (save the "
                             "archive with --quantize=fp64 to refit)");
}

/// Stats the archive identity used for hot-reload detection. Returns false
/// (without touching the outputs) when either stat fails — the archive is
/// mid-rewrite or transiently missing.
bool stat_archive(const std::string& path, std::filesystem::file_time_type& mtime,
                  std::uintmax_t& size) {
  std::error_code ec;
  const auto m = std::filesystem::last_write_time(path, ec);
  if (ec) return false;
  const auto s = std::filesystem::file_size(path, ec);
  if (ec) return false;
  mtime = m;
  size = s;
  return true;
}

}  // namespace

ModelStore::ModelStore(std::string directory, std::chrono::milliseconds reload_check,
                       std::size_t observe_buffer)
    : directory_(std::move(directory)),
      reload_check_(reload_check),
      observe_buffer_(observe_buffer) {
  CPR_CHECK_MSG(observe_buffer_ > 0, "observation buffer needs at least one slot");
}

std::shared_ptr<LoadedModel> ModelStore::load_archive(const std::string& name) const {
  const std::string path = core::model_file_path(directory_, name);
  auto loaded = std::make_shared<LoadedModel>();
  CPR_CHECK_MSG(stat_archive(path, loaded->mtime, loaded->size),
                "unknown model '" << name << "': cannot stat " << path);
  loaded->name = name;
  loaded->path = path;
  loaded->generation = 0;  // assigned when published
  loaded->model = core::load_model_file(path);
  CPR_CHECK_MSG(loaded->model->input_dims() > 0,
                path << ": archive holds an unfitted model");
  return loaded;
}

ModelHandle ModelStore::publish(std::shared_ptr<LoadedModel> loaded,
                                const LoadedModel* expected_current, bool force) {
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = entries_.find(loaded->name);
  if (!force && it != entries_.end() && it->second.handle.get() != expected_current) {
    return it->second.handle;  // a concurrent load already published a newer one
  }
  loaded->generation = next_generation_++;
  ModelHandle handle = std::move(loaded);
  // Update in place: pending observations survive reloads and refits.
  Entry& entry = entries_[handle->name];
  entry.handle = handle;
  entry.last_check = std::chrono::steady_clock::now();
  return handle;
}

ModelHandle ModelStore::acquire(const std::string& name) {
  ModelHandle resident;  // instance to replace on hot reload, if any
  {
    std::lock_guard<std::mutex> lock(mu_);
    const auto it = entries_.find(name);
    if (it != entries_.end()) {
      // Hot reload: when the archive changed on disk, replace the resident
      // instance. The stat is throttled so acquire() stays cheap.
      const auto now = std::chrono::steady_clock::now();
      if (now - it->second.last_check < reload_check_) return it->second.handle;
      std::filesystem::file_time_type mtime;
      std::uintmax_t size = 0;
      if (!stat_archive(it->second.handle->path, mtime, size)) {
        // Transient stat failure (mid-rewrite, racing unlink): keep serving
        // the resident instance, but leave last_check untouched so the next
        // acquire retries immediately instead of pinning a possibly stale
        // handle for a whole throttle interval.
        return it->second.handle;
      }
      it->second.last_check = now;
      // Compare (mtime, size), not mtime alone: a rewrite landing within
      // the file system's mtime granularity still changes the byte size in
      // practice, and either difference must trigger a reload.
      if (mtime == it->second.handle->mtime && size == it->second.handle->size) {
        return it->second.handle;
      }
      resident = it->second.handle;
    }
  }
  // Load with the lock released: a slow archive read must not stall
  // requests for other (or the resident) models.
  try {
    ModelHandle handle = publish(load_archive(name), resident.get(), /*force=*/false);
    if (resident && handle.get() != resident.get()) {
      log_line(LogLevel::Info, "hot-reloaded model",
               {{"model", handle->name},
                {"generation", std::to_string(handle->generation)}});
    }
    return handle;
  } catch (const std::exception& e) {
    // A half-rewritten archive must not take a healthy model out of
    // service: keep the resident instance and retry after the throttle.
    if (resident) {
      log_line(LogLevel::Warn, "hot reload failed; keeping resident model",
               {{"model", name}, {"error", e.what()}});
      return resident;
    }
    throw;
  } catch (...) {
    if (resident) return resident;
    throw;
  }
}

ModelHandle ModelStore::load(const std::string& name) {
  return publish(load_archive(name), nullptr, /*force=*/true);
}

void ModelStore::unload(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = entries_.find(name);
  CPR_CHECK_MSG(it != entries_.end(), "model '" << name << "' is not loaded");
  dropped_unloaded_ += it->second.dropped;
  entries_.erase(it);
}

ModelStore::ObserveResult ModelStore::observe(const std::string& name,
                                              const grid::Config& x, double seconds) {
  CPR_CHECK_MSG(std::isfinite(seconds) && seconds > 0.0,
                "OBSERVE seconds must be a positive finite number");
  ObserveResult result;
  result.handle = acquire(name);
  const common::Regressor& model = *result.handle->model;
  CPR_CHECK_MSG(model.supports_observe(),
                "model '" << name << "' (family " << model.type_tag()
                          << ") does not support OBSERVE");
  check_refittable(name, model, "OBSERVE");
  CPR_CHECK_MSG(x.size() == model.input_dims(),
                "model '" << name << "' expects " << model.input_dims()
                          << " values, got " << x.size());
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = entries_.find(name);
  CPR_CHECK_MSG(it != entries_.end(), "model '" << name << "' is not loaded");
  Entry& entry = it->second;
  if (entry.pending.size() >= observe_buffer_) {
    entry.pending.pop_front();  // bounded buffer: the freshest signal wins
    ++entry.dropped;
  }
  entry.pending.push_back(Observation{x, seconds});
  result.buffered = entry.pending.size();
  return result;
}

ModelStore::RefitResult ModelStore::refit(const std::string& name) {
  const ModelHandle resident = acquire(name);
  const common::Regressor& model = *resident->model;
  CPR_CHECK_MSG(model.supports_observe(),
                "model '" << name << "' (family " << model.type_tag()
                          << ") does not support REFIT");
  check_refittable(name, model, "REFIT");
  std::vector<Observation> batch;
  {
    std::lock_guard<std::mutex> lock(mu_);
    const auto it = entries_.find(name);
    CPR_CHECK_MSG(it != entries_.end(), "model '" << name << "' is not loaded");
    batch.assign(std::make_move_iterator(it->second.pending.begin()),
                 std::make_move_iterator(it->second.pending.end()));
    it->second.pending.clear();
  }
  // Clone through the registry archive round-trip: the resident instance is
  // shared with in-flight predicts and must stay immutable, and the round
  // trip restores the exact streaming state — so replaying the buffer below
  // is bitwise-equal to an offline model fed the same observations.
  BufferSink sink;
  model.save(sink);
  BufferSource source(sink.buffer());
  common::RegressorPtr clone =
      common::ModelRegistry::instance().load(model.type_tag(), source);
  for (const Observation& obs : batch) clone->observe(obs.x, obs.seconds);
  clone->refresh();

  auto loaded = std::make_shared<LoadedModel>();
  loaded->name = resident->name;
  loaded->path = resident->path;
  loaded->mtime = resident->mtime;  // disk identity unchanged: refit is in-memory
  loaded->size = resident->size;
  loaded->model = std::move(clone);
  RefitResult result;
  result.handle = publish(std::move(loaded), nullptr, /*force=*/true);
  result.observations = batch.size();
  return result;
}

std::size_t ModelStore::buffered_observations() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::size_t total = 0;
  for (const auto& [name, entry] : entries_) total += entry.pending.size();
  return total;
}

std::uint64_t ModelStore::dropped_observations() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::uint64_t total = dropped_unloaded_;
  for (const auto& [name, entry] : entries_) total += entry.dropped;
  return total;
}

std::vector<std::string> ModelStore::loaded_names() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::string> names;
  names.reserve(entries_.size());
  for (const auto& [name, entry] : entries_) names.push_back(name);
  return names;
}

std::vector<std::string> ModelStore::available() const {
  return core::list_model_archives(directory_);
}

}  // namespace cpr::serve
