#include "serve/model_store.hpp"

#include "core/model_file.hpp"
#include "util/log.hpp"

namespace cpr::serve {

ModelStore::ModelStore(std::string directory, std::chrono::milliseconds reload_check)
    : directory_(std::move(directory)), reload_check_(reload_check) {}

std::shared_ptr<LoadedModel> ModelStore::load_archive(const std::string& name) const {
  const std::string path = core::model_file_path(directory_, name);
  std::error_code ec;
  const auto mtime = std::filesystem::last_write_time(path, ec);
  CPR_CHECK_MSG(!ec, "unknown model '" << name << "': cannot stat " << path);
  auto loaded = std::make_shared<LoadedModel>();
  loaded->name = name;
  loaded->path = path;
  loaded->generation = 0;  // assigned when published
  loaded->mtime = mtime;
  loaded->model = core::load_model_file(path);
  CPR_CHECK_MSG(loaded->model->input_dims() > 0,
                path << ": archive holds an unfitted model");
  return loaded;
}

ModelHandle ModelStore::publish(std::shared_ptr<LoadedModel> loaded,
                                const LoadedModel* expected_current, bool force) {
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = entries_.find(loaded->name);
  if (!force && it != entries_.end() && it->second.handle.get() != expected_current) {
    return it->second.handle;  // a concurrent load already published a newer one
  }
  loaded->generation = next_generation_++;
  ModelHandle handle = std::move(loaded);
  entries_[handle->name] = Entry{handle, std::chrono::steady_clock::now()};
  return handle;
}

ModelHandle ModelStore::acquire(const std::string& name) {
  ModelHandle resident;  // instance to replace on hot reload, if any
  {
    std::lock_guard<std::mutex> lock(mu_);
    const auto it = entries_.find(name);
    if (it != entries_.end()) {
      // Hot reload: when the archive changed on disk, replace the resident
      // instance. The stat is throttled so acquire() stays cheap.
      const auto now = std::chrono::steady_clock::now();
      if (now - it->second.last_check < reload_check_) return it->second.handle;
      it->second.last_check = now;
      std::error_code ec;
      const auto mtime = std::filesystem::last_write_time(it->second.handle->path, ec);
      // A transiently missing file (mid-rewrite) keeps serving the resident
      // instance; the next acquire past the throttle re-checks.
      if (ec || mtime == it->second.handle->mtime) return it->second.handle;
      resident = it->second.handle;
    }
  }
  // Load with the lock released: a slow archive read must not stall
  // requests for other (or the resident) models.
  try {
    ModelHandle handle = publish(load_archive(name), resident.get(), /*force=*/false);
    if (resident && handle.get() != resident.get()) {
      log_line(LogLevel::Info, "hot-reloaded model",
               {{"model", handle->name},
                {"generation", std::to_string(handle->generation)}});
    }
    return handle;
  } catch (const std::exception& e) {
    // A half-rewritten archive must not take a healthy model out of
    // service: keep the resident instance and retry after the throttle.
    if (resident) {
      log_line(LogLevel::Warn, "hot reload failed; keeping resident model",
               {{"model", name}, {"error", e.what()}});
      return resident;
    }
    throw;
  } catch (...) {
    if (resident) return resident;
    throw;
  }
}

ModelHandle ModelStore::load(const std::string& name) {
  return publish(load_archive(name), nullptr, /*force=*/true);
}

void ModelStore::unload(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  CPR_CHECK_MSG(entries_.erase(name) == 1, "model '" << name << "' is not loaded");
}

std::vector<std::string> ModelStore::loaded_names() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::string> names;
  names.reserve(entries_.size());
  for (const auto& [name, entry] : entries_) names.push_back(name);
  return names;
}

std::vector<std::string> ModelStore::available() const {
  return core::list_model_archives(directory_);
}

}  // namespace cpr::serve
