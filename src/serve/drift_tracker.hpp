#pragma once
// Rolling drift telemetry for the online-learning serving path.
//
// Every OBSERVE carries ground truth: the measured seconds for a
// configuration the model would have predicted. DriftTracker keeps the
// signed log-error log(predicted / observed) of the most recent
// observations in a fixed ring, so the server can expose how far its
// resident generation has drifted from the live workload — and how far a
// refit pulled it back. Signed mean ≈ systematic bias (positive =
// over-prediction); mean magnitude ≈ MLogQ against the live stream, the
// same error the paper's figures use.

#include <cstdint>
#include <mutex>
#include <vector>

namespace cpr::serve {

class DriftTracker {
 public:
  /// `window` is the number of most-recent observations the rolling means
  /// cover; the default matches OnlineCprModel's refresh interval.
  explicit DriftTracker(std::size_t window = 256);

  /// Records one prediction/ground-truth pair. Pairs that have no
  /// well-defined log ratio (non-positive or non-finite values) are counted
  /// but excluded from the window.
  void record(double predicted, double observed);

  struct Snapshot {
    std::uint64_t observations = 0;  ///< lifetime record() calls
    std::size_t window = 0;          ///< samples currently in the ring
    double signed_log_error = 0.0;   ///< mean log(pred/observed) over window
    double abs_log_error = 0.0;      ///< mean |log(pred/observed)| over window
  };
  Snapshot snapshot() const;

 private:
  mutable std::mutex mu_;
  std::vector<double> ring_;
  std::size_t next_ = 0;
  std::size_t filled_ = 0;
  std::uint64_t total_ = 0;
};

}  // namespace cpr::serve
