#include "serve/drift_tracker.hpp"

#include <cmath>

#include "util/check.hpp"

namespace cpr::serve {

DriftTracker::DriftTracker(std::size_t window) : ring_(window) {
  CPR_CHECK_MSG(window > 0, "drift window needs at least one slot");
}

void DriftTracker::record(double predicted, double observed) {
  std::lock_guard<std::mutex> lock(mu_);
  ++total_;
  if (!(predicted > 0.0) || !(observed > 0.0) || !std::isfinite(predicted) ||
      !std::isfinite(observed)) {
    return;  // no log ratio; keep the window's history intact
  }
  ring_[next_] = std::log(predicted / observed);
  next_ = (next_ + 1) % ring_.size();
  if (filled_ < ring_.size()) ++filled_;
}

DriftTracker::Snapshot DriftTracker::snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  Snapshot snap;
  snap.observations = total_;
  snap.window = filled_;
  if (filled_ == 0) return snap;
  double sum = 0.0, abs_sum = 0.0;
  for (std::size_t i = 0; i < filled_; ++i) {
    sum += ring_[i];
    abs_sum += std::fabs(ring_[i]);
  }
  snap.signed_log_error = sum / static_cast<double>(filled_);
  snap.abs_log_error = abs_sum / static_cast<double>(filled_);
  return snap;
}

}  // namespace cpr::serve
