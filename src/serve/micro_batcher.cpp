#include "serve/micro_batcher.hpp"

#include <algorithm>

#include "linalg/matrix.hpp"
#include "util/kernel_mode.hpp"

namespace cpr::serve {

MicroBatcher::MicroBatcher(Options options) : options_(options) {
  CPR_CHECK_MSG(options_.workers > 0, "micro-batcher needs at least one worker");
  CPR_CHECK_MSG(options_.max_batch > 0, "micro-batcher needs max_batch >= 1");
  CPR_CHECK_MSG(options_.queue_capacity >= options_.max_batch,
                "queue capacity below max_batch starves batches");
  workers_.reserve(options_.workers);
  for (std::size_t i = 0; i < options_.workers; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

MicroBatcher::~MicroBatcher() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stopping_ = true;
  }
  not_empty_.notify_all();
  not_full_.notify_all();
  for (auto& worker : workers_) worker.join();
}

std::future<double> MicroBatcher::submit(ModelHandle model, grid::Config config,
                                         obs::TraceHandle trace) {
  CPR_CHECK_MSG(model && model->model, "submit() needs a loaded model");
  CPR_CHECK_MSG(config.size() == model->model->input_dims(),
                "query has " << config.size() << " values; model '" << model->name
                             << "' expects " << model->model->input_dims());
  Job job;
  job.model = std::move(model);
  job.config = std::move(config);
  job.trace = std::move(trace);
  job.submitted_ns = obs::monotonic_ns();
  std::future<double> result = job.result.get_future();
  {
    std::unique_lock<std::mutex> lock(mu_);
    not_full_.wait(lock,
                   [this] { return stopping_ || queue_.size() < options_.queue_capacity; });
    CPR_CHECK_MSG(!stopping_, "micro-batcher is shut down");
    queue_.push_back(std::move(job));
    ++stats_.submitted;
  }
  not_empty_.notify_one();
  return result;
}

MicroBatcher::Stats MicroBatcher::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

void MicroBatcher::sweep_locked(std::vector<Job>& batch, const LoadedModel* key) {
  for (auto it = queue_.begin();
       it != queue_.end() && batch.size() < options_.max_batch;) {
    if (it->model.get() == key) {
      batch.push_back(std::move(*it));
      it = queue_.erase(it);
    } else {
      ++it;
    }
  }
}

void MicroBatcher::run_batch(std::vector<Job>& batch) const {
  // Batch-wait closes when the batch starts executing: every member waited
  // from its own submit until now.
  const std::uint64_t picked_up_ns = obs::monotonic_ns();
  const std::string batch_size = std::to_string(batch.size());
  for (const Job& job : batch) {
    if (options_.batch_wait_histogram) {
      options_.batch_wait_histogram->record(
          static_cast<double>(picked_up_ns - job.submitted_ns) * 1e-9);
    }
    if (job.trace) {
      obs::TraceSpan span;
      span.name = "batch_wait";
      span.start_ns = job.submitted_ns;
      span.end_ns = picked_up_ns;
      job.trace->add_span(std::move(span));
    }
  }

  const common::Regressor& model = *batch.front().model->model;
  try {
    linalg::Matrix queries(batch.size(), model.input_dims());
    for (std::size_t i = 0; i < batch.size(); ++i) {
      std::copy(batch[i].config.begin(), batch[i].config.end(), queries.row_ptr(i));
    }
    const std::vector<double> predictions = model.predict_batch(queries);
    const std::uint64_t done_ns = obs::monotonic_ns();
    if (options_.predict_histogram) {
      options_.predict_histogram->record(
          static_cast<double>(done_ns - picked_up_ns) * 1e-9);
    }
    for (std::size_t i = 0; i < batch.size(); ++i) {
      if (batch[i].trace) {
        obs::TraceSpan span;
        span.name = "predict";
        span.start_ns = picked_up_ns;
        span.end_ns = done_ns;
        span.args.emplace_back("batch", batch_size);
        span.args.emplace_back("kernel", kernel_mode_name(kernel_mode()));
        span.args.emplace_back("model", batch[i].model->name);
        batch[i].trace->add_span(std::move(span));
      }
      batch[i].result.set_value(predictions[i]);
    }
  } catch (...) {
    for (auto& job : batch) job.result.set_exception(std::current_exception());
  }
}

void MicroBatcher::worker_loop() {
  for (;;) {
    std::vector<Job> batch;
    {
      std::unique_lock<std::mutex> lock(mu_);
      not_empty_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stopping, fully drained

      // Open a batch with the oldest request, then give same-model
      // stragglers up to max_wait_us to join before flushing.
      batch.push_back(std::move(queue_.front()));
      queue_.pop_front();
      const LoadedModel* key = batch.front().model.get();
      const auto deadline = std::chrono::steady_clock::now() +
                            std::chrono::microseconds(options_.max_wait_us);
      for (;;) {
        sweep_locked(batch, key);
        if (batch.size() >= options_.max_batch || stopping_) break;
        if (not_empty_.wait_until(lock, deadline) == std::cv_status::timeout) {
          sweep_locked(batch, key);  // pick up arrivals that raced the timeout
          break;
        }
      }
      ++stats_.batches;
      stats_.max_batch_seen = std::max(stats_.max_batch_seen,
                                       static_cast<std::uint64_t>(batch.size()));
    }
    not_full_.notify_all();
    run_batch(batch);
  }
}

}  // namespace cpr::serve
