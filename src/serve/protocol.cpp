#include "serve/protocol.hpp"

#include <cstdio>
#include <sstream>

#include "common/dataset_io.hpp"
#include "util/check.hpp"

namespace cpr::serve {

namespace {

std::vector<std::string> tokenize(const std::string& line) {
  std::istringstream stream(line);
  std::vector<std::string> tokens;
  std::string token;
  while (stream >> token) tokens.push_back(std::move(token));
  return tokens;
}

void expect_arity(const std::vector<std::string>& tokens, std::size_t expected) {
  CPR_CHECK_MSG(tokens.size() == expected,
                "request '" << tokens.front() << "' takes " << expected - 1
                            << " argument(s), got " << tokens.size() - 1);
}

}  // namespace

Request parse_request(const std::string& line) {
  const auto tokens = tokenize(line);
  CPR_CHECK_MSG(!tokens.empty(), "empty request");
  const std::string& command = tokens.front();

  Request request;
  if (command == "PREDICT") {
    expect_arity(tokens, 3);
    request.kind = RequestKind::Predict;
    request.model = tokens[1];
    for (const auto& field :
         common::split_fields(tokens[2], ',', "PREDICT value list")) {
      request.values.push_back(common::parse_number(field, "PREDICT value list"));
    }
    CPR_CHECK_MSG(!request.values.empty(), "PREDICT needs at least one value");
  } else if (command == "LOAD") {
    expect_arity(tokens, 2);
    request.kind = RequestKind::Load;
    request.model = tokens[1];
  } else if (command == "UNLOAD") {
    expect_arity(tokens, 2);
    request.kind = RequestKind::Unload;
    request.model = tokens[1];
  } else if (command == "STATS") {
    expect_arity(tokens, 1);
    request.kind = RequestKind::Stats;
  } else if (command == "QUIT") {
    expect_arity(tokens, 1);
    request.kind = RequestKind::Quit;
  } else {
    CPR_CHECK_MSG(false, "unknown request '" << command
                                             << "' (PREDICT/LOAD/UNLOAD/STATS/QUIT)");
  }
  return request;
}

std::string format_prediction(double seconds) {
  char buffer[40];
  std::snprintf(buffer, sizeof(buffer), "OK %.17g", seconds);
  return buffer;
}

std::string format_error(const std::string& what) {
  // CheckError messages read "CPR_CHECK failed: (...) at file:line — cause";
  // everything before the em-dash is for developers, not protocol clients.
  const auto dash = what.rfind(" — ");
  std::string reason =
      dash == std::string::npos ? what : what.substr(dash + std::string(" — ").size());
  std::ostringstream os;
  os << "ERR " << reason;
  return os.str();
}

}  // namespace cpr::serve
