#include "serve/protocol.hpp"

#include <cstdio>
#include <sstream>

#include "common/dataset_io.hpp"
#include "util/check.hpp"

namespace cpr::serve {

namespace {

std::vector<std::string> tokenize(const std::string& line) {
  std::istringstream stream(line);
  std::vector<std::string> tokens;
  std::string token;
  while (stream >> token) tokens.push_back(std::move(token));
  return tokens;
}

void expect_arity(const std::vector<std::string>& tokens, std::size_t expected) {
  CPR_CHECK_MSG(tokens.size() == expected,
                "request '" << tokens.front() << "' takes " << expected - 1
                            << " argument(s), got " << tokens.size() - 1);
}

}  // namespace

Request parse_request(const std::string& line) {
  const auto tokens = tokenize(line);
  CPR_CHECK_MSG(!tokens.empty(), "empty request");
  const std::string& command = tokens.front();

  Request request;
  if (command == "PREDICT") {
    expect_arity(tokens, 3);
    request.kind = RequestKind::Predict;
    request.model = tokens[1];
    for (const auto& field :
         common::split_fields(tokens[2], ',', "PREDICT value list")) {
      request.values.push_back(common::parse_number(field, "PREDICT value list"));
    }
    CPR_CHECK_MSG(!request.values.empty(), "PREDICT needs at least one value");
  } else if (command == "OBSERVE") {
    expect_arity(tokens, 4);
    request.kind = RequestKind::Observe;
    request.model = tokens[1];
    for (const auto& field :
         common::split_fields(tokens[2], ',', "OBSERVE value list")) {
      request.values.push_back(common::parse_number(field, "OBSERVE value list"));
    }
    CPR_CHECK_MSG(!request.values.empty(), "OBSERVE needs at least one value");
    request.seconds = common::parse_number(tokens[3], "OBSERVE seconds");
    CPR_CHECK_MSG(request.seconds > 0.0, "OBSERVE seconds must be positive");
  } else if (command == "REFIT") {
    expect_arity(tokens, 2);
    request.kind = RequestKind::Refit;
    request.model = tokens[1];
  } else if (command == "LOAD") {
    expect_arity(tokens, 2);
    request.kind = RequestKind::Load;
    request.model = tokens[1];
  } else if (command == "UNLOAD") {
    expect_arity(tokens, 2);
    request.kind = RequestKind::Unload;
    request.model = tokens[1];
  } else if (command == "STATS") {
    expect_arity(tokens, 1);
    request.kind = RequestKind::Stats;
  } else if (command == "METRICS") {
    expect_arity(tokens, 1);
    request.kind = RequestKind::Metrics;
  } else if (command == "QUIT") {
    expect_arity(tokens, 1);
    request.kind = RequestKind::Quit;
  } else if (command == "FRAME") {
    // The TCP transport intercepts a well-formed `FRAME BINARY` before
    // dispatch; reaching the parser means the transport does not support
    // framing (stdio/Unix socket) or the argument is wrong.
    CPR_CHECK_MSG(false,
                  "FRAME BINARY is only available on the TCP transport");
  } else {
    CPR_CHECK_MSG(
        false, "unknown request '"
                   << command
                   << "' (PREDICT/OBSERVE/REFIT/LOAD/UNLOAD/STATS/METRICS/QUIT)");
  }
  return request;
}

std::string format_prediction(double seconds) {
  char buffer[40];
  std::snprintf(buffer, sizeof(buffer), "OK %.17g", seconds);
  return buffer;
}

bool is_frame_binary_request(const std::string& line) {
  const auto tokens = tokenize(line);
  return tokens.size() == 2 && tokens[0] == "FRAME" && tokens[1] == "BINARY";
}

std::string encode_frame(std::string_view payload) {
  CPR_CHECK_MSG(payload.size() <= kMaxFrameBytes,
                "frame payload of " << payload.size() << " bytes exceeds the "
                                    << kMaxFrameBytes << "-byte frame limit");
  const auto length = static_cast<std::uint32_t>(payload.size());
  std::string frame(4, '\0');
  frame[0] = static_cast<char>(length & 0xff);
  frame[1] = static_cast<char>((length >> 8) & 0xff);
  frame[2] = static_cast<char>((length >> 16) & 0xff);
  frame[3] = static_cast<char>((length >> 24) & 0xff);
  frame.append(payload);
  return frame;
}

FrameDecoder::FrameDecoder(std::uint32_t max_frame_bytes)
    : max_frame_bytes_(max_frame_bytes) {
  CPR_CHECK_MSG(max_frame_bytes_ > 0, "frame size limit must be positive");
}

void FrameDecoder::feed(std::string_view bytes) { buffer_.append(bytes); }

bool FrameDecoder::next(std::string& payload) {
  CPR_CHECK_MSG(!poisoned_, "binary frame stream already failed — close the connection");
  if (buffer_.size() < 4) return false;
  const std::uint32_t length =
      static_cast<std::uint32_t>(static_cast<unsigned char>(buffer_[0])) |
      (static_cast<std::uint32_t>(static_cast<unsigned char>(buffer_[1])) << 8) |
      (static_cast<std::uint32_t>(static_cast<unsigned char>(buffer_[2])) << 16) |
      (static_cast<std::uint32_t>(static_cast<unsigned char>(buffer_[3])) << 24);
  if (length == 0 || length > max_frame_bytes_) {
    poisoned_ = true;
    CPR_CHECK_MSG(false, "invalid binary frame length " << length << " (limit "
                                                        << max_frame_bytes_ << ")");
  }
  if (buffer_.size() < 4 + static_cast<std::size_t>(length)) return false;
  payload.assign(buffer_, 4, length);
  buffer_.erase(0, 4 + static_cast<std::size_t>(length));
  return true;
}

std::string format_error(const std::string& what) {
  // CheckError messages read "CPR_CHECK failed: (...) at file:line — cause";
  // everything before the em-dash is for developers, not protocol clients.
  const auto dash = what.rfind(" — ");
  std::string reason =
      dash == std::string::npos ? what : what.substr(dash + std::string(" — ").size());
  std::ostringstream os;
  os << "ERR " << reason;
  return os.str();
}

}  // namespace cpr::serve
