#pragma once
// Aggregate error metrics of Table 1 (Section 2.2).
//
// The paper's headline metric is MLogQ — the arithmetic mean of the absolute
// log accuracy ratio |log(m/y)| — because it is scale-independent: model
// outputs a*y and y/a receive equal penalty. All seven Table-1 metrics are
// implemented (means, i.e. the table's sums divided by M) so the table's
// identities can be verified programmatically (bench/table1_metrics).

#include <vector>

namespace cpr::metrics {

/// Mean absolute percentage error: mean |m - y| / y.
double mape(const std::vector<double>& predictions, const std::vector<double>& truths);

/// Mean absolute error: mean |m - y|.
double mae(const std::vector<double>& predictions, const std::vector<double>& truths);

/// Mean squared error: mean (m - y)^2.
double mse(const std::vector<double>& predictions, const std::vector<double>& truths);

/// Symmetric MAPE: mean 2|m - y| / (y + m).
double smape(const std::vector<double>& predictions, const std::vector<double>& truths);

/// Log geometric-mean relative error: mean log(|m - y| / y).
double lgmape(const std::vector<double>& predictions, const std::vector<double>& truths);

/// Mean absolute log accuracy ratio: mean |log(m / y)| — the paper's
/// primary metric. Non-positive predictions are floored at 1e-16 (the
/// treatment the paper applies in Figure 1).
double mlogq(const std::vector<double>& predictions, const std::vector<double>& truths);

/// Mean squared log accuracy ratio: mean log^2(m / y).
double mlogq2(const std::vector<double>& predictions, const std::vector<double>& truths);

/// GM of the accuracy ratio = exp(mean log(m/y)); bias diagnostic (1 = unbiased).
double geometric_mean_ratio(const std::vector<double>& predictions,
                            const std::vector<double>& truths);

}  // namespace cpr::metrics
