#include "metrics/metrics.hpp"

#include <cmath>

#include "util/check.hpp"

namespace cpr::metrics {

namespace {

constexpr double kPredictionFloor = 1e-16;  // paper's floor for non-positive outputs

template <typename F>
double mean_over(const std::vector<double>& predictions, const std::vector<double>& truths,
                 F&& term) {
  CPR_CHECK_MSG(predictions.size() == truths.size(), "prediction/truth size mismatch");
  CPR_CHECK_MSG(!predictions.empty(), "metrics need at least one sample");
  double total = 0.0;
  for (std::size_t k = 0; k < predictions.size(); ++k) {
    total += term(predictions[k], truths[k]);
  }
  return total / static_cast<double>(predictions.size());
}

double floored(double m) { return m > kPredictionFloor ? m : kPredictionFloor; }

}  // namespace

double mape(const std::vector<double>& predictions, const std::vector<double>& truths) {
  return mean_over(predictions, truths,
                   [](double m, double y) { return std::abs(m - y) / y; });
}

double mae(const std::vector<double>& predictions, const std::vector<double>& truths) {
  return mean_over(predictions, truths, [](double m, double y) { return std::abs(m - y); });
}

double mse(const std::vector<double>& predictions, const std::vector<double>& truths) {
  return mean_over(predictions, truths, [](double m, double y) {
    const double d = m - y;
    return d * d;
  });
}

double smape(const std::vector<double>& predictions, const std::vector<double>& truths) {
  return mean_over(predictions, truths,
                   [](double m, double y) { return 2.0 * std::abs(m - y) / (y + m); });
}

double lgmape(const std::vector<double>& predictions, const std::vector<double>& truths) {
  return mean_over(predictions, truths, [](double m, double y) {
    return std::log(std::max(std::abs(m - y) / y, kPredictionFloor));
  });
}

double mlogq(const std::vector<double>& predictions, const std::vector<double>& truths) {
  return mean_over(predictions, truths, [](double m, double y) {
    return std::abs(std::log(floored(m) / y));
  });
}

double mlogq2(const std::vector<double>& predictions, const std::vector<double>& truths) {
  return mean_over(predictions, truths, [](double m, double y) {
    const double q = std::log(floored(m) / y);
    return q * q;
  });
}

double geometric_mean_ratio(const std::vector<double>& predictions,
                            const std::vector<double>& truths) {
  return std::exp(mean_over(predictions, truths, [](double m, double y) {
    return std::log(floored(m) / y);
  }));
}

}  // namespace cpr::metrics
