#pragma once
// Model-evaluation helpers shared by benches and tests.

#include "common/dataset.hpp"
#include "common/regressor.hpp"

namespace cpr::common {

/// MLogQ prediction error of a fitted model on a test set (Section 2.2).
double evaluate_mlogq(const Regressor& model, const Dataset& test);

/// MLogQ2 (mean squared log accuracy ratio) on a test set.
double evaluate_mlogq2(const Regressor& model, const Dataset& test);

/// MAPE on a test set (for bias diagnostics).
double evaluate_mape(const Regressor& model, const Dataset& test);

}  // namespace cpr::common
