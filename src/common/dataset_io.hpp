#pragma once
// CSV persistence for datasets, so real measurements can be fed to the
// models: one header row naming the d parameters plus a final time column,
// then one row per observed configuration. The strict field helpers at the
// top are shared by every consumer of comma-separated input — dataset rows,
// query files (cpr_predict), CLI list flags (cpr_train), and the serving
// protocol's value lists (serve/protocol) — so malformed input fails loudly
// with one set of semantics instead of tool-specific parsing quirks.

#include <map>
#include <string>
#include <utility>

#include "common/dataset.hpp"

namespace cpr::common {

/// Splits `text` on `delimiter`. Empty entries (leading/trailing/doubled
/// delimiters, as in "a,,b" or "a,b,") are rejected with a CheckError naming
/// `context`, never dropped silently. An empty `text` yields no entries.
std::vector<std::string> split_fields(const std::string& text, char delimiter,
                                      const std::string& context);

/// Strict string -> double: the whole field must parse and the value must be
/// finite (NaN/inf are rejected — they poison grid lookups and cache keys).
/// Throws CheckError naming `context` otherwise.
double parse_number(const std::string& field, const std::string& context);

/// Writes `data` as CSV; `parameter_names` must have d entries (the time
/// column is always named "seconds").
void save_dataset_csv(const Dataset& data, const std::vector<std::string>& parameter_names,
                      const std::string& path);

struct LoadedDataset {
  Dataset data;
  std::vector<std::string> parameter_names;
};

/// Reads a CSV written by save_dataset_csv (or hand-made with the same
/// layout). Throws CheckError on malformed content (ragged rows, empty or
/// non-numeric fields, non-positive times).
LoadedDataset load_dataset_csv(const std::string& path);

struct LoadedQueries {
  linalg::Matrix x;                          ///< one query configuration per row
  std::vector<std::string> parameter_names;  ///< header minus any seconds column
  std::vector<double> truths;  ///< ground-truth seconds (empty without the column)

  bool has_truth() const { return !truths.empty(); }
};

/// Reads a query CSV: the training layout minus the "seconds" column. If a
/// trailing seconds column is present it is returned as ground truth.
/// Same loud-failure semantics as load_dataset_csv (ragged rows, empty or
/// non-numeric fields); ground-truth times must be positive.
LoadedQueries load_query_csv(const std::string& path);

/// Parses a `--hyper=key:value,...` flag value into a hyper map; rejects
/// entries without a `key:` prefix. Shared by cpr_train and cpr_tune so
/// flag semantics cannot drift between the tools.
std::map<std::string, std::string> parse_hyper_entries(const std::string& text);

/// Parses a `--categorical=name:count,...` flag value.
std::vector<std::pair<std::string, std::size_t>> parse_categorical_entries(
    const std::string& text);

/// Derives the ParameterSpec list the training/tuning tools build from a
/// loaded dataset: ranges come from the data, names listed in `log_dims`
/// get logarithmic spacing (inputs/architecture), entries of `categoricals`
/// (name, category count) are treated as categorical modes, and columns
/// whose observed values are all integral are marked integral. Throws
/// CheckError for constant columns and non-positive log ranges.
std::vector<grid::ParameterSpec> infer_parameter_specs(
    const LoadedDataset& loaded, const std::vector<std::string>& log_dims,
    const std::vector<std::pair<std::string, std::size_t>>& categoricals);

}  // namespace cpr::common
