#pragma once
// CSV persistence for datasets, so real measurements can be fed to the
// models: one header row naming the d parameters plus a final time column,
// then one row per observed configuration.

#include <string>

#include "common/dataset.hpp"

namespace cpr::common {

/// Writes `data` as CSV; `parameter_names` must have d entries (the time
/// column is always named "seconds").
void save_dataset_csv(const Dataset& data, const std::vector<std::string>& parameter_names,
                      const std::string& path);

struct LoadedDataset {
  Dataset data;
  std::vector<std::string> parameter_names;
};

/// Reads a CSV written by save_dataset_csv (or hand-made with the same
/// layout). Throws CheckError on malformed content (ragged rows,
/// non-numeric fields, non-positive times).
LoadedDataset load_dataset_csv(const std::string& path);

}  // namespace cpr::common
