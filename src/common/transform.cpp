#include "common/transform.hpp"

#include <cmath>

namespace cpr::common {

Dataset FeatureTransform::apply(const Dataset& data) const {
  CPR_CHECK(log_feature.size() == data.dimensions());
  Dataset out = data;
  for (std::size_t j = 0; j < data.dimensions(); ++j) {
    if (!log_feature[j]) continue;
    for (std::size_t i = 0; i < data.size(); ++i) {
      CPR_CHECK_MSG(data.x(i, j) > 0.0, "log feature transform requires positive values");
      out.x(i, j) = std::log(data.x(i, j));
    }
  }
  if (log_target) {
    for (std::size_t i = 0; i < data.size(); ++i) {
      CPR_CHECK_MSG(data.y[i] > 0.0, "log target transform requires positive values");
      out.y[i] = std::log(data.y[i]);
    }
  }
  return out;
}

grid::Config FeatureTransform::apply(const grid::Config& x) const {
  CPR_CHECK(log_feature.size() == x.size());
  grid::Config out = x;
  for (std::size_t j = 0; j < x.size(); ++j) {
    if (log_feature[j]) out[j] = std::log(x[j]);
  }
  return out;
}

void FeatureTransform::serialize(SerialSink& sink) const {
  sink.write_u64(log_feature.size());
  for (const bool flag : log_feature) {
    sink.write_pod(static_cast<std::uint8_t>(flag ? 1 : 0));
  }
  sink.write_pod(static_cast<std::uint8_t>(log_target ? 1 : 0));
}

FeatureTransform FeatureTransform::deserialize(BufferSource& source) {
  FeatureTransform transform;
  const auto dims = source.read_count();
  transform.log_feature.resize(dims);
  for (std::size_t j = 0; j < dims; ++j) {
    transform.log_feature[j] = source.read_pod<std::uint8_t>() != 0;
  }
  transform.log_target = source.read_pod<std::uint8_t>() != 0;
  return transform;
}

double LogSpaceRegressor::predict(const grid::Config& x) const {
  const double log_prediction = inner_->predict(transform_.apply(x));
  return transform_.log_target ? std::exp(log_prediction) : log_prediction;
}

void LogSpaceRegressor::save(SerialSink& sink) const {
  transform_.serialize(sink);
  sink.write_string(inner_->type_tag());
  inner_->save(sink);
}

}  // namespace cpr::common
