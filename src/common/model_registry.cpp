#include "common/model_registry.hpp"

#include <sstream>

namespace cpr::common {

std::string ModelSpec::get_string(const std::string& key,
                                  const std::string& fallback) const {
  read_.insert(key);
  const auto it = hyper.find(key);
  return it == hyper.end() ? fallback : it->second;
}

std::int64_t ModelSpec::get_int(const std::string& key, std::int64_t fallback) const {
  read_.insert(key);
  const auto it = hyper.find(key);
  if (it == hyper.end()) return fallback;
  try {
    std::size_t consumed = 0;
    const std::int64_t value = std::stoll(it->second, &consumed);
    CPR_CHECK(consumed == it->second.size());
    return value;
  } catch (const std::exception&) {
    CPR_CHECK_MSG(false, "hyper-parameter '" << key << "': '" << it->second
                                             << "' is not an integer");
  }
  return fallback;
}

double ModelSpec::get_double(const std::string& key, double fallback) const {
  read_.insert(key);
  const auto it = hyper.find(key);
  if (it == hyper.end()) return fallback;
  try {
    std::size_t consumed = 0;
    const double value = std::stod(it->second, &consumed);
    CPR_CHECK(consumed == it->second.size());
    return value;
  } catch (const std::exception&) {
    CPR_CHECK_MSG(false, "hyper-parameter '" << key << "': '" << it->second
                                             << "' is not a number");
  }
  return fallback;
}

bool ModelSpec::get_bool(const std::string& key, bool fallback) const {
  read_.insert(key);
  const auto it = hyper.find(key);
  if (it == hyper.end()) return fallback;
  if (it->second == "1" || it->second == "true" || it->second == "on") return true;
  if (it->second == "0" || it->second == "false" || it->second == "off") return false;
  CPR_CHECK_MSG(false, "hyper-parameter '" << key << "': '" << it->second
                                           << "' is not a boolean");
  return fallback;
}

std::vector<std::string> ModelSpec::unread_keys() const {
  std::vector<std::string> unread;
  for (const auto& [key, unused] : hyper) {
    if (!read_.count(key)) unread.push_back(key);
  }
  return unread;
}

std::string format_hyper_value(double v) {
  std::ostringstream stream;
  stream.precision(12);
  stream << v;
  return stream.str();
}

HyperAxis HyperAxis::grid(std::string name, std::vector<std::string> values) {
  CPR_CHECK_MSG(!name.empty(), "search-space axis needs a name");
  CPR_CHECK_MSG(!values.empty(), "axis '" << name << "': grid needs at least one value");
  for (const auto& value : values) {
    CPR_CHECK_MSG(!value.empty(), "axis '" << name << "': empty grid value");
  }
  HyperAxis axis;
  axis.name = std::move(name);
  axis.kind = Kind::Grid;
  axis.values = std::move(values);
  return axis;
}

HyperAxis HyperAxis::grid_numeric(std::string name, const std::vector<double>& values) {
  std::vector<std::string> formatted;
  formatted.reserve(values.size());
  for (const double v : values) formatted.push_back(format_hyper_value(v));
  return grid(std::move(name), std::move(formatted));
}

HyperAxis HyperAxis::linear(std::string name, double lo, double hi) {
  CPR_CHECK_MSG(!name.empty(), "search-space axis needs a name");
  CPR_CHECK_MSG(lo < hi, "axis '" << name << "': need lo < hi");
  HyperAxis axis;
  axis.name = std::move(name);
  axis.kind = Kind::Linear;
  axis.lo = lo;
  axis.hi = hi;
  return axis;
}

HyperAxis HyperAxis::log(std::string name, double lo, double hi) {
  CPR_CHECK_MSG(lo > 0.0, "axis '" << name << "': log range needs lo > 0");
  HyperAxis axis = linear(std::move(name), lo, hi);
  axis.kind = Kind::Log;
  return axis;
}

HyperAxis HyperAxis::linear_int(std::string name, std::int64_t lo, std::int64_t hi) {
  HyperAxis axis = linear(std::move(name), static_cast<double>(lo), static_cast<double>(hi));
  axis.kind = Kind::LinearInt;
  return axis;
}

HyperAxis HyperAxis::log_int(std::string name, std::int64_t lo, std::int64_t hi) {
  CPR_CHECK_MSG(lo > 0, "axis '" << name << "': log range needs lo > 0");
  HyperAxis axis = linear(std::move(name), static_cast<double>(lo), static_cast<double>(hi));
  axis.kind = Kind::LogInt;
  return axis;
}

ModelRegistry& ModelRegistry::instance() {
  static ModelRegistry* registry = [] {
    auto* r = new ModelRegistry();
    register_builtin_models(*r);
    return r;
  }();
  return *registry;
}

void ModelRegistry::register_family(const std::string& name,
                                    const std::string& description, Factory factory,
                                    Loader loader) {
  CPR_CHECK_MSG(factory && loader, "family '" << name << "' needs factory + loader");
  CPR_CHECK_MSG(!entries_.count(name), "model family '" << name
                                                        << "' registered twice");
  entries_[name] = Entry{description, std::move(factory), std::move(loader), nullptr};
}

void ModelRegistry::register_loader(const std::string& name, Loader loader) {
  CPR_CHECK_MSG(loader, "family '" << name << "' needs a loader");
  CPR_CHECK_MSG(!entries_.count(name), "model family '" << name
                                                        << "' registered twice");
  entries_[name] = Entry{"", nullptr, std::move(loader), nullptr};
}

void ModelRegistry::register_search_space(const std::string& name,
                                          SearchSpaceFactory factory) {
  CPR_CHECK_MSG(factory, "family '" << name << "' needs a search-space factory");
  const auto it = entries_.find(name);
  CPR_CHECK_MSG(it != entries_.end() && it->second.factory,
                "cannot declare a search space for unknown family '" << name << "'");
  CPR_CHECK_MSG(!it->second.space, "search space for family '" << name
                                                               << "' declared twice");
  it->second.space = std::move(factory);
}

bool ModelRegistry::has_search_space(const std::string& name) const {
  const auto it = entries_.find(name);
  return it != entries_.end() && it->second.space != nullptr;
}

std::vector<HyperAxis> ModelRegistry::search_space(const std::string& name,
                                                   const ModelSpec& base) const {
  const auto it = entries_.find(name);
  CPR_CHECK_MSG(it != entries_.end() && it->second.factory,
                "unknown model family '" << name << "'");
  CPR_CHECK_MSG(it->second.space,
                "family '" << name << "' has no declared search space");
  return it->second.space(base);
}

bool ModelRegistry::has_family(const std::string& name) const {
  const auto it = entries_.find(name);
  return it != entries_.end() && it->second.factory != nullptr;
}

bool ModelRegistry::has_loader(const std::string& type_tag) const {
  const auto it = entries_.find(type_tag);
  return it != entries_.end() && it->second.loader != nullptr;
}

RegressorPtr ModelRegistry::create(const std::string& name,
                                   const ModelSpec& spec) const {
  const auto it = entries_.find(name);
  CPR_CHECK_MSG(it != entries_.end() && it->second.factory,
                "unknown model family '" << name << "' (registered: "
                                         << [this] {
                                              std::ostringstream names;
                                              for (const auto& n : family_names()) {
                                                if (names.tellp() > 0) names << ", ";
                                                names << n;
                                              }
                                              return names.str();
                                            }()
                                         << ")");
  RegressorPtr model = it->second.factory(spec);
  CPR_CHECK(model != nullptr);
  const auto unread = spec.unread_keys();
  if (!unread.empty()) {
    std::ostringstream keys;
    for (const auto& key : unread) {
      if (keys.tellp() > 0) keys << ", ";
      keys << '\'' << key << '\'';
    }
    CPR_CHECK_MSG(false, "model family '" << name
                                          << "' does not understand hyper-parameter(s) "
                                          << keys.str());
  }
  return model;
}

RegressorPtr ModelRegistry::load(const std::string& type_tag,
                                 BufferSource& source) const {
  const auto it = entries_.find(type_tag);
  CPR_CHECK_MSG(it != entries_.end(),
                "archive holds unknown model type tag '" << type_tag << "'");
  RegressorPtr model = it->second.loader(source);
  CPR_CHECK(model != nullptr);
  return model;
}

std::vector<std::string> ModelRegistry::family_names() const {
  std::vector<std::string> names;
  for (const auto& [name, entry] : entries_) {
    if (entry.factory) names.push_back(name);
  }
  return names;
}

const std::string& ModelRegistry::description(const std::string& name) const {
  const auto it = entries_.find(name);
  CPR_CHECK_MSG(it != entries_.end(), "unknown model family '" << name << "'");
  return it->second.description;
}

}  // namespace cpr::common
