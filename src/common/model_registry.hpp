#pragma once
// Polymorphic model registry: one pluggable construction/persistence layer
// over every Regressor family, so tools, benches and examples can fit, save
// and serve any model of the Section-6.0.4 zoo by name instead of hard-wiring
// concrete types.
//
// A family is registered under a stable name (== its type_tag()) with
//  * a factory: ModelSpec -> fresh unfitted Regressor. Grid-based families
//    (cpr, cpr-online, tucker, grid) build their Discretization from the
//    spec's parameter space and cell count; the feature-space baselines are
//    wrapped in the Section-6.0.4 LogSpaceRegressor transform derived from
//    the spec's parameter kinds (log-spaced parameters and the target are
//    log-transformed), matching the paper's harness.
//  * a loader: BufferSource -> fitted Regressor, used by the model archive
//    (core/model_file) to dispatch on the persisted type tag.

#include <functional>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "common/regressor.hpp"
#include "grid/parameter.hpp"

namespace cpr::common {

/// Everything a factory needs to construct one model: the parameter space,
/// the per-dimension grid granularity (grid-based families only), and the
/// family's hyper-parameters as key/value strings. Reads are tracked so the
/// registry can reject unknown (misspelled) keys loudly after construction.
struct ModelSpec {
  std::vector<grid::ParameterSpec> params;  ///< modeling domain description
  std::size_t cells = 16;                   ///< grid cells per numerical mode
  std::map<std::string, std::string> hyper; ///< family hyper-parameters

  bool has(const std::string& key) const { return hyper.count(key) > 0; }

  std::string get_string(const std::string& key, const std::string& fallback) const;
  std::int64_t get_int(const std::string& key, std::int64_t fallback) const;
  double get_double(const std::string& key, double fallback) const;
  bool get_bool(const std::string& key, bool fallback) const;

  /// Hyper keys never read by the factory (i.e. unknown to the family).
  std::vector<std::string> unread_keys() const;

 private:
  mutable std::set<std::string> read_;
};

/// Round-trip-stable decimal form (12 significant digits) used everywhere a
/// numeric hyper value becomes a string — grid axis values and sampled
/// candidates must format identically or candidate labels (the tuner's
/// dedup/determinism key) would diverge.
std::string format_hyper_value(double v);

/// One axis of a family's hyper-parameter search space. Families declare
/// their axes alongside the registry entry (register_search_space), so the
/// tuner (src/tune) can search any family without per-family knowledge. The
/// reserved axis name "cells" tunes ModelSpec::cells (grid-based families);
/// every other axis name is a hyper key of the family.
struct HyperAxis {
  enum class Kind {
    Grid,       ///< explicit value list, swept in declaration order
    Linear,     ///< uniform real in [lo, hi]
    Log,        ///< log-uniform real in [lo, hi] (lo > 0)
    LinearInt,  ///< uniform integer in [lo, hi]
    LogInt,     ///< log-uniform integer in [lo, hi] (lo > 0)
  };

  std::string name;
  Kind kind = Kind::Grid;
  double lo = 0.0;                  ///< range axes only
  double hi = 0.0;                  ///< range axes only
  std::vector<std::string> values;  ///< Grid axes only

  static HyperAxis grid(std::string name, std::vector<std::string> values);
  /// Grid over numeric values (formatted so they round-trip through stod).
  static HyperAxis grid_numeric(std::string name, const std::vector<double>& values);
  static HyperAxis linear(std::string name, double lo, double hi);
  static HyperAxis log(std::string name, double lo, double hi);
  static HyperAxis linear_int(std::string name, std::int64_t lo, std::int64_t hi);
  static HyperAxis log_int(std::string name, std::int64_t lo, std::int64_t hi);
};

class ModelRegistry {
 public:
  using Factory = std::function<RegressorPtr(const ModelSpec&)>;
  using Loader = std::function<RegressorPtr(BufferSource&)>;
  /// Builds a family's tuning axes for one base spec (the parameter space is
  /// already set, so factories can scale e.g. cell counts with the
  /// dimensionality of the modeling domain).
  using SearchSpaceFactory = std::function<std::vector<HyperAxis>(const ModelSpec&)>;

  /// The process-wide registry, pre-populated with every built-in family.
  static ModelRegistry& instance();

  /// Registers a constructible + loadable family. `description` is shown in
  /// listings (tool usage text). Re-registration of a name throws.
  void register_family(const std::string& name, const std::string& description,
                       Factory factory, Loader loader);

  /// Registers a load-only entry (archive wrappers like "logspace" that are
  /// produced by other factories rather than requested by name).
  void register_loader(const std::string& name, Loader loader);

  /// Declares the tuning search space of an already-registered family.
  /// Re-declaration throws, as does declaring a space for an unknown name.
  void register_search_space(const std::string& name, SearchSpaceFactory factory);

  bool has_search_space(const std::string& name) const;

  /// The family's tuning axes for `base` (whose params describe the modeling
  /// domain). Throws CheckError for an unknown family or one without a
  /// declared search space.
  std::vector<HyperAxis> search_space(const std::string& name, const ModelSpec& base) const;

  bool has_family(const std::string& name) const;

  /// True when archives with this type tag can be loaded (covers both
  /// creatable families and load-only wrappers like "logspace"). Serving
  /// frontends use this to vet a model directory before going live.
  bool has_loader(const std::string& type_tag) const;

  /// Constructs an unfitted model; throws CheckError on an unknown family
  /// name or on hyper-parameter keys the family does not understand.
  RegressorPtr create(const std::string& name, const ModelSpec& spec) const;

  /// Loads a fitted model payload; throws CheckError on an unknown tag.
  RegressorPtr load(const std::string& type_tag, BufferSource& source) const;

  /// Creatable family names, sorted (load-only entries excluded).
  std::vector<std::string> family_names() const;

  /// One-line description of a registered family.
  const std::string& description(const std::string& name) const;

 private:
  struct Entry {
    std::string description;
    Factory factory;  ///< null for load-only entries
    Loader loader;
    SearchSpaceFactory space;  ///< null until register_search_space
  };
  std::map<std::string, Entry> entries_;
};

/// Registers the built-in families (defined in model_zoo.cpp); invoked once
/// by ModelRegistry::instance().
void register_builtin_models(ModelRegistry& registry);

/// Declares the built-in families' tuning search spaces (model_zoo.cpp);
/// invoked by register_builtin_models.
void register_builtin_search_spaces(ModelRegistry& registry);

}  // namespace cpr::common
