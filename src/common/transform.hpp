#pragma once
// Feature / target transforms.
//
// Section 6.0.4: "We optimize these models using a random sample from each
// training set and log-transform execution times and application
// parameters." LogSpaceRegressor wraps any base regressor, log-transforming
// the chosen features and the target on fit() and exponentiating on
// predict(), so baseline implementations stay transform-agnostic.

#include <utility>

#include "common/regressor.hpp"

namespace cpr::common {

struct FeatureTransform {
  std::vector<bool> log_feature;  ///< per-dimension: apply log(x_j)
  bool log_target = true;

  /// log on every feature (requires positive values).
  static FeatureTransform all_log(std::size_t dims) {
    return FeatureTransform{std::vector<bool>(dims, true), true};
  }

  /// No feature transforms (target still logged by default).
  static FeatureTransform none(std::size_t dims) {
    return FeatureTransform{std::vector<bool>(dims, false), true};
  }

  Dataset apply(const Dataset& data) const;
  grid::Config apply(const grid::Config& x) const;

  void serialize(SerialSink& sink) const;
  static FeatureTransform deserialize(BufferSource& source);
};

class LogSpaceRegressor final : public Regressor {
 public:
  LogSpaceRegressor(RegressorPtr inner, FeatureTransform transform)
      : inner_(std::move(inner)), transform_(std::move(transform)) {}

  std::string name() const override { return inner_->name(); }
  std::string type_tag() const override { return "logspace"; }
  std::size_t input_dims() const override { return transform_.log_feature.size(); }
  void fit(const Dataset& train) override { inner_->fit(transform_.apply(train)); }
  double predict(const grid::Config& x) const override;
  std::size_t model_size_bytes() const override { return inner_->model_size_bytes(); }

  /// Persists the transform, then the wrapped model prefixed by its type
  /// tag; the registry's "logspace" loader re-dispatches on that tag.
  void save(SerialSink& sink) const override;

  Regressor& inner() { return *inner_; }
  const Regressor& inner() const { return *inner_; }
  const FeatureTransform& transform() const { return transform_; }

 private:
  RegressorPtr inner_;
  FeatureTransform transform_;
};

}  // namespace cpr::common
