#include "common/dataset.hpp"

namespace cpr::common {

Dataset Dataset::subset(const std::vector<std::size_t>& rows) const {
  Dataset out;
  out.x = linalg::Matrix(rows.size(), x.cols());
  out.y.resize(rows.size());
  for (std::size_t k = 0; k < rows.size(); ++k) {
    CPR_CHECK(rows[k] < size());
    for (std::size_t j = 0; j < x.cols(); ++j) out.x(k, j) = x(rows[k], j);
    out.y[k] = y[rows[k]];
  }
  return out;
}

}  // namespace cpr::common
