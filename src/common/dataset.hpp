#pragma once
// Training / test data containers shared by every model family.

#include <vector>

#include "grid/parameter.hpp"
#include "linalg/matrix.hpp"

namespace cpr::common {

/// A supervised dataset: n configurations (rows of x) with positive
/// execution times y.
struct Dataset {
  linalg::Matrix x;        ///< n-by-d configurations
  std::vector<double> y;   ///< n execution times (seconds)

  std::size_t size() const { return y.size(); }
  std::size_t dimensions() const { return x.cols(); }

  grid::Config config(std::size_t i) const {
    return grid::Config(x.row_ptr(i), x.row_ptr(i) + x.cols());
  }

  /// Returns the subset at the given row indices.
  Dataset subset(const std::vector<std::size_t>& rows) const;
};

}  // namespace cpr::common
