// Built-in ModelRegistry families: CPR and its variants plus the Section-
// 6.0.4 baseline zoo. Each entry binds a stable name (== the family's
// type_tag()) to a ModelSpec factory and an archive loader.
//
// Grid-based families (cpr, cpr-online, tucker, grid) build a Discretization
// from the spec's parameter space and per-dimension cell count. Feature-space
// baselines are wrapped in the Section-6.0.4 LogSpaceRegressor (execution
// times and log-sampled parameters log-transformed), exactly as the bench
// harness trains them, so registry-constructed models predict bit-identically
// to the hand-wired ones.

#include "common/model_registry.hpp"

#include <cstdlib>

#include "baselines/forest.hpp"
#include "baselines/gaussian_process.hpp"
#include "baselines/global_models.hpp"
#include "baselines/grid_interpolator.hpp"
#include "baselines/knn.hpp"
#include "baselines/mars.hpp"
#include "baselines/mlp.hpp"
#include "baselines/sparse_grid.hpp"
#include "baselines/svr.hpp"
#include "common/transform.hpp"
#include "core/cpr_model.hpp"
#include "core/online_cpr.hpp"
#include "core/tucker_perf_model.hpp"
#include "core/tuning.hpp"
#include "grid/discretization.hpp"

namespace cpr::common {

namespace {

grid::Discretization discretization_for(const ModelSpec& spec) {
  CPR_CHECK_MSG(!spec.params.empty(),
                "grid-based model families need a parameter space (ModelSpec::params)");
  return grid::Discretization(spec.params, spec.cells);
}

/// The Section-6.0.4 transform derived from the parameter kinds.
RegressorPtr wrap_logspace(const ModelSpec& spec, RegressorPtr inner) {
  CPR_CHECK_MSG(!spec.params.empty(),
                "model family '" << inner->type_tag()
                                 << "' needs a parameter space (ModelSpec::params) to "
                                    "derive its feature transform");
  FeatureTransform transform;
  transform.log_target = true;
  transform.log_feature.resize(spec.params.size());
  for (std::size_t j = 0; j < spec.params.size(); ++j) {
    transform.log_feature[j] = spec.params[j].kind == grid::ParameterKind::NumericalLog;
  }
  return std::make_unique<LogSpaceRegressor>(std::move(inner), transform);
}

template <typename Model>
ModelRegistry::Loader loader_of() {
  return [](BufferSource& source) -> RegressorPtr {
    return std::make_unique<Model>(Model::deserialize(source));
  };
}

core::CprOptions cpr_options_from(const ModelSpec& spec) {
  core::CprOptions options;
  options.rank = static_cast<std::size_t>(spec.get_int("rank", 8));
  options.regularization = spec.get_double("lambda", options.regularization);
  options.max_sweeps = static_cast<int>(spec.get_int("sweeps", options.max_sweeps));
  options.tol = spec.get_double("tol", options.tol);
  options.restarts = static_cast<int>(spec.get_int("restarts", options.restarts));
  options.seed = static_cast<std::uint64_t>(spec.get_int("seed", 42));
  const std::string optimizer = spec.get_string("optimizer", "als");
  if (optimizer == "als") {
    options.optimizer = core::CprOptimizer::Als;
  } else if (optimizer == "ccd") {
    options.optimizer = core::CprOptimizer::Ccd;
  } else if (optimizer == "sgd") {
    options.optimizer = core::CprOptimizer::Sgd;
  } else {
    CPR_CHECK_MSG(false, "cpr: unknown optimizer '" << optimizer
                                                    << "' (als, ccd, sgd)");
  }
  const std::string quadrature = spec.get_string("quadrature", "mean");
  if (quadrature == "mean") {
    options.quadrature = core::CellQuadrature::Mean;
  } else if (quadrature == "geomean") {
    options.quadrature = core::CellQuadrature::GeomMean;
  } else if (quadrature == "median") {
    options.quadrature = core::CellQuadrature::Median;
  } else {
    CPR_CHECK_MSG(false, "cpr: unknown quadrature '" << quadrature
                                                     << "' (mean, geomean, median)");
  }
  return options;
}

}  // namespace

void register_builtin_models(ModelRegistry& registry) {
  // --- CPR and variants (grid-based; log transform is internal) ---
  registry.register_family(
      "cpr", "CPR (the paper's model): CP-completed grid of log cell means",
      [](const ModelSpec& spec) -> RegressorPtr {
        return std::make_unique<core::CprModel>(discretization_for(spec),
                                                cpr_options_from(spec));
      },
      [](BufferSource& source) -> RegressorPtr {
        return std::make_unique<core::CprModel>(core::CprModel::load_archive(source));
      });

  registry.register_family(
      "cpr-online", "streaming CPR with warm-started refreshes",
      [](const ModelSpec& spec) -> RegressorPtr {
        core::OnlineCprOptions options;
        options.rank = static_cast<std::size_t>(spec.get_int("rank", 8));
        options.regularization = spec.get_double("lambda", options.regularization);
        options.refresh_sweeps =
            static_cast<int>(spec.get_int("refresh-sweeps", options.refresh_sweeps));
        options.initial_sweeps =
            static_cast<int>(spec.get_int("initial-sweeps", options.initial_sweeps));
        options.refresh_interval = static_cast<std::size_t>(
            spec.get_int("refresh-interval",
                         static_cast<std::int64_t>(options.refresh_interval)));
        options.tol = spec.get_double("tol", options.tol);
        options.seed = static_cast<std::uint64_t>(spec.get_int("seed", 42));
        return std::make_unique<core::OnlineCprModel>(discretization_for(spec), options);
      },
      loader_of<core::OnlineCprModel>());

  registry.register_family(
      "tucker", "Tucker-decomposition performance model",
      [](const ModelSpec& spec) -> RegressorPtr {
        core::TuckerPerfOptions options;
        options.mode_rank = static_cast<std::size_t>(spec.get_int("mode-rank", 3));
        options.regularization = spec.get_double("lambda", options.regularization);
        options.max_sweeps = static_cast<int>(spec.get_int("sweeps", options.max_sweeps));
        options.tol = spec.get_double("tol", options.tol);
        options.seed = static_cast<std::uint64_t>(spec.get_int("seed", 42));
        return std::make_unique<core::TuckerPerfModel>(discretization_for(spec), options);
      },
      loader_of<core::TuckerPerfModel>());

  registry.register_family(
      "grid", "uncompressed dense-grid multilinear interpolation",
      [](const ModelSpec& spec) -> RegressorPtr {
        return std::make_unique<baselines::GridInterpolator>(discretization_for(spec));
      },
      loader_of<baselines::GridInterpolator>());

  // --- Feature-space baselines (Section-6.0.4 log-space wrapper) ---
  registry.register_family(
      "knn", "k-nearest-neighbors regression",
      [](const ModelSpec& spec) -> RegressorPtr {
        baselines::KnnOptions options;
        options.k = static_cast<std::size_t>(spec.get_int("k", 3));
        options.distance_weighted = spec.get_bool("weighted", true);
        return wrap_logspace(spec, std::make_unique<baselines::KnnRegressor>(options));
      },
      loader_of<baselines::KnnRegressor>());

  const auto forest_options = [](const ModelSpec& spec) {
    baselines::ForestOptions options;
    options.n_trees = static_cast<std::size_t>(spec.get_int("trees", 16));
    options.max_depth = static_cast<int>(spec.get_int("depth", 8));
    options.min_samples_leaf = static_cast<std::size_t>(spec.get_int("min-leaf", 1));
    options.seed = static_cast<std::uint64_t>(spec.get_int("seed", 42));
    return options;
  };
  registry.register_family(
      "rf", "random forest (bootstrap + best splits)",
      [forest_options](const ModelSpec& spec) -> RegressorPtr {
        return wrap_logspace(spec, std::make_unique<baselines::RandomForestRegressor>(
                                       forest_options(spec)));
      },
      loader_of<baselines::RandomForestRegressor>());
  registry.register_family(
      "et", "extremely-randomized trees",
      [forest_options](const ModelSpec& spec) -> RegressorPtr {
        return wrap_logspace(spec, std::make_unique<baselines::ExtraTreesRegressor>(
                                       forest_options(spec)));
      },
      loader_of<baselines::ExtraTreesRegressor>());
  registry.register_family(
      "gb", "least-squares gradient boosting",
      [](const ModelSpec& spec) -> RegressorPtr {
        baselines::BoostingOptions options;
        options.n_trees = static_cast<std::size_t>(spec.get_int("trees", 16));
        options.max_depth = static_cast<int>(spec.get_int("depth", options.max_depth));
        options.min_samples_leaf = static_cast<std::size_t>(spec.get_int("min-leaf", 1));
        options.learning_rate = spec.get_double("learning-rate", options.learning_rate);
        options.seed = static_cast<std::uint64_t>(spec.get_int("seed", 42));
        return wrap_logspace(
            spec, std::make_unique<baselines::GradientBoostingRegressor>(options));
      },
      loader_of<baselines::GradientBoostingRegressor>());

  registry.register_family(
      "gp", "Gaussian-process regression",
      [](const ModelSpec& spec) -> RegressorPtr {
        baselines::GpOptions options;
        const std::string kernel = spec.get_string("kernel", "rbf");
        if (kernel == "rbf") {
          options.kernel = baselines::GpKernel::Rbf;
        } else if (kernel == "rq") {
          options.kernel = baselines::GpKernel::RationalQuadratic;
        } else if (kernel == "dot") {
          options.kernel = baselines::GpKernel::DotProductWhite;
        } else if (kernel == "matern") {
          options.kernel = baselines::GpKernel::Matern;
        } else if (kernel == "const") {
          options.kernel = baselines::GpKernel::Constant;
        } else {
          CPR_CHECK_MSG(false, "gp: unknown kernel '" << kernel
                                                      << "' (rbf, rq, dot, matern, const)");
        }
        options.noise = spec.get_double("noise", options.noise);
        options.alpha = spec.get_double("alpha", options.alpha);
        options.max_samples = static_cast<std::size_t>(
            spec.get_int("max-samples", static_cast<std::int64_t>(options.max_samples)));
        options.seed = static_cast<std::uint64_t>(spec.get_int("seed", 42));
        return wrap_logspace(spec, std::make_unique<baselines::GaussianProcess>(options));
      },
      loader_of<baselines::GaussianProcess>());

  registry.register_family(
      "svm", "epsilon-insensitive support vector regression",
      [](const ModelSpec& spec) -> RegressorPtr {
        baselines::SvrOptions options;
        const std::string kernel = spec.get_string("kernel", "rbf");
        if (kernel == "rbf") {
          options.kernel = baselines::SvrKernel::Rbf;
        } else if (kernel == "poly") {
          options.kernel = baselines::SvrKernel::Poly;
        } else {
          CPR_CHECK_MSG(false, "svm: unknown kernel '" << kernel << "' (rbf, poly)");
        }
        options.poly_degree = static_cast<int>(spec.get_int("degree", options.poly_degree));
        options.c = spec.get_double("c", options.c);
        options.epsilon = spec.get_double("epsilon", options.epsilon);
        options.max_iters = static_cast<int>(spec.get_int("iters", options.max_iters));
        options.max_samples = static_cast<std::size_t>(
            spec.get_int("max-samples", static_cast<std::int64_t>(options.max_samples)));
        options.seed = static_cast<std::uint64_t>(spec.get_int("seed", 42));
        return wrap_logspace(spec, std::make_unique<baselines::Svr>(options));
      },
      loader_of<baselines::Svr>());

  registry.register_family(
      "nn", "feed-forward multi-layer perceptron",
      [](const ModelSpec& spec) -> RegressorPtr {
        baselines::MlpOptions options;
        const std::string layers = spec.get_string("layers", "64x64");
        options.hidden_layers.clear();
        std::size_t start = 0;
        while (start <= layers.size()) {
          const std::size_t sep = layers.find('x', start);
          const std::string token =
              layers.substr(start, sep == std::string::npos ? sep : sep - start);
          const bool numeric =
              !token.empty() && token.find_first_not_of("0123456789") == std::string::npos;
          const std::int64_t width = numeric ? std::atoll(token.c_str()) : 0;
          CPR_CHECK_MSG(width > 0, "nn: bad layers spec '"
                                       << layers << "' (expect widths like 128x64)");
          options.hidden_layers.push_back(static_cast<std::size_t>(width));
          if (sep == std::string::npos) break;
          start = sep + 1;
        }
        const std::string act = spec.get_string("act", "relu");
        if (act == "relu") {
          options.activation = baselines::Activation::Relu;
        } else if (act == "tanh") {
          options.activation = baselines::Activation::Tanh;
        } else {
          CPR_CHECK_MSG(false, "nn: unknown activation '" << act << "' (relu, tanh)");
        }
        options.epochs = static_cast<int>(spec.get_int("epochs", options.epochs));
        options.batch_size = static_cast<std::size_t>(
            spec.get_int("batch", static_cast<std::int64_t>(options.batch_size)));
        options.learning_rate = spec.get_double("learning-rate", options.learning_rate);
        options.seed = static_cast<std::uint64_t>(spec.get_int("seed", 42));
        return wrap_logspace(spec, std::make_unique<baselines::Mlp>(options));
      },
      loader_of<baselines::Mlp>());

  registry.register_family(
      "mars", "multivariate adaptive regression splines",
      [](const ModelSpec& spec) -> RegressorPtr {
        baselines::MarsOptions options;
        options.max_degree = static_cast<int>(spec.get_int("degree", options.max_degree));
        options.max_terms = static_cast<std::size_t>(
            spec.get_int("max-terms", static_cast<std::int64_t>(options.max_terms)));
        options.knots_per_dim = static_cast<std::size_t>(
            spec.get_int("knots", static_cast<std::int64_t>(options.knots_per_dim)));
        options.seed = static_cast<std::uint64_t>(spec.get_int("seed", 42));
        return wrap_logspace(spec, std::make_unique<baselines::Mars>(options));
      },
      loader_of<baselines::Mars>());

  registry.register_family(
      "sgr", "sparse grid regression (SG++-style)",
      [](const ModelSpec& spec) -> RegressorPtr {
        baselines::SgrOptions options;
        options.level = static_cast<std::size_t>(
            spec.get_int("level", static_cast<std::int64_t>(options.level)));
        options.regularization = spec.get_double("lambda", options.regularization);
        options.refinements =
            static_cast<int>(spec.get_int("refinements", options.refinements));
        options.refine_points = static_cast<std::size_t>(
            spec.get_int("refine-points", static_cast<std::int64_t>(options.refine_points)));
        return wrap_logspace(spec,
                             std::make_unique<baselines::SparseGridRegressor>(options));
      },
      loader_of<baselines::SparseGridRegressor>());

  registry.register_family(
      "ols", "ordinary/ridge least squares on a polynomial expansion",
      [](const ModelSpec& spec) -> RegressorPtr {
        baselines::OlsOptions options;
        options.degree = static_cast<int>(spec.get_int("degree", options.degree));
        options.interactions = spec.get_bool("interactions", options.interactions);
        options.ridge = spec.get_double("ridge", options.ridge);
        return wrap_logspace(spec, std::make_unique<baselines::OlsRegressor>(options));
      },
      loader_of<baselines::OlsRegressor>());

  registry.register_family(
      "pmnf", "performance-model-normal-form greedy term search",
      [](const ModelSpec& spec) -> RegressorPtr {
        baselines::PmnfOptions options;
        options.max_terms = static_cast<std::size_t>(
            spec.get_int("max-terms", static_cast<std::int64_t>(options.max_terms)));
        options.ridge = spec.get_double("ridge", options.ridge);
        return wrap_logspace(spec, std::make_unique<baselines::PmnfRegressor>(options));
      },
      loader_of<baselines::PmnfRegressor>());

  // --- Archive-only wrapper: produced by the baseline factories above ---
  registry.register_loader("logspace", [&registry](BufferSource& source) -> RegressorPtr {
    FeatureTransform transform = FeatureTransform::deserialize(source);
    RegressorPtr inner = registry.load(source.read_string(), source);
    return std::make_unique<LogSpaceRegressor>(std::move(inner), std::move(transform));
  });

  register_builtin_search_spaces(registry);
}

// Tuning search spaces, declared alongside the factories so src/tune can
// autotune any family by name. Grid axes keep historically-swept values
// (cpr reuses the exact CprTuningGrid the old `cpr_train --tune` searched,
// so its tuned behavior stays reproducible); range axes are sampled by the
// tuner's deterministic seeded sampler. Per-dimension cell counts shrink
// with the dimensionality — the cell-count product explodes otherwise.
void register_builtin_search_spaces(ModelRegistry& registry) {
  const auto cells_axis = [](const ModelSpec& base) {
    const std::size_t d = base.params.size();
    if (d >= 6) return HyperAxis::grid_numeric("cells", {3, 4, 5});
    if (d >= 4) return HyperAxis::grid_numeric("cells", {4, 6, 8});
    return HyperAxis::grid_numeric("cells", {4, 8, 16});
  };

  registry.register_search_space("cpr", [](const ModelSpec& base) {
    const auto grid = core::CprTuningGrid::for_dimensions(base.params.size());
    std::vector<double> cells(grid.cells.begin(), grid.cells.end());
    std::vector<double> ranks(grid.ranks.begin(), grid.ranks.end());
    return std::vector<HyperAxis>{
        HyperAxis::grid_numeric("cells", cells),
        HyperAxis::grid_numeric("rank", ranks),
        HyperAxis::grid_numeric("lambda", grid.regularizations),
    };
  });

  registry.register_search_space("cpr-online", [cells_axis](const ModelSpec& base) {
    return std::vector<HyperAxis>{
        cells_axis(base),
        HyperAxis::grid_numeric("rank", {2, 4, 8, 16}),
        HyperAxis::grid_numeric("lambda", {1e-5, 1e-4}),
    };
  });

  registry.register_search_space("tucker", [cells_axis](const ModelSpec& base) {
    return std::vector<HyperAxis>{
        cells_axis(base),
        HyperAxis::grid_numeric("mode-rank", {2, 3, 4}),
        HyperAxis::grid_numeric("lambda", {1e-5, 1e-4}),
    };
  });

  registry.register_search_space("grid", [cells_axis](const ModelSpec& base) {
    return std::vector<HyperAxis>{cells_axis(base)};
  });

  registry.register_search_space("knn", [](const ModelSpec&) {
    return std::vector<HyperAxis>{
        HyperAxis::grid_numeric("k", {1, 2, 3, 4, 5, 6}),
        HyperAxis::grid("weighted", {"1", "0"}),
    };
  });

  const auto forest_space = [](const ModelSpec&) {
    return std::vector<HyperAxis>{
        HyperAxis::log_int("trees", 8, 64),
        HyperAxis::linear_int("depth", 4, 16),
        HyperAxis::grid_numeric("min-leaf", {1, 2}),
    };
  };
  registry.register_search_space("rf", forest_space);
  registry.register_search_space("et", forest_space);

  registry.register_search_space("gb", [](const ModelSpec&) {
    return std::vector<HyperAxis>{
        HyperAxis::log_int("trees", 16, 128),
        HyperAxis::linear_int("depth", 2, 6),
        HyperAxis::log("learning-rate", 0.03, 0.3),
    };
  });

  registry.register_search_space("gp", [](const ModelSpec&) {
    return std::vector<HyperAxis>{
        HyperAxis::grid("kernel", {"rbf", "rq", "matern"}),
        HyperAxis::log("noise", 1e-6, 1e-2),
    };
  });

  registry.register_search_space("svm", [](const ModelSpec&) {
    return std::vector<HyperAxis>{
        HyperAxis::grid("kernel", {"rbf", "poly"}),
        HyperAxis::grid_numeric("degree", {2, 3}),
        HyperAxis::log("c", 0.1, 100.0),
        HyperAxis::log("epsilon", 1e-3, 1e-1),
    };
  });

  registry.register_search_space("nn", [](const ModelSpec&) {
    return std::vector<HyperAxis>{
        HyperAxis::grid("layers", {"16x16", "32x32", "64x64"}),
        HyperAxis::grid("act", {"relu", "tanh"}),
        HyperAxis::grid_numeric("epochs", {60, 120}),
        HyperAxis::log("learning-rate", 3e-4, 1e-2),
    };
  });

  registry.register_search_space("mars", [](const ModelSpec&) {
    return std::vector<HyperAxis>{
        HyperAxis::grid_numeric("degree", {1, 2}),
        HyperAxis::grid_numeric("max-terms", {11, 21}),
    };
  });

  registry.register_search_space("sgr", [](const ModelSpec& base) {
    const std::int64_t max_level = base.params.size() >= 6 ? 3 : 4;
    return std::vector<HyperAxis>{
        HyperAxis::linear_int("level", 2, max_level),
        HyperAxis::log("lambda", 1e-6, 1e-3),
        HyperAxis::grid_numeric("refinements", {0, 2}),
    };
  });

  registry.register_search_space("ols", [](const ModelSpec&) {
    return std::vector<HyperAxis>{
        HyperAxis::linear_int("degree", 1, 3),
        HyperAxis::grid("interactions", {"1", "0"}),
        HyperAxis::log("ridge", 1e-8, 1e-2),
    };
  });

  registry.register_search_space("pmnf", [](const ModelSpec&) {
    return std::vector<HyperAxis>{
        HyperAxis::linear_int("max-terms", 2, 8),
        HyperAxis::log("ridge", 1e-8, 1e-2),
    };
  });
}

}  // namespace cpr::common
