#include "common/dataset_io.hpp"

#include <algorithm>
#include <cmath>
#include <fstream>
#include <sstream>

namespace cpr::common {

std::vector<std::string> split_fields(const std::string& text, char delimiter,
                                      const std::string& context) {
  std::vector<std::string> parts;
  if (text.empty()) return parts;
  std::stringstream stream(text);
  std::string part;
  while (std::getline(stream, part, delimiter)) parts.push_back(part);
  if (text.back() == delimiter) parts.push_back("");  // getline drops the last empty
  for (const auto& entry : parts) {
    CPR_CHECK_MSG(!entry.empty(), context << ": '" << text << "' contains an empty "
                                          << "'" << delimiter << "'-separated entry");
  }
  return parts;
}

double parse_number(const std::string& field, const std::string& context) {
  std::size_t consumed = 0;
  double value = 0.0;
  try {
    value = std::stod(field, &consumed);
  } catch (const std::exception&) {
    CPR_CHECK_MSG(false, context << ": non-numeric field '" << field << "'");
  }
  CPR_CHECK_MSG(consumed == field.size(),
                context << ": trailing junk in '" << field << "'");
  CPR_CHECK_MSG(std::isfinite(value), context << ": non-finite field '" << field << "'");
  return value;
}

namespace {

/// Splits one CSV data row into exactly `arity` numbers (strict fields).
std::vector<double> parse_row(const std::string& line, std::size_t arity,
                              const std::string& context) {
  const auto parts = split_fields(line, ',', context);
  CPR_CHECK_MSG(parts.size() == arity, context << ": expected " << arity
                                               << " fields, got " << parts.size());
  std::vector<double> fields;
  fields.reserve(parts.size());
  for (const auto& part : parts) fields.push_back(parse_number(part, context));
  return fields;
}

std::string line_context(const std::string& path, std::size_t line_number) {
  std::ostringstream os;
  os << path << ":" << line_number;
  return os.str();
}

}  // namespace

void save_dataset_csv(const Dataset& data, const std::vector<std::string>& parameter_names,
                      const std::string& path) {
  CPR_CHECK_MSG(parameter_names.size() == data.dimensions(),
                "need one name per parameter");
  std::ofstream out(path);
  CPR_CHECK_MSG(out.good(), "cannot open " << path << " for writing");
  for (const auto& name : parameter_names) out << name << ',';
  out << "seconds\n";
  out.precision(17);
  for (std::size_t i = 0; i < data.size(); ++i) {
    for (std::size_t j = 0; j < data.dimensions(); ++j) out << data.x(i, j) << ',';
    out << data.y[i] << '\n';
  }
  CPR_CHECK_MSG(out.good(), "write to " << path << " failed");
}

LoadedDataset load_dataset_csv(const std::string& path) {
  std::ifstream in(path);
  CPR_CHECK_MSG(in.good(), "cannot open " << path);

  std::string line;
  CPR_CHECK_MSG(static_cast<bool>(std::getline(in, line)), "empty file: " << path);

  LoadedDataset loaded;
  loaded.parameter_names = split_fields(line, ',', path + " header");
  CPR_CHECK_MSG(loaded.parameter_names.size() >= 2,
                "header needs at least one parameter plus the time column");
  CPR_CHECK_MSG(loaded.parameter_names.back() == "seconds",
                "last column must be named 'seconds', got '"
                    << loaded.parameter_names.back() << "'");
  loaded.parameter_names.pop_back();
  const std::size_t d = loaded.parameter_names.size();

  std::vector<double> values;
  std::vector<double> times;
  std::size_t line_number = 1;
  while (std::getline(in, line)) {
    ++line_number;
    if (line.empty()) continue;
    auto fields = parse_row(line, d + 1, line_context(path, line_number));
    CPR_CHECK_MSG(fields.back() > 0.0,
                  path << ":" << line_number << ": non-positive execution time");
    times.push_back(fields.back());
    fields.pop_back();
    values.insert(values.end(), fields.begin(), fields.end());
  }
  CPR_CHECK_MSG(!times.empty(), path << ": no data rows");

  loaded.data.x = linalg::Matrix(times.size(), d);
  std::copy(values.begin(), values.end(), loaded.data.x.data());
  loaded.data.y = std::move(times);
  return loaded;
}

LoadedQueries load_query_csv(const std::string& path) {
  std::ifstream in(path);
  CPR_CHECK_MSG(in.good(), "cannot open " << path);

  std::string line;
  CPR_CHECK_MSG(static_cast<bool>(std::getline(in, line)), "empty file: " << path);

  LoadedQueries loaded;
  loaded.parameter_names = split_fields(line, ',', path + " header");
  CPR_CHECK_MSG(!loaded.parameter_names.empty(), path << ": header row is empty");
  const bool has_truth = loaded.parameter_names.back() == "seconds";
  if (has_truth) loaded.parameter_names.pop_back();
  CPR_CHECK_MSG(!loaded.parameter_names.empty(),
                path << ": header names no query parameters");
  const std::size_t d = loaded.parameter_names.size();

  std::vector<double> values;
  std::size_t line_number = 1;
  while (std::getline(in, line)) {
    ++line_number;
    if (line.empty()) continue;
    auto fields =
        parse_row(line, d + (has_truth ? 1 : 0), line_context(path, line_number));
    if (has_truth) {
      CPR_CHECK_MSG(fields.back() > 0.0,
                    path << ":" << line_number << ": non-positive ground-truth time");
      loaded.truths.push_back(fields.back());
      fields.pop_back();
    }
    values.insert(values.end(), fields.begin(), fields.end());
  }
  CPR_CHECK_MSG(!values.empty(), path << ": no query rows");

  loaded.x = linalg::Matrix(values.size() / d, d);
  std::copy(values.begin(), values.end(), loaded.x.data());
  return loaded;
}

std::map<std::string, std::string> parse_hyper_entries(const std::string& text) {
  std::map<std::string, std::string> hyper;
  for (const auto& entry : split_fields(text, ',', "--hyper")) {
    const auto colon = entry.find(':');
    CPR_CHECK_MSG(colon != std::string::npos && colon > 0,
                  "--hyper needs key:value entries (got '" << entry << "')");
    hyper[entry.substr(0, colon)] = entry.substr(colon + 1);
  }
  return hyper;
}

std::vector<std::pair<std::string, std::size_t>> parse_categorical_entries(
    const std::string& text) {
  std::vector<std::pair<std::string, std::size_t>> categoricals;
  for (const auto& entry : split_fields(text, ',', "--categorical")) {
    const auto colon = entry.find(':');
    CPR_CHECK_MSG(colon != std::string::npos && colon > 0,
                  "--categorical needs name:count entries (got '" << entry << "')");
    std::size_t consumed = 0;
    std::size_t categories = 0;
    try {
      categories = std::stoul(entry.substr(colon + 1), &consumed);
    } catch (const std::exception&) {
      consumed = 0;
    }
    CPR_CHECK_MSG(consumed == entry.size() - colon - 1 && categories > 0,
                  "--categorical needs a positive count (got '" << entry << "')");
    categoricals.emplace_back(entry.substr(0, colon), categories);
  }
  return categoricals;
}

std::vector<grid::ParameterSpec> infer_parameter_specs(
    const LoadedDataset& loaded, const std::vector<std::string>& log_dims,
    const std::vector<std::pair<std::string, std::size_t>>& categoricals) {
  const auto& names = loaded.parameter_names;
  std::vector<grid::ParameterSpec> specs;
  specs.reserve(names.size());
  for (std::size_t j = 0; j < names.size(); ++j) {
    double lo = loaded.data.x(0, j), hi = lo;
    bool integral = true;
    for (std::size_t i = 0; i < loaded.data.size(); ++i) {
      const double v = loaded.data.x(i, j);
      lo = std::min(lo, v);
      hi = std::max(hi, v);
      integral = integral && v == std::round(v);
    }
    bool handled = false;
    for (const auto& [cat_name, categories] : categoricals) {
      if (cat_name == names[j]) {
        specs.push_back(grid::ParameterSpec::categorical(names[j], categories));
        handled = true;
      }
    }
    if (handled) continue;
    const bool is_log =
        std::find(log_dims.begin(), log_dims.end(), names[j]) != log_dims.end();
    CPR_CHECK_MSG(hi > lo, "parameter '" << names[j] << "' is constant in the data");
    if (is_log) {
      CPR_CHECK_MSG(lo > 0.0, "log spacing needs positive '" << names[j] << "'");
      specs.push_back(grid::ParameterSpec::numerical_log(names[j], lo, hi, integral));
    } else {
      specs.push_back(grid::ParameterSpec::numerical_uniform(names[j], lo, hi, integral));
    }
  }
  return specs;
}

}  // namespace cpr::common
