#include "common/dataset_io.hpp"

#include <fstream>
#include <sstream>

namespace cpr::common {

void save_dataset_csv(const Dataset& data, const std::vector<std::string>& parameter_names,
                      const std::string& path) {
  CPR_CHECK_MSG(parameter_names.size() == data.dimensions(),
                "need one name per parameter");
  std::ofstream out(path);
  CPR_CHECK_MSG(out.good(), "cannot open " << path << " for writing");
  for (const auto& name : parameter_names) out << name << ',';
  out << "seconds\n";
  out.precision(17);
  for (std::size_t i = 0; i < data.size(); ++i) {
    for (std::size_t j = 0; j < data.dimensions(); ++j) out << data.x(i, j) << ',';
    out << data.y[i] << '\n';
  }
  CPR_CHECK_MSG(out.good(), "write to " << path << " failed");
}

LoadedDataset load_dataset_csv(const std::string& path) {
  std::ifstream in(path);
  CPR_CHECK_MSG(in.good(), "cannot open " << path);

  std::string line;
  CPR_CHECK_MSG(static_cast<bool>(std::getline(in, line)), "empty file: " << path);

  LoadedDataset loaded;
  {
    std::stringstream header(line);
    std::string field;
    while (std::getline(header, field, ',')) loaded.parameter_names.push_back(field);
    CPR_CHECK_MSG(loaded.parameter_names.size() >= 2,
                  "header needs at least one parameter plus the time column");
    CPR_CHECK_MSG(loaded.parameter_names.back() == "seconds",
                  "last column must be named 'seconds', got '"
                      << loaded.parameter_names.back() << "'");
    loaded.parameter_names.pop_back();
  }
  const std::size_t d = loaded.parameter_names.size();

  std::vector<double> values;
  std::vector<double> times;
  std::size_t line_number = 1;
  while (std::getline(in, line)) {
    ++line_number;
    if (line.empty()) continue;
    std::stringstream row(line);
    std::string field;
    std::vector<double> fields;
    while (std::getline(row, field, ',')) {
      std::size_t consumed = 0;
      double value = 0.0;
      try {
        value = std::stod(field, &consumed);
      } catch (const std::exception&) {
        CPR_CHECK_MSG(false, path << ":" << line_number << ": non-numeric field '"
                                  << field << "'");
      }
      CPR_CHECK_MSG(consumed == field.size(),
                    path << ":" << line_number << ": trailing junk in '" << field << "'");
      fields.push_back(value);
    }
    CPR_CHECK_MSG(fields.size() == d + 1, path << ":" << line_number << ": expected "
                                               << d + 1 << " fields, got "
                                               << fields.size());
    CPR_CHECK_MSG(fields.back() > 0.0,
                  path << ":" << line_number << ": non-positive execution time");
    times.push_back(fields.back());
    fields.pop_back();
    values.insert(values.end(), fields.begin(), fields.end());
  }
  CPR_CHECK_MSG(!times.empty(), path << ": no data rows");

  loaded.data.x = linalg::Matrix(times.size(), d);
  std::copy(values.begin(), values.end(), loaded.data.x.data());
  loaded.data.y = std::move(times);
  return loaded;
}

}  // namespace cpr::common
