#pragma once
// The common model interface every family implements (CPR and the nine
// alternatives of Section 6.0.4), so benches can sweep them uniformly.

#include <memory>
#include <string>
#include <vector>

#include "common/dataset.hpp"

namespace cpr::common {

class Regressor {
 public:
  virtual ~Regressor() = default;

  /// Short identifier used in bench output (e.g. "CPR", "SGR", "NN").
  virtual std::string name() const = 0;

  /// Fits the model to the training set. May be called more than once
  /// (refits from scratch).
  virtual void fit(const Dataset& train) = 0;

  /// Predicted execution time (seconds) for one configuration.
  virtual double predict(const grid::Config& x) const = 0;

  /// Bytes needed to persist the fitted parameters — the paper's
  /// "model size" axis (Figure 7).
  virtual std::size_t model_size_bytes() const = 0;

  /// Predicts every row of `x`.
  std::vector<double> predict_all(const linalg::Matrix& x) const;
};

using RegressorPtr = std::unique_ptr<Regressor>;

}  // namespace cpr::common
