#pragma once
// The common model interface every family implements (CPR and the nine
// alternatives of Section 6.0.4), so benches can sweep them uniformly and
// the tools can persist/serve any family through one polymorphic archive.

#include <memory>
#include <string>
#include <vector>

#include "common/dataset.hpp"
#include "util/serialize.hpp"

namespace cpr::common {

class Regressor {
 public:
  virtual ~Regressor() = default;

  /// Short identifier used in bench output (e.g. "CPR", "SGR", "NN").
  virtual std::string name() const = 0;

  /// Stable archive identifier (e.g. "cpr", "rf"). Written into model files
  /// and used by ModelRegistry to dispatch load; must never change once a
  /// family has shipped archives.
  virtual std::string type_tag() const = 0;

  /// Number of configuration dimensions the model predicts over (0 before
  /// fit for families that only learn it from the training data).
  virtual std::size_t input_dims() const = 0;

  /// Fits the model to the training set. May be called more than once
  /// (refits from scratch).
  virtual void fit(const Dataset& train) = 0;

  /// Predicted execution time (seconds) for one configuration.
  virtual double predict(const grid::Config& x) const = 0;

  /// Bytes needed to persist the fitted parameters — the paper's
  /// "model size" axis (Figure 7).
  virtual std::size_t model_size_bytes() const = 0;

  /// Writes the fitted state to `sink`; the matching loader is registered
  /// in the ModelRegistry under type_tag(). Families that cannot be
  /// persisted keep the default, which throws CheckError.
  virtual void save(SerialSink& sink) const;

  /// Online-learning hooks behind the serving path's OBSERVE/REFIT verbs.
  /// A family that can ingest single observations and recompute its fitted
  /// state warm (OnlineCprModel) overrides all three; anything built on the
  /// defaults is refused by the server with an ERR instead of a crash.
  virtual bool supports_observe() const { return false; }

  /// Streams one observation (configuration, measured seconds) into the
  /// model's running statistics. Default throws CheckError.
  virtual void observe(const grid::Config& x, double seconds);

  /// Recomputes the fitted state from everything observed so far — a warm
  /// restart, not a cold refit. Default throws CheckError.
  virtual void refresh();

  /// Predicts every row of `x` (n-by-d). The default parallelizes the
  /// scalar predict() over rows; families with an allocation-free batched
  /// path (CPR) override it. Row i always equals predict(row i) bitwise.
  virtual std::vector<double> predict_batch(const linalg::Matrix& x) const;

  /// Predicts every row of `x` (alias retained for existing callers).
  std::vector<double> predict_all(const linalg::Matrix& x) const {
    return predict_batch(x);
  }

  /// Encoding of the archive this instance was loaded from (F64 for freshly
  /// fitted models and version-1 archives). The serving path refuses
  /// OBSERVE/REFIT on anything but F64: replaying observations on top of
  /// quantized (lossy) parameters would silently diverge from offline
  /// training.
  QuantMode archive_quant_mode() const { return archive_quant_mode_; }
  void set_archive_quant_mode(QuantMode mode) { archive_quant_mode_ = mode; }

 private:
  QuantMode archive_quant_mode_ = QuantMode::F64;
};

using RegressorPtr = std::unique_ptr<Regressor>;

}  // namespace cpr::common
