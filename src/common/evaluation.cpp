#include "common/evaluation.hpp"

#include "metrics/metrics.hpp"

namespace cpr::common {

double evaluate_mlogq(const Regressor& model, const Dataset& test) {
  return metrics::mlogq(model.predict_all(test.x), test.y);
}

double evaluate_mlogq2(const Regressor& model, const Dataset& test) {
  return metrics::mlogq2(model.predict_all(test.x), test.y);
}

double evaluate_mape(const Regressor& model, const Dataset& test) {
  return metrics::mape(model.predict_all(test.x), test.y);
}

}  // namespace cpr::common
