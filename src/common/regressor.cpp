#include "common/regressor.hpp"

namespace cpr::common {

void Regressor::save(SerialSink&) const {
  CPR_CHECK_MSG(false, "model family '" << type_tag()
                                        << "' does not support serialization");
}

void Regressor::observe(const grid::Config&, double) {
  CPR_CHECK_MSG(false, "model family '" << type_tag()
                                        << "' does not support online observation");
}

void Regressor::refresh() {
  CPR_CHECK_MSG(false, "model family '" << type_tag()
                                        << "' does not support online refresh");
}

std::vector<double> Regressor::predict_batch(const linalg::Matrix& x) const {
  std::vector<double> out(x.rows());
#ifdef CPR_HAVE_OPENMP
#pragma omp parallel for schedule(dynamic, 16)
#endif
  for (std::size_t i = 0; i < x.rows(); ++i) {
    out[i] = predict(grid::Config(x.row_ptr(i), x.row_ptr(i) + x.cols()));
  }
  return out;
}

}  // namespace cpr::common
