#pragma once
// Lightweight precondition / invariant checking used across the library.
//
// CPR_CHECK is always on (cheap argument validation at API boundaries);
// CPR_DCHECK compiles away in release builds (hot inner loops).

#include <sstream>
#include <stdexcept>
#include <string>

namespace cpr {

/// Thrown when a CPR_CHECK precondition fails.
class CheckError : public std::logic_error {
 public:
  explicit CheckError(const std::string& what) : std::logic_error(what) {}
};

namespace detail {
[[noreturn]] inline void check_failed(const char* expr, const char* file, int line,
                                      const std::string& msg) {
  std::ostringstream os;
  os << "CPR_CHECK failed: (" << expr << ") at " << file << ":" << line;
  if (!msg.empty()) os << " — " << msg;
  throw CheckError(os.str());
}
}  // namespace detail

}  // namespace cpr

#define CPR_CHECK(expr)                                                      \
  do {                                                                       \
    if (!(expr)) ::cpr::detail::check_failed(#expr, __FILE__, __LINE__, ""); \
  } while (0)

#define CPR_CHECK_MSG(expr, msg)                                   \
  do {                                                             \
    if (!(expr)) {                                                 \
      std::ostringstream cpr_check_os;                             \
      cpr_check_os << msg;                                         \
      ::cpr::detail::check_failed(#expr, __FILE__, __LINE__,       \
                                  cpr_check_os.str());             \
    }                                                              \
  } while (0)

#ifdef NDEBUG
#define CPR_DCHECK(expr) ((void)0)
#else
#define CPR_DCHECK(expr) CPR_CHECK(expr)
#endif
