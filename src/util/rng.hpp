#pragma once
// Deterministic, fast pseudo-random number generation.
//
// We implement xoshiro256** (Blackman & Vigna) seeded via splitmix64 so that
// every experiment in the repository is reproducible across platforms and
// standard-library versions (std::mt19937 distributions are not portable).

#include <cstdint>
#include <limits>
#include <vector>

#include "util/check.hpp"

namespace cpr {

/// xoshiro256** generator. Satisfies UniformRandomBitGenerator.
class Rng {
 public:
  using result_type = std::uint64_t;

  /// Seeds the four-word state from a single seed via splitmix64.
  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ull) { reseed(seed); }

  void reseed(std::uint64_t seed);

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() {
    return std::numeric_limits<result_type>::max();
  }

  result_type operator()() {
    const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
    const std::uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = rotl(s_[3], 45);
    return result;
  }

  /// Uniform double in [0, 1).
  double uniform() { return static_cast<double>(operator()() >> 11) * 0x1.0p-53; }

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi) {
    CPR_DCHECK(lo <= hi);
    return lo + (hi - lo) * uniform();
  }

  /// Uniform integer in [lo, hi] inclusive.
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi);

  /// Log-uniform: exp(U(log lo, log hi)); requires lo, hi > 0.
  double log_uniform(double lo, double hi);

  /// Log-uniform over integers: round(exp(U(log lo, log hi))) clamped to [lo,hi].
  std::int64_t log_uniform_int(std::int64_t lo, std::int64_t hi);

  /// Standard normal via Box–Muller (cached second value).
  double normal();

  /// Normal with mean mu and standard deviation sigma.
  double normal(double mu, double sigma) { return mu + sigma * normal(); }

  /// Fisher–Yates shuffle.
  template <typename T>
  void shuffle(std::vector<T>& v) {
    for (std::size_t i = v.size(); i > 1; --i) {
      const auto j = static_cast<std::size_t>(uniform_int(0, static_cast<std::int64_t>(i) - 1));
      std::swap(v[i - 1], v[j]);
    }
  }

  /// k distinct indices from [0, n) (k <= n), in random order.
  std::vector<std::size_t> sample_without_replacement(std::size_t n, std::size_t k);

 private:
  static std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  std::uint64_t s_[4];
  bool has_cached_normal_ = false;
  double cached_normal_ = 0.0;
};

/// splitmix64 step — also useful for stateless hashing of indices into
/// deterministic "noise" (see apps/ simulators).
std::uint64_t splitmix64(std::uint64_t& state);

/// Stateless hash of a 64-bit value to a 64-bit value (one splitmix64 round).
std::uint64_t hash64(std::uint64_t x);

/// Hash-combine for building deterministic per-configuration noise seeds.
std::uint64_t hash_combine(std::uint64_t seed, std::uint64_t value);

}  // namespace cpr
